package simr

import (
	"math/rand"
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the README's quick-start path through
// the public API.
func TestFacadeQuickstart(t *testing.T) {
	suite := NewSuite()
	if len(suite.Services) != 15 {
		t.Fatalf("suite size %d", len(suite.Services))
	}
	svc := suite.Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(1)), 96)

	cpu, err := RunService(ArchCPU, svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rpu, err := RunService(ArchRPU, svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rpu.ReqPerJoule() <= cpu.ReqPerJoule() {
		t.Fatal("RPU should beat the CPU on requests/joule")
	}
}

func TestFacadeEfficiencyStudy(t *testing.T) {
	suite := NewSuite()
	rows, err := EfficiencyStudy(suite, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestFacadeSystemSim(t *testing.T) {
	cfg := DefaultSystemConfig()
	cfg.QPS = 3000
	cfg.Seconds = 1.5
	m := RunSystem(cfg)
	if m.Completed == 0 {
		t.Fatal("no completions")
	}
	ms := SweepSystem(cfg, []float64{2000, 4000})
	if len(ms) != 2 {
		t.Fatal("sweep size")
	}
}

func TestFacadeSensitivity(t *testing.T) {
	suite := NewSuite()
	var sb strings.Builder
	if err := SensitivityStudy(&sb, suite, []string{"urlshort"}, 64, 3); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Fatal("empty sensitivity report")
	}
}

func TestFacadeChipAndMPKI(t *testing.T) {
	suite := NewSuite()
	rows, err := ChipStudy(suite, 32, 3, false)
	if err != nil || len(rows) != 15 {
		t.Fatalf("chip study: %v, %d rows", err, len(rows))
	}
	var sb strings.Builder
	if err := WriteResultsJSON(&sb, rows[:1]); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Fatal("empty JSON")
	}
	mrows, err := MPKIStudy(suite, 32, 3)
	if err != nil || len(mrows) != 15 {
		t.Fatalf("mpki study: %v, %d rows", err, len(mrows))
	}
}

func TestFacadeExtensionStudies(t *testing.T) {
	mp, err := MultiProcessStudy(8, 3)
	if err != nil || mp.SharedEff <= mp.SeparateEff {
		t.Fatalf("multiprocess: %v %+v", err, mp)
	}
	suite := NewSuite()
	svc := suite.Get("uniqueid")
	reqs := svc.Generate(rand.New(rand.NewSource(3)), 64)
	mb, err := MultiBatchStudy(svc, reqs, DefaultOptions())
	if err != nil || mb.Speedup() <= 0 {
		t.Fatalf("multibatch: %v %+v", err, mb)
	}
	isp, err := RunISPC(svc, reqs)
	if err != nil || isp.Requests != 64 {
		t.Fatalf("ispc: %v", err)
	}
	cfg := DefaultComposePost()
	cfg.QPS, cfg.Seconds = 2000, 1.5
	if m := RunComposePost(cfg); m.Completed == 0 {
		t.Fatal("composepost: no completions")
	}
	g := NewGPGPUSuite()
	if len(g.Services) != 3 {
		t.Fatalf("gpgpu suite %d kernels", len(g.Services))
	}
	if DefaultRequests != 2400 {
		t.Fatal("paper request count constant")
	}
}
