package pipeline

// Predictor is a small gshare branch predictor: a global history
// register XORed into a table of 2-bit saturating counters. The RPU
// uses one prediction per batch (warp-granularity prediction) and
// updates it with the majority vote of the batch's branch outcomes
// (paper §III-A); the CPU updates per thread.
type Predictor struct {
	hist  uint64
	table []uint8
	mask  uint64
}

// NewPredictor creates a predictor with 2^bits counters.
func NewPredictor(bits int) *Predictor {
	n := 1 << bits
	return &Predictor{table: make([]uint8, n), mask: uint64(n - 1)}
}

func (p *Predictor) index(pc uint64) uint64 {
	return ((pc >> 2) ^ p.hist) & p.mask
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	return p.table[p.index(pc)] >= 2
}

// Update trains the counter and shifts the outcome into the history.
func (p *Predictor) Update(pc uint64, taken bool) {
	i := p.index(pc)
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	p.hist = (p.hist << 1) | boolBit(taken)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
