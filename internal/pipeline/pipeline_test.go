package pipeline

import (
	"testing"
	"testing/quick"

	"simr/internal/isa"
	"simr/internal/mem"
)

func testMem() *mem.System {
	return mem.NewSystem(mem.SysConfig{
		L1:                mem.CacheConfig{Name: "l1", SizeBytes: 4 << 10, Ways: 4, LineBytes: 32, Banks: 2, LatCycles: 3},
		TLB:               mem.TLBConfig{EntriesPerBank: 32, Banks: 2, MissLatCycles: 40},
		L2:                mem.CacheConfig{Name: "l2", SizeBytes: 16 << 10, Ways: 4, LineBytes: 32, Banks: 1, LatCycles: 12},
		L3:                mem.CacheConfig{Name: "l3", SizeBytes: 64 << 10, Ways: 4, LineBytes: 32, Banks: 1, LatCycles: 36},
		ICLatCycles:       4,
		DRAMLatCycles:     160,
		DRAMBytesPerCycle: 16,
	})
}

func testCfg() Config {
	return Config{
		Name:       "t",
		FetchWidth: 4, IssueWidth: 4, RetireWidth: 4,
		ROB:     64,
		Lanes:   1,
		IALULat: 1, FALULat: 3, SimdLat: 3, BranchLat: 1, SyscallLat: 10,
		RedirectPenalty: 10,
		FreqGHz:         2.5,
	}
}

func alus(n int, dep bool) []Uop {
	uops := make([]Uop, n)
	for i := range uops {
		uops[i] = Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1}
		if dep && i > 0 {
			uops[i].Dep1 = int32(i - 1)
		}
	}
	return uops
}

func TestIndependentOpsReachIssueWidth(t *testing.T) {
	c := NewCore(testCfg())
	st := c.Run(testMem(), alus(400, false))
	if ipc := st.IPC(); ipc < 3.0 {
		t.Fatalf("independent ALU IPC %.2f, want near issue width 4", ipc)
	}
}

func TestSerialChainBoundByLatency(t *testing.T) {
	c := NewCore(testCfg())
	st := c.Run(testMem(), alus(400, true))
	if ipc := st.IPC(); ipc > 1.05 {
		t.Fatalf("serial chain IPC %.2f, want <= ~1", ipc)
	}
	// With 4-cycle ALUs the chain runs 4x slower.
	cfg := testCfg()
	cfg.IALULat = 4
	c4 := NewCore(cfg)
	st4 := c4.Run(testMem(), alus(400, true))
	if r := float64(st4.Cycles) / float64(st.Cycles); r < 3.0 {
		t.Fatalf("4-cycle ALU chain only %.2fx slower", r)
	}
}

func TestOoOIssueOvertakesStalledLoad(t *testing.T) {
	// A cold load followed by many independent ALUs: the ALUs must not
	// wait for the load (out-of-order issue).
	uops := []Uop{{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1 << 30}}}
	uops = append(uops, alus(100, false)...)
	c := NewCore(testCfg())
	st := c.Run(testMem(), uops)
	// Serial would be ~200+ (DRAM) + 25; OoO overlaps: cycles ≈ load
	// completion (retire is in order behind the load).
	if st.Cycles > 300 {
		t.Fatalf("cycles %d: ALUs appear serialised behind the load", st.Cycles)
	}
	if st.AvgLoadLatency() < 100 {
		t.Fatalf("cold load latency %.0f too small", st.AvgLoadLatency())
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	// Two cold loads to different lines separated by more than ROB
	// entries cannot overlap; closer than ROB they can.
	mk := func(gap int) uint64 {
		uops := []Uop{{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1 << 30}}}
		uops = append(uops, alus(gap, false)...)
		uops = append(uops, Uop{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1<<30 + 4096}})
		c := NewCore(testCfg())
		st := c.Run(testMem(), uops)
		return st.Cycles
	}
	near, far := mk(10), mk(200) // ROB=64
	if far <= near+100 {
		t.Fatalf("ROB occupancy not limiting: near=%d far=%d", near, far)
	}
}

func TestBranchMispredictRedirect(t *testing.T) {
	// Pseudo-random branch outcomes defeat both predictors (a simple
	// alternating pattern would be learned by the global history).
	n := 200
	uops := make([]Uop, n)
	x := uint32(0x9e3779b9)
	for i := range uops {
		x = x*1664525 + 1013904223
		uops[i] = Uop{Class: isa.Branch, Dep1: -1, Dep2: -1, ActiveLanes: 1, PC: 0x40, Taken: x&0x10000 != 0}
	}
	c := NewCore(testCfg())
	st := c.Run(testMem(), uops)
	if st.Branches != uint64(n) {
		t.Fatalf("branches %d", st.Branches)
	}
	if st.Mispredicts < uint64(n)/4 {
		t.Fatalf("alternating pattern mispredicts %d, expected many", st.Mispredicts)
	}
	// A well-predicted stream must be much faster.
	for i := range uops {
		uops[i].Taken = true
	}
	c2 := NewCore(testCfg())
	st2 := c2.Run(testMem(), uops)
	if st2.Cycles >= st.Cycles {
		t.Fatalf("predicted branches not faster: %d vs %d", st2.Cycles, st.Cycles)
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	lp := NewLoopPredictor(6)
	pc := uint64(0x100)
	// Train: trip count 20, three instances.
	for inst := 0; inst < 3; inst++ {
		for i := 0; i < 19; i++ {
			lp.Update(pc, true)
		}
		lp.Update(pc, false)
	}
	// Now it should predict the whole fourth instance exactly.
	for i := 0; i < 19; i++ {
		pred, conf := lp.Predict(pc)
		if !conf || !pred {
			t.Fatalf("iteration %d: pred=%v conf=%v", i, pred, conf)
		}
		lp.Update(pc, true)
	}
	pred, conf := lp.Predict(pc)
	if !conf || pred {
		t.Fatalf("exit iteration: pred=%v conf=%v, want not-taken with confidence", pred, conf)
	}
}

func TestSubBatchInterleavingTokens(t *testing.T) {
	cfg := testCfg()
	cfg.Lanes = 8
	c := NewCore(cfg)
	uops := []Uop{{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 32, Mask: (1 << 32) - 1}}
	st := c.Run(testMem(), uops)
	if st.IssueSlots != 4 {
		t.Fatalf("32 lanes over 8 = %d tokens, want 4", st.IssueSlots)
	}
	if st.ScalarOps != 32 || st.Uops != 1 {
		t.Fatalf("op accounting: scalar=%d uops=%d", st.ScalarOps, st.Uops)
	}
}

func TestMajorityVoting(t *testing.T) {
	cfg := testCfg()
	cfg.MajorityVote = true
	c := NewCore(cfg)
	// 3 of 4 lanes taken: majority says taken; one lane flushes.
	uops := []Uop{{
		Class: isa.Branch, Dep1: -1, Dep2: -1,
		ActiveLanes: 4, Mask: 0xF, TakenMask: 0x7, PC: 0x200,
	}}
	st := c.Run(testMem(), uops)
	if st.FlushedLanes != 1 {
		t.Fatalf("flushed lanes %d, want 1", st.FlushedLanes)
	}

	// Lane-0 policy with lane 0 in the minority direction flushes 3.
	cfg.MajorityVote = false
	c2 := NewCore(cfg)
	uops[0].TakenMask = 0x8 // only lane 3 taken; lane 0 not taken -> outcome false
	st2 := c2.Run(testMem(), uops)
	if st2.FlushedLanes != 1 {
		t.Fatalf("lane-0 outcome flushes %d", st2.FlushedLanes)
	}
	uops[0].TakenMask = 0xE // lanes 1-3 taken, lane 0 not: outcome false, flush 3
	c3 := NewCore(cfg)
	st3 := c3.Run(testMem(), uops)
	if st3.FlushedLanes != 3 {
		t.Fatalf("lane-0 flushes %d, want 3", st3.FlushedLanes)
	}
}

func TestInOrderIssueSerialises(t *testing.T) {
	// Two independent load+use pairs: an OoO core overlaps both cold
	// misses; an in-order core cannot issue the second load past the
	// first stalled use, so the misses serialise end to end.
	uops := []Uop{
		{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1 << 30}},
		{Class: isa.IAlu, Dep1: 0, Dep2: -1, ActiveLanes: 1},
		{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1<<30 + 8192}},
		{Class: isa.IAlu, Dep1: 2, Dep2: -1, ActiveLanes: 1},
	}

	cfg := testCfg()
	cfg.InOrder = true
	cfg.NoSpeculation = true
	st := NewCore(cfg).Run(testMem(), uops)
	ooo := NewCore(testCfg()).Run(testMem(), uops)
	if st.Cycles <= ooo.Cycles+20 {
		t.Fatalf("in-order (%d) not meaningfully slower than OoO (%d)", st.Cycles, ooo.Cycles)
	}
}

func TestSMTPartitionedROB(t *testing.T) {
	cfg := testCfg()
	cfg.ROBPerThread = 8
	c := NewCore(cfg)
	// Two threads, interleaved; thread 0 has a cold load then filler.
	var uops []Uop
	for i := 0; i < 60; i++ {
		u := Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1, Thread: i % 2}
		if i == 0 {
			u = Uop{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Thread: 0, Accesses: []uint64{1 << 30}}
		}
		uops = append(uops, u)
	}
	st := c.Run(testMem(), uops)
	if st.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestStoresOffCriticalPath(t *testing.T) {
	c := NewCore(testCfg())
	uops := []Uop{{Class: isa.Store, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1 << 30}}}
	uops = append(uops, alus(20, false)...)
	st := c.Run(testMem(), uops)
	if st.Cycles > 60 {
		t.Fatalf("store miss blocked retirement: %d cycles", st.Cycles)
	}
}

func TestAccumulate(t *testing.T) {
	c := NewCore(testCfg())
	ms := testMem()
	a := c.Run(ms, alus(50, false))
	b := c.Run(ms, alus(50, false))
	var total Stats
	total.Accumulate(&a)
	total.Accumulate(&b)
	if total.Uops != 100 || total.Cycles != a.Cycles+b.Cycles {
		t.Fatalf("accumulate wrong: %d uops %d cycles", total.Uops, total.Cycles)
	}
}

// memUops builds a load stream spread over distinct lines so every run
// generates real cache traffic.
func memUops(n int, stride uint64) []Uop {
	uops := make([]Uop, n)
	for i := range uops {
		uops[i] = Uop{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1,
			Accesses: []uint64{uint64(i) * stride}}
	}
	return uops
}

// TestAccumulateMemDeltas is the regression test for the old
// last-writer-wins bug: Accumulate must SUM memory counters, and the
// sum of per-run deltas on a shared System must equal its final
// cumulative snapshot.
func TestAccumulateMemDeltas(t *testing.T) {
	c := NewCore(testCfg())
	ms := testMem()

	var total Stats
	for run := 0; run < 3; run++ {
		prev := ms.Stats()
		ms.ResetTiming()
		st := c.Run(ms, memUops(64, 64))
		st.Mem = st.Mem.Delta(&prev)
		if st.Mem.L1.Accesses != 64 {
			t.Fatalf("run %d delta: %d L1 accesses, want 64", run, st.Mem.L1.Accesses)
		}
		total.Accumulate(&st)
	}

	final := ms.Stats()
	if total.Mem != final {
		t.Fatalf("sum of per-run deltas != final snapshot:\n got %+v\nwant %+v", total.Mem, final)
	}
	if total.Mem.L1.Accesses != 3*64 {
		t.Fatalf("accumulated L1 accesses = %d, want %d (old code kept only the last run)",
			total.Mem.L1.Accesses, 3*64)
	}
}

// TestSlotTableWindow pins the sliding-window slotTable to the
// semantics of the original per-cycle map: same grants for the same
// request sequence, with pruned cycles never revisited.
func TestSlotTableWindow(t *testing.T) {
	var s slotTable
	s.init(2)
	ref := map[uint64]uint16{} // reference: unbounded per-cycle counts
	refGrant := func(want uint64) uint64 {
		for {
			if ref[want] < 2 {
				ref[want]++
				return want
			}
			want++
		}
	}
	// Monotone floor with bursts of grants around it, far jumps to
	// force the ring to grow, and repeated cycles to fill slots.
	floor := uint64(0)
	for i := 0; i < 5000; i++ {
		floor += uint64(i % 3)
		s.advance(floor)
		want := floor + 1 + uint64(i%7)*uint64(i%11)
		if i%13 == 0 {
			want += 4096 // leap past the window to trigger grow
		}
		got := s.grant(want)
		if exp := refGrant(want); got != exp {
			t.Fatalf("step %d: grant(%d) = %d, reference %d", i, want, got, exp)
		}
	}
	if len(s.counts) > 1<<20 {
		t.Fatalf("window grew unboundedly: %d slots", len(s.counts))
	}
}

// Property: cycle count is monotone in stream length and at least
// len/issueWidth.
func TestQuickCyclesMonotone(t *testing.T) {
	f := func(n uint8) bool {
		a := int(n%100) + 1
		c1 := NewCore(testCfg()).Run(testMem(), alus(a, false))
		c2 := NewCore(testCfg()).Run(testMem(), alus(a+10, false))
		return c2.Cycles >= c1.Cycles && c1.Cycles >= uint64(a/4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorTrains(t *testing.T) {
	p := NewPredictor(10)
	pc := uint64(0x80)
	// Enough updates for the history register to saturate (constant
	// index) and the counter to train.
	for i := 0; i < 20; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("predictor did not learn a strongly taken branch")
	}
}

func TestSyscallLatencyCharged(t *testing.T) {
	cfg := testCfg()
	fast := NewCore(cfg).Run(testMem(), alus(5, true))
	uops := append([]Uop{{Class: isa.Syscall, Dep1: -1, Dep2: -1, ActiveLanes: 1}}, alus(5, true)...)
	uops[1].Dep1 = 0 // first ALU waits for the syscall
	slow := NewCore(cfg).Run(testMem(), uops)
	if slow.Cycles < fast.Cycles+cfg.SyscallLat/2 {
		t.Fatalf("syscall latency not on critical path: %d vs %d", slow.Cycles, fast.Cycles)
	}
}

func TestFenceOrdersInOrderCore(t *testing.T) {
	cfg := testCfg()
	cfg.InOrder = true
	uops := []Uop{
		{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1 << 30}},
		{Class: isa.Fence, Dep1: 0, Dep2: -1, ActiveLanes: 1},
		{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1},
	}
	st := NewCore(cfg).Run(testMem(), uops)
	if st.Cycles < 150 {
		t.Fatalf("fence did not order behind the cold load: %d cycles", st.Cycles)
	}
}

func TestConfigSeconds(t *testing.T) {
	cfg := testCfg() // 2.5 GHz
	if s := cfg.Seconds(2_500_000_000); s < 0.99 || s > 1.01 {
		t.Fatalf("2.5e9 cycles at 2.5GHz = %v s", s)
	}
}

func TestStatsHelpers(t *testing.T) {
	st := Stats{Cycles: 100, Uops: 50, LoadCount: 4, LoadLatSum: 100}
	if st.IPC() != 0.5 || st.AvgLoadLatency() != 25 {
		t.Fatalf("helpers wrong: %v %v", st.IPC(), st.AvgLoadLatency())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.AvgLoadLatency() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}
