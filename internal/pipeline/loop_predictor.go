package pipeline

// loopEntry tracks one backward branch's trip behaviour for the loop
// termination predictor.
type loopEntry struct {
	pc       uint64
	lastTrip uint32
	curRun   uint32
	conf     uint8 // saturating confidence that lastTrip repeats
	valid    bool
}

// LoopPredictor captures the loop-termination component modern
// frontends pair with a direction predictor: when a branch has shown a
// stable trip count, the exit (not-taken) iteration is predicted
// exactly, removing the one-mispredict-per-loop-instance penalty that
// a pure history predictor pays once the trip count exceeds its
// history window.
type LoopPredictor struct {
	entries []loopEntry
	mask    uint64
}

// NewLoopPredictor creates a predictor with 2^bits entries.
func NewLoopPredictor(bits int) *LoopPredictor {
	n := 1 << bits
	return &LoopPredictor{entries: make([]loopEntry, n), mask: uint64(n - 1)}
}

func (l *LoopPredictor) entry(pc uint64) *loopEntry {
	return &l.entries[(pc>>2)&l.mask]
}

// Predict returns (prediction, confident). Confident is true only when
// the branch has repeated the same trip count at least twice.
func (l *LoopPredictor) Predict(pc uint64) (taken, confident bool) {
	e := l.entry(pc)
	if !e.valid || e.pc != pc || e.conf < 2 || e.lastTrip == 0 {
		return false, false
	}
	return e.curRun+1 < e.lastTrip, true
}

// Update trains the entry with the branch outcome.
func (l *LoopPredictor) Update(pc uint64, taken bool) {
	e := l.entry(pc)
	if !e.valid || e.pc != pc {
		*e = loopEntry{pc: pc, valid: true}
	}
	if taken {
		e.curRun++
		return
	}
	trip := e.curRun + 1
	if trip == e.lastTrip {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.lastTrip = trip
		e.conf = 0
	}
	e.curRun = 0
}
