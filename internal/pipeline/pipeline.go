// Package pipeline is the cycle-level core timing model. It implements
// a one-pass dataflow (interval-style) simulation of a superscalar
// out-of-order pipeline: width-limited fetch/dispatch, ROB occupancy,
// dependency-driven wakeup, bandwidth-limited issue with sub-batch
// interleaving over the SIMT lanes, per-class execution latencies,
// branch prediction with optional per-batch majority voting, memory
// accesses timed through internal/mem, and width-limited in-order
// retire. The same engine models the paper's four design points: the
// single-threaded OoO CPU, the SMT-8 CPU, the OoO-SIMT RPU and an
// in-order SIMT GPU.
package pipeline

import (
	"math/bits"

	"simr/internal/isa"
	"simr/internal/mem"
)

// Uop is one instruction presented to the timing model: a scalar
// instruction (CPU), or a batch instruction with its active mask and
// coalesced physical accesses (RPU/GPU).
type Uop struct {
	PC         uint64
	Class      isa.Class
	Dep1, Dep2 int32 // producer uop indices in the same stream, -1 none
	// Accesses are the physical addresses this uop issues to the L1
	// (already MCU-coalesced for batch mode). The slice is borrowed
	// from the producer's arena (core.uopBuilder) and may alias other
	// uops' storage: Core.Run and every other consumer must treat it
	// as read-only and must not retain it past the run.
	Accesses []uint64
	// ActiveLanes is the active thread count (1 for scalar mode).
	ActiveLanes int
	// Mask and TakenMask carry branch vote information in batch mode.
	Mask, TakenMask uint64
	// Taken is the scalar branch outcome.
	Taken bool
	// Thread tags the SMT stream the uop belongs to.
	Thread int
}

// Config describes one core's pipeline.
type Config struct {
	Name string
	// FetchWidth, IssueWidth and RetireWidth are per-cycle limits.
	FetchWidth, IssueWidth, RetireWidth int
	// ROB is the reorder-buffer size; ROBPerThread, when non-zero,
	// partitions it per SMT thread.
	ROB          int
	ROBPerThread int
	// Lanes is the SIMT execution width m; batch instructions issue
	// over ceil(active/m) cycles (sub-batch interleaving). 1 = scalar.
	Lanes int
	// Execution latencies per class, in cycles.
	IALULat, FALULat, SimdLat, BranchLat, SyscallLat uint64
	// RedirectPenalty is the frontend refill after a mispredict.
	RedirectPenalty uint64
	// InOrder forces issue in program order (GPU).
	InOrder bool
	// NoSpeculation stalls fetch until each branch resolves (GPU).
	NoSpeculation bool
	// MajorityVote updates the predictor with the batch's majority
	// outcome; otherwise lane 0's outcome is used.
	MajorityVote bool
	// FreqGHz converts cycles to wall time.
	FreqGHz float64
}

// Stats is the outcome of one Run.
type Stats struct {
	Cycles uint64
	// Uops is the number of instructions the frontend processed
	// (batch instructions in batch mode: the quantity the RPU
	// amortises frontend energy over).
	Uops uint64
	// ScalarOps is the work performed (sum of active lanes).
	ScalarOps uint64
	// UopsByClass and LaneOpsByClass split the two counts per class.
	UopsByClass    [isa.NumClasses]uint64
	LaneOpsByClass [isa.NumClasses]uint64
	Branches       uint64
	Mispredicts    uint64
	// FlushedLanes counts lanes whose instructions were flushed at
	// commit because their branch outcome disagreed with the batch
	// prediction (divergence-induced mispredictions).
	FlushedLanes uint64
	// IssueSlots counts consumed issue tokens (sub-batch occupancy).
	IssueSlots uint64
	// LoadCount/LoadLatSum measure average load-to-use latency.
	LoadCount  uint64
	LoadLatSum uint64
	// Mem snapshots the memory system counters accumulated during the
	// run (deltas are the caller's responsibility when reusing a
	// System).
	Mem mem.SysStats
}

// Seconds converts a cycle count to seconds at the configured clock.
func (c Config) Seconds(cycles uint64) float64 {
	return float64(cycles) / (c.FreqGHz * 1e9)
}

// AvgLoadLatency returns the mean load completion latency in cycles.
func (s *Stats) AvgLoadLatency() float64 {
	if s.LoadCount == 0 {
		return 0
	}
	return float64(s.LoadLatSum) / float64(s.LoadCount)
}

// IPC returns retired uops per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Uops) / float64(s.Cycles)
}

// ring enforces a per-cycle token bandwidth W for IN-ORDER pipeline
// stages (fetch/dispatch and retire): grant i must be at least one
// cycle after grant i-W.
type ring struct {
	slots []uint64
	pos   int
}

// init readies the ring for a fresh run, reusing its slot array when
// the width is unchanged.
func (r *ring) init(w int) {
	if w <= 0 {
		w = 1
	}
	if len(r.slots) != w {
		r.slots = make([]uint64, w)
	} else {
		for i := range r.slots {
			r.slots[i] = 0
		}
	}
	r.pos = 0
}

// grant returns the earliest time >= want with bandwidth available.
func (r *ring) grant(want uint64) uint64 {
	if min := r.slots[r.pos] + 1; want < min {
		want = min
	}
	r.slots[r.pos] = want
	r.pos++
	if r.pos == len(r.slots) {
		r.pos = 0
	}
	return want
}

// slotTable enforces a per-cycle token bandwidth for the OUT-OF-ORDER
// issue stage: an instruction whose operands are ready at cycle t
// takes the first cycle >= t with a free issue slot, independent of
// program order (a stalled older instruction does not delay ready
// younger ones). Slot counts live in a sliding window of cycles
// [base, base+len(counts)): cycles behind the fetch frontier can never
// be asked for again (every issue request is at least one cycle after
// its uop's fetch grant, and fetch grants only move forward), so
// advance reclaims them instead of keeping one map entry per busy
// cycle for the whole run.
type slotTable struct {
	counts []uint16 // ring indexed by cycle & mask (len is a power of two)
	mask   uint64   // len(counts) - 1
	base   uint64   // lowest cycle still tracked
	width  uint16
}

// init readies the table for a fresh run. The window keeps whatever
// size it grew to — grant results depend only on the counts, not the
// window length, so a larger retained window changes nothing.
func (s *slotTable) init(w int) {
	if w <= 0 {
		w = 1
	}
	s.width = uint16(w)
	if s.counts == nil {
		s.counts = make([]uint16, 1024)
		s.mask = 1023
	} else {
		for i := range s.counts {
			s.counts[i] = 0
		}
	}
	s.base = 0
}

// grant consumes one slot at the earliest cycle >= want.
func (s *slotTable) grant(want uint64) uint64 {
	if want < s.base {
		want = s.base
	}
	for {
		for want >= s.base+uint64(len(s.counts)) {
			s.grow()
		}
		if c := &s.counts[want&s.mask]; *c < s.width {
			*c++
			return want
		}
		want++
	}
}

// advance prunes all cycles below floor. The caller must guarantee no
// later grant asks for a cycle below floor.
func (s *slotTable) advance(floor uint64) {
	if floor <= s.base {
		return
	}
	n := uint64(len(s.counts))
	end := floor
	if end > s.base+n {
		end = s.base + n // cycles past the window were never written
	}
	// The pruned cycles [base, end) occupy at most two contiguous runs
	// of the ring.
	lo := s.base & s.mask
	cnt := end - s.base
	if lo+cnt <= n {
		clear(s.counts[lo : lo+cnt])
	} else {
		clear(s.counts[lo:])
		clear(s.counts[:lo+cnt-n])
	}
	s.base = floor
}

// grow doubles the window, re-homing live counts to the new ring
// positions.
func (s *slotTable) grow() {
	old := s.counts
	n := uint64(len(old))
	s.counts = make([]uint16, 2*n)
	for c := s.base; c < s.base+n; c++ {
		s.counts[c&(2*n-1)] = old[c&(n-1)]
	}
	s.mask = 2*n - 1
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// robRing is one SMT thread's dispatch history for partitioned ROBs:
// a fixed window of the last ROBPerThread dispatched uop indices.
type robRing struct {
	buf   []int
	count int
}

// runScratch is Core.Run's reusable working storage. completion and
// retire are reused across runs without clearing: dependency and
// retire-chain references only ever point backwards, so within one run
// every slot is written before it can be read.
type runScratch struct {
	completion, retire []uint64
	fetchR, retireR    ring
	issueS             slotTable
	threads            []robRing
}

// Core bundles a pipeline configuration with its branch predictors and
// the reusable run scratch. A Core must not run on two goroutines at
// once.
type Core struct {
	Cfg Config
	BP  *Predictor
	LP  *LoopPredictor
	sc  runScratch
}

// NewCore creates a core with a 4K-entry gshare predictor and a 256-
// entry loop termination predictor.
func NewCore(cfg Config) *Core {
	if cfg.Lanes <= 0 {
		cfg.Lanes = 1
	}
	return &Core{Cfg: cfg, BP: NewPredictor(12), LP: NewLoopPredictor(8)}
}

// Run simulates the uop stream against the memory system and returns
// timing statistics. The memory system's state (cache contents, bank
// timing) persists across calls, modelling back-to-back requests on a
// warm core.
func (c *Core) Run(ms *mem.System, uops []Uop) Stats {
	cfg := c.Cfg
	var st Stats

	n := len(uops)
	if cap(c.sc.completion) < n {
		grow := 2 * cap(c.sc.completion)
		if grow < n {
			grow = n
		}
		c.sc.completion = make([]uint64, grow)
		c.sc.retire = make([]uint64, grow)
	}
	completion := c.sc.completion[:n]
	retire := c.sc.retire[:n]

	fetchR := &c.sc.fetchR
	fetchR.init(cfg.FetchWidth)
	issueS := &c.sc.issueS
	issueS.init(cfg.IssueWidth)
	retireR := &c.sc.retireR
	retireR.init(cfg.RetireWidth)

	var fetchMin uint64  // frontend stalled until (redirects)
	var lastIssue uint64 // in-order issue constraint
	// Per-thread dispatch history for partitioned ROBs: size the thread
	// table and every ring once per run from the stream's max thread id,
	// so the dispatch loop below only indexes (no appends or makes on
	// the hot path, and zero allocations in the steady state).
	if cfg.ROBPerThread > 0 {
		maxThread := 0
		for i := range uops {
			if t := uops[i].Thread; t > maxThread {
				maxThread = t
			}
		}
		for maxThread >= len(c.sc.threads) {
			c.sc.threads = append(c.sc.threads, robRing{})
		}
		for t := range c.sc.threads {
			h := &c.sc.threads[t]
			if len(h.buf) != cfg.ROBPerThread {
				h.buf = make([]int, cfg.ROBPerThread)
			}
			h.count = 0
		}
	}

	for i := range uops {
		u := &uops[i]

		// Dispatch: fetch bandwidth, redirect stalls, ROB occupancy.
		d := fetchR.grant(fetchMin)
		// Fetch grants are monotone and every issue request below is at
		// least d+1, so issue slots behind this frontier are dead.
		issueS.advance(d)
		if cfg.ROBPerThread > 0 {
			h := &c.sc.threads[u.Thread]
			pos := h.count % cfg.ROBPerThread
			if h.count >= cfg.ROBPerThread {
				// The slot about to be overwritten holds the dispatch
				// exactly ROBPerThread uops back on this thread.
				d = max64(d, retire[h.buf[pos]])
			}
			h.buf[pos] = i
			h.count++
		} else if cfg.ROB > 0 && i >= cfg.ROB {
			d = max64(d, retire[i-cfg.ROB])
		}

		// Ready: dependencies resolved.
		ready := d + 1
		if u.Dep1 >= 0 {
			ready = max64(ready, completion[u.Dep1])
		}
		if u.Dep2 >= 0 {
			ready = max64(ready, completion[u.Dep2])
		}
		if cfg.InOrder {
			ready = max64(ready, lastIssue)
		}

		// Issue: one token per sub-batch group (execution classes widen
		// over the lanes); memory instructions occupy one LSQ row.
		tokens := 1
		if u.ActiveLanes > cfg.Lanes && !u.Class.IsMem() {
			tokens = (u.ActiveLanes + cfg.Lanes - 1) / cfg.Lanes
		}
		issue := ready
		for k := 0; k < tokens; k++ {
			issue = issueS.grant(issue)
		}
		st.IssueSlots += uint64(tokens)
		lastIssue = issue

		// Execute.
		var done uint64
		switch u.Class {
		case isa.Load, isa.Atomic:
			done = issue
			for _, a := range u.Accesses {
				if t := ms.Access(a, false, u.Class == isa.Atomic, issue); t > done {
					done = t
				}
			}
			st.LoadCount++
			st.LoadLatSum += done - issue
		case isa.Store:
			// Stores retire from the store queue off the critical path,
			// but still update cache state and traffic now.
			for _, a := range u.Accesses {
				ms.Access(a, true, false, issue)
			}
			done = issue + 1
		case isa.Branch:
			done = issue + cfg.BranchLat
			st.Branches++
			actual := u.Taken
			if u.Mask != 0 {
				actual = c.voteOutcome(u)
				// Lanes disagreeing with the batch direction flush at
				// commit regardless of prediction accuracy.
				agree := popcount(u.TakenMask)
				if !actual {
					agree = popcount(u.Mask) - agree
				}
				st.FlushedLanes += uint64(popcount(u.Mask) - agree)
			}
			pred, conf := c.LP.Predict(u.PC)
			if !conf {
				pred = c.BP.Predict(u.PC)
			}
			c.LP.Update(u.PC, actual)
			c.BP.Update(u.PC, actual)
			if pred != actual {
				st.Mispredicts++
				fetchMin = max64(fetchMin, done+cfg.RedirectPenalty)
			}
			if cfg.NoSpeculation {
				fetchMin = max64(fetchMin, done)
			}
		case isa.Jump, isa.CallOp, isa.RetOp:
			done = issue + cfg.IALULat
		case isa.FAlu:
			done = issue + cfg.FALULat
		case isa.Simd:
			done = issue + cfg.SimdLat
		case isa.Syscall:
			done = issue + cfg.SyscallLat
		case isa.Fence:
			done = issue + 1
			if cfg.InOrder {
				lastIssue = done
			}
		default:
			done = issue + cfg.IALULat
		}
		completion[i] = done

		// Retire: in order, width-limited.
		r := retireR.grant(done)
		if i > 0 {
			r = max64(r, retire[i-1])
		}
		retire[i] = r

		// Accounting.
		st.Uops++
		st.UopsByClass[u.Class]++
		lanes := u.ActiveLanes
		if lanes <= 0 {
			lanes = 1
		}
		st.ScalarOps += uint64(lanes)
		st.LaneOpsByClass[u.Class] += uint64(lanes)
	}

	if n > 0 {
		st.Cycles = retire[n-1]
	}
	st.Mem = ms.Stats()
	return st
}

// voteOutcome applies the configured vote policy to a batch branch.
func (c *Core) voteOutcome(u *Uop) bool {
	if c.Cfg.MajorityVote {
		taken := popcount(u.TakenMask)
		total := popcount(u.Mask)
		return taken*2 >= total
	}
	// Without voting the prediction follows the lowest active lane.
	low := u.Mask & (^u.Mask + 1)
	return u.TakenMask&low != 0
}

func popcount(m uint64) int { return bits.OnesCount64(m) }

// Accumulate adds another run's counters into s, memory counters
// included. Callers that reuse one mem.System across runs must convert
// o.Mem (an end-of-run snapshot of cumulative System counters) to the
// run's own delta first — see mem.SysStats.Delta — or the same events
// are counted once per remaining run.
func (s *Stats) Accumulate(o *Stats) {
	s.Cycles += o.Cycles
	s.Uops += o.Uops
	s.ScalarOps += o.ScalarOps
	for c := range s.UopsByClass {
		s.UopsByClass[c] += o.UopsByClass[c]
		s.LaneOpsByClass[c] += o.LaneOpsByClass[c]
	}
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.FlushedLanes += o.FlushedLanes
	s.IssueSlots += o.IssueSlots
	s.LoadCount += o.LoadCount
	s.LoadLatSum += o.LoadLatSum
	s.Mem.Add(&o.Mem)
}

// AddScaled adds o's counters scaled by f (rounded to nearest) into s
// — the extrapolation step of sampled simulation, which projects the
// timed subpopulation's aggregate onto the skipped remainder.
func (s *Stats) AddScaled(o *Stats, f float64) {
	s.Cycles += scale64(o.Cycles, f)
	s.Uops += scale64(o.Uops, f)
	s.ScalarOps += scale64(o.ScalarOps, f)
	for c := range s.UopsByClass {
		s.UopsByClass[c] += scale64(o.UopsByClass[c], f)
		s.LaneOpsByClass[c] += scale64(o.LaneOpsByClass[c], f)
	}
	s.Branches += scale64(o.Branches, f)
	s.Mispredicts += scale64(o.Mispredicts, f)
	s.FlushedLanes += scale64(o.FlushedLanes, f)
	s.IssueSlots += scale64(o.IssueSlots, f)
	s.LoadCount += scale64(o.LoadCount, f)
	s.LoadLatSum += scale64(o.LoadLatSum, f)
	s.Mem.AddScaled(&o.Mem, f)
}

// scale64 rounds v*f to the nearest integer count.
func scale64(v uint64, f float64) uint64 {
	return uint64(float64(v)*f + 0.5)
}
