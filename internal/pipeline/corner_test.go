package pipeline

import (
	"testing"

	"simr/internal/isa"
)

// smtUops builds an interleaved multi-thread stream with a cold load on
// thread 0 so ROB occupancy (partitioned or unified) becomes the
// binding constraint once the miss stalls retirement.
func smtUops(n, threads int) []Uop {
	uops := make([]Uop, n)
	for i := range uops {
		uops[i] = Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1, Thread: i % threads}
	}
	uops[0] = Uop{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Thread: 0,
		Accesses: []uint64{1 << 30}}
	return uops
}

// TestPartitionedROBSingleThreadMatchesUnified pins the ring-buffer
// dispatch history to the unified-ROB semantics it replaces: for a
// single-thread stream, a per-thread window of k must stall dispatch at
// exactly the same points as a unified ROB of k entries.
func TestPartitionedROBSingleThreadMatchesUnified(t *testing.T) {
	uops := smtUops(120, 1)
	for _, k := range []int{4, 8, 32} {
		cu := testCfg()
		cu.ROB = k
		unified := NewCore(cu).Run(testMem(), uops)
		cp := testCfg()
		cp.ROBPerThread = k
		part := NewCore(cp).Run(testMem(), uops)
		if part.Cycles != unified.Cycles {
			t.Fatalf("window %d: partitioned %d cycles, unified %d", k, part.Cycles, unified.Cycles)
		}
	}
}

// TestPartitionedROBGivesEachThreadOwnWindow checks the SMT semantics:
// two cold loads on thread 0 sit 12 uops apart globally but only 6
// apart in thread 0's own stream, so per-thread windows of 8 let the
// misses overlap while a unified 8-entry ROB serialises them.
func TestPartitionedROBGivesEachThreadOwnWindow(t *testing.T) {
	var uops []Uop
	uops = append(uops, Uop{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Thread: 0,
		Accesses: []uint64{1 << 30}})
	for i := 1; i < 12; i++ {
		uops = append(uops, Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1, Thread: i % 2})
	}
	uops = append(uops, Uop{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Thread: 0,
		Accesses: []uint64{1<<30 + 8192}})

	cu := testCfg()
	cu.ROB = 8
	unified := NewCore(cu).Run(testMem(), uops)
	cp := testCfg()
	cp.ROBPerThread = 8
	part := NewCore(cp).Run(testMem(), uops)
	if part.Cycles+100 > unified.Cycles {
		t.Fatalf("partitioned (8/thread) %d cycles, unified (8) %d: misses not overlapping",
			part.Cycles, unified.Cycles)
	}
}

// TestNoSpeculationStallsFetch exercises the GPU frontend corner: with
// NoSpeculation every branch holds fetch until it resolves, so even a
// perfectly predicted branch stream slows down sharply.
func TestNoSpeculationStallsFetch(t *testing.T) {
	n := 200
	uops := make([]Uop, n)
	for i := range uops {
		uops[i] = Uop{Class: isa.Branch, Dep1: -1, Dep2: -1, ActiveLanes: 1, PC: 0x40, Taken: true}
	}
	spec := NewCore(testCfg()).Run(testMem(), uops)
	cfg := testCfg()
	cfg.NoSpeculation = true
	nospec := NewCore(cfg).Run(testMem(), uops)
	if nospec.Cycles < 2*spec.Cycles {
		t.Fatalf("NoSpeculation %d cycles vs speculative %d: fetch not stalling on branches",
			nospec.Cycles, spec.Cycles)
	}
}

// TestFenceOnlyOrdersInOrder pins the Fence/InOrder interaction: a
// fence behind a cold load pushes an in-order core's issue barrier to
// the load's completion, so a dependent ALU chain after it lands its
// latency on top of the miss. Without the fence — or out of order —
// the chain overlaps the miss and only in-order retirement remains.
func TestFenceOnlyOrdersInOrder(t *testing.T) {
	mk := func(fence bool) []Uop {
		uops := []Uop{
			{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1, Accesses: []uint64{1 << 30}},
			{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1},
		}
		if fence {
			uops[1] = Uop{Class: isa.Fence, Dep1: 0, Dep2: -1, ActiveLanes: 1}
		}
		// A dependent chain that does NOT read the fence: only the
		// in-order issue barrier can delay it.
		uops = append(uops, Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1})
		for i := 0; i < 100; i++ {
			uops = append(uops, Uop{Class: isa.IAlu, Dep1: int32(len(uops) - 1), Dep2: -1, ActiveLanes: 1})
		}
		return uops
	}
	inorder := testCfg()
	inorder.InOrder = true

	fenced := NewCore(inorder).Run(testMem(), mk(true))
	unfenced := NewCore(inorder).Run(testMem(), mk(false))
	ooo := NewCore(testCfg()).Run(testMem(), mk(true))
	if fenced.Cycles <= unfenced.Cycles+50 {
		t.Fatalf("in-order fence added no delay: fenced %d, unfenced %d",
			fenced.Cycles, unfenced.Cycles)
	}
	if fenced.Cycles <= ooo.Cycles+50 {
		t.Fatalf("fence barrier not specific to in-order: in-order %d, OoO %d",
			fenced.Cycles, ooo.Cycles)
	}
}

// TestRunSteadyStateAllocs is the regression test for the per-thread
// ROB ring hoist: after one warm-up run sizes the scratch, repeated
// Core.Run calls on a partitioned-ROB config must not allocate.
func TestRunSteadyStateAllocs(t *testing.T) {
	cfg := testCfg()
	cfg.ROBPerThread = 8
	c := NewCore(cfg)
	ms := testMem()
	uops := smtUops(256, 8)
	uops[0] = Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1} // ALU-only: keep mem out
	c.Run(ms, uops)
	if n := testing.AllocsPerRun(10, func() { c.Run(ms, uops) }); n != 0 {
		t.Fatalf("Core.Run steady state allocates %.1f times per run, want 0", n)
	}
}

// TestWarmZeroAllocs checks the functional-warmup fast path: once the
// memory hierarchy's tables are sized, Core.Warm over a mixed
// load/store/branch stream must be allocation-free.
func TestWarmZeroAllocs(t *testing.T) {
	c := NewCore(testCfg())
	ms := testMem()
	uops := make([]Uop, 256)
	for i := range uops {
		switch i % 4 {
		case 0:
			uops[i] = Uop{Class: isa.Load, Dep1: -1, Dep2: -1, ActiveLanes: 1,
				Accesses: []uint64{uint64(i) * 64}}
		case 1:
			uops[i] = Uop{Class: isa.Store, Dep1: -1, Dep2: -1, ActiveLanes: 1,
				Accesses: []uint64{uint64(i) * 128}}
		case 2:
			uops[i] = Uop{Class: isa.Branch, Dep1: -1, Dep2: -1, ActiveLanes: 1,
				PC: 0x40, Taken: i%8 < 4}
		default:
			uops[i] = Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1}
		}
	}
	c.Warm(ms, uops)
	if n := testing.AllocsPerRun(10, func() { c.Warm(ms, uops) }); n != 0 {
		t.Fatalf("Core.Warm allocates %.1f times per pass, want 0", n)
	}
}

// BenchmarkRunSMTPartitioned measures the partitioned-ROB dispatch path
// on a reused core — the configuration the ROB ring hoist targets.
// Allocations are reported so regressions in the hot loop show up.
func BenchmarkRunSMTPartitioned(b *testing.B) {
	cfg := testCfg()
	cfg.ROBPerThread = 16
	c := NewCore(cfg)
	ms := testMem()
	uops := benchUops(4096, 1)
	for i := range uops {
		uops[i].Thread = i % 8
	}
	c.Run(ms, uops)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(ms, uops)
	}
}

// BenchmarkWarm measures the functional-warmup fast path against
// BenchmarkRunScalar's full timing simulation of a comparable stream.
func BenchmarkWarm(b *testing.B) {
	c := NewCore(testCfg())
	ms := testMem()
	uops := benchUops(4096, 1)
	c.Warm(ms, uops)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Warm(ms, uops)
	}
}
