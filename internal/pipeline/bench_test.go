package pipeline

import (
	"testing"

	"simr/internal/isa"
)

func benchUops(n int, lanes int) []Uop {
	uops := make([]Uop, n)
	for i := range uops {
		cls := isa.IAlu
		switch i % 7 {
		case 3:
			cls = isa.Load
		case 5:
			cls = isa.Store
		}
		u := Uop{Class: cls, Dep1: -1, Dep2: -1, ActiveLanes: lanes, PC: uint64(i) * 4}
		if i%4 == 0 && i > 0 {
			u.Dep1 = int32(i - 1)
		}
		if cls.IsMem() {
			u.Accesses = []uint64{uint64(i) * 64 % (1 << 20)}
		}
		uops[i] = u
	}
	return uops
}

func BenchmarkRunScalar(b *testing.B) {
	uops := benchUops(4096, 1)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		NewCore(testCfg()).Run(testMem(), uops)
	}
}

// BenchmarkRunLongTrace guards the slotTable sliding window: a long
// compute trace must not allocate issue-bookkeeping proportional to
// its cycle count (the old map kept one entry per busy cycle for the
// whole run). Pure ALU uops keep memory-hierarchy allocations out of
// the measurement.
func BenchmarkRunLongTrace(b *testing.B) {
	const n = 1 << 18
	uops := make([]Uop, n)
	for i := range uops {
		uops[i] = Uop{Class: isa.IAlu, Dep1: -1, Dep2: -1, ActiveLanes: 1, PC: uint64(i) * 4}
		if i%4 == 0 && i > 0 {
			uops[i].Dep1 = int32(i - 1)
		}
	}
	b.SetBytes(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewCore(testCfg()).Run(testMem(), uops)
	}
}

func BenchmarkRunBatch(b *testing.B) {
	cfg := testCfg()
	cfg.Lanes = 8
	uops := benchUops(4096, 32)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		NewCore(cfg).Run(testMem(), uops)
	}
}
