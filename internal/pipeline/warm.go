package pipeline

import (
	"simr/internal/isa"
	"simr/internal/mem"
)

// Warm runs the functional-warmup pass of sampled simulation over a
// uop stream: every memory access updates the hierarchy's replacement
// state through mem.System.Warm and every branch trains the loop and
// direction predictors with the same outcome Run would derive, but no
// timing, bandwidth or statistics state is touched. A warmed unit
// therefore leaves the core and memory system in the state a later
// timed unit expects from a fully simulated predecessor, at a small
// fraction of Run's cost and with zero allocations.
func (c *Core) Warm(ms *mem.System, uops []Uop) {
	for i := range uops {
		u := &uops[i]
		switch u.Class {
		case isa.Load, isa.Atomic:
			for _, a := range u.Accesses {
				ms.Warm(a, false, u.Class == isa.Atomic)
			}
		case isa.Store:
			for _, a := range u.Accesses {
				ms.Warm(a, true, false)
			}
		case isa.Branch:
			actual := u.Taken
			if u.Mask != 0 {
				actual = c.voteOutcome(u)
			}
			c.LP.Update(u.PC, actual)
			c.BP.Update(u.PC, actual)
		}
	}
}
