// Package prof implements the -cpuprofile/-memprofile plumbing shared
// by the cmd/ drivers so perf work can profile the study sweeps without
// editing code (go tool pprof <binary> <file>).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (if non-empty). Either path may be empty; stop is never
// nil — on error it is a no-op — and is safe to call once, so callers
// may `defer stop()` before checking err.
func Start(cpuPath, memPath string) (stop func(), err error) {
	nop := func() {}
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nop, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nop, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		}
	}, nil
}
