package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartErrorReturnsNoopStop pins the documented contract: stop is
// never nil, so a caller that defers it before checking the error must
// not panic even when the profile path is unwritable.
func TestStartErrorReturnsNoopStop(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "cpu.prof")
	stop, err := Start(bad, "")
	if err == nil {
		t.Fatalf("Start(%q) succeeded, want error", bad)
	}
	if stop == nil {
		t.Fatal("Start returned nil stop on error; defer stop() would panic")
	}
	stop() // must be a safe no-op
}

func TestStartSuccessWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartEmptyPathsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
