// Package alloc models the SIMR virtual address space and the two heap
// allocation policies the paper compares: the SIMR-agnostic CPU
// allocator (glibc-like, which lands every thread's private arrays on
// the same L1 bank alignment and causes bank conflicts) and the
// SIMR-aware allocator (paper Fig 16, which offsets each thread's
// allocations to a distinct bank so consecutive per-thread accesses are
// conflict-free). It also implements the contiguous per-batch stack
// segments and the 4-byte stack interleaving physical mapping of paper
// Fig 13.
package alloc

import "fmt"

// Virtual address space layout. Segment bases are far apart so segment
// classification is a range check, as in a real Linux process layout.
const (
	// GlobalBase is the shared data segment (constants, shared tables).
	GlobalBase uint64 = 1 << 32
	// HeapBase starts the per-thread heap arenas.
	HeapBase uint64 = 1 << 36
	// StackRegion starts the stack segments (growing upward per batch,
	// each thread's stack growing downward inside its segment).
	StackRegion uint64 = 1 << 46
	// StackSize is one thread's stack segment size.
	StackSize uint64 = 1 << 20
	// ArenaSize is one thread's heap arena size. Arenas are kept small
	// so a batch's 32 arenas stay within a handful of huge pages (the
	// high-throughput allocators the paper assumes pool per-thread
	// arenas the same way).
	ArenaSize uint64 = 1 << 20
	// InterleaveBytes is the stack physical interleaving granularity.
	InterleaveBytes uint64 = 4
)

// IsStack reports whether addr falls in the stack region.
func IsStack(addr uint64) bool { return addr >= StackRegion }

// IsHeap reports whether addr falls in the heap region.
func IsHeap(addr uint64) bool { return addr >= HeapBase && addr < StackRegion }

// IsGlobal reports whether addr falls in the shared data segment.
func IsGlobal(addr uint64) bool { return addr >= GlobalBase && addr < HeapBase }

// Globals is a bump allocator for the shared data segment. Services
// allocate their shared tables (hash indexes, posting lists, models)
// once at construction.
type Globals struct{ next uint64 }

// NewGlobals returns an empty shared segment allocator.
func NewGlobals() *Globals { return &Globals{next: GlobalBase} }

// Alloc reserves n bytes, 64-byte aligned, and returns the base address.
func (g *Globals) Alloc(n int) uint64 {
	g.next = (g.next + 63) &^ 63
	base := g.next
	g.next += uint64(n)
	if g.next >= HeapBase {
		panic("alloc: shared data segment exhausted")
	}
	return base
}

// Policy selects the heap allocation strategy.
type Policy uint8

// Heap allocation policies.
const (
	// PolicyCPU is the SIMR-agnostic default: allocations are 16-byte
	// aligned bumps within the thread's arena. Because every arena
	// starts at the same bank alignment, parallel threads walking their
	// private arrays hit the same L1 bank together.
	PolicyCPU Policy = iota
	// PolicySIMR offsets each allocation so that
	// start % (lineBytes*banks) == (tid%banks)*lineBytes, placing each
	// thread's stream on its own starting bank (paper Fig 16b bottom).
	PolicySIMR
)

func (p Policy) String() string {
	if p == PolicySIMR {
		return "simr-aware"
	}
	return "cpu"
}

// Arena is one thread's heap allocator. It implements isa.Heap.
type Arena struct {
	tid       int
	next      uint64
	limit     uint64
	policy    Policy
	lineBytes uint64
	banks     uint64
	// Wasted counts alignment padding bytes introduced by the policy
	// (the paper reports ~896 B per 8-thread allocation round).
	Wasted uint64
}

// NewArena creates the heap arena for thread tid of a batch. lineBytes
// and banks describe the target L1 cache geometry that the SIMR-aware
// policy aligns against.
func NewArena(tid int, policy Policy, lineBytes, banks int) *Arena {
	base := HeapBase + uint64(tid)*ArenaSize
	return &Arena{
		tid:       tid,
		next:      base,
		limit:     base + ArenaSize,
		policy:    policy,
		lineBytes: uint64(lineBytes),
		banks:     uint64(banks),
	}
}

// Alloc reserves n bytes under the arena's policy and returns the base
// virtual address.
func (a *Arena) Alloc(n int) uint64 {
	var base uint64
	switch a.policy {
	case PolicySIMR:
		stride := a.lineBytes * a.banks
		want := (uint64(a.tid) % a.banks) * a.lineBytes
		base = a.next
		if rem := base % stride; rem != want {
			base += (want + stride - rem) % stride
		}
	default:
		base = (a.next + 15) &^ 15
	}
	a.Wasted += base - a.next
	a.next = base + uint64(n)
	if a.next > a.limit {
		panic(fmt.Sprintf("alloc: arena for thread %d exhausted", a.tid))
	}
	return base
}

// Used returns the bytes consumed so far, including padding.
func (a *Arena) Used() uint64 { return a.next - (HeapBase + uint64(a.tid)*ArenaSize) }

// StackGroup describes the contiguous stack segments of one batch and
// the optional 4-byte physical interleaving the RPU driver applies.
type StackGroup struct {
	base       uint64
	batchSize  int
	interleave bool
}

// NewStackGroup lays out batchSize contiguous stack segments for batch
// number batchIdx. interleave enables the RPU physical mapping; the CPU
// identity mapping is used otherwise.
func NewStackGroup(batchIdx, batchSize int, interleave bool) *StackGroup {
	return &StackGroup{
		base:       StackRegion + uint64(batchIdx)*uint64(batchSize)*StackSize,
		batchSize:  batchSize,
		interleave: interleave,
	}
}

// StackBase returns the initial stack pointer (exclusive segment top)
// for thread tid.
func (g *StackGroup) StackBase(tid int) uint64 {
	if tid < 0 || tid >= g.batchSize {
		panic(fmt.Sprintf("alloc: tid %d outside batch of %d", tid, g.batchSize))
	}
	return g.base + uint64(tid+1)*StackSize
}

// Contains reports whether virt falls inside this group's segments.
func (g *StackGroup) Contains(virt uint64) bool {
	return virt >= g.base && virt < g.base+uint64(g.batchSize)*StackSize
}

// TargetTID returns the thread whose segment contains virt, i.e. the
// paper's TargetTID = (SSi-SS0)/StackSize computation that permits
// inter-thread stack access.
func (g *StackGroup) TargetTID(virt uint64) int {
	if !g.Contains(virt) {
		return -1
	}
	return int((virt - g.base) / StackSize)
}

// Translate maps a virtual stack access of size bytes to the physical
// 4-byte-granule addresses it touches. Without interleaving this is the
// identity access (one address). With interleaving, granule w of thread
// t lands at base + w*4*batchSize + t*4, so the same stack offset
// across a batch becomes physically contiguous and coalesces into
// cache lines.
func (g *StackGroup) Translate(virt uint64, size int) []uint64 {
	return g.AppendTranslate(nil, virt, size)
}

// AppendTranslate is Translate writing into a caller-provided buffer:
// it appends the physical granule addresses to dst and returns the
// extended slice, allocating only when dst lacks capacity. It is the
// allocation-free path the per-batch uop conversion uses.
func (g *StackGroup) AppendTranslate(dst []uint64, virt uint64, size int) []uint64 {
	if size <= 0 {
		size = 1
	}
	if !g.interleave {
		return append(dst, virt)
	}
	tid := g.TargetTID(virt)
	if tid < 0 {
		return append(dst, virt)
	}
	off := virt - g.base - uint64(tid)*StackSize
	first := off / InterleaveBytes
	last := (off + uint64(size) - 1) / InterleaveBytes
	for w := first; w <= last; w++ {
		phys := g.base + w*InterleaveBytes*uint64(g.batchSize) + uint64(tid)*InterleaveBytes
		dst = append(dst, phys)
	}
	return dst
}
