package alloc

import "fmt"

// AccessViolation is the AGU exception of paper §VI-C: a thread touched
// another thread's stack segment without permission. Because a batch's
// stack segments are physically adjacent (and interleaved), the
// address generation unit must police inter-thread stack references
// that ordinary CPU virtual memory would have allowed to fault
// naturally.
type AccessViolation struct {
	Accessor  int
	TargetTID int
	Virt      uint64
}

func (e *AccessViolation) Error() string {
	return fmt.Sprintf("alloc: thread %d accessed thread %d's stack at %#x without permission",
		e.Accessor, e.TargetTID, e.Virt)
}

// CheckAccess validates a stack access by thread tid against the
// group's sharing policy: the paper's AGU computes
// TargetTID = (SSi-SS0)/StackSize and raises an exception when the
// access crosses threads and sharing is not permitted. Non-stack
// addresses and own-segment accesses always pass.
func (g *StackGroup) CheckAccess(virt uint64, tid int, allowCross bool) error {
	target := g.TargetTID(virt)
	if target < 0 || target == tid || allowCross {
		return nil
	}
	return &AccessViolation{Accessor: tid, TargetTID: target, Virt: virt}
}
