package alloc

import (
	"testing"
	"testing/quick"
)

func TestSegmentClassification(t *testing.T) {
	g := NewGlobals()
	ga := g.Alloc(64)
	if !IsGlobal(ga) || IsHeap(ga) || IsStack(ga) {
		t.Fatalf("global addr %#x misclassified", ga)
	}
	a := NewArena(0, PolicyCPU, 32, 8)
	ha := a.Alloc(64)
	if !IsHeap(ha) || IsGlobal(ha) || IsStack(ha) {
		t.Fatalf("heap addr %#x misclassified", ha)
	}
	sg := NewStackGroup(0, 4, false)
	sa := sg.StackBase(2) - 16
	if !IsStack(sa) || IsHeap(sa) {
		t.Fatalf("stack addr %#x misclassified", sa)
	}
}

func TestGlobalsSequentialNonOverlap(t *testing.T) {
	g := NewGlobals()
	prevEnd := uint64(0)
	for i := 0; i < 100; i++ {
		n := 64 + i*7
		a := g.Alloc(n)
		if a < prevEnd {
			t.Fatalf("allocation %d overlaps previous: %#x < %#x", i, a, prevEnd)
		}
		if a%64 != 0 {
			t.Fatalf("allocation %d not 64-aligned: %#x", i, a)
		}
		prevEnd = a + uint64(n)
	}
}

func TestArenaCPUPolicy(t *testing.T) {
	a := NewArena(3, PolicyCPU, 32, 8)
	x := a.Alloc(100)
	y := a.Alloc(10)
	if y < x+100 {
		t.Fatal("overlapping CPU allocations")
	}
	if x%16 != 0 || y%16 != 0 {
		t.Fatal("CPU allocations must be 16-aligned")
	}
}

func TestArenaSIMRPolicyBankAlignment(t *testing.T) {
	const line, banks = 32, 8
	for tid := 0; tid < 16; tid++ {
		a := NewArena(tid, PolicySIMR, line, banks)
		for i := 0; i < 20; i++ {
			addr := a.Alloc(100 + i*13)
			wantBank := tid % banks
			gotBank := int(addr / line % banks)
			if gotBank != wantBank {
				t.Fatalf("tid %d alloc %d: bank %d, want %d (addr %#x)", tid, i, gotBank, wantBank, addr)
			}
		}
	}
}

func TestArenaSIMRThreadsConflictFree(t *testing.T) {
	// Threads walking their private arrays at the same index must land
	// on distinct banks (paper Fig 16b bottom).
	const line, banks = 32, 8
	bases := make([]uint64, banks)
	for tid := 0; tid < banks; tid++ {
		bases[tid] = NewArena(tid, PolicySIMR, line, banks).Alloc(4096)
	}
	for idx := 0; idx < 64; idx++ {
		seen := map[int]bool{}
		for tid := 0; tid < banks; tid++ {
			b := int((bases[tid] + uint64(idx)*line) / line % banks)
			if seen[b] {
				t.Fatalf("bank conflict at index %d", idx)
			}
			seen[b] = true
		}
	}
}

func TestStackBasesContiguous(t *testing.T) {
	sg := NewStackGroup(0, 8, false)
	for tid := 0; tid < 7; tid++ {
		if sg.StackBase(tid+1)-sg.StackBase(tid) != StackSize {
			t.Fatalf("stack segments not contiguous at tid %d", tid)
		}
	}
	sg2 := NewStackGroup(1, 8, false)
	if sg2.StackBase(0) <= sg.StackBase(7) {
		t.Fatal("batch groups overlap")
	}
}

func TestTargetTID(t *testing.T) {
	sg := NewStackGroup(0, 4, true)
	for tid := 0; tid < 4; tid++ {
		addr := sg.StackBase(tid) - 24
		if got := sg.TargetTID(addr); got != tid {
			t.Fatalf("TargetTID(%#x) = %d, want %d", addr, got, tid)
		}
	}
	if sg.TargetTID(0x1000) != -1 {
		t.Fatal("out-of-group addr should return -1")
	}
}

func TestTranslateIdentityWithoutInterleave(t *testing.T) {
	sg := NewStackGroup(0, 4, false)
	addr := sg.StackBase(1) - 64
	phys := sg.Translate(addr, 8)
	if len(phys) != 1 || phys[0] != addr {
		t.Fatalf("identity translate failed: %v", phys)
	}
}

func TestTranslateInterleavePattern(t *testing.T) {
	const bs = 32
	sg := NewStackGroup(0, bs, true)
	// All threads at the same stack offset: their 8-byte accesses must
	// become physically contiguous word pairs: 8B × 32 threads → 256
	// contiguous bytes = 8 lines of 32B (the paper's push example).
	lines := map[uint64]bool{}
	for tid := 0; tid < bs; tid++ {
		addr := sg.StackBase(tid) - 8
		for _, p := range sg.Translate(addr, 8) {
			lines[p&^uint64(31)] = true
		}
	}
	if len(lines) != 8 {
		t.Fatalf("32 interleaved 8B pushes span %d lines, want 8", len(lines))
	}
}

func TestTranslateGranuleCount(t *testing.T) {
	sg := NewStackGroup(0, 4, true)
	addr := sg.StackBase(0) - 16
	if got := len(sg.Translate(addr, 8)); got != 2 {
		t.Fatalf("8B access spans %d granules, want 2", got)
	}
	if got := len(sg.Translate(addr, 4)); got != 1 {
		t.Fatalf("4B access spans %d granules, want 1", got)
	}
}

// Property: interleaved translation is injective — distinct (tid,
// offset) granules map to distinct physical granules.
func TestQuickTranslateInjective(t *testing.T) {
	sg := NewStackGroup(0, 8, true)
	f := func(tidA, tidB uint8, offA, offB uint16) bool {
		ta, tb := int(tidA%8), int(tidB%8)
		oa := uint64(offA%4096)&^3 + 8
		ob := uint64(offB%4096)&^3 + 8
		pa := sg.Translate(sg.StackBase(ta)-oa, 4)[0]
		pb := sg.Translate(sg.StackBase(tb)-ob, 4)[0]
		same := ta == tb && oa == ob
		return (pa == pb) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arena exhaustion")
		}
	}()
	a := NewArena(0, PolicyCPU, 32, 8)
	a.Alloc(int(ArenaSize) + 1)
}

func TestWastedTracking(t *testing.T) {
	a := NewArena(5, PolicySIMR, 32, 8)
	a.Alloc(10)
	a.Alloc(10)
	if a.Wasted == 0 {
		t.Fatal("SIMR alignment should record padding waste")
	}
	if a.Used() == 0 {
		t.Fatal("used bytes not tracked")
	}
}

func TestCheckAccessPolicy(t *testing.T) {
	sg := NewStackGroup(0, 4, true)
	own := sg.StackBase(1) - 32
	other := sg.StackBase(2) - 32

	if err := sg.CheckAccess(own, 1, false); err != nil {
		t.Fatalf("own-segment access rejected: %v", err)
	}
	err := sg.CheckAccess(other, 1, false)
	if err == nil {
		t.Fatal("cross-thread access allowed without permission")
	}
	av, ok := err.(*AccessViolation)
	if !ok || av.Accessor != 1 || av.TargetTID != 2 {
		t.Fatalf("violation details wrong: %v", err)
	}
	if sg.CheckAccess(other, 1, true) != nil {
		t.Fatal("permitted cross-thread access rejected")
	}
	// Heap addresses are not the AGU's business.
	if sg.CheckAccess(HeapBase+64, 1, false) != nil {
		t.Fatal("non-stack address rejected")
	}
}
