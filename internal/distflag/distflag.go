// Package distflag wires the distributed-sweep flag set into the cmd
// drivers, following the cacheflag/obsflag pattern:
//
//	-dist worker     -addr HOST:PORT   join a dispatcher and execute tasks
//	-dist dispatcher -addr HOST:PORT   serve the driver's sweep to workers
//	-dist local      -distworkers N    fork N local workers of this binary
//
// Worker mode ignores the driver's study flags — the sweep definition
// and all simulation knobs arrive in the dispatcher's handshake — so
// any driver embedding this package can serve as the worker binary for
// its own dispatcher. With -dist unset nothing changes: the driver
// runs its normal single-process path.
package distflag

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"simr/internal/dist"
)

// Flags holds the registered distributed-mode flags for one driver.
type Flags struct {
	mode       *string
	addr       *string
	workers    *int
	journal    *string
	resume     *bool
	window     *int
	metricsOut *string
}

// Add registers the distributed flags on fs. Call before flag.Parse.
func Add(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.mode = fs.String("dist", "",
		"distributed mode: 'dispatcher' (serve this sweep to workers at -addr), 'worker' (join a dispatcher at -addr), or 'local' (fork -distworkers local worker processes)")
	f.addr = fs.String("addr", "",
		"dispatcher TCP address: listen address for -dist dispatcher (default 127.0.0.1:0), dial address for -dist worker")
	f.workers = fs.Int("distworkers", 2, "forked local worker processes for -dist local")
	f.journal = fs.String("journal", "",
		"dispatcher checkpoint journal path; completed tasks are fsync'd so a killed sweep resumes with -resume")
	f.resume = fs.Bool("resume", false, "resume the sweep recorded in -journal instead of restarting it")
	f.window = fs.Int("window", 0,
		"dispatcher reorder window: max dispatch-ahead past the first incomplete task (0 = 64)")
	f.metricsOut = fs.String("distmetrics", "",
		"write the merged per-task worker metrics snapshot (deterministic-filtered JSON) to this file (dispatcher/local modes)")
	return f
}

// Mode returns the raw -dist value.
func (f *Flags) Mode() string { return *f.mode }

// Active reports whether the driver should route its sweep through the
// dispatcher (-dist dispatcher or -dist local).
func (f *Flags) Active() bool { return *f.mode == "dispatcher" || *f.mode == "local" }

// logf prefixes progress lines on stderr, keeping stdout clean for
// study output.
func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// HandleWorker runs worker mode when selected. It returns true when
// the driver should exit (worker mode ran, successfully or not).
func (f *Flags) HandleWorker(ctx context.Context) (bool, error) {
	if *f.mode != "worker" {
		if *f.mode != "" && !f.Active() {
			return true, fmt.Errorf("distflag: unknown -dist mode %q (want dispatcher, worker or local)", *f.mode)
		}
		return false, nil
	}
	if *f.addr == "" {
		return true, errors.New("distflag: -dist worker requires -addr")
	}
	return true, dist.RunWorker(ctx, dist.WorkerOptions{Addr: *f.addr, Logf: logf})
}

// Run executes the sweep through the selected distributed mode:
// 'dispatcher' serves external workers at -addr, 'local' forks
// -distworkers copies of this binary. Both return the reassembled
// sweep result, which renders byte-identically to the single-process
// path.
func (f *Flags) Run(ctx context.Context, spec dist.SweepSpec) (*dist.SweepResult, error) {
	cfg := dist.CaptureConfig(*f.metricsOut != "")
	opts := dist.DispatcherOptions{
		Window:  *f.window,
		Journal: *f.journal,
		Resume:  *f.resume,
		Logf:    logf,
	}
	var (
		res *dist.SweepResult
		err error
	)
	switch *f.mode {
	case "dispatcher":
		opts.Addr = *f.addr
		var d *dist.Dispatcher
		if d, err = dist.NewDispatcher(spec, cfg, opts); err != nil {
			return nil, err
		}
		logf("dist: dispatcher listening on %s — start workers with: <binary> -dist worker -addr %s", d.Addr(), d.Addr())
		res, err = d.Run(ctx)
	case "local":
		res, err = dist.RunLocal(ctx, spec, cfg, *f.workers, opts)
	default:
		return nil, fmt.Errorf("distflag: Run called with -dist %q", *f.mode)
	}
	if err != nil {
		return nil, err
	}
	if *f.metricsOut != "" {
		file, ferr := os.Create(*f.metricsOut)
		if ferr != nil {
			return nil, ferr
		}
		if ferr := res.Obs.WriteJSON(file); ferr != nil {
			file.Close()
			return nil, ferr
		}
		if ferr := file.Close(); ferr != nil {
			return nil, ferr
		}
	}
	return res, nil
}
