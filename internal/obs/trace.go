// Chrome-trace event sink: collects events in the Trace Event Format's
// "JSON array" flavour, which chrome://tracing and Perfetto load
// directly. Timestamps are microseconds; wall-clock instrumentation
// stamps events relative to the sink's creation via TS, while the
// queueing simulator stamps them on its own simulated clock.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one Trace Event Format entry. Ph "X" is a complete event
// (needs Dur), "C" a counter sample, "i" an instant and "M" metadata.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceSink accumulates trace events. It is safe for concurrent use;
// every method is a no-op on a nil receiver so disabled call sites pay
// a single pointer test.
type TraceSink struct {
	start time.Time
	mu    sync.Mutex
	evs   []Event
}

// NewTraceSink returns an empty sink whose TS epoch is now.
func NewTraceSink() *TraceSink { return &TraceSink{start: time.Now()} }

// TS converts a wall-clock instant into the sink's timestamp space
// (microseconds since sink creation). Returns 0 on a nil receiver.
func (s *TraceSink) TS(t time.Time) float64 {
	if s == nil {
		return 0
	}
	return float64(t.Sub(s.start)) / float64(time.Microsecond)
}

func (s *TraceSink) add(e Event) {
	s.mu.Lock()
	s.evs = append(s.evs, e)
	s.mu.Unlock()
}

// Complete records a ph "X" span of dur microseconds starting at ts.
func (s *TraceSink) Complete(name, cat string, pid, tid int, ts, dur float64) {
	if s == nil {
		return
	}
	s.add(Event{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid})
}

// Instant records a ph "i" point event.
func (s *TraceSink) Instant(name, cat string, pid, tid int, ts float64) {
	if s == nil {
		return
	}
	s.add(Event{Name: name, Cat: cat, Ph: "i", TS: ts, PID: pid, TID: tid, Args: map[string]any{"s": "t"}})
}

// CounterPair records a ph "C" counter sample with two named series —
// the allocation-free-when-disabled form the hot paths use (a map
// literal at the call site would allocate even when the sink is nil).
func (s *TraceSink) CounterPair(name string, pid int, ts float64, k1 string, v1 float64, k2 string, v2 float64) {
	if s == nil {
		return
	}
	s.add(Event{Name: name, Ph: "C", TS: ts, PID: pid, Args: map[string]any{k1: v1, k2: v2}})
}

// Meta records a ph "M" metadata event; name "process_name" with a
// "name" arg labels pid's track in the viewer.
func (s *TraceSink) Meta(name string, pid int, label string) {
	if s == nil {
		return
	}
	s.add(Event{Name: name, Ph: "M", PID: pid, Args: map[string]any{"name": label}})
}

// Len returns the number of recorded events.
func (s *TraceSink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.evs)
}

// WriteJSON writes the events as a Trace Event Format JSON array.
func (s *TraceSink) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	s.mu.Lock()
	evs := append([]Event(nil), s.evs...)
	s.mu.Unlock()
	if len(evs) == 0 {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	raw, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}
