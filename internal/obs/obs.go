// Package obs is the zero-dependency observability layer of the
// simulator: atomic counters, gauges and fixed-bucket histograms
// grouped into a named-scope registry with deterministic snapshot
// ordering, plus a Chrome-trace (chrome://tracing / Perfetto JSON)
// event sink (trace.go).
//
// Instrumentation is off by default and allocation-free when disabled:
// every instrument method is a no-op on a nil receiver, the registry
// accessors return nil instruments when no registry is installed, and
// hot paths hold on to the (possibly nil) instrument pointers they
// resolved at setup time. Observation never changes simulation
// results — study output is byte-identical with the layer on or off.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; all methods are no-ops on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observation v lands in the
// first bucket whose upper bound is >= v, or in the overflow bucket
// when v exceeds every bound. Bounds are fixed at creation; Observe is
// lock-free. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram over the (ascending) bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot captures the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Scope is a named group of instruments. Instruments are created on
// first access and shared afterwards; all accessors return nil on a
// nil receiver so disabled call sites stay allocation-free.
type Scope struct {
	name string
	mu   sync.Mutex
	cs   map[string]*Counter
	gs   map[string]*Gauge
	hs   map[string]*Histogram
}

// Counter returns the scope's counter with the given name, creating it
// on first use.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cs[name]
	if !ok {
		c = &Counter{}
		s.cs[name] = c
	}
	return c
}

// Gauge returns the scope's gauge with the given name, creating it on
// first use.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gs[name]
	if !ok {
		g = &Gauge{}
		s.gs[name] = g
	}
	return g
}

// Histogram returns the scope's histogram with the given name,
// creating it with the given bucket bounds on first use (later calls
// keep the original bounds).
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hs[name]
	if !ok {
		h = newHistogram(bounds)
		s.hs[name] = h
	}
	return h
}

// Registry holds named scopes. It is safe for concurrent use; a nil
// *Registry is accepted everywhere and hands out nil scopes.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: map[string]*Scope{}}
}

// Scope returns the named scope, creating it on first use.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.scopes[name]
	if !ok {
		s = &Scope{name: name, cs: map[string]*Counter{}, gs: map[string]*Gauge{}, hs: map[string]*Histogram{}}
		r.scopes[name] = s
	}
	return s
}

// HistogramSnapshot is the captured state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// ScopeSnapshot is the captured state of one scope. Map keys marshal
// in sorted order, so the JSON form is deterministic.
type ScopeSnapshot struct {
	Name       string                       `json:"name"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot is a point-in-time capture of a whole registry with scopes
// ordered by name.
type Snapshot struct {
	Scopes []ScopeSnapshot `json:"scopes"`
}

// Snapshot captures every scope's instruments, with scopes sorted by
// name so repeated snapshots of the same state are identical.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.scopes))
	for n := range r.scopes {
		names = append(names, n)
	}
	scopes := make([]*Scope, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		scopes = append(scopes, r.scopes[n])
	}
	r.mu.Unlock()

	snap := Snapshot{Scopes: make([]ScopeSnapshot, 0, len(scopes))}
	for _, s := range scopes {
		s.mu.Lock()
		ss := ScopeSnapshot{Name: s.name}
		if len(s.cs) > 0 {
			ss.Counters = make(map[string]int64, len(s.cs))
			for n, c := range s.cs {
				ss.Counters[n] = c.Load()
			}
		}
		if len(s.gs) > 0 {
			ss.Gauges = make(map[string]int64, len(s.gs))
			for n, g := range s.gs {
				ss.Gauges[n] = g.Load()
			}
		}
		if len(s.hs) > 0 {
			ss.Histograms = make(map[string]HistogramSnapshot, len(s.hs))
			for n, h := range s.hs {
				ss.Histograms[n] = h.snapshot()
			}
		}
		s.mu.Unlock()
		snap.Scopes = append(snap.Scopes, ss)
	}
	return snap
}

// Deterministic returns a copy of the snapshot with every
// wall-clock-derived instrument removed: any counter, gauge or
// histogram whose name contains "_ns" (busy/stall/latency
// nanoseconds and their high-water marks) depends on host timing, not
// on simulation input. What remains is reproducible run to run — and
// process to process — for the same deterministic workload, so the
// distributed tier byte-compares and merges deterministic snapshots
// across workers. Scopes left empty by the filter are dropped.
func (s Snapshot) Deterministic() Snapshot {
	timing := func(name string) bool { return strings.Contains(name, "_ns") }
	out := Snapshot{}
	for _, sc := range s.Scopes {
		fs := ScopeSnapshot{Name: sc.Name}
		for n, v := range sc.Counters {
			if timing(n) {
				continue
			}
			if fs.Counters == nil {
				fs.Counters = map[string]int64{}
			}
			fs.Counters[n] = v
		}
		for n, v := range sc.Gauges {
			if timing(n) {
				continue
			}
			if fs.Gauges == nil {
				fs.Gauges = map[string]int64{}
			}
			fs.Gauges[n] = v
		}
		for n, h := range sc.Histograms {
			if timing(n) {
				continue
			}
			if fs.Histograms == nil {
				fs.Histograms = map[string]HistogramSnapshot{}
			}
			fs.Histograms[n] = h
		}
		if fs.Counters != nil || fs.Gauges != nil || fs.Histograms != nil {
			out.Scopes = append(out.Scopes, fs)
		}
	}
	return out
}

// MergeSnapshots combines snapshots taken from independent registries
// (one per distributed task) into one aggregate: counters add, gauges
// take the maximum (every gauge in this codebase is a high-water
// mark), histograms add bucket-wise when their bounds agree (on a
// bounds mismatch the first histogram wins and the rest are dropped —
// instrument points use fixed bounds, so this only happens across
// incompatible binaries, which the wire handshake already rejects).
// Histogram sums accumulate in argument order, so merging an ordered
// task list is deterministic. Scopes are emitted sorted by name.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	type scopeAcc struct {
		counters map[string]int64
		gauges   map[string]int64
		hists    map[string]HistogramSnapshot
	}
	accs := map[string]*scopeAcc{}
	get := func(name string) *scopeAcc {
		a, ok := accs[name]
		if !ok {
			a = &scopeAcc{counters: map[string]int64{}, gauges: map[string]int64{}, hists: map[string]HistogramSnapshot{}}
			accs[name] = a
		}
		return a
	}
	boundsEqual := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, s := range snaps {
		for _, sc := range s.Scopes {
			a := get(sc.Name)
			for n, v := range sc.Counters {
				a.counters[n] += v
			}
			for n, v := range sc.Gauges {
				if cur, ok := a.gauges[n]; !ok || v > cur {
					a.gauges[n] = v
				}
			}
			for n, h := range sc.Histograms {
				cur, ok := a.hists[n]
				if !ok {
					a.hists[n] = HistogramSnapshot{
						Bounds: append([]float64(nil), h.Bounds...),
						Counts: append([]int64(nil), h.Counts...),
						Count:  h.Count,
						Sum:    h.Sum,
					}
					continue
				}
				if !boundsEqual(cur.Bounds, h.Bounds) {
					continue
				}
				for i := range cur.Counts {
					cur.Counts[i] += h.Counts[i]
				}
				cur.Count += h.Count
				cur.Sum += h.Sum
				a.hists[n] = cur
			}
		}
	}
	names := make([]string, 0, len(accs))
	for n := range accs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := Snapshot{}
	for _, n := range names {
		a := accs[n]
		sc := ScopeSnapshot{Name: n}
		if len(a.counters) > 0 {
			sc.Counters = a.counters
		}
		if len(a.gauges) > 0 {
			sc.Gauges = a.gauges
		}
		if len(a.hists) > 0 {
			sc.Histograms = a.hists
		}
		out.Scopes = append(out.Scopes, sc)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// hub is the installed global observability state.
type hub struct {
	reg  *Registry
	sink *TraceSink
}

var global atomic.Pointer[hub]

// Enable installs the process-global registry and trace sink (either
// may be nil to enable only the other). Instrument points resolve
// their instruments through Default/Trace, so Enable must run before
// the instrumented code constructs its probes.
func Enable(reg *Registry, sink *TraceSink) {
	global.Store(&hub{reg: reg, sink: sink})
}

// Disable removes the global registry and sink; subsequent
// instrumentation resolves to nil no-op instruments.
func Disable() { global.Store(nil) }

// Enabled reports whether a registry or sink is installed.
func Enabled() bool { return global.Load() != nil }

// Default returns the installed global registry, or nil when
// observability is disabled.
func Default() *Registry {
	if h := global.Load(); h != nil {
		return h.reg
	}
	return nil
}

// Trace returns the installed global trace sink, or nil when disabled.
func Trace() *TraceSink {
	if h := global.Load(); h != nil {
		return h.sink
	}
	return nil
}
