package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	if c.Load() != 4 {
		t.Fatalf("counter %d, want 4", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.SetMax(5)
	if g.Load() != 7 {
		t.Fatalf("gauge %d, want 7 (SetMax must not lower)", g.Load())
	}
	g.SetMax(11)
	if g.Load() != 11 {
		t.Fatalf("gauge %d, want 11", g.Load())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	// Bucket i holds v <= bounds[i]; the last bucket is overflow.
	for _, v := range []float64{0.5, 1.0} {
		h.Observe(v) // bucket 0 (v <= 1)
	}
	h.Observe(1.5) // bucket 1
	h.Observe(2.0) // bucket 1 (inclusive upper bound)
	h.Observe(4.9) // bucket 2
	h.Observe(5.1) // overflow
	s := h.snapshot()
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count %d, want 6", s.Count)
	}
	if s.Sum < 15.0-1e-9 || s.Sum > 15.0+1e-9 {
		t.Fatalf("sum %v, want 15", s.Sum)
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	// Concurrent writers across several scopes; snapshot mid-flight must
	// be race-free, and two quiescent snapshots must render identically.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			names := []string{"zeta", "alpha", "mid"}
			sc := r.Scope(names[i%len(names)])
			for j := 0; j < 1000; j++ {
				sc.Counter("ops").Inc()
				sc.Gauge("hwm").SetMax(int64(j))
				sc.Histogram("lat", []float64{1, 10, 100}).Observe(float64(j % 150))
			}
		}(i)
	}
	_ = r.Snapshot() // concurrent with the writers: -race must stay clean
	wg.Wait()

	var a, b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	snap := r.Snapshot()
	names := []string{"alpha", "mid", "zeta"}
	if len(snap.Scopes) != 3 {
		t.Fatalf("scopes %d, want 3", len(snap.Scopes))
	}
	total := int64(0)
	for i, sc := range snap.Scopes {
		if sc.Name != names[i] {
			t.Fatalf("scope %d = %q, want %q (sorted)", i, sc.Name, names[i])
		}
		total += sc.Counters["ops"]
	}
	if total != 8000 {
		t.Fatalf("ops across scopes %d, want 8000", total)
	}
}

func TestDisabledPathAllocs(t *testing.T) {
	Disable()
	var (
		c *Counter
		g *Gauge
		h *Histogram
		s *TraceSink
	)
	n := testing.AllocsPerRun(200, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		g.SetMax(2)
		h.Observe(3.5)
		s.Complete("x", "y", 0, 0, 1, 2)
		s.CounterPair("q", 0, 1, "a", 1, "b", 2)
		s.Instant("i", "c", 0, 0, 1)
		_ = s.TS(time.Time{})
		// The full disabled resolution chain: nil registry -> nil scope
		// -> nil instruments.
		reg := Default()
		reg.Scope("core.prep").Counter("stall_ns").Add(5)
		Trace().Complete("cell", "runcells", 0, 0, 0, 0)
	})
	if n != 0 {
		t.Fatalf("disabled instrumentation allocates %v allocs/op, want 0", n)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	if Enabled() {
		t.Fatal("enabled before Enable")
	}
	r := NewRegistry()
	sink := NewTraceSink()
	Enable(r, sink)
	if !Enabled() || Default() != r || Trace() != sink {
		t.Fatal("Enable did not install hub")
	}
	Default().Scope("s").Counter("c").Inc()
	if got := r.Snapshot().Scopes[0].Counters["c"]; got != 1 {
		t.Fatalf("counter via global = %d, want 1", got)
	}
	Disable()
	if Enabled() || Default() != nil || Trace() != nil {
		t.Fatal("Disable did not clear hub")
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Scope("a").Counter("n").Add(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Scopes []struct {
			Name     string           `json:"name"`
			Counters map[string]int64 `json:"counters"`
		} `json:"scopes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Scopes) != 1 || decoded.Scopes[0].Name != "a" || decoded.Scopes[0].Counters["n"] != 2 {
		t.Fatalf("unexpected snapshot shape: %s", buf.String())
	}
}
