package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Chrome-trace golden file")

// TestTraceGolden renders a small deterministic timeline (explicit
// timestamps, no wall clock) and compares it byte for byte against the
// checked-in golden file. Run with -update-golden after an intentional
// format change.
func TestTraceGolden(t *testing.T) {
	s := NewTraceSink()
	s.Meta("process_name", 1, "queuesim cpu-qps5000")
	s.Complete("web", "station", 1, 0, 0, 250)
	s.Complete("user", "station", 1, 1, 310, 1500)
	s.CounterPair("user", 1, 310, "busy", 1, "queue", 0)
	s.CounterPair("user", 1, 1810, "busy", 0, "queue", 2)
	s.Instant("batch-flush", "rpu", 1, 0, 1810)

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace export differs from golden file:\n got: %s\nwant: %s", buf.String(), want)
	}
}

// TestTracePerfettoShape checks the invariants the acceptance criteria
// name: the export is a JSON array of events carrying ph, ts and name.
func TestTracePerfettoShape(t *testing.T) {
	s := NewTraceSink()
	s.Complete("cell", "runcells", 0, 3, 12.5, 100)
	s.CounterPair("memcached", 2, 40, "busy", 3, "queue", 1)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.String())
	}
	if len(evs) != 2 {
		t.Fatalf("events %d, want 2", len(evs))
	}
	for i, e := range evs {
		for _, k := range []string{"name", "ph"} {
			if _, ok := e[k].(string); !ok {
				t.Fatalf("event %d missing %q: %v", i, k, e)
			}
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("event %d missing ts: %v", i, e)
		}
	}
}

func TestEmptySinkWritesArray(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTraceSink().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil || len(evs) != 0 {
		t.Fatalf("empty sink should render []: %q err %v", buf.String(), err)
	}
	// Nil sink: same shape, so drivers can write unconditionally.
	buf.Reset()
	var nilSink *TraceSink
	if err := nilSink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("nil sink export invalid: %v", err)
	}
}
