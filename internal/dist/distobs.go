// Observability probes for the distributed tier, following the
// nil-receiver no-op pattern of core's probes: when no obs hub is
// installed the probe is nil and every hook is a pointer test.
//
// Dispatcher scope "dist.dispatcher": task queue movement (dispatched,
// completed, requeued, duplicate results), worker churn (joins,
// losses, schema rejects), journal activity, in-flight and worker
// high-water marks, and the task RPC round-trip latency histogram.
// Worker scope "dist.worker" (in the worker process's own registry,
// e.g. a worker launched with -metrics): tasks run, execution time and
// result payload bytes.
package dist

import (
	"time"

	"simr/internal/obs"
)

// rpcBoundsNS buckets task round-trip latency from 1ms to ~2min.
var rpcBoundsNS = []float64{
	1e6, 1e7, 1e8, 3e8, 1e9, 3e9, 1e10, 3e10, 1.2e11,
}

// dispObs instruments one dispatcher run.
type dispObs struct {
	dispatched *obs.Counter
	completed  *obs.Counter
	requeued   *obs.Counter
	dupes      *obs.Counter
	joins      *obs.Counter
	losses     *obs.Counter
	rejects    *obs.Counter
	jrecords   *obs.Counter
	jresumed   *obs.Counter
	inflight   *obs.Gauge
	workers    *obs.Gauge
	rpcNS      *obs.Histogram
}

// dispProbe resolves the dispatcher instruments, or nil when
// observability is disabled.
func dispProbe() *dispObs {
	if !obs.Enabled() {
		return nil
	}
	sc := obs.Default().Scope("dist.dispatcher")
	return &dispObs{
		dispatched: sc.Counter("tasks_dispatched"),
		completed:  sc.Counter("tasks_completed"),
		requeued:   sc.Counter("tasks_requeued"),
		dupes:      sc.Counter("duplicate_results"),
		joins:      sc.Counter("workers_joined"),
		losses:     sc.Counter("workers_lost"),
		rejects:    sc.Counter("schema_rejects"),
		jrecords:   sc.Counter("journal_records"),
		jresumed:   sc.Counter("journal_resumed"),
		inflight:   sc.Gauge("inflight_hwm"),
		workers:    sc.Gauge("workers_hwm"),
		rpcNS:      sc.Histogram("task_rtt_ns", rpcBoundsNS),
	}
}

func (p *dispObs) taskDispatched(inflight int) {
	if p == nil {
		return
	}
	p.dispatched.Inc()
	p.inflight.SetMax(int64(inflight))
}

func (p *dispObs) taskCompleted(rtt time.Duration) {
	if p == nil {
		return
	}
	p.completed.Inc()
	p.rpcNS.Observe(float64(rtt.Nanoseconds()))
}

func (p *dispObs) taskRequeued() {
	if p == nil {
		return
	}
	p.requeued.Inc()
}

func (p *dispObs) duplicateResult() {
	if p == nil {
		return
	}
	p.dupes.Inc()
}

func (p *dispObs) workerJoined(workers int) {
	if p == nil {
		return
	}
	p.joins.Inc()
	p.workers.SetMax(int64(workers))
}

func (p *dispObs) workerLost() {
	if p == nil {
		return
	}
	p.losses.Inc()
}

func (p *dispObs) schemaReject() {
	if p == nil {
		return
	}
	p.rejects.Inc()
}

func (p *dispObs) journalRecord() {
	if p == nil {
		return
	}
	p.jrecords.Inc()
}

func (p *dispObs) journalResumed(n int) {
	if p == nil {
		return
	}
	p.jresumed.Add(int64(n))
}

// workerObs instruments task execution on the worker side. It is
// resolved once at RunWorker start against the worker process's own
// hub, before any per-task registry swap, so per-task snapshots stay
// scoped to the simulation's instruments.
type workerObs struct {
	tasks   *obs.Counter
	taskNS  *obs.Counter
	resByte *obs.Counter
}

func workerProbe() *workerObs {
	if !obs.Enabled() {
		return nil
	}
	sc := obs.Default().Scope("dist.worker")
	return &workerObs{
		tasks:   sc.Counter("tasks_run"),
		taskNS:  sc.Counter("task_ns"),
		resByte: sc.Counter("result_bytes"),
	}
}

func (p *workerObs) taskDone(d time.Duration, resultBytes int) {
	if p == nil {
		return
	}
	p.tasks.Inc()
	p.taskNS.Add(d.Nanoseconds())
	p.resByte.Add(int64(resultBytes))
}
