// End-to-end tests for the dispatcher/worker tier. Workers are real
// forked processes: TestMain re-execs the test binary as a worker when
// SIMR_DIST_WORKER is set, so every test exercises the actual wire
// protocol, gob serialization and process supervision — including
// under the race detector.
package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"simr/internal/core"
	"simr/internal/obs"
	"simr/internal/uservices"
)

func TestMain(m *testing.M) {
	if addr := os.Getenv("SIMR_DIST_WORKER"); addr != "" {
		opts := WorkerOptions{Addr: addr, Name: "test-worker"}
		if n, _ := strconv.Atoi(os.Getenv("SIMR_DIST_CORRUPT")); n > 0 {
			opts.CorruptResult = n
		}
		if err := RunWorker(context.Background(), opts); err != nil {
			fmt.Fprintln(os.Stderr, "dist test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const testRequests = 8

var (
	chipSvcs = []string{"mcrouter", "memc", "urlshort", "uniqueid", "user"}
	sensSvcs = []string{"memc", "user", "post", "usertag", "uniqueid"}
)

// testSpec is the sweep every test distributes: a chip-study subset
// plus a sensitivity-grid subset, 10 tasks total.
func testSpec() SweepSpec {
	return SweepSpec{Studies: []StudySpec{
		{Kind: StudyChip, Services: chipSvcs, Requests: testRequests, Seed: 7},
		{Kind: StudySensitivity, Services: sensSvcs, Requests: testRequests, Seed: 7},
	}}
}

// singleProcessRef renders the sweep through the ordinary
// single-process study code — the byte-level oracle every distributed
// run must reproduce.
func singleProcessRef(t *testing.T) []byte {
	t.Helper()
	suite := uservices.NewSuite()
	get := func(names []string) []*uservices.Service {
		svcs := make([]*uservices.Service, len(names))
		for i, n := range names {
			svcs[i] = suite.Get(n)
		}
		return svcs
	}
	chip, err := core.ChipStudyOn(get(chipSvcs), testRequests, 7, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := core.SensPairsOn(get(sensSvcs), testRequests, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	return renderSweep(t, chip, sensSvcs, pairs)
}

func renderSweep(t *testing.T, chip []core.ChipRow, services []string, pairs []core.SensPair) []byte {
	t.Helper()
	var buf bytes.Buffer
	core.WriteFig19(&buf, chip)
	if err := core.WriteSensitivity(&buf, services, pairs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderResult(t *testing.T, res *SweepResult) []byte {
	t.Helper()
	return renderSweep(t, res.Studies[0].Chip, res.Studies[1].Services, res.Studies[1].Sens)
}

// workerEnv builds the fork environment pointing a worker at addr.
func workerEnv(addr string, extra ...string) []string {
	return append([]string{"SIMR_DIST_WORKER=" + addr}, extra...)
}

// runSweep drives one dispatcher with n forked workers to completion.
func runSweep(t *testing.T, cfg SweepConfig, opts DispatcherOptions, n int) *SweepResult {
	t.Helper()
	d, err := NewDispatcher(testSpec(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	cmds, err := StartWorkers(n, nil, workerEnv(d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer StopWorkers(cmds)
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDistributedSweepDeterminism is the cross-process determinism
// gate: the sweep run through the dispatcher at 1, 2 and 4 forked
// worker processes must render byte-identically to the single-process
// study code, and the merged per-task registry snapshots must be
// byte-identical across worker counts.
func TestDistributedSweepDeterminism(t *testing.T) {
	ref := singleProcessRef(t)
	cfg := CaptureConfig(true)
	var snapRef []byte
	for _, n := range []int{1, 2, 4} {
		res := runSweep(t, cfg, DispatcherOptions{}, n)
		if got := renderResult(t, res); !bytes.Equal(got, ref) {
			t.Fatalf("%d workers: output differs from single-process reference\n--- got ---\n%s\n--- want ---\n%s", n, got, ref)
		}
		var buf bytes.Buffer
		if err := res.Obs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if snapRef == nil {
			snapRef = buf.Bytes()
			if !strings.Contains(buf.String(), "core.runcells") {
				t.Fatalf("merged snapshot missing simulation scopes:\n%s", buf.String())
			}
		} else if !bytes.Equal(buf.Bytes(), snapRef) {
			t.Fatalf("%d workers: merged registry snapshot differs\n--- got ---\n%s\n--- want ---\n%s", n, buf.Bytes(), snapRef)
		}
	}
}

// waitProgress blocks until the dispatcher has completed at least min
// tasks (but not the whole sweep yet, if the caller is quick).
func waitProgress(t *testing.T, d *Dispatcher, min int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		d.mu.Lock()
		done := d.done
		d.mu.Unlock()
		if done >= min {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher stuck at %d/%d tasks", done, min)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerKillRequeueDeterminism kills a worker process mid-sweep:
// its in-flight task must be requeued onto a rescue worker and the
// final output must stay byte-identical to the single-process run.
func TestWorkerKillRequeueDeterminism(t *testing.T) {
	ref := singleProcessRef(t)
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	defer obs.Disable()

	d, err := NewDispatcher(testSpec(), CaptureConfig(false), DispatcherOptions{HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := StartWorkers(1, nil, workerEnv(d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer StopWorkers(victim)

	type outcome struct {
		res *SweepResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := d.Run(context.Background())
		ch <- outcome{res, err}
	}()

	waitProgress(t, d, 2)
	victim[0].Process.Kill()
	rescue, err := StartWorkers(1, nil, workerEnv(d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer StopWorkers(rescue)

	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if got := renderResult(t, out.res); !bytes.Equal(got, ref) {
		t.Fatalf("output differs from single-process reference after worker kill\n--- got ---\n%s\n--- want ---\n%s", got, ref)
	}
	snap := reg.Snapshot()
	for _, sc := range snap.Scopes {
		if sc.Name == "dist.dispatcher" {
			if sc.Counters["workers_lost"] < 1 {
				t.Fatalf("expected at least one lost worker, counters: %v", sc.Counters)
			}
			if sc.Counters["tasks_requeued"] < 1 {
				t.Fatalf("expected at least one requeued task, counters: %v", sc.Counters)
			}
		}
	}
}

// TestCorruptResultRequeueDeterminism drops a worker's connection
// midway through writing a result frame (the CorruptResult fault
// injection): the dispatcher must discard the torn frame, requeue the
// task, and still produce byte-identical output.
func TestCorruptResultRequeueDeterminism(t *testing.T) {
	ref := singleProcessRef(t)
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	defer obs.Disable()

	d, err := NewDispatcher(testSpec(), CaptureConfig(false), DispatcherOptions{HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// One worker severs its connection halfway through its second
	// result; the clean worker finishes the sweep.
	corrupt, err := StartWorkers(1, nil, workerEnv(d.Addr(), "SIMR_DIST_CORRUPT=2"))
	if err != nil {
		t.Fatal(err)
	}
	defer StopWorkers(corrupt)
	clean, err := StartWorkers(1, nil, workerEnv(d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer StopWorkers(clean)

	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := renderResult(t, res); !bytes.Equal(got, ref) {
		t.Fatalf("output differs from single-process reference after mid-result drop\n--- got ---\n%s\n--- want ---\n%s", got, ref)
	}
	snap := reg.Snapshot()
	for _, sc := range snap.Scopes {
		if sc.Name == "dist.dispatcher" && sc.Counters["tasks_requeued"] < 1 {
			t.Fatalf("expected the severed result's task to requeue, counters: %v", sc.Counters)
		}
	}
}

// TestDispatcherCheckpointResumeDeterminism kills a journaling
// dispatcher mid-sweep (context cancellation — the same path SIGINT
// takes), then resumes from the checkpoint with a fresh dispatcher:
// the resumed run must skip the journaled tasks and the final output
// must stay byte-identical to the single-process run.
func TestDispatcherCheckpointResumeDeterminism(t *testing.T) {
	ref := singleProcessRef(t)
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CaptureConfig(false)

	// First attempt: cancel once at least two tasks are journaled.
	d1, err := NewDispatcher(testSpec(), cfg, DispatcherOptions{Journal: jpath, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := StartWorkers(1, nil, workerEnv(d1.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := d1.Run(ctx)
		errCh <- err
	}()
	waitProgress(t, d1, 2)
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled dispatcher reported success")
	}
	StopWorkers(w1)

	// Resume: the fresh dispatcher must load the journaled tasks...
	d2, err := NewDispatcher(testSpec(), cfg, DispatcherOptions{Journal: jpath, Resume: true, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d2.mu.Lock()
	resumed := d2.done
	d2.mu.Unlock()
	if resumed < 2 {
		t.Fatalf("resumed dispatcher loaded %d tasks, journaled at least 2", resumed)
	}
	// ...and the completed sweep must match the single-process oracle.
	w2, err := StartWorkers(1, nil, workerEnv(d2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer StopWorkers(w2)
	res, err := d2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := renderResult(t, res); !bytes.Equal(got, ref) {
		t.Fatalf("output differs from single-process reference after checkpoint resume\n--- got ---\n%s\n--- want ---\n%s", got, ref)
	}
}

// TestJournalTornTailResume crash-truncates the last journal record (a
// dispatcher killed mid-append) and resumes: the torn record must be
// discarded, its task re-run, and the output stay byte-identical.
func TestJournalTornTailResume(t *testing.T) {
	ref := singleProcessRef(t)
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CaptureConfig(false)

	// Produce a complete journal.
	res := runSweep(t, cfg, DispatcherOptions{Journal: jpath}, 2)
	if got := renderResult(t, res); !bytes.Equal(got, ref) {
		t.Fatalf("journaling run differs from reference")
	}

	// Tear the final record: keep its length prefix and half its body.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	offsets := recordOffsets(t, raw)
	if len(offsets) < 3 { // header + at least two records
		t.Fatalf("journal has only %d records", len(offsets))
	}
	last := offsets[len(offsets)-1]
	torn := raw[:last+(len(raw)-last)/2]
	if err := os.WriteFile(jpath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := NewDispatcher(testSpec(), cfg, DispatcherOptions{Journal: jpath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	resumed := d.done
	d.mu.Unlock()
	if want := len(offsets) - 2; resumed != want {
		t.Fatalf("resumed %d tasks from torn journal, want %d (torn tail discarded)", resumed, want)
	}
	w, err := StartWorkers(1, nil, workerEnv(d.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer StopWorkers(w)
	res, err = d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := renderResult(t, res); !bytes.Equal(got, ref) {
		t.Fatalf("output differs from single-process reference after torn-tail resume")
	}
}

// recordOffsets walks the journal's length-prefixed records and
// returns each record's byte offset (header first).
func recordOffsets(t *testing.T, raw []byte) []int {
	t.Helper()
	var offs []int
	off := 0
	for off < len(raw) {
		if off+4 > len(raw) {
			t.Fatalf("journal truncated at offset %d", off)
		}
		n := int(binary.BigEndian.Uint32(raw[off:]))
		offs = append(offs, off)
		off += 4 + n
	}
	if off != len(raw) {
		t.Fatalf("journal records overrun the file: %d vs %d", off, len(raw))
	}
	return offs
}

// TestJournalRejectsDifferentSweep ensures a checkpoint cannot resume
// a sweep it was not written for.
func TestJournalRejectsDifferentSweep(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := CaptureConfig(false)
	if res := runSweep(t, cfg, DispatcherOptions{Journal: jpath}, 1); res == nil {
		t.Fatal("no result")
	}
	other := testSpec()
	other.Studies[0].Seed = 8
	if _, err := NewDispatcher(other, cfg, DispatcherOptions{Journal: jpath, Resume: true}); err == nil {
		t.Fatal("journal resumed a sweep with a different seed")
	} else if !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("unexpected resume error: %v", err)
	}
}

// TestSchemaMismatchRejected speaks the handshake directly with a
// wrong schema hash: the dispatcher must refuse the pairing with a
// Reject frame and never hand out work.
func TestSchemaMismatchRejected(t *testing.T) {
	d, err := NewDispatcher(testSpec(), CaptureConfig(false), DispatcherOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx)
		errCh <- err
	}()
	defer func() {
		cancel()
		<-errCh
	}()

	conn, err := net.DialTimeout("tcp", d.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, kindHello, Hello{Proto: ProtoVersion, Schema: "0000000000000000", Name: "impostor"}); err != nil {
		t.Fatal(err)
	}
	k, p, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if k != kindReject {
		t.Fatalf("got frame kind %d, want reject", k)
	}
	var rej Reject
	if err := decodePayload(p, &rej); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rej.Reason, "schema mismatch") {
		t.Fatalf("reject reason %q", rej.Reason)
	}
	// The dispatcher must have hung up rather than serving tasks.
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("dispatcher kept talking to a mismatched worker")
	} else if err != io.EOF && !strings.Contains(err.Error(), "closed") && !strings.Contains(err.Error(), "reset") {
		t.Logf("connection ended with: %v", err)
	}
}

// TestSchemaHashShape pins the schema hash format the handshake and
// the journal header rely on: 16 hex characters, stable within a
// binary.
func TestSchemaHashShape(t *testing.T) {
	h := SchemaHash()
	if len(h) != 16 {
		t.Fatalf("schema hash %q: want 16 hex chars", h)
	}
	for _, c := range h {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("schema hash %q: non-hex char %q", h, c)
		}
	}
	if h != SchemaHash() {
		t.Fatal("schema hash not stable across calls")
	}
}
