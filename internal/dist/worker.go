// The worker side: dial the dispatcher, register with the schema
// hash, apply the sweep's global knobs, then execute tasks pulled off
// the connection until Done. A reader goroutine answers heartbeat
// pings even while a task is executing, so a busy worker is
// distinguishable from a dead one.
package dist

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// WorkerOptions tunes RunWorker.
type WorkerOptions struct {
	// Addr is the dispatcher's TCP address.
	Addr string
	// Name identifies the worker in dispatcher logs ("" = host:pid).
	Name string
	// DialTimeout bounds the initial connect (<= 0 selects 10s).
	DialTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)

	// CorruptResult injects a fault for the requeue tests: the Nth
	// (1-based) result is written as a truncated frame and the
	// connection severed, simulating a worker crashing mid-result.
	CorruptResult int
}

func (o *WorkerOptions) name() string {
	if o.Name != "" {
		return o.Name
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s/%d", host, os.Getpid())
}

// RunWorker connects to a dispatcher and executes tasks until the
// sweep completes (returns nil), the context is cancelled, or the
// connection is lost (the dispatcher requeues any in-flight task).
func RunWorker(ctx context.Context, o WorkerOptions) error {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dt := o.DialTimeout
	if dt <= 0 {
		dt = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", o.Addr, dt)
	if err != nil {
		return fmt.Errorf("dist: dial %s: %w", o.Addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if err := writeFrame(conn, kindHello, Hello{Proto: ProtoVersion, Schema: SchemaHash(), Name: o.name()}); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	k, p, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("dist: handshake read: %w", err)
	}
	switch k {
	case kindReject:
		var rej Reject
		if err := decodePayload(p, &rej); err != nil {
			return err
		}
		return fmt.Errorf("dist: dispatcher rejected registration: %s", rej.Reason)
	case kindWelcome:
	default:
		return fmt.Errorf("dist: expected welcome, got frame kind %d", k)
	}
	var w Welcome
	if err := decodePayload(p, &w); err != nil {
		return fmt.Errorf("dist: welcome decode: %w", err)
	}
	exec, err := newExecutor(w.Spec, w.Config)
	if err != nil {
		return fmt.Errorf("dist: sweep config: %w", err)
	}
	po := workerProbe()
	logf("dist: registered with %s (%d studies)", o.Addr, len(w.Spec.Studies))

	// Writes are shared between the ping-answering reader loop and the
	// task executor.
	var wmu sync.Mutex
	send := func(kind msgKind, payload any) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, kind, payload)
	}

	tasks := make(chan Task)
	execErr := make(chan error, 1)
	go func() {
		nres := 0
		for t := range tasks {
			t0 := time.Now()
			r, err := exec.run(t)
			if err != nil {
				execErr <- err
				return
			}
			nres++
			raw, err := encodeFrame(kindResult, &r)
			if err != nil {
				execErr <- err
				return
			}
			if o.CorruptResult > 0 && nres == o.CorruptResult {
				wmu.Lock()
				conn.Write(raw[:len(raw)/2])
				conn.Close()
				wmu.Unlock()
				execErr <- fmt.Errorf("dist: injected fault: severed connection mid-result %d", nres)
				return
			}
			wmu.Lock()
			_, werr := conn.Write(raw)
			wmu.Unlock()
			if werr != nil {
				execErr <- fmt.Errorf("dist: result write: %w", werr)
				return
			}
			po.taskDone(time.Since(t0), len(raw))
			logf("dist: task %d (%s) done in %v", t.ID, t.Service, time.Since(t0).Round(time.Millisecond))
		}
		execErr <- nil
	}()
	defer close(tasks)

	for {
		k, p, err := readFrame(conn)
		if err != nil {
			select {
			case e := <-execErr:
				if e != nil {
					return e
				}
			default:
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: connection lost: %w", err)
		}
		switch k {
		case kindPing:
			var ping Ping
			if err := decodePayload(p, &ping); err != nil {
				return err
			}
			if err := send(kindPong, Pong{Seq: ping.Seq}); err != nil {
				return fmt.Errorf("dist: pong: %w", err)
			}
		case kindTask:
			var t Task
			if err := decodePayload(p, &t); err != nil {
				return err
			}
			select {
			case tasks <- t:
			case e := <-execErr:
				if e == nil {
					e = fmt.Errorf("dist: executor exited early")
				}
				return e
			}
		case kindDone:
			logf("dist: sweep complete")
			return nil
		default:
			return fmt.Errorf("dist: unexpected frame kind %d", k)
		}
	}
}
