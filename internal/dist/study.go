// Task model: a sweep is a list of studies, each expanded into one
// task per service. Workers execute tasks through the single-process
// study code restricted to that one service; the dispatcher reassembles
// the per-service rows in canonical order, which is byte-identical to
// running the whole study in one process.
package dist

import (
	"errors"
	"fmt"

	"simr/internal/core"
	"simr/internal/obs"
	"simr/internal/sample"
	"simr/internal/uservices"
)

// StudyKind selects which paper study a StudySpec runs.
type StudyKind uint8

const (
	// StudyChip is the chip-level CPU/SMT/RPU(/GPU) comparison behind
	// Figures 10/14/19/20/21 and the summary table.
	StudyChip StudyKind = 1
	// StudySensitivity is the §V-A1 ablation grid.
	StudySensitivity StudyKind = 2
	// StudyEfficiency is the SIMT-efficiency-by-policy study (Fig 15).
	StudyEfficiency StudyKind = 3
	// StudyMPKI is the L1 MPKI vs batch size study.
	StudyMPKI StudyKind = 4
	// StudyTiming is the RPU timing-knob sweep.
	StudyTiming StudyKind = 5
	// StudyMultiBatch is the §III-A multi-batch interleaving study.
	StudyMultiBatch StudyKind = 6
)

// String names the kind for logs and errors.
func (k StudyKind) String() string {
	switch k {
	case StudyChip:
		return "chip"
	case StudySensitivity:
		return "sensitivity"
	case StudyEfficiency:
		return "efficiency"
	case StudyMPKI:
		return "mpki"
	case StudyTiming:
		return "timing"
	case StudyMultiBatch:
		return "multibatch"
	}
	return fmt.Sprintf("study(%d)", uint8(k))
}

// ParseStudyKind reads a study name as written by StudyKind.String.
func ParseStudyKind(s string) (StudyKind, error) {
	for _, k := range []StudyKind{StudyChip, StudySensitivity, StudyEfficiency, StudyMPKI, StudyTiming, StudyMultiBatch} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown study %q (want chip|sensitivity|efficiency|mpki|timing|multibatch)", s)
}

// StudySpec defines one study of a sweep.
type StudySpec struct {
	Kind StudyKind
	// Services restricts the study to a service subset in the given
	// order; empty runs the whole suite in canonical order.
	Services []string
	Requests int
	Seed     int64
	// WithGPU adds the GPU column (StudyChip only).
	WithGPU bool
}

// SweepSpec is the full sweep a dispatcher executes: one or more
// studies, expanded to one task per (study, service).
type SweepSpec struct {
	Studies []StudySpec
}

// SweepConfig carries the process-global simulation knobs from the
// dispatcher's driver flags to every worker, so a worker reproduces
// the exact configuration the single-process run would use.
type SweepConfig struct {
	// TraceCache/BatchCache/CacheBudget mirror the drivers'
	// -tracecache/-batchcache/-cachebudget flags.
	TraceCache  bool
	BatchCache  bool
	CacheBudget int64
	// Lookahead pins the prep-pipeline lookahead (-1 = automatic).
	Lookahead int
	// Sample is the sampling config in -sample flag syntax.
	Sample string
	// Metrics makes workers capture a per-task obs registry snapshot;
	// the dispatcher merges them (in task order) into SweepResult.Obs.
	Metrics bool
	// TaskWorkers is the RunCells worker count inside one task. The
	// default 1 runs each task's cells sequentially, which keeps the
	// per-task registry snapshot deterministic; parallelism comes from
	// running many workers.
	TaskWorkers int
}

// CaptureConfig snapshots the current process-global knobs (as set by
// the driver's flags) into a SweepConfig for dispatch.
func CaptureConfig(metrics bool) SweepConfig {
	return SweepConfig{
		TraceCache:  core.TraceCaching(),
		BatchCache:  core.BatchCaching(),
		CacheBudget: core.CacheBudget(),
		Lookahead:   core.PrepLookaheadOverride(),
		Sample:      sample.Default().String(),
		Metrics:     metrics,
		TaskWorkers: 1,
	}
}

// apply installs the config's knobs process-globally (worker side).
func (c SweepConfig) apply() error {
	core.SetTraceCaching(c.TraceCache)
	core.SetBatchCaching(c.BatchCache)
	core.SetCacheBudget(c.CacheBudget)
	core.SetPrepLookahead(c.Lookahead)
	sc, err := sample.Parse(c.Sample)
	if err != nil {
		return err
	}
	sample.SetDefault(sc)
	return nil
}

// taskWorkers resolves the per-task RunCells worker count.
func (c SweepConfig) taskWorkers() int {
	if c.TaskWorkers <= 0 {
		return 1
	}
	return c.TaskWorkers
}

// Task is one unit of distribution: study Study of the sweep,
// restricted to one service. IDs are dense and ordered; reassembly by
// ID restores the single-process row order.
type Task struct {
	ID      int
	Study   int
	Service string
}

// TaskResult is one task's serialized outcome. Exactly one study field
// is set, matching the task's study kind; Err reports a cell failure.
type TaskResult struct {
	ID  int
	Err string

	Chip   *core.ChipRow
	Sens   []core.SensPair
	Eff    *core.EffRow
	MPKI   *core.MPKIRow
	Timing *core.TimingRow
	Multi  *core.MultiBatchRow

	// Obs is the task's deterministic-filtered registry snapshot when
	// SweepConfig.Metrics is set.
	Obs *obs.Snapshot
}

// resolveServices returns the study's service list (the whole suite in
// canonical order when unset).
func (st *StudySpec) resolveServices(suite *uservices.Suite) []string {
	if len(st.Services) > 0 {
		return st.Services
	}
	return suite.Names()
}

// Tasks expands the spec into its ordered task list, validating every
// service name against the suite (Suite.Get panics on unknown names,
// so remote input is checked here first).
func (spec *SweepSpec) Tasks(suite *uservices.Suite) ([]Task, error) {
	if len(spec.Studies) == 0 {
		return nil, errors.New("dist: sweep has no studies")
	}
	known := map[string]bool{}
	for _, n := range suite.Names() {
		known[n] = true
	}
	var ts []Task
	for si := range spec.Studies {
		st := &spec.Studies[si]
		for _, name := range st.resolveServices(suite) {
			if !known[name] {
				return nil, fmt.Errorf("dist: study %d (%s): unknown service %q", si, st.Kind, name)
			}
			ts = append(ts, Task{ID: len(ts), Study: si, Service: name})
		}
	}
	return ts, nil
}

// executor runs tasks on the worker side.
type executor struct {
	suite *uservices.Suite
	spec  SweepSpec
	cfg   SweepConfig
}

func newExecutor(spec SweepSpec, cfg SweepConfig) (*executor, error) {
	if err := cfg.apply(); err != nil {
		return nil, err
	}
	e := &executor{suite: uservices.NewSuite(), spec: spec, cfg: cfg}
	// Validate eagerly so a bad spec surfaces at registration, not
	// mid-sweep.
	if _, err := spec.Tasks(e.suite); err != nil {
		return nil, err
	}
	return e, nil
}

// run executes one task. Simulation failures are reported in
// TaskResult.Err (the dispatcher fails the sweep); only local faults
// (bad task IDs) return an error.
func (e *executor) run(t Task) (TaskResult, error) {
	if t.Study < 0 || t.Study >= len(e.spec.Studies) {
		return TaskResult{}, fmt.Errorf("dist: task %d references study %d of %d", t.ID, t.Study, len(e.spec.Studies))
	}
	st := &e.spec.Studies[t.Study]
	svcs := []*uservices.Service{e.suite.Get(t.Service)}
	res := TaskResult{ID: t.ID}

	// Per-task metrics: swap in a fresh registry for the duration of
	// the task. Probes resolve instruments per study call, so the whole
	// single-process instrumentation lands in the task's registry. With
	// TaskWorkers=1 the counters are deterministic; the worker filters
	// wall-clock instruments before shipping.
	var reg *obs.Registry
	if e.cfg.Metrics {
		reg = obs.NewRegistry()
		obs.Enable(reg, nil)
		defer obs.Disable()
	}

	w := e.cfg.taskWorkers()
	var err error
	switch st.Kind {
	case StudyChip:
		var rows []core.ChipRow
		if rows, err = core.ChipStudyOn(svcs, st.Requests, st.Seed, st.WithGPU, w); err == nil {
			res.Chip = &rows[0]
		}
	case StudySensitivity:
		res.Sens, err = core.SensPairsOn(svcs, st.Requests, st.Seed, w)
	case StudyEfficiency:
		var rows []core.EffRow
		if rows, err = core.EfficiencyStudyOn(svcs, st.Requests, st.Seed, w); err == nil {
			res.Eff = &rows[0]
		}
	case StudyMPKI:
		var rows []core.MPKIRow
		if rows, err = core.MPKIStudyOn(svcs, st.Requests, st.Seed, w); err == nil {
			res.MPKI = &rows[0]
		}
	case StudyTiming:
		var rows []core.TimingRow
		if rows, err = core.TimingSweepOn(svcs, st.Requests, st.Seed, w); err == nil {
			res.Timing = &rows[0]
		}
	case StudyMultiBatch:
		var rows []core.MultiBatchRow
		if rows, err = core.MultiBatchSweepOn(svcs, st.Seed, w); err == nil {
			res.Multi = &rows[0]
		}
	default:
		return TaskResult{}, fmt.Errorf("dist: task %d has unknown study kind %d", t.ID, st.Kind)
	}
	if err != nil {
		res.Err = err.Error()
		return res, nil
	}
	if reg != nil {
		snap := reg.Snapshot().Deterministic()
		res.Obs = &snap
	}
	return res, nil
}

// StudyOut is one study's reassembled output.
type StudyOut struct {
	Spec StudySpec
	// Services is the resolved service list (column order of Sens,
	// row order of the row slices).
	Services []string

	Chip   []core.ChipRow
	Sens   []core.SensPair // flat grid [section*len(Services)+s]
	Eff    []core.EffRow
	MPKI   []core.MPKIRow
	Timing []core.TimingRow
	Multi  []core.MultiBatchRow
}

// SweepResult is a completed sweep: per-study outputs plus the merged
// per-task registry snapshot (zero when metrics were off).
type SweepResult struct {
	Studies []StudyOut
	Obs     obs.Snapshot
}

// assemble reassembles completed task results (indexed by task ID)
// into per-study outputs, restoring single-process row order.
func assemble(spec SweepSpec, suite *uservices.Suite, tasks []Task, results []*TaskResult) (*SweepResult, error) {
	out := &SweepResult{Studies: make([]StudyOut, len(spec.Studies))}
	for si := range spec.Studies {
		st := &spec.Studies[si]
		names := st.resolveServices(suite)
		so := &out.Studies[si]
		so.Spec = *st
		so.Services = names
		if st.Kind == StudySensitivity {
			so.Sens = make([]core.SensPair, core.SensSections()*len(names))
		}
	}
	var snaps []obs.Snapshot
	for _, t := range tasks {
		r := results[t.ID]
		if r == nil {
			return nil, fmt.Errorf("dist: task %d (%s) missing from results", t.ID, t.Service)
		}
		so := &out.Studies[t.Study]
		st := &spec.Studies[t.Study]
		switch {
		case st.Kind == StudySensitivity:
			if len(r.Sens) != core.SensSections() {
				return nil, fmt.Errorf("dist: task %d returned %d sensitivity sections, want %d", t.ID, len(r.Sens), core.SensSections())
			}
			ns := len(so.Services)
			s := indexOf(so.Services, t.Service)
			for sec, p := range r.Sens {
				so.Sens[sec*ns+s] = p
			}
		case r.Chip != nil:
			so.Chip = append(so.Chip, *r.Chip)
		case r.Eff != nil:
			so.Eff = append(so.Eff, *r.Eff)
		case r.MPKI != nil:
			so.MPKI = append(so.MPKI, *r.MPKI)
		case r.Timing != nil:
			so.Timing = append(so.Timing, *r.Timing)
		case r.Multi != nil:
			so.Multi = append(so.Multi, *r.Multi)
		default:
			return nil, fmt.Errorf("dist: task %d (%s %s) returned no payload", t.ID, st.Kind, t.Service)
		}
		if r.Obs != nil {
			snaps = append(snaps, *r.Obs)
		}
	}
	// Tasks of one study are contiguous and in service order, so the
	// appends above already restored row order.
	out.Obs = obs.MergeSnapshots(snaps...)
	return out, nil
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}
