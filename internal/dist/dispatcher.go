// The dispatcher owns the task queue. Worker connections register via
// a schema-hashed handshake, then pull tasks one at a time; the
// dispatcher pings idle-waiting connections and requeues the in-flight
// task of any worker that stops answering or drops its connection.
// Dispatch order is bounded by a reorder window — task i is only
// handed out while i < firstIncomplete+window — so out-of-order
// completion buffering stays bounded and the final reassembly (always
// in task-ID order) is byte-identical to the single-process sweep.
package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"simr/internal/uservices"
)

// task dispatch states.
const (
	statePending uint8 = iota
	stateInflight
	stateDone
)

// DispatcherOptions tunes a dispatcher run.
type DispatcherOptions struct {
	// Addr is the TCP listen address ("" = 127.0.0.1:0).
	Addr string
	// Window bounds dispatch-ahead: task i is only dispatched while
	// i < firstIncomplete+Window (<= 0 selects 64).
	Window int
	// Journal is the checkpoint file path ("" disables journaling).
	Journal string
	// Resume loads completed tasks from an existing journal instead of
	// truncating it.
	Resume bool
	// HeartbeatEvery is the ping interval towards a worker that owes a
	// result (<= 0 selects 1s); a worker silent for 10 intervals is
	// declared lost and its task requeued.
	HeartbeatEvery time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o *DispatcherOptions) window() int {
	if o.Window <= 0 {
		return 64
	}
	return o.Window
}

func (o *DispatcherOptions) heartbeat() time.Duration {
	if o.HeartbeatEvery <= 0 {
		return time.Second
	}
	return o.HeartbeatEvery
}

// lostAfter is the number of silent heartbeat intervals after which a
// worker is declared dead.
const lostAfter = 10

// Dispatcher shards one sweep over registered workers.
type Dispatcher struct {
	spec  SweepSpec
	cfg   SweepConfig
	opts  DispatcherOptions
	suite *uservices.Suite
	tasks []Task
	ln    net.Listener
	jr    *journal
	po    *dispObs

	mu       sync.Mutex
	cond     *sync.Cond
	state    []uint8
	results  []*TaskResult
	done     int
	firstInc int
	inflight int
	nworkers int
	closed   bool
	err      error
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup
}

// NewDispatcher validates the sweep, prepares (or resumes) the
// journal and binds the listener. Call Run to serve workers; Addr
// reports the bound address (useful with Addr "127.0.0.1:0").
func NewDispatcher(spec SweepSpec, cfg SweepConfig, opts DispatcherOptions) (*Dispatcher, error) {
	suite := uservices.NewSuite()
	tasks, err := spec.Tasks(suite)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{
		spec:    spec,
		cfg:     cfg,
		opts:    opts,
		suite:   suite,
		tasks:   tasks,
		state:   make([]uint8, len(tasks)),
		results: make([]*TaskResult, len(tasks)),
		conns:   map[net.Conn]struct{}{},
		po:      dispProbe(),
	}
	d.cond = sync.NewCond(&d.mu)
	if opts.Journal != "" {
		sh, err := sweepHash(spec, cfg)
		if err != nil {
			return nil, err
		}
		hdr := journalHeader{Magic: journalMagic, Proto: ProtoVersion, Schema: SchemaHash(), Sweep: sh, Tasks: len(tasks)}
		if opts.Resume {
			jr, doneRes, err := openJournal(opts.Journal, hdr)
			if err != nil {
				return nil, err
			}
			d.jr = jr
			for id, r := range doneRes {
				d.results[id] = r
				d.state[id] = stateDone
				d.done++
			}
			for d.firstInc < len(d.tasks) && d.state[d.firstInc] == stateDone {
				d.firstInc++
			}
			d.po.journalResumed(len(doneRes))
			d.logf("dist: resumed %d/%d tasks from %s", d.done, len(tasks), opts.Journal)
		} else {
			jr, err := createJournal(opts.Journal, hdr)
			if err != nil {
				return nil, err
			}
			d.jr = jr
		}
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if d.jr != nil {
			d.jr.Close()
		}
		return nil, err
	}
	d.ln = ln
	return d, nil
}

// Addr returns the dispatcher's bound listen address.
func (d *Dispatcher) Addr() string { return d.ln.Addr().String() }

func (d *Dispatcher) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// Run serves workers until every task completes (or ctx is cancelled /
// a task fails), then reassembles the sweep result. Completed tasks
// are journaled before they count, so cancellation leaves a resumable
// checkpoint.
func (d *Dispatcher) Run(ctx context.Context) (*SweepResult, error) {
	stop := context.AfterFunc(ctx, func() { d.fail(ctx.Err()) })
	defer stop()
	go d.acceptLoop()

	d.mu.Lock()
	for d.done < len(d.tasks) && d.err == nil {
		d.cond.Wait()
	}
	err := d.err
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()

	d.ln.Close()
	d.handlers.Wait()
	if d.jr != nil {
		d.jr.Close()
	}
	if err != nil {
		return nil, err
	}
	return assemble(d.spec, d.suite, d.tasks, d.results)
}

// fail aborts the sweep with err (first failure wins).
func (d *Dispatcher) fail(err error) {
	if err == nil {
		return
	}
	d.mu.Lock()
	if d.err == nil && d.done < len(d.tasks) {
		d.err = err
	}
	d.cond.Broadcast()
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
}

func (d *Dispatcher) acceptLoop() {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed by Run
		}
		d.mu.Lock()
		if d.closed || d.err != nil {
			d.mu.Unlock()
			conn.Close()
			continue
		}
		d.conns[conn] = struct{}{}
		d.handlers.Add(1)
		d.mu.Unlock()
		go func() {
			defer d.handlers.Done()
			d.serve(conn)
			d.mu.Lock()
			delete(d.conns, conn)
			d.mu.Unlock()
			conn.Close()
		}()
	}
}

// frame is one received frame (or a terminal read error).
type frame struct {
	kind    msgKind
	payload []byte
	err     error
}

// serve drives one worker connection: handshake, then a pull loop of
// task dispatch and result awaiting with heartbeat supervision.
func (d *Dispatcher) serve(conn net.Conn) {
	name, err := d.handshake(conn)
	if err != nil {
		d.logf("dist: handshake with %s failed: %v", conn.RemoteAddr(), err)
		return
	}
	d.mu.Lock()
	d.nworkers++
	n := d.nworkers
	d.mu.Unlock()
	d.po.workerJoined(n)
	d.logf("dist: worker %s registered (%d connected)", name, n)

	frames := make(chan frame, 4)
	go func() {
		for {
			k, p, err := readFrame(conn)
			if err != nil {
				frames <- frame{err: err}
				return
			}
			frames <- frame{kind: k, payload: p}
		}
	}()

	defer func() {
		d.mu.Lock()
		d.nworkers--
		d.mu.Unlock()
	}()
	for {
		id, ok := d.nextTask()
		if !ok {
			writeFrame(conn, kindDone, Done{})
			return
		}
		if err := writeFrame(conn, kindTask, d.tasks[id]); err != nil {
			d.requeue(id, name, err)
			return
		}
		if err := d.await(conn, frames, id, name); err != nil {
			d.requeue(id, name, err)
			return
		}
	}
}

// handshake validates a worker's Hello and sends the sweep.
func (d *Dispatcher) handshake(conn net.Conn) (string, error) {
	conn.SetReadDeadline(time.Now().Add(10 * d.opts.heartbeat()))
	k, p, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return "", err
	}
	if k != kindHello {
		return "", fmt.Errorf("expected hello, got frame kind %d", k)
	}
	var h Hello
	if err := decodePayload(p, &h); err != nil {
		return "", err
	}
	if h.Proto != ProtoVersion || h.Schema != SchemaHash() {
		d.po.schemaReject()
		writeFrame(conn, kindReject, Reject{Reason: fmt.Sprintf(
			"schema mismatch: dispatcher proto %d schema %s, worker proto %d schema %s — rebuild from the same revision",
			ProtoVersion, SchemaHash(), h.Proto, h.Schema)})
		return "", fmt.Errorf("schema mismatch from %q (proto %d, schema %s)", h.Name, h.Proto, h.Schema)
	}
	if err := writeFrame(conn, kindWelcome, Welcome{Spec: d.spec, Config: d.cfg}); err != nil {
		return "", err
	}
	if h.Name == "" {
		h.Name = conn.RemoteAddr().String()
	}
	return h.Name, nil
}

// await waits for task id's result on frames, pinging the worker each
// heartbeat interval and declaring it lost after lostAfter silent
// intervals.
func (d *Dispatcher) await(conn net.Conn, frames <-chan frame, id int, name string) error {
	t0 := time.Now()
	lastHeard := t0
	tick := time.NewTicker(d.opts.heartbeat())
	defer tick.Stop()
	var seq int64
	for {
		select {
		case fr := <-frames:
			if fr.err != nil {
				return fmt.Errorf("connection lost: %w", fr.err)
			}
			lastHeard = time.Now()
			switch fr.kind {
			case kindPong:
				// Liveness only.
			case kindResult:
				var r TaskResult
				if err := decodePayload(fr.payload, &r); err != nil {
					return fmt.Errorf("result decode: %w", err)
				}
				if r.ID != id {
					return fmt.Errorf("result for task %d while awaiting %d", r.ID, id)
				}
				return d.complete(&r, time.Since(t0), name)
			default:
				return fmt.Errorf("unexpected frame kind %d", fr.kind)
			}
		case <-tick.C:
			if time.Since(lastHeard) > time.Duration(lostAfter)*d.opts.heartbeat() {
				return fmt.Errorf("worker silent for %v", time.Since(lastHeard).Round(time.Millisecond))
			}
			seq++
			writeFrame(conn, kindPing, Ping{Seq: seq})
		}
	}
}

// nextTask blocks until a task is dispatchable within the reorder
// window, the sweep completes, or it fails; ok=false means "send Done
// and hang up".
func (d *Dispatcher) nextTask() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.err != nil || d.closed || d.done == len(d.tasks) {
			return 0, false
		}
		limit := d.firstInc + d.opts.window()
		for id := d.firstInc; id < len(d.tasks) && id < limit; id++ {
			if d.state[id] == statePending {
				d.state[id] = stateInflight
				d.inflight++
				d.po.taskDispatched(d.inflight)
				return id, true
			}
		}
		d.cond.Wait()
	}
}

// requeue returns a dispatched task to the queue after its worker was
// lost (connection error, heartbeat timeout or protocol violation).
func (d *Dispatcher) requeue(id int, name string, cause error) {
	d.po.workerLost()
	d.mu.Lock()
	if d.state[id] == stateInflight {
		d.state[id] = statePending
		d.inflight--
		d.po.taskRequeued()
		d.logf("dist: worker %s lost (%v); requeued task %d (%s)", name, cause, id, d.tasks[id].Service)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// complete records one finished task: journal first, then mark done.
// A duplicate (a task that was requeued and finished twice) is
// dropped. A task-level simulation error fails the sweep.
func (d *Dispatcher) complete(r *TaskResult, rtt time.Duration, name string) error {
	if r.Err != "" {
		t := d.tasks[r.ID]
		err := fmt.Errorf("dist: task %d (%s %s) failed on %s: %s", r.ID, d.spec.Studies[t.Study].Kind, t.Service, name, r.Err)
		d.fail(err)
		return nil // the connection itself is fine
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state[r.ID] == stateDone {
		d.po.duplicateResult()
		return nil
	}
	if d.jr != nil {
		if err := d.jr.append(r); err != nil {
			err = fmt.Errorf("dist: journal append: %w", err)
			if d.err == nil {
				d.err = err
			}
			d.cond.Broadcast()
			return nil
		}
		d.po.journalRecord()
	}
	if d.state[r.ID] == stateInflight {
		d.inflight--
	}
	d.state[r.ID] = stateDone
	d.results[r.ID] = r
	d.done++
	for d.firstInc < len(d.tasks) && d.state[d.firstInc] == stateDone {
		d.firstInc++
	}
	d.po.taskCompleted(rtt)
	d.cond.Broadcast()
	return nil
}
