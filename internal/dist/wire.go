// Package dist is the distributed sweep tier: a dispatcher that owns a
// study's cell queue and shards it over worker processes via TCP, with
// worker registration, heartbeats, retry-on-worker-loss, bounded
// result reordering and a resumable on-disk checkpoint journal.
//
// The unit of distribution is one (study, service) task: a worker
// executes the task through the same per-service study code the
// single-process drivers use (core.ChipStudyOn and friends), so the
// whole single-process stack — RunCells, the prep pipeline, the
// scalar-trace and batch-stream caches, sampled simulation — is reused
// and prep is amortised worker-locally. Per-service study rows are
// independent and deterministic, so the dispatcher's reassembled
// output is byte-identical to the single-process path regardless of
// worker count, worker loss or checkpoint resume.
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// ProtoVersion is the wire protocol revision. It participates in the
// schema hash, so any protocol change refuses to pair with older
// binaries.
const ProtoVersion = 1

// maxFrameBytes bounds a single frame; anything larger indicates a
// corrupt stream or a hostile peer.
const maxFrameBytes = 1 << 30

// msgKind tags a frame's payload type.
type msgKind uint8

const (
	kindHello   msgKind = 1 // worker -> dispatcher: registration
	kindWelcome msgKind = 2 // dispatcher -> worker: sweep spec + config
	kindReject  msgKind = 3 // dispatcher -> worker: handshake refused
	kindTask    msgKind = 4 // dispatcher -> worker: one task
	kindResult  msgKind = 5 // worker -> dispatcher: one task's result
	kindPing    msgKind = 6 // dispatcher -> worker: liveness probe
	kindPong    msgKind = 7 // worker -> dispatcher: liveness reply
	kindDone    msgKind = 8 // dispatcher -> worker: sweep finished, exit
)

// Hello is the worker's registration message. Schema must equal the
// dispatcher's SchemaHash — it digests the protocol version and the
// full reflected shape of every wire type, so binaries whose task or
// result layout drifted refuse to pair instead of silently
// mis-decoding.
type Hello struct {
	Proto  int
	Schema string
	Name   string
}

// Welcome carries the sweep definition to a registered worker.
type Welcome struct {
	Spec   SweepSpec
	Config SweepConfig
}

// Reject refuses a worker's registration.
type Reject struct {
	Reason string
}

// Ping is the dispatcher's liveness probe; Seq is echoed in the Pong.
type Ping struct {
	Seq int64
}

// Pong answers a Ping.
type Pong struct {
	Seq int64
}

// Done tells a worker the sweep is complete.
type Done struct{}

// writeFrame writes one length-prefixed frame: a big-endian uint32
// frame length (kind byte + payload), the kind byte, then the
// standalone-gob-encoded payload. Each frame uses a fresh gob stream
// so decoding never depends on connection history — a reconnecting
// worker starts clean.
func writeFrame(w io.Writer, kind msgKind, payload any) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, byte(kind)})
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("dist: encode %d: %w", kind, err)
	}
	b := buf.Bytes()
	if len(b)-4 > maxFrameBytes {
		return fmt.Errorf("dist: frame too large (%d bytes)", len(b)-4)
	}
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// encodeFrame renders the frame writeFrame would send, for callers
// that need the raw bytes (fault injection writes a truncated prefix).
func encodeFrame(kind msgKind, payload any) ([]byte, error) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, kind, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// readFrame reads one frame and returns its kind and raw gob payload.
func readFrame(r io.Reader) (msgKind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("dist: bad frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return msgKind(hdr[4]), payload, nil
}

// decodePayload decodes a frame payload into v.
func decodePayload(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// SchemaHash digests the wire protocol: the protocol version plus a
// canonical reflected description of every message type (struct field
// names, order and types, walked transitively). Two binaries agree on
// the hash exactly when their wire types are structurally identical,
// so a dispatcher refuses workers built from a revision whose Result
// layout (or any nested stat struct) changed shape.
func SchemaHash() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proto=%d;", ProtoVersion)
	seen := map[reflect.Type]bool{}
	for _, v := range []any{
		Hello{}, Welcome{}, Reject{}, Ping{}, Pong{}, Done{},
		Task{}, TaskResult{},
	} {
		describeType(&sb, reflect.TypeOf(v), seen)
		sb.WriteByte(';')
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:8])
}

// describeType appends a canonical structural description of t. Named
// types already described are emitted as back references so recursive
// types terminate.
func describeType(sb *strings.Builder, t reflect.Type, seen map[reflect.Type]bool) {
	name := t.String()
	switch t.Kind() {
	case reflect.Pointer:
		sb.WriteString("*")
		describeType(sb, t.Elem(), seen)
	case reflect.Slice:
		sb.WriteString("[]")
		describeType(sb, t.Elem(), seen)
	case reflect.Array:
		fmt.Fprintf(sb, "[%d]", t.Len())
		describeType(sb, t.Elem(), seen)
	case reflect.Map:
		sb.WriteString("map[")
		describeType(sb, t.Key(), seen)
		sb.WriteString("]")
		describeType(sb, t.Elem(), seen)
	case reflect.Struct:
		if seen[t] {
			fmt.Fprintf(sb, "ref(%s)", name)
			return
		}
		seen[t] = true
		fmt.Fprintf(sb, "%s{", name)
		// Gob transmits exported fields only; unexported fields with
		// custom codecs (stats.Sample) are covered by naming the type.
		fields := make([]string, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			var fb strings.Builder
			describeType(&fb, f.Type, seen)
			fields = append(fields, f.Name+":"+fb.String())
		}
		// Gob matches fields by name, not position: sort so reordered
		// but otherwise identical structs keep the same hash.
		sort.Strings(fields)
		sb.WriteString(strings.Join(fields, ","))
		sb.WriteString("}")
	default:
		sb.WriteString(t.Kind().String())
	}
}
