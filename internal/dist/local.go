// One-machine multi-process execution: fork this binary N times as
// workers pointed at a local dispatcher. Every driver that embeds the
// distflag worker mode (-dist worker -addr ...) can serve as its own
// worker binary, so RunLocal needs no separate executable.
package dist

import (
	"context"
	"fmt"
	"os"
	"os/exec"
)

// WorkerArgs is the standard argv for re-execing the current binary as
// a worker (the distflag flag names).
func WorkerArgs(addr string) []string {
	return []string{"-dist", "worker", "-addr", addr}
}

// StartWorkers forks n copies of the current executable with the given
// argv (and optional extra environment). Worker stdout is redirected
// to stderr so forked workers cannot pollute the dispatcher's study
// output.
func StartWorkers(n int, args []string, extraEnv []string) ([]*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmds := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if len(extraEnv) > 0 {
			cmd.Env = append(os.Environ(), extraEnv...)
		}
		if err := cmd.Start(); err != nil {
			StopWorkers(cmds)
			return nil, fmt.Errorf("dist: start worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// StopWorkers kills and reaps any still-running forked workers.
func StopWorkers(cmds []*exec.Cmd) {
	for _, c := range cmds {
		if c.Process != nil {
			c.Process.Kill()
		}
	}
	for _, c := range cmds {
		c.Wait()
	}
}

// RunLocal executes the sweep on n forked local worker processes of
// the current binary: it binds a loopback dispatcher, forks the
// workers at its address with WorkerArgs (plus extraArgs), runs the
// sweep and reaps the workers. The caller's binary must implement the
// distflag worker mode.
func RunLocal(ctx context.Context, spec SweepSpec, cfg SweepConfig, n int, opts DispatcherOptions, extraArgs ...string) (*SweepResult, error) {
	if n < 1 {
		n = 1
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	d, err := NewDispatcher(spec, cfg, opts)
	if err != nil {
		return nil, err
	}
	cmds, err := StartWorkers(n, append(WorkerArgs(d.Addr()), extraArgs...), nil)
	if err != nil {
		d.fail(err)
		d.Run(ctx) // release the listener and handlers
		return nil, err
	}
	res, err := d.Run(ctx)
	if err != nil {
		StopWorkers(cmds)
		return nil, err
	}
	// Workers received Done and exit on their own; reap them.
	for _, c := range cmds {
		c.Wait()
	}
	return res, nil
}
