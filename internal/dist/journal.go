// On-disk checkpoint journal: a header identifying the sweep (schema
// hash + sweep hash + task count) followed by one appended,
// fsync'd record per completed task. A killed dispatcher restarts with
// -resume: records load back as completed tasks and only the remainder
// is dispatched. Loading tolerates a truncated tail record (a crash
// mid-append), which is discarded.
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
)

// journalMagic identifies the file format; bump the suffix on layout
// changes.
const journalMagic = "SIMR-DIST-JOURNAL-1"

// journalHeader pins the journal to one exact sweep: records are only
// reusable when the binary schema, the sweep definition and the task
// list all match.
type journalHeader struct {
	Magic  string
	Proto  int
	Schema string
	Sweep  string
	Tasks  int
}

// sweepHash digests the sweep spec and config so a journal refuses to
// resume a different sweep.
func sweepHash(spec SweepSpec, cfg SweepConfig) (string, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(spec); err != nil {
		return "", err
	}
	if err := enc.Encode(cfg); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8]), nil
}

// journal is an append-only record file; all writes are fsync'd so a
// record is durable before the dispatcher treats its task as done.
type journal struct {
	f *os.File
}

// writeRecord appends one length-prefixed gob blob.
func writeRecord(w io.Writer, v any) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// readRecord reads one length-prefixed gob blob into v. A clean EOF at
// the length prefix returns io.EOF; a short read anywhere else returns
// io.ErrUnexpectedEOF (the truncated-tail case).
func readRecord(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return fmt.Errorf("dist: bad journal record length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// createJournal starts a fresh journal at path, truncating any
// previous file.
func createJournal(path string, hdr journalHeader) (*journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := writeRecord(f, hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &journal{f: f}, nil
}

// openJournal opens an existing journal for resumption: it verifies
// the header matches the current sweep, loads every complete record,
// truncates a torn tail and positions the file for appends. The
// returned map holds the completed results by task ID.
func openJournal(path string, want journalHeader) (*journal, map[int]*TaskResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var hdr journalHeader
	if err := readRecord(f, &hdr); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist: journal %s: bad header: %w", path, err)
	}
	if hdr != want {
		f.Close()
		return nil, nil, fmt.Errorf("dist: journal %s was written by a different sweep or binary (header %+v, want %+v)", path, hdr, want)
	}
	done := map[int]*TaskResult{}
	off, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	for {
		var r TaskResult
		err := readRecord(f, &r)
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Torn tail from a crash mid-append: discard it.
			if err := f.Truncate(off); err != nil {
				f.Close()
				return nil, nil, err
			}
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dist: journal %s: record at offset %d: %w", path, off, err)
		}
		if r.ID < 0 || r.ID >= want.Tasks {
			f.Close()
			return nil, nil, fmt.Errorf("dist: journal %s: record for task %d outside sweep of %d tasks", path, r.ID, want.Tasks)
		}
		rc := r
		done[r.ID] = &rc
		if off, err = f.Seek(0, io.SeekCurrent); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f}, done, nil
}

// append durably records one completed task.
func (j *journal) append(r *TaskResult) error {
	if err := writeRecord(j.f, r); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *journal) Close() error { return j.f.Close() }
