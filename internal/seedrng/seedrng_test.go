package seedrng

import (
	"math/rand"
	"testing"
)

// TestMatchesMathRand proves bit-identity with math/rand far past the
// 607-output recorded prefix, across the derived Rand methods the
// service programs actually use.
func TestMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -987654321} {
		want := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 3*rngLen; i++ {
			switch i % 4 {
			case 0:
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, g, w)
				}
			case 1:
				if g, w := got.Uint64(), want.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, g, w)
				}
			case 2:
				if g, w := got.Intn(1000), want.Intn(1000); g != w {
					t.Fatalf("seed %d draw %d: Intn = %d, want %d", seed, i, g, w)
				}
			case 3:
				if g, w := got.Float64(), want.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
				}
			}
		}
	}
}

// TestReplayIndependence checks that two streams of the same seed do
// not disturb each other (the recorded prefix is shared read-only).
func TestReplayIndependence(t *testing.T) {
	a, b := New(7), New(7)
	ref := rand.New(rand.NewSource(7))
	for i := 0; i < 2 * rngLen; i++ {
		w := ref.Uint64()
		if g := a.Uint64(); g != w {
			t.Fatalf("stream a draw %d: %d != %d", i, g, w)
		}
		if i%3 == 0 { // advance b at a different rate
			b.Uint64()
		}
	}
}

// TestSeedRestart verifies Source.Seed restarts the sequence.
func TestSeedRestart(t *testing.T) {
	s := &Source{pre: table(5)}
	r := rand.New(s)
	first := make([]uint64, rngLen+10)
	for i := range first {
		first[i] = r.Uint64()
	}
	s.Seed(5)
	for i := range first {
		if g := r.Uint64(); g != first[i] {
			t.Fatalf("draw %d after re-seed: %d != %d", i, g, first[i])
		}
	}
}

// TestTableRecycle exercises the wholesale cache recycle path.
func TestTableRecycle(t *testing.T) {
	mu.Lock()
	tables = map[int64]*prefix{}
	mu.Unlock()
	for seed := int64(0); seed < maxTables+8; seed++ {
		table(seed)
	}
	mu.Lock()
	n := len(tables)
	mu.Unlock()
	if n > maxTables {
		t.Fatalf("table cache grew to %d entries, cap is %d", n, maxTables)
	}
	// Post-recycle streams still match math/rand.
	want := rand.New(rand.NewSource(3))
	got := New(3)
	for i := 0; i < 100; i++ {
		if g, w := got.Uint64(), want.Uint64(); g != w {
			t.Fatalf("draw %d after recycle: %d != %d", i, g, w)
		}
	}
}
