// Package seedrng reproduces math/rand.NewSource sequences while
// amortising the seeding cost across repeated streams with the same
// seed. rand.NewSource spends ~2000 multiplications warming up its
// 607-word additive lagged-Fibonacci state; the tracer re-seeds from
// the same request seed every time a request is interpreted (once per
// architecture, batch size and ablation in a study sweep), which made
// seeding alone ~10% of a chip study.
//
// The trick: rngSource's outputs ARE its evolving state. Each draw
// computes vec[feed] += vec[tap] and returns the new vec[feed], with
// the feed pointer stepping through all 607 slots per cycle. So after
// the first 607 outputs the generator satisfies the pure recurrence
//
//	o[n] = o[n-607] + o[n-273]  (mod 2^64)
//
// with no reference to the seeded state at all. Recording the first
// 607 outputs of a real rand.NewSource(seed) once therefore lets any
// number of later streams replay them and then continue the recurrence
// over their own output ring — bit-identical to a fresh source, with
// seeding paid once per distinct seed.
package seedrng

import (
	"math/rand"
	"sync"
)

const (
	rngLen  = 607
	rngTap  = 273
	rngMask = 1<<63 - 1
)

// prefix holds the first rngLen outputs of rand.NewSource(seed).
type prefix [rngLen]uint64

// maxTables bounds the seed table cache; beyond it the cache is
// recycled wholesale (later streams re-record, output unchanged).
const maxTables = 4096

var (
	mu     sync.Mutex
	tables = map[int64]*prefix{}
)

func table(seed int64) *prefix {
	mu.Lock()
	defer mu.Unlock()
	if t, ok := tables[seed]; ok {
		return t
	}
	if len(tables) >= maxTables {
		tables = map[int64]*prefix{}
	}
	t := new(prefix)
	src := rand.NewSource(seed).(rand.Source64)
	for i := range t {
		t[i] = src.Uint64()
	}
	tables[seed] = t
	return t
}

// Source is a rand.Source64 emitting exactly the sequence of
// rand.NewSource(seed). Not safe for concurrent use (same contract as
// math/rand sources).
type Source struct {
	pre *prefix
	vec [rngLen]uint64 // ring of the last rngLen outputs
	n   int
}

// New returns a *rand.Rand identical in output to
// rand.New(rand.NewSource(seed)).
func New(seed int64) *rand.Rand {
	return rand.New(&Source{pre: table(seed)})
}

// Uint64 returns the next value of the underlying sequence.
func (s *Source) Uint64() uint64 {
	i := s.n % rngLen
	var x uint64
	if s.n < rngLen {
		x = s.pre[s.n]
	} else {
		// o[n-607] sits in the slot being overwritten.
		x = s.vec[i] + s.vec[(i+rngLen-rngTap)%rngLen]
	}
	s.vec[i] = x
	s.n++
	return x
}

// Int63 returns the next value masked to 63 bits, as rngSource does.
func (s *Source) Int63() int64 { return int64(s.Uint64() & rngMask) }

// Seed restarts the stream from the given seed.
func (s *Source) Seed(seed int64) {
	s.pre = table(seed)
	s.n = 0
}
