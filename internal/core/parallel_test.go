package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"simr/internal/uservices"
)

func TestRunCellsOrderAndBounds(t *testing.T) {
	for _, workers := range []int{1, 3, 4, 100} {
		got, err := RunCells(17, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 17 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
	if out, err := RunCells(0, 4, func(i int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("n=0: got %v, %v", out, err)
	}
}

func TestRunCellsError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		out, err := RunCells(32, workers, func(i int) (int, error) {
			if i == 5 {
				return 0, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: expected nil results on error", workers)
		}
	}
}

// TestChipStudyParallelDeterminism is the tentpole guarantee: the
// worker-pool sweep renders every figure byte-identically to the
// sequential path for the same seed.
func TestChipStudyParallelDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	render := func(rows []ChipRow) []byte {
		var buf bytes.Buffer
		WriteFig10(&buf, rows)
		WriteFig14(&buf, rows)
		WriteFig19(&buf, rows)
		WriteFig20(&buf, rows)
		WriteFig21(&buf, rows)
		if err := WriteJSON(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, err := ChipStudyParallel(suite, 32, 3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ChipStudyParallel(suite, 32, 3, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(seq), render(par)) {
		t.Fatal("parallel chip study output differs from sequential")
	}
}

func TestEfficiencyStudyParallelDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	seq, err := EfficiencyStudyParallel(suite, 64, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EfficiencyStudyParallel(suite, 64, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row count: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestMPKIStudyParallelDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	seq, err := MPKIStudyParallel(suite, 32, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MPKIStudyParallel(suite, 32, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel MPKI study differs from sequential")
	}
}

func TestSensitivityStudyParallelDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	var seq, par bytes.Buffer
	if err := SensitivityStudyParallel(&seq, suite, []string{"urlshort", "memc"}, 64, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := SensitivityStudyParallel(&par, suite, []string{"urlshort", "memc"}, 64, 3, 4); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatal("parallel sensitivity report differs from sequential")
	}
}

func TestMultiBatchSweepDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	seq, err := MultiBatchSweep(suite, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MultiBatchSweep(suite, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel multi-batch sweep differs from sequential")
	}
}

func TestBatchSweepDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	svc := suite.Get("memc")
	reqs := genRequests(svc, 64, 3)
	sizes := []int{32, 8}

	cpuSeq, seq, err := BatchSweep(svc, reqs, sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpuPar, par, err := BatchSweep(svc, reqs, sizes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cpuSeq, cpuPar) || !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel batch sweep differs from sequential")
	}
	for i, row := range seq {
		if row.Size != sizes[i] || row.Res == nil {
			t.Fatalf("row %d: size %d, res %v", i, row.Size, row.Res)
		}
	}
}
