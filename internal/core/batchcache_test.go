package core

import (
	"bytes"
	"reflect"
	"testing"

	"simr/internal/alloc"
	"simr/internal/batch"
	"simr/internal/sample"
	"simr/internal/simt"
	"simr/internal/trace"
	"simr/internal/uservices"
)

// withFreshBatchStreams runs fn with the sweep-level batch-stream
// cache disabled so every cell prepares its batches from scratch (the
// pre-memoization code path).
func withFreshBatchStreams(t *testing.T, fn func()) {
	t.Helper()
	disableBatchCache = true
	defer func() { disableBatchCache = false }()
	fn()
}

// withLookahead pins the prep lookahead for fn and restores automatic
// derivation afterwards.
func withLookahead(t *testing.T, la int, fn func()) {
	t.Helper()
	SetPrepLookahead(la)
	defer SetPrepLookahead(-1)
	fn()
}

// TestBatchCacheStudyDeterminism is the tentpole guarantee of the
// batch-stream cache: memoized sweeps render byte-identically to
// fresh-preparation sweeps at every (workers, lookahead) combination —
// the cache may only change wall clock, never output. Under -race this
// doubles as the cache's concurrent integration test.
func TestBatchCacheStudyDeterminism(t *testing.T) {
	suite := uservices.NewSuite()

	t.Run("chip", func(t *testing.T) {
		render := func(rows []ChipRow) []byte {
			var buf bytes.Buffer
			WriteFig10(&buf, rows)
			WriteFig14(&buf, rows)
			WriteFig19(&buf, rows)
			WriteFig20(&buf, rows)
			WriteFig21(&buf, rows)
			return buf.Bytes()
		}
		for _, workers := range []int{1, 4} {
			for _, la := range []int{0, 1, 4} {
				withLookahead(t, la, func() {
					// withGPU exercises cross-architecture stream
					// sharing: RPU and GPU cells have identical prep
					// keys and must serve each other's streams.
					cached, err := ChipStudyParallel(suite, 32, 3, true, workers)
					if err != nil {
						t.Fatal(err)
					}
					var fresh []ChipRow
					withFreshBatchStreams(t, func() {
						fresh, err = ChipStudyParallel(suite, 32, 3, true, workers)
					})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(render(cached), render(fresh)) {
						t.Fatalf("workers=%d lookahead=%d: memoized chip study differs from fresh preparation", workers, la)
					}
				})
			}
		}
	})

	t.Run("sensitivity", func(t *testing.T) {
		for _, la := range []int{0, 4} {
			withLookahead(t, la, func() {
				var cached, fresh bytes.Buffer
				if err := SensitivityStudyParallel(&cached, suite, []string{"urlshort", "memc"}, 64, 3, 4); err != nil {
					t.Fatal(err)
				}
				var err error
				withFreshBatchStreams(t, func() {
					err = SensitivityStudyParallel(&fresh, suite, []string{"urlshort", "memc"}, 64, 3, 4)
				})
				if err != nil {
					t.Fatal(err)
				}
				if cached.String() != fresh.String() {
					t.Fatalf("lookahead=%d: memoized sensitivity report differs from fresh preparation", la)
				}
			})
		}
	})

	t.Run("multibatch", func(t *testing.T) {
		for _, workers := range []int{1, 4} {
			cached, err := MultiBatchSweep(suite, 3, workers)
			if err != nil {
				t.Fatal(err)
			}
			var fresh []MultiBatchRow
			withFreshBatchStreams(t, func() {
				fresh, err = MultiBatchSweep(suite, 3, workers)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cached, fresh) {
				t.Fatalf("workers=%d: memoized multi-batch sweep differs from fresh preparation", workers)
			}
		}
	})

	t.Run("efficiency", func(t *testing.T) {
		cached, err := EfficiencyStudyParallel(suite, 64, 7, 4)
		if err != nil {
			t.Fatal(err)
		}
		var fresh []EffRow
		withFreshBatchStreams(t, func() {
			fresh, err = EfficiencyStudyParallel(suite, 64, 7, 4)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cached, fresh) {
			t.Fatal("memoized efficiency study differs from fresh preparation")
		}
	})

	t.Run("timingsweep", func(t *testing.T) {
		render := func(rows []TimingRow) []byte {
			var buf bytes.Buffer
			WriteTimingSweep(&buf, rows)
			return buf.Bytes()
		}
		withLookahead(t, 1, func() {
			cached, err := TimingSweepParallel(suite, 32, 3, 4)
			if err != nil {
				t.Fatal(err)
			}
			var fresh []TimingRow
			withFreshBatchStreams(t, func() {
				fresh, err = TimingSweepParallel(suite, 32, 3, 4)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(render(cached), render(fresh)) {
				t.Fatal("memoized timing sweep differs from fresh preparation")
			}
		})
	})
}

// TestBatchCacheRunServiceHits verifies the direct contract at the
// RunService level: two identical runs sharing one BatchCache produce
// equal Results, the second run is served entirely from the cache, and
// both match a run with no cache at all.
func TestBatchCacheRunServiceHits(t *testing.T) {
	suite := uservices.NewSuite()
	svc := suite.Get("memc")
	reqs := genRequests(svc, 96, 7)
	bc := trace.NewBatchCache(trace.NewBudget(0))

	run := func(cache *trace.BatchCache) *Result {
		t.Helper()
		opts := DefaultOptions()
		opts.BatchStreams = cache
		opts.PrepLookahead = 2
		res, err := RunService(ArchRPU, svc, reqs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run(bc)
	st := bc.Stats()
	if st.Misses != uint64(first.Batches) || st.Hits != 0 {
		t.Fatalf("first run: got %d misses / %d hits, want %d misses / 0 hits", st.Misses, st.Hits, first.Batches)
	}
	if st.Bytes <= 0 || st.BytesHWM < st.Bytes {
		t.Fatalf("first run: implausible retained bytes %d (hwm %d)", st.Bytes, st.BytesHWM)
	}

	second := run(bc)
	st2 := bc.Stats()
	if got := st2.Hits - st.Hits; got != uint64(second.Batches) {
		t.Fatalf("second run: got %d hits, want %d (every batch served from cache)", got, second.Batches)
	}
	if st2.Misses != st.Misses {
		t.Fatalf("second run rebuilt %d streams", st2.Misses-st.Misses)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cache-served run differs from the run that built the cache")
	}

	if fresh := run(nil); !reflect.DeepEqual(first, fresh) {
		t.Fatal("memoized run differs from uncached run")
	}

	bc.Drop()
	dst := bc.Stats()
	if dst.Drops != 1 || dst.Bytes != 0 {
		t.Fatalf("after drop: drops=%d bytes=%d, want 1/0", dst.Drops, dst.Bytes)
	}
}

// TestSIMTEffSampledTimedUnitsOnly is the regression test for the
// sampled-run consistency fix: SIMTEff must be computed from the timed
// units only (the subpopulation every other Result field extrapolates
// from), not from all batches. The expected value is derived
// independently by lock-stepping exactly the batches the sampling grid
// times.
func TestSIMTEffSampledTimedUnitsOnly(t *testing.T) {
	suite := uservices.NewSuite()
	svc := suite.Get("memc")
	reqs := genRequests(svc, 96, 7)
	const size = 32
	cfg := sample.Config{Period: 2, Warmup: 1}

	opts := DefaultOptions()
	opts.BatchSize = size
	opts.Sample = cfg
	res, err := RunService(ArchRPU, svc, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}

	batches := batch.Form(reqs, size, opts.Policy)
	if len(batches) < 2 {
		t.Fatalf("need >=2 batches to distinguish timed from warm units, got %d", len(batches))
	}
	timedAny := false
	scalar, ops := 0, 0
	var sc simt.Scratch
	for i, b := range batches {
		if cfg.Role(i) != sample.RoleTimed {
			continue
		}
		timedAny = true
		sg := alloc.NewStackGroup(0, len(b.Requests), opts.StackInterleave)
		traces, err := batchTraces(nil, svc, b.Requests, sg, opts.AllocPolicy, 8)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := simt.RunMinSPPCWith(&sc, traces, size, opts.Spin)
		if err != nil {
			t.Fatal(err)
		}
		scalar += merged.ScalarOps
		ops += len(merged.Ops)
	}
	if !timedAny {
		t.Fatal("sampling grid timed no unit; pick a different population")
	}
	want := float64(scalar) / (float64(ops) * float64(size))
	if res.SIMTEff != want {
		t.Fatalf("sampled SIMTEff = %v, want %v (timed units only)", res.SIMTEff, want)
	}

	// Timing every unit (Period 1) must agree with the unsampled run.
	opts.Sample = sample.Config{Period: 1}
	every, err := RunService(ArchRPU, svc, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Sample = sample.Config{}
	full, err := RunService(ArchRPU, svc, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if every.SIMTEff != full.SIMTEff {
		t.Fatalf("period-1 SIMTEff %v differs from unsampled %v", every.SIMTEff, full.SIMTEff)
	}
}
