// Worker-pool sweep runner. Every paper study is a grid of independent
// (service, architecture, Options) cells — each cell builds its own
// mem.System, pipeline.Core and request stream — so the sweeps fan out
// over a bounded pool of goroutines. Results are aggregated in input
// order regardless of completion order, which keeps every figure and
// CSV byte-identical to the sequential path.
package core

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"simr/internal/batch"
	"simr/internal/trace"
	"simr/internal/uservices"
)

// DefaultWorkers is the worker count used when a study is given
// workers <= 0: one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// interruptCtx is the process-wide cancellation context the drivers
// install via SetInterrupt (SIGINT/SIGTERM). RunCells polls it between
// cells, so a signal aborts a sweep at the next cell boundary instead
// of truncating output mid-row, and partial distributed checkpoints
// stay flushed.
var interruptCtx atomic.Pointer[context.Context]

// SetInterrupt installs a cancellation context that every subsequent
// RunCells invocation honors: when ctx is done, sweeps abort with
// ctx.Err() at the next cell boundary. Drivers call it once with a
// signal.NotifyContext; a nil ctx clears it.
func SetInterrupt(ctx context.Context) {
	if ctx == nil {
		interruptCtx.Store(nil)
		return
	}
	interruptCtx.Store(&ctx)
}

// interrupted returns the installed context's error, or nil when no
// context is installed or it is still live.
func interrupted() error {
	if p := interruptCtx.Load(); p != nil {
		return (*p).Err()
	}
	return nil
}

// RunCells evaluates fn(0..n-1) on a pool of workers and returns the
// results in input order. workers <= 0 selects DefaultWorkers;
// workers == 1 runs inline with no goroutines (the sequential path).
// On error the lowest-index error among completed cells is returned
// and remaining cells are abandoned.
func RunCells[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	po := cellsProbe(workers)
	start := po.clock()
	defer po.finish(start)
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := interrupted(); err != nil {
				return nil, err
			}
			t0 := po.clock()
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			po.cell(0, t0)
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		stop   atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				t0 := po.clock()
				var v T
				err := interrupted()
				if err == nil {
					v, err = fn(i)
				}
				if err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				po.cell(w, t0)
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

// genRequests regenerates a service's request stream from the study
// seed. Regeneration from the same seed is deterministic, so a cell
// sees the exact stream the sequential loop produced whether it
// generates its own copy or shares one through sweepCaches.
func genRequests(svc *uservices.Service, requests int, seed int64) []uservices.Request {
	return svc.Generate(rand.New(rand.NewSource(seed)), requests)
}

// disableTraceCache turns off trace caching (and request-stream
// sharing) for the whole package; the determinism tests flip it to
// compare cached sweeps against fresh interpretation byte for byte.
var disableTraceCache bool

// disableBatchCache turns off batch-stream caching for the whole
// package; the determinism tests (and the drivers' -batchcache=false)
// flip it to compare memoized sweeps against fresh preparation byte
// for byte.
var disableBatchCache bool

// cacheBudgetBytes overrides the shared per-sweep cache byte budget
// (0 = trace.DefaultBudgetBytes). The scalar trace cache and the
// batch-stream cache draw on the same budget.
var cacheBudgetBytes int64

// SetTraceCaching enables or disables the sweep-wide scalar-trace
// cache (and request-stream sharing). Results are byte-identical
// either way; only wall clock changes. Not safe to flip concurrently
// with a running study.
func SetTraceCaching(on bool) { disableTraceCache = !on }

// SetBatchCaching enables or disables the sweep-wide batch-stream
// cache (the drivers' -batchcache flag). Results are byte-identical
// either way; only wall clock changes. Not safe to flip concurrently
// with a running study.
func SetBatchCaching(on bool) { disableBatchCache = !on }

// SetCacheBudget pins the byte budget the per-sweep caches (scalar
// traces + batch streams together) may retain; <= 0 restores
// trace.DefaultBudgetBytes. Over-budget entries are served but not
// retained, so results are byte-identical at any budget.
func SetCacheBudget(bytes int64) { cacheBudgetBytes = bytes }

// TraceCaching reports whether the sweep-wide scalar-trace cache is
// enabled. The distributed dispatcher reads it to forward the driver's
// flag state to workers.
func TraceCaching() bool { return !disableTraceCache }

// BatchCaching reports whether the sweep-wide batch-stream cache is
// enabled.
func BatchCaching() bool { return !disableBatchCache }

// CacheBudget returns the pinned cache byte budget (0 = default).
func CacheBudget() int64 { return cacheBudgetBytes }

// sweepCaches owns one trace.Cache, one trace.BatchCache and one
// shared request stream per service of a sweep, all drawing on a
// single byte budget. Cells of the same service share the caches and
// the stream (all read-only); a per-service countdown drops both
// caches — returning their bytes to the budget — as soon as the
// service's last cell finishes, so long sweeps never hold every
// service's traces and streams at once.
type sweepCaches struct {
	svcs    []*uservices.Service
	budget  *trace.Budget
	caches  []*trace.Cache
	bcaches []*trace.BatchCache
	reqs    [][]uservices.Request
	once    []sync.Once
	left    []atomic.Int32
}

// newSweepCaches builds the per-service caches for a sweep in which
// every service is evaluated by cellsPer cells.
func newSweepCaches(svcs []*uservices.Service, cellsPer int) *sweepCaches {
	sw := &sweepCaches{
		svcs:    svcs,
		budget:  trace.NewBudget(cacheBudgetBytes),
		caches:  make([]*trace.Cache, len(svcs)),
		bcaches: make([]*trace.BatchCache, len(svcs)),
		reqs:    make([][]uservices.Request, len(svcs)),
		once:    make([]sync.Once, len(svcs)),
		left:    make([]atomic.Int32, len(svcs)),
	}
	for i, svc := range svcs {
		sw.caches[i] = trace.NewCache(svc, sw.budget)
		sw.bcaches[i] = trace.NewBatchCache(sw.budget)
		sw.left[i].Store(int32(cellsPer))
	}
	return sw
}

// cache returns service s's trace cache (nil when caching is disabled,
// which makes every consumer interpret fresh).
func (sw *sweepCaches) cache(s int) *trace.Cache {
	if disableTraceCache {
		return nil
	}
	return sw.caches[s]
}

// batchCache returns service s's batch-stream cache (nil when batch
// caching is disabled, which makes every consumer prepare fresh).
func (sw *sweepCaches) batchCache(s int) *trace.BatchCache {
	if disableBatchCache {
		return nil
	}
	return sw.bcaches[s]
}

// requests returns service s's shared request stream, generating it on
// first use. The stream is read-only for all cells.
func (sw *sweepCaches) requests(s, n int, seed int64) []uservices.Request {
	if disableTraceCache {
		return genRequests(sw.svcs[s], n, seed)
	}
	sw.once[s].Do(func() { sw.reqs[s] = genRequests(sw.svcs[s], n, seed) })
	return sw.reqs[s]
}

// done marks one of service s's cells finished and drops the service's
// caches when the last one completes.
func (sw *sweepCaches) done(s int) {
	if sw.left[s].Add(-1) == 0 {
		sw.caches[s].Drop()
		sw.bcaches[s].Drop()
	}
}

// abort drops every service's cache. Drivers call it on the sweep's
// error path: cells abandoned by RunCells never call done, so without
// the drain a failed sweep would strand each undropped cache's bytes
// against the shared trace.Budget for as long as the sweep's results
// stay reachable. Drop is idempotent, so racing a straggler cell's own
// done is harmless.
func (sw *sweepCaches) abort() {
	for _, c := range sw.caches {
		c.Drop()
	}
	for _, c := range sw.bcaches {
		c.Drop()
	}
}

// ChipStudyParallel is ChipStudy on a worker pool: one cell per
// (service, architecture).
func ChipStudyParallel(suite *uservices.Suite, requests int, seed int64, withGPU bool, workers int) ([]ChipRow, error) {
	return ChipStudyOn(suite.Services, requests, seed, withGPU, workers)
}

// ChipStudyOn is ChipStudyParallel restricted to an explicit service
// subset: per-service rows are independent, so a subset's rows are
// byte-identical to the same services' rows in a full-suite run. The
// distributed worker tier executes per-service tasks through it.
func ChipStudyOn(svcs []*uservices.Service, requests int, seed int64, withGPU bool, workers int) ([]ChipRow, error) {
	arches := []Arch{ArchCPU, ArchSMT8, ArchRPU}
	if withGPU {
		arches = append(arches, ArchGPU)
	}
	na := len(arches)
	sw := newSweepCaches(svcs, na)
	la := prepBudget(len(svcs)*na, workers)
	cells, err := RunCells(len(svcs)*na, workers, func(i int) (*Result, error) {
		s := i / na
		defer sw.done(s)
		opts := DefaultOptions()
		opts.Traces = sw.cache(s)
		opts.BatchStreams = sw.batchCache(s)
		opts.PrepLookahead = la
		return RunService(arches[i%na], svcs[s], sw.requests(s, requests, seed), opts)
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	rows := make([]ChipRow, len(svcs))
	for s, svc := range svcs {
		row := ChipRow{Service: svc.Name, CPU: cells[s*na], SMT: cells[s*na+1], RPU: cells[s*na+2]}
		if withGPU {
			row.GPU = cells[s*na+3]
		}
		rows[s] = row
	}
	return rows, nil
}

// EfficiencyStudyParallel is EfficiencyStudy on a worker pool: one
// cell per (service, policy variant).
func EfficiencyStudyParallel(suite *uservices.Suite, requests int, seed int64, workers int) ([]EffRow, error) {
	return EfficiencyStudyOn(suite.Services, requests, seed, workers)
}

// EfficiencyStudyOn is EfficiencyStudyParallel restricted to an
// explicit service subset (see ChipStudyOn).
func EfficiencyStudyOn(svcs []*uservices.Service, requests int, seed int64, workers int) ([]EffRow, error) {
	variants := []struct {
		policy batch.Policy
		ipdom  bool
	}{
		{batch.Naive, false},
		{batch.PerAPI, false},
		{batch.PerAPIArgSize, false},
		{batch.PerAPIArgSize, true},
	}
	nv := len(variants)
	sw := newSweepCaches(svcs, nv)
	cells, err := RunCells(len(svcs)*nv, workers, func(i int) (float64, error) {
		s := i / nv
		defer sw.done(s)
		v := variants[i%nv]
		return efficiencyOf(svcs[s], sw.requests(s, requests, seed), 32, v.policy, v.ipdom, sw.cache(s), sw.batchCache(s))
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	rows := make([]EffRow, len(svcs))
	for s, svc := range svcs {
		rows[s] = EffRow{
			Service:     svc.Name,
			Naive:       cells[s*nv],
			PerAPI:      cells[s*nv+1],
			PerArg:      cells[s*nv+2],
			PerArgIPDOM: cells[s*nv+3],
		}
	}
	return rows, nil
}

// MPKIStudyParallel is MPKIStudy on a worker pool: one cell per
// (service, configuration) where configuration is the CPU or an RPU
// batch size.
func MPKIStudyParallel(suite *uservices.Suite, requests int, seed int64, workers int) ([]MPKIRow, error) {
	return MPKIStudyOn(suite.Services, requests, seed, workers)
}

// MPKIStudyOn is MPKIStudyParallel restricted to an explicit service
// subset (see ChipStudyOn).
func MPKIStudyOn(svcs []*uservices.Service, requests int, seed int64, workers int) ([]MPKIRow, error) {
	sizes := []int{32, 16, 8, 4}
	nc := 1 + len(sizes) // CPU + one per batch size
	sw := newSweepCaches(svcs, nc)
	la := prepBudget(len(svcs)*nc, workers)
	cells, err := RunCells(len(svcs)*nc, workers, func(i int) (*Result, error) {
		s := i / nc
		defer sw.done(s)
		svc := svcs[s]
		reqs := sw.requests(s, requests, seed)
		opts := DefaultOptions()
		opts.Traces = sw.cache(s)
		opts.BatchStreams = sw.batchCache(s)
		opts.PrepLookahead = la
		if i%nc == 0 {
			return RunService(ArchCPU, svc, reqs, opts)
		}
		opts.BatchSize = sizes[i%nc-1]
		return RunService(ArchRPU, svc, reqs, opts)
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	rows := make([]MPKIRow, len(svcs))
	for s, svc := range svcs {
		row := MPKIRow{Service: svc.Name, CPU: cells[s*nc].L1MPKI(), RPU: map[int]float64{}}
		for k, size := range sizes {
			row.RPU[size] = cells[s*nc+1+k].L1MPKI()
		}
		rows[s] = row
	}
	return rows, nil
}

// BatchSweepRow is one RPU batch-size point of a batch-tuning sweep.
type BatchSweepRow struct {
	Size int
	Res  *Result
}

// BatchSweep runs the CPU baseline plus an RPU run per batch size over
// the same requests on a worker pool (the §III-B3 tuning space).
func BatchSweep(svc *uservices.Service, reqs []uservices.Request, sizes []int, workers int) (*Result, []BatchSweepRow, error) {
	sw := newSweepCaches([]*uservices.Service{svc}, 1+len(sizes))
	la := prepBudget(1+len(sizes), workers)
	cells, err := RunCells(1+len(sizes), workers, func(i int) (*Result, error) {
		defer sw.done(0)
		opts := DefaultOptions()
		opts.Traces = sw.cache(0)
		opts.BatchStreams = sw.batchCache(0)
		opts.PrepLookahead = la
		if i == 0 {
			return RunService(ArchCPU, svc, reqs, opts)
		}
		opts.BatchSize = sizes[i-1]
		return RunService(ArchRPU, svc, reqs, opts)
	})
	if err != nil {
		sw.abort()
		return nil, nil, err
	}
	rows := make([]BatchSweepRow, len(sizes))
	for k, size := range sizes {
		rows[k] = BatchSweepRow{Size: size, Res: cells[1+k]}
	}
	return cells[0], rows, nil
}

// MultiBatchRow is one service's §III-A multi-batch interleaving
// measurement.
type MultiBatchRow struct {
	Service string
	Res     *MultiBatchResult
}

// MultiBatchSweep runs MultiBatchStudy for every service in the suite
// on a worker pool (two tuned-size batches per service).
func MultiBatchSweep(suite *uservices.Suite, seed int64, workers int) ([]MultiBatchRow, error) {
	return MultiBatchSweepOn(suite.Services, seed, workers)
}

// MultiBatchSweepOn is MultiBatchSweep restricted to an explicit
// service subset (see ChipStudyOn).
func MultiBatchSweepOn(svcs []*uservices.Service, seed int64, workers int) ([]MultiBatchRow, error) {
	sw := newSweepCaches(svcs, 1)
	cells, err := RunCells(len(svcs), workers, func(i int) (*MultiBatchResult, error) {
		defer sw.done(i)
		svc := svcs[i]
		opts := DefaultOptions()
		opts.Traces = sw.cache(i)
		opts.BatchStreams = sw.batchCache(i)
		return MultiBatchStudy(svc, sw.requests(i, 2*svc.TunedBatch, seed), opts)
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	rows := make([]MultiBatchRow, len(svcs))
	for i, svc := range svcs {
		rows[i] = MultiBatchRow{Service: svc.Name, Res: cells[i]}
	}
	return rows, nil
}
