package core

import (
	"math/rand"
	"testing"

	"simr/internal/alloc"
	"simr/internal/isa"
	"simr/internal/mem"
	"simr/internal/simt"
	"simr/internal/uservices"
)

func benchScalarTrace(b *testing.B) []isa.TraceOp {
	b.Helper()
	svc := uservices.NewSuite().Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(42)), 1)
	sg := alloc.NewStackGroup(0, 1, false)
	arena := alloc.NewArena(0, alloc.PolicyCPU, lineBytes, 1)
	tr, err := svc.Trace(&reqs[0], 0, sg.StackBase(0), arena)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchBatchOps(b *testing.B) ([]simt.BatchOp, *alloc.StackGroup) {
	b.Helper()
	svc := uservices.NewSuite().Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(42)), 32)
	sg := alloc.NewStackGroup(0, len(reqs), true)
	traces, err := svc.TraceBatch(reqs, sg, alloc.PolicySIMR, lineBytes, 8)
	if err != nil {
		b.Fatal(err)
	}
	spin := simt.DefaultSpin
	res, err := simt.RunMinSPPC(traces, 32, &spin)
	if err != nil {
		b.Fatal(err)
	}
	return res.Ops, sg
}

// BenchmarkScalarUops measures the scalar trace -> uop conversion that
// runScalar/runSMT perform once per request; allocs/op is the headline
// (one reset per request, zero per-op allocations once warm).
func BenchmarkScalarUops(b *testing.B) {
	tr := benchScalarTrace(b)
	var ub uopBuilder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ub.reset()
		uops := ub.scalarUops(tr, 0)
		if len(uops) != len(tr) {
			b.Fatal("length mismatch")
		}
	}
}

// BenchmarkBatchUops measures the lock-step stream -> uop conversion
// (lane expansion, stack interleave translation, MCU coalescing) that
// runBatched performs once per batch.
func BenchmarkBatchUops(b *testing.B) {
	ops, sg := benchBatchOps(b)
	var (
		ub  uopBuilder
		mcu mem.MCUStats
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ub.reset()
		uops := ub.batchUops(ops, sg, true, &mcu)
		if len(uops) != len(ops) {
			b.Fatal("length mismatch")
		}
	}
}
