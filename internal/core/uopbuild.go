package core

import (
	"simr/internal/alloc"
	"simr/internal/isa"
	"simr/internal/mem"
	"simr/internal/pipeline"
	"simr/internal/simt"
)

// uopBuilder converts trace/batch-op streams into pipeline uops without
// per-op allocations: uops and their Accesses slices are carved out of
// growing chunk arenas, and the per-op lane expansion reuses flat
// buffers. Streams built between two reset calls may all stay alive at
// once (runSMT keeps 8, MultiBatchStudy keeps 2): when a chunk fills, a
// fresh one is started and earlier streams keep pointing into the old
// chunk, whose values are never rewritten. reset recycles only the
// current chunks, so it must not be called while a previously built
// stream is still in use. A builder must not be shared between
// goroutines.
type uopBuilder struct {
	uops  []pipeline.Uop // current uop chunk
	addrs []uint64       // current chunk backing Uop.Accesses

	laneBuf []uint64   // flat per-op lane granule storage
	lanes   [][]uint64 // per-lane views into laneBuf
	csc     mem.CoalesceScratch

	// mergeSMT working storage.
	remapBuf []int32
	remap    [][]int32
	cursor   []int
}

// reset recycles the current chunks for a new, independent run.
func (b *uopBuilder) reset() {
	b.uops = b.uops[:0]
	b.addrs = b.addrs[:0]
}

// carve returns an n-uop slice from the uop arena; the caller must
// overwrite every element. Chunks grow geometrically so a steady-state
// working set (e.g. runSMT's 8 streams plus their merge, every group)
// converges to a single reused chunk instead of churning fixed-size
// ones.
func (b *uopBuilder) carve(n int) []pipeline.Uop {
	if cap(b.uops)-len(b.uops) < n {
		c := 2 * cap(b.uops)
		if c < 1<<12 {
			c = 1 << 12
		}
		if c < n {
			c = n
		}
		b.uops = make([]pipeline.Uop, 0, c)
	}
	l := len(b.uops)
	b.uops = b.uops[:l+n]
	return b.uops[l : l+n : l+n]
}

// addrRoom guarantees the address arena can absorb n more words without
// relocating (so Accesses slices handed out mid-stream stay current).
func (b *uopBuilder) addrRoom(n int) {
	if cap(b.addrs)-len(b.addrs) < n {
		c := 2 * cap(b.addrs)
		if c < 1<<14 {
			c = 1 << 14
		}
		if c < n {
			c = n
		}
		b.addrs = make([]uint64, 0, c)
	}
}

// scalarUops converts a scalar trace into pipeline uops with identity
// address translation (no interleaving, no coalescing).
func (b *uopBuilder) scalarUops(trace []isa.TraceOp, thread int) []pipeline.Uop {
	uops := b.carve(len(trace))
	b.addrRoom(len(trace))
	for i := range trace {
		op := &trace[i]
		// Field stores (not a struct literal) so the compiler writes the
		// arena slot in place instead of building and copying a stack
		// temporary per uop; carve reuses chunk memory, so every field
		// including the unused ones must be (re)assigned.
		u := &uops[i]
		u.PC = op.PC
		u.Class = op.Class
		u.Dep1 = op.Dep1
		u.Dep2 = op.Dep2
		u.Accesses = nil
		u.ActiveLanes = 1
		u.Mask = 0
		u.TakenMask = 0
		u.Taken = op.Taken
		u.Thread = thread
		if op.Class.IsMem() {
			l := len(b.addrs)
			b.addrs = append(b.addrs, op.Addr)
			u.Accesses = b.addrs[l : l+1 : l+1]
		}
	}
	return uops
}

// batchUops converts the lock-step batch stream into pipeline uops:
// stack addresses are physically interleaved via the batch's stack
// group (when enabled) and every memory instruction passes through the
// MCU coalescer. The coalescer's counts go to mcu, which callers point
// at a per-batch delta (applied to the memory system in batch order by
// the consumer) rather than live counters — the build pass itself must
// stay pure so batches can be prepared ahead on worker goroutines.
func (b *uopBuilder) batchUops(ops []simt.BatchOp, sg *alloc.StackGroup, interleave bool, mcu *mem.MCUStats) []pipeline.Uop {
	uops := b.carve(len(ops))
	for i := range ops {
		op := &ops[i]
		// In-place field stores for the same reason as scalarUops.
		u := &uops[i]
		u.PC = op.PC
		u.Class = op.Class
		u.Dep1 = op.Dep1
		u.Dep2 = op.Dep2
		u.Accesses = nil
		u.ActiveLanes = op.ActiveLanes()
		u.Mask = op.Mask
		u.TakenMask = op.TakenMask
		u.Taken = false
		u.Thread = 0
		if op.Class.IsMem() {
			b.laneBuf = b.laneBuf[:0]
			b.lanes = b.lanes[:0]
			for t := range op.Addrs {
				if op.Mask&(1<<uint(t)) == 0 {
					continue
				}
				a := op.Addrs[t]
				start := len(b.laneBuf)
				if interleave && alloc.IsStack(a) {
					b.laneBuf = sg.AppendTranslate(b.laneBuf, a, int(op.Size))
				} else {
					b.laneBuf = appendGranules(b.laneBuf, a, int(op.Size))
				}
				b.lanes = append(b.lanes, b.laneBuf[start:len(b.laneBuf):len(b.laneBuf)])
			}
			// The coalescer emits at most one address per input word.
			b.addrRoom(len(b.laneBuf))
			l := len(b.addrs)
			b.addrs, _ = mem.AppendCoalesce(b.addrs, &b.csc, b.lanes, lineBytes, mcu)
			u.Accesses = b.addrs[l:len(b.addrs):len(b.addrs)]
		}
	}
	return uops
}

// copyUops clones a read-only uop stream into the builder's arena so
// the caller may mutate the copies (streams served by the batch cache
// are cache-owned and immutable). The copies' Accesses slices keep
// aliasing the source's address arena — they are read-only in every
// consumer, so sharing them is safe and avoids duplicating the
// addresses.
func (b *uopBuilder) copyUops(src []pipeline.Uop) []pipeline.Uop {
	dst := b.carve(len(src))
	copy(dst, src)
	return dst
}

// appendGranules expands one lane's access into the 4-byte words it
// touches so the MCU sees the full footprint (an 8-byte access from
// every lane covers a contiguous region even though lane start
// addresses are 8 bytes apart). The common <=4-byte case appends a
// single word.
func appendGranules(dst []uint64, addr uint64, size int) []uint64 {
	if size <= 4 {
		return append(dst, addr)
	}
	first := addr &^ 3
	last := (addr + uint64(size) - 1) &^ 3
	for a := first; a <= last; a += 4 {
		dst = append(dst, a)
	}
	return dst
}

// mergeSMT interleaves per-thread uop streams round-robin and remaps
// dependency indices into the merged stream. The input streams are not
// modified; the merged stream is carved from the builder's arena.
func (b *uopBuilder) mergeSMT(streams [][]pipeline.Uop) []pipeline.Uop {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	if cap(b.remapBuf) < total {
		b.remapBuf = make([]int32, total)
	}
	if cap(b.remap) < len(streams) {
		b.remap = make([][]int32, len(streams))
		b.cursor = make([]int, len(streams))
	}
	remap := b.remap[:len(streams)]
	cursor := b.cursor[:len(streams)]
	off := 0
	for t, s := range streams {
		remap[t] = b.remapBuf[off : off+len(s) : off+len(s)]
		off += len(s)
		cursor[t] = 0
	}
	merged := b.carve(total)
	k := 0
	for k < total {
		for t, s := range streams {
			if cursor[t] >= len(s) {
				continue
			}
			dst := &merged[k]
			*dst = s[cursor[t]]
			if dst.Dep1 >= 0 {
				dst.Dep1 = remap[t][dst.Dep1]
			}
			if dst.Dep2 >= 0 {
				dst.Dep2 = remap[t][dst.Dep2]
			}
			remap[t][cursor[t]] = int32(k)
			cursor[t]++
			k++
		}
	}
	return merged
}
