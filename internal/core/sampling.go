// Sampled timing simulation (SMARTS-style) for the three chip-level
// run loops: a runSampler maps the prep/consume pipeline onto the
// active (timed + warmup) units only, routes non-timed units through
// the functional-warmup fast path, and extrapolates the aggregate
// Result from the timed subpopulation with per-metric confidence
// intervals. A nil runSampler (sampling off) degenerates to the exact
// unsampled code path, which keeps default output byte-identical.
package core

import (
	"fmt"
	"io"

	"simr/internal/mem"
	"simr/internal/pipeline"
	"simr/internal/sample"
)

// sampleMetricNames are the per-unit quantities the meter tracks for
// CI reporting: the cycle count driving latency and energy, the work
// counters driving the energy model, and the headline memory events.
var sampleMetricNames = []string{
	"cycles", "uops", "scalar_ops", "l1_accesses", "l1_misses", "dram_accesses",
}

// sampleConfig resolves the run's sampling config: an explicit
// Options.Sample wins, otherwise the process-wide default (the
// drivers' -sample flag) applies.
func (o *Options) sampleConfig() sample.Config {
	if o.Sample.Period != 0 {
		return o.Sample
	}
	return sample.Default()
}

// runSampler drives one run's sampling: which units exist, which are
// timed, and the accumulation/extrapolation of the estimate. All
// methods are nil-safe and a nil sampler reproduces the unsampled
// loop exactly.
type runSampler struct {
	cfg    sample.Config
	active []int // original indices of timed + warmup units, ascending
	// forceTimed promotes one unit to the timed role when the sampling
	// grid (last unit of each Period window) lands on no unit at all —
	// a population smaller than one window; -1 otherwise.
	forceTimed int
	meter      *sample.Meter
	latSum     float64 // request-weighted cycles over the timed units
	po         *sampleObs
}

// newRunSampler plans a run of units covering requests requests; it
// returns nil when sampling is off.
func newRunSampler(cfg sample.Config, units, requests int) *runSampler {
	if !cfg.Active() || units <= 0 {
		return nil
	}
	sp := &runSampler{
		cfg:        cfg,
		forceTimed: -1,
		meter:      sample.NewMeter(cfg, units, requests, sampleMetricNames),
		active:     make([]int, 0, units),
	}
	if units < cfg.Period {
		sp.forceTimed = units - 1
	}
	for i := 0; i < units; i++ {
		if cfg.Role(i) != sample.RoleSkip || i == sp.forceTimed {
			sp.active = append(sp.active, i)
		}
	}
	sp.po = sampleProbe(cfg, units-len(sp.active))
	return sp
}

// unitCount returns how many units the prep pipeline walks: all n
// when sampling is off, only the active (timed + warmup) ones when
// on — skipped units are never prepared at all.
func (sp *runSampler) unitCount(n int) int {
	if sp == nil {
		return n
	}
	return len(sp.active)
}

// unit maps the pipeline's dense index back to the original unit.
func (sp *runSampler) unit(k int) int {
	if sp == nil {
		return k
	}
	return sp.active[k]
}

// timed reports whether original unit i takes the full timing path.
func (sp *runSampler) timed(i int) bool {
	return sp == nil || i == sp.forceTimed || sp.cfg.Role(i) == sample.RoleTimed
}

// observe records one timed unit's stats for the estimate.
func (sp *runSampler) observe(st *pipeline.Stats, reqs int) {
	if sp == nil {
		return
	}
	sp.latSum += float64(st.Cycles) * float64(reqs)
	sp.meter.Observe(reqs,
		float64(st.Cycles), float64(st.Uops), float64(st.ScalarOps),
		float64(st.Mem.L1.Accesses), float64(st.Mem.L1.Misses),
		float64(st.Mem.DRAMAccesses))
	sp.po.timedUnit()
}

// warm runs one unit through the functional-warmup fast path.
func (sp *runSampler) warm(c *pipeline.Core, ms *mem.System, uops []pipeline.Uop) {
	t0 := sp.po.clock()
	c.Warm(ms, uops)
	sp.meter.Warmed()
	sp.po.warmUnit(t0)
}

// finish extrapolates the result from the timed subpopulation and
// attaches the estimate. With Period 1 every unit was timed, nothing
// needs extrapolating and the result stays bit-identical to the
// unsampled run (Sampled stays nil).
func (sp *runSampler) finish(res *Result) {
	if sp == nil || !sp.cfg.Sampling() {
		return
	}
	est := sp.meter.Estimate()
	if rest := res.Requests - est.TimedRequests; rest > 0 && est.TimedRequests > 0 {
		// Ratio estimator on request count: project the timed
		// aggregate onto the unmeasured requests, so tail units with
		// short batches carry proportionally less weight.
		measured := res.Stats
		res.Stats.AddScaled(&measured, float64(rest)/float64(est.TimedRequests))
		meanLat := sp.latSum / float64(est.TimedRequests)
		for k := 0; k < rest; k++ {
			res.Latency.Add(meanLat)
		}
	}
	res.Sampled = est
}

// WriteSampling renders the sampling estimates of a sampled chip
// study: the timed/total unit split and per-metric 95% relative CIs.
// It prints nothing when no result carries an estimate, so unsampled
// study output is unchanged.
func WriteSampling(w io.Writer, rows []ChipRow) {
	header := false
	for _, row := range rows {
		for _, res := range []*Result{row.CPU, row.SMT, row.RPU, row.GPU} {
			if res == nil || res.Sampled == nil {
				continue
			}
			e := res.Sampled
			if !header {
				fmt.Fprintf(w, "Sampled simulation estimates (period %d, warmup %d; 95%% CI):\n",
					e.Period, e.Warmup)
				fmt.Fprintf(w, "%-18s %-8s %12s %10s %10s %10s %10s\n",
					"service", "arch", "timed/units", "cycles", "uops", "l1acc", "dram")
				header = true
			}
			ci := func(name string) string {
				return fmt.Sprintf("±%.2f%%", 100*e.Metric(name).RelCI95)
			}
			fmt.Fprintf(w, "%-18s %-8s %6d/%-5d %10s %10s %10s %10s\n",
				res.Service, res.Arch, e.Timed, e.Units,
				ci("cycles"), ci("uops"), ci("l1_accesses"), ci("dram_accesses"))
		}
	}
}
