package core

import (
	"fmt"
	"math/rand"
	"testing"

	"simr/internal/stats"
	"simr/internal/uservices"
)

// TestProbe prints a compact calibration table; opt-in verbose tool.
func TestProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	suite := uservices.NewSuite()
	var rpuLat, rpuRPJ, smtLat, l1x, effs []float64
	for _, svc := range suite.Services {
		r := rand.New(rand.NewSource(42))
		reqs := svc.Generate(r, 320)
		opts := DefaultOptions()
		cpu, err := RunService(ArchCPU, svc, reqs, opts)
		if err != nil {
			t.Fatal(err)
		}
		smt, err := RunService(ArchSMT8, svc, reqs, opts)
		if err != nil {
			t.Fatal(err)
		}
		rpu, err := RunService(ArchRPU, svc, reqs, opts)
		if err != nil {
			t.Fatal(err)
		}
		rl := rpu.Latency.Mean() / cpu.Latency.Mean()
		rj := rpu.ReqPerJoule() / cpu.ReqPerJoule()
		lx := rpu.L1AccessesPerRequest() / cpu.L1AccessesPerRequest()
		rpuLat = append(rpuLat, rl)
		rpuRPJ = append(rpuRPJ, rj)
		smtLat = append(smtLat, smt.Latency.Mean()/cpu.Latency.Mean())
		l1x = append(l1x, lx)
		effs = append(effs, rpu.SIMTEff)
		fmt.Printf("%-16s cpu[ipc=%.2f] rpu[lat=%.2fx rpj=%.2fx eff=%.2f l1=%.2fx]\n",
			svc.Name, cpu.Stats.IPC(), rl, rj, rpu.SIMTEff, lx)
	}
	fmt.Printf("AVG: lat=%.2fx rpj=%.2fx eff=%.2f l1=%.2fx smtlat=%.1fx\n",
		mean2(rpuLat), stats.GeoMean(rpuRPJ), mean2(effs), mean2(l1x), mean2(smtLat))
}

func mean2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
