package core

import (
	"bytes"
	"reflect"
	"testing"

	"simr/internal/uservices"
)

// withFreshTraces runs fn with the sweep-level trace cache disabled so
// every cell interprets its requests from scratch (the pre-cache code
// path).
func withFreshTraces(t *testing.T, fn func()) {
	t.Helper()
	disableTraceCache = true
	defer func() { disableTraceCache = false }()
	fn()
}

// TestTraceCacheStudyDeterminism is the tentpole guarantee of the
// trace cache: for every study, a cached sweep (on several workers, so
// the cache is exercised concurrently — run under -race this is also
// the cache's integration race test) renders byte-identically to a
// fresh-interpretation sweep.
func TestTraceCacheStudyDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	const workers = 4

	t.Run("chip", func(t *testing.T) {
		render := func(rows []ChipRow) []byte {
			var buf bytes.Buffer
			WriteFig10(&buf, rows)
			WriteFig14(&buf, rows)
			WriteFig19(&buf, rows)
			WriteFig20(&buf, rows)
			WriteFig21(&buf, rows)
			if err := WriteJSON(&buf, rows); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		cached, err := ChipStudyParallel(suite, 32, 3, false, workers)
		if err != nil {
			t.Fatal(err)
		}
		var fresh []ChipRow
		withFreshTraces(t, func() {
			fresh, err = ChipStudyParallel(suite, 32, 3, false, workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(cached), render(fresh)) {
			t.Fatal("cached chip study output differs from fresh interpretation")
		}
	})

	t.Run("efficiency", func(t *testing.T) {
		cached, err := EfficiencyStudyParallel(suite, 64, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		var fresh []EffRow
		withFreshTraces(t, func() {
			fresh, err = EfficiencyStudyParallel(suite, 64, 7, workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cached, fresh) {
			t.Fatal("cached efficiency study differs from fresh interpretation")
		}
	})

	t.Run("mpki", func(t *testing.T) {
		cached, err := MPKIStudyParallel(suite, 32, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		var fresh []MPKIRow
		withFreshTraces(t, func() {
			fresh, err = MPKIStudyParallel(suite, 32, 3, workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cached, fresh) {
			t.Fatal("cached MPKI study differs from fresh interpretation")
		}
	})

	t.Run("sensitivity", func(t *testing.T) {
		var cached, fresh bytes.Buffer
		if err := SensitivityStudyParallel(&cached, suite, []string{"urlshort", "memc"}, 64, 3, workers); err != nil {
			t.Fatal(err)
		}
		var err error
		withFreshTraces(t, func() {
			err = SensitivityStudyParallel(&fresh, suite, []string{"urlshort", "memc"}, 64, 3, workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if cached.String() != fresh.String() {
			t.Fatal("cached sensitivity report differs from fresh interpretation")
		}
	})

	t.Run("multibatch", func(t *testing.T) {
		cached, err := MultiBatchSweep(suite, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		var fresh []MultiBatchRow
		withFreshTraces(t, func() {
			fresh, err = MultiBatchSweep(suite, 3, workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cached, fresh) {
			t.Fatal("cached multi-batch sweep differs from fresh interpretation")
		}
	})

	t.Run("batchsweep", func(t *testing.T) {
		svc := suite.Get("memc")
		reqs := genRequests(svc, 64, 3)
		sizes := []int{32, 8}
		cpuC, cached, err := BatchSweep(svc, reqs, sizes, workers)
		if err != nil {
			t.Fatal(err)
		}
		var (
			cpuF  *Result
			fresh []BatchSweepRow
		)
		withFreshTraces(t, func() {
			cpuF, fresh, err = BatchSweep(svc, reqs, sizes, workers)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cpuC, cpuF) || !reflect.DeepEqual(cached, fresh) {
			t.Fatal("cached batch sweep differs from fresh interpretation")
		}
	})
}
