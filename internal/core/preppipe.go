// Intra-run software pipelining: a bounded-lookahead producer stage
// prepares upcoming batches (trace fetch, SIMT lock-step merge, uop
// build) on worker goroutines while the consumer drives the timing
// core over already-prepared batches. Preparation is pure — it writes
// only per-slot scratch storage and per-batch stat deltas — so the
// consumer, which applies results strictly in batch order, produces
// output byte-identical to the sequential loop at any lookahead.
package core

import (
	"sync"
	"sync/atomic"
)

// PrepAuto selects an automatic per-run prep lookahead derived from
// the spare CPU budget (see Options.PrepLookahead).
const PrepAuto = -1

// maxPrepLookahead caps the automatic lookahead: preparation is a
// minority of the per-batch work once traces are cached, so a few
// batches of headroom already hide it behind the timing core.
const maxPrepLookahead = 4

// prepForce holds the process-wide lookahead override as value+1
// (0 = no override). It backs the cmd tools' -lookahead flag and the
// bench harness, which need to pin every study's derived lookahead
// without threading a parameter through each driver.
var prepForce atomic.Int32

// SetPrepLookahead forces the lookahead every PrepAuto resolution
// (study drivers and direct RunService calls) will use: n >= 0 pins
// it, n < 0 restores automatic derivation. Options with an explicit
// non-negative PrepLookahead are unaffected.
func SetPrepLookahead(n int) {
	if n < 0 {
		prepForce.Store(0)
		return
	}
	prepForce.Store(int32(n) + 1)
}

// PrepLookaheadOverride returns the process-wide lookahead pinned by
// SetPrepLookahead, or -1 when lookahead derivation is automatic. The
// distributed dispatcher reads it to forward the driver's flag state
// to workers.
func PrepLookaheadOverride() int {
	if v := prepForce.Load(); v != 0 {
		return int(v) - 1
	}
	return -1
}

// prepBudget derives the per-cell prep lookahead for a sweep of cells
// cells on workers outer workers: the inner prep goroutines of all
// concurrently running cells must not oversubscribe the machine, so
// each cell gets the spare CPUs left after the outer pool is staffed.
// A process-wide SetPrepLookahead override wins when set.
func prepBudget(cells, workers int) int {
	if v := prepForce.Load(); v != 0 {
		return int(v) - 1
	}
	p := DefaultWorkers()
	if workers <= 0 || workers > p {
		workers = p
	}
	if workers > cells {
		workers = cells
	}
	if workers < 1 {
		workers = 1
	}
	la := p/workers - 1
	if la < 0 {
		la = 0
	}
	if la > maxPrepLookahead {
		la = maxPrepLookahead
	}
	return la
}

// lookahead resolves the option to a concrete batch count.
func (o *Options) lookahead() int {
	if o.PrepLookahead >= 0 {
		return o.PrepLookahead
	}
	return prepBudget(1, 1)
}

// pipelined runs n units through a bounded-lookahead producer/consumer
// pipeline. prep(slot, i) prepares unit i into slot-private storage
// (the caller provisions lookahead+1 slots so a slot is only reused
// after its previous unit was consumed); consume(slot, i) applies unit
// i's results. consume is called from the calling goroutine in strict
// unit order, so any order-sensitive accumulation stays byte-identical
// to the sequential loop. prep runs on up to lookahead worker
// goroutines once the pipeline fills. lookahead <= 0 runs everything
// inline with no goroutines (the determinism oracle). On a prep error
// the lowest-index error is returned, matching the sequential loop.
func pipelined(n, lookahead int, prep func(slot, i int) error, consume func(slot, i int)) error {
	if n <= 0 {
		return nil
	}
	po := prepProbe(lookahead)
	defer po.finish()
	if lookahead <= 0 || n == 1 {
		for i := 0; i < n; i++ {
			t0 := po.clock()
			if err := prep(0, i); err != nil {
				return err
			}
			t1 := po.clock()
			consume(0, i)
			po.inline(t0, t1)
		}
		return nil
	}
	nslots := lookahead + 1
	if nslots > n {
		nslots = n
	}

	// Slot s's goroutine prepares units s, s+nslots, ... back to back;
	// the free token (returned by the consumer) gates arena reuse and
	// the ready channel publishes each prepared unit. ready never
	// blocks: it has one buffer slot and the consumer always drains it
	// before refilling free.
	ready := make([]chan error, nslots)
	free := make([]chan struct{}, nslots)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < nslots; s++ {
		ready[s] = make(chan error, 1)
		free[s] = make(chan struct{}, 1)
		free[s] <- struct{}{}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < n; i += nslots {
				tw := po.clock()
				select {
				case <-free[s]:
				case <-stop:
					return
				}
				po.stall(tw)
				t0 := po.clock()
				err := prep(s, i)
				if err == nil {
					po.prep(s, t0)
				}
				ready[s] <- err
				if err != nil {
					return
				}
			}
		}(s)
	}

	for i := 0; i < n; i++ {
		s := i % nslots
		tw := po.clock()
		if err := <-ready[s]; err != nil {
			// The consumer walks units in order, so the first error it
			// meets has the lowest index among all failed preps.
			close(stop)
			wg.Wait()
			return err
		}
		t0 := po.clock()
		consume(s, i)
		po.consume(t0, t0.Sub(tw))
		free[s] <- struct{}{}
	}
	wg.Wait()
	return nil
}
