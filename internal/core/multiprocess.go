package core

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
	"simr/internal/mem"
	"simr/internal/pipeline"
	"simr/internal/simt"
	"simr/internal/trace"
	"simr/internal/uservices"
)

// MultiProcessResult is the §VI-B study outcome: SIMT efficiency of a
// batch whose requests run in one shared address space (multi-threaded
// service) versus separate per-process address spaces.
type MultiProcessResult struct {
	// SharedEff is the multi-threaded baseline.
	SharedEff float64
	// SeparateEff is the multi-process case: identical code mapped at
	// per-process (ASLR) bases, so no two lanes ever share a PC.
	SeparateEff float64
	// AlignedEff is the paper's suggested mitigation: processes whose
	// text segments are deliberately mapped at the same virtual base
	// ("user-orchestrated inter-process sharing"), restoring lock-step.
	AlignedEff float64
}

// buildMPService builds one instance of a small representative service
// program (parse, hash-ish chain, data-dependent branch, copy loop).
func buildMPService() *isa.Program {
	b := isa.NewProgram("mp.svc")
	b.SyscallOp()
	b.Loop(func(c *isa.Ctx) int { return int(c.Arg0(0)) }, func(b *isa.Builder) {
		b.OpsChain(isa.IAlu, 3, 1)
		b.StackStore(24)
	})
	b.If(func(c *isa.Ctx) bool { return c.Arg0(1)%2 == 0 },
		func(b *isa.Builder) { b.Ops(isa.IAlu, 6) },
		func(b *isa.Builder) { b.Ops(isa.FAlu, 3) })
	b.LoopN(8, func(b *isa.Builder) {
		b.StackLoad(32)
		b.StackStore(40)
	})
	b.SyscallOp()
	return b.Build()
}

// MultiProcessStudy reproduces §VI-B: the same microservice run as
// per-request processes instead of threads. Each process's text is
// linked at a different base, so lanes never share a PC and lock-step
// execution degenerates to full serialization; mapping the processes
// at one agreed base restores it.
func MultiProcessStudy(batchSize int, seed int64) (*MultiProcessResult, error) {
	if batchSize <= 0 {
		batchSize = 32
	}
	r := rand.New(rand.NewSource(seed))
	args := make([][]uint64, batchSize)
	for i := range args {
		args[i] = []uint64{uint64(2 + r.Intn(4)), uint64(r.Intn(2))}
	}

	trace := func(p *isa.Program, tid int, arg []uint64) ([]isa.TraceOp, error) {
		ctx := &isa.Ctx{
			Arg:       arg,
			StackBase: 1 << 46,
			Heap:      nopHeap{},
			Rand:      rand.New(rand.NewSource(int64(tid))),
			TID:       tid,
		}
		return isa.Execute(p, ctx, 0)
	}

	res := &MultiProcessResult{}

	// Shared address space: one program, all lanes.
	shared := buildMPService()
	if _, err := isa.Link(1<<22, shared); err != nil {
		return nil, err
	}
	tracesShared := make([][]isa.TraceOp, batchSize)
	for t := 0; t < batchSize; t++ {
		tr, err := trace(shared, t, args[t])
		if err != nil {
			return nil, err
		}
		tracesShared[t] = tr
	}
	rs, err := simt.RunMinSPPC(tracesShared, batchSize, nil)
	if err != nil {
		return nil, err
	}
	res.SharedEff = rs.Efficiency()

	// Separate processes: one program copy per lane at its own (ASLR)
	// base.
	tracesSep := make([][]isa.TraceOp, batchSize)
	base := uint64(1 << 23)
	for t := 0; t < batchSize; t++ {
		p := buildMPService()
		next, err := isa.Link(base+uint64(t)*(1<<16)+uint64(t)*64, p)
		if err != nil {
			return nil, err
		}
		base = next
		tr, err := trace(p, t, args[t])
		if err != nil {
			return nil, err
		}
		tracesSep[t] = tr
	}
	rp, err := simt.RunMinSPPC(tracesSep, batchSize, nil)
	if err != nil {
		return nil, err
	}
	res.SeparateEff = rp.Efficiency()

	// Aligned processes: distinct program instances deliberately linked
	// at one common base (the paper's proposed virtual-memory
	// mitigation) — lanes share PCs again.
	tracesAligned := make([][]isa.TraceOp, batchSize)
	for t := 0; t < batchSize; t++ {
		p := buildMPService()
		if _, err := isa.Link(1<<25, p); err != nil {
			return nil, err
		}
		tr, err := trace(p, t, args[t])
		if err != nil {
			return nil, err
		}
		tracesAligned[t] = tr
	}
	ra, err := simt.RunMinSPPC(tracesAligned, batchSize, nil)
	if err != nil {
		return nil, err
	}
	res.AlignedEff = ra.Efficiency()
	return res, nil
}

type nopHeap struct{}

func (nopHeap) Alloc(n int) uint64 { return 1 << 40 }

// MultiBatchResult is the §III-A coarse-grain batch interleaving
// study: two batches either run back to back on one RPU core or are
// interleaved through the shared OoO window (zero-overhead hardware
// batch switching), overlapping one batch's stalls with the other's
// work.
type MultiBatchResult struct {
	SequentialCycles  uint64
	InterleavedCycles uint64
}

// Speedup returns sequential/interleaved.
func (r *MultiBatchResult) Speedup() float64 {
	if r.InterleavedCycles == 0 {
		return 0
	}
	return float64(r.SequentialCycles) / float64(r.InterleavedCycles)
}

// MultiBatchStudy runs two consecutive batches of the service
// sequentially and then interleaved (round-robin per batch
// instruction, each batch with a private half of the ROB), returning
// both runtimes. The paper leaves multi-batch scheduling as future
// work; this quantifies its headroom at nanosecond-scale stalls.
func MultiBatchStudy(svc *uservices.Service, reqs []uservices.Request, opts Options) (*MultiBatchResult, error) {
	size := opts.BatchSize
	if size <= 0 {
		size = svc.TunedBatch
	}
	if len(reqs) < 2*size {
		size = len(reqs) / 2
	}
	cfgP := PipelineConfig(ArchRPU)
	cfgM := MemConfig(ArchRPU)

	var (
		ub  uopBuilder // never reset: streams a and b stay alive together
		sc  simt.Scratch
		key []byte
	)
	mkUops := func(rs []uservices.Request, thread int) ([]pipeline.Uop, error) {
		sg := alloc.NewStackGroup(0, len(rs), opts.StackInterleave)
		var local trace.BatchStream
		build := func() (*trace.BatchStream, error) {
			traces, err := batchTraces(opts.Traces, svc, rs, sg, opts.AllocPolicy, cfgM.L1.Banks)
			if err != nil {
				return nil, err
			}
			merged, err := simt.RunMinSPPCWith(&sc, traces, size, opts.Spin)
			if err != nil {
				return nil, err
			}
			local.Uops = ub.batchUops(merged.Ops, sg, opts.StackInterleave, &local.MCU)
			local.ScalarOps = merged.ScalarOps
			local.BatchOps = len(merged.Ops)
			local.Requests = len(rs)
			return &local, nil
		}
		var uops []pipeline.Uop
		if opts.BatchStreams == nil {
			st, err := build()
			if err != nil {
				return nil, err
			}
			uops = st.Uops
		} else {
			// The study always lock-steps with MinSP-PC, so the key
			// says ipdom=false regardless of opts.UseIPDOM.
			key = trace.AppendBatchKey(key[:0], trace.KeyBatch, rs, size,
				false, opts.Spin, opts.AllocPolicy, opts.StackInterleave,
				lineBytes, cfgM.L1.Banks, alloc.StackRegion)
			st, err := opts.BatchStreams.Get(key, build)
			if err != nil {
				return nil, err
			}
			// The stream may be cache-owned (immutable): copy it into
			// the local arena before overwriting Thread below.
			uops = ub.copyUops(st.Uops)
		}
		for i := range uops {
			uops[i].Thread = thread
		}
		return uops, nil
	}

	a, err := mkUops(reqs[:size], 0)
	if err != nil {
		return nil, err
	}
	b, err := mkUops(reqs[size:2*size], 1)
	if err != nil {
		return nil, err
	}

	// Sequential: two runs on a warm core.
	ms := mem.NewSystem(cfgM)
	core := pipeline.NewCore(cfgP)
	s1 := core.Run(ms, a)
	ms.ResetTiming()
	s2 := core.Run(ms, b)
	seq := s1.Cycles + s2.Cycles

	// Interleaved: merged streams, per-batch ROB partitions.
	cfgI := cfgP
	cfgI.ROBPerThread = cfgP.ROB / 2
	ms2 := mem.NewSystem(cfgM)
	core2 := pipeline.NewCore(cfgI)
	merged := ub.mergeSMT([][]pipeline.Uop{a, b})
	si := core2.Run(ms2, merged)

	return &MultiBatchResult{SequentialCycles: seq, InterleavedCycles: si.Cycles}, nil
}
