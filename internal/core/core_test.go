package core

import (
	"encoding/json"
	"io"
	"math/rand"
	"strings"
	"testing"

	"simr/internal/batch"
	"simr/internal/uservices"
)

// testReqs keeps the integration tests fast; shape assertions use
// services where the effect is robust at this size.
const testReqs = 192

func run(t *testing.T, arch Arch, svcName string, mutate func(*Options)) *Result {
	t.Helper()
	suite := uservices.NewSuite()
	svc := suite.Get(svcName)
	reqs := svc.Generate(rand.New(rand.NewSource(42)), testReqs)
	opts := DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	res, err := RunService(arch, svc, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllArchitecturesRunAllServices(t *testing.T) {
	suite := uservices.NewSuite()
	for _, svc := range suite.Services {
		reqs := svc.Generate(rand.New(rand.NewSource(1)), 64)
		for _, arch := range []Arch{ArchCPU, ArchSMT8, ArchRPU, ArchGPU} {
			res, err := RunService(arch, svc, reqs, DefaultOptions())
			if err != nil {
				t.Fatalf("%s on %v: %v", svc.Name, arch, err)
			}
			if res.Requests != 64 || res.Latency.Len() != 64 {
				t.Fatalf("%s on %v: request accounting wrong", svc.Name, arch)
			}
			if res.Stats.Cycles == 0 || res.Energy.Total() <= 0 {
				t.Fatalf("%s on %v: empty result", svc.Name, arch)
			}
		}
	}
}

func TestHeadlineShape(t *testing.T) {
	// The paper's qualitative results must hold on a representative
	// mid-tier service: the RPU wins requests/joule by a wide margin at
	// under ~2.5x latency; SMT-8 is latency-poor and roughly
	// energy-neutral; the GPU is energy-best but latency-worst.
	for _, name := range []string{"memc", "mcrouter", "user"} {
		cpu := run(t, ArchCPU, name, nil)
		smt := run(t, ArchSMT8, name, nil)
		rpu := run(t, ArchRPU, name, nil)
		gpu := run(t, ArchGPU, name, nil)

		if r := rpu.ReqPerJoule() / cpu.ReqPerJoule(); r < 1.8 {
			t.Errorf("%s: RPU req/J only %.2fx CPU", name, r)
		}
		if r := rpu.AvgLatencySec() / cpu.AvgLatencySec(); r > 3.0 {
			t.Errorf("%s: RPU latency %.2fx CPU", name, r)
		}
		if r := smt.AvgLatencySec() / cpu.AvgLatencySec(); r < 1.5 {
			t.Errorf("%s: SMT-8 latency %.2fx CPU, expected much worse", name, r)
		}
		if r := smt.ReqPerJoule() / cpu.ReqPerJoule(); r < 0.6 || r > 1.8 {
			t.Errorf("%s: SMT-8 req/J %.2fx CPU, expected near parity", name, r)
		}
		if r := gpu.AvgLatencySec() / cpu.AvgLatencySec(); r < 5 {
			t.Errorf("%s: GPU latency only %.1fx CPU", name, r)
		}
		if gpu.ReqPerJoule() < rpu.ReqPerJoule() {
			t.Errorf("%s: GPU should be the energy-efficiency winner", name)
		}
	}
}

func TestRPUReducesFrontendWork(t *testing.T) {
	cpu := run(t, ArchCPU, "urlshort", nil)
	rpu := run(t, ArchRPU, "urlshort", nil)
	// Issued (frontend) instructions drop by ~batch×efficiency.
	r := float64(cpu.Stats.Uops) / float64(rpu.Stats.Uops)
	if r < 15 {
		t.Fatalf("frontend instruction reduction only %.1fx", r)
	}
	if rpu.Stats.ScalarOps != cpu.Stats.ScalarOps {
		t.Fatalf("scalar work differs: %d vs %d", rpu.Stats.ScalarOps, cpu.Stats.ScalarOps)
	}
}

func TestRPUCoalescesTraffic(t *testing.T) {
	cpu := run(t, ArchCPU, "mcrouter", nil)
	rpu := run(t, ArchRPU, "mcrouter", nil)
	r := rpu.L1AccessesPerRequest() / cpu.L1AccessesPerRequest()
	if r > 0.6 {
		t.Fatalf("stack-heavy service L1 traffic ratio %.2f, want well under 1", r)
	}
}

func TestBatchSizeOptionRespected(t *testing.T) {
	r32 := run(t, ArchRPU, "memc", func(o *Options) { o.BatchSize = 32 })
	r8 := run(t, ArchRPU, "memc", func(o *Options) { o.BatchSize = 8 })
	if r8.Batches <= r32.Batches {
		t.Fatalf("batch accounting: %d batches at size 8 vs %d at 32", r8.Batches, r32.Batches)
	}
}

func TestTunedBatchUsedByDefault(t *testing.T) {
	res := run(t, ArchRPU, "search-leaf", nil)
	// 192 requests at tuned batch 8 → ≥ 24 batches.
	if res.Batches < 24 {
		t.Fatalf("search-leaf should default to batch 8, got %d batches", res.Batches)
	}
}

func TestNaivePolicyLowersEfficiency(t *testing.T) {
	opt := run(t, ArchRPU, "memc", nil)
	naive := run(t, ArchRPU, "memc", func(o *Options) { o.Policy = batch.Naive })
	if naive.SIMTEff >= opt.SIMTEff {
		t.Fatalf("naive eff %.2f >= optimized %.2f", naive.SIMTEff, opt.SIMTEff)
	}
}

func TestEfficiencyStudyOrdering(t *testing.T) {
	suite := uservices.NewSuite()
	rows, err := EfficiencyStudy(suite, 320, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	var nv, pa, pg float64
	for _, r := range rows {
		nv += r.Naive
		pa += r.PerAPI
		pg += r.PerArg
		if r.Naive <= 0 || r.PerArg > 1 {
			t.Fatalf("%s: efficiency out of range: %+v", r.Service, r)
		}
	}
	if !(nv <= pa+0.01 && pa <= pg+0.01) {
		t.Fatalf("policy ordering violated: naive %.3f, per-api %.3f, +arg %.3f", nv, pa, pg)
	}
	// Paper Figure 11 band: optimized average ≈ 0.9.
	if avg := pg / 15; avg < 0.8 || avg > 1.0 {
		t.Fatalf("optimized average efficiency %.2f outside band", avg)
	}
}

func TestMPKIStudyLeafTuning(t *testing.T) {
	suite := uservices.NewSuite()
	rows, err := MPKIStudy(suite, 192, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Service == "search-leaf" || r.Service == "hdsearch-leaf" {
			if r.RPU[8] >= r.RPU[32] {
				t.Fatalf("%s: MPKI at batch 8 (%.1f) not below batch 32 (%.1f)",
					r.Service, r.RPU[8], r.RPU[32])
			}
		}
	}
}

func TestSensitivityStudyRuns(t *testing.T) {
	suite := uservices.NewSuite()
	var sb strings.Builder
	err := SensitivityStudy(&sb, suite, []string{"memc", "uniqueid"}, 96, 42)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sub-batch", "atomics", "allocator", "majority", "MinSP-PC", "interleaving"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sensitivity output missing %q", want)
		}
	}
}

func TestFig5Table(t *testing.T) {
	rows := Fig5Scaling()
	if len(rows) < 4 {
		t.Fatal("too few generations")
	}
	prev := 0
	for _, r := range rows {
		if r.Threads < prev {
			t.Fatal("thread scaling not monotone")
		}
		prev = r.Threads
	}
	// Paper: DDR5 era ~256+, DDR6/HBM ~512+.
	if rows[2].Threads < 250 || rows[3].Threads < 500 {
		t.Fatalf("scaling points %v", rows)
	}
}

func TestChipStudyWritersProduceOutput(t *testing.T) {
	suite := uservices.NewSuite()
	rows, err := ChipStudy(suite, 64, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, wfn := range []func(io.Writer, []ChipRow){WriteFig10, WriteFig14, WriteFig19, WriteFig20, WriteFig21} {
		var sb strings.Builder
		wfn(&sb, rows)
		if !strings.Contains(sb.String(), "memc") {
			t.Fatal("figure writer missing service rows")
		}
	}
}

func TestConfigsMatchTableIV(t *testing.T) {
	cpu := PipelineConfig(ArchCPU)
	rpu := PipelineConfig(ArchRPU)
	if cpu.IALULat != 1 || rpu.IALULat != 4 {
		t.Fatal("ALU latencies not per Table IV")
	}
	if rpu.Lanes != 8 || cpu.Lanes != 1 {
		t.Fatal("lane counts not per Table IV")
	}
	if ArchCPU.Cores() != 98 || ArchRPU.Cores() != 20 || ArchSMT8.Cores() != 80 {
		t.Fatal("core counts not per Table IV")
	}
	if ArchCPU.ThreadsPerCore()*ArchCPU.Cores() != 98 ||
		ArchRPU.ThreadsPerCore()*ArchRPU.Cores() != 640 ||
		ArchSMT8.ThreadsPerCore()*ArchSMT8.Cores() != 640 {
		t.Fatal("total threads not per Table IV")
	}
	mc, mr := MemConfig(ArchCPU), MemConfig(ArchRPU)
	if mc.L1.SizeBytes != 64<<10 || mr.L1.SizeBytes != 256<<10 {
		t.Fatal("L1 sizes not per Table IV")
	}
	if mc.L1.LatCycles != 3 || mr.L1.LatCycles != 8 {
		t.Fatal("L1 latencies not per Table IV")
	}
	if !mr.AtomicsAtL3 || mc.AtomicsAtL3 {
		t.Fatal("atomics policy not per the paper")
	}
}

func TestIPDOMOptionMatchesMinSPPC(t *testing.T) {
	// Structured (reducible) programs: MinSP-PC reaches the IPDOM
	// reconvergence points exactly, so efficiencies agree.
	a := run(t, ArchRPU, "post-text", nil)
	b := run(t, ArchRPU, "post-text", func(o *Options) { o.UseIPDOM = true })
	if diff := a.SIMTEff - b.SIMTEff; diff > 0.02 || diff < -0.02 {
		t.Fatalf("MinSP-PC %.3f vs IPDOM %.3f", a.SIMTEff, b.SIMTEff)
	}
}

func TestISPCBetweenCPUAndRPU(t *testing.T) {
	suite := uservices.NewSuite()
	svc := suite.Get("mcrouter")
	reqs := svc.Generate(rand.New(rand.NewSource(42)), testReqs)
	cpu, err := RunService(ArchCPU, svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rpu, err := RunService(ArchRPU, svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	isp, err := RunISPC(svc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// §VI-A: SIMD-on-CPU improves on the scalar CPU but loses to the
	// RPU on both energy and latency.
	if isp.ReqPerJoule() <= cpu.ReqPerJoule() {
		t.Fatalf("ISPC req/J %.0f not above CPU %.0f", isp.ReqPerJoule(), cpu.ReqPerJoule())
	}
	if isp.ReqPerJoule() >= rpu.ReqPerJoule() {
		t.Fatalf("ISPC req/J %.0f should trail the RPU %.0f", isp.ReqPerJoule(), rpu.ReqPerJoule())
	}
	if isp.AvgLatencySec() <= rpu.AvgLatencySec() {
		t.Fatalf("ISPC latency should exceed the RPU's (gathers + scalar fallback)")
	}
	if isp.Stats.ScalarOps != cpu.Stats.ScalarOps {
		t.Fatal("ISPC scalar work differs from CPU")
	}
}

func TestGPGPUSuiteCoalesces(t *testing.T) {
	suite := uservices.NewGPGPUSuite()
	if len(suite.Services) != 3 {
		t.Fatalf("%d kernels", len(suite.Services))
	}
	svc := suite.Get("spmd-saxpy")
	reqs := svc.Generate(rand.New(rand.NewSource(1)), 128)
	cpu, err := RunService(ArchCPU, svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rpu, err := RunService(ArchRPU, svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rpu.SIMTEff < 0.99 {
		t.Fatalf("saxpy SIMT efficiency %.2f, want ~1.0", rpu.SIMTEff)
	}
	// Grid-interleaved loads must coalesce hard (consecutive lanes).
	if r := rpu.L1AccessesPerRequest() / cpu.L1AccessesPerRequest(); r > 0.3 {
		t.Fatalf("saxpy traffic ratio %.2f, want deep coalescing", r)
	}
	gpu, err := RunService(ArchGPU, svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gpu.ReqPerJoule() <= rpu.ReqPerJoule() {
		t.Fatal("GPU should remain the SPMD efficiency winner (§VI-D)")
	}
}

func TestMultiProcessStudy(t *testing.T) {
	res, err := MultiProcessStudy(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	// §VI-B: separate address spaces destroy lock-step; aligning the
	// processes' text restores it to the threaded level.
	if res.SeparateEff > res.SharedEff/4 {
		t.Fatalf("separate processes eff %.2f, expected collapse vs shared %.2f",
			res.SeparateEff, res.SharedEff)
	}
	if res.AlignedEff < res.SharedEff*0.9 {
		t.Fatalf("aligned processes eff %.2f should recover to ~shared %.2f",
			res.AlignedEff, res.SharedEff)
	}
	if res.SharedEff < 0.6 {
		t.Fatalf("shared baseline eff %.2f suspiciously low", res.SharedEff)
	}
}

func TestMultiBatchStudy(t *testing.T) {
	suite := uservices.NewSuite()
	svc := suite.Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(11)), 64)
	res, err := MultiBatchStudy(svc, reqs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SequentialCycles == 0 || res.InterleavedCycles == 0 {
		t.Fatal("zero cycles")
	}
	// Interleaving two batches through one window must not be slower
	// than a generous margin and typically overlaps stalls.
	if sp := res.Speedup(); sp < 0.8 {
		t.Fatalf("interleaving speedup %.2f", sp)
	}
}

func TestWriteJSON(t *testing.T) {
	suite := uservices.NewSuite()
	rows, err := ChipStudy(suite, 32, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, rows[:2]); err != nil {
		t.Fatal(err)
	}
	var decoded []ResultJSON
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 6 { // 2 services × 3 architectures
		t.Fatalf("%d records", len(decoded))
	}
	for _, d := range decoded {
		if d.Service == "" || d.Arch == "" || d.ReqPerJoule <= 0 {
			t.Fatalf("bad record %+v", d)
		}
	}
}

// TestDeterminism guards reproducibility: identical seeds must yield
// bit-identical results across runs (the simulators use no global
// state, wall clock or map-iteration-order-dependent arithmetic).
func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, float64, float64) {
		suite := uservices.NewSuite()
		svc := suite.Get("memc")
		reqs := svc.Generate(rand.New(rand.NewSource(99)), 96)
		res, err := RunService(ArchRPU, svc, reqs, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles, res.Energy.Total(), res.SIMTEff
	}
	c1, e1, f1 := runOnce()
	c2, e2, f2 := runOnce()
	if c1 != c2 || e1 != e2 || f1 != f2 {
		t.Fatalf("non-deterministic: (%d,%g,%g) vs (%d,%g,%g)", c1, e1, f1, c2, e2, f2)
	}
}

// TestPerServiceEfficiencyBands pins each service's optimized SIMT
// efficiency to a band around the measured full-scale value, so
// workload regressions surface immediately.
func TestPerServiceEfficiencyBands(t *testing.T) {
	bands := map[string][2]float64{
		"mcrouter":         {0.90, 1.0},
		"memc-backend":     {0.80, 1.0},
		"memc":             {0.85, 1.0},
		"search-mid":       {0.85, 1.0},
		"search-leaf":      {0.70, 1.0},
		"hdsearch-mid":     {0.85, 1.0},
		"hdsearch-leaf":    {0.70, 1.0},
		"recommender-mid":  {0.85, 1.0},
		"recommender-leaf": {0.90, 1.0},
		"post":             {0.80, 1.0},
		"post-text":        {0.65, 1.0},
		"urlshort":         {0.95, 1.0},
		"uniqueid":         {0.98, 1.0},
		"usertag":          {0.80, 1.0},
		"user":             {0.80, 1.0},
	}
	suite := uservices.NewSuite()
	rows, err := EfficiencyStudy(suite, 640, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		band := bands[r.Service]
		if r.PerArg < band[0] || r.PerArg > band[1] {
			t.Errorf("%s optimized efficiency %.3f outside band [%.2f, %.2f]",
				r.Service, r.PerArg, band[0], band[1])
		}
	}
}
