package core

import (
	"fmt"
	"io"

	"simr/internal/alloc"
	"simr/internal/batch"
	"simr/internal/simt"
	"simr/internal/stats"
	"simr/internal/trace"
	"simr/internal/uservices"
)

// DefaultRequests is the per-service request count the paper evaluates
// (75 batches of 32).
const DefaultRequests = 2400

// EffRow is one service's SIMT efficiency under the Figure 4/11
// batching policy study.
type EffRow struct {
	Service string
	// Naive/PerAPI/PerArg are MinSP-PC efficiencies per policy;
	// PerArgIPDOM is the ideal stack-based reference at the best policy.
	Naive, PerAPI, PerArg, PerArgIPDOM float64
}

// efficiencyOf lock-steps all batches of a policy and returns weighted
// SIMT efficiency. tc may be nil to interpret traces fresh; bc may be
// nil to lock-step every batch fresh. The study only needs the op
// counts, so cached entries are count-only streams under the KeyEff
// tag (distinct from the uop streams runBatched retains).
func efficiencyOf(svc *uservices.Service, reqs []uservices.Request, size int, p batch.Policy, ipdom bool, tc *trace.Cache, bc *trace.BatchCache) (float64, error) {
	reconv := svc.BranchReconv()
	scalar, ops := 0, 0
	var (
		sc  simt.Scratch
		key []byte
	)
	spin := simt.DefaultSpin
	sp := &spin
	if ipdom {
		sp = nil
	}
	for _, b := range batch.Form(reqs, size, p) {
		build := func() (*trace.BatchStream, error) {
			sg := alloc.NewStackGroup(0, len(b.Requests), true)
			traces, err := batchTraces(tc, svc, b.Requests, sg, alloc.PolicySIMR, 8)
			if err != nil {
				return nil, err
			}
			var res *simt.Result
			if ipdom {
				res, err = simt.RunIPDOMWith(&sc, traces, size, reconv)
			} else {
				res, err = simt.RunMinSPPCWith(&sc, traces, size, sp)
			}
			if err != nil {
				return nil, err
			}
			return &trace.BatchStream{
				ScalarOps: res.ScalarOps,
				BatchOps:  len(res.Ops),
				Requests:  len(b.Requests),
			}, nil
		}
		var (
			st  *trace.BatchStream
			err error
		)
		if bc == nil {
			st, err = build()
		} else {
			key = trace.AppendBatchKey(key[:0], trace.KeyEff, b.Requests, size,
				ipdom, sp, alloc.PolicySIMR, true, lineBytes, 8, alloc.StackRegion)
			st, err = bc.Get(key, build)
		}
		if err != nil {
			return 0, err
		}
		scalar += st.ScalarOps
		ops += st.BatchOps
	}
	if ops == 0 {
		return 0, nil
	}
	return float64(scalar) / (float64(ops) * float64(size)), nil
}

// EfficiencyStudy reproduces Figures 4 and 11: SIMT control efficiency
// per service under naive, per-API and per-API+argument-size batching
// (MinSP-PC), plus the ideal stack-based IPDOM reference, at batch 32.
// It is EfficiencyStudyParallel on one worker.
func EfficiencyStudy(suite *uservices.Suite, requests int, seed int64) ([]EffRow, error) {
	return EfficiencyStudyParallel(suite, requests, seed, 1)
}

// WriteEfficiency renders the Figure 4/11 table.
func WriteEfficiency(w io.Writer, rows []EffRow) {
	fmt.Fprintf(w, "%-18s %8s %8s %12s %14s\n", "service", "naive", "per-api", "+arg-size", "+arg (ipdom)")
	var n, a, g, i []float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %7.1f%% %7.1f%% %11.1f%% %13.1f%%\n",
			r.Service, 100*r.Naive, 100*r.PerAPI, 100*r.PerArg, 100*r.PerArgIPDOM)
		n = append(n, r.Naive)
		a = append(a, r.PerAPI)
		g = append(g, r.PerArg)
		i = append(i, r.PerArgIPDOM)
	}
	fmt.Fprintf(w, "%-18s %7.1f%% %7.1f%% %11.1f%% %13.1f%%\n",
		"average", 100*mean(n), 100*mean(a), 100*mean(g), 100*mean(i))
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// ChipRow holds one service's results across the architectures under
// study (Figures 10, 14, 19, 20, 21).
type ChipRow struct {
	Service       string
	CPU, SMT, RPU *Result
	GPU           *Result // nil unless requested
}

// ChipStudy runs the chip-level comparison for every service.
// withGPU additionally runs the Ampere-like GPU model (§V-A3). It is
// ChipStudyParallel on one worker.
func ChipStudy(suite *uservices.Suite, requests int, seed int64, withGPU bool) ([]ChipRow, error) {
	return ChipStudyParallel(suite, requests, seed, withGPU, 1)
}

// WriteFig10 renders the CPU dynamic-energy breakdown per pipeline
// stage (paper Figure 10).
func WriteFig10(w io.Writer, rows []ChipRow) {
	fmt.Fprintf(w, "%-18s %12s %10s %8s\n", "service", "frontend+ooo", "execution", "memory")
	var fe, ex, me []float64
	for _, r := range rows {
		e := r.CPU.Energy
		d := e.Dynamic()
		fmt.Fprintf(w, "%-18s %11.1f%% %9.1f%% %7.1f%%\n",
			r.Service, 100*e.FrontendOoO/d, 100*e.Exec/d, 100*e.Memory/d)
		fe = append(fe, e.FrontendOoO/d)
		ex = append(ex, e.Exec/d)
		me = append(me, e.Memory/d)
	}
	fmt.Fprintf(w, "%-18s %11.1f%% %9.1f%% %7.1f%%\n", "average", 100*mean(fe), 100*mean(ex), 100*mean(me))
}

// WriteFig14 renders RPU L1 accesses normalized to the CPU (Figure 14).
func WriteFig14(w io.Writer, rows []ChipRow) {
	fmt.Fprintf(w, "%-18s %22s\n", "service", "rpu L1 accesses / cpu")
	var xs []float64
	for _, r := range rows {
		x := stats.Ratio(r.RPU.L1AccessesPerRequest(), r.CPU.L1AccessesPerRequest())
		fmt.Fprintf(w, "%-18s %21.2fx\n", r.Service, x)
		xs = append(xs, x)
	}
	fmt.Fprintf(w, "%-18s %21.2fx  (paper: 0.25x average)\n", "average", mean(xs))
}

// WriteFig19 renders requests/joule relative to the CPU (Figure 19).
func WriteFig19(w io.Writer, rows []ChipRow) {
	withGPU := len(rows) > 0 && rows[0].GPU != nil
	if withGPU {
		fmt.Fprintf(w, "%-18s %10s %10s %10s\n", "service", "rpu", "cpu-smt8", "gpu")
	} else {
		fmt.Fprintf(w, "%-18s %10s %10s\n", "service", "rpu", "cpu-smt8")
	}
	var rp, sm, gp []float64
	for _, r := range rows {
		base := r.CPU.ReqPerJoule()
		rr := r.RPU.ReqPerJoule() / base
		ss := r.SMT.ReqPerJoule() / base
		rp = append(rp, rr)
		sm = append(sm, ss)
		if withGPU {
			gg := r.GPU.ReqPerJoule() / base
			gp = append(gp, gg)
			fmt.Fprintf(w, "%-18s %9.2fx %9.2fx %9.2fx\n", r.Service, rr, ss, gg)
		} else {
			fmt.Fprintf(w, "%-18s %9.2fx %9.2fx\n", r.Service, rr, ss)
		}
	}
	if withGPU {
		fmt.Fprintf(w, "%-18s %9.2fx %9.2fx %9.2fx  (paper: 5.7x / 1.05x / 28x)\n",
			"geomean", stats.GeoMean(rp), stats.GeoMean(sm), stats.GeoMean(gp))
	} else {
		fmt.Fprintf(w, "%-18s %9.2fx %9.2fx  (paper: 5.7x / 1.05x)\n",
			"geomean", stats.GeoMean(rp), stats.GeoMean(sm))
	}
}

// WriteFig20 renders service latency relative to the CPU (Figure 20).
func WriteFig20(w io.Writer, rows []ChipRow) {
	withGPU := len(rows) > 0 && rows[0].GPU != nil
	if withGPU {
		fmt.Fprintf(w, "%-18s %10s %10s %10s\n", "service", "rpu", "cpu-smt8", "gpu")
	} else {
		fmt.Fprintf(w, "%-18s %10s %10s\n", "service", "rpu", "cpu-smt8")
	}
	var rp, sm, gp []float64
	for _, r := range rows {
		base := r.CPU.AvgLatencySec()
		rr := r.RPU.AvgLatencySec() / base
		ss := r.SMT.AvgLatencySec() / base
		rp = append(rp, rr)
		sm = append(sm, ss)
		if withGPU {
			gg := r.GPU.AvgLatencySec() / base
			gp = append(gp, gg)
			fmt.Fprintf(w, "%-18s %9.2fx %9.2fx %9.1fx\n", r.Service, rr, ss, gg)
		} else {
			fmt.Fprintf(w, "%-18s %9.2fx %9.2fx\n", r.Service, rr, ss)
		}
	}
	if withGPU {
		fmt.Fprintf(w, "%-18s %9.2fx %9.2fx %9.1fx  (paper: 1.44x / ~5x / 79x)\n",
			"average", mean(rp), mean(sm), mean(gp))
	} else {
		fmt.Fprintf(w, "%-18s %9.2fx %9.2fx  (paper: 1.44x / ~5x)\n", "average", mean(rp), mean(sm))
	}
}

// WriteFig21 renders the latency-component metrics of Figure 21:
// average load-to-use latency, on-chip traffic and issued instructions,
// RPU relative to CPU.
func WriteFig21(w io.Writer, rows []ChipRow) {
	fmt.Fprintf(w, "%-18s %12s %12s %12s %10s\n",
		"service", "mem latency", "L1 traffic", "frontend ops", "simt eff")
	var ml, tr, fo []float64
	for _, r := range rows {
		l := stats.Ratio(r.RPU.Stats.AvgLoadLatency(), r.CPU.Stats.AvgLoadLatency())
		t := stats.Ratio(r.RPU.L1AccessesPerRequest(), r.CPU.L1AccessesPerRequest())
		f := stats.Ratio(float64(r.RPU.Stats.Uops), float64(r.CPU.Stats.Uops))
		fmt.Fprintf(w, "%-18s %11.2fx %11.2fx %11.3fx %9.2f\n", r.Service, l, t, f, r.RPU.SIMTEff)
		ml = append(ml, l)
		tr = append(tr, t)
		fo = append(fo, f)
	}
	fmt.Fprintf(w, "%-18s %11.2fx %11.2fx %11.3fx\n", "average", mean(ml), mean(tr), mean(fo))
	fmt.Fprintf(w, "(paper: memory latency 1/1.33x, traffic 1/4x, issued instructions ~1/30x)\n")
}

// MPKIRow is one service's L1 MPKI across configurations (Figure 15).
type MPKIRow struct {
	Service string
	CPU     float64
	RPU     map[int]float64 // batch size -> MPKI
}

// MPKIStudy reproduces Figure 15: L1 MPKI of the single-threaded CPU
// (64 KB L1) vs the RPU (256 KB L1) at batch sizes 32/16/8/4. It is
// MPKIStudyParallel on one worker.
func MPKIStudy(suite *uservices.Suite, requests int, seed int64) ([]MPKIRow, error) {
	return MPKIStudyParallel(suite, requests, seed, 1)
}

// WriteFig15 renders the MPKI table.
func WriteFig15(w io.Writer, rows []MPKIRow) {
	fmt.Fprintf(w, "%-18s %9s %9s %9s %9s %9s\n", "service", "cpu-64KB", "rpu-b32", "rpu-b16", "rpu-b8", "rpu-b4")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			r.Service, r.CPU, r.RPU[32], r.RPU[16], r.RPU[8], r.RPU[4])
	}
}

// Fig5Row is one DRAM-generation scaling point (Figure 5).
type Fig5Row struct {
	Generation string
	GBps       float64
	// Threads is the per-socket thread count needed to consume the
	// bandwidth at 2 GB/s per thread.
	Threads int
}

// Fig5Scaling returns the off-chip bandwidth and thread scaling table:
// CPU vendors provision ≈2 GB/s per thread, so future sockets need
// 256-512 threads (paper Figure 5 and Key Observation #5).
func Fig5Scaling() []Fig5Row {
	gens := []struct {
		name string
		gbps float64
	}{
		{"DDR4-3200 x8", 204.8},
		{"DDR5-4800 x8", 307.2},
		{"DDR5-7200 x10", 576},
		{"DDR6 x10", 1024},
		{"HBM2e x4", 1638},
	}
	rows := make([]Fig5Row, len(gens))
	for i, g := range gens {
		rows[i] = Fig5Row{Generation: g.name, GBps: g.gbps, Threads: int(g.gbps / 2)}
	}
	return rows
}

// WriteFig5 renders the scaling table.
func WriteFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "%-16s %12s %22s\n", "generation", "GB/s/socket", "threads @ 2 GB/s each")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.0f %22d\n", r.Generation, r.GBps, r.Threads)
	}
}
