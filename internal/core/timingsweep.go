package core

import (
	"fmt"
	"io"

	"simr/internal/stats"
	"simr/internal/uservices"
)

// TimingVariant is one point of the RPU timing-knob sweep: a named
// mutation of Options that changes only timing/energy behaviour (lane
// count, branch voting, atomics placement), never the prepared uop
// stream. Because every variant of a service replays the identical
// batch composition, the whole sweep shares one batch-stream cache
// entry per batch — the showcase workload for BatchCache.
type TimingVariant struct {
	Name   string
	Mutate func(*Options)
}

// DefaultTimingVariants enumerates the 2x2x2 cross of the paper's
// §V-A1 timing knobs: SIMT lane width {8, 32} x majority branch voting
// {on, off} x atomics at L3 {on, off}. All eight points prepare the
// same streams.
func DefaultTimingVariants() []TimingVariant {
	lanes := []int{8, 32}
	var vs []TimingVariant
	for _, l := range lanes {
		for _, vote := range []bool{true, false} {
			for _, l3 := range []bool{true, false} {
				l, vote, l3 := l, vote, l3
				name := fmt.Sprintf("lanes%d", l)
				if vote {
					name += "+vote"
				}
				if l3 {
					name += "+l3atomics"
				}
				vs = append(vs, TimingVariant{Name: name, Mutate: func(o *Options) {
					o.Lanes = l
					o.MajorityVote = vote
					o.AtomicsAtL3 = l3
				}})
			}
		}
	}
	return vs
}

// TimingRow is one service's results across the timing variants, in
// DefaultTimingVariants order.
type TimingRow struct {
	Service  string
	Variants []string
	Res      []*Result
}

// TimingSweepParallel runs every (service, timing variant) RPU cell on
// a worker pool. Variants differ only in timing knobs, so the batch
// streams prepared for the first cell of a service are replayed by the
// remaining seven from the cache.
func TimingSweepParallel(suite *uservices.Suite, requests int, seed int64, workers int) ([]TimingRow, error) {
	return TimingSweepOn(suite.Services, requests, seed, workers)
}

// TimingSweepOn is TimingSweepParallel restricted to an explicit
// service subset: per-service rows are independent, so a subset's rows
// are byte-identical to the same services' rows in a full-suite run.
// The distributed worker tier executes per-service tasks through it.
func TimingSweepOn(svcs []*uservices.Service, requests int, seed int64, workers int) ([]TimingRow, error) {
	variants := DefaultTimingVariants()
	nv := len(variants)
	sw := newSweepCaches(svcs, nv)
	la := prepBudget(len(svcs)*nv, workers)
	cells, err := RunCells(len(svcs)*nv, workers, func(i int) (*Result, error) {
		s := i / nv
		defer sw.done(s)
		opts := DefaultOptions()
		opts.Traces = sw.cache(s)
		opts.BatchStreams = sw.batchCache(s)
		opts.PrepLookahead = la
		variants[i%nv].Mutate(&opts)
		return RunService(ArchRPU, svcs[s], sw.requests(s, requests, seed), opts)
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	names := make([]string, nv)
	for v, tv := range variants {
		names[v] = tv.Name
	}
	rows := make([]TimingRow, len(svcs))
	for s, svc := range svcs {
		rows[s] = TimingRow{Service: svc.Name, Variants: names, Res: cells[s*nv : (s+1)*nv]}
	}
	return rows, nil
}

// TimingSweep is TimingSweepParallel on one worker.
func TimingSweep(suite *uservices.Suite, requests int, seed int64) ([]TimingRow, error) {
	return TimingSweepParallel(suite, requests, seed, 1)
}

// WriteTimingSweep renders the sweep: per variant, request latency and
// requests/joule relative to the first variant (the lanes8+vote+l3
// baseline), geomean across services.
func WriteTimingSweep(w io.Writer, rows []TimingRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-22s %12s %12s\n", "variant (vs "+rows[0].Variants[0]+")", "latency", "req/joule")
	for v, name := range rows[0].Variants {
		var lat, rpj []float64
		for _, r := range rows {
			lat = append(lat, stats.Ratio(r.Res[v].AvgLatencySec(), r.Res[0].AvgLatencySec()))
			rpj = append(rpj, stats.Ratio(r.Res[v].ReqPerJoule(), r.Res[0].ReqPerJoule()))
		}
		fmt.Fprintf(w, "%-22s %11.2fx %11.2fx\n", name, stats.GeoMean(lat), stats.GeoMean(rpj))
	}
}
