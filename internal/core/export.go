package core

import (
	"encoding/json"
	"io"

	"simr/internal/sample"
)

// ResultJSON is the machine-readable summary of one (architecture,
// service) measurement, for plotting pipelines outside the repo.
type ResultJSON struct {
	Arch           string  `json:"arch"`
	Service        string  `json:"service"`
	Requests       int     `json:"requests"`
	Batches        int     `json:"batches,omitempty"`
	AvgLatencyUs   float64 `json:"avg_latency_us"`
	P99LatencyUs   float64 `json:"p99_latency_us"`
	ReqPerJoule    float64 `json:"requests_per_joule"`
	SIMTEfficiency float64 `json:"simt_efficiency"`
	IPC            float64 `json:"ipc"`
	ScalarOps      uint64  `json:"scalar_ops"`
	FrontendOps    uint64  `json:"frontend_ops"`
	Mispredicts    uint64  `json:"mispredicts"`
	L1Accesses     uint64  `json:"l1_accesses"`
	L1MPKI         float64 `json:"l1_mpki"`
	DRAMAccesses   uint64  `json:"dram_accesses"`
	EnergyJoules   struct {
		FrontendOoO float64 `json:"frontend_ooo"`
		Exec        float64 `json:"exec"`
		Memory      float64 `json:"memory"`
		Static      float64 `json:"static"`
	} `json:"energy_joules"`
	// Sampled is present only when the run used sampled timing
	// simulation with Period > 1, so unsampled JSON is unchanged.
	Sampled *sample.Estimate `json:"sampled,omitempty"`
}

// Summary converts a Result to its JSON form.
func (r *Result) Summary() ResultJSON {
	out := ResultJSON{
		Arch:           r.Arch.String(),
		Service:        r.Service,
		Requests:       r.Requests,
		Batches:        r.Batches,
		AvgLatencyUs:   r.AvgLatencySec() * 1e6,
		P99LatencyUs:   r.Latency.Percentile(99) / (r.FreqGHz * 1e9) * 1e6,
		ReqPerJoule:    r.ReqPerJoule(),
		SIMTEfficiency: r.SIMTEff,
		IPC:            r.Stats.IPC(),
		ScalarOps:      r.Stats.ScalarOps,
		FrontendOps:    r.Stats.Uops,
		Mispredicts:    r.Stats.Mispredicts,
		L1Accesses:     r.Stats.Mem.L1.Accesses,
		L1MPKI:         r.L1MPKI(),
		DRAMAccesses:   r.Stats.Mem.DRAMAccesses,
		Sampled:        r.Sampled,
	}
	out.EnergyJoules.FrontendOoO = r.Energy.FrontendOoO
	out.EnergyJoules.Exec = r.Energy.Exec
	out.EnergyJoules.Memory = r.Energy.Memory
	out.EnergyJoules.Static = r.Energy.Static
	return out
}

// WriteJSON emits the chip study as indented JSON, one record per
// (service, architecture).
func WriteJSON(w io.Writer, rows []ChipRow) error {
	var out []ResultJSON
	for _, row := range rows {
		for _, res := range []*Result{row.CPU, row.SMT, row.RPU, row.GPU} {
			if res != nil {
				out = append(out, res.Summary())
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
