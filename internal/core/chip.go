package core

import (
	"fmt"

	"simr/internal/alloc"
	"simr/internal/batch"
	"simr/internal/energy"
	"simr/internal/isa"
	"simr/internal/mem"
	"simr/internal/pipeline"
	"simr/internal/sample"
	"simr/internal/simt"
	"simr/internal/stats"
	"simr/internal/trace"
	"simr/internal/uservices"
)

// Options tunes an RPU/GPU run; the zero value (after Defaults) is the
// paper's baseline configuration.
type Options struct {
	// BatchSize overrides the service's tuned batch size (0 = tuned).
	BatchSize int
	// Policy is the batching-server grouping policy.
	Policy batch.Policy
	// AllocPolicy selects the heap allocator.
	AllocPolicy alloc.Policy
	// Lanes overrides the SIMT lane count (0 = config default).
	Lanes int
	// StackInterleave applies the 4-byte stack physical interleave.
	StackInterleave bool
	// MajorityVote enables per-batch majority-voted prediction.
	MajorityVote bool
	// AtomicsAtL3 routes atomics to the shared L3.
	AtomicsAtL3 bool
	// UseIPDOM selects the ideal stack-based reconvergence scheme
	// instead of MinSP-PC.
	UseIPDOM bool
	// Spin enables the livelock mitigation.
	Spin *simt.SpinConfig
	// CPUPrefetch attaches a next-line prefetcher to the scalar CPU's
	// L1 (Table III ablation: prefetchers are ineffective on
	// microservice heaps).
	CPUPrefetch bool
	// Traces optionally supplies the sweep's shared scalar-trace cache
	// (see internal/trace); nil interprets every request fresh. Results
	// are byte-identical either way.
	Traces *trace.Cache
	// PrepLookahead bounds how many upcoming batches (or request
	// groups) are prepared — trace fetch, SIMT lock-step merge, uop
	// build — on worker goroutines ahead of the batch the timing core
	// is simulating. 0 runs fully sequentially (the determinism
	// oracle); PrepAuto derives a budget from the CPUs left over by the
	// enclosing sweep. Results are byte-identical at any value; only
	// wall-clock changes.
	PrepLookahead int
	// Sample selects SMARTS-style sampled timing simulation (see
	// internal/sample): every Sample.Period-th unit is fully timed,
	// Sample.Warmup units before each timed one run a functional
	// warmup pass, and the rest are skipped, with aggregate statistics
	// extrapolated under reported confidence intervals. The zero value
	// defers to the process-wide default installed by sample.SetDefault
	// (the drivers' -sample flag); Period 1 times every unit and is
	// bit-identical to the unsampled path.
	Sample sample.Config
}

// DefaultOptions is the paper's baseline RPU configuration. Spin points
// at a private copy of simt.DefaultSpin so callers (and concurrent
// runs) can mutate it without affecting the package global or each
// other.
func DefaultOptions() Options {
	spin := simt.DefaultSpin
	return Options{
		Policy:          batch.PerAPIArgSize,
		AllocPolicy:     alloc.PolicySIMR,
		StackInterleave: true,
		MajorityVote:    true,
		AtomicsAtL3:     true,
		Spin:            &spin,
		PrepLookahead:   PrepAuto,
	}
}

// Result is one (architecture, service) chip-level measurement.
type Result struct {
	Arch     Arch
	Service  string
	Requests int
	Batches  int
	// Stats aggregates the pipeline counters over all runs; Stats.Mem
	// sums each run's memory-counter delta, which equals the final
	// cumulative snapshot of the run's memory system.
	Stats pipeline.Stats
	// Energy is the total energy over all requests.
	Energy energy.Breakdown
	// Latency samples one service latency per request, in cycles.
	Latency *stats.Sample
	// SIMTEff is the weighted SIMT control efficiency (1 for scalar).
	SIMTEff float64
	// FreqGHz converts cycles to seconds.
	FreqGHz float64
	// Sampled carries the sampling estimate when sampled timing
	// simulation skipped work (Period > 1); nil for full runs, so
	// unsampled results are unchanged.
	Sampled *sample.Estimate
}

// AvgLatencySec returns the mean per-request service latency.
func (r *Result) AvgLatencySec() float64 {
	return r.Latency.Mean() / (r.FreqGHz * 1e9)
}

// ReqPerJoule returns the headline energy-efficiency metric.
func (r *Result) ReqPerJoule() float64 {
	j := r.Energy.Total()
	if j == 0 {
		return 0
	}
	return float64(r.Requests) / j
}

// L1AccessesPerRequest returns L1 data accesses per request.
func (r *Result) L1AccessesPerRequest() float64 {
	return stats.Ratio(float64(r.Stats.Mem.L1.Accesses), float64(r.Requests))
}

// L1MPKI returns L1 misses per thousand scalar instructions.
func (r *Result) L1MPKI() float64 {
	return r.Stats.Mem.L1.MPKI(r.Stats.ScalarOps)
}

// scalarTrace fetches one request's scalar trace through the sweep's
// cache when the options carry one, interpreting fresh otherwise.
func scalarTrace(tc *trace.Cache, svc *uservices.Service, req *uservices.Request, tid int, stackBase uint64, policy alloc.Policy, banks int) ([]isa.TraceOp, error) {
	if tc != nil {
		return tc.Request(req, tid, stackBase, policy, lineBytes, banks)
	}
	arena := alloc.NewArena(tid, policy, lineBytes, banks)
	return svc.Trace(req, tid, stackBase, arena)
}

// batchTraces fetches a batch's traces through the cache (nil-safe) or
// the service's fresh interpreter.
func batchTraces(tc *trace.Cache, svc *uservices.Service, reqs []uservices.Request, sg *alloc.StackGroup, policy alloc.Policy, banks int) ([][]isa.TraceOp, error) {
	if tc != nil {
		return tc.Batch(svc, reqs, sg, policy, lineBytes, banks)
	}
	return svc.TraceBatch(reqs, sg, policy, lineBytes, banks)
}

// RunService executes the requests on one core of the architecture and
// returns the aggregated measurement. CPU runs the requests
// sequentially; SMT-8 runs them in groups of 8; RPU/GPU batch them via
// the SIMR-aware server and run them in lock-step.
func RunService(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	switch arch {
	case ArchCPU:
		return runScalar(arch, svc, reqs, opts)
	case ArchSMT8:
		return runSMT(arch, svc, reqs, opts)
	case ArchRPU, ArchGPU:
		return runBatched(arch, svc, reqs, opts)
	default:
		return nil, fmt.Errorf("core: invalid arch %v", arch)
	}
}

func newResult(arch Arch, svc *uservices.Service, n int) *Result {
	return &Result{
		Arch:     arch,
		Service:  svc.Name,
		Requests: n,
		Latency:  stats.NewSample(n),
		SIMTEff:  1,
		FreqGHz:  PipelineConfig(arch).FreqGHz,
	}
}

// runScalar models the single-threaded CPU: one worker thread serves
// requests back to back on a warm core, reusing its stack (which is why
// consecutive CPU threads enjoy prefetched shared data, paper §V-A).
// Upcoming requests are traced and uop-converted up to
// opts.PrepLookahead ahead of the one the timing core is running.
func runScalar(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfg := PipelineConfig(arch)
	ms := mem.NewSystem(MemConfig(arch))
	if opts.CPUPrefetch {
		ms.PF = mem.NewPrefetcher(2)
	}
	cpu := pipeline.NewCore(cfg)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)

	sg := alloc.NewStackGroup(0, 1, false)
	la := opts.lookahead()
	sp := newRunSampler(opts.sampleConfig(), len(reqs), len(reqs))
	slots := make([]uopBuilder, la+1)
	prepped := make([][]pipeline.Uop, la+1)
	err := pipelined(sp.unitCount(len(reqs)), la,
		func(slot, k int) error {
			i := sp.unit(k)
			tr, err := scalarTrace(opts.Traces, svc, &reqs[i], 0, sg.StackBase(0), alloc.PolicyCPU, 1)
			if err != nil {
				return err
			}
			ub := &slots[slot]
			ub.reset()
			prepped[slot] = ub.scalarUops(tr, 0)
			return nil
		},
		func(slot, k int) {
			if !sp.timed(sp.unit(k)) {
				sp.warm(cpu, ms, prepped[slot])
				return
			}
			prev := ms.Stats()
			ms.ResetTiming()
			st := cpu.Run(ms, prepped[slot])
			st.Mem = st.Mem.Delta(&prev)
			res.Stats.Accumulate(&st)
			res.Latency.Add(float64(st.Cycles))
			sp.observe(&st, 1)
		})
	if err != nil {
		return nil, err
	}
	sp.finish(res)
	res.Energy = model.Compute(&res.Stats, cfg.FreqGHz)
	return res, nil
}

// runSMT models the SMT-8 CPU: 8 worker threads dispatch round-robin
// through a shared frontend with per-thread ROB partitions and a shared
// banked L1. Only the Traces and PrepLookahead options apply (the SMT
// core is not an RPU configuration).
func runSMT(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfg := PipelineConfig(arch)
	ms := mem.NewSystem(MemConfig(arch))
	cpu := pipeline.NewCore(cfg)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)

	const ways = 8
	sg := alloc.NewStackGroup(0, ways, false)
	groups := (len(reqs) + ways - 1) / ways

	// One slot per in-flight group: all of a group's streams live in
	// the slot's arena simultaneously until merged, and the merged
	// stream stays valid until the timing core has consumed it.
	la := opts.lookahead()
	type smtSlot struct {
		ub      uopBuilder
		streams [][]pipeline.Uop
		merged  []pipeline.Uop
		nreq    int
	}
	sp := newRunSampler(opts.sampleConfig(), groups, len(reqs))
	slots := make([]smtSlot, la+1)
	err := pipelined(sp.unitCount(groups), la,
		func(slot, k int) error {
			g := sp.unit(k)
			off := g * ways
			end := off + ways
			if end > len(reqs) {
				end = len(reqs)
			}
			group := reqs[off:end]
			sl := &slots[slot]
			sl.ub.reset()
			sl.streams = sl.streams[:0]
			for t := range group {
				tr, err := scalarTrace(opts.Traces, svc, &group[t], t, sg.StackBase(t), alloc.PolicyCPU, 1)
				if err != nil {
					return err
				}
				sl.streams = append(sl.streams, sl.ub.scalarUops(tr, t))
			}
			sl.merged = sl.ub.mergeSMT(sl.streams)
			sl.nreq = len(group)
			return nil
		},
		func(slot, k int) {
			sl := &slots[slot]
			if !sp.timed(sp.unit(k)) {
				sp.warm(cpu, ms, sl.merged)
				return
			}
			prev := ms.Stats()
			ms.ResetTiming()
			st := cpu.Run(ms, sl.merged)
			st.Mem = st.Mem.Delta(&prev)
			res.Stats.Accumulate(&st)
			for j := 0; j < sl.nreq; j++ {
				res.Latency.Add(float64(st.Cycles))
			}
			sp.observe(&st, sl.nreq)
		})
	if err != nil {
		return nil, err
	}
	sp.finish(res)
	res.Energy = model.Compute(&res.Stats, cfg.FreqGHz)
	return res, nil
}

// runBatched models the RPU (and GPU): the SIMR-aware server forms
// batches, the driver lays out contiguous stacks and SIMR-aware heap
// arenas, the SIMT engine lock-steps the traces and the OoO-SIMT core
// executes the merged stream.
func runBatched(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfgP := PipelineConfig(arch)
	cfgM := MemConfig(arch)
	if opts.Lanes > 0 {
		cfgP.Lanes = opts.Lanes
	}
	cfgP.MajorityVote = opts.MajorityVote
	cfgM.AtomicsAtL3 = opts.AtomicsAtL3
	size := opts.BatchSize
	if size <= 0 {
		size = svc.TunedBatch
	}

	ms := mem.NewSystem(cfgM)
	rpu := pipeline.NewCore(cfgP)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)
	reconv := svc.BranchReconv()

	batches := batch.Form(reqs, size, opts.Policy)
	res.Batches = len(batches)

	// Preparation — trace fetch, lock-step merge, uop build — is pure:
	// it writes only the slot's scratch objects and a per-batch
	// MCUStats delta, so upcoming batches are prepared on worker
	// goroutines while the timing core consumes earlier ones. The
	// consumer applies each delta to ms.MCU before Run, which lands the
	// coalescer counts inside the same prev/Delta window the sequential
	// loop (which bumped ms.MCU during the build) gave them.
	totalScalar, totalBatchOps := 0, 0
	la := opts.lookahead()
	type rpuSlot struct {
		ub       uopBuilder
		sc       simt.Scratch
		uops     []pipeline.Uop
		mcu      mem.MCUStats
		scalar   int
		batchOps int
		nreq     int
	}
	sp := newRunSampler(opts.sampleConfig(), len(batches), len(reqs))
	slots := make([]rpuSlot, la+1)
	err := pipelined(sp.unitCount(len(batches)), la,
		func(slot, k int) error {
			b := &batches[sp.unit(k)]
			sl := &slots[slot]
			sg := alloc.NewStackGroup(0, len(b.Requests), opts.StackInterleave)
			traces, err := batchTraces(opts.Traces, svc, b.Requests, sg, opts.AllocPolicy, cfgM.L1.Banks)
			if err != nil {
				return err
			}
			var merged *simt.Result
			if opts.UseIPDOM {
				merged, err = simt.RunIPDOMWith(&sl.sc, traces, size, reconv)
			} else {
				merged, err = simt.RunMinSPPCWith(&sl.sc, traces, size, opts.Spin)
			}
			if err != nil {
				return err
			}
			// merged aliases sl.sc and uops alias sl.ub: both stay
			// valid until the consumer releases the slot.
			sl.ub.reset()
			sl.mcu = mem.MCUStats{}
			sl.uops = sl.ub.batchUops(merged.Ops, sg, opts.StackInterleave, &sl.mcu)
			sl.scalar = merged.ScalarOps
			sl.batchOps = len(merged.Ops)
			sl.nreq = len(b.Requests)
			return nil
		},
		func(slot, k int) {
			sl := &slots[slot]
			totalScalar += sl.scalar
			totalBatchOps += sl.batchOps
			if !sp.timed(sp.unit(k)) {
				sp.warm(rpu, ms, sl.uops)
				return
			}
			prev := ms.Stats()
			ms.MCU.Add(&sl.mcu)
			ms.ResetTiming()
			st := rpu.Run(ms, sl.uops)
			st.Mem = st.Mem.Delta(&prev)
			res.Stats.Accumulate(&st)
			for j := 0; j < sl.nreq; j++ {
				res.Latency.Add(float64(st.Cycles))
			}
			sp.observe(&st, sl.nreq)
		})
	if err != nil {
		return nil, err
	}
	if totalBatchOps > 0 {
		res.SIMTEff = float64(totalScalar) / (float64(totalBatchOps) * float64(size))
	}
	sp.finish(res)
	res.Energy = model.Compute(&res.Stats, cfgP.FreqGHz)
	return res, nil
}
