package core

import (
	"fmt"

	"simr/internal/alloc"
	"simr/internal/batch"
	"simr/internal/energy"
	"simr/internal/isa"
	"simr/internal/mem"
	"simr/internal/pipeline"
	"simr/internal/simt"
	"simr/internal/stats"
	"simr/internal/uservices"
)

// Options tunes an RPU/GPU run; the zero value (after Defaults) is the
// paper's baseline configuration.
type Options struct {
	// BatchSize overrides the service's tuned batch size (0 = tuned).
	BatchSize int
	// Policy is the batching-server grouping policy.
	Policy batch.Policy
	// AllocPolicy selects the heap allocator.
	AllocPolicy alloc.Policy
	// Lanes overrides the SIMT lane count (0 = config default).
	Lanes int
	// StackInterleave applies the 4-byte stack physical interleave.
	StackInterleave bool
	// MajorityVote enables per-batch majority-voted prediction.
	MajorityVote bool
	// AtomicsAtL3 routes atomics to the shared L3.
	AtomicsAtL3 bool
	// UseIPDOM selects the ideal stack-based reconvergence scheme
	// instead of MinSP-PC.
	UseIPDOM bool
	// Spin enables the livelock mitigation.
	Spin *simt.SpinConfig
	// CPUPrefetch attaches a next-line prefetcher to the scalar CPU's
	// L1 (Table III ablation: prefetchers are ineffective on
	// microservice heaps).
	CPUPrefetch bool
}

// DefaultOptions is the paper's baseline RPU configuration. Spin points
// at a private copy of simt.DefaultSpin so callers (and concurrent
// runs) can mutate it without affecting the package global or each
// other.
func DefaultOptions() Options {
	spin := simt.DefaultSpin
	return Options{
		Policy:          batch.PerAPIArgSize,
		AllocPolicy:     alloc.PolicySIMR,
		StackInterleave: true,
		MajorityVote:    true,
		AtomicsAtL3:     true,
		Spin:            &spin,
	}
}

// Result is one (architecture, service) chip-level measurement.
type Result struct {
	Arch     Arch
	Service  string
	Requests int
	Batches  int
	// Stats aggregates the pipeline counters over all runs; Stats.Mem
	// sums each run's memory-counter delta, which equals the final
	// cumulative snapshot of the run's memory system.
	Stats pipeline.Stats
	// Energy is the total energy over all requests.
	Energy energy.Breakdown
	// Latency samples one service latency per request, in cycles.
	Latency *stats.Sample
	// SIMTEff is the weighted SIMT control efficiency (1 for scalar).
	SIMTEff float64
	// FreqGHz converts cycles to seconds.
	FreqGHz float64
}

// AvgLatencySec returns the mean per-request service latency.
func (r *Result) AvgLatencySec() float64 {
	return r.Latency.Mean() / (r.FreqGHz * 1e9)
}

// ReqPerJoule returns the headline energy-efficiency metric.
func (r *Result) ReqPerJoule() float64 {
	j := r.Energy.Total()
	if j == 0 {
		return 0
	}
	return float64(r.Requests) / j
}

// L1AccessesPerRequest returns L1 data accesses per request.
func (r *Result) L1AccessesPerRequest() float64 {
	return stats.Ratio(float64(r.Stats.Mem.L1.Accesses), float64(r.Requests))
}

// L1MPKI returns L1 misses per thousand scalar instructions.
func (r *Result) L1MPKI() float64 {
	return r.Stats.Mem.L1.MPKI(r.Stats.ScalarOps)
}

// scalarUops converts a scalar trace into pipeline uops with identity
// address translation (no interleaving, no coalescing).
func scalarUops(trace []isa.TraceOp, thread int) []pipeline.Uop {
	uops := make([]pipeline.Uop, len(trace))
	for i := range trace {
		op := &trace[i]
		u := pipeline.Uop{
			PC:          op.PC,
			Class:       op.Class,
			Dep1:        op.Dep1,
			Dep2:        op.Dep2,
			ActiveLanes: 1,
			Taken:       op.Taken,
			Thread:      thread,
		}
		if op.Class.IsMem() {
			u.Accesses = []uint64{op.Addr}
		}
		uops[i] = u
	}
	return uops
}

// batchUops converts the lock-step batch stream into pipeline uops:
// stack addresses are physically interleaved via the batch's stack
// group (when enabled) and every memory instruction passes through the
// MCU coalescer.
func batchUops(ops []simt.BatchOp, sg *alloc.StackGroup, interleave bool, mcu *mem.MCUStats) []pipeline.Uop {
	uops := make([]pipeline.Uop, len(ops))
	lanes := make([][]uint64, 0, 64)
	for i := range ops {
		op := &ops[i]
		u := pipeline.Uop{
			PC:          op.PC,
			Class:       op.Class,
			Dep1:        op.Dep1,
			Dep2:        op.Dep2,
			ActiveLanes: op.ActiveLanes(),
			Mask:        op.Mask,
			TakenMask:   op.TakenMask,
		}
		if op.Class.IsMem() {
			lanes = lanes[:0]
			for t := range op.Addrs {
				if op.Mask&(1<<uint(t)) == 0 {
					continue
				}
				a := op.Addrs[t]
				if interleave && alloc.IsStack(a) {
					lanes = append(lanes, sg.Translate(a, int(op.Size)))
				} else {
					lanes = append(lanes, granules(a, int(op.Size)))
				}
			}
			u.Accesses, _ = mem.Coalesce(lanes, lineBytes, mcu)
		}
		uops[i] = u
	}
	return uops
}

// granules expands one lane's access into the 4-byte words it touches
// so the MCU sees the full footprint (an 8-byte access from every lane
// covers a contiguous region even though lane start addresses are 8
// bytes apart).
func granules(addr uint64, size int) []uint64 {
	if size <= 4 {
		return []uint64{addr}
	}
	first := addr &^ 3
	last := (addr + uint64(size) - 1) &^ 3
	out := make([]uint64, 0, (last-first)/4+1)
	for a := first; a <= last; a += 4 {
		out = append(out, a)
	}
	return out
}

// RunService executes the requests on one core of the architecture and
// returns the aggregated measurement. CPU runs the requests
// sequentially; SMT-8 runs them in groups of 8; RPU/GPU batch them via
// the SIMR-aware server and run them in lock-step.
func RunService(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	switch arch {
	case ArchCPU:
		return runScalar(arch, svc, reqs, opts)
	case ArchSMT8:
		return runSMT(arch, svc, reqs)
	case ArchRPU, ArchGPU:
		return runBatched(arch, svc, reqs, opts)
	default:
		return nil, fmt.Errorf("core: invalid arch %v", arch)
	}
}

func newResult(arch Arch, svc *uservices.Service, n int) *Result {
	return &Result{
		Arch:     arch,
		Service:  svc.Name,
		Requests: n,
		Latency:  stats.NewSample(n),
		SIMTEff:  1,
		FreqGHz:  PipelineConfig(arch).FreqGHz,
	}
}

// runScalar models the single-threaded CPU: one worker thread serves
// requests back to back on a warm core, reusing its stack (which is why
// consecutive CPU threads enjoy prefetched shared data, paper §V-A).
func runScalar(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfg := PipelineConfig(arch)
	ms := mem.NewSystem(MemConfig(arch))
	if opts.CPUPrefetch {
		ms.PF = mem.NewPrefetcher(2)
	}
	cpu := pipeline.NewCore(cfg)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)

	sg := alloc.NewStackGroup(0, 1, false)
	for i := range reqs {
		arena := alloc.NewArena(0, alloc.PolicyCPU, lineBytes, 1)
		trace, err := svc.Trace(&reqs[i], 0, sg.StackBase(0), arena)
		if err != nil {
			return nil, err
		}
		prev := ms.Stats()
		ms.ResetTiming()
		st := cpu.Run(ms, scalarUops(trace, 0))
		st.Mem = st.Mem.Delta(&prev)
		res.Stats.Accumulate(&st)
		res.Latency.Add(float64(st.Cycles))
	}
	res.Energy = model.Compute(&res.Stats, cfg.FreqGHz)
	return res, nil
}

// runSMT models the SMT-8 CPU: 8 worker threads dispatch round-robin
// through a shared frontend with per-thread ROB partitions and a shared
// banked L1.
func runSMT(arch Arch, svc *uservices.Service, reqs []uservices.Request) (*Result, error) {
	cfg := PipelineConfig(arch)
	ms := mem.NewSystem(MemConfig(arch))
	cpu := pipeline.NewCore(cfg)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)

	const ways = 8
	sg := alloc.NewStackGroup(0, ways, false)
	for off := 0; off < len(reqs); off += ways {
		end := off + ways
		if end > len(reqs) {
			end = len(reqs)
		}
		group := reqs[off:end]
		streams := make([][]pipeline.Uop, len(group))
		for t := range group {
			arena := alloc.NewArena(t, alloc.PolicyCPU, lineBytes, 1)
			trace, err := svc.Trace(&group[t], t, sg.StackBase(t), arena)
			if err != nil {
				return nil, err
			}
			streams[t] = scalarUops(trace, t)
		}
		merged := mergeSMT(streams)
		prev := ms.Stats()
		ms.ResetTiming()
		st := cpu.Run(ms, merged)
		st.Mem = st.Mem.Delta(&prev)
		res.Stats.Accumulate(&st)
		for range group {
			res.Latency.Add(float64(st.Cycles))
		}
	}
	res.Energy = model.Compute(&res.Stats, cfg.FreqGHz)
	return res, nil
}

// mergeSMT interleaves per-thread uop streams round-robin and remaps
// dependency indices into the merged stream.
func mergeSMT(streams [][]pipeline.Uop) []pipeline.Uop {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	merged := make([]pipeline.Uop, 0, total)
	remap := make([][]int32, len(streams))
	cursor := make([]int, len(streams))
	for t, s := range streams {
		remap[t] = make([]int32, len(s))
	}
	for len(merged) < total {
		for t, s := range streams {
			if cursor[t] >= len(s) {
				continue
			}
			u := s[cursor[t]]
			if u.Dep1 >= 0 {
				u.Dep1 = remap[t][u.Dep1]
			}
			if u.Dep2 >= 0 {
				u.Dep2 = remap[t][u.Dep2]
			}
			remap[t][cursor[t]] = int32(len(merged))
			cursor[t]++
			merged = append(merged, u)
		}
	}
	return merged
}

// runBatched models the RPU (and GPU): the SIMR-aware server forms
// batches, the driver lays out contiguous stacks and SIMR-aware heap
// arenas, the SIMT engine lock-steps the traces and the OoO-SIMT core
// executes the merged stream.
func runBatched(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfgP := PipelineConfig(arch)
	cfgM := MemConfig(arch)
	if opts.Lanes > 0 {
		cfgP.Lanes = opts.Lanes
	}
	cfgP.MajorityVote = opts.MajorityVote
	cfgM.AtomicsAtL3 = opts.AtomicsAtL3
	size := opts.BatchSize
	if size <= 0 {
		size = svc.TunedBatch
	}

	ms := mem.NewSystem(cfgM)
	rpu := pipeline.NewCore(cfgP)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)
	reconv := svc.BranchReconv()

	batches := batch.Form(reqs, size, opts.Policy)
	res.Batches = len(batches)

	totalScalar, totalBatchOps := 0, 0
	for _, b := range batches {
		// Snapshot before batchUops: the MCU counters it bumps belong
		// to this iteration's delta too.
		prev := ms.Stats()
		sg := alloc.NewStackGroup(0, len(b.Requests), opts.StackInterleave)
		traces, err := svc.TraceBatch(b.Requests, sg, opts.AllocPolicy, lineBytes, cfgM.L1.Banks)
		if err != nil {
			return nil, err
		}
		var merged *simt.Result
		if opts.UseIPDOM {
			merged, err = simt.RunIPDOM(traces, size, reconv)
		} else {
			merged, err = simt.RunMinSPPC(traces, size, opts.Spin)
		}
		if err != nil {
			return nil, err
		}
		totalScalar += merged.ScalarOps
		totalBatchOps += len(merged.Ops)

		uops := batchUops(merged.Ops, sg, opts.StackInterleave, &ms.MCU)
		ms.ResetTiming()
		st := rpu.Run(ms, uops)
		st.Mem = st.Mem.Delta(&prev)
		res.Stats.Accumulate(&st)
		for range b.Requests {
			res.Latency.Add(float64(st.Cycles))
		}
	}
	if totalBatchOps > 0 {
		res.SIMTEff = float64(totalScalar) / (float64(totalBatchOps) * float64(size))
	}
	res.Energy = model.Compute(&res.Stats, cfgP.FreqGHz)
	return res, nil
}
