package core

import (
	"fmt"

	"simr/internal/alloc"
	"simr/internal/batch"
	"simr/internal/energy"
	"simr/internal/isa"
	"simr/internal/mem"
	"simr/internal/pipeline"
	"simr/internal/sample"
	"simr/internal/simt"
	"simr/internal/stats"
	"simr/internal/trace"
	"simr/internal/uservices"
)

// Options tunes an RPU/GPU run; the zero value (after Defaults) is the
// paper's baseline configuration.
type Options struct {
	// BatchSize overrides the service's tuned batch size (0 = tuned).
	BatchSize int
	// Policy is the batching-server grouping policy.
	Policy batch.Policy
	// AllocPolicy selects the heap allocator.
	AllocPolicy alloc.Policy
	// Lanes overrides the SIMT lane count (0 = config default).
	Lanes int
	// StackInterleave applies the 4-byte stack physical interleave.
	StackInterleave bool
	// MajorityVote enables per-batch majority-voted prediction.
	MajorityVote bool
	// AtomicsAtL3 routes atomics to the shared L3.
	AtomicsAtL3 bool
	// UseIPDOM selects the ideal stack-based reconvergence scheme
	// instead of MinSP-PC.
	UseIPDOM bool
	// Spin enables the livelock mitigation.
	Spin *simt.SpinConfig
	// CPUPrefetch attaches a next-line prefetcher to the scalar CPU's
	// L1 (Table III ablation: prefetchers are ineffective on
	// microservice heaps).
	CPUPrefetch bool
	// Traces optionally supplies the sweep's shared scalar-trace cache
	// (see internal/trace); nil interprets every request fresh. Results
	// are byte-identical either way.
	Traces *trace.Cache
	// BatchStreams optionally supplies the sweep's shared batch-stream
	// cache memoizing the post-merge preparation product (merged uop
	// stream + MCU delta + op counts) across cells that differ only in
	// timing-model knobs; nil prepares every batch fresh. Cached
	// streams are cache-owned and read-only. Results are byte-identical
	// either way.
	BatchStreams *trace.BatchCache
	// PrepLookahead bounds how many upcoming batches (or request
	// groups) are prepared — trace fetch, SIMT lock-step merge, uop
	// build — on worker goroutines ahead of the batch the timing core
	// is simulating. 0 runs fully sequentially (the determinism
	// oracle); PrepAuto derives a budget from the CPUs left over by the
	// enclosing sweep. Results are byte-identical at any value; only
	// wall-clock changes.
	PrepLookahead int
	// Sample selects SMARTS-style sampled timing simulation (see
	// internal/sample): every Sample.Period-th unit is fully timed,
	// Sample.Warmup units before each timed one run a functional
	// warmup pass, and the rest are skipped, with aggregate statistics
	// extrapolated under reported confidence intervals. The zero value
	// defers to the process-wide default installed by sample.SetDefault
	// (the drivers' -sample flag); Period 1 times every unit and is
	// bit-identical to the unsampled path.
	Sample sample.Config
}

// DefaultOptions is the paper's baseline RPU configuration. Spin points
// at a private copy of simt.DefaultSpin so callers (and concurrent
// runs) can mutate it without affecting the package global or each
// other.
func DefaultOptions() Options {
	spin := simt.DefaultSpin
	return Options{
		Policy:          batch.PerAPIArgSize,
		AllocPolicy:     alloc.PolicySIMR,
		StackInterleave: true,
		MajorityVote:    true,
		AtomicsAtL3:     true,
		Spin:            &spin,
		PrepLookahead:   PrepAuto,
	}
}

// Result is one (architecture, service) chip-level measurement.
type Result struct {
	Arch     Arch
	Service  string
	Requests int
	Batches  int
	// Stats aggregates the pipeline counters over all runs; Stats.Mem
	// sums each run's memory-counter delta, which equals the final
	// cumulative snapshot of the run's memory system.
	Stats pipeline.Stats
	// Energy is the total energy over all requests.
	Energy energy.Breakdown
	// Latency samples one service latency per request, in cycles.
	Latency *stats.Sample
	// SIMTEff is the weighted SIMT control efficiency (1 for scalar).
	// Under sampled simulation it is computed from the timed units
	// only — the same subpopulation Stats extrapolates from — so every
	// Result field describes one consistent sample; full runs time
	// every unit and are unaffected.
	SIMTEff float64
	// FreqGHz converts cycles to seconds.
	FreqGHz float64
	// Sampled carries the sampling estimate when sampled timing
	// simulation skipped work (Period > 1); nil for full runs, so
	// unsampled results are unchanged.
	Sampled *sample.Estimate
}

// AvgLatencySec returns the mean per-request service latency.
func (r *Result) AvgLatencySec() float64 {
	return r.Latency.Mean() / (r.FreqGHz * 1e9)
}

// ReqPerJoule returns the headline energy-efficiency metric.
func (r *Result) ReqPerJoule() float64 {
	j := r.Energy.Total()
	if j == 0 {
		return 0
	}
	return float64(r.Requests) / j
}

// L1AccessesPerRequest returns L1 data accesses per request.
func (r *Result) L1AccessesPerRequest() float64 {
	return stats.Ratio(float64(r.Stats.Mem.L1.Accesses), float64(r.Requests))
}

// L1MPKI returns L1 misses per thousand scalar instructions.
func (r *Result) L1MPKI() float64 {
	return r.Stats.Mem.L1.MPKI(r.Stats.ScalarOps)
}

// scalarTrace fetches one request's scalar trace through the sweep's
// cache when the options carry one, interpreting fresh otherwise.
func scalarTrace(tc *trace.Cache, svc *uservices.Service, req *uservices.Request, tid int, stackBase uint64, policy alloc.Policy, banks int) ([]isa.TraceOp, error) {
	if tc != nil {
		return tc.Request(req, tid, stackBase, policy, lineBytes, banks)
	}
	arena := alloc.NewArena(tid, policy, lineBytes, banks)
	return svc.Trace(req, tid, stackBase, arena)
}

// batchTraces fetches a batch's traces through the cache (nil-safe) or
// the service's fresh interpreter.
func batchTraces(tc *trace.Cache, svc *uservices.Service, reqs []uservices.Request, sg *alloc.StackGroup, policy alloc.Policy, banks int) ([][]isa.TraceOp, error) {
	if tc != nil {
		return tc.Batch(svc, reqs, sg, policy, lineBytes, banks)
	}
	return svc.TraceBatch(reqs, sg, policy, lineBytes, banks)
}

// RunService executes the requests on one core of the architecture and
// returns the aggregated measurement. CPU runs the requests
// sequentially; SMT-8 runs them in groups of 8; RPU/GPU batch them via
// the SIMR-aware server and run them in lock-step.
func RunService(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	switch arch {
	case ArchCPU:
		return runScalar(arch, svc, reqs, opts)
	case ArchSMT8:
		return runSMT(arch, svc, reqs, opts)
	case ArchRPU, ArchGPU:
		return runBatched(arch, svc, reqs, opts)
	default:
		return nil, fmt.Errorf("core: invalid arch %v", arch)
	}
}

func newResult(arch Arch, svc *uservices.Service, n int) *Result {
	return &Result{
		Arch:     arch,
		Service:  svc.Name,
		Requests: n,
		Latency:  stats.NewSample(n),
		SIMTEff:  1,
		FreqGHz:  PipelineConfig(arch).FreqGHz,
	}
}

// runScalar models the single-threaded CPU: one worker thread serves
// requests back to back on a warm core, reusing its stack (which is why
// consecutive CPU threads enjoy prefetched shared data, paper §V-A).
// Upcoming requests are traced and uop-converted up to
// opts.PrepLookahead ahead of the one the timing core is running.
func runScalar(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfg := PipelineConfig(arch)
	ms := mem.NewSystem(MemConfig(arch))
	if opts.CPUPrefetch {
		ms.PF = mem.NewPrefetcher(2)
	}
	cpu := pipeline.NewCore(cfg)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)

	sg := alloc.NewStackGroup(0, 1, false)
	la := opts.lookahead()
	sp := newRunSampler(opts.sampleConfig(), len(reqs), len(reqs))
	slots := make([]uopBuilder, la+1)
	prepped := make([][]pipeline.Uop, la+1)
	err := pipelined(sp.unitCount(len(reqs)), la,
		func(slot, k int) error {
			i := sp.unit(k)
			tr, err := scalarTrace(opts.Traces, svc, &reqs[i], 0, sg.StackBase(0), alloc.PolicyCPU, 1)
			if err != nil {
				return err
			}
			ub := &slots[slot]
			ub.reset()
			prepped[slot] = ub.scalarUops(tr, 0)
			return nil
		},
		func(slot, k int) {
			if !sp.timed(sp.unit(k)) {
				sp.warm(cpu, ms, prepped[slot])
				return
			}
			prev := ms.Stats()
			ms.ResetTiming()
			st := cpu.Run(ms, prepped[slot])
			st.Mem = st.Mem.Delta(&prev)
			res.Stats.Accumulate(&st)
			res.Latency.Add(float64(st.Cycles))
			sp.observe(&st, 1)
		})
	if err != nil {
		return nil, err
	}
	sp.finish(res)
	res.Energy = model.Compute(&res.Stats, cfg.FreqGHz)
	return res, nil
}

// runSMT models the SMT-8 CPU: 8 worker threads dispatch round-robin
// through a shared frontend with per-thread ROB partitions and a shared
// banked L1. Only the Traces and PrepLookahead options apply (the SMT
// core is not an RPU configuration).
func runSMT(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfg := PipelineConfig(arch)
	ms := mem.NewSystem(MemConfig(arch))
	cpu := pipeline.NewCore(cfg)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)

	const ways = 8
	sg := alloc.NewStackGroup(0, ways, false)
	groups := (len(reqs) + ways - 1) / ways

	// One slot per in-flight group: all of a group's streams live in
	// the slot's arena simultaneously until merged, and the merged
	// stream stays valid until the timing core has consumed it. The
	// merge is memoized through the sweep's batch-stream cache when the
	// options carry one; each slot owns one build closure (reading the
	// group through the slot) so the hit path allocates nothing.
	la := opts.lookahead()
	type smtSlot struct {
		ub      uopBuilder
		streams [][]pipeline.Uop
		key     []byte
		group   []uservices.Request
		local   trace.BatchStream
		stream  *trace.BatchStream
		build   func() (*trace.BatchStream, error)
	}
	sp := newRunSampler(opts.sampleConfig(), groups, len(reqs))
	slots := make([]smtSlot, la+1)
	for i := range slots {
		sl := &slots[i]
		sl.build = func() (*trace.BatchStream, error) {
			group := sl.group
			sl.ub.reset()
			sl.streams = sl.streams[:0]
			for t := range group {
				tr, err := scalarTrace(opts.Traces, svc, &group[t], t, sg.StackBase(t), alloc.PolicyCPU, 1)
				if err != nil {
					return nil, err
				}
				sl.streams = append(sl.streams, sl.ub.scalarUops(tr, t))
			}
			sl.local = trace.BatchStream{Requests: len(group)}
			sl.local.Uops = sl.ub.mergeSMT(sl.streams)
			return &sl.local, nil
		}
	}
	err := pipelined(sp.unitCount(groups), la,
		func(slot, k int) error {
			g := sp.unit(k)
			off := g * ways
			end := off + ways
			if end > len(reqs) {
				end = len(reqs)
			}
			sl := &slots[slot]
			sl.group = reqs[off:end]
			var err error
			if opts.BatchStreams == nil {
				sl.stream, err = sl.build()
				return err
			}
			// sg.StackBase(0)-StackSize is the group's base address
			// (thread t's stack starts one StackSize above base+t).
			sl.key = trace.AppendBatchKey(sl.key[:0], trace.KeySMT, sl.group, ways,
				false, nil, alloc.PolicyCPU, false, lineBytes, 1, sg.StackBase(0)-alloc.StackSize)
			sl.stream, err = opts.BatchStreams.Get(sl.key, sl.build)
			return err
		},
		func(slot, k int) {
			bs := slots[slot].stream
			if !sp.timed(sp.unit(k)) {
				sp.warm(cpu, ms, bs.Uops)
				return
			}
			prev := ms.Stats()
			ms.ResetTiming()
			st := cpu.Run(ms, bs.Uops)
			st.Mem = st.Mem.Delta(&prev)
			res.Stats.Accumulate(&st)
			for j := 0; j < bs.Requests; j++ {
				res.Latency.Add(float64(st.Cycles))
			}
			sp.observe(&st, bs.Requests)
		})
	if err != nil {
		return nil, err
	}
	sp.finish(res)
	res.Energy = model.Compute(&res.Stats, cfg.FreqGHz)
	return res, nil
}

// runBatched models the RPU (and GPU): the SIMR-aware server forms
// batches, the driver lays out contiguous stacks and SIMR-aware heap
// arenas, the SIMT engine lock-steps the traces and the OoO-SIMT core
// executes the merged stream.
func runBatched(arch Arch, svc *uservices.Service, reqs []uservices.Request, opts Options) (*Result, error) {
	cfgP := PipelineConfig(arch)
	cfgM := MemConfig(arch)
	if opts.Lanes > 0 {
		cfgP.Lanes = opts.Lanes
	}
	cfgP.MajorityVote = opts.MajorityVote
	cfgM.AtomicsAtL3 = opts.AtomicsAtL3
	size := opts.BatchSize
	if size <= 0 {
		size = svc.TunedBatch
	}

	ms := mem.NewSystem(cfgM)
	rpu := pipeline.NewCore(cfgP)
	res := newResult(arch, svc, len(reqs))
	model := EnergyModel(arch)
	reconv := svc.BranchReconv()

	batches := batch.Form(reqs, size, opts.Policy)
	res.Batches = len(batches)

	// Preparation — trace fetch, lock-step merge, uop build — is pure:
	// it writes only the slot's scratch objects and a per-batch
	// MCUStats delta, so upcoming batches are prepared on worker
	// goroutines while the timing core consumes earlier ones. The
	// consumer applies each delta to ms.MCU before Run, which lands the
	// coalescer counts inside the same prev/Delta window the sequential
	// loop (which bumped ms.MCU during the build) gave them. When the
	// options carry a batch-stream cache, prep consults it first and
	// only falls back to the live build on a miss; a hit serves a
	// cache-owned read-only stream with zero allocations (each slot
	// owns one build closure and one reused key buffer).
	totalScalar, totalBatchOps := 0, 0
	la := opts.lookahead()
	type rpuSlot struct {
		ub     uopBuilder
		sc     simt.Scratch
		key    []byte
		batch  *batch.Batch
		local  trace.BatchStream
		stream *trace.BatchStream
		build  func() (*trace.BatchStream, error)
	}
	sp := newRunSampler(opts.sampleConfig(), len(batches), len(reqs))
	slots := make([]rpuSlot, la+1)
	for i := range slots {
		sl := &slots[i]
		sl.build = func() (*trace.BatchStream, error) {
			b := sl.batch
			sg := alloc.NewStackGroup(0, len(b.Requests), opts.StackInterleave)
			traces, err := batchTraces(opts.Traces, svc, b.Requests, sg, opts.AllocPolicy, cfgM.L1.Banks)
			if err != nil {
				return nil, err
			}
			var merged *simt.Result
			if opts.UseIPDOM {
				merged, err = simt.RunIPDOMWith(&sl.sc, traces, size, reconv)
			} else {
				merged, err = simt.RunMinSPPCWith(&sl.sc, traces, size, opts.Spin)
			}
			if err != nil {
				return nil, err
			}
			// merged aliases sl.sc and the built uops alias sl.ub: the
			// local stream stays valid until the consumer releases the
			// slot (the cache deep copies it before sharing).
			sl.ub.reset()
			sl.local = trace.BatchStream{
				ScalarOps: merged.ScalarOps,
				BatchOps:  len(merged.Ops),
				Requests:  len(b.Requests),
			}
			sl.local.Uops = sl.ub.batchUops(merged.Ops, sg, opts.StackInterleave, &sl.local.MCU)
			return &sl.local, nil
		}
	}
	err := pipelined(sp.unitCount(len(batches)), la,
		func(slot, k int) error {
			sl := &slots[slot]
			sl.batch = &batches[sp.unit(k)]
			var err error
			if opts.BatchStreams == nil {
				sl.stream, err = sl.build()
				return err
			}
			// Batch 0's stack group always starts at StackRegion, so
			// the key's stack base is known without laying the group
			// out. Lanes, majority voting, atomics placement and
			// frequency are timing-only and deliberately absent.
			sl.key = trace.AppendBatchKey(sl.key[:0], trace.KeyBatch, sl.batch.Requests, size,
				opts.UseIPDOM, opts.Spin, opts.AllocPolicy, opts.StackInterleave,
				lineBytes, cfgM.L1.Banks, alloc.StackRegion)
			sl.stream, err = opts.BatchStreams.Get(sl.key, sl.build)
			return err
		},
		func(slot, k int) {
			bs := slots[slot].stream
			if !sp.timed(sp.unit(k)) {
				sp.warm(rpu, ms, bs.Uops)
				return
			}
			// SIMT efficiency accumulates over timed units only — the
			// subpopulation Stats extrapolates from — so sampled runs
			// report one consistent Result; unsampled runs time every
			// unit and are unchanged.
			totalScalar += bs.ScalarOps
			totalBatchOps += bs.BatchOps
			prev := ms.Stats()
			ms.MCU.Add(&bs.MCU)
			ms.ResetTiming()
			st := rpu.Run(ms, bs.Uops)
			st.Mem = st.Mem.Delta(&prev)
			res.Stats.Accumulate(&st)
			for j := 0; j < bs.Requests; j++ {
				res.Latency.Add(float64(st.Cycles))
			}
			sp.observe(&st, bs.Requests)
		})
	if err != nil {
		return nil, err
	}
	if totalBatchOps > 0 {
		res.SIMTEff = float64(totalScalar) / (float64(totalBatchOps) * float64(size))
	}
	sp.finish(res)
	res.Energy = model.Compute(&res.Stats, cfgP.FreqGHz)
	return res, nil
}
