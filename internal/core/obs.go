// Observability probes for the two hot orchestration layers: the
// RunCells sweep worker pool (per-cell wall clock, worker utilization)
// and the intra-run prep pipeline (producer/consumer occupancy and
// stall time). Probes resolve to nil when no obs hub is installed, and
// every hook is a no-op on a nil probe, so the disabled hot path costs
// one pointer test and zero allocations.
package core

import (
	"sync/atomic"
	"time"

	"simr/internal/obs"
	"simr/internal/sample"
)

// cellsObs instruments one RunCells invocation.
type cellsObs struct {
	sink    *obs.TraceSink
	calls   *obs.Counter // RunCells invocations
	cells   *obs.Counter // cells evaluated
	busyNS  *obs.Counter // summed wall clock inside cell fns
	wallNS  *obs.Counter // summed RunCells wall clock
	workers *obs.Gauge   // workers of the widest sweep seen
	cellMax *obs.Gauge   // slowest single cell (ns), high-water
}

// cellsProbe resolves the RunCells instruments, or nil when
// observability is disabled.
func cellsProbe(workers int) *cellsObs {
	if !obs.Enabled() {
		return nil
	}
	sc := obs.Default().Scope("core.runcells")
	p := &cellsObs{
		sink:    obs.Trace(),
		calls:   sc.Counter("calls"),
		cells:   sc.Counter("cells"),
		busyNS:  sc.Counter("busy_ns"),
		wallNS:  sc.Counter("wall_ns"),
		cellMax: sc.Gauge("slowest_cell_ns_hwm"),
		workers: sc.Gauge("workers_hwm"),
	}
	p.calls.Inc()
	p.workers.SetMax(int64(workers))
	return p
}

// clock returns time.Now on a live probe and the zero time on a nil
// one, so call sites take timestamps unconditionally without branching.
func (p *cellsObs) clock() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// cell records one evaluated cell: busy time, and a trace span on the
// worker's thread track (pid 1 = sweep pool).
func (p *cellsObs) cell(worker int, start time.Time) {
	if p == nil {
		return
	}
	d := time.Since(start)
	p.cells.Inc()
	p.busyNS.Add(d.Nanoseconds())
	p.cellMax.SetMax(d.Nanoseconds())
	p.sink.Complete("cell", "runcells", 1, worker, p.sink.TS(start), float64(d)/float64(time.Microsecond))
}

// finish records the whole invocation's wall clock.
func (p *cellsObs) finish(start time.Time) {
	if p == nil {
		return
	}
	p.wallNS.Add(time.Since(start).Nanoseconds())
}

// sampleObs instruments one sampled run (scope "core.sample").
type sampleObs struct {
	runs    *obs.Counter // sampled runs started
	timed   *obs.Counter // fully timed units
	warmed  *obs.Counter // functionally warmed units
	skipped *obs.Counter // units never prepared
	warmNS  *obs.Counter // time inside the warmup fast path
	period  *obs.Gauge   // widest sampling period seen
}

// sampleProbe resolves the sampling instruments, or nil when
// observability is disabled or the config times every unit; skipped
// is known at planning time.
func sampleProbe(cfg sample.Config, skipped int) *sampleObs {
	if !obs.Enabled() || !cfg.Sampling() {
		return nil
	}
	sc := obs.Default().Scope("core.sample")
	p := &sampleObs{
		runs:    sc.Counter("runs"),
		timed:   sc.Counter("timed_units"),
		warmed:  sc.Counter("warmed_units"),
		skipped: sc.Counter("skipped_units"),
		warmNS:  sc.Counter("warm_ns"),
		period:  sc.Gauge("period_hwm"),
	}
	p.runs.Inc()
	p.skipped.Add(int64(skipped))
	p.period.SetMax(int64(cfg.Period))
	return p
}

// clock returns time.Now on a live probe and the zero time on a nil
// one.
func (p *sampleObs) clock() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// timedUnit counts one fully timed unit.
func (p *sampleObs) timedUnit() {
	if p == nil {
		return
	}
	p.timed.Inc()
}

// warmUnit counts one functionally warmed unit and its wall clock.
func (p *sampleObs) warmUnit(start time.Time) {
	if p == nil {
		return
	}
	p.warmed.Inc()
	p.warmNS.Add(time.Since(start).Nanoseconds())
}

// prepRunSeq distinguishes concurrent pipelined runs' trace thread
// tracks (each run owns tids base..base+slots on pid 2).
var prepRunSeq atomic.Int64

// prepObs instruments one pipelined invocation.
type prepObs struct {
	sink          *obs.TraceSink
	units         *obs.Counter // units pushed through the pipeline
	inlineUnits   *obs.Counter // units run on the inline (lookahead<=0) path
	prepNS        *obs.Counter // producer time spent preparing
	consumeNS     *obs.Counter // consumer time spent applying results
	prepStallNS   *obs.Counter // producers blocked waiting for a free slot
	consumeStall  *obs.Counter // consumer blocked waiting for a prepared unit
	runs          *obs.Counter
	lookaheadHWM  *obs.Gauge
	tidBase       int
	start         time.Time
	wallNS        *obs.Counter
}

// prepProbe resolves the prep-pipeline instruments, or nil when
// observability is disabled.
func prepProbe(lookahead int) *prepObs {
	if !obs.Enabled() {
		return nil
	}
	sc := obs.Default().Scope("core.prep")
	p := &prepObs{
		sink:         obs.Trace(),
		units:        sc.Counter("units"),
		inlineUnits:  sc.Counter("inline_units"),
		prepNS:       sc.Counter("prep_ns"),
		consumeNS:    sc.Counter("consume_ns"),
		prepStallNS:  sc.Counter("prep_stall_ns"),
		consumeStall: sc.Counter("consume_stall_ns"),
		runs:         sc.Counter("runs"),
		wallNS:       sc.Counter("wall_ns"),
		lookaheadHWM: sc.Gauge("lookahead_hwm"),
		tidBase:      int(prepRunSeq.Add(1)) * 16,
		start:        time.Now(),
	}
	p.runs.Inc()
	p.lookaheadHWM.SetMax(int64(lookahead))
	return p
}

// clock returns time.Now on a live probe and the zero time on a nil
// one.
func (p *prepObs) clock() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// prep records one prepared unit on the producing slot's trace track.
func (p *prepObs) prep(slot int, start time.Time) {
	if p == nil {
		return
	}
	d := time.Since(start)
	p.units.Inc()
	p.prepNS.Add(d.Nanoseconds())
	p.sink.Complete("prep", "preppipe", 2, p.tidBase+1+slot, p.sink.TS(start), float64(d)/float64(time.Microsecond))
}

// stall records producer time blocked on a free slot token.
func (p *prepObs) stall(start time.Time) {
	if p == nil {
		return
	}
	p.prepStallNS.Add(time.Since(start).Nanoseconds())
}

// consume records consumer apply time; waited is the time the consumer
// spent blocked on the unit becoming ready.
func (p *prepObs) consume(start time.Time, waited time.Duration) {
	if p == nil {
		return
	}
	d := time.Since(start)
	p.consumeNS.Add(d.Nanoseconds())
	p.consumeStall.Add(waited.Nanoseconds())
	p.sink.Complete("consume", "preppipe", 2, p.tidBase, p.sink.TS(start), float64(d)/float64(time.Microsecond))
}

// inline records one unit of the sequential (lookahead<=0) path.
func (p *prepObs) inline(prepStart, consumeStart time.Time) {
	if p == nil {
		return
	}
	p.units.Inc()
	p.inlineUnits.Inc()
	p.prepNS.Add(consumeStart.Sub(prepStart).Nanoseconds())
	p.consumeNS.Add(time.Since(consumeStart).Nanoseconds())
}

// finish records the pipeline's wall clock.
func (p *prepObs) finish() {
	if p == nil {
		return
	}
	p.wallNS.Add(time.Since(p.start).Nanoseconds())
}
