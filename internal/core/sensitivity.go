package core

import (
	"fmt"
	"io"
	"sync"

	"simr/internal/alloc"
	"simr/internal/trace"
	"simr/internal/uservices"
)

// SensRow compares one RPU configuration ablation against the baseline
// for one service.
type SensRow struct {
	Service string
	// Metric-specific values; see each study's writer.
	Base, Variant float64
}

// runVariant executes one mutated option set.
func runVariant(arch Arch, svc *uservices.Service, reqs []uservices.Request, mutate func(*Options), tc *trace.Cache, bc *trace.BatchCache, la int) (*Result, error) {
	ov := DefaultOptions()
	ov.Traces = tc
	ov.BatchStreams = bc
	ov.PrepLookahead = la
	mutate(&ov)
	return RunService(arch, svc, reqs, ov)
}

// sensBase memoizes one service's baseline runs: every RPU ablation
// compares against the identical baseline RunService result (same
// service, same request stream, same default options), so computing it
// once per (service, architecture) and sharing the Result across cells
// is byte-identical and saves nearly half the study's simulation work.
// Results are only ever read after the owning cell's Once completes.
type sensBase struct {
	once [NumArchs]sync.Once
	res  [NumArchs]*Result
	err  [NumArchs]error
}

func (b *sensBase) get(arch Arch, svc *uservices.Service, reqs []uservices.Request, tc *trace.Cache, bc *trace.BatchCache, la int) (*Result, error) {
	b.once[arch].Do(func() {
		ob := DefaultOptions()
		ob.Traces = tc
		ob.BatchStreams = bc
		ob.PrepLookahead = la
		b.res[arch], b.err[arch] = RunService(arch, svc, reqs, ob)
	})
	return b.res[arch], b.err[arch]
}

// SensPair is one ablation's (baseline, variant) measurement. Pairs
// are exported so the distributed tier can ship per-service grids back
// to the dispatcher for rendering.
type SensPair struct {
	Base, Variant *Result
}

// SensSections returns the number of ablation sections in the §V-A1
// sensitivity grid (rows of the SensPairsOn result).
func SensSections() int { return len(sensMutations) }

// sensMutations lists the §V-A1 ablations in report order; each becomes
// one row of worker-pool cells.
var sensMutations = []struct {
	arch   Arch
	mutate func(*Options)
}{
	{ArchRPU, func(o *Options) { o.Lanes = 32 }},
	{ArchRPU, func(o *Options) { o.AtomicsAtL3 = false }},
	{ArchRPU, func(o *Options) { o.AllocPolicy = alloc.PolicyCPU }},
	{ArchRPU, func(o *Options) { o.MajorityVote = false }},
	{ArchRPU, func(o *Options) { o.UseIPDOM = true }},
	{ArchRPU, func(o *Options) { o.StackInterleave = false }},
	{ArchCPU, func(o *Options) { o.CPUPrefetch = true }},
}

// SensitivityStudy reproduces the §V-A1 sensitivity analyses on the
// given services and writes the report. It is SensitivityStudyParallel
// on one worker.
func SensitivityStudy(w io.Writer, suite *uservices.Suite, services []string, requests int, seed int64) error {
	return SensitivityStudyParallel(w, suite, services, requests, seed, 1)
}

// SensitivityStudyParallel computes every (ablation, service) pair on a
// worker pool, then renders the report sections in order from the
// precomputed results.
func SensitivityStudyParallel(w io.Writer, suite *uservices.Suite, services []string, requests int, seed int64, workers int) error {
	if len(services) == 0 {
		services = suite.Names()
	}
	svcs := make([]*uservices.Service, len(services))
	for i, name := range services {
		svcs[i] = suite.Get(name)
	}
	pairs, err := SensPairsOn(svcs, requests, seed, workers)
	if err != nil {
		return err
	}
	return WriteSensitivity(w, services, pairs)
}

// SensPairsOn computes the sensitivity grid for an explicit service
// subset on a worker pool. The result is a flat grid indexed
// pairs[section*len(svcs)+s], section in report order (SensSections
// rows). Per-service columns are independent, so a subset's column is
// byte-identical to the same service's column in a full run.
func SensPairsOn(svcs []*uservices.Service, requests int, seed int64, workers int) ([]SensPair, error) {
	ns := len(svcs)
	sw := newSweepCaches(svcs, len(sensMutations))
	bases := make([]sensBase, ns)
	la := prepBudget(len(sensMutations)*ns, workers)
	pairs, err := RunCells(len(sensMutations)*ns, workers, func(i int) (SensPair, error) {
		m := sensMutations[i/ns]
		s := i % ns
		defer sw.done(s)
		reqs := sw.requests(s, requests, seed)
		b, err := bases[s].get(m.arch, svcs[s], reqs, sw.cache(s), sw.batchCache(s), la)
		if err != nil {
			return SensPair{}, err
		}
		v, err := runVariant(m.arch, svcs[s], reqs, m.mutate, sw.cache(s), sw.batchCache(s), la)
		return SensPair{b, v}, err
	})
	if err != nil {
		sw.abort()
		return nil, err
	}
	return pairs, nil
}

// WriteSensitivity renders the §V-A1 report from a precomputed grid
// (services[s] names column s of pairs; see SensPairsOn).
func WriteSensitivity(w io.Writer, services []string, pairs []SensPair) error {
	ns := len(services)
	pair := func(section, s int) SensPair { return pairs[section*ns+s] }

	// 1. Sub-batch interleaving: 8 SIMT lanes vs full 32-lane width.
	fmt.Fprintln(w, "-- sub-batch interleaving: 8 lanes vs full 32 lanes (paper: ~4% loss, up to 10% UniqueID)")
	fmt.Fprintf(w, "%-18s %14s\n", "service", "slowdown @8")
	var losses []float64
	for s, name := range services {
		p := pair(0, s)
		// base has 8 lanes (default), variant 32.
		loss := p.Base.Latency.Mean()/p.Variant.Latency.Mean() - 1
		losses = append(losses, loss)
		fmt.Fprintf(w, "%-18s %13.1f%%\n", name, 100*loss)
	}
	fmt.Fprintf(w, "%-18s %13.1f%%\n\n", "average", 100*mean(losses))

	// 2. Atomics at L3 vs in the private L1.
	fmt.Fprintln(w, "-- atomics at shared L3 vs private L1 (paper: no slowdown observed)")
	fmt.Fprintf(w, "%-18s %14s\n", "service", "slowdown @L3")
	var atom []float64
	for s, name := range services {
		p := pair(1, s)
		slow := p.Base.Latency.Mean()/p.Variant.Latency.Mean() - 1
		atom = append(atom, slow)
		fmt.Fprintf(w, "%-18s %13.1f%%\n", name, 100*slow)
	}
	fmt.Fprintf(w, "%-18s %13.1f%%\n\n", "average", 100*mean(atom))

	// 3. SIMR-aware heap allocation (Figure 16): bank-conflict-free
	// layout of private heap streams; the paper reports 1.8x higher L1
	// throughput on HDSearch.
	fmt.Fprintln(w, "-- SIMR-aware heap allocator vs CPU allocator (paper: 1.8x L1 throughput on HDSearch)")
	fmt.Fprintf(w, "%-18s %16s %14s\n", "service", "bank conflicts", "latency gain")
	for s, name := range services {
		p := pair(2, s)
		bc := ratioOr1(float64(p.Variant.Stats.Mem.L1.BankConflicts), float64(p.Base.Stats.Mem.L1.BankConflicts))
		lg := p.Variant.Latency.Mean() / p.Base.Latency.Mean()
		fmt.Fprintf(w, "%-18s %15.2fx %13.2fx\n", name, bc, lg)
	}
	fmt.Fprintln(w)

	// 4. Majority voting vs lane-0 prediction update.
	fmt.Fprintln(w, "-- majority voting vs lane-0 branch outcome (paper: energy win, little perf impact)")
	fmt.Fprintf(w, "%-18s %14s %14s\n", "service", "flushes saved", "perf delta")
	for s, name := range services {
		p := pair(3, s)
		fs := ratioOr1(float64(p.Variant.Stats.FlushedLanes+p.Variant.Stats.Mispredicts),
			float64(p.Base.Stats.FlushedLanes+p.Base.Stats.Mispredicts))
		pd := p.Variant.Latency.Mean()/p.Base.Latency.Mean() - 1
		fmt.Fprintf(w, "%-18s %13.2fx %13.1f%%\n", name, fs, 100*pd)
	}
	fmt.Fprintln(w)

	// 5. MinSP-PC heuristic vs ideal stack-based IPDOM.
	fmt.Fprintln(w, "-- MinSP-PC vs ideal IPDOM reconvergence (paper: 91% vs 92% efficiency)")
	fmt.Fprintf(w, "%-18s %10s %10s\n", "service", "minsp-pc", "ipdom")
	for s, name := range services {
		p := pair(4, s)
		fmt.Fprintf(w, "%-18s %9.1f%% %9.1f%%\n", name, 100*p.Base.SIMTEff, 100*p.Variant.SIMTEff)
	}
	fmt.Fprintln(w)

	// 6. Stack interleaving off (ablation beyond the paper's set).
	fmt.Fprintln(w, "-- stack physical interleaving on vs off (ablation; drives Figure 14 coalescing)")
	fmt.Fprintf(w, "%-18s %14s\n", "service", "L1 traffic x")
	for s, name := range services {
		p := pair(5, s)
		tr := ratioOr1(p.Variant.L1AccessesPerRequest(), p.Base.L1AccessesPerRequest())
		fmt.Fprintf(w, "%-18s %13.2fx\n", name, tr)
	}
	fmt.Fprintln(w)

	// 7. CPU next-line prefetcher (Table III: "data prefetchers are
	// ineffective" on microservice heaps).
	fmt.Fprintln(w, "-- CPU next-line prefetcher (paper Table III: ineffective on microservices)")
	fmt.Fprintf(w, "%-18s %10s %12s\n", "service", "speedup", "accuracy")
	for s, name := range services {
		p := pair(6, s)
		fmt.Fprintf(w, "%-18s %9.1f%% %11.1f%%\n", name,
			100*(p.Base.Latency.Mean()/p.Variant.Latency.Mean()-1),
			100*p.Variant.Stats.Mem.PF.Accuracy())
	}
	return nil
}

func ratioOr1(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return a
	}
	return a / b
}
