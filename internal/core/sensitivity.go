package core

import (
	"fmt"
	"io"
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/uservices"
)

// SensRow compares one RPU configuration ablation against the baseline
// for one service.
type SensRow struct {
	Service string
	// Metric-specific values; see each study's writer.
	Base, Variant float64
}

// runPair executes the baseline and a mutated option set.
func runPair(svc *uservices.Service, requests int, seed int64, mutate func(*Options)) (base, variant *Result, err error) {
	r := rand.New(rand.NewSource(seed))
	reqs := svc.Generate(r, requests)
	ob := DefaultOptions()
	if base, err = RunService(ArchRPU, svc, reqs, ob); err != nil {
		return nil, nil, err
	}
	ov := DefaultOptions()
	mutate(&ov)
	if variant, err = RunService(ArchRPU, svc, reqs, ov); err != nil {
		return nil, nil, err
	}
	return base, variant, nil
}

// SensitivityStudy reproduces the §V-A1 sensitivity analyses on the
// given services and writes the report.
func SensitivityStudy(w io.Writer, suite *uservices.Suite, services []string, requests int, seed int64) error {
	if len(services) == 0 {
		services = suite.Names()
	}

	// 1. Sub-batch interleaving: 8 SIMT lanes vs full 32-lane width.
	fmt.Fprintln(w, "-- sub-batch interleaving: 8 lanes vs full 32 lanes (paper: ~4% loss, up to 10% UniqueID)")
	fmt.Fprintf(w, "%-18s %14s\n", "service", "slowdown @8")
	var losses []float64
	for _, name := range services {
		svc := suite.Get(name)
		base, variant, err := runPair(svc, requests, seed, func(o *Options) { o.Lanes = 32 })
		if err != nil {
			return err
		}
		// base has 8 lanes (default), variant 32.
		loss := base.Latency.Mean()/variant.Latency.Mean() - 1
		losses = append(losses, loss)
		fmt.Fprintf(w, "%-18s %13.1f%%\n", name, 100*loss)
	}
	fmt.Fprintf(w, "%-18s %13.1f%%\n\n", "average", 100*mean(losses))

	// 2. Atomics at L3 vs in the private L1.
	fmt.Fprintln(w, "-- atomics at shared L3 vs private L1 (paper: no slowdown observed)")
	fmt.Fprintf(w, "%-18s %14s\n", "service", "slowdown @L3")
	var atom []float64
	for _, name := range services {
		svc := suite.Get(name)
		base, variant, err := runPair(svc, requests, seed, func(o *Options) { o.AtomicsAtL3 = false })
		if err != nil {
			return err
		}
		slow := base.Latency.Mean()/variant.Latency.Mean() - 1
		atom = append(atom, slow)
		fmt.Fprintf(w, "%-18s %13.1f%%\n", name, 100*slow)
	}
	fmt.Fprintf(w, "%-18s %13.1f%%\n\n", "average", 100*mean(atom))

	// 3. SIMR-aware heap allocation (Figure 16): bank-conflict-free
	// layout of private heap streams; the paper reports 1.8x higher L1
	// throughput on HDSearch.
	fmt.Fprintln(w, "-- SIMR-aware heap allocator vs CPU allocator (paper: 1.8x L1 throughput on HDSearch)")
	fmt.Fprintf(w, "%-18s %16s %14s\n", "service", "bank conflicts", "latency gain")
	for _, name := range services {
		svc := suite.Get(name)
		base, variant, err := runPair(svc, requests, seed, func(o *Options) { o.AllocPolicy = alloc.PolicyCPU })
		if err != nil {
			return err
		}
		bc := ratioOr1(float64(variant.Stats.Mem.L1.BankConflicts), float64(base.Stats.Mem.L1.BankConflicts))
		lg := variant.Latency.Mean() / base.Latency.Mean()
		fmt.Fprintf(w, "%-18s %15.2fx %13.2fx\n", name, bc, lg)
	}
	fmt.Fprintln(w)

	// 4. Majority voting vs lane-0 prediction update.
	fmt.Fprintln(w, "-- majority voting vs lane-0 branch outcome (paper: energy win, little perf impact)")
	fmt.Fprintf(w, "%-18s %14s %14s\n", "service", "flushes saved", "perf delta")
	for _, name := range services {
		svc := suite.Get(name)
		base, variant, err := runPair(svc, requests, seed, func(o *Options) { o.MajorityVote = false })
		if err != nil {
			return err
		}
		fs := ratioOr1(float64(variant.Stats.FlushedLanes+variant.Stats.Mispredicts),
			float64(base.Stats.FlushedLanes+base.Stats.Mispredicts))
		pd := variant.Latency.Mean()/base.Latency.Mean() - 1
		fmt.Fprintf(w, "%-18s %13.2fx %13.1f%%\n", name, fs, 100*pd)
	}
	fmt.Fprintln(w)

	// 5. MinSP-PC heuristic vs ideal stack-based IPDOM.
	fmt.Fprintln(w, "-- MinSP-PC vs ideal IPDOM reconvergence (paper: 91% vs 92% efficiency)")
	fmt.Fprintf(w, "%-18s %10s %10s\n", "service", "minsp-pc", "ipdom")
	for _, name := range services {
		svc := suite.Get(name)
		base, variant, err := runPair(svc, requests, seed, func(o *Options) { o.UseIPDOM = true })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %9.1f%% %9.1f%%\n", name, 100*base.SIMTEff, 100*variant.SIMTEff)
	}
	fmt.Fprintln(w)

	// 6b is appended after the stack-interleave ablation below.
	// 6. Stack interleaving off (ablation beyond the paper's set).
	fmt.Fprintln(w, "-- stack physical interleaving on vs off (ablation; drives Figure 14 coalescing)")
	fmt.Fprintf(w, "%-18s %14s\n", "service", "L1 traffic x")
	for _, name := range services {
		svc := suite.Get(name)
		base, variant, err := runPair(svc, requests, seed, func(o *Options) { o.StackInterleave = false })
		if err != nil {
			return err
		}
		tr := ratioOr1(variant.L1AccessesPerRequest(), base.L1AccessesPerRequest())
		fmt.Fprintf(w, "%-18s %13.2fx\n", name, tr)
	}
	fmt.Fprintln(w)

	// 7. CPU next-line prefetcher (Table III: "data prefetchers are
	// ineffective" on microservice heaps).
	fmt.Fprintln(w, "-- CPU next-line prefetcher (paper Table III: ineffective on microservices)")
	fmt.Fprintf(w, "%-18s %10s %12s\n", "service", "speedup", "accuracy")
	for _, name := range services {
		svc := suite.Get(name)
		r := rand.New(rand.NewSource(seed))
		reqs := svc.Generate(r, requests)
		base, err := RunService(ArchCPU, svc, reqs, DefaultOptions())
		if err != nil {
			return err
		}
		opts := DefaultOptions()
		opts.CPUPrefetch = true
		pf, err := RunService(ArchCPU, svc, reqs, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %9.1f%% %11.1f%%\n", name,
			100*(base.Latency.Mean()/pf.Latency.Mean()-1),
			100*pf.Stats.Mem.PF.Accuracy())
	}
	return nil
}

func ratioOr1(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return a
	}
	return a / b
}
