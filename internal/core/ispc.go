package core

import (
	"simr/internal/alloc"
	"simr/internal/batch"
	"simr/internal/isa"
	"simr/internal/mem"
	"simr/internal/pipeline"
	"simr/internal/simt"
	"simr/internal/uservices"
)

// RunISPC models the paper's §VI-A alternative: compiling the
// microservice SPMD-style onto the CPU's existing SIMD units (the
// Intel-ISPC approach), one request per vector lane. The model follows
// the section's arguments:
//
//   - requests map to the 8 64-bit lanes of an AVX-512-class unit, so
//     batches are 8 wide;
//   - divergent conditional branches become predication: both sides
//     always execute with masked lanes and the branch predictor cannot
//     help (the branch disappears), while uniform branches survive;
//   - scalar instructions with no 1:1 vector equivalent (atomics,
//     syscalls, call/return bookkeeping and a slice of complex integer
//     ops — the paper counts only 27 % of scalar opcodes as having
//     vector encodings) fall back to per-lane scalar code;
//   - memory accesses become gathers/scatters: one L1 access per lane
//     through the CPU's single-banked L1, with no MCU and no stack
//     interleaving to coalesce them.
//
// The result is directly comparable with RunService's CPU and RPU
// measurements over the same requests.
func RunISPC(svc *uservices.Service, reqs []uservices.Request) (*Result, error) {
	const width = 8 // AVX-512: 8 × 64-bit lanes

	cfg := PipelineConfig(ArchCPU)
	cfg.Name = "cpu-ispc"
	cfg.Lanes = width
	ms := mem.NewSystem(MemConfig(ArchCPU))
	cpu := pipeline.NewCore(cfg)
	res := newResult(ArchCPU, svc, len(reqs))
	model := EnergyModel(ArchCPU)

	batches := batch.Form(reqs, width, batch.PerAPIArgSize)
	res.Batches = len(batches)

	totalScalar, totalBatchOps := 0, 0
	for _, b := range batches {
		sg := alloc.NewStackGroup(0, len(b.Requests), false)
		traces, err := svc.TraceBatch(b.Requests, sg, alloc.PolicyCPU, lineBytes, 1)
		if err != nil {
			return nil, err
		}
		merged, err := simt.RunMinSPPC(traces, width, nil)
		if err != nil {
			return nil, err
		}
		totalScalar += merged.ScalarOps
		totalBatchOps += len(merged.Ops)

		uops := ispcUops(merged.Ops)
		prev := ms.Stats()
		ms.ResetTiming()
		st := cpu.Run(ms, uops)
		st.Mem = st.Mem.Delta(&prev)
		res.Stats.Accumulate(&st)
		for range b.Requests {
			res.Latency.Add(float64(st.Cycles))
		}
	}
	if totalBatchOps > 0 {
		res.SIMTEff = float64(totalScalar) / (float64(totalBatchOps) * float64(width))
	}
	res.Energy = model.Compute(&res.Stats, cfg.FreqGHz)
	return res, nil
}

// scalarFallback reports whether a class has no vector equivalent and
// must be serialised per lane. Complex integer ops are sampled
// deterministically by PC to approximate the paper's ISA-coverage
// argument.
func scalarFallback(op *simt.BatchOp) bool {
	switch op.Class {
	case isa.Atomic, isa.Syscall, isa.Fence, isa.CallOp, isa.RetOp:
		return true
	case isa.IAlu:
		// Roughly one in seven integer ops (string manipulation,
		// variable shifts, flags-dependent sequences) has no vector
		// encoding.
		return (op.PC>>2)%7 == 0
	default:
		return false
	}
}

// ispcUops lowers the lock-step batch stream onto the SIMD pipeline.
func ispcUops(ops []simt.BatchOp) []pipeline.Uop {
	uops := make([]pipeline.Uop, 0, len(ops)*2)
	// remap tracks each batch op's last lowered uop for dependencies.
	remap := make([]int32, len(ops))
	dep := func(d int32) int32 {
		if d < 0 {
			return -1
		}
		return remap[d]
	}
	for i := range ops {
		op := &ops[i]
		lanes := op.ActiveLanes()

		if scalarFallback(op) {
			// Per-lane scalar expansion: full frontend cost per lane.
			for t := 0; t < 64; t++ {
				if op.Mask&(1<<uint(t)) == 0 {
					continue
				}
				u := pipeline.Uop{
					PC:          op.PC,
					Class:       op.Class,
					Dep1:        dep(op.Dep1),
					Dep2:        dep(op.Dep2),
					ActiveLanes: 1,
				}
				if op.Class.IsMem() {
					u.Accesses = []uint64{op.Addrs[t]}
				}
				uops = append(uops, u)
			}
			remap[i] = int32(len(uops) - 1)
			continue
		}

		u := pipeline.Uop{
			PC:          op.PC,
			Dep1:        dep(op.Dep1),
			Dep2:        dep(op.Dep2),
			ActiveLanes: lanes,
			Mask:        op.Mask,
		}
		switch {
		case op.Class == isa.Branch && op.TakenMask != 0 && op.TakenMask != op.Mask:
			// Divergent branch → predicate computation: an ALU op with
			// no prediction and no redirect.
			u.Class = isa.Simd
		case op.Class.IsMem():
			// Gather/scatter: one access per active lane, uncoalesced.
			u.Class = op.Class
			for t := 0; t < 64; t++ {
				if op.Mask&(1<<uint(t)) != 0 {
					u.Accesses = append(u.Accesses, op.Addrs[t])
				}
			}
		case op.Class == isa.Branch:
			u.Class = isa.Branch
			u.TakenMask = op.TakenMask
			u.Taken = op.TakenMask == op.Mask
		default:
			// Vectorised compute: integer/FP lanes become SIMD work.
			u.Class = isa.Simd
		}
		uops = append(uops, u)
		remap[i] = int32(len(uops) - 1)
	}
	return uops
}
