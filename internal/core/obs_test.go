package core

import (
	"testing"

	"simr/internal/obs"
	"simr/internal/uservices"
)

// TestPipelinedDisabledAllocs: with no obs hub installed, the
// sequential prep-pipeline hot path (the per-unit code every study
// runs) must not allocate.
func TestPipelinedDisabledAllocs(t *testing.T) {
	obs.Disable()
	sink := 0
	prep := func(slot, i int) error { sink += i; return nil }
	consume := func(slot, i int) { sink -= i }
	n := testing.AllocsPerRun(200, func() {
		if err := pipelined(4, 0, prep, consume); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("disabled pipelined path allocates %v allocs/op, want 0", n)
	}
}

// TestObsStudyCounters: with the hub enabled, a small study populates
// the runcells/prep/cache scopes, and the snapshot carries coherent
// values.
func TestObsStudyCounters(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	defer obs.Disable()

	suite := uservices.NewSuite()
	if _, err := ChipStudyParallel(suite, 8, 7, false, 2); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	byName := map[string]obs.ScopeSnapshot{}
	for _, sc := range snap.Scopes {
		byName[sc.Name] = sc
	}
	rc, ok := byName["core.runcells"]
	if !ok {
		t.Fatalf("core.runcells scope missing; scopes %v", names(snap))
	}
	cells := rc.Counters["cells"]
	if want := int64(len(suite.Services) * 3); cells != want {
		t.Fatalf("cells %d, want %d", cells, want)
	}
	if rc.Counters["busy_ns"] <= 0 || rc.Counters["wall_ns"] <= 0 {
		t.Fatalf("runcells timing not recorded: %+v", rc.Counters)
	}
	pp, ok := byName["core.prep"]
	if !ok {
		t.Fatalf("core.prep scope missing; scopes %v", names(snap))
	}
	if pp.Counters["units"] <= 0 || pp.Counters["prep_ns"] <= 0 || pp.Counters["consume_ns"] <= 0 {
		t.Fatalf("prep pipeline occupancy not recorded: %+v", pp.Counters)
	}
	tc, ok := byName["trace.cache"]
	if !ok {
		t.Fatalf("trace.cache scope missing; scopes %v", names(snap))
	}
	if tc.Counters["hits"] <= 0 || tc.Counters["misses"] <= 0 {
		t.Fatalf("trace cache counters not recorded: %+v", tc.Counters)
	}
	if tc.Counters["drops"] < int64(len(suite.Services)) {
		t.Fatalf("drops %d, want >= one per service", tc.Counters["drops"])
	}
	if tc.Gauges["bytes_hwm"] <= 0 {
		t.Fatalf("bytes high-water mark not recorded: %+v", tc.Gauges)
	}
}

// TestObsDoesNotPerturbStudy: enabling observability must leave study
// results byte-identical.
func TestObsDoesNotPerturbStudy(t *testing.T) {
	suite := uservices.NewSuite()
	run := func() []ChipRow {
		rows, err := ChipStudyParallel(suite, 8, 7, false, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	obs.Disable()
	plain := run()
	obs.Enable(obs.NewRegistry(), obs.NewTraceSink())
	defer obs.Disable()
	observed := run()
	for i := range plain {
		a, b := plain[i], observed[i]
		if a.Service != b.Service ||
			a.CPU.Stats.Cycles != b.CPU.Stats.Cycles ||
			a.RPU.Stats.Cycles != b.RPU.Stats.Cycles ||
			a.CPU.Energy.Total() != b.CPU.Energy.Total() ||
			a.RPU.Energy.Total() != b.RPU.Energy.Total() {
			t.Fatalf("observability perturbed row %d: %+v vs %+v", i, a, b)
		}
	}
	if obs.Trace().Len() == 0 {
		t.Fatal("no trace events recorded while enabled")
	}
}

func names(s obs.Snapshot) []string {
	out := make([]string, len(s.Scopes))
	for i, sc := range s.Scopes {
		out[i] = sc.Name
	}
	return out
}
