// Package core is the SIMR system driver — the paper's primary
// contribution assembled from the substrates: it holds the Table IV
// hardware configurations, turns request streams into batches, traces
// them, lock-steps them through the SIMT engine, feeds the merged
// stream through the cycle-level pipeline and memory models and
// accounts energy, producing the chip-level results of Figures 10-21.
package core

import (
	"simr/internal/energy"
	"simr/internal/mem"
	"simr/internal/pipeline"
)

// Arch selects a hardware design point (Table IV column).
type Arch uint8

// Architectures under study.
const (
	// ArchCPU is the single-threaded OoO x86-class core.
	ArchCPU Arch = iota
	// ArchSMT8 is the same core with 8-way simultaneous multithreading.
	ArchSMT8
	// ArchRPU is the OoO-SIMT Request Processing Unit.
	ArchRPU
	// ArchGPU is an Ampere-like in-order SIMT core.
	ArchGPU
	// NumArchs is the number of design points (array sizing).
	NumArchs = int(ArchGPU) + 1
)

func (a Arch) String() string {
	switch a {
	case ArchCPU:
		return "cpu"
	case ArchSMT8:
		return "cpu-smt8"
	case ArchRPU:
		return "rpu"
	case ArchGPU:
		return "gpu"
	default:
		return "invalid"
	}
}

// Cores returns the chip's core count for the architecture (Table IV).
func (a Arch) Cores() int {
	switch a {
	case ArchCPU:
		return 98
	case ArchSMT8:
		return 80
	case ArchRPU:
		return 20
	default:
		return 20
	}
}

// ThreadsPerCore returns the hardware thread count per core.
func (a Arch) ThreadsPerCore() int {
	switch a {
	case ArchCPU:
		return 1
	case ArchSMT8:
		return 8
	default:
		return 32
	}
}

// PipelineConfig returns the Table IV pipeline parameters.
func PipelineConfig(a Arch) pipeline.Config {
	switch a {
	case ArchCPU:
		return pipeline.Config{
			Name:       "cpu",
			FetchWidth: 8, IssueWidth: 8, RetireWidth: 8,
			ROB:     256,
			Lanes:   1,
			IALULat: 1, FALULat: 3, SimdLat: 3, BranchLat: 1, SyscallLat: 50,
			RedirectPenalty: 12,
			FreqGHz:         2.5,
		}
	case ArchSMT8:
		cfg := PipelineConfig(ArchCPU)
		cfg.Name = "cpu-smt8"
		cfg.ROBPerThread = 32
		return cfg
	case ArchRPU:
		return pipeline.Config{
			Name:       "rpu",
			FetchWidth: 8, IssueWidth: 8, RetireWidth: 8,
			ROB:     256,
			Lanes:   8, // sub-batch interleaving over 8 SIMT lanes
			IALULat: 4, FALULat: 6, SimdLat: 6, BranchLat: 4, SyscallLat: 50,
			RedirectPenalty: 16, // 14-18 stage pipe
			MajorityVote:    true,
			FreqGHz:         2.5,
		}
	case ArchGPU:
		return pipeline.Config{
			Name:       "gpu",
			FetchWidth: 2, IssueWidth: 1, RetireWidth: 2,
			ROB:   64,
			Lanes: 32,
			// SyscallLat models the CPU round trip GPUs need for I/O
			// (GPUfs/GPUnet-style coordination), the dominant term in
			// the paper's 79x GPU service-latency gap.
			IALULat: 4, FALULat: 6, SimdLat: 6, BranchLat: 8, SyscallLat: 6000,
			InOrder:       true,
			NoSpeculation: true,
			FreqGHz:       1.4,
		}
	default:
		panic("core: invalid arch")
	}
}

// lineBytes is the cache line size used throughout (Table IV:
// 32 B/cycle/thread L1 bandwidth at 32-byte lines).
const lineBytes = 32

// MemConfig returns the Table IV memory hierarchy for one core of the
// architecture. L3 is the per-core slice of the shared 32 MB cache;
// DRAM bandwidth is threads/core × the per-thread share (2 GB/s CPU,
// 0.9 GB/s SMT/RPU) expressed in bytes per core cycle.
func MemConfig(a Arch) mem.SysConfig {
	switch a {
	case ArchCPU:
		return mem.SysConfig{
			L1:                mem.CacheConfig{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, LineBytes: lineBytes, Banks: 1, LatCycles: 3, BytesPerCycle: 32},
			TLB:               mem.TLBConfig{EntriesPerBank: 48, Banks: 1, MissLatCycles: 40, PageBytes: 2 << 20},
			L2:                mem.CacheConfig{Name: "L2", SizeBytes: 512 << 10, Ways: 8, LineBytes: lineBytes, Banks: 1, LatCycles: 12},
			L3:                mem.CacheConfig{Name: "L3slice", SizeBytes: 336 << 10, Ways: 16, LineBytes: lineBytes, Banks: 2, LatCycles: 36},
			ICLatCycles:       12, // 9x9 mesh average hops
			DRAMLatCycles:     160,
			DRAMBytesPerCycle: 16, // channel burst bandwidth seen by one core
		}
	case ArchSMT8:
		return mem.SysConfig{
			L1:                mem.CacheConfig{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, LineBytes: lineBytes, Banks: 8, LatCycles: 3, BytesPerCycle: 256},
			TLB:               mem.TLBConfig{EntriesPerBank: 64, Banks: 1, MissLatCycles: 40, PageBytes: 2 << 20},
			L2:                mem.CacheConfig{Name: "L2", SizeBytes: 512 << 10, Ways: 8, LineBytes: lineBytes, Banks: 1, LatCycles: 12},
			L3:                mem.CacheConfig{Name: "L3slice", SizeBytes: 400 << 10, Ways: 16, LineBytes: lineBytes, Banks: 2, LatCycles: 36},
			ICLatCycles:       14, // 11x11 mesh
			DRAMLatCycles:     160,
			DRAMBytesPerCycle: 16,
		}
	case ArchRPU:
		return mem.SysConfig{
			L1:                mem.CacheConfig{Name: "L1D", SizeBytes: 256 << 10, Ways: 8, LineBytes: lineBytes, Banks: 8, LatCycles: 8, BytesPerCycle: 256},
			TLB:               mem.TLBConfig{EntriesPerBank: 32, Banks: 8, MissLatCycles: 40, PageBytes: 2 << 20},
			L2:                mem.CacheConfig{Name: "L2", SizeBytes: 2 << 20, Ways: 8, LineBytes: lineBytes, Banks: 2, LatCycles: 20},
			L3:                mem.CacheConfig{Name: "L3slice", SizeBytes: 1638 << 10, Ways: 16, LineBytes: lineBytes, Banks: 4, LatCycles: 36},
			ICLatCycles:       4, // single-hop 20x20 crossbar
			DRAMLatCycles:     160,
			DRAMBytesPerCycle: 32, // wider DDR5-7200 provisioning (Table IV)
			AtomicsAtL3:       true,
		}
	case ArchGPU:
		return mem.SysConfig{
			L1:                mem.CacheConfig{Name: "L1D", SizeBytes: 128 << 10, Ways: 8, LineBytes: lineBytes, Banks: 8, LatCycles: 24, BytesPerCycle: 256},
			TLB:               mem.TLBConfig{EntriesPerBank: 32, Banks: 8, MissLatCycles: 80, PageBytes: 2 << 20},
			L2:                mem.CacheConfig{Name: "L2", SizeBytes: 4 << 20, Ways: 16, LineBytes: lineBytes, Banks: 4, LatCycles: 90},
			L3:                mem.CacheConfig{Name: "L3slice", SizeBytes: 1 << 20, Ways: 16, LineBytes: lineBytes, Banks: 4, LatCycles: 120},
			ICLatCycles:       8,
			DRAMLatCycles:     220,
			DRAMBytesPerCycle: 64,
			AtomicsAtL3:       true,
		}
	default:
		panic("core: invalid arch")
	}
}

// EnergyModel returns the per-event energy model for the architecture.
func EnergyModel(a Arch) *energy.Model {
	switch a {
	case ArchCPU:
		return energy.CPUModel()
	case ArchSMT8:
		return energy.SMTModel()
	case ArchRPU:
		return energy.RPUModel()
	case ArchGPU:
		return energy.GPUModel()
	default:
		panic("core: invalid arch")
	}
}
