package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"simr/internal/alloc"
	"simr/internal/simt"
	"simr/internal/uservices"
)

// TestPipelinedOrder checks the pipeline's core contract: every unit
// is prepared exactly once into the slot the consumer reads, and
// consumption happens in strict unit order at every lookahead.
func TestPipelinedOrder(t *testing.T) {
	for _, la := range []int{0, 1, 2, 4, 8, 40} {
		const n = 25
		nslots := la + 1
		if nslots > n {
			nslots = n
		}
		slots := make([]int, nslots)
		next := 0
		err := pipelined(n, la,
			func(slot, i int) error {
				slots[slot] = i * i
				return nil
			},
			func(slot, i int) {
				if i != next {
					t.Fatalf("la=%d: consumed unit %d before unit %d", la, i, next)
				}
				next++
				if slots[slot] != i*i {
					t.Fatalf("la=%d: slot %d holds %d for unit %d", la, slot, slots[slot], i)
				}
			})
		if err != nil {
			t.Fatalf("la=%d: %v", la, err)
		}
		if next != n {
			t.Fatalf("la=%d: consumed %d of %d units", la, next, n)
		}
	}
}

// TestPipelinedError checks the sequential error contract survives
// pipelining: the lowest-index prep error is returned and no unit at
// or past it is consumed.
func TestPipelinedError(t *testing.T) {
	boom := errors.New("boom")
	for _, la := range []int{0, 1, 3, 7} {
		for _, fail := range []int{0, 1, 5, 19} {
			consumed := 0
			err := pipelined(20, la,
				func(slot, i int) error {
					if i >= fail {
						return fmt.Errorf("unit %d: %w", i, boom)
					}
					return nil
				},
				func(slot, i int) { consumed++ })
			if !errors.Is(err, boom) {
				t.Fatalf("la=%d fail=%d: err = %v", la, fail, err)
			}
			if want := fmt.Sprintf("unit %d: boom", fail); err.Error() != want {
				t.Fatalf("la=%d fail=%d: got %q, want lowest-index error %q", la, fail, err.Error(), want)
			}
			if consumed != fail {
				t.Fatalf("la=%d fail=%d: consumed %d units", la, fail, consumed)
			}
		}
	}
}

func TestPipelinedEmpty(t *testing.T) {
	if err := pipelined(0, 4, nil, nil); err != nil {
		t.Fatal(err)
	}
	ran := false
	err := pipelined(1, 4,
		func(slot, i int) error { return nil },
		func(slot, i int) { ran = true })
	if err != nil || !ran {
		t.Fatalf("n=1: err=%v ran=%v", err, ran)
	}
}

func TestPrepBudget(t *testing.T) {
	p := DefaultWorkers()
	if got := prepBudget(100, 1); got != min(p-1, maxPrepLookahead) {
		t.Fatalf("one worker should get the whole spare budget, got %d", got)
	}
	if got := prepBudget(100, p); got != 0 {
		t.Fatalf("a fully staffed pool has no spare CPUs, got %d", got)
	}
	SetPrepLookahead(3)
	if got := prepBudget(100, p); got != 3 {
		t.Fatalf("override ignored, got %d", got)
	}
	SetPrepLookahead(-1)
	if got := prepBudget(100, p); got != 0 {
		t.Fatalf("override not cleared, got %d", got)
	}
}

// TestPrepPipelineDeterminism is the tentpole guarantee: every
// architecture's RunService result is identical — field for field,
// including the float accumulation order — at any prep lookahead. The
// service set covers the atomic/spin-heavy path (uniqueid) and the
// variants cover ideal IPDOM reconvergence and a tight spin window.
func TestPrepPipelineDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	arches := []Arch{ArchCPU, ArchSMT8, ArchRPU, ArchGPU}
	variants := []struct {
		name   string
		mutate func(*Options)
	}{
		{"base", func(o *Options) {}},
		{"ipdom", func(o *Options) { o.UseIPDOM = true }},
		{"tightspin", func(o *Options) { o.Spin = &simt.SpinConfig{Window: 4, MinAtomics: 1, Grant: 4} }},
	}
	for _, name := range []string{"memc", "uniqueid", "user"} {
		svc := suite.Get(name)
		reqs := genRequests(svc, 48, 7)
		for _, arch := range arches {
			for _, v := range variants {
				if v.name != "base" && arch != ArchRPU {
					continue // reconvergence/spin options only shape RPU runs
				}
				t.Run(fmt.Sprintf("%s/%v/%s", name, arch, v.name), func(t *testing.T) {
					var oracle *Result
					for _, la := range []int{0, 1, 4} {
						opts := DefaultOptions()
						opts.PrepLookahead = la
						v.mutate(&opts)
						res, err := RunService(arch, svc, reqs, opts)
						if err != nil {
							t.Fatalf("lookahead %d: %v", la, err)
						}
						if la == 0 {
							oracle = res
							continue
						}
						if !reflect.DeepEqual(oracle, res) {
							t.Fatalf("lookahead %d differs from sequential oracle", la)
						}
					}
				})
			}
		}
	}
}

// TestPrepPipelineUnderSweep drives runBatched with lookahead >= 2
// inside concurrent sweep cells; under -race this is the integration
// race test for the prep pipeline sharing trace caches and request
// streams across cells.
func TestPrepPipelineUnderSweep(t *testing.T) {
	SetPrepLookahead(2)
	defer SetPrepLookahead(-1)
	suite := uservices.NewSuite()
	svc := suite.Get("memc")
	reqs := genRequests(svc, 64, 7)
	cpu, rows, err := BatchSweep(svc, reqs, []int{8, 16, 32}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cpu == nil || len(rows) != 3 {
		t.Fatalf("cpu=%v rows=%d", cpu, len(rows))
	}
	chip, err := ChipStudyParallel(suite, 32, 3, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	SetPrepLookahead(0)
	seq, err := ChipStudyParallel(suite, 32, 3, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chip, seq) {
		t.Fatal("pipelined sweep differs from sequential-prep sweep")
	}
}

// TestSweepCachesAbort is the regression test for the error-path leak:
// cells abandoned by RunCells never call done, so without abort a
// failed sweep strands its cache bytes against the shared budget.
func TestSweepCachesAbort(t *testing.T) {
	suite := uservices.NewSuite()
	svcs := []*uservices.Service{suite.Get("memc"), suite.Get("user")}
	sw := newSweepCaches(svcs, 2)
	for s, svc := range svcs {
		reqs := sw.requests(s, 8, 3)
		sg := alloc.NewStackGroup(0, len(reqs), true)
		if _, err := sw.cache(s).Batch(svc, reqs, sg, alloc.PolicySIMR, 32, 8); err != nil {
			t.Fatal(err)
		}
		if sw.cache(s).Stats().Bytes == 0 {
			t.Fatalf("service %d cached nothing", s)
		}
	}
	// One of service 0's two cells finishes before the sweep fails; the
	// other cells are abandoned and never call done.
	sw.done(0)
	sw.abort()
	for s := range svcs {
		if got := sw.cache(s).Stats().Bytes; got != 0 {
			t.Fatalf("service %d still holds %d bytes after abort", s, got)
		}
	}
}
