package core

import (
	"testing"

	"simr/internal/isa"
	"simr/internal/simt"
)

func TestScalarFallbackClasses(t *testing.T) {
	for _, c := range []isa.Class{isa.Atomic, isa.Syscall, isa.Fence, isa.CallOp, isa.RetOp} {
		if !scalarFallback(&simt.BatchOp{Class: c, PC: 4}) {
			t.Fatalf("%v must fall back to scalar code", c)
		}
	}
	for _, c := range []isa.Class{isa.FAlu, isa.Simd, isa.Load, isa.Store, isa.Jump} {
		if scalarFallback(&simt.BatchOp{Class: c, PC: 4}) {
			t.Fatalf("%v should vectorize", c)
		}
	}
	// Integer ops: deterministic subset scalarizes.
	saw := map[bool]bool{}
	for pc := uint64(0); pc < 64; pc += 4 {
		saw[scalarFallback(&simt.BatchOp{Class: isa.IAlu, PC: pc})] = true
	}
	if !saw[true] || !saw[false] {
		t.Fatal("integer fallback sampling should mix vector and scalar")
	}
}

func TestISPCUopsLowering(t *testing.T) {
	ops := []simt.BatchOp{
		{PC: 0, Class: isa.IAlu, Mask: 0xFF, Dep1: -1, Dep2: -1},                    // vectorizes (PC 0 is a multiple of 28? (0>>2)%7==0 -> fallback!)
		{PC: 4, Class: isa.Branch, Mask: 0xFF, TakenMask: 0x0F, Dep1: -1, Dep2: -1}, // divergent -> predicate
		{PC: 8, Class: isa.Load, Mask: 0x0F, Addrs: []uint64{1, 2, 3, 4, 0, 0, 0, 0}, Size: 8, Dep1: 0, Dep2: -1},
		{PC: 12, Class: isa.Atomic, Mask: 0x03, Addrs: []uint64{16, 24}, Size: 8, Dep1: -1, Dep2: -1},
		{PC: 16, Class: isa.Branch, Mask: 0xFF, TakenMask: 0xFF, Dep1: -1, Dep2: -1}, // uniform -> stays a branch
	}
	uops := ispcUops(ops)

	// Op 0: PC 0 hits the 1-in-7 integer fallback -> 8 scalar uops.
	if uops[0].ActiveLanes != 1 {
		t.Fatalf("expected scalar expansion for PC 0, got lanes=%d", uops[0].ActiveLanes)
	}
	// Find the predicate op (was the divergent branch).
	var pred, uni, atomics, gather int
	for _, u := range uops {
		switch {
		case u.PC == 4:
			if u.Class != isa.Simd {
				t.Fatalf("divergent branch lowered to %v, want predicate (simd)", u.Class)
			}
			pred++
		case u.PC == 16:
			if u.Class != isa.Branch {
				t.Fatalf("uniform branch lowered to %v", u.Class)
			}
			uni++
		case u.PC == 12:
			atomics++
			if u.ActiveLanes != 1 {
				t.Fatal("atomic not scalarized")
			}
		case u.PC == 8:
			gather++
			if len(u.Accesses) != 4 {
				t.Fatalf("gather has %d accesses, want one per active lane", len(u.Accesses))
			}
		}
	}
	if pred != 1 || uni != 1 || atomics != 2 || gather != 1 {
		t.Fatalf("lowering counts: pred=%d uni=%d atomics=%d gather=%d", pred, uni, atomics, gather)
	}
}

func TestISPCDepRemapping(t *testing.T) {
	ops := []simt.BatchOp{
		{PC: 20, Class: isa.Atomic, Mask: 0x03, Addrs: []uint64{8, 16}, Size: 8, Dep1: -1, Dep2: -1},
		{PC: 24, Class: isa.FAlu, Mask: 0x03, Dep1: 0, Dep2: -1},
	}
	uops := ispcUops(ops)
	// The atomic expands to 2 scalar uops; the FALU's dep must point at
	// the LAST of them (indices 0,1 -> dep 1).
	last := uops[len(uops)-1]
	if last.Class != isa.Simd || last.Dep1 != 1 {
		t.Fatalf("dep remap wrong: %+v", last)
	}
}
