package core

import (
	"fmt"
	"reflect"
	"testing"

	"simr/internal/obs"
	"simr/internal/sample"
	"simr/internal/simt"
	"simr/internal/uservices"
)

// TestSamplingDeterminism is the sampled-simulation contract, checked
// for every service, reconvergence/spin variant and both multi-unit
// architectures:
//
//   - Period 1 engages the sampler but times every unit, so the Result
//     must be identical — field for field — to the unsampled run, with
//     no Sampled estimate attached.
//   - Period 4 times a quarter of the units and extrapolates; the
//     requests/joule and mean-latency errors against the full run must
//     stay within twice the estimate's own reported confidence interval
//     plus a small floor: with only ~3 timed units the normal 1.96σ/√n
//     interval understates the true 95% band (the t quantile at two
//     degrees of freedom is 4.30), so the raw CI is too tight a gate.
func TestSamplingDeterminism(t *testing.T) {
	suite := uservices.NewSuite()
	variants := []struct {
		name   string
		mutate func(*Options)
	}{
		{"base", func(o *Options) {}},
		{"ipdom", func(o *Options) { o.UseIPDOM = true }},
		{"tightspin", func(o *Options) { o.Spin = &simt.SpinConfig{Window: 4, MinAtomics: 1, Grant: 4} }},
	}
	for _, svc := range suite.Services {
		reqs := genRequests(svc, 96, 7)
		for _, arch := range []Arch{ArchRPU, ArchSMT8} {
			for _, v := range variants {
				if v.name != "base" && arch != ArchRPU {
					continue // reconvergence/spin options only shape RPU runs
				}
				t.Run(fmt.Sprintf("%s/%v/%s", svc.Name, arch, v.name), func(t *testing.T) {
					mk := func(period int) *Result {
						opts := DefaultOptions()
						opts.BatchSize = 8 // 12 units: enough population to sample
						v.mutate(&opts)
						opts.Sample = sample.Config{Period: period, Warmup: 1}
						res, err := RunService(arch, svc, reqs, opts)
						if err != nil {
							t.Fatalf("period %d: %v", period, err)
						}
						return res
					}
					full := mk(0)
					p1 := mk(1)
					if p1.Sampled != nil {
						t.Fatal("period 1 attached a sampling estimate")
					}
					if !reflect.DeepEqual(full, p1) {
						t.Fatal("period 1 differs from the unsampled run")
					}

					p4 := mk(4)
					est := p4.Sampled
					if est == nil {
						t.Fatal("period 4 reported no sampling estimate")
					}
					if est.Timed >= est.Units || est.TimedRequests >= est.Requests {
						t.Fatalf("period 4 timed everything: %d/%d units, %d/%d requests",
							est.Timed, est.Units, est.TimedRequests, est.Requests)
					}
					checkErr := func(metric string, got, want, ci float64) {
						err := got/want - 1
						if err < 0 {
							err = -err
						}
						if bound := 2*ci + 0.05; err > bound {
							t.Errorf("%s: sampled %.4g vs full %.4g (%.1f%% error, CI bound %.1f%%)",
								metric, got, want, 100*err, 100*bound)
						}
					}
					checkErr("requests/joule", p4.ReqPerJoule(), full.ReqPerJoule(), est.MaxRelCI())
					cy := est.Metric("cycles")
					if cy.Name == "" {
						t.Fatal("no cycles metric in the estimate")
					}
					checkErr("mean latency", p4.AvgLatencySec(), full.AvgLatencySec(), cy.RelCI95)
				})
			}
		}
	}
}

// TestSamplingObsCounters: with the hub enabled, a sampled run
// populates the core.sample scope with a unit split consistent with
// the population and the configured period.
func TestSamplingObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	defer obs.Disable()

	suite := uservices.NewSuite()
	svc := suite.Get("memc")
	reqs := genRequests(svc, 96, 7)
	opts := DefaultOptions()
	opts.BatchSize = 8
	opts.Sample = sample.Config{Period: 4, Warmup: 1}
	if _, err := RunService(ArchRPU, svc, reqs, opts); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, sc := range snap.Scopes {
		if sc.Name != "core.sample" {
			continue
		}
		c := sc.Counters
		if c["runs"] != 1 {
			t.Fatalf("runs %d, want 1", c["runs"])
		}
		total := c["timed_units"] + c["warmed_units"] + c["skipped_units"]
		if c["timed_units"] < 1 || total != 12 {
			t.Fatalf("unit split %d timed + %d warmed + %d skipped, want 12 total",
				c["timed_units"], c["warmed_units"], c["skipped_units"])
		}
		if c["warm_ns"] <= 0 {
			t.Fatalf("warm time not recorded: %+v", c)
		}
		if sc.Gauges["period_hwm"] != 4 {
			t.Fatalf("period gauge %d, want 4", sc.Gauges["period_hwm"])
		}
		return
	}
	t.Fatal("core.sample scope missing from the snapshot")
}

// TestSamplingDefaultPinned checks the process-wide default path the
// -sample flag uses: a pinned default applies to runs without an
// explicit Options.Sample and an explicit config overrides it.
func TestSamplingDefaultPinned(t *testing.T) {
	suite := uservices.NewSuite()
	svc := suite.Get("memc")
	reqs := genRequests(svc, 96, 7)
	opts := DefaultOptions()
	opts.BatchSize = 8

	sample.SetDefault(sample.Config{Period: 4, Warmup: 1})
	defer sample.SetDefault(sample.Config{})
	res, err := RunService(ArchRPU, svc, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == nil {
		t.Fatal("pinned default not picked up")
	}

	opts.Sample = sample.Config{Period: 1, Warmup: 1} // explicit wins
	res, err = RunService(ArchRPU, svc, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled != nil {
		t.Fatal("explicit Period 1 did not override the pinned default")
	}
}
