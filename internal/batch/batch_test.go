package batch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simr/internal/uservices"
)

func mkReqs(n int) []uservices.Request {
	r := rand.New(rand.NewSource(9))
	apis := []string{"get", "set", "del"}
	out := make([]uservices.Request, n)
	for i := range out {
		out[i] = uservices.Request{
			Service:  "t",
			API:      apis[r.Intn(len(apis))],
			ArgBytes: 8 * (1 + r.Intn(64)),
			Seed:     int64(i),
		}
	}
	return out
}

func total(bs []Batch) int {
	n := 0
	for _, b := range bs {
		n += len(b.Requests)
	}
	return n
}

func TestFormConservesRequests(t *testing.T) {
	reqs := mkReqs(333)
	for _, p := range Policies {
		bs := Form(reqs, 32, p)
		if got := total(bs); got != len(reqs) {
			t.Fatalf("policy %v lost requests: %d vs %d", p, got, len(reqs))
		}
		for _, b := range bs {
			if len(b.Requests) == 0 || len(b.Requests) > 32 {
				t.Fatalf("policy %v batch size %d", p, len(b.Requests))
			}
		}
	}
}

func TestNaivePreservesArrivalOrder(t *testing.T) {
	reqs := mkReqs(100)
	bs := Form(reqs, 32, Naive)
	idx := 0
	for _, b := range bs {
		for _, r := range b.Requests {
			if r.Seed != int64(idx) {
				t.Fatalf("arrival order broken at %d", idx)
			}
			idx++
		}
	}
	if len(bs) != 4 { // 100/32 -> 3 full + 1 partial
		t.Fatalf("naive formed %d batches", len(bs))
	}
}

func TestPerAPIHomogeneous(t *testing.T) {
	reqs := mkReqs(200)
	for _, p := range []Policy{PerAPI, PerAPIArgSize} {
		for _, b := range Form(reqs, 32, p) {
			for _, r := range b.Requests {
				if r.API != b.Requests[0].API {
					t.Fatalf("policy %v mixed APIs in one batch", p)
				}
			}
		}
	}
}

func TestPerAPIArgSizeSorted(t *testing.T) {
	reqs := mkReqs(200)
	for _, b := range Form(reqs, 32, PerAPIArgSize) {
		for i := 1; i < len(b.Requests); i++ {
			if b.Requests[i].ArgBytes < b.Requests[i-1].ArgBytes {
				t.Fatal("argument sizes not sorted within batch")
			}
		}
	}
}

func TestPartialBatchesAtMostOnePerBucket(t *testing.T) {
	reqs := mkReqs(500)
	seen := map[string]int{}
	for _, b := range Form(reqs, 32, PerAPIArgSize) {
		if len(b.Requests) < 32 {
			seen[b.Requests[0].API]++
		}
	}
	for api, n := range seen {
		if n > 1 {
			t.Fatalf("API %q has %d partial batches", api, n)
		}
	}
}

func TestSplitLongLatency(t *testing.T) {
	reqs := mkReqs(32)
	for i := range reqs {
		reqs[i].Args = []uint64{uint64(i % 2)} // half blocked
	}
	b := Batch{Requests: reqs, Key: "k"}
	fast, slow := SplitLongLatency(b, func(r *uservices.Request) bool { return r.Args[0] == 0 })
	if len(fast.Requests)+len(slow.Requests) != 32 {
		t.Fatal("split lost requests")
	}
	if len(slow.Requests) != 16 {
		t.Fatalf("slow group %d", len(slow.Requests))
	}
	for _, r := range fast.Requests {
		if r.Args[0] == 0 {
			t.Fatal("blocked request in fast group")
		}
	}
}

func TestSizeBucketMonotone(t *testing.T) {
	prev := -1
	for _, ab := range []int{0, 63, 64, 127, 128, 255, 256, 511, 512, 4096} {
		b := sizeBucket(ab)
		if b < prev {
			t.Fatalf("bucket not monotone at %d", ab)
		}
		prev = b
	}
}

// Property: conservation and bounded batch size hold for any input.
func TestQuickFormInvariants(t *testing.T) {
	f := func(ns []uint8, size uint8) bool {
		sz := int(size%63) + 1
		reqs := make([]uservices.Request, len(ns))
		for i, n := range ns {
			reqs[i] = uservices.Request{API: string(rune('a' + n%3)), ArgBytes: int(n) * 8}
		}
		for _, p := range Policies {
			bs := Form(reqs, sz, p)
			if total(bs) != len(reqs) {
				return false
			}
			for _, b := range bs {
				if len(b.Requests) > sz {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsolateOutliers(t *testing.T) {
	reqs := make([]uservices.Request, 33)
	for i := range reqs {
		reqs[i].ArgBytes = 64
	}
	reqs[32].ArgBytes = 1 << 20 // the malicious long query
	normal, out := IsolateOutliers(reqs, 4)
	if len(out) != 1 || out[0].ArgBytes != 1<<20 {
		t.Fatalf("outliers %v", out)
	}
	if len(normal) != 32 {
		t.Fatalf("normal %d", len(normal))
	}
	// Uniform sizes: nothing isolated.
	n2, o2 := IsolateOutliers(normal, 4)
	if len(o2) != 0 || len(n2) != 32 {
		t.Fatal("uniform requests wrongly isolated")
	}
	// Empty input.
	n3, o3 := IsolateOutliers(nil, 4)
	if n3 != nil || o3 != nil {
		t.Fatal("empty input")
	}
}
