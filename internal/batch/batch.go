// Package batch implements the SIMR-aware HTTP/RPC batching server
// (paper §III-B1): requests are grouped into hardware batches by
// arrival order (naive), by API, or by API plus argument-size bucket,
// plus the system-level batch-splitting decision of §III-B5.
package batch

import (
	"sort"

	"simr/internal/uservices"
)

// Policy selects how the server groups requests into batches.
type Policy uint8

// Batching policies, in increasing order of SIMT awareness.
const (
	// Naive batches strictly by arrival order.
	Naive Policy = iota
	// PerAPI groups requests invoking the same procedure.
	PerAPI
	// PerAPIArgSize additionally buckets by argument size so loop trip
	// counts within a batch are similar.
	PerAPIArgSize
)

func (p Policy) String() string {
	switch p {
	case Naive:
		return "naive"
	case PerAPI:
		return "per-api"
	case PerAPIArgSize:
		return "per-api+arg-size"
	default:
		return "invalid"
	}
}

// Policies lists all policies in paper Figure 11 order.
var Policies = []Policy{Naive, PerAPI, PerAPIArgSize}

// Batch is one group of requests launched together on an RPU core.
type Batch struct {
	// Requests are the grouped requests (len <= the requested size).
	Requests []uservices.Request
	// Key describes the grouping bucket ("" for naive).
	Key string
}

// sizeBucket maps an argument size to a coarse bucket so that requests
// with similar work land together. Buckets are powers of two of the
// 64-byte base: <64, <128, <256, <512, >=512.
func sizeBucket(argBytes int) int {
	b := 0
	for s := 64; s < 1024; s *= 2 {
		if argBytes < s {
			return b
		}
		b++
	}
	return b
}

// bucketKey computes the grouping key of a request under the policy.
// PerAPIArgSize groups by API only: the argument-size dimension is
// handled by sorting the API queue (see Form), which leaves at most one
// partial batch per API instead of one per size bucket.
func bucketKey(p Policy, r *uservices.Request) string {
	switch p {
	case PerAPI, PerAPIArgSize:
		return r.API
	default:
		return ""
	}
}

// Form groups requests into batches of at most size under the policy.
// Within a bucket, arrival order is preserved (the server dequeues in
// FIFO order per bucket) except under PerAPIArgSize, which additionally
// orders each API's queue by argument size so neighbouring requests
// have similar loop trip counts; buckets drain in first-arrival order,
// and a trailing partial batch is emitted per bucket (the timeout
// case).
func Form(reqs []uservices.Request, size int, p Policy) []Batch {
	if size <= 0 {
		size = 32
	}
	type bucket struct {
		key   string
		first int
		reqs  []uservices.Request
	}
	order := map[string]*bucket{}
	var buckets []*bucket
	for i := range reqs {
		k := bucketKey(p, &reqs[i])
		b, ok := order[k]
		if !ok {
			b = &bucket{key: k, first: i}
			order[k] = b
			buckets = append(buckets, b)
		}
		b.reqs = append(b.reqs, reqs[i])
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].first < buckets[j].first })
	if p == PerAPIArgSize {
		for _, b := range buckets {
			rs := b.reqs
			sort.SliceStable(rs, func(i, j int) bool { return rs[i].ArgBytes < rs[j].ArgBytes })
		}
	}

	var out []Batch
	for _, b := range buckets {
		for off := 0; off < len(b.reqs); off += size {
			end := off + size
			if end > len(b.reqs) {
				end = len(b.reqs)
			}
			out = append(out, Batch{Requests: b.reqs[off:end], Key: b.key})
		}
	}
	return out
}

// SplitLongLatency partitions a batch into the fast-path group and the
// blocked group according to the predicate (e.g. the User service's
// cache-miss flag). It implements the §III-B5 batch split: the fast
// group continues past the reconvergence point and completes; the
// blocked group is context-switched out and re-batched at the storage
// tier. Either group may be empty.
func SplitLongLatency(b Batch, blocked func(*uservices.Request) bool) (fast, slow Batch) {
	fast.Key, slow.Key = b.Key+"/fast", b.Key+"/blocked"
	for i := range b.Requests {
		if blocked(&b.Requests[i]) {
			slow.Requests = append(slow.Requests, b.Requests[i])
		} else {
			fast.Requests = append(fast.Requests, b.Requests[i])
		}
	}
	return fast, slow
}

// IsolateOutliers implements the §VI-C QoS defence: a malicious or
// pathological request with a far-larger argument than its peers would
// drag a whole batch through its long loops (every other lane waits at
// the reconvergence point). Requests whose argument size exceeds
// factor × the median are quarantined for separate (smaller or scalar)
// batches.
func IsolateOutliers(reqs []uservices.Request, factor float64) (normal, outliers []uservices.Request) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if factor <= 1 {
		factor = 4
	}
	sizes := make([]int, len(reqs))
	for i := range reqs {
		sizes[i] = reqs[i].ArgBytes
	}
	sort.Ints(sizes)
	median := float64(sizes[len(sizes)/2])
	limit := median * factor
	for i := range reqs {
		if float64(reqs[i].ArgBytes) > limit {
			outliers = append(outliers, reqs[i])
		} else {
			normal = append(normal, reqs[i])
		}
	}
	return normal, outliers
}
