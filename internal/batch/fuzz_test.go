package batch

import (
	"testing"

	"simr/internal/uservices"
)

// FuzzForm checks request conservation and batch bounds for arbitrary
// API/size mixes under every policy.
func FuzzForm(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(32))
	f.Add([]byte{0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, size uint8) {
		sz := int(size%64) + 1
		reqs := make([]uservices.Request, len(raw))
		for i, b := range raw {
			reqs[i] = uservices.Request{
				API:      string(rune('a' + b%5)),
				ArgBytes: int(b)*3 + 1,
				Seed:     int64(i),
			}
		}
		for _, p := range Policies {
			bs := Form(reqs, sz, p)
			n := 0
			for _, b := range bs {
				if len(b.Requests) == 0 || len(b.Requests) > sz {
					t.Fatalf("policy %v: batch size %d of max %d", p, len(b.Requests), sz)
				}
				n += len(b.Requests)
			}
			if n != len(reqs) {
				t.Fatalf("policy %v lost requests: %d vs %d", p, n, len(reqs))
			}
		}
	})
}
