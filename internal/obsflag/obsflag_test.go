package obsflag

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"simr/internal/obs"
)

func TestDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Add(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	f.Setup()
	if obs.Enabled() {
		t.Fatal("hub enabled with neither flag given")
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.json")
	tPath := filepath.Join(dir, "t.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Add(fs)
	if err := fs.Parse([]string{"-metrics", mPath, "-trace", tPath}); err != nil {
		t.Fatal(err)
	}
	f.Setup()
	if !obs.Enabled() {
		t.Fatal("hub not enabled")
	}
	obs.Default().Scope("s").Counter("c").Add(3)
	obs.Trace().Complete("e", "cat", 0, 0, 1, 2)
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Fatal("hub still enabled after Finish")
	}

	var snap struct {
		Scopes []struct {
			Name     string           `json:"name"`
			Counters map[string]int64 `json:"counters"`
		} `json:"scopes"`
	}
	raw, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file invalid: %v", err)
	}
	if len(snap.Scopes) != 1 || snap.Scopes[0].Counters["c"] != 3 {
		t.Fatalf("metrics content wrong: %s", raw)
	}

	var evs []map[string]any
	raw, err = os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &evs); err != nil || len(evs) != 1 {
		t.Fatalf("trace file invalid: %v %s", err, raw)
	}
}
