// Package obsflag wires the shared observability flag pair into the
// cmd drivers, next to internal/prof's -cpuprofile/-memprofile
// plumbing: -metrics writes a deterministic obs.Registry snapshot and
// -trace writes a Chrome-trace (chrome://tracing / Perfetto) JSON
// timeline on exit. With neither flag given the global hub stays
// disabled, every instrument resolves to a nil no-op, and study output
// stays byte-identical.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"os"

	"simr/internal/obs"
)

// Flags holds the registered flag values for one driver.
type Flags struct {
	metrics *string
	trace   *string

	reg  *obs.Registry
	sink *obs.TraceSink
}

// Add registers -metrics and -trace on fs (flag.CommandLine for the
// drivers). Call before flag.Parse.
func Add(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.metrics = fs.String("metrics", "", "write a metrics-registry JSON snapshot to this file on exit")
	f.trace = fs.String("trace", "", "write a Chrome-trace (Perfetto) JSON timeline to this file on exit")
	return f
}

// Setup installs the global obs hub when either flag was given. Call
// once, after flag.Parse and before the instrumented work runs.
func (f *Flags) Setup() {
	if *f.metrics == "" && *f.trace == "" {
		return
	}
	if *f.metrics != "" {
		f.reg = obs.NewRegistry()
	}
	if *f.trace != "" {
		f.sink = obs.NewTraceSink()
	}
	obs.Enable(f.reg, f.sink)
}

// Finish writes the requested files and disables the hub. Returns the
// first write error; Close is the log-and-continue variant the drivers
// defer.
func (f *Flags) Finish() error {
	if f.reg == nil && f.sink == nil {
		return nil
	}
	obs.Disable()
	var firstErr error
	if f.reg != nil {
		if err := writeTo(*f.metrics, f.reg.Snapshot().WriteJSON); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if f.sink != nil {
		if err := writeTo(*f.trace, f.sink.WriteJSON); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.reg, f.sink = nil, nil
	return firstErr
}

// Close runs Finish and reports any error on stderr — the deferred
// form for main functions.
func (f *Flags) Close() {
	if err := f.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "obsflag: %v\n", err)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
