package isa

import "fmt"

// DefaultMaxOps bounds a single request's dynamic instruction count.
// Real microservice requests execute 10^3..10^5 instructions; the bound
// exists to turn a buggy non-terminating program into an error.
const DefaultMaxOps = 2_000_000

type frame struct {
	prog *Program
	ret  int // block ID in prog to resume at
}

// Execute runs the linked program for one request context and returns
// the dynamic scalar trace. ctx.SP is initialised from ctx.StackBase.
// maxOps <= 0 selects DefaultMaxOps.
func Execute(top *Program, ctx *Ctx, maxOps int) ([]TraceOp, error) {
	hint := int(top.traceLen.Load()) + 64
	if hint < 1024 {
		hint = 1024
	}
	return ExecuteBuf(top, ctx, maxOps, make([]TraceOp, 0, hint))
}

// ExecuteBuf is Execute appending into buf's backing array (from
// buf[:0]), letting callers that do not retain the trace reuse one
// buffer across requests. The returned slice aliases buf when it had
// capacity; it is NOT safe to reuse buf until the caller is done with
// the trace.
func ExecuteBuf(top *Program, ctx *Ctx, maxOps int, buf []TraceOp) ([]TraceOp, error) {
	if !top.linked {
		return nil, fmt.Errorf("isa: program %q executed before Link", top.Name)
	}
	if maxOps <= 0 {
		maxOps = DefaultMaxOps
	}
	if need := top.MaxSlots(); len(ctx.Slots) < need {
		ctx.Slots = make([]uint64, need)
	}
	ctx.SP = ctx.StackBase

	ops := buf[:0]
	emit := func(in *Instr) error {
		if len(ops) >= maxOps {
			return fmt.Errorf("isa: program %q exceeded %d dynamic instructions", top.Name, maxOps)
		}
		if in.Eff != nil {
			in.Eff(ctx)
		}
		op := TraceOp{PC: in.PC, SP: ctx.StackBase - ctx.SP, Class: in.Class, Size: in.Size, Dep1: -1, Dep2: -1}
		if in.Addr != nil {
			op.Addr = in.Addr(ctx)
		}
		idx := len(ops)
		if in.Dep1 > 0 && idx >= int(in.Dep1) {
			op.Dep1 = int32(idx - int(in.Dep1))
		}
		if in.Dep2 > 0 && idx >= int(in.Dep2) {
			op.Dep2 = int32(idx - int(in.Dep2))
		}
		ops = append(ops, op)
		return nil
	}
	// emitCtl appends a control-flow instruction (branch/jump/call/ret).
	emitCtl := func(pc uint64, class Class, taken bool) error {
		if len(ops) >= maxOps {
			return fmt.Errorf("isa: program %q exceeded %d dynamic instructions", top.Name, maxOps)
		}
		op := TraceOp{PC: pc, SP: ctx.StackBase - ctx.SP, Class: class, Taken: taken, Dep1: -1, Dep2: -1}
		if class == Branch && len(ops) > 0 {
			// A conditional branch consumes the value produced just
			// before it (compare-and-branch idiom).
			op.Dep1 = int32(len(ops) - 1)
		}
		ops = append(ops, op)
		return nil
	}

	prog := top
	blk := prog.Blocks[prog.Entry]
	var stack []frame

	for {
		for i := range blk.Instrs {
			if err := emit(&blk.Instrs[i]); err != nil {
				return nil, err
			}
		}
		t := &blk.Term
		if t.Eff != nil {
			t.Eff(ctx)
		}
		switch t.Kind {
		case TermFall:
			blk = prog.Blocks[t.Fall]
		case TermBr:
			taken := t.Cond(ctx)
			if err := emitCtl(t.PC, Branch, taken); err != nil {
				return nil, err
			}
			if taken {
				blk = prog.Blocks[t.Taken]
			} else {
				blk = prog.Blocks[t.Fall]
			}
		case TermJmp:
			if err := emitCtl(t.PC, Jump, true); err != nil {
				return nil, err
			}
			blk = prog.Blocks[t.Taken]
		case TermCall:
			if err := emitCtl(t.PC, CallOp, true); err != nil {
				return nil, err
			}
			stack = append(stack, frame{prog: prog, ret: t.Fall})
			ctx.SP -= t.Callee.FrameBytes
			prog = t.Callee
			blk = prog.Blocks[prog.Entry]
		case TermRet:
			if err := emitCtl(t.PC, RetOp, true); err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("isa: %q returned with empty call stack", prog.Name)
			}
			ctx.SP += prog.FrameBytes
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			prog = f.prog
			blk = prog.Blocks[f.ret]
		case TermEnd:
			if len(stack) != 0 {
				return nil, fmt.Errorf("isa: %q ended with %d live frames", prog.Name, len(stack))
			}
			top.traceLen.Store(int64(len(ops)))
			return ops, nil
		default:
			return nil, fmt.Errorf("isa: %q block %d has invalid terminator", prog.Name, blk.ID)
		}
	}
}
