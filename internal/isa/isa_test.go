package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type bumpHeap struct{ next uint64 }

func (h *bumpHeap) Alloc(n int) uint64 {
	b := h.next
	h.next += uint64(n)
	return b
}

func newCtx(args ...uint64) *Ctx {
	return &Ctx{
		Arg:       args,
		StackBase: 1 << 30,
		Heap:      &bumpHeap{next: 1 << 20},
		Rand:      rand.New(rand.NewSource(1)),
	}
}

func TestBuildAssignsMonotonicPCs(t *testing.T) {
	b := NewProgram("t")
	b.Ops(IAlu, 3)
	b.If(func(c *Ctx) bool { return c.Arg0(0) > 0 },
		func(b *Builder) { b.Ops(IAlu, 2) },
		func(b *Builder) { b.Ops(FAlu, 1) })
	b.LoopN(2, func(b *Builder) { b.Ops(IAlu, 1) })
	p := b.Build()

	last := int64(-1)
	for _, blk := range p.Blocks {
		for _, in := range blk.Instrs {
			if int64(in.PC) <= last {
				t.Fatalf("non-monotonic PC %d after %d", in.PC, last)
			}
			last = int64(in.PC)
		}
		if blk.Term.Kind == TermBr || blk.Term.Kind == TermJmp {
			if int64(blk.Term.PC) <= last {
				t.Fatalf("terminator PC %d after %d", blk.Term.PC, last)
			}
			last = int64(blk.Term.PC)
		}
	}
	if p.Size() == 0 {
		t.Fatal("zero program size")
	}
}

func TestReconvPCIsAboveBranchPaths(t *testing.T) {
	b := NewProgram("t")
	b.If(func(c *Ctx) bool { return true },
		func(b *Builder) { b.Ops(IAlu, 5) },
		func(b *Builder) { b.Ops(IAlu, 3) })
	b.Ops(IAlu, 1)
	p := b.Build()
	if _, err := Link(0x1000, p); err != nil {
		t.Fatal(err)
	}
	rec := p.BranchReconv()
	if len(rec) != 1 {
		t.Fatalf("want 1 branch, got %d", len(rec))
	}
	for brPC, rPC := range rec {
		if rPC <= brPC {
			t.Fatalf("reconv pc %#x not above branch %#x", rPC, brPC)
		}
	}
}

func TestExecuteStraightLine(t *testing.T) {
	b := NewProgram("t")
	b.Ops(IAlu, 4)
	b.StackStore(16)
	b.StackLoad(16)
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	ops, err := Execute(p, newCtx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 6 {
		t.Fatalf("want 6 ops, got %d", len(ops))
	}
	if ops[4].Class != Store || ops[5].Class != Load {
		t.Fatalf("unexpected classes %v %v", ops[4].Class, ops[5].Class)
	}
	if ops[4].Addr != ops[5].Addr {
		t.Fatalf("stack store/load addresses differ: %#x %#x", ops[4].Addr, ops[5].Addr)
	}
}

func TestExecuteBranchBothSides(t *testing.T) {
	build := func() *Program {
		b := NewProgram("t")
		b.If(func(c *Ctx) bool { return c.Arg0(0) == 1 },
			func(b *Builder) { b.Ops(IAlu, 7) },
			func(b *Builder) { b.Ops(FAlu, 2) })
		return b.Build()
	}
	p := build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}

	taken, err := Execute(p, newCtx(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	fall, err := Execute(p, newCtx(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	countClass := func(ops []TraceOp, c Class) int {
		n := 0
		for _, op := range ops {
			if op.Class == c {
				n++
			}
		}
		return n
	}
	if countClass(taken, IAlu) != 7 || countClass(taken, FAlu) != 0 {
		t.Fatalf("taken path wrong: %d ialu %d falu", countClass(taken, IAlu), countClass(taken, FAlu))
	}
	if countClass(fall, FAlu) != 2 {
		t.Fatalf("fall path wrong: %d falu", countClass(fall, FAlu))
	}
	if !taken[0].Taken || fall[0].Taken {
		t.Fatalf("branch outcomes wrong: %v %v", taken[0].Taken, fall[0].Taken)
	}
}

func TestExecuteLoopCount(t *testing.T) {
	b := NewProgram("t")
	b.Loop(func(c *Ctx) int { return int(c.Arg0(1)) }, func(b *Builder) {
		b.Op(FAlu)
	})
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 5, 33} {
		ops, err := Execute(p, newCtx(0, uint64(n)), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, op := range ops {
			if op.Class == FAlu {
				got++
			}
		}
		if got != n {
			t.Fatalf("loop count %d: got %d body executions", n, got)
		}
	}
}

func TestCallPushesAndPopsStack(t *testing.T) {
	fb := NewFunc("callee")
	fb.Ops(IAlu, 2)
	callee := fb.Build()

	b := NewProgram("t")
	b.Ops(IAlu, 1)
	b.Call(callee)
	b.Ops(IAlu, 1)
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	ctx := newCtx()
	ops, err := Execute(p, ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.SP != ctx.StackBase {
		t.Fatalf("SP not restored: %#x vs %#x", ctx.SP, ctx.StackBase)
	}
	var sawCall, sawRet, sawPush, sawPop bool
	var callSP uint64
	for _, op := range ops {
		switch op.Class {
		case CallOp:
			sawCall = true
			callSP = op.SP
		case RetOp:
			sawRet = true
			if op.SP <= callSP {
				t.Fatalf("ret depth %#x not below call depth %#x", op.SP, callSP)
			}
		case Store:
			sawPush = true
		case Load:
			sawPop = true
		}
	}
	if !sawCall || !sawRet || !sawPush || !sawPop {
		t.Fatalf("missing call machinery: call=%v ret=%v push=%v pop=%v", sawCall, sawRet, sawPush, sawPop)
	}
	// Return-address push and pop must hit the same slot.
	var pushAddr, popAddr uint64
	for _, op := range ops {
		if op.Class == Store && pushAddr == 0 {
			pushAddr = op.Addr
		}
		if op.Class == Load {
			popAddr = op.Addr
		}
	}
	if pushAddr != popAddr {
		t.Fatalf("push addr %#x != pop addr %#x", pushAddr, popAddr)
	}
}

func TestDependencyIndicesValid(t *testing.T) {
	b := NewProgram("t")
	b.OpsChain(IAlu, 10, 1)
	b.LoopN(3, func(b *Builder) { b.OpsChain(FAlu, 2, 2) })
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	ops, err := Execute(p, newCtx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if op.Dep1 >= int32(i) || op.Dep2 >= int32(i) {
			t.Fatalf("op %d has forward dep %d/%d", i, op.Dep1, op.Dep2)
		}
	}
}

func TestLinkTwiceFails(t *testing.T) {
	b := NewProgram("t")
	b.Ops(IAlu, 1)
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Link(0x1000, p); err == nil {
		t.Fatal("expected error on double link")
	}
}

func TestMaxOpsGuard(t *testing.T) {
	b := NewProgram("t")
	b.LoopN(1000, func(b *Builder) { b.Ops(IAlu, 10) })
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(p, newCtx(), 100); err == nil {
		t.Fatal("expected max-ops error")
	}
}

// Property: for any pair of loop trip counts, executing the same
// program yields traces whose non-loop prefix and suffix match and
// whose SP fields return to the stack base.
func TestQuickLoopTraceShape(t *testing.T) {
	b := NewProgram("t")
	b.Ops(IAlu, 2)
	b.Loop(func(c *Ctx) int { return int(c.Arg0(1)) }, func(b *Builder) {
		b.Ops(IAlu, 3)
		b.StackStore(24)
	})
	b.Ops(Simd, 1)
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}

	f := func(n uint8) bool {
		trips := int(n % 50)
		ops, err := Execute(p, newCtx(0, uint64(trips)), 0)
		if err != nil {
			return false
		}
		stores := 0
		for _, op := range ops {
			if op.Class == Store {
				stores++
			}
			if op.SP != 0 {
				return false // no calls: depth must stay zero
			}
		}
		return stores == trips
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
