// Package isa defines the compact instruction set, structured program
// builder and per-request interpreter that stand in for the paper's
// x86 binaries and PIN-based SIMTec tracer. Microservices are expressed
// as control-flow graphs whose branch conditions and memory addresses
// are functions of the per-request context, so executing a program for
// one request yields a dynamic scalar trace exactly as SIMTec produced
// for one CPU thread.
package isa

// Class is the broad functional class of an instruction. The timing and
// energy models key their per-instruction costs off this class, mirroring
// how the paper's Accel-Sim frontend broke x86 CISC ops into RISC-like
// micro-ops with separate loads and stores.
type Class uint8

// Instruction classes.
const (
	IAlu    Class = iota // scalar integer ALU op
	FAlu                 // scalar floating point op
	Simd                 // vector (SSE/AVX-like) op
	Branch               // conditional branch
	Jump                 // unconditional jump
	CallOp               // procedure call
	RetOp                // procedure return
	Load                 // memory load
	Store                // memory store
	Atomic               // atomic read-modify-write
	Fence                // memory fence
	Syscall              // system call boundary (network/storage I/O marker)

	NumClasses // number of classes; keep last
)

var classNames = [NumClasses]string{
	"ialu", "falu", "simd", "branch", "jump", "call", "ret",
	"load", "store", "atomic", "fence", "syscall",
}

// String returns the lower-case mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "invalid"
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store || c == Atomic }

// IsCtl reports whether the class redirects control flow.
func (c Class) IsCtl() bool { return c == Branch || c == Jump || c == CallOp || c == RetOp }

// InstrBytes is the fixed encoded size of every instruction. PCs advance
// by this amount; the MinPC reconvergence heuristic relies on later
// basic blocks having strictly larger PCs.
const InstrBytes = 4
