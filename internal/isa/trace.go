package isa

// TraceOp is one dynamic instruction in a scalar per-request trace —
// the unit SIMTec emitted per CPU thread. The SIMT lock-step executor
// merges per-thread TraceOp streams by (SP, PC); the timing model
// consumes the merged stream.
type TraceOp struct {
	// PC is the instruction's global program counter.
	PC uint64
	// SP is the stack DEPTH (StackBase - stack pointer) when the
	// instruction executed. Depth rather than the raw pointer is
	// recorded so that threads with distinct stack segments compare
	// equal at the same call site; the MinSP reconvergence policy
	// prioritises the deepest call (largest depth).
	SP uint64
	// Addr is the accessed virtual address for memory classes.
	Addr uint64
	// Dep1 and Dep2 are absolute dynamic indices of producer
	// instructions (-1 when unused).
	Dep1, Dep2 int32
	// Class is the functional class.
	Class Class
	// Size is the memory access size in bytes.
	Size uint8
	// Taken records a conditional branch's outcome.
	Taken bool
}

// TraceStats summarises a scalar trace for reporting and tests.
type TraceStats struct {
	Total    int
	ByClass  [NumClasses]int
	StackOps int
	HeapOps  int
}

// Summarize computes class counts for a trace. isStack classifies
// addresses into the stack segment (supplied by internal/alloc).
func Summarize(ops []TraceOp, isStack func(uint64) bool) TraceStats {
	var s TraceStats
	s.Total = len(ops)
	for i := range ops {
		op := &ops[i]
		s.ByClass[op.Class]++
		if op.Class.IsMem() {
			if isStack != nil && isStack(op.Addr) {
				s.StackOps++
			} else {
				s.HeapOps++
			}
		}
	}
	return s
}
