package isa

import "fmt"

// Builder assembles a Program with structured control flow. Blocks are
// laid out in creation order and PCs are assigned in a final pass, which
// guarantees the property the MinPC reconvergence heuristic relies on:
// join points sit at higher addresses than the divergent paths they
// dominate (Collins et al. report this holds for almost all compiled
// code; our builder makes it hold by construction).
type Builder struct {
	p     *Program
	cur   *Block
	built bool
}

// NewProgram starts building a top-level service program (terminates the
// trace when it ends) with the default 128-byte stack frame.
func NewProgram(name string) *Builder {
	p := &Program{Name: name, FrameBytes: 128}
	b := &Builder{p: p}
	b.cur = b.newBlock()
	p.Entry = b.cur.ID
	return b
}

// NewFunc starts building a callee function: its final block pops the
// return address and returns to the caller.
func NewFunc(name string) *Builder {
	b := NewProgram(name)
	b.p.isFunc = true
	return b
}

// SetFrameBytes overrides the stack frame size charged on call.
func (b *Builder) SetFrameBytes(n uint64) { b.p.FrameBytes = n }

func (b *Builder) newBlock() *Block {
	blk := &Block{ID: len(b.p.Blocks)}
	b.p.Blocks = append(b.p.Blocks, blk)
	return blk
}

// Slot allocates a scratch context slot (loop counter, pointer, ...).
func (b *Builder) Slot() int {
	s := b.p.NumSlots
	b.p.NumSlots++
	return s
}

func (b *Builder) emit(in Instr) {
	if b.built {
		panic("isa: emit after Build")
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// Op emits one instruction of the given class with no dependencies.
func (b *Builder) Op(c Class) { b.emit(Instr{Class: c}) }

// Ops emits n independent instructions of the given class.
func (b *Builder) Ops(c Class, n int) {
	for i := 0; i < n; i++ {
		b.emit(Instr{Class: c})
	}
}

// OpsChain emits n instructions of class c forming a serial dependency
// chain: the first op starts the chain fresh (no dependency on earlier
// code) and each subsequent op depends on the dist-previous dynamic
// instruction; dist=1 produces a dense chain (e.g. an accumulation).
func (b *Builder) OpsChain(c Class, n int, dist uint16) {
	for i := 0; i < n; i++ {
		if i == 0 {
			b.emit(Instr{Class: c})
		} else {
			b.emit(Instr{Class: c, Dep1: dist})
		}
	}
}

// OpDeps emits one instruction with explicit backward dependency
// distances (0 = unused).
func (b *Builder) OpDeps(c Class, dep1, dep2 uint16) {
	b.emit(Instr{Class: c, Dep1: dep1, Dep2: dep2})
}

// Eff emits an integer op whose side effect f runs at trace time. Used
// to update request-level scratch state (counters, pointers).
func (b *Builder) Eff(f func(*Ctx)) { b.emit(Instr{Class: IAlu, Eff: f}) }

// LoadAt emits a load of size bytes from the address computed by fn.
func (b *Builder) LoadAt(size uint8, fn AddrFn, deps ...uint16) {
	b.emit(memInstr(Load, size, fn, deps))
}

// StoreAt emits a store of size bytes to the address computed by fn.
func (b *Builder) StoreAt(size uint8, fn AddrFn, deps ...uint16) {
	b.emit(memInstr(Store, size, fn, deps))
}

// AtomicAt emits an atomic RMW on the address computed by fn.
func (b *Builder) AtomicAt(size uint8, fn AddrFn, deps ...uint16) {
	b.emit(memInstr(Atomic, size, fn, deps))
}

func memInstr(c Class, size uint8, fn AddrFn, deps []uint16) Instr {
	in := Instr{Class: c, Size: size, Addr: fn}
	if len(deps) > 0 {
		in.Dep1 = deps[0]
	}
	if len(deps) > 1 {
		in.Dep2 = deps[1]
	}
	return in
}

// StackLoad emits an 8-byte load from SP+off (reading a local variable
// or spilled argument).
func (b *Builder) StackLoad(off uint64, deps ...uint16) {
	b.LoadAt(8, func(c *Ctx) uint64 { return c.SP + off }, deps...)
}

// StackStore emits an 8-byte store to SP+off.
func (b *Builder) StackStore(off uint64, deps ...uint16) {
	b.StoreAt(8, func(c *Ctx) uint64 { return c.SP + off }, deps...)
}

// AllocTo emits a library-call allocation: at trace time the thread's
// heap allocator reserves size(ctx) bytes and the base address is stored
// in slot.
func (b *Builder) AllocTo(slot int, size func(*Ctx) int) {
	b.emit(Instr{Class: IAlu, Eff: func(c *Ctx) {
		c.Slots[slot] = c.Heap.Alloc(size(c))
	}})
}

// If emits a two-way conditional. cond(ctx)==true executes then, else
// executes els (els may be nil). Layout: cond / then / else / join.
func (b *Builder) If(cond func(*Ctx) bool, then, els func(*Builder)) {
	parent := b.cur

	thenB := b.newBlock()
	b.cur = thenB
	if then != nil {
		then(b)
	}
	thenEnd := b.cur

	elseB := b.newBlock()
	b.cur = elseB
	if els != nil {
		els(b)
	}
	elseEnd := b.cur

	join := b.newBlock()
	parent.Term = Term{Kind: TermBr, Cond: cond, Taken: thenB.ID, Fall: elseB.ID, Reconv: join.ID}
	thenEnd.Term = Term{Kind: TermJmp, Taken: join.ID}
	elseEnd.Term = Term{Kind: TermFall, Fall: join.ID}
	b.cur = join
}

// Loop emits a counted loop: body runs count(ctx) times with a fresh
// induction slot. Layout: init / header / body / latch-jump / exit, so
// the exit (reconvergence) block has the highest PC.
func (b *Builder) Loop(count func(*Ctx) int, body func(*Builder)) {
	idx := b.Slot()
	b.Eff(func(c *Ctx) { c.Slots[idx] = 0 })

	parent := b.cur
	header := b.newBlock()
	parent.Term = Term{Kind: TermFall, Fall: header.ID}

	bodyB := b.newBlock()
	b.cur = bodyB
	if body != nil {
		body(b)
	}
	bodyEnd := b.cur
	bodyEnd.Term = Term{
		Kind:  TermJmp,
		Taken: header.ID,
		Eff:   func(c *Ctx) { c.Slots[idx]++ },
	}

	exit := b.newBlock()
	header.Term = Term{
		Kind:   TermBr,
		Cond:   func(c *Ctx) bool { return c.Slots[idx] < uint64(count(c)) },
		Taken:  bodyB.ID,
		Fall:   exit.ID,
		Reconv: exit.ID,
	}
	b.cur = exit
}

// LoopIdx is Loop but passes the induction slot index to body so bodies
// can address per-iteration data.
func (b *Builder) LoopIdx(count func(*Ctx) int, body func(b *Builder, idxSlot int)) {
	idx := b.Slot()
	b.Eff(func(c *Ctx) { c.Slots[idx] = 0 })

	parent := b.cur
	header := b.newBlock()
	parent.Term = Term{Kind: TermFall, Fall: header.ID}

	bodyB := b.newBlock()
	b.cur = bodyB
	if body != nil {
		body(b, idx)
	}
	bodyEnd := b.cur
	bodyEnd.Term = Term{
		Kind:  TermJmp,
		Taken: header.ID,
		Eff:   func(c *Ctx) { c.Slots[idx]++ },
	}

	exit := b.newBlock()
	header.Term = Term{
		Kind:   TermBr,
		Cond:   func(c *Ctx) bool { return c.Slots[idx] < uint64(count(c)) },
		Taken:  bodyB.ID,
		Fall:   exit.ID,
		Reconv: exit.ID,
	}
	b.cur = exit
}

// LoopN emits a loop with a request-independent trip count.
func (b *Builder) LoopN(n int, body func(*Builder)) {
	b.Loop(func(*Ctx) int { return n }, body)
}

// While emits a condition-controlled loop (e.g. spin on a lock or probe
// a hash chain).
func (b *Builder) While(cond func(*Ctx) bool, body func(*Builder)) {
	parent := b.cur
	header := b.newBlock()
	parent.Term = Term{Kind: TermFall, Fall: header.ID}

	bodyB := b.newBlock()
	b.cur = bodyB
	if body != nil {
		body(b)
	}
	bodyEnd := b.cur
	bodyEnd.Term = Term{Kind: TermJmp, Taken: header.ID}

	exit := b.newBlock()
	header.Term = Term{Kind: TermBr, Cond: cond, Taken: bodyB.ID, Fall: exit.ID, Reconv: exit.ID}
	b.cur = exit
}

// Call emits a procedure call: the return address is pushed on the
// stack (generating the stack traffic the paper attributes to call-heavy
// middle tiers), the callee runs in a fresh frame and execution resumes
// in a new block.
func (b *Builder) Call(callee *Program) {
	if !callee.isFunc {
		panic(fmt.Sprintf("isa: Call target %q was not built with NewFunc", callee.Name))
	}
	b.StoreAt(8, func(c *Ctx) uint64 { return c.SP - 8 })
	parent := b.cur
	ret := b.newBlock()
	parent.Term = Term{Kind: TermCall, Callee: callee, Fall: ret.ID}
	b.cur = ret

	for _, c := range b.p.callees {
		if c == callee {
			return
		}
	}
	b.p.callees = append(b.p.callees, callee)
}

// SyscallOp emits a syscall-class instruction (network receive/send,
// epoll, storage request markers).
func (b *Builder) SyscallOp() { b.Op(Syscall) }

// Build finalises the program: the last open block is terminated (with
// a return-address pop + TermRet for functions, TermEnd for services),
// PCs are assigned in layout order and the structure is validated.
func (b *Builder) Build() *Program {
	if b.built {
		panic("isa: Build called twice")
	}
	b.built = true
	p := b.p

	if p.isFunc {
		frame := p.FrameBytes
		b.built = false
		b.LoadAt(8, func(c *Ctx) uint64 { return c.SP + frame - 8 })
		b.built = true
		b.cur.Term = Term{Kind: TermRet}
	} else {
		b.cur.Term = Term{Kind: TermEnd}
	}

	pc := uint64(0)
	for _, blk := range p.Blocks {
		blk.PC = pc
		for i := range blk.Instrs {
			blk.Instrs[i].PC = pc
			pc += InstrBytes
		}
		switch blk.Term.Kind {
		case TermBr, TermJmp, TermCall, TermRet:
			blk.Term.PC = pc
			pc += InstrBytes
		case TermFall, TermEnd:
			// no encoded instruction
		default:
			panic(fmt.Sprintf("isa: block %d in %q has no terminator", blk.ID, p.Name))
		}
	}
	p.size = pc

	for _, blk := range p.Blocks {
		t := blk.Term
		check := func(id int, what string) {
			if id < 0 || id >= len(p.Blocks) {
				panic(fmt.Sprintf("isa: %q block %d %s target %d out of range", p.Name, blk.ID, what, id))
			}
		}
		switch t.Kind {
		case TermFall:
			check(t.Fall, "fall")
		case TermBr:
			check(t.Taken, "taken")
			check(t.Fall, "fall")
			if t.Cond == nil {
				panic(fmt.Sprintf("isa: %q block %d branch without condition", p.Name, blk.ID))
			}
		case TermJmp:
			check(t.Taken, "jump")
		case TermCall:
			check(t.Fall, "return")
			if t.Callee == nil {
				panic(fmt.Sprintf("isa: %q block %d call without callee", p.Name, blk.ID))
			}
		}
	}
	return p
}
