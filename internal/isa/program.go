package isa

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Heap is the per-thread dynamic memory interface a program uses for
// `new`/`malloc`-style allocations. Implementations live in internal/alloc
// (the SIMR-agnostic CPU allocator and the SIMR-aware allocator).
type Heap interface {
	// Alloc reserves n bytes and returns the virtual start address.
	Alloc(n int) uint64
}

// Ctx is the per-thread (per-request) execution context. One Ctx is
// created for each request before tracing; closures inside the static
// program read and write it to realise request-dependent behaviour.
type Ctx struct {
	// Slots are scratch registers allocated by the Builder at program
	// construction time (loop counters, heap base pointers, ...).
	Slots []uint64
	// Arg carries the request encoded as integers by the workload
	// (API selector, key/query lengths, hash seeds, ...).
	Arg []uint64
	// SP is the current stack pointer; stacks grow downward.
	SP uint64
	// StackBase is the top of the thread's stack segment; SP starts here.
	StackBase uint64
	// Heap performs dynamic allocations for this thread.
	Heap Heap
	// Rand supplies per-request deterministic randomness.
	Rand *rand.Rand
	// TID is the thread's index within its batch.
	TID int
}

// Arg0 returns Arg[i] or 0 when absent; keeps workload closures concise.
func (c *Ctx) Arg0(i int) uint64 {
	if i < len(c.Arg) {
		return c.Arg[i]
	}
	return 0
}

// AddrFn computes a memory operand's virtual address for one thread.
type AddrFn func(*Ctx) uint64

// Instr is one static instruction. PC is assigned at build time and
// offset at link time.
type Instr struct {
	PC    uint64
	Class Class
	// Addr computes the access address; nil for non-memory classes.
	Addr AddrFn
	// Size is the access size in bytes for memory classes.
	Size uint8
	// Dep1 and Dep2 are backward dependency distances in dynamic
	// instruction order (0 = no dependency). They drive the out-of-order
	// timing model's dataflow scheduling.
	Dep1, Dep2 uint16
	// Eff is an optional side effect run when the instruction executes
	// (e.g. initialising a loop counter or recording a heap allocation).
	Eff func(*Ctx)
}

// TermKind discriminates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	TermFall TermKind = iota // fall through to Fall block, no instruction
	TermBr                   // conditional branch instruction
	TermJmp                  // unconditional jump instruction
	TermCall                 // call instruction into Callee, resume at Fall
	TermRet                  // return instruction to caller
	TermEnd                  // end of service (top-level program only)
)

// Term ends a basic block.
type Term struct {
	Kind TermKind
	// PC of the terminator instruction (TermBr/TermJmp/TermCall/TermRet).
	PC uint64
	// Cond decides a TermBr: true takes Taken, false takes Fall.
	Cond func(*Ctx) bool
	// Taken and Fall are successor block IDs within the same program.
	Taken, Fall int
	// Reconv is the immediate post-dominator block ID of a TermBr —
	// the join block for If, the exit block for loops. The structured
	// builder knows it exactly, so the "ideal stack-based IPDOM"
	// executor needs no separate dominator analysis.
	Reconv int
	// Callee is the called program for TermCall.
	Callee *Program
	// Eff is an optional side effect run before Cond is evaluated
	// (e.g. a loop latch incrementing its induction variable).
	Eff func(*Ctx)
}

// Block is a basic block: straight-line instructions plus a terminator.
type Block struct {
	ID     int
	PC     uint64 // PC of the first instruction
	Instrs []Instr
	Term   Term
}

// Program is a linked control-flow graph for one service entry point or
// one callee function.
type Program struct {
	Name   string
	Blocks []*Block
	Entry  int
	// FrameBytes is the stack frame size charged on call.
	FrameBytes uint64
	// NumSlots is the Ctx scratch slot count required to execute.
	NumSlots int
	// Base is the global PC of the program's first instruction,
	// assigned by Link.
	Base uint64
	// size is the total encoded bytes, set at build time.
	size uint64
	// callees are the programs reachable through TermCall, recorded for
	// linking.
	callees []*Program
	linked  bool
	isFunc  bool
	// traceLen remembers the last dynamic trace length so Execute can
	// size its output buffer up front (requests of one program have
	// similar lengths; a wrong hint only costs a regrow, never changes
	// the trace).
	traceLen atomic.Int64
}

// Size returns the program's encoded size in bytes.
func (p *Program) Size() uint64 { return p.size }

// Linked reports whether global PCs have been assigned.
func (p *Program) Linked() bool { return p.linked }

// Link assigns disjoint global PC ranges to each program and,
// transitively, its callees. Programs already linked in the same pass
// are skipped; re-linking an already linked program is an error because
// closures in other structures may have captured its PCs.
func Link(base uint64, progs ...*Program) (next uint64, err error) {
	seen := map[*Program]bool{}
	var link func(p *Program) error
	link = func(p *Program) error {
		if seen[p] {
			return nil
		}
		if p.linked {
			return fmt.Errorf("isa: program %q linked twice", p.Name)
		}
		seen[p] = true
		p.Base = base
		for _, b := range p.Blocks {
			b.PC += base
			for i := range b.Instrs {
				b.Instrs[i].PC += base
			}
			if b.Term.Kind != TermFall && b.Term.Kind != TermEnd {
				b.Term.PC += base
			}
		}
		p.linked = true
		base += p.size
		for _, c := range p.callees {
			if err := link(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range progs {
		if err := link(p); err != nil {
			return 0, err
		}
	}
	return base, nil
}

// MaxSlots returns the maximum NumSlots over the program and all its
// callees; contexts must allocate at least this many scratch slots.
func (p *Program) MaxSlots() int {
	max := p.NumSlots
	for _, c := range p.callees {
		if m := c.MaxSlots(); m > max {
			max = m
		}
	}
	return max
}

// BranchReconv returns the map from the global PC of each conditional
// branch to the global PC of its immediate post-dominator, for the
// program and all callees. The program must be linked.
func (p *Program) BranchReconv() map[uint64]uint64 {
	m := map[uint64]uint64{}
	p.branchReconv(m, map[*Program]bool{})
	return m
}

func (p *Program) branchReconv(m map[uint64]uint64, seen map[*Program]bool) {
	if seen[p] {
		return
	}
	seen[p] = true
	for _, b := range p.Blocks {
		if b.Term.Kind == TermBr {
			m[b.Term.PC] = p.Blocks[b.Term.Reconv].PC
		}
	}
	for _, c := range p.callees {
		c.branchReconv(m, seen)
	}
}

// StaticInstrCount returns the number of static instructions in the
// program, excluding callees.
func (p *Program) StaticInstrCount() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
		if b.Term.Kind != TermFall && b.Term.Kind != TermEnd {
			n++
		}
	}
	return n
}
