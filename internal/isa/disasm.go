package isa

import (
	"fmt"
	"io"
)

// Disassemble writes a human-readable static listing of the program's
// basic blocks, instructions and terminators, followed by its callees.
// The program may be linked or unlinked (PCs print as laid out).
func (p *Program) Disassemble(w io.Writer) {
	p.disasm(w, map[*Program]bool{})
}

func (p *Program) disasm(w io.Writer, seen map[*Program]bool) {
	if seen[p] {
		return
	}
	seen[p] = true
	kind := "service"
	if p.isFunc {
		kind = "func"
	}
	fmt.Fprintf(w, "%s %q: base=%#x size=%d bytes, %d blocks, %d slots, frame=%d\n",
		kind, p.Name, p.Base, p.size, len(p.Blocks), p.NumSlots, p.FrameBytes)
	for _, blk := range p.Blocks {
		fmt.Fprintf(w, "  block %d @ %#x:\n", blk.ID, blk.PC)
		for _, in := range blk.Instrs {
			detail := ""
			if in.Addr != nil {
				detail = fmt.Sprintf(" [mem %dB]", in.Size)
			}
			if in.Eff != nil {
				detail += " {eff}"
			}
			dep := ""
			if in.Dep1 > 0 || in.Dep2 > 0 {
				dep = fmt.Sprintf(" dep(-%d,-%d)", in.Dep1, in.Dep2)
			}
			fmt.Fprintf(w, "    %#08x  %-8s%s%s\n", in.PC, in.Class, detail, dep)
		}
		t := blk.Term
		switch t.Kind {
		case TermFall:
			fmt.Fprintf(w, "    %10s  fall -> block %d\n", "", t.Fall)
		case TermBr:
			fmt.Fprintf(w, "    %#08x  branch taken->block %d, fall->block %d, reconv->block %d\n",
				t.PC, t.Taken, t.Fall, t.Reconv)
		case TermJmp:
			fmt.Fprintf(w, "    %#08x  jump -> block %d\n", t.PC, t.Taken)
		case TermCall:
			fmt.Fprintf(w, "    %#08x  call %q, resume block %d\n", t.PC, t.Callee.Name, t.Fall)
		case TermRet:
			fmt.Fprintf(w, "    %#08x  ret\n", t.PC)
		case TermEnd:
			fmt.Fprintf(w, "    %10s  end\n", "")
		}
	}
	for _, c := range p.callees {
		c.disasm(w, seen)
	}
}
