package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWhileLoop(t *testing.T) {
	b := NewProgram("w")
	cnt := b.Slot()
	b.Eff(func(c *Ctx) { c.Slots[cnt] = 0 })
	b.While(func(c *Ctx) bool { return c.Slots[cnt] < c.Arg0(0) }, func(b *Builder) {
		b.Op(FAlu)
		b.Eff(func(c *Ctx) { c.Slots[cnt]++ })
	})
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	for _, n := range []uint64{0, 1, 7} {
		ops, err := Execute(p, newCtx(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, op := range ops {
			if op.Class == FAlu {
				got++
			}
		}
		if got != int(n) {
			t.Fatalf("while(%d): %d iterations", n, got)
		}
	}
}

func TestLoopIdxCountsUp(t *testing.T) {
	b := NewProgram("li")
	var seen []uint64
	b.LoopIdx(func(*Ctx) int { return 5 }, func(b *Builder, idx int) {
		b.Eff(func(c *Ctx) { seen = append(seen, c.Slots[idx]) })
	})
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(p, newCtx(), 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("induction sequence %v", seen)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("%d iterations", len(seen))
	}
}

func TestNestedControlFlow(t *testing.T) {
	b := NewProgram("n")
	b.Loop(func(c *Ctx) int { return int(c.Arg0(0)) }, func(b *Builder) {
		b.If(func(c *Ctx) bool { return c.Arg0(1) == 1 },
			func(b *Builder) {
				b.LoopN(2, func(b *Builder) { b.Op(Simd) })
			},
			func(b *Builder) { b.Op(FAlu) })
	})
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	count := func(args ...uint64) (simd, falu int) {
		ops, err := Execute(p, newCtx(args...), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			switch op.Class {
			case Simd:
				simd++
			case FAlu:
				falu++
			}
		}
		return
	}
	if s, f := count(3, 1); s != 6 || f != 0 {
		t.Fatalf("taken nest: simd=%d falu=%d", s, f)
	}
	if s, f := count(4, 0); s != 0 || f != 4 {
		t.Fatalf("fall nest: simd=%d falu=%d", s, f)
	}
}

func TestNestedCallsRestoreDepth(t *testing.T) {
	inner := NewFunc("inner")
	inner.Ops(IAlu, 1)
	pInner := inner.Build()

	outer := NewFunc("outer")
	outer.Ops(IAlu, 1)
	outer.Call(pInner)
	outer.Ops(IAlu, 1)
	pOuter := outer.Build()

	b := NewProgram("top")
	b.Call(pOuter)
	b.Ops(IAlu, 1)
	p := b.Build()
	if _, err := Link(0x100, p); err != nil {
		t.Fatal(err)
	}
	ops, err := Execute(p, newCtx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var maxDepth uint64
	for _, op := range ops {
		if op.SP > maxDepth {
			maxDepth = op.SP
		}
	}
	if maxDepth != 256 { // two nested 128-byte frames
		t.Fatalf("max depth %d, want 256", maxDepth)
	}
	if last := ops[len(ops)-1]; last.SP != 0 {
		t.Fatalf("final depth %d", last.SP)
	}
}

func TestCallToNonFuncPanics(t *testing.T) {
	svc := NewProgram("svc")
	svc.Ops(IAlu, 1)
	p := svc.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic calling a non-func program")
		}
	}()
	b := NewProgram("t")
	b.Call(p)
}

func TestBuildTwicePanics(t *testing.T) {
	b := NewProgram("t")
	b.Ops(IAlu, 1)
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Build")
		}
	}()
	b.Build()
}

func TestExecuteUnlinkedFails(t *testing.T) {
	b := NewProgram("t")
	b.Ops(IAlu, 1)
	p := b.Build()
	if _, err := Execute(p, newCtx(), 0); err == nil {
		t.Fatal("expected error executing unlinked program")
	}
}

func TestSummarize(t *testing.T) {
	b := NewProgram("s")
	b.StackStore(16)
	b.LoadAt(8, func(*Ctx) uint64 { return 0x100 })
	b.Ops(IAlu, 3)
	p := b.Build()
	if _, err := Link(0, p); err != nil {
		t.Fatal(err)
	}
	ops, err := Execute(p, newCtx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(ops, func(a uint64) bool { return a >= 1<<29 })
	if st.StackOps != 1 || st.HeapOps != 1 {
		t.Fatalf("summary %+v", st)
	}
	if st.ByClass[IAlu] != 3 || st.Total != len(ops) {
		t.Fatalf("summary %+v", st)
	}
}

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || !Atomic.IsMem() || IAlu.IsMem() {
		t.Fatal("IsMem wrong")
	}
	if !Branch.IsCtl() || !Jump.IsCtl() || !CallOp.IsCtl() || !RetOp.IsCtl() || Load.IsCtl() {
		t.Fatal("IsCtl wrong")
	}
	if Class(200).String() != "invalid" {
		t.Fatal("invalid class string")
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" || c.String() == "invalid" {
			t.Fatalf("class %d has no name", c)
		}
	}
}

func TestMaxSlotsIncludesCallees(t *testing.T) {
	f := NewFunc("f")
	f.Slot()
	f.Slot()
	f.Slot()
	pf := f.Build()

	b := NewProgram("t")
	b.Slot()
	b.Call(pf)
	p := b.Build()
	if p.MaxSlots() < 3 {
		t.Fatalf("MaxSlots %d", p.MaxSlots())
	}
}

func TestStaticInstrCount(t *testing.T) {
	b := NewProgram("t")
	b.Ops(IAlu, 5)
	b.If(func(*Ctx) bool { return true }, func(b *Builder) { b.Op(FAlu) }, nil)
	p := b.Build()
	// 5 IAlu + 1 FAlu + branch + jump = 8 encoded instructions.
	if got := p.StaticInstrCount(); got != 8 {
		t.Fatalf("static count %d", got)
	}
}

// Property: linking at any base preserves intra-program PC offsets.
func TestQuickLinkPreservesOffsets(t *testing.T) {
	build := func() *Program {
		b := NewProgram("t")
		b.Ops(IAlu, 4)
		b.If(func(c *Ctx) bool { return c.Arg0(0) > 0 },
			func(b *Builder) { b.Ops(FAlu, 2) }, nil)
		return b.Build()
	}
	ref := build()
	if _, err := Link(0, ref); err != nil {
		t.Fatal(err)
	}
	refOps, err := Execute(ref, newCtx(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(base uint32) bool {
		p := build()
		b := uint64(base) &^ 3
		if _, err := Link(b, p); err != nil {
			return false
		}
		ops, err := Execute(p, newCtx(1), 0)
		if err != nil || len(ops) != len(refOps) {
			return false
		}
		for i := range ops {
			if ops[i].PC-b != refOps[i].PC {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: Arg0 never panics for any index.
func TestQuickArg0Safe(t *testing.T) {
	f := func(args []uint64, idx uint8) bool {
		c := &Ctx{Arg: args, Rand: rand.New(rand.NewSource(1))}
		v := c.Arg0(int(idx))
		if int(idx) < len(args) {
			return v == args[idx]
		}
		return v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleListsEverything(t *testing.T) {
	f := NewFunc("helper")
	f.Ops(IAlu, 1)
	pf := f.Build()
	b := NewProgram("svc")
	b.LoadAt(8, func(*Ctx) uint64 { return 0x10 })
	b.If(func(*Ctx) bool { return true }, func(b *Builder) { b.Op(FAlu) }, nil)
	b.Call(pf)
	p := b.Build()
	if _, err := Link(0x7000, p); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	p.Disassemble(&sb)
	out := sb.String()
	for _, want := range []string{"svc", "helper", "branch", "call", "[mem 8B]", "end", "ret", "reconv"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
}
