package mem

// Pattern classifies what the memory coalescing unit detected for one
// batch memory instruction.
type Pattern uint8

// Coalescing patterns. The RPU's low-latency MCU only detects the two
// simple cases (paper Fig 8b): a broadcast (all lanes read the same
// word) and consecutive-word runs within cache lines; anything else
// generates one access per active lane, exactly like the paper's
// LD/ST unit.
const (
	// PatternBroadcast: every active lane reads the same word.
	PatternBroadcast Pattern = iota
	// PatternCoalesced: lanes access consecutive words; one access per
	// touched cache line.
	PatternCoalesced
	// PatternDivergent: no simple pattern; one access per active lane.
	PatternDivergent
)

func (p Pattern) String() string {
	switch p {
	case PatternBroadcast:
		return "broadcast"
	case PatternCoalesced:
		return "coalesced"
	default:
		return "divergent"
	}
}

// MCUStats counts coalescer outcomes.
type MCUStats struct {
	Broadcast uint64
	Coalesced uint64
	Divergent uint64
	// LaneAccesses is the pre-coalescing access count (sum of active
	// lanes over all ops); Emitted is what actually reached the cache.
	LaneAccesses uint64
	Emitted      uint64
}

// Add accumulates o's counts into s.
func (s *MCUStats) Add(o *MCUStats) {
	s.Broadcast += o.Broadcast
	s.Coalesced += o.Coalesced
	s.Divergent += o.Divergent
	s.LaneAccesses += o.LaneAccesses
	s.Emitted += o.Emitted
}

// Sub subtracts o's counts from s (o must be an earlier snapshot).
func (s *MCUStats) Sub(o *MCUStats) {
	s.Broadcast -= o.Broadcast
	s.Coalesced -= o.Coalesced
	s.Divergent -= o.Divergent
	s.LaneAccesses -= o.LaneAccesses
	s.Emitted -= o.Emitted
}

// wordBytes is the coalescing word granularity.
const wordBytes = 4

// Coalesce applies the MCU to a batch memory instruction. laneAddrs
// lists each active lane's physical word addresses (a lane may span
// two interleaved granules; see alloc.StackGroup.Translate). lineBytes
// is the L1 line size. It returns the addresses to issue to the cache
// and the detected pattern.
//
// Detection: if every lane touches the same word, one broadcast access
// is emitted. Otherwise the MCU groups the touched words per cache
// line; when each touched line holds a consecutive run of words AND
// merging actually saves accesses, one access per line is emitted
// (PatternCoalesced). Any other shape is divergent: one access per
// active lane at its first word.
func Coalesce(laneAddrs [][]uint64, lineBytes int, stats *MCUStats) ([]uint64, Pattern) {
	active := 0
	var first uint64
	allSame := true
	haveFirst := false
	words := make([]uint64, 0, len(laneAddrs)*2)
	for _, as := range laneAddrs {
		if len(as) == 0 {
			continue
		}
		active++
		for _, a := range as {
			w := a / wordBytes
			if !haveFirst {
				first, haveFirst = w, true
			} else if w != first {
				allSame = false
			}
			words = append(words, w)
		}
	}
	if stats != nil {
		stats.LaneAccesses += uint64(active)
	}
	if active == 0 {
		return nil, PatternDivergent
	}

	if allSame {
		if stats != nil {
			stats.Broadcast++
			stats.Emitted++
		}
		return []uint64{first * wordBytes &^ uint64(lineBytes-1)}, PatternBroadcast
	}

	// Group distinct words per line and check each line's words form a
	// consecutive run.
	wordsPerLine := uint64(lineBytes / wordBytes)
	type run struct {
		min, max uint64
		count    int
	}
	lines := map[uint64]*run{}
	order := make([]uint64, 0, 8)
	distinct := map[uint64]struct{}{}
	for _, w := range words {
		if _, dup := distinct[w]; dup {
			continue
		}
		distinct[w] = struct{}{}
		la := w / wordsPerLine
		r, ok := lines[la]
		if !ok {
			lines[la] = &run{min: w, max: w, count: 1}
			order = append(order, la)
			continue
		}
		if w < r.min {
			r.min = w
		}
		if w > r.max {
			r.max = w
		}
		r.count++
	}
	consecutive := true
	for _, r := range lines {
		if r.max-r.min+1 != uint64(r.count) {
			consecutive = false
			break
		}
	}
	if consecutive && len(lines) < active {
		out := make([]uint64, 0, len(order))
		for _, la := range order {
			out = append(out, la*uint64(lineBytes))
		}
		if stats != nil {
			stats.Coalesced++
			stats.Emitted += uint64(len(out))
		}
		return out, PatternCoalesced
	}

	// Divergent: one access per active lane, at the lane's first word.
	out := make([]uint64, 0, active)
	for _, as := range laneAddrs {
		if len(as) > 0 {
			out = append(out, as[0]&^uint64(wordBytes-1))
		}
	}
	if stats != nil {
		stats.Divergent++
		stats.Emitted += uint64(len(out))
	}
	return out, PatternDivergent
}
