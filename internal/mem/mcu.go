package mem

// Pattern classifies what the memory coalescing unit detected for one
// batch memory instruction.
type Pattern uint8

// Coalescing patterns. The RPU's low-latency MCU only detects the two
// simple cases (paper Fig 8b): a broadcast (all lanes read the same
// word) and consecutive-word runs within cache lines; anything else
// generates one access per active lane, exactly like the paper's
// LD/ST unit.
const (
	// PatternBroadcast: every active lane reads the same word.
	PatternBroadcast Pattern = iota
	// PatternCoalesced: lanes access consecutive words; one access per
	// touched cache line.
	PatternCoalesced
	// PatternDivergent: no simple pattern; one access per active lane.
	PatternDivergent
)

func (p Pattern) String() string {
	switch p {
	case PatternBroadcast:
		return "broadcast"
	case PatternCoalesced:
		return "coalesced"
	default:
		return "divergent"
	}
}

// MCUStats counts coalescer outcomes.
type MCUStats struct {
	Broadcast uint64
	Coalesced uint64
	Divergent uint64
	// LaneAccesses is the pre-coalescing access count (sum of active
	// lanes over all ops); Emitted is what actually reached the cache.
	LaneAccesses uint64
	Emitted      uint64
}

// Add accumulates o's counts into s.
func (s *MCUStats) Add(o *MCUStats) {
	s.Broadcast += o.Broadcast
	s.Coalesced += o.Coalesced
	s.Divergent += o.Divergent
	s.LaneAccesses += o.LaneAccesses
	s.Emitted += o.Emitted
}

// Sub subtracts o's counts from s (o must be an earlier snapshot).
func (s *MCUStats) Sub(o *MCUStats) {
	s.Broadcast -= o.Broadcast
	s.Coalesced -= o.Coalesced
	s.Divergent -= o.Divergent
	s.LaneAccesses -= o.LaneAccesses
	s.Emitted -= o.Emitted
}

// AddScaled adds o's counts scaled by f (rounded to nearest) into s —
// the extrapolation step of sampled simulation.
func (s *MCUStats) AddScaled(o *MCUStats, f float64) {
	s.Broadcast += scaleCount(o.Broadcast, f)
	s.Coalesced += scaleCount(o.Coalesced, f)
	s.Divergent += scaleCount(o.Divergent, f)
	s.LaneAccesses += scaleCount(o.LaneAccesses, f)
	s.Emitted += scaleCount(o.Emitted, f)
}

// wordBytes is the coalescing word granularity.
const wordBytes = 4

// CoalesceScratch holds the MCU's working buffers so the per-batch-op
// hot path (one Coalesce per memory instruction) allocates nothing.
// Word and line counts per op are tiny (<= lanes x granules-per-lane),
// so linear scans over these buffers replace the maps a naive
// implementation would use. The zero value is ready to use; a scratch
// must not be shared between goroutines.
type CoalesceScratch struct {
	words []uint64  // distinct words, first-occurrence order
	runs  []lineRun // touched lines, first-touch order
}

// lineRun is the distinct-word run detected within one cache line.
type lineRun struct {
	line     uint64
	min, max uint64
	count    int
}

// Coalesce applies the MCU to a batch memory instruction. laneAddrs
// lists each active lane's physical word addresses (a lane may span
// two interleaved granules; see alloc.StackGroup.Translate). lineBytes
// is the L1 line size. It returns the addresses to issue to the cache
// and the detected pattern. sc supplies the reusable working buffers;
// callers issuing many ops (tracedump's batch view, the tests'
// property loops) pass one scratch across calls to keep the per-op
// path allocation-free, and a nil sc falls back to a fresh scratch.
//
// Detection: if every lane touches the same word, one broadcast access
// is emitted. Otherwise the MCU groups the touched words per cache
// line; when each touched line holds a consecutive run of words AND
// merging actually saves accesses, one access per line is emitted
// (PatternCoalesced). Any other shape is divergent: one access per
// active lane at its first word.
func Coalesce(laneAddrs [][]uint64, lineBytes int, stats *MCUStats, sc *CoalesceScratch) ([]uint64, Pattern) {
	if sc == nil {
		sc = new(CoalesceScratch)
	}
	return AppendCoalesce(nil, sc, laneAddrs, lineBytes, stats)
}

// AppendCoalesce is Coalesce writing into caller-provided storage: the
// issued addresses are appended to dst (which may be a shared backing
// arena) and the extended slice is returned. sc supplies the reusable
// working buffers. The emitted addresses, pattern and statistics are
// identical to Coalesce's.
func AppendCoalesce(dst []uint64, sc *CoalesceScratch, laneAddrs [][]uint64, lineBytes int, stats *MCUStats) ([]uint64, Pattern) {
	active := 0
	var first uint64
	allSame := true
	haveFirst := false
	for _, as := range laneAddrs {
		if len(as) == 0 {
			continue
		}
		active++
		for _, a := range as {
			w := a / wordBytes
			if !haveFirst {
				first, haveFirst = w, true
			} else if w != first {
				allSame = false
			}
		}
	}
	if stats != nil {
		stats.LaneAccesses += uint64(active)
	}
	if active == 0 {
		return dst, PatternDivergent
	}

	if allSame {
		if stats != nil {
			stats.Broadcast++
			stats.Emitted++
		}
		return append(dst, first*wordBytes&^uint64(lineBytes-1)), PatternBroadcast
	}

	// Group distinct words per line (first-occurrence order, duplicate
	// words ignored) and check each line's words form a consecutive run.
	wordsPerLine := uint64(lineBytes / wordBytes)
	sc.words = sc.words[:0]
	sc.runs = sc.runs[:0]
	for _, as := range laneAddrs {
		for _, a := range as {
			w := a / wordBytes
			dup := false
			for _, seen := range sc.words {
				if seen == w {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			sc.words = append(sc.words, w)
			la := w / wordsPerLine
			found := false
			for i := range sc.runs {
				if r := &sc.runs[i]; r.line == la {
					if w < r.min {
						r.min = w
					}
					if w > r.max {
						r.max = w
					}
					r.count++
					found = true
					break
				}
			}
			if !found {
				sc.runs = append(sc.runs, lineRun{line: la, min: w, max: w, count: 1})
			}
		}
	}
	consecutive := true
	for i := range sc.runs {
		if r := &sc.runs[i]; r.max-r.min+1 != uint64(r.count) {
			consecutive = false
			break
		}
	}
	if consecutive && len(sc.runs) < active {
		for i := range sc.runs {
			dst = append(dst, sc.runs[i].line*uint64(lineBytes))
		}
		if stats != nil {
			stats.Coalesced++
			stats.Emitted += uint64(len(sc.runs))
		}
		return dst, PatternCoalesced
	}

	// Divergent: one access per active lane, at the lane's first word.
	for _, as := range laneAddrs {
		if len(as) > 0 {
			dst = append(dst, as[0]&^uint64(wordBytes-1))
		}
	}
	if stats != nil {
		stats.Divergent++
		stats.Emitted += uint64(active)
	}
	return dst, PatternDivergent
}
