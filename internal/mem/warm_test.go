package mem

import "testing"

// TestWarmMatchesAccessState drives two identical systems through the
// same pseudo-random access sequence — one via the timed Access path,
// one via the stats-free Warm path — and requires identical residency
// at every cache level afterwards. This is the contract sampled
// simulation relies on: a warmed system presents the tag and
// replacement state a timed unit would have inherited from a fully
// simulated predecessor.
//
// Accesses are spaced far enough apart that every line fill completes
// before the next access: an in-flight fill makes Access return from
// the MSHR without touching L2/L3, a purely timing-dependent effect
// the clockless warm path deliberately does not model.
func TestWarmMatchesAccessState(t *testing.T) {
	cfg := sysConfig()
	cfg.AtomicsAtL3 = true
	timed := NewSystem(cfg)
	warmed := NewSystem(cfg)

	// Footprint well past L3 capacity so every level evicts, with a
	// reuse bias so LRU ordering matters.
	var addrs []uint64
	x := uint64(0x9e3779b97f4a7c15)
	now := uint64(0)
	for i := 0; i < 4000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addr := (x >> 16) % (64 << 10)
		if i%3 == 0 && len(addrs) > 0 {
			addr = addrs[int(x>>40)%len(addrs)] // revisit an old line
		}
		write := x&0x100 != 0
		atomic := x&0x7000 == 0
		timed.Access(addr, write, atomic, now)
		warmed.Warm(addr, write, atomic)
		now += 1000
		addrs = append(addrs, addr)
	}

	for i, a := range addrs {
		la := timed.L1.LineAddr(a)
		if timed.L1.Probe(la) != warmed.L1.Probe(la) {
			t.Fatalf("addr %#x (seq %d): L1 residency diverged", a, i)
		}
		l2a := timed.L2.LineAddr(la)
		if timed.L2.Probe(l2a) != warmed.L2.Probe(l2a) {
			t.Fatalf("addr %#x (seq %d): L2 residency diverged", a, i)
		}
		l3a := timed.L3.LineAddr(la)
		if timed.L3.Probe(l3a) != warmed.L3.Probe(l3a) {
			t.Fatalf("addr %#x (seq %d): L3 residency diverged", a, i)
		}
	}

	var zero SysStats
	if st := warmed.Stats(); st != zero {
		t.Fatalf("Warm touched statistics: %+v", st)
	}
}

// TestTLBWarm pins the warm path's move-to-front hit, bounded fill and
// LRU replacement, all without counting lookups.
func TestTLBWarm(t *testing.T) {
	tlb := NewTLB(TLBConfig{EntriesPerBank: 2, Banks: 1, MissLatCycles: 40})
	tlb.Warm(0*PageBytes, 0)
	tlb.Warm(1*PageBytes, 0)
	tlb.Warm(0*PageBytes, 0) // refresh page 0
	tlb.Warm(2*PageBytes, 0) // evicts page 1
	if tlb.Stats.Misses != 0 || tlb.Stats.Accesses != 0 {
		t.Fatalf("Warm counted stats: %+v", tlb.Stats)
	}
	if lat := tlb.Lookup(0*PageBytes, 0); lat != 0 {
		t.Fatal("page 0 evicted unexpectedly")
	}
	if lat := tlb.Lookup(1*PageBytes, 0); lat == 0 {
		t.Fatal("page 1 should have been evicted")
	}
}

// TestCacheWarmWriteAllocate checks dirty-line bookkeeping on the warm
// path: a warm write allocates dirty, so its eviction reports a
// writeback exactly like the timed path.
func TestCacheWarmWriteAllocate(t *testing.T) {
	c := smallCache()
	sets := uint64(c.sets)
	c.Warm(0, true) // dirty fill
	c.Warm(sets*32, false)
	_, wb := c.Warm(2*sets*32, false) // evicts dirty line 0
	if !wb {
		t.Fatal("warm eviction lost the dirty bit")
	}
	if c.Stats.Accesses != 0 || c.Stats.Writebacks != 0 {
		t.Fatalf("Warm counted stats: %+v", c.Stats)
	}
}
