package mem

import "testing"

// FuzzCoalesce checks the MCU's structural invariants for arbitrary
// lane address patterns: at least one access when any lane is active,
// never more accesses than lane word-granules, and broadcast detection
// exact.
func FuzzCoalesce(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0}, uint8(4))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(8))
	f.Add([]byte{255, 0, 255, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, width uint8) {
		n := int(width%32) + 1
		if len(raw) == 0 {
			return
		}
		lanes := make([][]uint64, n)
		total := 0
		allSame := true
		var first uint64
		for i := 0; i < n; i++ {
			b := raw[i%len(raw)]
			addr := uint64(b) * 4
			lanes[i] = []uint64{addr}
			total++
			if i == 0 {
				first = addr
			} else if addr != first {
				allSame = false
			}
		}
		var st MCUStats
		var sc CoalesceScratch
		acc, pat := Coalesce(lanes, 32, &st, &sc)
		if len(acc) < 1 || len(acc) > total {
			t.Fatalf("emitted %d accesses for %d lanes", len(acc), total)
		}
		if allSame && (pat != PatternBroadcast || len(acc) != 1) {
			t.Fatalf("uniform addresses not broadcast: %v %d", pat, len(acc))
		}
		if st.Emitted != uint64(len(acc)) || st.LaneAccesses != uint64(total) {
			t.Fatalf("stats inconsistent: %+v vs %d/%d", st, len(acc), total)
		}
	})
}

// FuzzCacheAccess checks that the cache never loses the line it just
// inserted and that stats stay consistent.
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{1, 2, 3}, false)
	f.Fuzz(func(t *testing.T, raw []byte, write bool) {
		c := smallCache()
		for _, b := range raw {
			addr := uint64(b) * 32
			c.Access(addr, write)
			if !c.Probe(c.LineAddr(addr)) {
				t.Fatalf("line %#x absent immediately after access", addr)
			}
		}
		if c.Stats.Misses > c.Stats.Accesses {
			t.Fatalf("more misses than accesses: %+v", c.Stats)
		}
	})
}
