package mem

// PageBytes is the default translation page size.
const PageBytes = 4096

// TLBConfig describes a banked L1 data TLB. In the RPU each L1 data
// bank has an associated TLB bank; because data is interleaved over
// banks at sub-page granularity, the same page's entry may be
// duplicated in several banks (paper §III-A), reducing effective
// capacity — which this model reproduces naturally by giving each bank
// its own entry array.
type TLBConfig struct {
	EntriesPerBank int
	Banks          int
	// MissLatCycles is the page-walk penalty.
	MissLatCycles uint64
	// PageBytes is the translation granule; 0 selects the 4 KB
	// default. Data center deployments map heaps and shared tables
	// with 2 MB transparent huge pages, which is what the chip
	// configurations use.
	PageBytes uint64
}

// TLBStats counts translation events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// Add accumulates o's counts into s.
func (s *TLBStats) Add(o *TLBStats) {
	s.Accesses += o.Accesses
	s.Misses += o.Misses
}

// Sub subtracts o's counts from s (o must be an earlier snapshot).
func (s *TLBStats) Sub(o *TLBStats) {
	s.Accesses -= o.Accesses
	s.Misses -= o.Misses
}

// AddScaled adds o's counts scaled by f (rounded to nearest) into s —
// the extrapolation step of sampled simulation.
func (s *TLBStats) AddScaled(o *TLBStats, f float64) {
	s.Accesses += scaleCount(o.Accesses, f)
	s.Misses += scaleCount(o.Misses, f)
}

// TLB is a banked, fully-associative (within bank), LRU TLB.
type TLB struct {
	cfg TLBConfig
	// pageShift is log2(PageBytes) when it is a power of two (pagePow2),
	// making the fast-path translation a shift; likewise bankMask for a
	// power-of-two bank count.
	pageShift uint
	bankMask  int
	pagePow2  bool
	banksPow2 bool
	pages     [][]uint64 // per bank, valid entries (page numbers)
	used      [][]uint64
	tick      uint64
	Stats     TLBStats
}

// NewTLB builds a TLB from cfg.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = PageBytes
	}
	t := &TLB{cfg: cfg}
	if cfg.PageBytes&(cfg.PageBytes-1) == 0 {
		t.pagePow2 = true
		for 1<<t.pageShift < cfg.PageBytes {
			t.pageShift++
		}
	}
	if cfg.Banks&(cfg.Banks-1) == 0 {
		t.banksPow2, t.bankMask = true, cfg.Banks-1
	}
	t.pages = make([][]uint64, cfg.Banks)
	t.used = make([][]uint64, cfg.Banks)
	for b := range t.pages {
		t.pages[b] = make([]uint64, 0, cfg.EntriesPerBank)
		t.used[b] = make([]uint64, 0, cfg.EntriesPerBank)
	}
	return t
}

// Lookup translates addr through the TLB bank that serves the given
// cache bank; it returns the added latency (0 on hit, the walk penalty
// on a miss, with the entry filled).
func (t *TLB) Lookup(addr uint64, cacheBank int) uint64 {
	t.tick++
	t.Stats.Accesses++
	b := cacheBank % t.cfg.Banks
	if t.banksPow2 {
		b = cacheBank & t.bankMask
	}
	page := addr / t.cfg.PageBytes
	if t.pagePow2 {
		page = addr >> t.pageShift
	}
	pages, used := t.pages[b], t.used[b]
	for i, p := range pages {
		if p == page {
			used[i] = t.tick
			if i > 0 {
				// Move-to-front so the hot page's scan is O(1). Hits and
				// victim choice depend only on the (page, used) pair set,
				// not entry order, so reordering never changes outcomes.
				pages[0], pages[i] = pages[i], pages[0]
				used[0], used[i] = used[i], used[0]
			}
			return 0
		}
	}
	t.Stats.Misses++
	if len(pages) < t.cfg.EntriesPerBank {
		t.pages[b] = append(pages, page)
		t.used[b] = append(used, t.tick)
		return t.cfg.MissLatCycles
	}
	victim := 0
	for i := 1; i < len(used); i++ {
		if used[i] < used[victim] {
			victim = i
		}
	}
	pages[victim] = page
	used[victim] = t.tick
	return t.cfg.MissLatCycles
}

// Warm performs Lookup's state transition — move-to-front on hit,
// fill or LRU replace on miss — without touching Stats, for the
// functional-warmup path of sampled simulation. Fills append within
// the preallocated per-bank capacity, so the steady state allocates
// nothing.
func (t *TLB) Warm(addr uint64, cacheBank int) {
	t.tick++
	b := cacheBank % t.cfg.Banks
	if t.banksPow2 {
		b = cacheBank & t.bankMask
	}
	page := addr / t.cfg.PageBytes
	if t.pagePow2 {
		page = addr >> t.pageShift
	}
	pages, used := t.pages[b], t.used[b]
	for i, p := range pages {
		if p == page {
			used[i] = t.tick
			if i > 0 {
				pages[0], pages[i] = pages[i], pages[0]
				used[0], used[i] = used[i], used[0]
			}
			return
		}
	}
	if len(pages) < t.cfg.EntriesPerBank {
		t.pages[b] = append(pages, page)
		t.used[b] = append(used, t.tick)
		return
	}
	victim := 0
	for i := 1; i < len(used); i++ {
		if used[i] < used[victim] {
			victim = i
		}
	}
	pages[victim] = page
	used[victim] = t.tick
}

// Reset clears contents and statistics.
func (t *TLB) Reset() {
	for b := range t.pages {
		t.pages[b] = t.pages[b][:0]
		t.used[b] = t.used[b][:0]
	}
	t.tick = 0
	t.Stats = TLBStats{}
}
