package mem

import "testing"

func fullSysStats(k uint64) SysStats {
	return SysStats{
		L1:           CacheStats{Accesses: 1 * k, Misses: 2 * k, Writebacks: 3 * k, BankConflicts: 4 * k},
		L2:           CacheStats{Accesses: 5 * k, Misses: 6 * k, Writebacks: 7 * k, BankConflicts: 8 * k},
		L3:           CacheStats{Accesses: 9 * k, Misses: 10 * k, Writebacks: 11 * k, BankConflicts: 12 * k},
		TLB:          TLBStats{Accesses: 13 * k, Misses: 14 * k},
		MCU:          MCUStats{Broadcast: 15 * k, Coalesced: 16 * k, Divergent: 17 * k, LaneAccesses: 18 * k, Emitted: 19 * k},
		DRAMAccesses: 20 * k,
		DRAMBytes:    21 * k,
		AtomicL3:     22 * k,
		PF:           PrefetchStats{Issued: 23 * k, Useful: 24 * k},
	}
}

// TestSysStatsAddDelta exercises every counter: Add must sum all
// fields, and Delta must invert Add so cumulative snapshots convert to
// per-run contributions without losing any counter.
func TestSysStatsAddDelta(t *testing.T) {
	a, b := fullSysStats(1), fullSysStats(10)

	sum := a
	sum.Add(&b)
	if want := fullSysStats(11); sum != want {
		t.Fatalf("Add: got %+v, want %+v", sum, want)
	}

	if d := sum.Delta(&a); d != b {
		t.Fatalf("Delta: got %+v, want %+v", d, b)
	}
	var zero SysStats
	if d := a.Delta(&a); d != zero {
		t.Fatalf("Delta with itself: got %+v, want zero", d)
	}
}
