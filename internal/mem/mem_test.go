package mem

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{
		Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 32, Banks: 4, LatCycles: 3,
	})
}

func TestCacheHitAfterFill(t *testing.T) {
	c := smallCache()
	if hit, _ := c.Access(0x100, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0x100, false); !hit {
		t.Fatal("warm access missed")
	}
	// Same line, different word.
	if hit, _ := c.Access(0x110, false); !hit {
		t.Fatal("same-line access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 16 sets × 2 ways
	sets := uint64(c.sets)
	a := uint64(0)
	b := a + sets*32   // same set, different tag
	d := a + 2*sets*32 // same set, third tag
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b (LRU)
	if hit, _ := c.Access(a, false); !hit {
		t.Fatal("a should have survived")
	}
	if hit, _ := c.Access(b, false); hit {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheWritebackOnDirtyEvict(t *testing.T) {
	c := smallCache()
	sets := uint64(c.sets)
	c.Access(0, true) // dirty
	c.Access(sets*32, false)
	_, wb := c.Access(2*sets*32, false) // evicts dirty line 0
	if !wb {
		t.Fatal("expected writeback of dirty LRU line")
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCacheBankConflicts(t *testing.T) {
	c := smallCache() // 4 banks, line interleaved
	// Two accesses to the same bank at the same cycle serialise.
	t0 := c.BankTime(0, 10)
	t1 := c.BankTime(0, 10)
	if t0 != 10 || t1 != 11 {
		t.Fatalf("bank serialisation wrong: %d %d", t0, t1)
	}
	// Different banks proceed in parallel.
	if tt := c.BankTime(32, 10); tt != 10 {
		t.Fatalf("distinct bank stalled: %d", tt)
	}
	if c.Stats.BankConflicts != 1 {
		t.Fatalf("conflicts = %d", c.Stats.BankConflicts)
	}
}

func TestCacheProbeAndMarkDirty(t *testing.T) {
	c := smallCache()
	c.Access(0x40, false)
	if !c.Probe(0x40) || c.Probe(0x4000) {
		t.Fatal("probe wrong")
	}
	c.MarkDirty(0x40)
	sets := uint64(c.sets)
	c.Access(0x40+sets*32, false)
	_, wb := c.Access(0x40+2*sets*32, false)
	if !wb {
		t.Fatal("MarkDirty did not stick")
	}
}

// Property: hit rate of a working set that fits is 100 % after warmup.
func TestQuickResidentSetAlwaysHits(t *testing.T) {
	f := func(seed uint8) bool {
		c := smallCache()
		// 8 lines fit easily in 1 KB.
		base := uint64(seed) * 4096
		for i := 0; i < 8; i++ {
			c.Access(base+uint64(i)*32, false)
		}
		for round := 0; round < 3; round++ {
			for i := 0; i < 8; i++ {
				if hit, _ := c.Access(base+uint64(i)*32, false); !hit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(TLBConfig{EntriesPerBank: 2, Banks: 2, MissLatCycles: 40})
	if lat := tlb.Lookup(0x1000, 0); lat != 40 {
		t.Fatalf("cold lookup latency %d", lat)
	}
	if lat := tlb.Lookup(0x1008, 0); lat != 0 {
		t.Fatalf("same-page lookup latency %d", lat)
	}
	// The same page through a different bank misses again — the
	// duplication overhead of per-bank TLBs.
	if lat := tlb.Lookup(0x1000, 1); lat != 40 {
		t.Fatalf("other-bank lookup latency %d (duplication not modelled)", lat)
	}
	if tlb.Stats.Misses != 2 {
		t.Fatalf("misses %d", tlb.Stats.Misses)
	}
}

func TestTLBLRUWithinBank(t *testing.T) {
	tlb := NewTLB(TLBConfig{EntriesPerBank: 2, Banks: 1, MissLatCycles: 40})
	tlb.Lookup(0*PageBytes, 0)
	tlb.Lookup(1*PageBytes, 0)
	tlb.Lookup(0*PageBytes, 0) // refresh page 0
	tlb.Lookup(2*PageBytes, 0) // evicts page 1
	if lat := tlb.Lookup(0*PageBytes, 0); lat != 0 {
		t.Fatal("page 0 evicted unexpectedly")
	}
	if lat := tlb.Lookup(1*PageBytes, 0); lat == 0 {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestCoalesceBroadcast(t *testing.T) {
	var st MCUStats
	var sc CoalesceScratch
	lanes := make([][]uint64, 32)
	for i := range lanes {
		lanes[i] = []uint64{0x1000}
	}
	acc, p := Coalesce(lanes, 32, &st, &sc)
	if p != PatternBroadcast || len(acc) != 1 {
		t.Fatalf("broadcast: %v %d", p, len(acc))
	}
	if st.Emitted != 1 || st.LaneAccesses != 32 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCoalesceConsecutive(t *testing.T) {
	var st MCUStats
	var sc CoalesceScratch
	lanes := make([][]uint64, 8)
	for i := range lanes {
		lanes[i] = []uint64{0x2000 + uint64(i)*4}
	}
	acc, p := Coalesce(lanes, 32, &st, &sc)
	if p != PatternCoalesced || len(acc) != 1 {
		t.Fatalf("consecutive words in one line: %v %d", p, len(acc))
	}

	// 32 lanes × 8B at 4B granularity = 256 B = 8 lines.
	lanes = make([][]uint64, 32)
	for i := range lanes {
		lanes[i] = []uint64{0x4000 + uint64(i)*8, 0x4000 + uint64(i)*8 + 4}
	}
	acc, p = Coalesce(lanes, 32, nil, nil)
	if p != PatternCoalesced || len(acc) != 8 {
		t.Fatalf("interleaved push: %v %d accesses", p, len(acc))
	}
}

func TestCoalesceDivergent(t *testing.T) {
	var st MCUStats
	var sc CoalesceScratch
	lanes := make([][]uint64, 8)
	for i := range lanes {
		lanes[i] = []uint64{uint64(i) * 4096} // far apart, non-consecutive pages
	}
	// Distinct lines, each with a single word: treated as per-line
	// unique accesses; count equals lane count — no benefit but no
	// inflation either.
	acc, _ := Coalesce(lanes, 32, &st, &sc)
	if len(acc) != 8 {
		t.Fatalf("divergent emitted %d", len(acc))
	}
	// A genuinely non-consecutive multi-word line forces divergent.
	lanes = [][]uint64{{0x1000}, {0x1008}, {0x100c}} // words 0,2,3 of line
	_, p := Coalesce(lanes, 32, &st, &sc)
	if p != PatternDivergent {
		t.Fatalf("gap pattern classified %v", p)
	}
}

// With a shared scratch and a reused destination arena the per-op
// coalescing path must not allocate (the uop builder and tracedump
// both depend on this).
func TestCoalesceZeroAlloc(t *testing.T) {
	lanes := make([][]uint64, 32)
	for i := range lanes {
		lanes[i] = []uint64{0x1000 + uint64(i)*4, 0x1004 + uint64(i)*4}
	}
	var st MCUStats
	var sc CoalesceScratch
	dst := make([]uint64, 0, 64)
	if n := testing.AllocsPerRun(100, func() {
		dst, _ = AppendCoalesce(dst[:0], &sc, lanes, 32, &st)
	}); n != 0 {
		t.Fatalf("AppendCoalesce with shared scratch allocates %.1f/op", n)
	}
}

func TestCoalesceEmpty(t *testing.T) {
	acc, _ := Coalesce([][]uint64{nil, nil}, 32, nil, nil)
	if acc != nil {
		t.Fatal("empty mask should emit nothing")
	}
}

// Property: the coalescer never emits more accesses than active lanes'
// word count, and at least one access when any lane is active.
func TestQuickCoalesceBounds(t *testing.T) {
	f := func(addrs []uint32) bool {
		if len(addrs) == 0 {
			return true
		}
		if len(addrs) > 32 {
			addrs = addrs[:32]
		}
		lanes := make([][]uint64, len(addrs))
		total := 0
		for i, a := range addrs {
			lanes[i] = []uint64{uint64(a &^ 3)}
			total++
		}
		acc, _ := Coalesce(lanes, 32, nil, nil)
		return len(acc) >= 1 && len(acc) <= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sysConfig() SysConfig {
	return SysConfig{
		L1:                CacheConfig{Name: "l1", SizeBytes: 1 << 10, Ways: 2, LineBytes: 32, Banks: 2, LatCycles: 3},
		TLB:               TLBConfig{EntriesPerBank: 16, Banks: 2, MissLatCycles: 40},
		L2:                CacheConfig{Name: "l2", SizeBytes: 4 << 10, Ways: 4, LineBytes: 32, Banks: 1, LatCycles: 12},
		L3:                CacheConfig{Name: "l3", SizeBytes: 16 << 10, Ways: 4, LineBytes: 32, Banks: 1, LatCycles: 36},
		ICLatCycles:       4,
		DRAMLatCycles:     160,
		DRAMBytesPerCycle: 16,
	}
}

func TestSystemLatencyOrdering(t *testing.T) {
	s := NewSystem(sysConfig())
	cold := s.Access(0x1000, false, false, 100)
	s.TLB.Reset()
	warm := s.Access(0x1000, false, false, cold)
	if warm-cold >= cold-100 {
		t.Fatalf("warm access (%d cyc) not faster than cold (%d cyc)", warm-cold, cold-100)
	}
	st := s.Stats()
	if st.L1.Accesses != 2 || st.L1.Misses != 1 || st.DRAMAccesses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSystemMSHRMerge(t *testing.T) {
	s := NewSystem(sysConfig())
	d1 := s.Access(0x2000, false, false, 0)
	d2 := s.Access(0x2008, false, false, 1) // same line, outstanding
	if d2 > d1 {
		t.Fatalf("merged access finished later than the fill: %d > %d", d2, d1)
	}
	if s.Stats().DRAMAccesses != 1 {
		t.Fatalf("MSHR failed to merge: %d DRAM accesses", s.Stats().DRAMAccesses)
	}
}

func TestSystemAtomicsAtL3(t *testing.T) {
	cfg := sysConfig()
	cfg.AtomicsAtL3 = true
	s := NewSystem(cfg)
	s.Access(0x3000, false, true, 0)
	st := s.Stats()
	if st.AtomicL3 != 1 {
		t.Fatal("atomic not routed to L3")
	}
	if st.L1.Accesses != 0 {
		t.Fatal("atomic touched L1 despite bypass")
	}
}

func TestSystemDRAMBandwidthQueueing(t *testing.T) {
	s := NewSystem(sysConfig())
	// Two concurrent misses to different L3 sets must serialise on the
	// DRAM channel.
	d1 := s.Access(0x10000, false, false, 0)
	d2 := s.Access(0x20000, false, false, 0)
	if d2 <= d1 {
		t.Fatalf("no DRAM queueing: %d vs %d", d2, d1)
	}
}

func TestSystemResetTimingKeepsContents(t *testing.T) {
	s := NewSystem(sysConfig())
	s.Access(0x4000, false, false, 0)
	s.ResetTiming()
	done := s.Access(0x4000, false, false, 0)
	if done > 10 {
		t.Fatalf("contents lost across ResetTiming: %d cycles", done)
	}
	s.Reset()
	if s.Stats().L1.Accesses != 0 {
		t.Fatal("full Reset did not clear stats")
	}
}

func TestPrefetcherDetectsSequentialRuns(t *testing.T) {
	cfg := sysConfig()
	s := NewSystem(cfg)
	s.PF = NewPrefetcher(2)
	// Sequential stream: after the run is detected, later lines should
	// already be resident (useful prefetches).
	for i := 0; i < 64; i++ {
		s.Access(0x100000+uint64(i)*32, false, false, uint64(i)*10)
	}
	st := s.Stats()
	if st.PF.Issued == 0 {
		t.Fatal("no prefetches issued on a sequential stream")
	}
	if st.PF.Accuracy() < 0.5 {
		t.Fatalf("sequential accuracy %.2f", st.PF.Accuracy())
	}
}

func TestPrefetcherUselessOnRandom(t *testing.T) {
	cfg := sysConfig()
	s := NewSystem(cfg)
	s.PF = NewPrefetcher(2)
	x := uint64(12345)
	for i := 0; i < 512; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		s.Access(0x100000+(x%4096)*32, false, false, uint64(i)*10)
	}
	st := s.Stats()
	// Table III: random probe streams give the prefetcher nothing.
	if st.PF.Accuracy() > 0.3 {
		t.Fatalf("random-stream accuracy %.2f, expected low", st.PF.Accuracy())
	}
}
