package mem

// Prefetcher is a simple tagged next-N-line prefetcher attached to the
// L1. The paper's Table III cites warehouse-scale studies showing data
// prefetchers are largely ineffective on microservice heaps (pointer
// chases and hash probes have no spatial next-line pattern, and stack
// reuse already hits); the prefetcher is modelled so the claim can be
// tested rather than asserted.
type Prefetcher struct {
	// Degree is how many sequential lines are fetched on a trigger.
	Degree int
	// lastLine per stream-table entry detects ascending runs.
	table map[uint64]uint64 // region (4KB) -> last line seen
	Stats PrefetchStats
}

// PrefetchStats counts prefetcher activity.
type PrefetchStats struct {
	Issued uint64 // prefetches sent to the hierarchy
	Useful uint64 // prefetched lines later demanded
}

// Add accumulates o's counts into s.
func (s *PrefetchStats) Add(o *PrefetchStats) {
	s.Issued += o.Issued
	s.Useful += o.Useful
}

// Sub subtracts o's counts from s (o must be an earlier snapshot).
func (s *PrefetchStats) Sub(o *PrefetchStats) {
	s.Issued -= o.Issued
	s.Useful -= o.Useful
}

// AddScaled adds o's counts scaled by f (rounded to nearest) into s —
// the extrapolation step of sampled simulation.
func (s *PrefetchStats) AddScaled(o *PrefetchStats, f float64) {
	s.Issued += scaleCount(o.Issued, f)
	s.Useful += scaleCount(o.Useful, f)
}

// Accuracy returns useful / issued.
func (s PrefetchStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// NewPrefetcher creates a next-line prefetcher of the given degree.
func NewPrefetcher(degree int) *Prefetcher {
	if degree <= 0 {
		degree = 1
	}
	return &Prefetcher{Degree: degree, table: map[uint64]uint64{}}
}

// observe is called on every demand access; it returns the lines to
// prefetch (possibly none).
func (p *Prefetcher) observe(line uint64, lineBytes int) []uint64 {
	region := line / (4096 / uint64(lineBytes))
	last, ok := p.table[region]
	p.table[region] = line
	if len(p.table) > 1024 {
		for k := range p.table {
			delete(p.table, k)
			if len(p.table) <= 512 {
				break
			}
		}
	}
	if !ok || line != last+1 {
		return nil // no ascending pattern
	}
	out := make([]uint64, 0, p.Degree)
	for d := 1; d <= p.Degree; d++ {
		out = append(out, line+uint64(d))
	}
	return out
}
