package mem

// SysConfig describes one core's view of the memory hierarchy. L3 is
// modelled as this core's slice of the shared cache, reached over the
// chip interconnect; DRAM bandwidth is the per-core share of the socket
// (Table IV's memBW/thread × threads/core).
type SysConfig struct {
	L1  CacheConfig
	TLB TLBConfig
	L2  CacheConfig
	L3  CacheConfig
	// ICLatCycles is the core→L3 interconnect latency (mesh average for
	// the CPU, single crossbar hop for the RPU).
	ICLatCycles uint64
	// DRAMLatCycles is the row access latency.
	DRAMLatCycles uint64
	// DRAMBytesPerCycle is the per-core bandwidth share.
	DRAMBytesPerCycle float64
	// AtomicsAtL3 sends atomic RMWs straight to the L3 slice (the
	// RPU's relaxed-coherence design); otherwise atomics behave as
	// normal L1 accesses (the paper's idealistic CPU assumption).
	AtomicsAtL3 bool
}

// SysStats aggregates hierarchy event counts.
type SysStats struct {
	L1, L2, L3   CacheStats
	TLB          TLBStats
	MCU          MCUStats
	DRAMAccesses uint64
	DRAMBytes    uint64
	// AtomicL3 counts atomics routed directly to L3.
	AtomicL3 uint64
	// PF reports prefetcher activity when one is attached.
	PF PrefetchStats
}

// Add accumulates o's counts into s. Study drivers use this to sum the
// per-run deltas of every cell into an aggregate (the accumulation
// semantics pipeline.Stats.Accumulate relies on).
func (s *SysStats) Add(o *SysStats) {
	s.L1.Add(&o.L1)
	s.L2.Add(&o.L2)
	s.L3.Add(&o.L3)
	s.TLB.Add(&o.TLB)
	s.MCU.Add(&o.MCU)
	s.DRAMAccesses += o.DRAMAccesses
	s.DRAMBytes += o.DRAMBytes
	s.AtomicL3 += o.AtomicL3
	s.PF.Add(&o.PF)
}

// Delta returns s minus prev. System counters are cumulative for the
// lifetime of a System, so a run's own contribution is the difference
// between the snapshots taken after and before it; all counters are
// monotone, so summing consecutive deltas reproduces the final
// snapshot exactly.
func (s SysStats) Delta(prev *SysStats) SysStats {
	out := s
	out.L1.Sub(&prev.L1)
	out.L2.Sub(&prev.L2)
	out.L3.Sub(&prev.L3)
	out.TLB.Sub(&prev.TLB)
	out.MCU.Sub(&prev.MCU)
	out.DRAMAccesses -= prev.DRAMAccesses
	out.DRAMBytes -= prev.DRAMBytes
	out.AtomicL3 -= prev.AtomicL3
	out.PF.Sub(&prev.PF)
	return out
}

// AddScaled adds o's counts scaled by f (rounded to nearest) into s —
// the extrapolation step of sampled simulation.
func (s *SysStats) AddScaled(o *SysStats, f float64) {
	s.L1.AddScaled(&o.L1, f)
	s.L2.AddScaled(&o.L2, f)
	s.L3.AddScaled(&o.L3, f)
	s.TLB.AddScaled(&o.TLB, f)
	s.MCU.AddScaled(&o.MCU, f)
	s.DRAMAccesses += scaleCount(o.DRAMAccesses, f)
	s.DRAMBytes += scaleCount(o.DRAMBytes, f)
	s.AtomicL3 += scaleCount(o.AtomicL3, f)
	s.PF.AddScaled(&o.PF, f)
}

// mshrMax caps the number of outstanding fills tracked before the
// table is pruned (and, if still saturated, recycled wholesale).
const mshrMax = 4096

// mshrSlots is the fixed open-addressing table size; occupancy never
// exceeds mshrMax+1 (System.Access prunes the moment the live count
// passes mshrMax), so a probe always terminates at an empty slot and
// the load factor stays ≤ 1/4.
const mshrSlots = 16384

// mshrTable maps outstanding L1 line fills (line address -> fill
// completion cycle) with the same key-value semantics as the map it
// replaces, but without per-insert allocation: linear-probe open
// addressing over a fixed array, plus an insertion log so clearing
// between runs costs O(live entries), not O(table).
type mshrTable struct {
	keys []uint64 // line+1; 0 marks an empty slot
	vals []uint64
	used []int32 // slots occupied since the last clear
}

func mshrHash(line uint64) uint64 {
	return (line * 0x9E3779B97F4A7C15) >> 50 % mshrSlots
}

// get returns the fill cycle registered for line, if any.
func (m *mshrTable) get(line uint64) (uint64, bool) {
	if m.keys == nil {
		return 0, false
	}
	for h := mshrHash(line); ; h = (h + 1) % mshrSlots {
		k := m.keys[h]
		if k == 0 {
			return 0, false
		}
		if k == line+1 {
			return m.vals[h], true
		}
	}
}

// put inserts or overwrites line's fill cycle.
func (m *mshrTable) put(line, fill uint64) {
	if m.keys == nil {
		m.keys = make([]uint64, mshrSlots)
		m.vals = make([]uint64, mshrSlots)
	}
	for h := mshrHash(line); ; h = (h + 1) % mshrSlots {
		switch m.keys[h] {
		case 0:
			m.keys[h] = line + 1
			m.vals[h] = fill
			m.used = append(m.used, int32(h))
			return
		case line + 1:
			m.vals[h] = fill
			return
		}
	}
}

// live returns the number of tracked fills.
func (m *mshrTable) live() int { return len(m.used) }

// clear drops every entry.
func (m *mshrTable) clear() {
	for _, h := range m.used {
		m.keys[h] = 0
	}
	m.used = m.used[:0]
}

// System is one core's memory hierarchy instance with its own timing
// state.
type System struct {
	cfg SysConfig
	L1  *Cache
	TLB *TLB
	L2  *Cache
	L3  *Cache
	MCU MCUStats
	// PF, when non-nil, runs a next-line prefetcher in front of the L1
	// (Table III ablation; off by default).
	PF           *Prefetcher
	prefetched   map[uint64]bool
	mshr         mshrTable // outstanding L1 line fills
	mshrScratch  []uint64  // prune survivor buffer (line, fill pairs)
	dramFree     uint64
	dramAccesses uint64
	dramBytes    uint64
	atomicL3     uint64
}

// NewSystem builds the hierarchy from cfg.
func NewSystem(cfg SysConfig) *System {
	return &System{
		cfg: cfg,
		L1:  NewCache(cfg.L1),
		TLB: NewTLB(cfg.TLB),
		L2:  NewCache(cfg.L2),
		L3:  NewCache(cfg.L3),
	}
}

// Config returns the hierarchy configuration.
func (s *System) Config() SysConfig { return s.cfg }

// Stats snapshots all counters.
func (s *System) Stats() SysStats {
	out := SysStats{
		L1:           s.L1.Stats,
		L2:           s.L2.Stats,
		L3:           s.L3.Stats,
		TLB:          s.TLB.Stats,
		MCU:          s.MCU,
		DRAMAccesses: s.dramAccesses,
		DRAMBytes:    s.dramBytes,
		AtomicL3:     s.atomicL3,
	}
	if s.PF != nil {
		out.PF = s.PF.Stats
	}
	return out
}

// dram serialises a line transfer on the DRAM channel share and returns
// its completion time.
func (s *System) dram(t uint64, bytes int) uint64 {
	start := t
	if s.dramFree > start {
		start = s.dramFree
	}
	transfer := uint64(float64(bytes)/s.cfg.DRAMBytesPerCycle + 0.5)
	if transfer == 0 {
		transfer = 1
	}
	s.dramFree = start + transfer
	s.dramAccesses++
	s.dramBytes += uint64(bytes)
	return start + s.cfg.DRAMLatCycles + transfer
}

// l3Access runs an access at the shared L3 slice, falling through to
// DRAM on a miss; t is the arrival time at the L3.
func (s *System) l3Access(addr uint64, write bool, t uint64) uint64 {
	la := s.L3.LineAddr(addr)
	hit, wb := s.L3.Access(la, write)
	if wb {
		s.dramBytes += uint64(s.cfg.L3.LineBytes)
	}
	done := t + s.cfg.L3.LatCycles
	if !hit {
		done = s.dram(done, s.cfg.L3.LineBytes)
	}
	return done
}

// Access performs one data access and returns its completion cycle.
// Timing effects modelled: L1 bank serialisation, TLB bank lookup with
// page-walk penalty, MSHR merging of outstanding line fills, L2 and L3
// lookup latencies, interconnect latency to L3 and DRAM bandwidth
// queueing. Atomics optionally bypass to L3.
func (s *System) Access(addr uint64, write, atomic bool, t uint64) uint64 {
	if atomic && s.cfg.AtomicsAtL3 {
		s.atomicL3++
		return s.l3Access(addr, true, t+s.cfg.ICLatCycles)
	}

	bankStart := s.L1.BankTime(addr, t)
	walk := s.TLB.Lookup(addr, s.L1.Bank(addr))
	la := s.L1.LineAddr(addr)
	hit, wb := s.L1.Access(la, write)
	if s.PF != nil {
		lb := uint64(s.cfg.L1.LineBytes)
		if s.prefetched[la/lb] {
			s.PF.Stats.Useful++
			delete(s.prefetched, la/lb)
		}
		for _, pl := range s.PF.observe(la/lb, s.cfg.L1.LineBytes) {
			if s.prefetched == nil {
				s.prefetched = map[uint64]bool{}
			}
			if !s.L1.Probe(pl * lb) {
				s.PF.Stats.Issued++
				s.prefetched[pl] = true
				// Fill through the hierarchy off the critical path.
				if h2, _ := s.L2.Access(s.L2.LineAddr(pl*lb), false); !h2 {
					s.l3Access(pl*lb, false, t)
				}
				s.L1.Access(pl*lb, false)
				s.L1.Stats.Accesses-- // fills are not demand accesses
			}
		}
	}
	if wb {
		// Dirty eviction becomes L2 write traffic (no added latency on
		// the critical path).
		s.L2.Access(s.L2.LineAddr(la), true)
	}
	l1Done := bankStart + walk + s.cfg.L1.LatCycles
	if hit {
		return l1Done
	}

	// Merge with an outstanding fill for the same line. A stale entry
	// (fill already past) is simply overwritten by the put below.
	if fill, ok := s.mshr.get(la); ok && fill > l1Done {
		return fill
	}

	hit2, wb2 := s.L2.Access(s.L2.LineAddr(la), false)
	if wb2 {
		s.L3.Access(s.L3.LineAddr(la), true)
	}
	done := l1Done + s.cfg.L2.LatCycles
	if !hit2 {
		done = s.l3Access(la, false, done+s.cfg.ICLatCycles)
	}
	if write {
		// The allocated L1 line is dirty.
		s.L1.MarkDirty(la)
	}
	s.mshr.put(la, done)
	if s.mshr.live() > mshrMax {
		// Amortized prune: drop completed fills; if the table is still
		// saturated with far-future fills, recycle it wholesale (the
		// only cost is losing some merge opportunities).
		keep := s.mshrScratch[:0]
		for _, h := range s.mshr.used {
			if f := s.mshr.vals[h]; f > t {
				keep = append(keep, s.mshr.keys[h]-1, f)
			}
		}
		s.mshr.clear()
		if len(keep) > 2*mshrMax {
			s.mshr.put(la, done)
		} else {
			for i := 0; i < len(keep); i += 2 {
				s.mshr.put(keep[i], keep[i+1])
			}
		}
		s.mshrScratch = keep[:0]
	}
	return done
}

// Warm performs one data access's replacement-state transitions —
// TLB fill, L1/L2/L3 tag updates with writeback propagation — without
// timing, MSHR, prefetcher, DRAM-bandwidth or statistics effects: the
// functional-warmup path of sampled simulation, which keeps the
// hierarchy state a later timed run observes realistically warm at a
// fraction of Access's cost. Zero allocations in the steady state.
func (s *System) Warm(addr uint64, write, atomic bool) {
	if atomic && s.cfg.AtomicsAtL3 {
		s.L3.Warm(s.L3.LineAddr(addr), true)
		return
	}
	s.TLB.Warm(addr, s.L1.Bank(addr))
	la := s.L1.LineAddr(addr)
	hit, wb := s.L1.Warm(la, write)
	if wb {
		s.L2.Warm(s.L2.LineAddr(la), true)
	}
	if hit {
		return
	}
	hit2, wb2 := s.L2.Warm(s.L2.LineAddr(la), false)
	if wb2 {
		s.L3.Warm(s.L3.LineAddr(la), true)
	}
	if !hit2 {
		s.L3.Warm(s.L3.LineAddr(la), false)
	}
}

// ResetTiming clears bank/DRAM/MSHR timing state while keeping cache
// contents and statistics — used between per-request runs on a warm
// core, where each run's clock restarts at zero.
func (s *System) ResetTiming() {
	s.L1.ResetTiming()
	s.L2.ResetTiming()
	s.L3.ResetTiming()
	s.mshr.clear()
	s.dramFree = 0
}

// Reset clears all cache contents, MSHRs and statistics.
func (s *System) Reset() {
	s.L1.Reset()
	s.TLB.Reset()
	s.L2.Reset()
	s.L3.Reset()
	s.MCU = MCUStats{}
	s.mshr.clear()
	s.dramFree = 0
	s.dramAccesses = 0
	s.dramBytes = 0
	s.atomicL3 = 0
}
