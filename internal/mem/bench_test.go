package mem

import "testing"

func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(CacheConfig{Name: "b", SizeBytes: 64 << 10, Ways: 8, LineBytes: 32, Banks: 1, LatCycles: 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*32%(128<<10), i%4 == 0)
	}
}

func BenchmarkSystemAccess(b *testing.B) {
	s := NewSystem(sysConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Access(uint64(i)*40%(1<<20), false, false, uint64(i))
	}
}

func BenchmarkCoalesceBroadcast(b *testing.B) {
	lanes := make([][]uint64, 32)
	for i := range lanes {
		lanes[i] = []uint64{0x1000}
	}
	var st MCUStats
	var sc CoalesceScratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Coalesce(lanes, 32, &st, &sc)
	}
}

func BenchmarkCoalesceDivergent(b *testing.B) {
	lanes := make([][]uint64, 32)
	for i := range lanes {
		lanes[i] = []uint64{uint64(i) * 8192}
	}
	var st MCUStats
	var sc CoalesceScratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Coalesce(lanes, 32, &st, &sc)
	}
}

// BenchmarkCoalesceScratch exercises the shared-scratch append path the
// uop builder and tracedump use: a reused dst arena plus one scratch
// across the whole run must be 0 allocs/op once warm.
func BenchmarkCoalesceScratch(b *testing.B) {
	lanes := make([][]uint64, 32)
	for i := range lanes {
		lanes[i] = []uint64{0x1000 + uint64(i)*4, 0x1004 + uint64(i)*4}
	}
	var st MCUStats
	var sc CoalesceScratch
	dst := make([]uint64, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst, _ = AppendCoalesce(dst[:0], &sc, lanes, 32, &st)
	}
}
