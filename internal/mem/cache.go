// Package mem models the SIMR memory system: banked set-associative
// caches with LRU replacement, per-bank TLBs, MSHR-based miss merging,
// the RPU's memory coalescing unit (MCU), DRAM channels with a
// latency+bandwidth model, and the mesh vs crossbar interconnects the
// paper compares.
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	Banks     int
	// LatCycles is the hit latency.
	LatCycles uint64
	// BytesPerCycle is the peak read bandwidth (reporting only).
	BytesPerCycle int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// CacheStats counts cache events.
type CacheStats struct {
	Accesses      uint64
	Misses        uint64
	Writebacks    uint64
	BankConflicts uint64
}

// Add accumulates o's counts into s.
func (s *CacheStats) Add(o *CacheStats) {
	s.Accesses += o.Accesses
	s.Misses += o.Misses
	s.Writebacks += o.Writebacks
	s.BankConflicts += o.BankConflicts
}

// Sub subtracts o's counts from s (o must be an earlier snapshot).
func (s *CacheStats) Sub(o *CacheStats) {
	s.Accesses -= o.Accesses
	s.Misses -= o.Misses
	s.Writebacks -= o.Writebacks
	s.BankConflicts -= o.BankConflicts
}

// AddScaled adds o's counts scaled by f (rounded to nearest) into s —
// the extrapolation step of sampled simulation.
func (s *CacheStats) AddScaled(o *CacheStats, f float64) {
	s.Accesses += scaleCount(o.Accesses, f)
	s.Misses += scaleCount(o.Misses, f)
	s.Writebacks += scaleCount(o.Writebacks, f)
	s.BankConflicts += scaleCount(o.BankConflicts, f)
}

// scaleCount rounds v*f to the nearest integer count.
func scaleCount(v uint64, f float64) uint64 {
	return uint64(float64(v)*f + 0.5)
}

// MPKI returns misses per thousand of the given instruction count.
func (s CacheStats) MPKI(instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instrs) * 1000
}

// HitRate returns the fraction of accesses that hit.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a banked, set-associative, write-allocate, write-back cache.
// Lines are interleaved over banks at line granularity, as in the RPU's
// multi-bank L1 (which is why TLB entries must be duplicated per bank).
type Cache struct {
	cfg  CacheConfig
	sets int
	// lineShift is log2(LineBytes); tag extraction on the access fast
	// path is a shift instead of a division. setMask/bankMask replace
	// the modulo when the count is a power of two (setsPow2/banksPow2),
	// which all chip geometries are for banks and the L1/L2 for sets.
	lineShift uint
	setMask   uint64
	bankMask  uint64
	setsPow2  bool
	banksPow2 bool
	lines     []line // sets × ways
	tick      uint64
	bankFree  []uint64 // next cycle each bank can accept an access
	Stats     CacheStats
}

// NewCache builds a cache from cfg; the shape must divide evenly and
// the line size must be a power of two (LineAddr masks on it).
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	sets := cfg.Sets()
	if sets == 0 || cfg.SizeBytes%(cfg.Ways*cfg.LineBytes) != 0 ||
		cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: cache %q shape invalid: size=%d ways=%d line=%d",
			cfg.Name, cfg.SizeBytes, cfg.Ways, cfg.LineBytes))
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		lines:    make([]line, sets*cfg.Ways),
		bankFree: make([]uint64, cfg.Banks),
	}
	for 1<<c.lineShift < cfg.LineBytes {
		c.lineShift++
	}
	if sets&(sets-1) == 0 {
		c.setsPow2, c.setMask = true, uint64(sets-1)
	}
	if cfg.Banks&(cfg.Banks-1) == 0 {
		c.banksPow2, c.bankMask = true, uint64(cfg.Banks-1)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address of addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// Bank returns the bank servicing addr (line-granularity interleave).
func (c *Cache) Bank(addr uint64) int {
	l := addr >> c.lineShift
	if c.banksPow2 {
		return int(l & c.bankMask)
	}
	return int(l % uint64(c.cfg.Banks))
}

// set returns the set index for a line tag.
func (c *Cache) set(tag uint64) int {
	if c.setsPow2 {
		return int(tag & c.setMask)
	}
	return int(tag % uint64(c.sets))
}

// BankTime serialises an access on addr's bank starting no earlier than
// t and returns the cycle the bank actually accepted it. Accesses to
// distinct banks proceed in parallel; same-bank accesses serialise
// (bank conflicts).
func (c *Cache) BankTime(addr uint64, t uint64) uint64 {
	b := c.Bank(addr)
	start := t
	if c.bankFree[b] > start {
		start = c.bankFree[b]
		c.Stats.BankConflicts++
	}
	c.bankFree[b] = start + 1
	return start
}

// Access looks up addr; on a miss the line is allocated (write-allocate)
// and the evicted dirty line counts as a writeback. Returns hit and
// whether a dirty line was written back.
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.tick++
	c.Stats.Accesses++
	tag := addr >> c.lineShift
	set := c.set(tag)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.tick
			if write {
				ways[i].dirty = true
			}
			return true, false
		}
	}
	c.Stats.Misses++
	// Choose LRU victim.
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	writeback = ways[victim].valid && ways[victim].dirty
	if writeback {
		c.Stats.Writebacks++
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, used: c.tick}
	return false, writeback
}

// Warm performs Access's tag-state transition — LRU bump on hit,
// write-allocate with LRU victim choice on miss — without touching
// Stats, for the functional-warmup path of sampled simulation. The
// LRU tick still advances so recency order matches a timed access.
func (c *Cache) Warm(addr uint64, write bool) (hit, writeback bool) {
	c.tick++
	tag := addr >> c.lineShift
	set := c.set(tag)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.tick
			if write {
				ways[i].dirty = true
			}
			return true, false
		}
	}
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	writeback = ways[victim].valid && ways[victim].dirty
	ways[victim] = line{tag: tag, valid: true, dirty: write, used: c.tick}
	return false, writeback
}

// MarkDirty sets the dirty bit on addr's line if resident, without
// counting an access.
func (c *Cache) MarkDirty(addr uint64) {
	tag := addr >> c.lineShift
	set := c.set(tag)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].dirty = true
			return
		}
	}
}

// Probe reports whether addr is resident without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	set := c.set(tag)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return true
		}
	}
	return false
}

// ResetTiming clears bank timing state (between independent runs that
// share cache contents).
func (c *Cache) ResetTiming() {
	for i := range c.bankFree {
		c.bankFree[i] = 0
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.bankFree {
		c.bankFree[i] = 0
	}
	c.tick = 0
	c.Stats = CacheStats{}
}
