// Package sample implements SMARTS-style systematic sampling for the
// chip-level timing simulation: every Period-th unit (batch, SMT
// group, or scalar request) is fully timed on the cycle-level core,
// the Warmup units immediately preceding each timed unit run a cheap
// functional-warmup pass that keeps cache/TLB/predictor state warm,
// and the rest are skipped entirely. Aggregate statistics are
// extrapolated from the timed population with per-metric mean and
// relative-confidence-interval estimates, so study output carries its
// own error bounds.
package sample

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Config selects the sampling regime for one run. The zero value (and
// any Period < 1) disables the sampler entirely; Period == 1 engages
// the sampler machinery but times every unit, which must reproduce the
// unsampled run exactly.
type Config struct {
	// Period is the systematic sampling interval: the last unit of
	// every Period-unit window is timed (i % Period == Period-1), so
	// the warmup window always precedes the measurement — timing the
	// first unit instead would measure the one unit guaranteed to see
	// cold microarchitectural state and extrapolate that bias over the
	// whole population. 0 disables sampling; 1 times everything.
	Period int
	// Warmup is how many units immediately before each timed unit run
	// the functional-warmup pass (cache/TLB/predictor state updates
	// without timing). Units outside the warmup window are skipped —
	// not even prepared. Warmup >= Period-1 warms every skipped unit.
	Warmup int
}

// Active reports whether the sampler machinery runs at all.
func (c Config) Active() bool { return c.Period > 0 }

// Sampling reports whether any unit is actually skipped or warmed
// (Period 1 times everything and leaves results bit-identical).
func (c Config) Sampling() bool { return c.Period > 1 }

// Validate rejects negative fields.
func (c Config) Validate() error {
	if c.Period < 0 || c.Warmup < 0 {
		return fmt.Errorf("sample: invalid config period=%d warmup=%d", c.Period, c.Warmup)
	}
	return nil
}

// String renders the config in the -sample flag syntax.
func (c Config) String() string {
	if !c.Active() {
		return "off"
	}
	return fmt.Sprintf("%d:%d", c.Period, c.Warmup)
}

// Role classifies one unit's treatment under a sampling config.
type Role uint8

const (
	// RoleTimed units run the full cycle-level timing model.
	RoleTimed Role = iota
	// RoleWarm units run the functional-warmup pass only.
	RoleWarm
	// RoleSkip units are dropped without even being prepared.
	RoleSkip
)

// initialWarmUnits is the minimum warmup window applied before the
// run's first timed unit. Every later timed unit inherits state carried
// over from its predecessors' windows, but the first one starts from
// empty caches and predictors; its window is warmed at least this
// deeply regardless of Warmup so one cold measurement does not get
// extrapolated over the whole population. Four units matches the
// deepest warmup the accuracy study needed (see EXPERIMENTS.md).
const initialWarmUnits = 4

// Role returns unit i's treatment: timed at the end of each sampling
// window (i % Period == Period-1, so warmup always precedes the
// measurement — timing the first unit of a window instead would
// systematically measure the coldest state), warmed when within Warmup
// units of the next timed unit, skipped otherwise. The window before
// the first timed unit is warmed at least initialWarmUnits deep.
func (c Config) Role(i int) Role {
	if c.Period <= 1 {
		return RoleTimed
	}
	d := c.Period - 1 - i%c.Period // units until this window's timed unit
	if d == 0 {
		return RoleTimed
	}
	w := c.Warmup
	if i < c.Period-1 && w < initialWarmUnits {
		w = initialWarmUnits
	}
	if d <= w {
		return RoleWarm
	}
	return RoleSkip
}

// Parse reads the -sample flag syntax: "off" (or "" or "0") disables
// sampling, "PERIOD" times every PERIOD-th unit with one warmup unit,
// and "PERIOD:WARMUP" sets both.
func Parse(s string) (Config, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" || s == "0" {
		return Config{}, nil
	}
	spec, warmStr, hasWarm := strings.Cut(s, ":")
	period, err := strconv.Atoi(spec)
	if err != nil || period < 1 {
		return Config{}, fmt.Errorf("sample: bad period %q (want 'off', PERIOD or PERIOD:WARMUP)", s)
	}
	warm := 1
	if hasWarm {
		warm, err = strconv.Atoi(warmStr)
		if err != nil || warm < 0 {
			return Config{}, fmt.Errorf("sample: bad warmup %q (want 'off', PERIOD or PERIOD:WARMUP)", s)
		}
	}
	return Config{Period: period, Warmup: warm}, nil
}

// defaultCfg holds the process-wide sampling default as
// (period<<32 | warmup)+1 so the zero word means "no override". It
// backs the cmd tools' -sample flag, which needs to reach every study
// without threading a parameter through each driver — the same shape
// as core's prep-lookahead pin.
var defaultCfg atomic.Uint64

// SetDefault installs the sampling config every run without an
// explicit Options.Sample will use. The zero Config restores the
// unsampled default.
func SetDefault(c Config) {
	if !c.Active() {
		defaultCfg.Store(0)
		return
	}
	defaultCfg.Store((uint64(c.Period)<<32 | uint64(c.Warmup)) + 1)
}

// Default returns the process-wide sampling config (zero when unset).
func Default() Config {
	v := defaultCfg.Load()
	if v == 0 {
		return Config{}
	}
	v--
	return Config{Period: int(v >> 32), Warmup: int(v & 0xffffffff)}
}

// Metric is one extrapolated quantity with its sampling error bound.
type Metric struct {
	Name string `json:"name"`
	// Mean is the per-unit sample mean over the timed units.
	Mean float64 `json:"mean_per_unit"`
	// RelCI95 is the 95% confidence half-interval relative to the
	// mean (0 when the mean is 0 or fewer than two units were timed).
	RelCI95 float64 `json:"rel_ci95"`
}

// Estimate summarises one sampled run: population and sample sizes
// plus per-metric error bounds. It is attached to core.Result only
// when sampling actually skipped work (Period > 1).
type Estimate struct {
	Period int `json:"period"`
	Warmup int `json:"warmup"`
	// Units is the population size (batches / groups / requests);
	// Timed+Warmed+Skipped partition it.
	Units   int `json:"units"`
	Timed   int `json:"timed"`
	Warmed  int `json:"warmed"`
	Skipped int `json:"skipped"`
	// Requests and TimedRequests weight the extrapolation: counters
	// scale by Requests/TimedRequests, not Units/Timed, because units
	// carry unequal request counts (tail batches).
	Requests      int      `json:"requests"`
	TimedRequests int      `json:"timed_requests"`
	Metrics       []Metric `json:"metrics"`
}

// Metric returns the named metric, or a zero Metric when absent.
func (e *Estimate) Metric(name string) Metric {
	for _, m := range e.Metrics {
		if m.Name == name {
			return m
		}
	}
	return Metric{}
}

// MaxRelCI returns the largest relative CI over all metrics — the
// conservative single error bound for the whole run.
func (e *Estimate) MaxRelCI() float64 {
	max := 0.0
	for _, m := range e.Metrics {
		if m.RelCI95 > max {
			max = m.RelCI95
		}
	}
	return max
}

// Meter accumulates per-unit observations from the timed units
// (Welford online mean/variance per metric) and produces the final
// Estimate with finite-population-corrected confidence intervals.
type Meter struct {
	cfg   Config
	units int
	names []string

	n    int // timed units observed
	mean []float64
	m2   []float64

	warmed        int
	timedRequests int
	requests      int
}

// NewMeter sizes a meter for a population of units covering requests
// requests, tracking one Welford accumulator per metric name.
func NewMeter(cfg Config, units, requests int, names []string) *Meter {
	return &Meter{
		cfg:      cfg,
		units:    units,
		names:    names,
		mean:     make([]float64, len(names)),
		m2:       make([]float64, len(names)),
		requests: requests,
	}
}

// Observe records one timed unit covering reqs requests; vals must
// parallel the meter's metric names.
func (m *Meter) Observe(reqs int, vals ...float64) {
	m.n++
	m.timedRequests += reqs
	for k, v := range vals {
		d := v - m.mean[k]
		m.mean[k] += d / float64(m.n)
		m.m2[k] += d * (v - m.mean[k])
	}
}

// Warmed records one functionally-warmed unit.
func (m *Meter) Warmed() { m.warmed++ }

// TimedRequests returns the requests covered by timed units so far.
func (m *Meter) TimedRequests() int { return m.timedRequests }

// Estimate finalises the run's sampling summary.
func (m *Meter) Estimate() *Estimate {
	e := &Estimate{
		Period:        m.cfg.Period,
		Warmup:        m.cfg.Warmup,
		Units:         m.units,
		Timed:         m.n,
		Warmed:        m.warmed,
		Skipped:       m.units - m.n - m.warmed,
		Requests:      m.requests,
		TimedRequests: m.timedRequests,
	}
	for k, name := range m.names {
		e.Metrics = append(e.Metrics, Metric{
			Name:    name,
			Mean:    m.mean[k],
			RelCI95: m.relCI(k),
		})
	}
	return e
}

// relCI returns metric k's 95% confidence half-interval relative to
// its mean, with the finite-population correction for sampling n of
// N units without replacement.
func (m *Meter) relCI(k int) float64 {
	if m.n < 2 || m.mean[k] == 0 {
		return 0
	}
	variance := m.m2[k] / float64(m.n-1)
	se := math.Sqrt(variance / float64(m.n))
	if m.units > 1 && m.n < m.units {
		se *= math.Sqrt(float64(m.units-m.n) / float64(m.units-1))
	}
	return 1.96 * se / math.Abs(m.mean[k])
}
