package sample

import (
	"math"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Config
		err  bool
	}{
		{"", Config{}, false},
		{"off", Config{}, false},
		{"0", Config{}, false},
		{"1", Config{Period: 1, Warmup: 1}, false},
		{"4", Config{Period: 4, Warmup: 1}, false},
		{"4:0", Config{Period: 4, Warmup: 0}, false},
		{"8:3", Config{Period: 8, Warmup: 3}, false},
		{" 4:2 ", Config{Period: 4, Warmup: 2}, false},
		{"-1", Config{}, true},
		{"4:-1", Config{}, true},
		{"x", Config{}, true},
		{"4:x", Config{}, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err != nil) != c.err {
			t.Fatalf("Parse(%q): err=%v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestRolePartition(t *testing.T) {
	// Period 4, warmup 1: timed at 3,7,11,... warm at 2,6,10,... skip
	// the rest — except the initial window (units 0..2), which is
	// warmed in full so the first measurement never starts cold.
	c := Config{Period: 4, Warmup: 1}
	want := []Role{RoleWarm, RoleWarm, RoleWarm, RoleTimed, RoleSkip, RoleSkip, RoleWarm, RoleTimed,
		RoleSkip, RoleSkip, RoleWarm, RoleTimed}
	for i, w := range want {
		if got := c.Role(i); got != w {
			t.Fatalf("Role(%d) = %v, want %v", i, got, w)
		}
	}
	// Large periods cap the initial warm window at initialWarmUnits:
	// the first timed unit gets a deep warmup without paying to warm
	// the whole leading window, and steady-state windows use Warmup.
	c = Config{Period: 8, Warmup: 1}
	want = []Role{RoleSkip, RoleSkip, RoleSkip, RoleWarm, RoleWarm, RoleWarm, RoleWarm, RoleTimed,
		RoleSkip, RoleSkip, RoleSkip, RoleSkip, RoleSkip, RoleSkip, RoleWarm, RoleTimed}
	for i, w := range want {
		if got := c.Role(i); got != w {
			t.Fatalf("period 8: Role(%d) = %v, want %v", i, got, w)
		}
	}
	// Warmup >= Period-1 warms every non-timed unit.
	c = Config{Period: 3, Warmup: 2}
	for i := 0; i < 12; i++ {
		if got := c.Role(i); got == RoleSkip {
			t.Fatalf("Role(%d) = skip with full warmup", i)
		}
	}
	// Period 1 times everything; Period 0 too (sampler off).
	for _, c := range []Config{{Period: 1}, {}} {
		for i := 0; i < 8; i++ {
			if got := c.Role(i); got != RoleTimed {
				t.Fatalf("cfg %+v: Role(%d) = %v, want timed", c, i, got)
			}
		}
	}
}

func TestDefaultPin(t *testing.T) {
	defer SetDefault(Config{})
	if got := Default(); got.Active() {
		t.Fatalf("unset default = %+v, want inactive", got)
	}
	SetDefault(Config{Period: 8, Warmup: 3})
	if got := Default(); got != (Config{Period: 8, Warmup: 3}) {
		t.Fatalf("Default() = %+v after SetDefault(8:3)", got)
	}
	SetDefault(Config{Period: 4, Warmup: 0})
	if got := Default(); got != (Config{Period: 4, Warmup: 0}) {
		t.Fatalf("Default() = %+v after SetDefault(4:0)", got)
	}
	SetDefault(Config{})
	if got := Default(); got.Active() {
		t.Fatalf("Default() = %+v after reset, want inactive", got)
	}
}

func TestMeterEstimate(t *testing.T) {
	// 8 units, period 4, warmup 1: units 0 and 4 timed, 3 and 7
	// warmed, 4 skipped.
	cfg := Config{Period: 4, Warmup: 1}
	m := NewMeter(cfg, 8, 80, []string{"cycles", "uops"})
	m.Observe(10, 100, 50)
	m.Warmed()
	m.Observe(10, 120, 50)
	m.Warmed()
	e := m.Estimate()
	if e.Timed != 2 || e.Warmed != 2 || e.Skipped != 4 || e.Units != 8 {
		t.Fatalf("partition = %d/%d/%d of %d", e.Timed, e.Warmed, e.Skipped, e.Units)
	}
	if e.TimedRequests != 20 || e.Requests != 80 {
		t.Fatalf("requests = %d/%d", e.TimedRequests, e.Requests)
	}
	cy := e.Metric("cycles")
	if cy.Mean != 110 {
		t.Fatalf("cycles mean = %v, want 110", cy.Mean)
	}
	// sd = sqrt(200) over n=2, FPC sqrt(6/7).
	wantCI := 1.96 * math.Sqrt(200.0/2) * math.Sqrt(6.0/7) / 110
	if math.Abs(cy.RelCI95-wantCI) > 1e-12 {
		t.Fatalf("cycles relCI = %v, want %v", cy.RelCI95, wantCI)
	}
	// A constant metric has zero CI.
	if u := e.Metric("uops"); u.RelCI95 != 0 || u.Mean != 50 {
		t.Fatalf("uops = %+v, want mean 50 ci 0", u)
	}
	if e.MaxRelCI() != cy.RelCI95 {
		t.Fatalf("MaxRelCI = %v, want %v", e.MaxRelCI(), cy.RelCI95)
	}
	if e.Metric("absent") != (Metric{}) {
		t.Fatalf("absent metric should be zero")
	}
}

func TestConfigString(t *testing.T) {
	if s := (Config{}).String(); s != "off" {
		t.Fatalf("zero config String = %q", s)
	}
	if s := (Config{Period: 4, Warmup: 1}).String(); s != "4:1" {
		t.Fatalf("String = %q, want 4:1", s)
	}
	// String round-trips through Parse.
	c := Config{Period: 8, Warmup: 2}
	got, err := Parse(c.String())
	if err != nil || got != c {
		t.Fatalf("round trip %+v -> %q -> %+v err %v", c, c.String(), got, err)
	}
}
