package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not zero")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 {
		t.Fatalf("mean = %v", m.Value())
	}
	m.AddN(10, 2)
	if m.Count() != 4 || m.Value() != (2+4+20)/4.0 {
		t.Fatalf("weighted mean = %v count %d", m.Value(), m.Count())
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample(0)
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got < 98 || got > 100 {
		t.Fatalf("p99 = %v", got)
	}
	if s.Max() != 100 {
		t.Fatalf("max = %v", s.Max())
	}
	if math.Abs(s.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(4)
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should return zeros")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := NewSample(len(vals))
		for _, v := range vals {
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return va <= vb+1e-9 && va >= sorted[0]-1e-9 && vb <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("geomean of non-positives = %v", g)
	}
	if g := GeoMean([]float64{5, -1}); math.Abs(g-5) > 1e-9 {
		t.Fatalf("geomean skipping negatives = %v", g)
	}
}

func TestHarmonicMean(t *testing.T) {
	if h := HarmonicMean([]float64{1, 1}); math.Abs(h-1) > 1e-9 {
		t.Fatalf("harmonic = %v", h)
	}
	if h := HarmonicMean([]float64{2, 6}); math.Abs(h-3) > 1e-9 {
		t.Fatalf("harmonic = %v", h)
	}
	if h := HarmonicMean(nil); h != 0 {
		t.Fatalf("empty harmonic = %v", h)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1.0)
	for i := 0; i < 20; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 20 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Bucket(0) != 1 {
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	// Values >= 9 clamp into the last bucket.
	if h.Bucket(9) != 11 {
		t.Fatalf("last bucket = %d", h.Bucket(9))
	}
	h.Add(-5)
	if h.Bucket(0) != 2 {
		t.Fatal("negative not clamped to first bucket")
	}
}

func TestHistogramInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid histogram")
		}
	}()
	NewHistogram(0, 1)
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio")
	}
	if Ratio(6, 0) != 0 {
		t.Fatal("ratio by zero should be 0")
	}
}
