// Package stats provides small statistical helpers used throughout the
// SIMR simulators: streaming means, percentile estimation over recorded
// samples, fixed-bucket histograms and geometric means for the
// cross-workload summaries the paper reports.
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Mean is a streaming arithmetic mean with count tracking.
type Mean struct {
	sum float64
	n   int
}

// Add records one observation.
func (m *Mean) Add(v float64) {
	m.sum += v
	m.n++
}

// AddN records an observation with weight n.
func (m *Mean) AddN(v float64, n int) {
	m.sum += v * float64(n)
	m.n += n
}

// Value returns the current mean, or 0 if no observations were recorded.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Sum returns the running total.
func (m *Mean) Sum() float64 { return m.sum }

// Count returns the number of observations.
func (m *Mean) Count() int { return m.n }

// Sample accumulates observations for percentile queries. It retains all
// samples; the system simulator records at most a few hundred thousand
// request latencies per sweep point, which is well within budget.
type Sample struct {
	vals   []float64
	sorted bool
}

// NewSample returns a Sample with capacity hint n. Non-positive hints
// (a zero- or negative-rate caller) allocate an empty sample.
func NewSample(n int) *Sample {
	if n < 0 {
		n = 0
	}
	return &Sample{vals: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Len returns the number of recorded observations.
func (s *Sample) Len() int { return len(s.vals) }

// Mean returns the arithmetic mean of the recorded observations.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Max returns the largest recorded observation, or 0 when empty.
func (s *Sample) Max() float64 {
	max := 0.0
	for i, v := range s.vals {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// GobEncode serializes the sample for the distributed-sweep wire
// format. Observations travel in insertion order as raw float64 bits —
// Mean sums in that order, so a decoded sample reproduces the original
// byte for byte in every report.
func (s *Sample) GobEncode() ([]byte, error) {
	buf := make([]byte, 0, 9+8*len(s.vals))
	if s.sorted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(s.vals)))
	for _, v := range s.vals {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf, nil
}

// GobDecode restores a sample produced by GobEncode.
func (s *Sample) GobDecode(b []byte) error {
	if len(b) < 9 {
		return fmt.Errorf("stats: sample payload too short (%d bytes)", len(b))
	}
	s.sorted = b[0] == 1
	n := binary.BigEndian.Uint64(b[1:9])
	if uint64(len(b)-9) != 8*n {
		return fmt.Errorf("stats: sample payload %d bytes for %d values", len(b), n)
	}
	s.vals = make([]float64, n)
	for i := range s.vals {
		s.vals[i] = math.Float64frombits(binary.BigEndian.Uint64(b[9+8*i:]))
	}
	return nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. Returns 0 when no samples were recorded.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// GeoMean returns the geometric mean of vs, skipping non-positive
// entries (which would otherwise poison the product). Returns 0 when no
// positive entries exist.
func GeoMean(vs []float64) float64 {
	logSum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// HarmonicMean returns the harmonic mean of vs, skipping non-positive
// entries. Returns 0 when no positive entries exist.
func HarmonicMean(vs []float64) float64 {
	inv, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			inv += 1 / v
			n++
		}
	}
	if inv == 0 {
		return 0
	}
	return float64(n) / inv
}

// Histogram is a fixed-width bucket histogram over [0, width*buckets);
// observations beyond the last bucket are clamped into it.
type Histogram struct {
	width   float64
	counts  []int
	total   int
	overMax int
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape n=%d width=%g", n, width))
	}
	return &Histogram{width: width, counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := int(v / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
		h.overMax++
	}
	h.counts[i]++
	h.total++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Ratio returns a/b, or 0 when b is 0. It keeps report code tidy when a
// denominator can legitimately be empty (e.g. a service with no loads).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
