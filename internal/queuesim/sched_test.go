package queuesim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// equivBase is a small, fast tail scenario for heap-vs-calendar
// equivalence: enough load for queueing, hedges and retries, small
// enough that the full grid runs in seconds.
func equivBase() TailConfig {
	c := DefaultConfig()
	c.QPS = 3000
	c.Seconds = 0.3
	c.Warmup = 0.05
	c.Drain = 3
	return TailConfig{Config: c, Scale: 1}
}

// TestSchedulerEquivalence: the calendar queue + timer wheel must be a
// drop-in for the binary heap — byte-identical TailMetrics across all
// five bundled graphs × 4 seeds × {poisson,mmpp,closed} ×
// {no-policy, timeout+retry+hedge+qcap} × {cpu,rpu,rpu-split}.
func TestSchedulerEquivalence(t *testing.T) {
	arrivals := []struct {
		label string
		ac    ArrivalConfig
	}{
		{"poisson", ArrivalConfig{Process: ArrPoisson}},
		{"mmpp", ArrivalConfig{Process: ArrMMPP}},
		{"closed", ArrivalConfig{Process: ArrClosed, Users: 150, ThinkMs: 10}},
	}
	policies := []struct {
		label string
		pc    PolicyConfig
	}{
		{"nopol", PolicyConfig{}},
		{"fullpol", PolicyConfig{TimeoutMs: 20, MaxRetries: 2, BackoffMs: 1,
			HedgeMs: 10, QueueCap: 400}},
	}
	modes := []struct {
		label string
		mut   func(*TailConfig)
	}{
		{"cpu", func(c *TailConfig) {}},
		{"rpu", func(c *TailConfig) { c.RPU = true }},
		{"rpu-split", func(c *TailConfig) { c.RPU = true; c.Split = true }},
	}
	for _, gname := range GraphNames() {
		for seed := int64(1); seed <= 4; seed++ {
			for _, arr := range arrivals {
				for _, pol := range policies {
					for _, mode := range modes {
						label := fmt.Sprintf("%s/seed%d/%s/%s/%s",
							gname, seed, arr.label, pol.label, mode.label)
						mk := func(sched Scheduler) *TailMetrics {
							cfg := equivBase()
							cfg.Seed = seed
							cfg.Arrivals = arr.ac
							cfg.Policy = pol.pc
							mode.mut(&cfg)
							g, err := GraphByName(gname, cfg.Config)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							cfg.Graph = g
							cfg.Scheduler = sched
							return mustTail(t, cfg)
						}
						heap, cal := mk(SchedHeap), mk(SchedCalendar)
						if !reflect.DeepEqual(heap, cal) {
							t.Fatalf("%s: schedulers diverged:\nheap     %+v\ncalendar %+v",
								label, heap, cal)
						}
					}
				}
			}
		}
	}
}

// orderRun floods a Sim with heavily colliding timestamps — including
// same-time chains scheduled from inside the handler and timers armed
// mid-run — and records the dispatch order. Heap and calendar must
// produce the identical sequence: ties break on arming seq, nothing
// else.
func orderRun(sched Scheduler) (order []int64, events uint64) {
	s := NewSimSched(1, sched)
	var chained int32
	s.Handle = func(kind uint8, a, b int32) {
		order = append(order, int64(kind)<<32|int64(a))
		if b > 0 {
			// Same-timestamp chain: reschedules at now with a fresh seq.
			chained++
			s.AtEvent(0, 2, 1_000_000+chained, b-1)
		}
	}
	rng := rand.New(rand.NewSource(42))
	times := []float64{0, 0.001, 0.001, 0.5, 0.5, 0.5, 0.5, 7, 7, 7}
	for i := 0; i < 5000; i++ {
		d := times[rng.Intn(len(times))]
		if i%10 == 0 {
			s.AtTimer(d, 3, int32(i), int32(rng.Intn(3))) // timer, never cancelled
		} else {
			s.AtEvent(d, 1, int32(i), int32(rng.Intn(3)))
		}
	}
	s.Run(100)
	return order, s.Events()
}

// TestCalendarHeapOrderProperty: the same-timestamp flood property
// test — dispatch order under massive (at) collisions is identical
// across schedulers.
func TestCalendarHeapOrderProperty(t *testing.T) {
	ho, he := orderRun(SchedHeap)
	co, ce := orderRun(SchedCalendar)
	if len(ho) == 0 {
		t.Fatal("order run dispatched nothing")
	}
	if !reflect.DeepEqual(ho, co) {
		for i := range ho {
			if i >= len(co) || ho[i] != co[i] {
				t.Fatalf("dispatch order diverged at %d: heap %d calendar %v (heap %d events, calendar %d)",
					i, ho[i], co[min(i, len(co)-1)], len(ho), len(co))
			}
		}
		t.Fatalf("dispatch order diverged in length: heap %d calendar %d", len(ho), len(co))
	}
	if he != ce {
		t.Fatalf("event counts diverged with no cancellations: heap %d calendar %d", he, ce)
	}
}

// wheelRun arms timers straddling every wheel level boundary (level 0
// ends at 32 ms, level 1 at 2048 ms, level 2 at 131072 ms, the wheel
// at ~8.39e6 ms), cancels a deterministic subset before and during the
// run, and records the surviving dispatch order. The heap twin runs
// the identical script; its cancelled timers still pop, so the handler
// screens them out the way the engine's generation checks do.
func wheelRun(t *testing.T, sched Scheduler) (order []int32, s *Sim, stale int) {
	t.Helper()
	delays := []float64{
		0.1, 3, 15.9, 16.1, 31.7, 31.9, 32.1, 33, 48, 63.9, 64.1, // level 0/1 boundary
		500, 2040, 2047.9, 2048.1, 2100, 4000, // level 1/2 boundary
		60000, 131071, 131073, 500000, // level 2/3 boundary
		2e6, 8e6, 8.5e6, 9e6, // top level and overflow
	}
	s = NewSimSched(3, sched)
	cancelled := make(map[int32]bool)
	s.Handle = func(kind uint8, a, b int32) {
		if cancelled[a] {
			stale++
			return
		}
		order = append(order, a)
		if len(order)%8 == 0 {
			// Arm a short timer mid-drain: it must merge into the due
			// window in global (at, seq) order.
			s.AtTimer(0.01, 2, 10_000+int32(len(order)), 0)
		}
	}
	ids := make([]TimerID, 0, 4*len(delays))
	var n int32
	for rep := 0; rep < 4; rep++ {
		for _, d := range delays {
			ids = append(ids, s.AtTimer(d+float64(rep)*0.003, 1, n, 0))
			n++
		}
	}
	// Cancel every 7th timer up front (hits twInSlot and twInOvf)...
	for i, id := range ids {
		if i%7 == 3 {
			s.Cancel(id)
			cancelled[int32(i)] = true
		}
	}
	// ...run partway, then cancel every 7th survivor with a pending
	// deadline (hits twInDue tombstones and re-placed slot entries).
	s.Run(16)
	for i, id := range ids {
		d := delays[i%len(delays)]
		if i%7 == 5 && d > 16 {
			s.Cancel(id)
			cancelled[int32(i)] = true
		}
	}
	s.Run(1e7)
	return order, s, stale
}

// TestWheelCascade: boundary-straddling timers dispatch in exact (at,
// seq) order through slot cascades, the overflow list and mid-drain
// arming, with cancellation windows at every state — and the wheel
// actually exercised its cascade and overflow machinery.
func TestWheelCascade(t *testing.T) {
	ho, hs, hstale := wheelRun(t, SchedHeap)
	co, cs, cstale := wheelRun(t, SchedCalendar)
	if !reflect.DeepEqual(ho, co) {
		t.Fatalf("surviving dispatch order diverged: heap %d entries, calendar %d", len(ho), len(co))
	}
	if cstale != 0 {
		t.Fatalf("calendar dispatched %d cancelled timers; cancellation must be physical", cstale)
	}
	if hstale == 0 {
		t.Fatal("heap oracle saw no stale pops; cancellation script is inert")
	}
	if hs.CancelledTimers() != cs.CancelledTimers() {
		t.Fatalf("CancelledTimers diverged: heap %d calendar %d",
			hs.CancelledTimers(), cs.CancelledTimers())
	}
	// Calendar never dispatches what it descheduled; the heap pops
	// everything.
	if got, want := cs.Events(), hs.Events()-uint64(hstale); got != want {
		t.Fatalf("calendar events %d, want heap events minus stale pops %d", got, want)
	}
	if hs.Pending() != 0 || cs.Pending() != 0 {
		t.Fatalf("pending after full drain: heap %d calendar %d", hs.Pending(), cs.Pending())
	}
	if cs.tw.cascades == 0 {
		t.Fatal("no slot cascades: boundary delays never crossed a level")
	}
	if cs.tw.overflows == 0 {
		t.Fatal("no overflow placements: horizon delays fit the wheel")
	}
	if cs.tw.live != 0 {
		t.Fatalf("wheel reports %d live timers after drain", cs.tw.live)
	}
}

// TestCancelledTimerSemantics: Pending() and Events() exclude
// physically descheduled timers under the calendar scheduler, while
// the heap oracle keeps them queued until their stale pop — the
// documented contract.
func TestCancelledTimerSemantics(t *testing.T) {
	for _, sched := range []Scheduler{SchedHeap, SchedCalendar} {
		s := NewSimSched(1, sched)
		fired := 0
		s.Handle = func(kind uint8, a, b int32) { fired++ }
		ids := make([]TimerID, 10)
		for i := range ids {
			ids[i] = s.AtTimer(float64(i+1), 1, int32(i), 0)
		}
		for i := 0; i < 4; i++ {
			s.Cancel(ids[i])
		}
		wantPending := 10
		if sched == SchedCalendar {
			wantPending = 6
		}
		if got := s.Pending(); got != wantPending {
			t.Fatalf("%v: Pending after 4 cancels = %d, want %d", sched, got, wantPending)
		}
		if got := s.CancelledTimers(); got != 4 {
			t.Fatalf("%v: CancelledTimers = %d, want 4", sched, got)
		}
		s.Run(100)
		wantEvents := uint64(10)
		if sched == SchedCalendar {
			wantEvents = 6
		}
		if got := s.Events(); got != wantEvents {
			t.Fatalf("%v: Events after drain = %d, want %d", sched, got, wantEvents)
		}
		if s.Pending() != 0 {
			t.Fatalf("%v: Pending after drain = %d", sched, s.Pending())
		}
	}
}

// TestCalendarResizeMidRun: interleaved pushes and pops drive the
// bucket array through grows and shrinks and the scan through the
// direct-min fallback, without ever disturbing the global (at, seq)
// dequeue order.
func TestCalendarResizeMidRun(t *testing.T) {
	q := &calQueue{}
	rng := rand.New(rand.NewSource(5))
	var seq uint64
	push := func(at float64) {
		seq++
		q.push(calEvent{at: at, seq: seq, kind: 1})
	}
	var lastAt float64 = -1
	var lastSeq uint64
	pop := func() {
		e := q.pop()
		if e.at < lastAt || (e.at == lastAt && e.seq < lastSeq) {
			t.Fatalf("order violated: (%.9f, %d) after (%.9f, %d)", e.at, e.seq, lastAt, lastSeq)
		}
		lastAt, lastSeq = e.at, e.seq
	}
	// Phase 1: dense cluster forces grows well past the floor.
	for i := 0; i < 5000; i++ {
		push(rng.Float64() * 100)
	}
	grows := q.resizes
	if grows == 0 {
		t.Fatal("5000 pushes triggered no grow")
	}
	// Phase 2: drain most of it (shrinks), interleaving fresh pushes
	// with timestamps at and beyond the already-popped frontier.
	for i := 0; i < 4600; i++ {
		pop()
		if i%5 == 0 {
			push(lastAt + rng.Float64()*200)
		}
	}
	if q.resizes == grows {
		t.Fatal("drain triggered no shrink")
	}
	// Phase 3: drain fully and walk the bucket array back to the
	// floor, where pops cannot shrink (and so cannot recalibrate the
	// width) any further.
	for q.count > 0 {
		pop()
	}
	for len(q.buckets) > calMinBuckets {
		push(lastAt + 1)
		pop()
	}
	// Two stragglers a full rotation apart: after popping the first,
	// the scan must rotate through every window, miss, and fall back
	// to the direct minimum.
	base := lastAt + 1
	far := base + q.width*float64(len(q.buckets))*3
	push(base)
	push(far)
	pop()
	pop()
	if q.directScans == 0 {
		t.Fatal("far-future straggler never hit the direct-scan fallback")
	}
	if lastAt != far {
		t.Fatalf("last pop at %.3f, want the straggler at %.3f", lastAt, far)
	}
}

// TestSchedCalendarDeterminism: 4 seeds under the calendar scheduler,
// run sequentially and in parallel, must agree exactly — the calendar
// path shares no state across Sims.
func TestSchedCalendarDeterminism(t *testing.T) {
	mk := func() TailConfig {
		cfg := tailBase()
		cfg.QPS = 18000
		cfg.Arrivals = ArrivalConfig{Process: ArrMMPP}
		cfg.Policy = PolicyConfig{TimeoutMs: 50, MaxRetries: 1, BackoffMs: 1, HedgeMs: 20}
		cfg.Scheduler = SchedCalendar
		return cfg
	}
	seq := make([]*TailMetrics, 4)
	for i := range seq {
		cfg := mk()
		cfg.Seed = int64(i + 1)
		seq[i] = mustTail(t, cfg)
	}
	par := make([]*TailMetrics, 4)
	var wg sync.WaitGroup
	for i := range par {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := mk()
			cfg.Seed = int64(i + 1)
			par[i] = mustTail(t, cfg)
		}(i)
	}
	wg.Wait()
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Fatalf("seed %d: parallel calendar run diverged from sequential:\nseq %+v\npar %+v",
				i+1, seq[i], par[i])
		}
	}
}

// TestCalendarSteadyStateAllocs: the calendar+wheel engine with every
// policy timer armed allocates nothing once warmed — the same 0
// allocs/op contract the heap engine carries.
func TestCalendarSteadyStateAllocs(t *testing.T) {
	cfg := tailBase()
	cfg.Seconds = 2
	cfg.Warmup = 0
	cfg.QPS = 15000
	cfg.Policy = PolicyConfig{TimeoutMs: 50, MaxRetries: 1, BackoffMs: 1, HedgeMs: 25}
	cfg.Scheduler = SchedCalendar
	e, err := newTailEngine(cfg)
	if err != nil {
		t.Fatalf("newTailEngine: %v", err)
	}
	now := 200.0
	e.sim.Run(now) // grow arenas, buckets, wheel freelist to steady state
	n := testing.AllocsPerRun(100, func() {
		now += 5
		e.sim.Run(now)
	})
	if n != 0 {
		t.Fatalf("calendar steady-state event loop allocates %v allocs/op, want 0", n)
	}
}

// TestStationTypedDispatchAllocs: the migrated Station service path —
// typed evStation events into a pooled in-service arena — allocates
// nothing beyond whatever closure the caller hands Submit.
func TestStationTypedDispatchAllocs(t *testing.T) {
	for _, sched := range []Scheduler{SchedHeap, SchedCalendar} {
		s := NewSimSched(1, sched)
		st := NewStation(s, "svc", 4)
		done := func() {}
		for i := 0; i < 256; i++ { // warm queue, arena, scheduler
			st.Submit(s.Exp(1), done)
		}
		now := 500.0
		s.Run(now)
		n := testing.AllocsPerRun(200, func() {
			st.Submit(1, done)
			now += 3
			s.Run(now)
		})
		if n != 0 {
			t.Fatalf("%v: station typed dispatch allocates %v allocs/op, want 0", sched, n)
		}
	}
}
