package queuesim

import (
	"testing"
	"time"

	"simr/internal/stats"
)

// TestSaturatedCompletionCriterion: Saturated must implement its
// documented completion criterion — under 95 % of offered completed is
// saturation even when the surviving trickle has a healthy p99. Before
// the fix only the p99 heuristic ran, so a collapsed run whose few
// completions were fast reported as keeping up.
func TestSaturatedCompletionCriterion(t *testing.T) {
	mk := func(completed int) *Metrics {
		m := &Metrics{Offered: 1000, Measured: 1, Completed: completed,
			Latency: stats.NewSample(completed)}
		for i := 0; i < completed; i++ {
			m.Latency.Add(5) // fast: p99 well under 10x baseline
		}
		return m
	}
	if !mk(900).Saturated(2) {
		t.Fatal("90% completion with fast p99 must report saturated")
	}
	if mk(990).Saturated(2) {
		t.Fatal("99% completion with fast p99 must not report saturated")
	}
	if !mk(0).Saturated(2) {
		t.Fatal("zero completions must report saturated")
	}
}

// TestBatcherRearmsPerBatch: the formation timeout belongs to each
// batch, measured from its first element. Before the fix the timer
// armed for batch N kept running after a size-triggered flush and
// flushed batch N+1 early: with size 2 and timeout 10, elements at
// t=0,1 flush at t=1, and an element at t=2 must launch at t=12 — the
// stale timer fired it at t=10.
func TestBatcherRearmsPerBatch(t *testing.T) {
	sim := NewSim(1)
	var launches []float64
	b := &batcher[int]{sim: sim, size: 2, timeout: 10,
		launch: func([]int) { launches = append(launches, sim.Now()) }}
	sim.At(0, func() { b.add(1) })
	sim.At(1, func() { b.add(2) })
	sim.At(2, func() { b.add(3) })
	sim.Run(100)
	want := []float64{1, 12}
	if len(launches) != len(want) || launches[0] != want[0] || launches[1] != want[1] {
		t.Fatalf("launch times %v, want %v (stale formation timer fired early)", launches, want)
	}
}

// TestCensoringDrain: completions are attributed by arrival inside the
// measured window and collected through the drain horizon. Before the
// fix Run stopped dead at the arrival horizon, so any request still in
// flight — all of them, when the horizon is shorter than the service
// path — was silently dropped and saturated load points reported zero
// throughput.
func TestCensoringDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPS = 1000
	cfg.Seconds = 0.01 // 10 ms of arrivals...
	cfg.Warmup = 0
	cfg.HitRate = 0            // every request takes the storage path
	cfg.StorageLatency = 50    // ...each needing >= 50 ms to finish
	cfg.Drain = 1
	m := Run(cfg)
	if m.Completed == 0 {
		t.Fatal("all completions censored at the arrival horizon")
	}
	if p := m.Latency.Percentile(50); p < 50 {
		t.Fatalf("median latency %.1f ms < 50 ms storage floor: wrong requests counted", p)
	}
	// And nothing arriving after the horizon may be counted: offered
	// load stops at Seconds, so completions cannot exceed arrivals.
	if m.Completed > int(cfg.QPS*cfg.Seconds*2) {
		t.Fatalf("%d completions from a ~%.0f-arrival window", m.Completed, cfg.QPS*cfg.Seconds)
	}
}

// TestRunZeroQPS: a non-positive rate means no arrivals, not a
// divide-by-zero arrival storm pinned to t=0.
func TestRunZeroQPS(t *testing.T) {
	for _, qps := range []float64{0, -5} {
		done := make(chan *Metrics, 1)
		go func() {
			cfg := DefaultConfig()
			cfg.QPS = qps
			cfg.Seconds = 1
			done <- Run(cfg)
		}()
		select {
		case m := <-done:
			if m.Completed != 0 {
				t.Fatalf("QPS=%v completed %d requests", qps, m.Completed)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("QPS=%v: Run hung (zero-delay arrival loop)", qps)
		}
	}
	cfg := DefaultTailConfig()
	cfg.QPS = 0
	cfg.Seconds = 1
	if m := RunTail(cfg); m.Arrived != 0 {
		t.Fatalf("tail engine with QPS=0 arrived %d", m.Arrived)
	}
}

// TestUtilExcludesDrain: utilisation is measured over the arrival
// window only; a long drain after an overloaded run must not dilute
// it below saturation.
func TestUtilExcludesDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPS = 40000 // far past the ~17.5 kQPS CPU knee
	cfg.Seconds = 2
	cfg.Warmup = 0.5
	cfg.Drain = 5
	m := Run(cfg)
	if m.UserUtil < 0.99 {
		t.Fatalf("overloaded user tier reports %.3f utilisation; drain leaked into the window", m.UserUtil)
	}
}
