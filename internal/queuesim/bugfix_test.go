package queuesim

import (
	"testing"
	"time"

	"simr/internal/stats"
)

// TestSaturatedCompletionCriterion: Saturated must implement its
// documented completion criterion — under 95 % of offered completed is
// saturation even when the surviving trickle has a healthy p99. Before
// the fix only the p99 heuristic ran, so a collapsed run whose few
// completions were fast reported as keeping up.
func TestSaturatedCompletionCriterion(t *testing.T) {
	mk := func(completed int) *Metrics {
		m := &Metrics{Offered: 1000, Measured: 1, Completed: completed,
			Latency: stats.NewSample(completed)}
		for i := 0; i < completed; i++ {
			m.Latency.Add(5) // fast: p99 well under 10x baseline
		}
		return m
	}
	if !mk(900).Saturated(2) {
		t.Fatal("90% completion with fast p99 must report saturated")
	}
	if mk(990).Saturated(2) {
		t.Fatal("99% completion with fast p99 must not report saturated")
	}
	if !mk(0).Saturated(2) {
		t.Fatal("zero completions must report saturated")
	}
}

// TestBatcherRearmsPerBatch: the formation timeout belongs to each
// batch, measured from its first element. Before the fix the timer
// armed for batch N kept running after a size-triggered flush and
// flushed batch N+1 early: with size 2 and timeout 10, elements at
// t=0,1 flush at t=1, and an element at t=2 must launch at t=12 — the
// stale timer fired it at t=10.
func TestBatcherRearmsPerBatch(t *testing.T) {
	sim := NewSim(1)
	var launches []float64
	b := &batcher[int]{sim: sim, size: 2, timeout: 10,
		launch: func([]int) { launches = append(launches, sim.Now()) }}
	sim.At(0, func() { b.add(1) })
	sim.At(1, func() { b.add(2) })
	sim.At(2, func() { b.add(3) })
	sim.Run(100)
	want := []float64{1, 12}
	if len(launches) != len(want) || launches[0] != want[0] || launches[1] != want[1] {
		t.Fatalf("launch times %v, want %v (stale formation timer fired early)", launches, want)
	}
}

// TestCensoringDrain: completions are attributed by arrival inside the
// measured window and collected through the drain horizon. Before the
// fix Run stopped dead at the arrival horizon, so any request still in
// flight — all of them, when the horizon is shorter than the service
// path — was silently dropped and saturated load points reported zero
// throughput.
func TestCensoringDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPS = 1000
	cfg.Seconds = 0.01 // 10 ms of arrivals...
	cfg.Warmup = 0
	cfg.HitRate = 0            // every request takes the storage path
	cfg.StorageLatency = 50    // ...each needing >= 50 ms to finish
	cfg.Drain = 1
	m := Run(cfg)
	if m.Completed == 0 {
		t.Fatal("all completions censored at the arrival horizon")
	}
	if p := m.Latency.Percentile(50); p < 50 {
		t.Fatalf("median latency %.1f ms < 50 ms storage floor: wrong requests counted", p)
	}
	// And nothing arriving after the horizon may be counted: offered
	// load stops at Seconds, so completions cannot exceed arrivals.
	if m.Completed > int(cfg.QPS*cfg.Seconds*2) {
		t.Fatalf("%d completions from a ~%.0f-arrival window", m.Completed, cfg.QPS*cfg.Seconds)
	}
}

// TestRunZeroQPS: a non-positive rate means no arrivals, not a
// divide-by-zero arrival storm pinned to t=0.
func TestRunZeroQPS(t *testing.T) {
	for _, qps := range []float64{0, -5} {
		done := make(chan *Metrics, 1)
		go func() {
			cfg := DefaultConfig()
			cfg.QPS = qps
			cfg.Seconds = 1
			done <- Run(cfg)
		}()
		select {
		case m := <-done:
			if m.Completed != 0 {
				t.Fatalf("QPS=%v completed %d requests", qps, m.Completed)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("QPS=%v: Run hung (zero-delay arrival loop)", qps)
		}
	}
	cfg := DefaultTailConfig()
	cfg.QPS = 0
	cfg.Seconds = 1
	if _, err := RunTail(cfg); err == nil {
		t.Fatal("tail engine with QPS=0 must report a config error, not a silent empty run")
	}
}

// TestBackoffNoOverflow: the exponential backoff doubles in an integer
// shift; before the fix `1<<(tries-1)` in int overflowed for deep
// retry budgets (tries ≥ 64 gave zero or negative backoff — an
// immediate-retry storm with MaxRetries: 100). The exponent now
// saturates at 2^16 and MaxBackoffMs caps the wait outright.
func TestBackoffNoOverflow(t *testing.T) {
	cfg := tailBase()
	cfg.Policy = PolicyConfig{TimeoutMs: 10, MaxRetries: 100, BackoffMs: 1}
	e, err := newTailEngine(cfg)
	if err != nil {
		t.Fatalf("newTailEngine: %v", err)
	}
	// Jitter is ±20%, so any backoff is within [0.8, 1.2]·d.
	maxD := 1.2 * cfg.Policy.BackoffMs * float64(int64(1)<<backoffShiftCap)
	for _, tries := range []uint8{1, 2, 17, 64, 70, 100, 255} {
		d := e.backoff(tries)
		if d <= 0 {
			t.Fatalf("tries=%d: backoff %v ms; overflowed shift collapsed the wait", tries, d)
		}
		if d > maxD {
			t.Fatalf("tries=%d: backoff %v ms exceeds the 2^%d doubling cap %v", tries, d, backoffShiftCap, maxD)
		}
	}
	// Small exponents are bit-identical to the uncapped doubling.
	for _, tries := range []uint8{1, 2, 3, 10, 17} {
		want := cfg.Policy.BackoffMs * float64(int64(1)<<(tries-1))
		d := e.backoff(tries)
		if d < 0.8*want || d > 1.2*want {
			t.Fatalf("tries=%d: backoff %v ms outside jitter band of %v ms", tries, d, want)
		}
	}
	// An explicit ceiling binds before the doubling cap.
	e.pol.MaxBackoffMs = 5
	for _, tries := range []uint8{4, 100} {
		if d := e.backoff(tries); d > 1.2*5 {
			t.Fatalf("tries=%d: backoff %v ms ignores MaxBackoffMs=5", tries, d)
		}
	}
	// And the engine survives a deep-retry overload run: with the
	// overflow, retries re-issued instantly and the run exploded. The
	// explicit ceiling keeps the worst retry chain (100 tries × ~16 ms)
	// inside the drain horizon so conservation can close.
	cfg.QPS = 25000
	cfg.Seconds = 1
	cfg.Warmup = 0.25
	cfg.Policy.MaxBackoffMs = 5
	m := mustTail(t, cfg)
	checkConservation(t, m, "deep-retry")
	if m.Retried == 0 {
		t.Fatal("deep retry budget produced no retries")
	}
}

// TestArrivalDefaultsPreserveExplicitValues: withDefaults must
// distinguish unset (zero) from explicit degenerate values. Before the
// fix BurstMul: 1 was rewritten to 4 (a constant-rate MMPP was
// unexpressible) and DiurnalAmp could not express a flat shape.
func TestArrivalDefaultsPreserveExplicitValues(t *testing.T) {
	// Unset fields take the documented defaults.
	a := ArrivalConfig{}.withDefaults(1000)
	if a.BurstMul != DefaultBurstMul || a.BurstFrac != DefaultBurstFrac ||
		a.MeanBurstMs != DefaultMeanBurstMs || a.DiurnalAmp != DefaultDiurnalAmp ||
		a.ThinkMs != DefaultThinkMs || a.DiurnalPeriodMs != 1000 {
		t.Fatalf("zero config did not take defaults: %+v", a)
	}
	// Explicit degenerate MMPP: BurstMul 1 stays 1.
	a = ArrivalConfig{BurstMul: 1}.withDefaults(1000)
	if a.BurstMul != 1 {
		t.Fatalf("explicit BurstMul=1 rewritten to %v", a.BurstMul)
	}
	// Sub-unity multipliers (anti-bursts) survive too.
	a = ArrivalConfig{BurstMul: 0.5}.withDefaults(1000)
	if a.BurstMul != 0.5 {
		t.Fatalf("explicit BurstMul=0.5 rewritten to %v", a.BurstMul)
	}
	// Explicit flat diurnal shape via the sentinel.
	a = ArrivalConfig{DiurnalAmp: FlatDiurnal}.withDefaults(1000)
	if a.DiurnalAmp != 0 {
		t.Fatalf("FlatDiurnal resolved to amplitude %v, want 0", a.DiurnalAmp)
	}
	// And a flat diurnal run really is flat: it matches plain Poisson
	// arrival counts at the same seed (same thinning always accepts).
	cfg := tailBase()
	cfg.Seconds = 1
	cfg.Arrivals = ArrivalConfig{Process: ArrDiurnal, DiurnalAmp: FlatDiurnal}
	flat := mustTail(t, cfg)
	if flat.Arrived == 0 {
		t.Fatal("flat diurnal run saw no arrivals")
	}
	rate := float64(flat.Arrived) / flat.Measured
	if rate < 0.9*cfg.QPS || rate > 1.1*cfg.QPS {
		t.Fatalf("flat diurnal rate %.0f/s, want ~%.0f/s with zero amplitude", rate, cfg.QPS)
	}
	// A degenerate MMPP run behaves as constant-rate Poisson.
	cfg = tailBase()
	cfg.Seconds = 1
	cfg.Arrivals = ArrivalConfig{Process: ArrMMPP, BurstMul: 1}
	m := mustTail(t, cfg)
	rate = float64(m.Arrived) / m.Measured
	if rate < 0.9*cfg.QPS || rate > 1.1*cfg.QPS {
		t.Fatalf("degenerate MMPP rate %.0f/s, want ~%.0f/s", rate, cfg.QPS)
	}
}

// TestTailDegenerateConfigErrors: degenerate configurations are config
// errors, not silent empty runs reported as measured. Before the fix
// ArrClosed with Users: 0 "ran" to completion with zero arrivals.
func TestTailDegenerateConfigErrors(t *testing.T) {
	for _, tc := range []struct {
		label string
		mut   func(*TailConfig)
	}{
		{"closed-zero-users", func(c *TailConfig) { c.Arrivals = ArrivalConfig{Process: ArrClosed} }},
		{"closed-negative-users", func(c *TailConfig) {
			c.Arrivals = ArrivalConfig{Process: ArrClosed, Users: -10}
		}},
		{"open-zero-qps", func(c *TailConfig) { c.QPS = 0 }},
		{"open-negative-qps", func(c *TailConfig) { c.QPS = -100 }},
		{"mmpp-zero-qps", func(c *TailConfig) { c.QPS = 0; c.Arrivals = ArrivalConfig{Process: ArrMMPP} }},
		{"diurnal-zero-qps", func(c *TailConfig) { c.QPS = 0; c.Arrivals = ArrivalConfig{Process: ArrDiurnal} }},
		{"zero-seconds", func(c *TailConfig) { c.Seconds = 0 }},
		{"legacy-with-graph", func(c *TailConfig) { c.Legacy = true; c.Graph = HotelGraph() }},
	} {
		cfg := tailBase()
		tc.mut(&cfg)
		if _, err := RunTail(cfg); err == nil {
			t.Fatalf("%s: expected a config error", tc.label)
		}
	}
	// The closed loop with a real population still runs.
	cfg := tailBase()
	cfg.Seconds = 1
	cfg.Arrivals = ArrivalConfig{Process: ArrClosed, Users: 100}
	if m := mustTail(t, cfg); m.Arrived == 0 {
		t.Fatal("closed loop with Users=100 saw no arrivals")
	}
}

// TestUtilExcludesDrain: utilisation is measured over the arrival
// window only; a long drain after an overloaded run must not dilute
// it below saturation.
func TestUtilExcludesDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPS = 40000 // far past the ~17.5 kQPS CPU knee
	cfg.Seconds = 2
	cfg.Warmup = 0.5
	cfg.Drain = 5
	m := Run(cfg)
	if m.UserUtil < 0.99 {
		t.Fatalf("overloaded user tier reports %.3f utilisation; drain leaked into the window", m.UserUtil)
	}
}
