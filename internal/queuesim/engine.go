// The tail-at-scale engine: a declarative service graph run as a
// pooled, allocation-free state machine instead of a closure graph, so
// data-center populations (10⁶+ in-flight requests) are cheap. The
// scenario comes from a compiled GraphSpec (graph.go) walked by the
// generic executor (exec.go); TailConfig.Legacy instead routes the
// retired hand-coded social-network dispatch (legacy.go), kept as the
// byte-identity oracle. Requests and batches live in index-addressed
// arenas, station queues are packed (index, generation) rings, and
// every hop is a typed event dispatched through the Sim's non-boxing
// scheduler — by default the O(1) calendar queue plus hierarchical
// timer wheel (TailConfig.Scheduler selects the binary-heap oracle) —
// and steady-state event dispatch performs zero heap allocations.
// Cancellation (timeouts, hedge losers) is lazy: a cancelled entry is
// marked dead and collected by whatever holds it (its pending event, a
// queue slot, or its batch), and generation counters make stale
// timer/hedge/retry events no-ops, so nothing is ever searched or
// removed from the middle of a queue. Armed timers additionally carry
// a TimerID: when a slot is freed (or a batch launches early) the
// engine cancels them, which the wheel turns into a physical O(1)
// deschedule while the heap oracle still pops them as stale no-ops —
// either way the logical cancellation count and every metric agree
// byte for byte.
//
// Ownership discipline: at any instant each live request (and each
// batch) has exactly one *driver* — the pending event moving it, the
// station-queue slot holding it, the batch it joined, or (for a
// fanned-out request) its outstanding legs collectively. Only the
// driver frees the arena slot, and a slot's generation only advances
// on free, so auxiliary events (timeout/hedge/retry) can always detect
// staleness by comparing generations.
package queuesim

import (
	"fmt"
	"math"

	"simr/internal/stats"
)

// Typed event kinds (evFunc = 0 in sim.go is the closure kind).
const (
	ekArrival    uint8 = iota + 1 // next open-loop arrival; a = arrival generation
	ekFlip                        // MMPP state flip
	ekNet                         // request a enters stage b after the wire delay
	ekSvcDone                     // station b finished serving request a
	ekBatchNet                    // batch a enters batch stage b
	ekBatchDone                   // station b finished serving batch a
	ekBatchTimer                  // formation timeout for batch a armed at generation b
	ekTimeout                     // per-try timeout for request a at generation b
	ekRetry                       // backoff expired: re-issue request a at generation b
	ekHedge                       // hedge point for request a at generation b
	ekThink                       // closed-loop user a finished thinking
)

// Request flags.
const (
	rfHit   uint8 = 1 << iota // memcached hit (legacy dispatch)
	rfDead                    // cancelled; the driver collects the slot
	rfHedge                   // this slot is the hedge copy
	rfLeg                     // fan-out leg: joins its parent, never completes
)

// ereq is one pooled request (or request copy: a retry or hedge, or a
// fan-out leg).
type ereq struct {
	arrive float64 // first arrival of the logical request (latency origin)
	enq    float64 // submission time at the current station
	gen    uint32  // advances on free; stale events compare against it
	user   int32   // closed-loop user index, -1 for open loop
	twin   int32   // hedge partner slot, -1 when none
	parent int32   // fan-out parent slot (sync legs), -1 otherwise
	pgen   uint32  // parent's generation when the leg was spawned
	joins  int32   // outstanding sync legs (fan-out parents)
	// hTimeout/hHedge are the armed per-try timeout and hedge timers,
	// cleared when they fire and cancelled when the slot is freed.
	hTimeout TimerID
	hHedge   TimerID
	coins    uint16 // per-request coin draws (generic executor)
	stage    int8
	tries    uint8
	flags    uint8
}

// ebatch is one pooled RPU batch (or batch fan-out leg).
type ebatch struct {
	enq     float64
	members []int32
	gen     uint32
	parent  int32 // batch fan-out parent, -1 otherwise
	joins   int32 // outstanding sync batch legs
	// hTimer is the armed formation timer, cleared when it fires and
	// cancelled by a size-triggered launch.
	hTimer  TimerID
	stage   int8
	forming bool
}

// ring is a growable power-of-two circular FIFO of packed
// (index, generation) words — the station queues.
type ring struct {
	buf  []int64
	head int
	n    int
}

func pack(idx int32, gen uint32) int64 { return int64(idx)<<32 | int64(gen) }
func unpack(v int64) (int32, uint32)   { return int32(v >> 32), uint32(v) }

func (r *ring) push(v int64) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring) pop() int64 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *ring) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 64
	}
	nb := make([]int64, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// estation is a multi-server FIFO station over the arenas. Unlike the
// closure-based Station it never allocates on the service path.
type estation struct {
	q          ring
	name       string
	idx        int32
	servers    int32
	busy       int32
	batched    bool // queue holds batch indices, not request indices
	busyTime   float64
	lastChange float64
	probe      *stationProbe
}

func (st *estation) account(now float64) {
	st.busyTime += float64(st.busy) * (now - st.lastChange)
	st.lastChange = now
}

// TailConfig parameterises one tail-at-scale load point. The embedded
// Config supplies the demands, cores, batch formation, hit rate, seed
// and horizon; Scale multiplies every station's capacity so a
// Scale=100 run is the 100x-machines analog. Batching is always at
// the graph's batch-formation point (the paper's §VI-H logic-tier
// placement for the bundled graphs); BatchAtWebTier is ignored here.
type TailConfig struct {
	Config
	// Scale multiplies station capacities (number of machines); < 1 is
	// treated as 1.
	Scale    float64
	Arrivals ArrivalConfig
	Policy   PolicyConfig
	// Graph selects the scenario; nil runs SocialGraph(cfg.Config),
	// the Figure 22 social-network analog.
	Graph *GraphSpec
	// Legacy routes the retired hand-coded social-network dispatch
	// instead of the spec executor (equivalence oracle; incompatible
	// with Graph).
	Legacy bool
	// Scheduler selects the pending-event container. The zero value is
	// SchedCalendar (calendar queue + timer wheel, the O(1) default);
	// SchedHeap keeps the binary heap as the byte-identity oracle.
	Scheduler Scheduler
}

// DefaultTailConfig returns the 100x Figure 22 analog: one hundred
// times the paper's machines offered one hundred times the paper's
// CPU-knee load (15 kQPS → 1.5 MQPS) under open Poisson arrivals.
func DefaultTailConfig() TailConfig {
	c := DefaultConfig()
	c.QPS = 1.5e6
	c.Seconds = 2
	c.Warmup = 0.5
	return TailConfig{Config: c, Scale: 100}
}

// TailMetrics is the outcome of one tail-at-scale load point.
type TailMetrics struct {
	// Offered is the configured open-loop rate, or the realised
	// arrival rate for closed-loop runs.
	Offered float64
	// Arrived counts logical requests arriving inside the measured
	// window; every one of them resolves as Completed or Failed when
	// the drain horizon suffices.
	Arrived   int
	Completed int
	// Failed counts requests abandoned after exhausting their retry
	// budget (timeouts and queue rejections with no tries left).
	Failed    int
	TimedOut  int
	Retried   int
	Hedged    int
	HedgeWins int
	Rejected  int
	// Latency samples end-to-end latency (ms) of completed requests
	// that arrived inside the measured window.
	Latency  *stats.Sample
	Measured float64 // seconds of measured arrival window
	UserUtil float64 // bottleneck (batch tier) utilisation over the arrival window
	// InFlightHWM is the high-water mark of requests in the system
	// (including retry, hedge and fan-out copies).
	InFlightHWM int
	// Events is the number of *useful* simulator events dispatched:
	// stale gen-checked timer no-ops are subtracted, so the count is
	// identical whichever scheduler ran the point (the heap oracle
	// pops a cancelled timer as a stale no-op; the calendar scheduler
	// never dispatches it at all).
	Events uint64
	// CancelledTimers counts timers logically descheduled (timeouts
	// and hedges of freed slots, size-preempted batch timers) —
	// identical across schedulers; only the calendar scheduler turns
	// each into a physical O(1) removal.
	CancelledTimers uint64
	Batches         int
	AvgBatchFill    float64
	SplitBatches    int
}

// Saturated reports whether the system failed to keep up with offered
// load, using the same tail blow-up heuristic as Metrics.Saturated:
// p99 over 10x the unloaded latency, or completion under 95 % of
// offered. Because the drain window lets a backlogged run finish every
// request eventually, the latency criterion is what catches saturation
// in runs without timeout policies.
func (m *TailMetrics) Saturated(baselineP99 float64) bool {
	if m.Latency.Len() == 0 {
		return true
	}
	if m.Offered > 0 && m.Measured > 0 &&
		float64(m.Completed) < 0.95*m.Offered*m.Measured {
		return true
	}
	return m.Latency.Percentile(99) > 10*baselineP99
}

// Throughput returns completed requests per measured second.
func (m *TailMetrics) Throughput() float64 {
	if m.Measured <= 0 {
		return 0
	}
	return float64(m.Completed) / m.Measured
}

// engine wires the arenas, stations, arrival process and policies to
// the Sim's typed-event loop.
type engine struct {
	cfg TailConfig
	arr ArrivalConfig
	pol PolicyConfig
	sim *Sim
	m   *TailMetrics

	g      *cgraph
	legacy bool
	netHop float64

	sts     []estation
	demands [6]float64 // legacy dispatch stage demands
	latMul  float64

	endMs, warmupMs float64

	reqs  []ereq
	freeR []int32
	live  int

	// staleEvents counts dispatched timer events whose generation check
	// failed (or whose target was already dead/launched) — the no-op
	// pops TailMetrics.Events subtracts to stay scheduler-invariant.
	staleEvents uint64

	batches    []ebatch
	freeB      []int32
	memberPool [][]int32
	forming    int32 // forming batch index, -1 when none

	// Arrival-process state (see arrivals.go).
	arrGen     int32
	mmppBurst  bool
	rate       float64
	rateCalm   float64
	rateBurst  float64
	rateMax    float64
	meanCalmMs float64

	inflightTS float64
}

// RunTail simulates one tail-at-scale load point. It returns an error
// for a degenerate configuration (zero horizon, open loop without a
// positive QPS, closed loop without users, RPU over a batchless
// graph) or an invalid graph spec, instead of silently reporting an
// empty run as measured.
func RunTail(cfg TailConfig) (*TailMetrics, error) {
	e, err := newTailEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.run(), nil
}

func newTailEngine(cfg TailConfig) (*engine, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.Seconds <= 0 {
		return nil, fmt.Errorf("queuesim: Seconds must be positive (got %v)", cfg.Seconds)
	}
	if cfg.Arrivals.Process == ArrClosed {
		if cfg.Arrivals.Users <= 0 {
			return nil, fmt.Errorf("queuesim: closed-loop arrivals need Users > 0 (got %d)", cfg.Arrivals.Users)
		}
	} else if cfg.QPS <= 0 {
		return nil, fmt.Errorf("queuesim: open-loop arrivals need QPS > 0 (got %v)", cfg.QPS)
	}
	spec := cfg.Graph
	if cfg.Legacy {
		if spec != nil {
			return nil, fmt.Errorf("queuesim: Legacy runs the hand-coded social graph; Graph must be nil")
		}
		spec = SocialGraph(cfg.Config)
	} else if spec == nil {
		spec = SocialGraph(cfg.Config)
	}
	g, err := compileGraph(spec)
	if err != nil {
		return nil, err
	}
	if cfg.RPU && !g.hasBatch {
		return nil, fmt.Errorf("queuesim: graph %q has no batch path; RPU mode needs one", g.name)
	}

	sim := NewSimSched(cfg.Seed, cfg.Scheduler)
	sim.Mon = cfg.Monitor
	e := &engine{cfg: cfg, pol: cfg.Policy, sim: sim, g: g, legacy: cfg.Legacy,
		forming: -1, inflightTS: math.Inf(-1)}
	e.endMs = cfg.Seconds * 1000
	e.warmupMs = cfg.Warmup * 1000
	e.arr = cfg.Arrivals.withDefaults(e.endMs)
	e.netHop = g.netHop
	if e.netHop <= 0 {
		e.netHop = cfg.NetHop
	}

	e.latMul = 1
	capMul := 1.0
	if cfg.RPU {
		e.latMul = 1.2
		capMul = 5
	}
	scale := cfg.Scale
	cores := float64(cfg.Cores)
	e.sts = make([]estation, len(g.stations))
	for i, sd := range g.stations {
		var servers int32
		switch {
		case sd.infinite:
			servers = Inf
		case cfg.RPU && sd.batchTier:
			// cores × 5x × 1.2 (occupancy per batch) / batch width, per
			// machine, times Scale machines.
			servers = int32(math.Ceil(cores * sd.coresMul * 5 * 1.2 / float64(cfg.BatchSize) * scale))
		default:
			servers = int32(cores * sd.coresMul * capMul * scale)
		}
		if servers <= 0 {
			return nil, fmt.Errorf("queuesim: graph %q: station %q has zero servers at scale %v", g.name, sd.name, scale)
		}
		e.initStation(int32(i), sd.name, servers, cfg.RPU && sd.batched)
	}
	e.demands = [6]float64{cfg.WebDemand, cfg.UserPhase1, cfg.McRouterDemand,
		cfg.MemcachedDemand, cfg.StorageLatency, cfg.UserPhase2}

	est := int(cfg.QPS * cfg.Seconds)
	if e.arr.Process == ArrClosed {
		est = e.arr.Users * 8
	}
	if est < 1024 {
		est = 1024
	}
	e.m = &TailMetrics{Offered: cfg.QPS, Latency: stats.NewSample(est)}
	e.m.Measured = cfg.Seconds - cfg.Warmup
	if e.m.Measured < 0 {
		e.m.Measured = 0
	}
	sim.Handle = e.handle
	e.startArrivals()
	return e, nil
}

func (e *engine) initStation(i int32, name string, servers int32, batched bool) {
	e.sts[i] = estation{name: name, idx: i, servers: servers, batched: batched}
	e.sts[i].probe = e.sim.Mon.station(name, int(servers))
}

func (e *engine) run() *TailMetrics {
	// Utilisation is measured over the arrival window; the drain that
	// follows collects in-flight completions without diluting it.
	e.sim.Run(e.endMs)
	e.m.UserUtil = e.stationUtil(e.g.utilStation)
	e.sim.Run(e.endMs + drainMs(e.cfg.Drain))
	if e.m.Batches > 0 {
		e.m.AvgBatchFill /= float64(e.m.Batches)
	}
	if e.arr.Process == ArrClosed && e.m.Measured > 0 {
		e.m.Offered = float64(e.m.Arrived) / e.m.Measured
	}
	e.m.Events = e.sim.Events() - e.staleEvents
	e.m.CancelledTimers = e.sim.CancelledTimers()
	e.finalizeObs()
	return e.m
}

func (e *engine) stationUtil(i int32) float64 {
	st := &e.sts[i]
	now := e.sim.now
	if now == 0 || st.servers == 0 {
		return 0
	}
	settled := st.busyTime + float64(st.busy)*(now-st.lastChange)
	return settled / (now * float64(st.servers))
}

func (e *engine) finalizeObs() {
	sc := e.cfg.Monitor.runScope()
	if sc == nil {
		return
	}
	sc.Gauge("inflight_hwm").Set(int64(e.m.InFlightHWM))
	sc.Counter("arrived").Add(int64(e.m.Arrived))
	sc.Counter("completed").Add(int64(e.m.Completed))
	sc.Counter("failed").Add(int64(e.m.Failed))
	sc.Counter("timed_out").Add(int64(e.m.TimedOut))
	sc.Counter("retried").Add(int64(e.m.Retried))
	sc.Counter("hedged").Add(int64(e.m.Hedged))
	sc.Counter("rejected").Add(int64(e.m.Rejected))
	sc.Counter("events").Add(int64(e.m.Events))
	e.finalizeSchedObs()
}

// finalizeSchedObs reports the scheduler's own health under
// queuesim.<label>.sched: the logical cancellation count plus, under
// the calendar scheduler, the calendar's resize/occupancy stats and
// the wheel's cascade/deschedule counters.
func (e *engine) finalizeSchedObs() {
	m := e.cfg.Monitor
	if m == nil || m.Reg == nil {
		return
	}
	sc := m.Reg.Scope(ScopeName(m.Label, "sched"))
	sc.Counter("stale_timer_events").Add(int64(e.staleEvents))
	sc.Counter("cancelled_timers").Add(int64(e.sim.ncancel))
	if e.cfg.Scheduler != SchedCalendar {
		return
	}
	cal, tw := &e.sim.cal, &e.sim.tw
	sc.Counter("cal_resizes").Add(int64(cal.resizes))
	sc.Counter("cal_direct_scans").Add(int64(cal.directScans))
	sc.Gauge("cal_bucket_hwm").Set(int64(cal.bucketHWM))
	sc.Gauge("cal_buckets").Set(int64(len(cal.buckets)))
	sc.Counter("wheel_armed").Add(int64(tw.armed))
	sc.Counter("wheel_fired").Add(int64(tw.fired))
	sc.Counter("wheel_descheduled").Add(int64(tw.cancelled))
	sc.Counter("wheel_cascades").Add(int64(tw.cascades))
	sc.Counter("wheel_overflows").Add(int64(tw.overflows))
	sc.Gauge("wheel_due_hwm").Set(int64(tw.dueHWM))
}

// handle routes typed events; this is the whole steady-state hot path.
func (e *engine) handle(kind uint8, a, b int32) {
	switch kind {
	case ekNet:
		if e.legacy {
			e.enterL(a, int8(b))
		} else {
			e.enterG(a, b)
		}
	case ekSvcDone:
		e.onSvcDone(a, b)
	case ekArrival:
		e.onArrival(a)
	case ekBatchNet:
		if e.legacy {
			e.onBatchNetL(a, b)
		} else {
			e.enterBatchG(a, b)
		}
	case ekBatchDone:
		e.onBatchDone(a, b)
	case ekBatchTimer:
		e.onBatchTimer(a, b)
	case ekTimeout:
		e.onTimeout(a, b)
	case ekRetry:
		e.onRetry(a, b)
	case ekHedge:
		e.onHedge(a, b)
	case ekFlip:
		e.onFlip()
	case ekThink:
		e.onThink(a)
	}
}

// --- request arena ---

func (e *engine) alloc() int32 {
	var idx int32
	if n := len(e.freeR); n > 0 {
		idx = e.freeR[n-1]
		e.freeR = e.freeR[:n-1]
	} else {
		e.reqs = append(e.reqs, ereq{})
		idx = int32(len(e.reqs) - 1)
	}
	e.live++
	if e.live > e.m.InFlightHWM {
		e.m.InFlightHWM = e.live
	}
	e.sampleInflight()
	return idx
}

func (e *engine) free(idx int32) {
	r := &e.reqs[idx]
	// The slot's armed timers can never fire usefully once the
	// generation advances; deschedule them instead of leaving stale
	// no-op pops behind. (The retry timer is never cancelled: a slot
	// backing off has the retry event as its driver, which frees it.)
	if r.hTimeout != 0 {
		e.sim.Cancel(r.hTimeout)
		r.hTimeout = 0
	}
	if r.hHedge != 0 {
		e.sim.Cancel(r.hHedge)
		r.hHedge = 0
	}
	r.gen++
	// Clear the outcome state alongside flags: a hedge armed against a
	// try that was inline-rejected (and hence freed) reads this slot, so
	// stale coins must mirror the cleared rfHit of the legacy dispatch.
	r.flags = 0
	r.coins = 0
	r.twin = -1
	e.freeR = append(e.freeR, idx)
	e.live--
}

// sampleInflight emits a thinned trace counter of the live population
// when a Monitor with a trace sink is attached.
func (e *engine) sampleInflight() {
	m := e.cfg.Monitor
	if m == nil || m.Sink == nil {
		return
	}
	if e.sim.now-e.inflightTS < m.MinDT {
		return
	}
	e.inflightTS = e.sim.now
	m.Sink.CounterPair("inflight", m.PID, e.sim.now*1000,
		"live", float64(e.live), "events_pending", float64(e.sim.Pending()))
}

// --- request lifecycle ---

// issue creates and launches a new logical request (user >= 0 ties it
// to a closed-loop client). The legacy dispatch draws its single
// cache coin into rfHit; the generic executor draws every declared
// coin, in declaration order, into the coin bitmask.
func (e *engine) issue(user int32) {
	idx := e.alloc()
	r := &e.reqs[idx]
	now := e.sim.now
	r.arrive = now
	r.user = user
	r.twin = -1
	r.parent = -1
	r.joins = 0
	r.tries = 0
	r.flags = 0
	r.coins = 0
	if e.legacy {
		if e.sim.Rng.Float64() < e.cfg.HitRate {
			r.flags = rfHit
		}
	} else {
		for i, p := range e.g.coins {
			if e.sim.Rng.Float64() < p {
				r.coins |= 1 << uint(i)
			}
		}
	}
	if now >= e.warmupMs && now <= e.endMs {
		e.m.Arrived++
	}
	e.launchTry(idx)
	if e.pol.HedgeMs > 0 {
		e.reqs[idx].hHedge = e.sim.AtTimer(e.pol.HedgeMs, ekHedge, idx, int32(e.reqs[idx].gen))
	}
}

// launchTry arms the per-try timeout and enters the request at the
// graph entry (stage 0 is entered directly, as in Run).
func (e *engine) launchTry(idx int32) {
	if e.pol.TimeoutMs > 0 {
		e.reqs[idx].hTimeout = e.sim.AtTimer(e.pol.TimeoutMs, ekTimeout, idx, int32(e.reqs[idx].gen))
	}
	if e.legacy {
		e.enterL(idx, stWeb)
	} else {
		e.enterG(idx, e.g.entry)
	}
}

func (e *engine) submitReq(st *estation, idx int32) {
	if st.busy < st.servers {
		st.account(e.sim.now)
		st.busy++
		e.serveReq(st, idx)
	} else if e.pol.QueueCap > 0 && st.q.n >= e.pol.QueueCap {
		e.m.Rejected++
		if e.reqs[idx].flags&rfLeg != 0 {
			e.rejectLeg(idx)
		} else {
			e.abandonTry(idx, true)
		}
	} else {
		st.q.push(pack(idx, e.reqs[idx].gen))
	}
	st.probe.sample(e.sim.now, st.q.n, int(st.busy))
}

func (e *engine) serveReq(st *estation, idx int32) {
	if e.legacy {
		e.serveReqL(st, idx)
	} else {
		e.serveReqG(st, idx)
	}
}

func (e *engine) onSvcDone(idx, stIdx int32) {
	st := &e.sts[stIdx]
	now := e.sim.now
	st.account(now)
	st.busy--
	r := &e.reqs[idx]
	st.probe.observe(now, now-r.enq)
	st.probe.sample(now, st.q.n, int(st.busy))
	e.dispatchNext(st)
	if r.flags&rfDead != 0 {
		e.free(idx)
		return
	}
	if e.legacy {
		e.advanceL(idx)
	} else {
		e.advanceG(idx)
	}
}

// dispatchNext pulls queued work onto freed servers, collecting dead
// and stale entries on the way.
func (e *engine) dispatchNext(st *estation) {
	for st.busy < st.servers && st.q.n > 0 {
		idx, gen := unpack(st.q.pop())
		if st.batched {
			b := &e.batches[idx]
			if b.gen != gen {
				continue
			}
			st.account(e.sim.now)
			st.busy++
			e.serveBatch(st, idx)
			continue
		}
		r := &e.reqs[idx]
		if r.gen != gen {
			continue // slot was freed (and possibly reused): stale entry
		}
		if r.flags&rfDead != 0 {
			e.free(idx) // the queue slot was its driver
			continue
		}
		st.account(e.sim.now)
		st.busy++
		e.serveReq(st, idx)
	}
}

// complete resolves a logical request: cancels its hedge twin, records
// the latency by arrival window, wakes its closed-loop user and frees
// the slot.
func (e *engine) complete(idx int32) {
	r := &e.reqs[idx]
	if r.twin >= 0 {
		t := &e.reqs[r.twin]
		if t.twin == idx {
			t.twin = -1
			t.flags |= rfDead // the loser's driver collects it
			if r.flags&rfHedge != 0 {
				e.m.HedgeWins++
			}
		}
		r.twin = -1
	}
	if r.arrive >= e.warmupMs && r.arrive <= e.endMs {
		e.m.Completed++
		e.m.Latency.Add(e.sim.now - r.arrive)
	}
	if r.user >= 0 {
		e.think(r.user)
	}
	e.free(idx)
}

// --- policies ---

func (e *engine) onTimeout(idx, gen int32) {
	r := &e.reqs[idx]
	if r.gen != uint32(gen) {
		// The slot was freed (its timer was cancelled under the wheel;
		// the heap oracle still pops it): a stale no-op.
		e.staleEvents++
		return
	}
	r.hTimeout = 0 // this firing consumes the slot's armed timeout
	if r.flags&rfDead != 0 {
		e.staleEvents++
		return
	}
	e.m.TimedOut++
	e.abandonTry(idx, false)
}

// abandonTry gives up on the current try: retry with backoff if budget
// remains, otherwise fail the logical request. When the caller is the
// slot's driver (inline queue rejection) the slot is freed here; a
// timeout is not the driver and leaves the dead slot for its queue
// entry / in-service event / outstanding legs to collect.
func (e *engine) abandonTry(idx int32, isDriver bool) {
	e.reqs[idx].flags |= rfDead
	r := &e.reqs[idx]
	// r.tries < 255 saturates the uint8 counter: with MaxRetries ≥ 255
	// it would wrap to 0 and retry forever.
	if int(r.tries) < e.pol.MaxRetries && r.tries < math.MaxUint8 {
		e.m.Retried++
		n := e.alloc()
		r = &e.reqs[idx] // alloc may have grown the arena
		c := &e.reqs[n]
		c.arrive = r.arrive
		c.user = r.user
		c.tries = r.tries + 1
		c.flags = r.flags & (rfHit | rfHedge)
		c.coins = r.coins
		c.twin = -1
		c.parent = -1
		c.joins = 0
		// A hedge pair survives a retry: relink so the first completion
		// still cancels the other copy.
		if r.twin >= 0 {
			t := &e.reqs[r.twin]
			if t.twin == idx {
				t.twin = n
				c.twin = r.twin
			}
			r.twin = -1
		}
		// The retry rides the wheel too, but keeps no handle: the timer
		// is the backing-off slot's driver and must always fire (it
		// frees a slot whose twin resolved during the backoff).
		e.sim.AtTimer(e.backoff(c.tries), ekRetry, n, int32(c.gen))
	} else {
		e.failTry(idx)
	}
	if isDriver {
		e.free(idx)
	}
}

// failTry resolves a logical request as failed — unless a live hedge
// twin remains, in which case the survivor carries it alone.
func (e *engine) failTry(idx int32) {
	r := &e.reqs[idx]
	survivor := false
	if r.twin >= 0 {
		t := &e.reqs[r.twin]
		if t.twin == idx && t.flags&rfDead == 0 {
			survivor = true
			t.twin = -1
		}
		r.twin = -1
	}
	if !survivor {
		if r.arrive >= e.warmupMs && r.arrive <= e.endMs {
			e.m.Failed++
		}
		if r.user >= 0 {
			e.think(r.user)
		}
	}
}

func (e *engine) onRetry(idx, gen int32) {
	r := &e.reqs[idx]
	if r.gen != uint32(gen) {
		e.staleEvents++
		return
	}
	if r.flags&rfDead != 0 {
		e.free(idx) // cancelled while backing off (its twin resolved first)
		return
	}
	e.launchTry(idx)
}

func (e *engine) onHedge(idx, gen int32) {
	r := &e.reqs[idx]
	if r.gen != uint32(gen) {
		e.staleEvents++
		return
	}
	r.hHedge = 0 // this firing consumes the slot's armed hedge
	if r.flags&rfDead != 0 || r.twin >= 0 {
		e.staleEvents++
		return
	}
	e.m.Hedged++
	n := e.alloc()
	r = &e.reqs[idx]
	c := &e.reqs[n]
	c.arrive = r.arrive
	c.user = r.user
	c.tries = 0
	c.flags = (r.flags & rfHit) | rfHedge
	c.coins = r.coins
	c.twin = idx
	c.parent = -1
	c.joins = 0
	r.twin = n
	e.launchTry(n)
}

// --- batches (RPU mode) ---

func (e *engine) allocBatch() int32 {
	var idx int32
	if n := len(e.freeB); n > 0 {
		idx = e.freeB[n-1]
		e.freeB = e.freeB[:n-1]
	} else {
		e.batches = append(e.batches, ebatch{})
		idx = int32(len(e.batches) - 1)
	}
	b := &e.batches[idx]
	b.parent = -1
	b.joins = 0
	if n := len(e.memberPool); n > 0 {
		b.members = e.memberPool[n-1][:0]
		e.memberPool = e.memberPool[:n-1]
	} else {
		b.members = make([]int32, 0, e.cfg.BatchSize)
	}
	return idx
}

func (e *engine) freeBatch(idx int32) {
	b := &e.batches[idx]
	if b.hTimer != 0 {
		e.sim.Cancel(b.hTimer)
		b.hTimer = 0
	}
	b.gen++
	b.forming = false
	e.memberPool = append(e.memberPool, b.members)
	b.members = nil
	e.freeB = append(e.freeB, idx)
}

// joinBatch adds a formation-point request to the forming batch,
// arming the formation timer when the batch is born — per batch, from
// its first request, exactly the semantics the legacy batcher's
// generation counter enforces.
func (e *engine) joinBatch(idx int32) {
	if e.forming < 0 {
		bi := e.allocBatch()
		e.forming = bi
		b := &e.batches[bi]
		b.forming = true
		b.hTimer = e.sim.AtTimer(e.cfg.BatchTimeout, ekBatchTimer, bi, int32(b.gen))
	}
	b := &e.batches[e.forming]
	b.members = append(b.members, idx)
	if len(b.members) >= e.cfg.BatchSize {
		bi := e.forming
		e.forming = -1
		e.launchBatch(bi)
	}
}

func (e *engine) onBatchTimer(bi, gen int32) {
	b := &e.batches[bi]
	if b.gen != uint32(gen) {
		e.staleEvents++
		return
	}
	b.hTimer = 0 // this firing consumes the batch's armed timer
	if !b.forming {
		e.staleEvents++
		return
	}
	e.forming = -1
	e.launchBatch(bi)
}

func (e *engine) launchBatch(bi int32) {
	b := &e.batches[bi]
	if b.hTimer != 0 {
		// Size-triggered launch: the formation timer can never fire
		// usefully again, so deschedule it.
		e.sim.Cancel(b.hTimer)
		b.hTimer = 0
	}
	b.forming = false
	e.m.Batches++
	e.m.AvgBatchFill += float64(len(b.members))
	if e.legacy {
		e.bhop(bi, bsUser1)
		return
	}
	if e.g.bentryHop {
		e.sim.AtEvent(e.netHop, ekBatchNet, bi, e.g.bentry)
	} else {
		e.enterBatchG(bi, e.g.bentry)
	}
}

func (e *engine) submitBatch(st *estation, bi int32) {
	if st.busy < st.servers {
		st.account(e.sim.now)
		st.busy++
		e.serveBatch(st, bi)
	} else {
		st.q.push(pack(bi, e.batches[bi].gen))
	}
	st.probe.sample(e.sim.now, st.q.n, int(st.busy))
}

func (e *engine) serveBatch(st *estation, bi int32) {
	if e.legacy {
		e.serveBatchL(st, bi)
	} else {
		e.serveBatchG(st, bi)
	}
}

func (e *engine) onBatchDone(bi, stIdx int32) {
	st := &e.sts[stIdx]
	now := e.sim.now
	st.account(now)
	st.busy--
	b := &e.batches[bi]
	st.probe.observe(now, now-b.enq)
	st.probe.sample(now, st.q.n, int(st.busy))
	e.dispatchNext(st)
	if e.legacy {
		e.onBatchDoneL(bi)
	} else {
		e.onBatchDoneG(bi)
	}
}

func (e *engine) completeBatch(bi int32) {
	b := &e.batches[bi]
	for _, idx := range b.members {
		if e.reqs[idx].flags&rfDead != 0 {
			e.free(idx)
			continue
		}
		e.complete(idx)
	}
	e.freeBatch(bi)
}
