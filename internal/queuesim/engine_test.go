package queuesim

import (
	"sync"
	"testing"
)

// tailBase is a small, fast scenario for engine tests: the Figure 22
// graph at 1x scale, 2 simulated seconds, generous drain.
func tailBase() TailConfig {
	c := DefaultConfig()
	c.QPS = 10000
	c.Seconds = 2
	c.Warmup = 0.5
	c.Drain = 5
	c.Seed = 7
	return TailConfig{Config: c, Scale: 1}
}

// mustTail runs one tail load point, failing the test on a config or
// graph error.
func mustTail(t testing.TB, cfg TailConfig) *TailMetrics {
	t.Helper()
	m, err := RunTail(cfg)
	if err != nil {
		t.Fatalf("RunTail: %v", err)
	}
	return m
}

func checkConservation(t *testing.T, m *TailMetrics, label string) {
	t.Helper()
	if m.Arrived == 0 {
		t.Fatalf("%s: no arrivals", label)
	}
	if got := m.Completed + m.Failed; got != m.Arrived {
		t.Fatalf("%s: conservation violated: arrived %d != completed %d + failed %d",
			label, m.Arrived, m.Completed, m.Failed)
	}
	if m.Latency.Len() != m.Completed {
		t.Fatalf("%s: latency samples %d != completed %d", label, m.Latency.Len(), m.Completed)
	}
}

// TestTailConservation: with a sufficient drain every measured arrival
// resolves as exactly one completion or failure, across modes and with
// every policy knob engaged at once.
func TestTailConservation(t *testing.T) {
	for _, tc := range []struct {
		label string
		mut   func(*TailConfig)
	}{
		{"cpu", func(c *TailConfig) {}},
		{"rpu-nosplit", func(c *TailConfig) { c.RPU = true }},
		{"rpu-split", func(c *TailConfig) { c.RPU = true; c.Split = true }},
		{"cpu-policies", func(c *TailConfig) {
			c.QPS = 20000 // overloaded: exercise timeout/retry/hedge/reject
			c.Policy = PolicyConfig{TimeoutMs: 20, MaxRetries: 2, BackoffMs: 1,
				HedgeMs: 10, QueueCap: 500}
		}},
		{"rpu-policies", func(c *TailConfig) {
			c.RPU = true
			c.Split = true
			c.QPS = 90000
			c.Policy = PolicyConfig{TimeoutMs: 20, MaxRetries: 1, BackoffMs: 0.5,
				HedgeMs: 8, QueueCap: 2000}
		}},
	} {
		cfg := tailBase()
		tc.mut(&cfg)
		m := mustTail(t, cfg)
		checkConservation(t, m, tc.label)
		if m.Events == 0 || m.InFlightHWM == 0 {
			t.Fatalf("%s: missing engine accounting: %+v", tc.label, m)
		}
	}
}

// TestTailMatchesLegacy: at an underloaded point the arena engine and
// the closure-based Run agree on throughput and tail (different random
// streams, so bands, not equality).
func TestTailMatchesLegacy(t *testing.T) {
	for _, mode := range []struct {
		label      string
		rpu, split bool
	}{{"cpu", false, false}, {"rpu-split", true, true}} {
		cfg := tailBase()
		cfg.RPU, cfg.Split = mode.rpu, mode.split
		legacy := Run(cfg.Config)
		m := mustTail(t, cfg)
		lt, tt := legacy.Throughput(legacy.Measured), m.Throughput()
		if tt < 0.9*lt || tt > 1.1*lt {
			t.Fatalf("%s: throughput diverged: legacy %.0f/s engine %.0f/s", mode.label, lt, tt)
		}
		lp, tp := legacy.Latency.Percentile(99), m.Latency.Percentile(99)
		if tp < 0.7*lp || tp > 1.4*lp {
			t.Fatalf("%s: p99 diverged: legacy %.2f ms engine %.2f ms", mode.label, lp, tp)
		}
	}
}

// TestMMPPMeanRate: the burst/calm rates are solved so the long-run
// arrival rate stays QPS. A single run's rate estimate carries the
// burst-cycle variance (~7 % σ at these dwell times), so average over
// seeds.
func TestMMPPMeanRate(t *testing.T) {
	var rate float64
	const seeds = 6
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := tailBase()
		cfg.Seconds = 10
		cfg.Warmup = 0
		cfg.Seed = seed
		cfg.Arrivals = ArrivalConfig{Process: ArrMMPP, BurstMul: 5, BurstFrac: 0.2, MeanBurstMs: 50}
		m := mustTail(t, cfg)
		rate += float64(m.Arrived) / m.Measured / seeds
		checkConservation(t, m, "mmpp")
	}
	cfgQPS := tailBase().QPS
	if rate < 0.92*cfgQPS || rate > 1.08*cfgQPS {
		t.Fatalf("mmpp mean rate %.0f/s, want ~%.0f/s", rate, cfgQPS)
	}
}

// TestDiurnalMeanRate: over a whole period the sinusoid integrates
// away and the mean rate is QPS.
func TestDiurnalMeanRate(t *testing.T) {
	cfg := tailBase()
	cfg.Seconds = 10
	cfg.Warmup = 0
	cfg.Arrivals = ArrivalConfig{Process: ArrDiurnal, DiurnalAmp: 0.6}
	m := mustTail(t, cfg)
	rate := float64(m.Arrived) / m.Measured
	if rate < 0.9*cfg.QPS || rate > 1.1*cfg.QPS {
		t.Fatalf("diurnal mean rate %.0f/s, want ~%.0f/s", rate, cfg.QPS)
	}
}

// TestClosedLoopLittle: N users with think time Z and response time R
// deliver X = N/(Z+R) — Little's law on the full loop.
func TestClosedLoopLittle(t *testing.T) {
	cfg := tailBase()
	cfg.Seconds = 10
	cfg.Warmup = 2
	cfg.Arrivals = ArrivalConfig{Process: ArrClosed, Users: 500, ThinkMs: 50}
	m := mustTail(t, cfg)
	checkConservation(t, m, "closed")
	x := m.Throughput()
	want := 500.0 * 1000 / (50 + m.Latency.Mean())
	if x < 0.9*want || x > 1.1*want {
		t.Fatalf("closed-loop throughput %.0f/s, Little's law predicts %.0f/s (R=%.2f ms)",
			x, want, m.Latency.Mean())
	}
	if m.Offered < 0.9*x || m.Offered > 1.1*x {
		t.Fatalf("closed-loop Offered %.0f should track realised rate %.0f", m.Offered, x)
	}
}

// TestTimeoutRetryMechanics: an overloaded system with timeouts breeds
// retries; conservation must survive the churn and the timeout knob
// must bound the worst completed latency seen through a single try.
func TestTimeoutRetryMechanics(t *testing.T) {
	cfg := tailBase()
	cfg.QPS = 25000
	cfg.Policy = PolicyConfig{TimeoutMs: 30, MaxRetries: 3, BackoffMs: 2}
	m := mustTail(t, cfg)
	if m.TimedOut == 0 {
		t.Fatal("overloaded run with TimeoutMs=30 produced no timeouts")
	}
	if m.Retried == 0 {
		t.Fatal("timeouts with retry budget produced no retries")
	}
	if m.Retried > m.TimedOut+m.Rejected {
		t.Fatalf("retries %d exceed abandoned tries %d", m.Retried, m.TimedOut+m.Rejected)
	}
	checkConservation(t, m, "timeout-retry")
}

// TestHedgeMechanics: hedging produces hedges and some hedge wins, and
// never double-counts a logical request. All stations are FIFO, so a
// hedge copy can only overtake its primary through service-time jitter
// races while both are in service — which needs a hedge delay inside
// the jitter spread and headroom for the doubled load.
func TestHedgeMechanics(t *testing.T) {
	cfg := tailBase()
	cfg.QPS = 8000
	cfg.Policy = PolicyConfig{HedgeMs: 0.5}
	m := mustTail(t, cfg)
	if m.Hedged == 0 {
		t.Fatal("no hedges issued")
	}
	if m.HedgeWins == 0 {
		t.Fatal("no hedge ever won; HedgeMs inside the jitter spread should see wins")
	}
	if m.HedgeWins > m.Hedged {
		t.Fatalf("hedge wins %d exceed hedges %d", m.HedgeWins, m.Hedged)
	}
	checkConservation(t, m, "hedge")
}

// TestQueueCapRejects: bounded queues shed load explicitly instead of
// letting latency run away.
func TestQueueCapRejects(t *testing.T) {
	cfg := tailBase()
	cfg.QPS = 30000
	cfg.Policy = PolicyConfig{QueueCap: 100}
	m := mustTail(t, cfg)
	if m.Rejected == 0 {
		t.Fatal("overloaded run with QueueCap=100 rejected nothing")
	}
	checkConservation(t, m, "queue-cap")
	capped := tailBase()
	capped.QPS = 30000
	uncapped := mustTail(t, capped)
	if m.Latency.Percentile(99) >= uncapped.Latency.Percentile(99) {
		t.Fatalf("queue cap did not shorten the tail: capped p99 %.1f >= uncapped %.1f",
			m.Latency.Percentile(99), uncapped.Latency.Percentile(99))
	}
}

// TestTailDeterminism: identical seeds give identical runs, and
// concurrent engines (as a sweep driver would run them) do not
// interfere — run under -race in CI.
func TestTailDeterminism(t *testing.T) {
	mk := func() TailConfig {
		cfg := tailBase()
		cfg.QPS = 18000
		cfg.Arrivals = ArrivalConfig{Process: ArrMMPP}
		cfg.Policy = PolicyConfig{TimeoutMs: 50, MaxRetries: 1, BackoffMs: 1, HedgeMs: 20}
		return cfg
	}
	seq := make([]*TailMetrics, 4)
	for i := range seq {
		cfg := mk()
		cfg.Seed = int64(i + 1)
		seq[i] = mustTail(t, cfg)
	}
	par := make([]*TailMetrics, 4)
	var wg sync.WaitGroup
	for i := range par {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := mk()
			cfg.Seed = int64(i + 1)
			par[i] = mustTail(t, cfg)
		}(i)
	}
	wg.Wait()
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Completed != b.Completed || a.Failed != b.Failed || a.Events != b.Events ||
			a.InFlightHWM != b.InFlightHWM || a.TimedOut != b.TimedOut ||
			a.Hedged != b.Hedged ||
			a.Latency.Percentile(99.9) != b.Latency.Percentile(99.9) {
			t.Fatalf("seed %d: parallel run diverged from sequential:\nseq %+v\npar %+v", i+1, a, b)
		}
	}
}

// TestEngineSteadyStateAllocs: once warmed, advancing the simulation
// allocates nothing — the acceptance bar for the arena engine.
func TestEngineSteadyStateAllocs(t *testing.T) {
	cfg := tailBase()
	cfg.Seconds = 2
	cfg.Warmup = 0
	e, err := newTailEngine(cfg)
	if err != nil {
		t.Fatalf("newTailEngine: %v", err)
	}
	now := 200.0
	e.sim.Run(now) // grow arenas, heap, rings, stats to steady state
	n := testing.AllocsPerRun(100, func() {
		now += 5
		e.sim.Run(now)
	})
	if n != 0 {
		t.Fatalf("steady-state event loop allocates %v allocs/op, want 0", n)
	}
}

// TestTailScaleMillionInFlight: the 100x Figure 22 analog overdriven
// past capacity must carry a standing population of at least a million
// in-flight requests and still produce a full tail profile.
func TestTailScaleMillionInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("tail-at-scale stress skipped in -short")
	}
	cfg := DefaultTailConfig()
	cfg.QPS = 4e6 // ~2.3x the scaled CPU knee: backlog grows ~2.2M/s
	cfg.Seconds = 1
	cfg.Warmup = 0.1
	cfg.Drain = 0.5
	cfg.Seed = 7
	m := mustTail(t, cfg)
	if m.InFlightHWM < 1_000_000 {
		t.Fatalf("in-flight high-water mark %d, want >= 1e6", m.InFlightHWM)
	}
	if m.Completed == 0 {
		t.Fatal("no completions at scale")
	}
	p50, p99, p999 := m.Latency.Percentile(50), m.Latency.Percentile(99), m.Latency.Percentile(99.9)
	if !(p50 <= p99 && p99 <= p999) {
		t.Fatalf("tail profile out of order: p50 %.2f p99 %.2f p999 %.2f", p50, p99, p999)
	}
}

// BenchmarkTailEngine reports steady-state event throughput of the
// arena engine (the figure the BENCH_queuesim study tracks).
func BenchmarkTailEngine(b *testing.B) {
	for _, mode := range []struct {
		label      string
		rpu, split bool
	}{{"cpu", false, false}, {"rpu-split", true, true}} {
		b.Run(mode.label, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				cfg := tailBase()
				cfg.Seconds = 1
				cfg.Warmup = 0.25
				cfg.Drain = 1
				cfg.RPU, cfg.Split = mode.rpu, mode.split
				cfg.Seed = int64(i + 1)
				events += mustTail(b, cfg).Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
