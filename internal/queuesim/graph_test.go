package queuesim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// tailFingerprint renders every TailMetrics field, so two runs with
// equal fingerprints dispatched the same events in the same order with
// the same RNG draws.
func tailFingerprint(m *TailMetrics) string {
	return fmt.Sprintf("off=%v arr=%d done=%d fail=%d to=%d retry=%d hedge=%d hw=%d rej=%d hwm=%d ev=%d b=%d fill=%v split=%d util=%v meas=%v lat[n=%d mean=%v p50=%v p99=%v p999=%v]",
		m.Offered, m.Arrived, m.Completed, m.Failed, m.TimedOut, m.Retried,
		m.Hedged, m.HedgeWins, m.Rejected, m.InFlightHWM, m.Events, m.Batches,
		m.AvgBatchFill, m.SplitBatches, m.UserUtil, m.Measured,
		m.Latency.Len(), m.Latency.Mean(), m.Latency.Percentile(50),
		m.Latency.Percentile(99), m.Latency.Percentile(99.9))
}

// TestSpecLegacyEquivalence is the tentpole acceptance test: the
// generic executor walking the SocialGraph spec must be byte-identical
// to the retired hand-coded dispatch — same events, same RNG stream,
// same metrics to the last bit — across seeds, arrival processes,
// policy settings and execution modes.
func TestSpecLegacyEquivalence(t *testing.T) {
	seeds := []int64{1, 7, 13, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	arrivals := []ArrivalConfig{
		{Process: ArrPoisson},
		{Process: ArrMMPP},
		{Process: ArrClosed, Users: 1500, ThinkMs: 10},
	}
	policies := []PolicyConfig{
		{},
		{TimeoutMs: 20, MaxRetries: 2, BackoffMs: 0.5, HedgeMs: 10, QueueCap: 512},
	}
	modes := []struct {
		label      string
		rpu, split bool
	}{{"cpu", false, false}, {"rpu-nosplit", true, false}, {"rpu-split", true, true}}

	for _, seed := range seeds {
		for ai, arr := range arrivals {
			for pi, pol := range policies {
				for _, mode := range modes {
					mk := func(legacy bool) TailConfig {
						c := DefaultConfig()
						c.QPS = 12000
						c.Seconds = 0.8
						c.Warmup = 0.2
						c.Drain = 5
						c.Seed = seed
						c.RPU = mode.rpu
						c.Split = mode.split
						return TailConfig{Config: c, Scale: 1, Arrivals: arr,
							Policy: pol, Legacy: legacy}
					}
					want := tailFingerprint(mustTail(t, mk(true)))
					got := tailFingerprint(mustTail(t, mk(false)))
					if got != want {
						t.Fatalf("seed=%d arrivals=%d policy=%d mode=%s: spec diverged from hand-coded dispatch\nlegacy: %s\nspec:   %s",
							seed, ai, pi, mode.label, want, got)
					}
				}
			}
		}
	}
}

// TestGraphValidatorErrors: malformed specs are rejected with errors
// naming the defect, never panics.
func TestGraphValidatorErrors(t *testing.T) {
	st := func(names ...string) []StationSpec {
		out := make([]StationSpec, len(names))
		for i, n := range names {
			out[i] = StationSpec{Name: n}
		}
		return out
	}
	stage := func(name string, next ...EdgeSpec) StageSpec {
		return StageSpec{Name: name, Station: "s", DemandMs: 1, Next: next}
	}
	for _, tc := range []struct {
		label string
		spec  GraphSpec
		want  string
	}{
		{"empty graph", GraphSpec{Name: "g"}, "empty graph"},
		{"no stations", GraphSpec{Name: "g", Entry: "a",
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done"})}}, "empty graph"},
		{"unknown entry", GraphSpec{Name: "g", Entry: "nope", Stations: st("s"),
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done"})}}, "entry"},
		{"unknown station", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{{Name: "a", Station: "ghost", DemandMs: 1,
				Next: []EdgeSpec{{To: "done"}}}}}, "unknown station"},
		{"dangling edge", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{stage("a", EdgeSpec{To: "ghost"})}}, "unknown stage"},
		{"cycle", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{
				stage("a", EdgeSpec{To: "b"}),
				stage("b", EdgeSpec{To: "a"}),
			}}, "cycle"},
		{"bad probability", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Coins:  []CoinSpec{{Name: "c", Prob: 1.5}},
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done"})}}, "probability"},
		{"unknown coin", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{stage("a",
				EdgeSpec{To: "done", Coin: "ghost"}, EdgeSpec{To: "done"})}}, "unknown coin"},
		{"conditional final edge", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Coins:  []CoinSpec{{Name: "c", Prob: 0.5}},
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done", Coin: "c"})}}, "unconditional"},
		{"unreachable stage", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{
				stage("a", EdgeSpec{To: "done"}),
				stage("orphan", EdgeSpec{To: "done"}),
			}}, "unreachable"},
		{"join outside a leg", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{stage("a", EdgeSpec{To: "join"})}}, "join"},
		{"leg reaching done", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{
				{Name: "a", Station: "s", DemandMs: 1,
					Fanout: []EdgeSpec{{To: "leg"}},
					Next:   []EdgeSpec{{To: "done"}}},
				stage("leg", EdgeSpec{To: "done"}),
			}}, "fan-out leg"},
		{"nested fan-out", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{
				{Name: "a", Station: "s", DemandMs: 1,
					Fanout: []EdgeSpec{{To: "leg"}},
					Next:   []EdgeSpec{{To: "done"}}},
				{Name: "leg", Station: "s", DemandMs: 1,
					Fanout: []EdgeSpec{{To: "leg2"}},
					Next:   []EdgeSpec{{To: "join"}}},
				stage("leg2", EdgeSpec{To: "join"}),
			}}, "nested fan-out"},
		{"stage shared between main and leg", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{
				{Name: "a", Station: "s", DemandMs: 1,
					Fanout: []EdgeSpec{{To: "b"}},
					Next:   []EdgeSpec{{To: "b"}}},
				stage("b", EdgeSpec{To: "done"}),
			}}, "shared"},
		{"duplicate station", GraphSpec{Name: "g", Entry: "a", Stations: st("s", "s"),
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done"})}}, "duplicate station"},
		{"duplicate stage", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{
				stage("a", EdgeSpec{To: "done"}),
				stage("a", EdgeSpec{To: "done"}),
			}}, "duplicate stage"},
		{"negative demand", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{{Name: "a", Station: "s", DemandMs: -1,
				Next: []EdgeSpec{{To: "done"}}}}}, "demand"},
		{"batch form_after unknown", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done"})},
			Batch: &BatchSpec{FormAfter: "ghost", Entry: "ba",
				Stages: []BatchStageSpec{{Name: "ba", Station: "s", DemandMs: 1,
					Next: []EdgeSpec{{To: "done"}}}}}}, "form_after"},
		{"batch diverge unknown coin", GraphSpec{Name: "g", Entry: "a", Stations: st("s", "b"),
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done"})},
			Batch: &BatchSpec{FormAfter: "a", Entry: "ba",
				Stages: []BatchStageSpec{{Name: "ba", Station: "b", DemandMs: 1,
					Diverge: &DivergeSpec{Coin: "ghost",
						Hit:  EdgeSpec{To: "done"},
						Miss: EdgeSpec{To: "done"}}}}}}, "unknown coin"},
		{"batch station shared with pre-form stage", GraphSpec{Name: "g", Entry: "a",
			Stations: st("s"),
			Stages:   []StageSpec{stage("a", EdgeSpec{To: "done"})},
			Batch: &BatchSpec{FormAfter: "a", Entry: "ba",
				Stages: []BatchStageSpec{{Name: "ba", Station: "s", DemandMs: 1,
					Next: []EdgeSpec{{To: "done"}}}}}}, "serves batches"},
		{"too many coins", GraphSpec{Name: "g", Entry: "a", Stations: st("s"),
			Coins: func() []CoinSpec {
				out := make([]CoinSpec, 17)
				for i := range out {
					out[i] = CoinSpec{Name: fmt.Sprintf("c%d", i), Prob: 0.5}
				}
				return out
			}(),
			Stages: []StageSpec{stage("a", EdgeSpec{To: "done"})}}, "coins"},
	} {
		err := tc.spec.Validate()
		if err == nil {
			t.Fatalf("%s: validated clean, want error containing %q", tc.label, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
	}
}

// TestBuiltinGraphsValidate: every bundled spec validates and runs
// end-to-end in CPU and RPU modes with request conservation.
func TestBuiltinGraphsValidate(t *testing.T) {
	for _, name := range GraphNames() {
		spec, err := GraphByName(name, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rpu := range []bool{false, true} {
			c := DefaultConfig()
			c.QPS = 5000
			c.Seconds = 1
			c.Warmup = 0.25
			c.Drain = 5
			c.Seed = 7
			c.RPU = rpu
			c.Split = rpu
			m := mustTail(t, TailConfig{Config: c, Scale: 1, Graph: spec})
			label := fmt.Sprintf("%s/rpu=%v", name, rpu)
			checkConservation(t, m, label)
			if rpu && m.Batches == 0 {
				t.Fatalf("%s: RPU run formed no batches", label)
			}
		}
	}
	if _, err := GraphByName("nope", DefaultConfig()); err == nil {
		t.Fatal("unknown graph name resolved")
	}
}

// TestComposePostSpecMatchesClosure: the compose-post spec tracks the
// closure-based RunComposePost within bands (different RNG draw
// ordering, so no byte identity — the closure draws service jitter at
// submit time, the arena engine at serve time).
func TestComposePostSpecMatchesClosure(t *testing.T) {
	for _, rpu := range []bool{false, true} {
		ccfg := DefaultComposePost()
		ccfg.QPS = 3000
		ccfg.Seconds = 2
		ccfg.Warmup = 0.5
		ccfg.Drain = 5
		ccfg.RPU = rpu
		legacy := RunComposePost(ccfg)

		c := DefaultConfig()
		c.QPS = ccfg.QPS
		c.Seconds = ccfg.Seconds
		c.Warmup = ccfg.Warmup
		c.Drain = ccfg.Drain
		c.Seed = ccfg.Seed
		c.RPU = rpu
		m := mustTail(t, TailConfig{Config: c, Scale: 1, Graph: ComposePostGraph(DefaultComposePost())})

		lt, tt := legacy.Throughput(legacy.Measured), m.Throughput()
		if tt < 0.9*lt || tt > 1.1*lt {
			t.Fatalf("rpu=%v: throughput diverged: closure %.0f/s spec %.0f/s", rpu, lt, tt)
		}
		lp, tp := legacy.Latency.Percentile(99), m.Latency.Percentile(99)
		if tp < 0.7*lp || tp > 1.4*lp {
			t.Fatalf("rpu=%v: p99 diverged: closure %.2f ms spec %.2f ms", rpu, lp, tp)
		}
	}
}

// TestGraphScenarios: the three new DSB scenarios behave like
// saturating queueing systems — RPU capacity moves the knee past CPU
// saturation at the calibrated loads.
func TestGraphScenarios(t *testing.T) {
	for _, name := range []string{"hotel", "media", "iot"} {
		spec, err := GraphByName(name, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		run := func(qps float64, rpu bool) *TailMetrics {
			c := DefaultConfig()
			c.QPS = qps
			c.Seconds = 1
			c.Warmup = 0.25
			c.Drain = 5
			c.Seed = 7
			c.RPU = rpu
			c.Split = rpu
			return mustTail(t, TailConfig{Config: c, Scale: 1, Graph: spec})
		}
		// Low load: both systems keep up; these runs set the baseline
		// p99 for the saturation heuristic.
		low := 4000.0
		cpu, rpuM := run(low, false), run(low, true)
		for label, m := range map[string]*TailMetrics{"cpu": cpu, "rpu": rpuM} {
			if got := float64(m.Completed) / float64(m.Arrived); got < 0.95 {
				t.Fatalf("%s/%s at %.0f qps: completion %.3f < 0.95", name, label, low, got)
			}
		}
		if rpuM.Batches == 0 {
			t.Fatalf("%s: RPU run formed no batches", name)
		}
		// High load: CPU saturates where RPU still keeps up.
		high := 40000.0
		cpuHi, rpuHi := run(high, false), run(high, true)
		if !cpuHi.Saturated(cpu.Latency.Percentile(99)) {
			t.Fatalf("%s/cpu at %.0f qps: p99 %.2f ms (baseline %.2f) — expected CPU saturation",
				name, high, cpuHi.Latency.Percentile(99), cpu.Latency.Percentile(99))
		}
		if rpuHi.Saturated(rpuM.Latency.Percentile(99)) {
			t.Fatalf("%s/rpu at %.0f qps: p99 %.2f ms (baseline %.2f) — RPU should still keep up",
				name, high, rpuHi.Latency.Percentile(99), rpuM.Latency.Percentile(99))
		}
	}
}

// TestGraphJSONRoundTrip: a spec survives JSON marshal → LoadGraph and
// runs identically to the in-memory original.
func TestGraphJSONRoundTrip(t *testing.T) {
	spec := HotelGraph()
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hotel.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g *GraphSpec) string {
		c := DefaultConfig()
		c.QPS = 6000
		c.Seconds = 1
		c.Warmup = 0.25
		c.Drain = 5
		c.Seed = 11
		c.RPU = true
		c.Split = true
		return tailFingerprint(mustTail(t, TailConfig{Config: c, Scale: 1, Graph: g}))
	}
	if a, b := run(spec), run(loaded); a != b {
		t.Fatalf("JSON round trip changed the run:\nmem:  %s\nfile: %s", a, b)
	}
	if _, err := LoadGraph(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadGraph of a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","entry":"a"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGraph(bad); err == nil {
		t.Fatal("LoadGraph of an invalid spec succeeded")
	}
}

// TestGraphDeterminism: spec-driven runs are bit-stable and concurrent
// engines (as a sweep driver runs them) do not interfere — run under
// -race in CI alongside the other determinism gates.
func TestGraphDeterminism(t *testing.T) {
	names := GraphNames()
	mk := func(i int) TailConfig {
		c := DefaultConfig()
		c.QPS = 8000
		c.Seconds = 0.6
		c.Warmup = 0.15
		c.Drain = 5
		c.Seed = int64(i + 3)
		c.RPU = i%2 == 1
		c.Split = c.RPU
		spec, err := GraphByName(names[i%len(names)], DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", names[i%len(names)], err)
		}
		return TailConfig{Config: c, Scale: 1, Graph: spec,
			Policy: PolicyConfig{TimeoutMs: 50, MaxRetries: 1, BackoffMs: 1, HedgeMs: 20}}
	}
	const n = 5
	seq := make([]string, n)
	for i := range seq {
		seq[i] = tailFingerprint(mustTail(t, mk(i)))
	}
	par := make([]string, n)
	var wg sync.WaitGroup
	for i := range par {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := RunTail(mk(i))
			if err != nil {
				par[i] = err.Error()
				return
			}
			par[i] = tailFingerprint(m)
		}(i)
	}
	wg.Wait()
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("graph %s: parallel run diverged:\nseq %s\npar %s", names[i%len(names)], seq[i], par[i])
		}
	}
}

// TestFanoutRejectionConservation: queue-cap rejections inside fan-out
// legs abandon the parent try without losing or double-counting the
// logical request — the rejectLeg/legEnd path under real load.
func TestFanoutRejectionConservation(t *testing.T) {
	c := DefaultConfig()
	c.QPS = 25000 // far past the compose-post CPU knee
	c.Seconds = 1
	c.Warmup = 0.25
	c.Drain = 5
	c.Seed = 7
	cfg := TailConfig{Config: c, Scale: 1, Graph: ComposePostGraph(DefaultComposePost()),
		Policy: PolicyConfig{TimeoutMs: 30, MaxRetries: 2, BackoffMs: 1, QueueCap: 50}}
	m := mustTail(t, cfg)
	if m.Rejected == 0 {
		t.Fatal("overloaded fan-out with QueueCap=50 rejected nothing")
	}
	checkConservation(t, m, "fanout-reject")
	// And with hedging layered on top.
	cfg.Policy.HedgeMs = 5
	m = mustTail(t, cfg)
	if m.Hedged == 0 {
		t.Fatal("no hedges under overload")
	}
	checkConservation(t, m, "fanout-reject-hedge")
}
