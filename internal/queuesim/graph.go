// Declarative service graphs for the tail-at-scale engine. A GraphSpec
// describes a microservice scenario as data — stations with service
// demands and capacity multipliers, request stages wired by sync/async
// fan-out edges, an optional RPU batch path with a formation point and
// hit/miss divergence — and the generic executor in exec.go walks the
// compiled form instead of a hand-coded dispatch switch. The social
// and compose-post graphs that used to be Go code are now specs
// (byte-identical to the retired dispatch, see graph_test.go), and new
// DeathStarBench-style scenarios (hotel-reservation, media-service,
// IoT/edge) are just more specs, loadable from JSON.
package queuesim

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Reserved edge targets: "done" resolves the request (or completes the
// batch), "join" ends a fan-out leg.
const (
	edgeDone = "done"
	edgeJoin = "join"
)

// Compiled sentinels for the reserved targets.
const (
	cgDone int32 = -1
	cgJoin int32 = -2
)

// GraphSpec is a declarative service graph. Stage and station names
// are separate namespaces; "done" and "join" are reserved edge
// targets. Validate (or LoadGraph) reports structural errors instead
// of panicking at run time.
type GraphSpec struct {
	Name string `json:"name"`
	// Entry names the request stage every arrival enters first.
	Entry    string        `json:"entry"`
	Stations []StationSpec `json:"stations"`
	// Coins are per-request Bernoulli draws (hit/miss divergences).
	// Every request draws all coins once at issue time, in declaration
	// order; edges and batch divergences reference them by name.
	Coins  []CoinSpec  `json:"coins,omitempty"`
	Stages []StageSpec `json:"stages"`
	// Batch describes the RPU batch path; nil graphs run CPU-only.
	Batch *BatchSpec `json:"batch,omitempty"`
	// NetHopMs overrides Config.NetHop as the wire delay of hop edges
	// when positive.
	NetHopMs float64 `json:"net_hop_ms,omitempty"`
	// UtilStation names the station whose utilisation is reported as
	// TailMetrics.UserUtil; empty defaults to the first BatchTier
	// station, else the first station.
	UtilStation string `json:"util_station,omitempty"`
}

// StationSpec declares a multi-server FIFO station. Server count is
// Cores×CoresMul×Scale (×5 in RPU mode); a BatchTier station instead
// gets ceil(Cores×CoresMul×5×1.2/BatchSize×Scale) servers in RPU mode
// (whole batches occupy a server); Infinite stations are pure delay.
type StationSpec struct {
	Name     string  `json:"name"`
	CoresMul float64 `json:"cores_mul,omitempty"` // default 1
	BatchTier bool   `json:"batch_tier,omitempty"`
	Infinite  bool   `json:"infinite,omitempty"`
}

// CoinSpec is one per-request Bernoulli draw: Prob is the probability
// the coin lands "hit".
type CoinSpec struct {
	Name string  `json:"name"`
	Prob float64 `json:"prob"`
}

// StageSpec is one request-pipeline stage: service at Station for
// ~DemandMs (jittered ±20% and scaled by the RPU latency multiplier
// unless Fixed), then Next edges. A stage with Fanout edges spawns one
// leg per edge after service; sync legs must reach "join", and the
// stage's Next edges fire when the last sync leg joins.
type StageSpec struct {
	Name     string  `json:"name"`
	Station  string  `json:"station"`
	DemandMs float64 `json:"demand_ms"`
	// Fixed uses DemandMs verbatim: no jitter, no RPU latency
	// multiplier (the storage-latency model).
	Fixed  bool       `json:"fixed,omitempty"`
	Next   []EdgeSpec `json:"next,omitempty"`
	Fanout []EdgeSpec `json:"fanout,omitempty"`
}

// EdgeSpec is one transition. Hop inserts a network-hop delay; a
// non-hop edge enters the target directly. Coin conditions the edge:
// "name" takes it when the coin hit, "!name" when it missed; the last
// Next edge must be unconditional. Async marks a fan-out leg as
// fire-and-forget: it never joins and the parent does not wait for it.
type EdgeSpec struct {
	To    string `json:"to"`
	Hop   bool   `json:"hop,omitempty"`
	Coin  string `json:"coin,omitempty"`
	Async bool   `json:"async,omitempty"`
}

// BatchSpec is the RPU batch path: requests completing FormAfter join
// the forming batch (width Config.BatchSize, per-batch timeout
// Config.BatchTimeout), and launched batches enter Entry (crossing a
// network hop first when EntryHop).
type BatchSpec struct {
	FormAfter string           `json:"form_after"`
	Entry     string           `json:"entry"`
	EntryHop  bool             `json:"entry_hop,omitempty"`
	Stages    []BatchStageSpec `json:"stages"`
}

// BatchStageSpec is one batch-pipeline stage. HoldMs adds a fixed
// on-core occupancy on top of the service demand (the reconvergence
// wait of an unsplit batch). Diverge replaces Next: after service the
// batch splits on a per-member coin.
type BatchStageSpec struct {
	Name     string  `json:"name"`
	Station  string  `json:"station"`
	DemandMs float64 `json:"demand_ms"`
	Fixed    bool    `json:"fixed,omitempty"`
	HoldMs   float64 `json:"hold_ms,omitempty"`
	Diverge  *DivergeSpec `json:"diverge,omitempty"`
	Next     []EdgeSpec   `json:"next,omitempty"`
	Fanout   []EdgeSpec   `json:"fanout,omitempty"`
}

// DivergeSpec routes a batch after a per-member hit/miss divergence:
// an all-hit batch follows Hit; with Split enabled, miss members
// follow Miss as a sub-batch (all-miss batches follow it whole) while
// hits follow Hit; with Split disabled the whole batch follows Hold
// when any member missed (or Miss, when Hold is nil).
type DivergeSpec struct {
	Coin string    `json:"coin"`
	Hit  EdgeSpec  `json:"hit"`
	Miss EdgeSpec  `json:"miss"`
	Hold *EdgeSpec `json:"hold,omitempty"`
}

// Validate reports the first structural error in the spec: unknown
// station/stage references, dangling or conditional-final edges,
// cycles, unreachable stages, invalid probabilities, malformed batch
// paths. A nil error means the graph compiles and can run.
func (g *GraphSpec) Validate() error {
	_, err := compileGraph(g)
	return err
}

// LoadGraph reads and validates a GraphSpec from a JSON file.
func LoadGraph(path string) (*GraphSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g GraphSpec
	if err := json.Unmarshal(raw, &g); err != nil {
		return nil, fmt.Errorf("%s: not a graph spec: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &g, nil
}

// GraphNames lists the bundled graphs in report order.
func GraphNames() []string {
	return []string{"social", "composepost", "hotel", "media", "iot"}
}

// GraphByName returns a bundled graph spec. cfg supplies the social
// graph's demands and hit rate; the other scenarios carry their own
// calibrated demands.
func GraphByName(name string, cfg Config) (*GraphSpec, error) {
	switch name {
	case "social":
		return SocialGraph(cfg), nil
	case "composepost":
		return ComposePostGraph(DefaultComposePost()), nil
	case "hotel":
		return HotelGraph(), nil
	case "media":
		return MediaGraph(), nil
	case "iot":
		return IoTGraph(), nil
	}
	return nil, fmt.Errorf("queuesim: unknown graph %q (bundled: %v, or a .json file)", name, GraphNames())
}

// --- compiled form ---

// cedge is a compiled edge: to is a stage index or a cg* sentinel,
// coin is -1 for unconditional edges or a coin index with the required
// outcome in want.
type cedge struct {
	to    int32
	coin  int8
	want  bool
	hop   bool
	async bool
}

// taken reports whether the edge's coin condition holds for a
// request's draws.
func (ed *cedge) taken(coins uint16) bool {
	return ed.coin < 0 || (coins>>uint8(ed.coin)&1 == 1) == ed.want
}

// pickEdge returns the first edge whose condition matches; compile
// guarantees the final edge is unconditional.
func pickEdge(edges []cedge, coins uint16) *cedge {
	for i := range edges {
		if edges[i].taken(coins) {
			return &edges[i]
		}
	}
	return &edges[len(edges)-1]
}

type cstation struct {
	name      string
	coresMul  float64
	batchTier bool
	infinite  bool
	batched   bool // referenced by a batch stage: serves batches in RPU mode
}

type cstage struct {
	station int32
	demand  float64
	fixed   bool
	next    []cedge
	fanout  []cedge
}

type cbstage struct {
	station int32
	demand  float64
	fixed   bool
	hold    float64
	div     *cbdiv
	next    []cedge
	fanout  []cedge
}

type cbdiv struct {
	coin uint8
	hit  cedge
	miss cedge
	hold cedge
	hasHold bool
}

type cgraph struct {
	name        string
	netHop      float64 // 0 = use Config.NetHop
	stations    []cstation
	coins       []float64
	stages      []cstage
	bstages     []cbstage
	entry       int32
	utilStation int32
	hasBatch    bool
	formAfter   int32
	bentry      int32
	bentryHop   bool
}

// compileGraph validates a spec and resolves it to index-addressed
// tables the executor walks.
func compileGraph(g *GraphSpec) (*cgraph, error) {
	fail := func(format string, a ...any) (*cgraph, error) {
		return nil, fmt.Errorf("graph %q: %s", g.Name, fmt.Sprintf(format, a...))
	}
	if len(g.Stages) == 0 {
		return fail("empty graph: no stages")
	}
	if len(g.Stations) == 0 {
		return fail("empty graph: no stations")
	}
	if len(g.Stages) > 100 || (g.Batch != nil && len(g.Batch.Stages) > 100) {
		return fail("too many stages (max 100)")
	}
	if len(g.Coins) > 16 {
		return fail("too many coins (max 16)")
	}

	c := &cgraph{name: g.Name, netHop: g.NetHopMs, utilStation: -1}

	stations := map[string]int32{}
	for i, s := range g.Stations {
		if s.Name == "" {
			return fail("station %d has no name", i)
		}
		if _, dup := stations[s.Name]; dup {
			return fail("duplicate station %q", s.Name)
		}
		mul := s.CoresMul
		if mul == 0 {
			mul = 1
		}
		if mul < 0 || math.IsNaN(mul) || math.IsInf(mul, 0) {
			return fail("station %q: cores_mul %v", s.Name, s.CoresMul)
		}
		stations[s.Name] = int32(i)
		c.stations = append(c.stations, cstation{
			name: s.Name, coresMul: mul, batchTier: s.BatchTier, infinite: s.Infinite})
		if s.BatchTier && c.utilStation < 0 {
			c.utilStation = int32(i)
		}
	}
	if c.utilStation < 0 {
		c.utilStation = 0
	}
	if g.UtilStation != "" {
		si, ok := stations[g.UtilStation]
		if !ok {
			return fail("util_station %q is not a station", g.UtilStation)
		}
		c.utilStation = si
	}

	coins := map[string]int8{}
	for i, cs := range g.Coins {
		if cs.Name == "" {
			return fail("coin %d has no name", i)
		}
		if _, dup := coins[cs.Name]; dup {
			return fail("duplicate coin %q", cs.Name)
		}
		if cs.Prob < 0 || cs.Prob > 1 || math.IsNaN(cs.Prob) {
			return fail("coin %q: probability %v outside [0,1]", cs.Name, cs.Prob)
		}
		coins[cs.Name] = int8(i)
		c.coins = append(c.coins, cs.Prob)
	}

	// compileEdge resolves one edge against a stage namespace.
	compileEdge := func(where string, e EdgeSpec, idx map[string]int32, allowJoin bool) (cedge, error) {
		ce := cedge{coin: -1, hop: e.Hop, async: e.Async}
		switch e.To {
		case "":
			return ce, fmt.Errorf("graph %q: %s: edge with no target", g.Name, where)
		case edgeDone:
			ce.to = cgDone
		case edgeJoin:
			if !allowJoin {
				return ce, fmt.Errorf("graph %q: %s: %q outside a fan-out leg", g.Name, where, edgeJoin)
			}
			ce.to = cgJoin
		default:
			to, ok := idx[e.To]
			if !ok {
				return ce, fmt.Errorf("graph %q: %s: edge to unknown stage %q", g.Name, where, e.To)
			}
			ce.to = to
		}
		if e.Coin != "" {
			name, want := e.Coin, true
			if name[0] == '!' {
				name, want = name[1:], false
			}
			ci, ok := coins[name]
			if !ok {
				return ce, fmt.Errorf("graph %q: %s: unknown coin %q", g.Name, where, e.Coin)
			}
			ce.coin, ce.want = ci, want
		}
		return ce, nil
	}

	// Request stages.
	stageIdx := map[string]int32{}
	for i, s := range g.Stages {
		if s.Name == "" || s.Name == edgeDone || s.Name == edgeJoin {
			return fail("stage %d: invalid name %q", i, s.Name)
		}
		if _, dup := stageIdx[s.Name]; dup {
			return fail("duplicate stage %q", s.Name)
		}
		stageIdx[s.Name] = int32(i)
	}
	for _, s := range g.Stages {
		si, ok := stations[s.Station]
		if !ok {
			return fail("stage %q: unknown station %q", s.Name, s.Station)
		}
		if s.DemandMs < 0 || math.IsNaN(s.DemandMs) || math.IsInf(s.DemandMs, 0) {
			return fail("stage %q: demand %v", s.Name, s.DemandMs)
		}
		cs := cstage{station: si, demand: s.DemandMs, fixed: s.Fixed}
		if len(s.Next) == 0 {
			return fail("stage %q has no next edges", s.Name)
		}
		for j, e := range s.Next {
			ce, err := compileEdge(fmt.Sprintf("stage %q", s.Name), e, stageIdx, true)
			if err != nil {
				return nil, err
			}
			if j == len(s.Next)-1 && ce.coin >= 0 {
				return fail("stage %q: final next edge must be unconditional", s.Name)
			}
			if ce.async {
				return fail("stage %q: async is only valid on fan-out edges", s.Name)
			}
			cs.next = append(cs.next, ce)
		}
		for _, e := range s.Fanout {
			ce, err := compileEdge(fmt.Sprintf("stage %q fan-out", s.Name), e, stageIdx, false)
			if err != nil {
				return nil, err
			}
			if ce.to < 0 {
				return fail("stage %q: fan-out edge must target a stage", s.Name)
			}
			cs.fanout = append(cs.fanout, ce)
		}
		c.stages = append(c.stages, cs)
	}
	entry, ok := stageIdx[g.Entry]
	if !ok {
		return fail("entry %q is not a stage", g.Entry)
	}
	c.entry = entry

	if err := checkTopology(g.Name, "stage", stageNames(g), c.stages2topo(), entry); err != nil {
		return nil, err
	}

	// Batch path.
	if g.Batch != nil {
		b := g.Batch
		c.hasBatch = true
		c.bentryHop = b.EntryHop
		fa, ok := stageIdx[b.FormAfter]
		if !ok {
			return fail("batch form_after %q is not a request stage", b.FormAfter)
		}
		if len(g.Stages[fa].Fanout) > 0 {
			return fail("batch form_after %q cannot be a fan-out stage", b.FormAfter)
		}
		c.formAfter = fa
		if len(b.Stages) == 0 {
			return fail("batch path has no stages")
		}
		bIdx := map[string]int32{}
		for i, s := range b.Stages {
			if s.Name == "" || s.Name == edgeDone || s.Name == edgeJoin {
				return fail("batch stage %d: invalid name %q", i, s.Name)
			}
			if _, dup := bIdx[s.Name]; dup {
				return fail("duplicate batch stage %q", s.Name)
			}
			bIdx[s.Name] = int32(i)
		}
		for _, s := range b.Stages {
			si, ok := stations[s.Station]
			if !ok {
				return fail("batch stage %q: unknown station %q", s.Name, s.Station)
			}
			if s.DemandMs < 0 || s.HoldMs < 0 || math.IsNaN(s.DemandMs+s.HoldMs) {
				return fail("batch stage %q: demand %v hold %v", s.Name, s.DemandMs, s.HoldMs)
			}
			c.stations[si].batched = true
			bs := cbstage{station: si, demand: s.DemandMs, fixed: s.Fixed, hold: s.HoldMs}
			where := fmt.Sprintf("batch stage %q", s.Name)
			if s.Diverge != nil {
				if len(s.Next) > 0 || len(s.Fanout) > 0 {
					return fail("batch stage %q: diverge excludes next/fanout edges", s.Name)
				}
				ci, ok := coins[s.Diverge.Coin]
				if !ok {
					return fail("batch stage %q: diverge on unknown coin %q", s.Name, s.Diverge.Coin)
				}
				dv := &cbdiv{coin: uint8(ci)}
				for _, leg := range []struct {
					label string
					e     *EdgeSpec
					dst   *cedge
				}{{"hit", &s.Diverge.Hit, &dv.hit}, {"miss", &s.Diverge.Miss, &dv.miss}, {"hold", s.Diverge.Hold, &dv.hold}} {
					if leg.e == nil {
						continue
					}
					ce, err := compileEdge(where+" diverge "+leg.label, *leg.e, bIdx, false)
					if err != nil {
						return nil, err
					}
					if ce.coin >= 0 || ce.async {
						return fail("batch stage %q: diverge %s edge must be plain", s.Name, leg.label)
					}
					*leg.dst = ce
					if leg.label == "hold" {
						dv.hasHold = true
					}
				}
				bs.div = dv
			} else {
				if len(s.Next) == 0 {
					return fail("batch stage %q has no next edges", s.Name)
				}
				for _, e := range s.Next {
					ce, err := compileEdge(where, e, bIdx, true)
					if err != nil {
						return nil, err
					}
					if ce.coin >= 0 {
						return fail("batch stage %q: next edges cannot carry coins (use diverge)", s.Name)
					}
					if ce.async {
						return fail("batch stage %q: async is only valid on fan-out edges", s.Name)
					}
					bs.next = append(bs.next, ce)
				}
				for _, e := range s.Fanout {
					ce, err := compileEdge(where+" fan-out", e, bIdx, false)
					if err != nil {
						return nil, err
					}
					if ce.to < 0 || ce.coin >= 0 {
						return fail("batch stage %q: fan-out edge must target a stage unconditionally", s.Name)
					}
					bs.fanout = append(bs.fanout, ce)
				}
			}
			c.bstages = append(c.bstages, bs)
		}
		be, ok := bIdx[b.Entry]
		if !ok {
			return fail("batch entry %q is not a batch stage", b.Entry)
		}
		c.bentry = be
		if err := checkTopology(g.Name, "batch stage", bstageNames(b), c.bstages2topo(), be); err != nil {
			return nil, err
		}
		// Stations requests reach before the formation point serve
		// requests even in RPU mode and must not also serve batches.
		for _, si := range c.preFormStations() {
			if c.stations[si].batched {
				return fail("station %q serves batches but request stage(s) before batch formation use it",
					c.stations[si].name)
			}
		}
	} else {
		c.formAfter = -1
		c.bentry = -1
	}
	return c, nil
}

func stageNames(g *GraphSpec) []string {
	names := make([]string, len(g.Stages))
	for i, s := range g.Stages {
		names[i] = s.Name
	}
	return names
}

func bstageNames(b *BatchSpec) []string {
	names := make([]string, len(b.Stages))
	for i, s := range b.Stages {
		names[i] = s.Name
	}
	return names
}

// topoNode is the edge view checkTopology walks: next edges, fan-out
// edges, and (for batch stages) the divergence edges.
type topoNode struct {
	next   []cedge
	fanout []cedge
}

func (c *cgraph) stages2topo() []topoNode {
	out := make([]topoNode, len(c.stages))
	for i, s := range c.stages {
		out[i] = topoNode{next: s.next, fanout: s.fanout}
	}
	return out
}

func (c *cgraph) bstages2topo() []topoNode {
	out := make([]topoNode, len(c.bstages))
	for i, s := range c.bstages {
		n := topoNode{next: s.next, fanout: s.fanout}
		if s.div != nil {
			n.next = append([]cedge{s.div.hit, s.div.miss}, n.next...)
			if s.div.hasHold {
				n.next = append(n.next, s.div.hold)
			}
		}
		out[i] = n
	}
	return out
}

// checkTopology enforces the structural invariants shared by the
// request and batch pipelines: the stage graph is acyclic, every stage
// is reachable from the entry, the main chain never targets "join",
// fan-out legs never target "done" or fan out again, and no stage is
// shared between the main chain and a leg.
func checkTopology(graph, kind string, names []string, nodes []topoNode, entry int32) error {
	fail := func(format string, a ...any) error {
		return fmt.Errorf("graph %q: %s", graph, fmt.Sprintf(format, a...))
	}
	// Cycle check over all edges (tri-colour DFS).
	const (
		white = iota
		grey
		black
	)
	colour := make([]int, len(nodes))
	var visit func(int32) error
	visit = func(i int32) error {
		colour[i] = grey
		for _, edges := range [][]cedge{nodes[i].next, nodes[i].fanout} {
			for _, e := range edges {
				if e.to < 0 {
					continue
				}
				switch colour[e.to] {
				case grey:
					return fail("cycle through %s %q", kind, names[e.to])
				case white:
					if err := visit(e.to); err != nil {
						return err
					}
				}
			}
		}
		colour[i] = black
		return nil
	}
	for i := range nodes {
		if colour[i] == white {
			if err := visit(int32(i)); err != nil {
				return err
			}
		}
	}

	// Main chain: BFS from entry over next edges only.
	main := make([]bool, len(nodes))
	queue := []int32{entry}
	main[entry] = true
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, e := range nodes[i].next {
			if e.to == cgJoin {
				return fail("%s %q: %q outside a fan-out leg", kind, names[i], edgeJoin)
			}
			if e.to >= 0 && !main[e.to] {
				main[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}

	// Legs: BFS from every fan-out target of a main-chain stage.
	leg := make([]bool, len(nodes))
	for i := range nodes {
		if !main[i] {
			continue
		}
		for _, e := range nodes[i].fanout {
			if e.to >= 0 && !leg[e.to] {
				leg[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if main[i] {
			return fail("%s %q shared between the main path and a fan-out leg", kind, names[i])
		}
		if len(nodes[i].fanout) > 0 {
			return fail("%s %q: nested fan-out", kind, names[i])
		}
		for _, e := range nodes[i].next {
			if e.to == cgDone {
				return fail("%s %q: fan-out leg cannot target %q (use %q)", kind, names[i], edgeDone, edgeJoin)
			}
			if e.to >= 0 && !leg[e.to] {
				leg[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}

	for i := range nodes {
		if !main[i] && !leg[i] {
			return fail("%s %q unreachable from the entry", kind, names[i])
		}
	}
	return nil
}

// preFormStations returns the stations used by request stages (and
// their fan-out legs) reachable from the entry without passing the
// batch-formation point.
func (c *cgraph) preFormStations() []int32 {
	seen := make([]bool, len(c.stages))
	queue := []int32{c.entry}
	seen[c.entry] = true
	var out []int32
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		out = append(out, c.stages[i].station)
		if i == c.formAfter {
			continue // batches take over past the formation point
		}
		for _, edges := range [][]cedge{c.stages[i].next, c.stages[i].fanout} {
			for _, e := range edges {
				if e.to >= 0 && !seen[e.to] {
					seen[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
	}
	return out
}

// --- bundled graphs ---

// SocialGraph is the declarative form of the Figure 22 User-path
// social-network scenario. It compiles to the exact event and RNG
// sequence of the retired hand-coded dispatch (legacy.go keeps that
// dispatch for the equivalence tests), so spec-driven runs are
// byte-identical to the pre-spec engine at any seed.
func SocialGraph(cfg Config) *GraphSpec {
	return &GraphSpec{
		Name:  "social",
		Entry: "web",
		Stations: []StationSpec{
			{Name: "web"},
			{Name: "user", BatchTier: true},
			{Name: "mcrouter", CoresMul: 0.5},
			{Name: "memcached", CoresMul: 0.5},
			{Name: "storage", Infinite: true},
		},
		Coins: []CoinSpec{{Name: "cache", Prob: cfg.HitRate}},
		Stages: []StageSpec{
			{Name: "web", Station: "web", DemandMs: cfg.WebDemand,
				Next: []EdgeSpec{{To: "user1", Hop: true}}},
			{Name: "user1", Station: "user", DemandMs: cfg.UserPhase1,
				Next: []EdgeSpec{{To: "mcrouter", Hop: true}}},
			{Name: "mcrouter", Station: "mcrouter", DemandMs: cfg.McRouterDemand,
				Next: []EdgeSpec{{To: "memcached"}}},
			{Name: "memcached", Station: "memcached", DemandMs: cfg.MemcachedDemand,
				Next: []EdgeSpec{
					{To: "user2", Hop: true, Coin: "cache"},
					{To: "storage"},
				}},
			{Name: "storage", Station: "storage", DemandMs: cfg.StorageLatency, Fixed: true,
				Next: []EdgeSpec{{To: "user2", Hop: true}}},
			{Name: "user2", Station: "user", DemandMs: cfg.UserPhase2,
				Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
		},
		Batch: &BatchSpec{
			FormAfter: "web", Entry: "buser1", EntryHop: true,
			Stages: []BatchStageSpec{
				{Name: "buser1", Station: "user", DemandMs: cfg.UserPhase1,
					Next: []EdgeSpec{{To: "bmcrouter", Hop: true}}},
				{Name: "bmcrouter", Station: "mcrouter", DemandMs: cfg.McRouterDemand,
					Next: []EdgeSpec{{To: "bmemcached"}}},
				{Name: "bmemcached", Station: "memcached", DemandMs: cfg.MemcachedDemand,
					Diverge: &DivergeSpec{
						Coin: "cache",
						Hit:  EdgeSpec{To: "buser2", Hop: true},
						Miss: EdgeSpec{To: "bstorage"},
						Hold: &EdgeSpec{To: "buser2hold", Hop: true},
					}},
				{Name: "bstorage", Station: "storage", DemandMs: cfg.StorageLatency, Fixed: true,
					Next: []EdgeSpec{{To: "buser2", Hop: true}}},
				{Name: "buser2", Station: "user", DemandMs: cfg.UserPhase2,
					Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
				{Name: "buser2hold", Station: "user", DemandMs: cfg.UserPhase2,
					HoldMs: cfg.StorageLatency,
					Next:   []EdgeSpec{{To: edgeDone, Hop: true}}},
			},
		},
	}
}

// ComposePostGraph is the declarative form of the Figure 3
// compose-post path: orchestrator fan-out to four nanoservices, join,
// then persist through storage and the cache tier. Demands come from a
// ComposePostConfig; the RPU path batches at the orchestrator.
func ComposePostGraph(cfg ComposePostConfig) *GraphSpec {
	legs := func(prefix string) ([]StageSpec, []EdgeSpec) {
		var stages []StageSpec
		var edges []EdgeSpec
		for _, l := range []struct {
			name, station string
			demand        float64
		}{
			{"uniq", "uniqueid", cfg.UniqueID},
			{"urls", "urlshort", cfg.URLShorten},
			{"text", "post-text", cfg.TextDemand},
			{"tags", "usertag", cfg.UserTag},
		} {
			stages = append(stages, StageSpec{
				Name: prefix + l.name, Station: l.station, DemandMs: l.demand,
				Next: []EdgeSpec{{To: edgeJoin, Hop: true}}})
			edges = append(edges, EdgeSpec{To: prefix + l.name, Hop: true})
		}
		return stages, edges
	}
	rlegs, redges := legs("")
	blegs, bedges := legs("b")
	spec := &GraphSpec{
		Name:     "composepost",
		Entry:    "web",
		NetHopMs: cfg.NetHop,
		Stations: []StationSpec{
			{Name: "web"},
			{Name: "post-orch", BatchTier: true},
			{Name: "uniqueid", CoresMul: 0.25},
			{Name: "urlshort", CoresMul: 0.25},
			{Name: "post-text", CoresMul: 0.5},
			{Name: "usertag", CoresMul: 0.25},
			{Name: "storage", Infinite: true},
			{Name: "memcached", CoresMul: 0.25},
		},
		Stages: append([]StageSpec{
			{Name: "web", Station: "web", DemandMs: cfg.WebDemand,
				Next: []EdgeSpec{{To: "orch", Hop: true}}},
			{Name: "orch", Station: "post-orch", DemandMs: cfg.OrchDemand,
				Fanout: redges,
				Next:   []EdgeSpec{{To: "store"}}},
			{Name: "store", Station: "storage", DemandMs: cfg.StorageWrite, Fixed: true,
				Next: []EdgeSpec{{To: "cache"}}},
			{Name: "cache", Station: "memcached", DemandMs: cfg.CacheWrite,
				Next: []EdgeSpec{{To: edgeDone}}},
		}, rlegs...),
		Batch: &BatchSpec{
			// Logic-tier batching: the web tier acknowledges each request
			// individually and the batch enters the orchestrator directly
			// (no entry hop), matching RunComposePost.
			FormAfter: "web", Entry: "borch",
			Stages: append([]BatchStageSpec{
				{Name: "borch", Station: "post-orch", DemandMs: cfg.OrchDemand,
					Fanout: bedges,
					Next:   []EdgeSpec{{To: "bstore"}}},
				{Name: "bstore", Station: "storage", DemandMs: cfg.StorageWrite, Fixed: true,
					Next: []EdgeSpec{{To: "bcache"}}},
				{Name: "bcache", Station: "memcached", DemandMs: cfg.CacheWrite,
					Next: []EdgeSpec{{To: edgeDone}}},
			}, batchLegs(blegs)...),
		},
	}
	return spec
}

// batchLegs lifts request-stage leg specs into batch-stage leg specs
// (same stations, demands and join edges).
func batchLegs(stages []StageSpec) []BatchStageSpec {
	out := make([]BatchStageSpec, len(stages))
	for i, s := range stages {
		out[i] = BatchStageSpec{Name: s.Name, Station: s.Station,
			DemandMs: s.DemandMs, Fixed: s.Fixed, Next: s.Next}
	}
	return out
}

// HotelGraph is a DeathStarBench hotel-reservation scenario: frontend
// → search, which fans out to geo and rate in parallel, joins, then a
// profile lookup that hits its cache 80% of the time and otherwise
// pays a reservation-DB round trip. The RPU path batches at the search
// tier.
func HotelGraph() *GraphSpec {
	return &GraphSpec{
		Name:     "hotel",
		Entry:    "frontend",
		NetHopMs: 0.06,
		Stations: []StationSpec{
			{Name: "frontend"},
			{Name: "search", BatchTier: true},
			{Name: "geo", CoresMul: 0.5},
			{Name: "rate", CoresMul: 0.5},
			{Name: "profile", CoresMul: 0.5},
			{Name: "reservedb", Infinite: true},
		},
		Coins: []CoinSpec{{Name: "profilecache", Prob: 0.8}},
		Stages: []StageSpec{
			{Name: "frontend", Station: "frontend", DemandMs: 0.3,
				Next: []EdgeSpec{{To: "search", Hop: true}}},
			{Name: "search", Station: "search", DemandMs: 1.1,
				Fanout: []EdgeSpec{{To: "geo", Hop: true}, {To: "rate", Hop: true}},
				Next:   []EdgeSpec{{To: "profile", Hop: true}}},
			{Name: "geo", Station: "geo", DemandMs: 0.35,
				Next: []EdgeSpec{{To: edgeJoin, Hop: true}}},
			{Name: "rate", Station: "rate", DemandMs: 0.45,
				Next: []EdgeSpec{{To: edgeJoin, Hop: true}}},
			{Name: "profile", Station: "profile", DemandMs: 0.6,
				Next: []EdgeSpec{
					{To: edgeDone, Hop: true, Coin: "profilecache"},
					{To: "reservedb"},
				}},
			{Name: "reservedb", Station: "reservedb", DemandMs: 2.0, Fixed: true,
				Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
		},
		Batch: &BatchSpec{
			FormAfter: "frontend", Entry: "bsearch", EntryHop: true,
			Stages: []BatchStageSpec{
				{Name: "bsearch", Station: "search", DemandMs: 1.1,
					Fanout: []EdgeSpec{{To: "bgeo", Hop: true}, {To: "brate", Hop: true}},
					Next:   []EdgeSpec{{To: "bprofile", Hop: true}}},
				{Name: "bgeo", Station: "geo", DemandMs: 0.35,
					Next: []EdgeSpec{{To: edgeJoin, Hop: true}}},
				{Name: "brate", Station: "rate", DemandMs: 0.45,
					Next: []EdgeSpec{{To: edgeJoin, Hop: true}}},
				{Name: "bprofile", Station: "profile", DemandMs: 0.6,
					Diverge: &DivergeSpec{
						Coin: "profilecache",
						Hit:  EdgeSpec{To: "bdone", Hop: true},
						Miss: EdgeSpec{To: "breservedb"},
						Hold: &EdgeSpec{To: "bprofilehold", Hop: true},
					}},
				{Name: "breservedb", Station: "reservedb", DemandMs: 2.0, Fixed: true,
					Next: []EdgeSpec{{To: "bdone", Hop: true}}},
				// Unsplit batches hold a profile server for the DB round
				// trip at the reconvergence point.
				{Name: "bprofilehold", Station: "profile", DemandMs: 0, Fixed: true,
					HoldMs: 2.0,
					Next:   []EdgeSpec{{To: "bdone", Hop: true}}},
				// Reply aggregation back at the search tier before the
				// batch completes.
				{Name: "bdone", Station: "search", DemandMs: 0.1,
					Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
			},
		},
	}
}

// MediaGraph is a DeathStarBench media-service scenario: a sequential
// review pipeline (frontend → API → review compose → movie info) with
// a movie-info cache divergence into storage, then the rating tier.
// The RPU path batches at the API tier.
func MediaGraph() *GraphSpec {
	return &GraphSpec{
		Name:     "media",
		Entry:    "frontend",
		NetHopMs: 0.06,
		Stations: []StationSpec{
			{Name: "frontend"},
			{Name: "api", BatchTier: true},
			{Name: "review", CoresMul: 0.5},
			{Name: "movieinfo", CoresMul: 0.5},
			{Name: "rating", CoresMul: 0.25},
			{Name: "moviedb", Infinite: true},
		},
		Coins: []CoinSpec{{Name: "moviecache", Prob: 0.7}},
		Stages: []StageSpec{
			{Name: "frontend", Station: "frontend", DemandMs: 0.25,
				Next: []EdgeSpec{{To: "api", Hop: true}}},
			{Name: "api", Station: "api", DemandMs: 1.0,
				Next: []EdgeSpec{{To: "review", Hop: true}}},
			{Name: "review", Station: "review", DemandMs: 0.7,
				Next: []EdgeSpec{{To: "movieinfo", Hop: true}}},
			{Name: "movieinfo", Station: "movieinfo", DemandMs: 0.5,
				Next: []EdgeSpec{
					{To: "rating", Hop: true, Coin: "moviecache"},
					{To: "moviedb"},
				}},
			{Name: "moviedb", Station: "moviedb", DemandMs: 1.5, Fixed: true,
				Next: []EdgeSpec{{To: "rating", Hop: true}}},
			{Name: "rating", Station: "rating", DemandMs: 0.3,
				Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
		},
		Batch: &BatchSpec{
			FormAfter: "frontend", Entry: "bapi", EntryHop: true,
			Stages: []BatchStageSpec{
				{Name: "bapi", Station: "api", DemandMs: 1.0,
					Next: []EdgeSpec{{To: "breview", Hop: true}}},
				{Name: "breview", Station: "review", DemandMs: 0.7,
					Next: []EdgeSpec{{To: "bmovieinfo", Hop: true}}},
				{Name: "bmovieinfo", Station: "movieinfo", DemandMs: 0.5,
					Diverge: &DivergeSpec{
						Coin: "moviecache",
						Hit:  EdgeSpec{To: "brating", Hop: true},
						Miss: EdgeSpec{To: "bmoviedb"},
						Hold: &EdgeSpec{To: "bratinghold", Hop: true},
					}},
				{Name: "bmoviedb", Station: "moviedb", DemandMs: 1.5, Fixed: true,
					Next: []EdgeSpec{{To: "brating", Hop: true}}},
				{Name: "brating", Station: "rating", DemandMs: 0.3,
					Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
				{Name: "bratinghold", Station: "rating", DemandMs: 0.3,
					HoldMs: 1.5,
					Next:   []EdgeSpec{{To: edgeDone, Hop: true}}},
			},
		},
	}
}

// IoTGraph is an IoT/edge pipeline: gateway → decode → analytics,
// which raises a synchronous alert and fires an asynchronous archive
// write that nobody waits for (the async-edge showcase). The RPU path
// batches at the analytics tier.
func IoTGraph() *GraphSpec {
	return &GraphSpec{
		Name:     "iot",
		Entry:    "gateway",
		NetHopMs: 0.06,
		Stations: []StationSpec{
			{Name: "gateway"},
			{Name: "analytics", BatchTier: true},
			{Name: "decode", CoresMul: 0.5},
			{Name: "alert", CoresMul: 0.25},
			{Name: "archive", Infinite: true},
		},
		Stages: []StageSpec{
			{Name: "gateway", Station: "gateway", DemandMs: 0.2,
				Next: []EdgeSpec{{To: "decode", Hop: true}}},
			{Name: "decode", Station: "decode", DemandMs: 0.6,
				Next: []EdgeSpec{{To: "analytics", Hop: true}}},
			{Name: "analytics", Station: "analytics", DemandMs: 1.3,
				Fanout: []EdgeSpec{
					{To: "alert", Hop: true},
					{To: "archive", Hop: true, Async: true},
				},
				Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
			{Name: "alert", Station: "alert", DemandMs: 0.3,
				Next: []EdgeSpec{{To: edgeJoin, Hop: true}}},
			{Name: "archive", Station: "archive", DemandMs: 4.0, Fixed: true,
				Next: []EdgeSpec{{To: edgeJoin}}},
		},
		Batch: &BatchSpec{
			FormAfter: "gateway", Entry: "bdecode", EntryHop: true,
			Stages: []BatchStageSpec{
				{Name: "bdecode", Station: "decode", DemandMs: 0.6,
					Next: []EdgeSpec{{To: "banalytics", Hop: true}}},
				{Name: "banalytics", Station: "analytics", DemandMs: 1.3,
					Fanout: []EdgeSpec{
						{To: "balert", Hop: true},
						{To: "barchive", Hop: true, Async: true},
					},
					Next: []EdgeSpec{{To: edgeDone, Hop: true}}},
				{Name: "balert", Station: "alert", DemandMs: 0.3,
					Next: []EdgeSpec{{To: edgeJoin, Hop: true}}},
				{Name: "barchive", Station: "archive", DemandMs: 4.0, Fixed: true,
					Next: []EdgeSpec{{To: edgeJoin}}},
			},
		},
	}
}
