// Overload-management policies for the tail-at-scale engine: per-try
// timeouts, bounded retries with exponential backoff, request hedging
// and per-station queue caps. These are what turn p99/p999 under
// overload from an artifact of unbounded queueing into a first-class,
// policy-shaped result — the tail-at-scale playbook (and CloudNativeSim
// / the OpenDC microservice simulator) treat them as part of the
// system, not of the workload.
package queuesim

// PolicyConfig bounds how long a request may occupy the system and how
// aggressively it is re-issued. The zero value applies no policy:
// requests queue without bound and are never abandoned.
type PolicyConfig struct {
	// TimeoutMs cancels a try that has not completed TimeoutMs after it
	// was issued (measured per try, not per logical request). 0 = no
	// timeout.
	TimeoutMs float64
	// MaxRetries is how many additional tries follow a timed-out or
	// rejected one. Only meaningful with TimeoutMs or QueueCap set.
	MaxRetries int
	// BackoffMs is the base retry backoff, doubled per successive try
	// and jittered ±20 %. 0 with retries enabled means immediate
	// re-issue.
	BackoffMs float64
	// HedgeMs issues a duplicate of a still-unfinished request HedgeMs
	// after its first try started; the first copy to complete wins and
	// the loser is cancelled. 0 = no hedging.
	HedgeMs float64
	// QueueCap rejects submissions to a station whose queue already
	// holds QueueCap entries (the rejection is retried under the same
	// backoff policy, or fails the request). 0 = unbounded queues.
	QueueCap int
	// MaxBackoffMs caps the doubled backoff (before jitter). 0 = no
	// explicit cap; doubling still stops at 2^16 × BackoffMs so a deep
	// retry budget cannot overflow the shift into a zero or negative
	// wait (an immediate-retry storm).
	MaxBackoffMs float64
}

// backoffShiftCap stops exponential doubling at 2^16 × BackoffMs.
// Beyond ~17 tries the uncapped shift would exceed an int32 (and by 63
// wrap negative), turning backoff into immediate re-issue.
const backoffShiftCap = 16

// backoff returns the jittered exponential backoff before try number
// `tries` (1-based over retries: the first retry waits ~BackoffMs, the
// second ~2x, …).
func (e *engine) backoff(tries uint8) float64 {
	if e.pol.BackoffMs <= 0 {
		return 0
	}
	sh := uint(tries - 1)
	if sh > backoffShiftCap {
		sh = backoffShiftCap
	}
	d := e.pol.BackoffMs * float64(int64(1)<<sh)
	if e.pol.MaxBackoffMs > 0 && d > e.pol.MaxBackoffMs {
		d = e.pol.MaxBackoffMs
	}
	return e.sim.Jitter(d)
}
