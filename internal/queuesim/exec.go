// The generic spec-driven executor: walks the compiled graph tables
// (cgraph, see graph.go) instead of hand-coded dispatch switches. The
// request path supports coin-conditioned edges and sync/async fan-out
// legs; the batch path supports fan-out and per-member hit/miss
// divergence. Stage payloads in events are compiled stage indices (or
// the cgDone/cgJoin sentinels), which never affect heap order, so a
// spec that mirrors the legacy dispatch reproduces its event sequence
// exactly.
package queuesim

// --- request path ---

// enterG lands a request or fan-out leg on a compiled stage, resolves
// it at cgDone, or joins a leg at cgJoin.
func (e *engine) enterG(idx, stage int32) {
	r := &e.reqs[idx]
	if r.flags&rfLeg != 0 {
		if stage == cgJoin {
			e.legEnd(idx)
			return
		}
		// A sync leg whose parent died (timeout, rejection elsewhere,
		// slot recycled) is abandoned; legEnd settles the join count so
		// the dead parent is eventually collected. Async legs
		// (parent < 0) always run to their join.
		if r.parent >= 0 {
			p := &e.reqs[r.parent]
			if p.gen != r.pgen || p.flags&rfDead != 0 {
				e.legEnd(idx)
				return
			}
		}
	} else {
		if r.flags&rfDead != 0 {
			e.free(idx)
			return
		}
		if stage == cgDone {
			e.complete(idx)
			return
		}
	}
	r.stage = int8(stage)
	r.enq = e.sim.now
	e.submitReq(&e.sts[e.g.stages[stage].station], idx)
}

// serveReqG draws the service demand from the compiled stage.
func (e *engine) serveReqG(st *estation, idx int32) {
	s := &e.g.stages[e.reqs[idx].stage]
	d := s.demand
	if !s.fixed {
		d = e.sim.Jitter(d) * e.latMul
	}
	e.sim.AtEvent(d, ekSvcDone, idx, st.idx)
}

// followEdge moves a request along one compiled edge, crossing the
// wire when the edge is a hop.
func (e *engine) followEdge(idx int32, ed *cedge) {
	if ed.hop {
		e.sim.AtEvent(e.netHop, ekNet, idx, ed.to)
		return
	}
	e.enterG(idx, ed.to)
}

// advanceG moves a request past its just-completed stage: into the
// forming batch at the formation point (RPU), into its fan-out legs,
// or along the first matching next edge.
func (e *engine) advanceG(idx int32) {
	r := &e.reqs[idx]
	s := &e.g.stages[r.stage]
	if r.flags&rfLeg == 0 {
		if e.cfg.RPU && int32(r.stage) == e.g.formAfter {
			e.joinBatch(idx)
			return
		}
		if len(s.fanout) > 0 {
			e.fanoutG(idx, s)
			return
		}
	}
	e.followEdge(idx, pickEdge(s.next, r.coins))
}

// fanoutG spawns one leg per matching fan-out edge. The join count is
// set before any leg launches so a leg rejected synchronously (queue
// cap) cannot race it; if a rejected leg abandons and frees the parent
// mid-loop the generation check below stops the walk.
func (e *engine) fanoutG(idx int32, s *cstage) {
	r := &e.reqs[idx]
	coins := r.coins
	gen := r.gen
	arrive := r.arrive
	sync := int32(0)
	for i := range s.fanout {
		ed := &s.fanout[i]
		if ed.taken(coins) && !ed.async {
			sync++
		}
	}
	r.joins = sync
	for i := range s.fanout {
		ed := &s.fanout[i]
		if !ed.taken(coins) {
			continue
		}
		if e.reqs[idx].gen != gen {
			// A rejected leg already abandoned and freed the parent;
			// remaining legs would reference a recycled slot.
			return
		}
		li := e.alloc() // may grow the arena; use values captured above
		l := &e.reqs[li]
		l.arrive = arrive
		l.user = -1
		l.twin = -1
		l.tries = 0
		l.coins = coins
		l.flags = rfLeg
		l.joins = 0
		if ed.async {
			l.parent = -1
			l.pgen = 0
		} else {
			l.parent = idx
			l.pgen = gen
		}
		e.followEdge(li, ed)
	}
	r = &e.reqs[idx]
	if r.gen != gen {
		return // parent abandoned by a rejected leg during the launch loop
	}
	if r.joins == 0 {
		// No sync legs (all async or none taken): continue immediately.
		e.followEdge(idx, pickEdge(s.next, coins))
	}
}

// legEnd retires a fan-out leg: frees its slot, settles the parent's
// join count, and — when this was the last outstanding sync leg —
// either advances the parent or collects it if it died while waiting.
func (e *engine) legEnd(li int32) {
	l := &e.reqs[li]
	pi, pgen := l.parent, l.pgen
	e.free(li)
	if pi < 0 {
		return // async leg: nobody waits
	}
	p := &e.reqs[pi]
	if p.gen != pgen {
		return // parent slot already recycled
	}
	p.joins--
	if p.joins > 0 {
		return
	}
	if p.flags&rfDead != 0 {
		e.free(pi) // the legs were its driver
		return
	}
	e.followEdge(pi, pickEdge(e.g.stages[p.stage].next, p.coins))
}

// rejectLeg handles a queue-capacity rejection of a fan-out leg: the
// parent's current try is abandoned (retrying if budget remains) and
// the leg joins out.
func (e *engine) rejectLeg(li int32) {
	l := &e.reqs[li]
	if l.parent >= 0 {
		p := &e.reqs[l.parent]
		if p.gen == l.pgen && p.flags&rfDead == 0 {
			// Not the driver: the outstanding legs collectively are.
			e.abandonTry(l.parent, false)
		}
	}
	e.legEnd(li)
}

// --- batch path ---

// enterBatchG lands a batch (or batch fan-out leg) on a compiled
// batch stage, completes it at cgDone, or joins a leg at cgJoin.
func (e *engine) enterBatchG(bi, stage int32) {
	if stage == cgDone {
		e.completeBatch(bi)
		return
	}
	if stage == cgJoin {
		e.batchLegEnd(bi)
		return
	}
	b := &e.batches[bi]
	b.stage = int8(stage)
	b.enq = e.sim.now
	e.submitBatch(&e.sts[e.g.bstages[stage].station], bi)
}

func (e *engine) followBEdge(bi int32, ed *cedge) {
	if ed.hop {
		e.sim.AtEvent(e.netHop, ekBatchNet, bi, ed.to)
		return
	}
	e.enterBatchG(bi, ed.to)
}

// serveBatchG draws the batch service demand: fixed or jittered
// demand, plus any on-core hold (the reconvergence wait of an unsplit
// batch). hold + Jitter(demand)·latMul reproduces the legacy
// bsUser2Hold expression bit for bit when hold is zero or demand
// matches.
func (e *engine) serveBatchG(st *estation, bi int32) {
	bs := &e.g.bstages[e.batches[bi].stage]
	d := bs.demand
	if !bs.fixed {
		d = e.sim.Jitter(d) * e.latMul
	}
	d = bs.hold + d
	e.sim.AtEvent(d, ekBatchDone, bi, st.idx)
}

// onBatchDoneG routes a batch past its just-completed stage: into a
// divergence, its fan-out legs, or along its next edge.
func (e *engine) onBatchDoneG(bi int32) {
	b := &e.batches[bi]
	bs := &e.g.bstages[b.stage]
	if bs.div != nil {
		e.divergeG(bi, bs.div)
		return
	}
	if len(bs.fanout) > 0 && b.parent < 0 {
		e.bfanoutG(bi, bs)
		return
	}
	e.followBEdge(bi, &bs.next[0])
}

// bfanoutG spawns one empty sub-batch per fan-out edge; sync legs
// occupy their stations batch-wide and join back before the parent
// batch continues. Unlike request legs there is no rejection hazard:
// submitBatch has no queue cap, so the join count cannot race.
func (e *engine) bfanoutG(bi int32, bs *cbstage) {
	sync := int32(0)
	for i := range bs.fanout {
		if !bs.fanout[i].async {
			sync++
		}
	}
	e.batches[bi].joins = sync
	for i := range bs.fanout {
		ed := &bs.fanout[i]
		li := e.allocBatch()
		l := &e.batches[li]
		if !ed.async {
			l.parent = bi
		}
		e.followBEdge(li, ed)
	}
	if sync == 0 {
		e.followBEdge(bi, &bs.next[0])
	}
}

// batchLegEnd retires a batch fan-out leg and advances the parent
// batch when it was the last sync leg outstanding.
func (e *engine) batchLegEnd(li int32) {
	pi := e.batches[li].parent
	e.freeBatch(li)
	if pi < 0 {
		return
	}
	p := &e.batches[pi]
	p.joins--
	if p.joins > 0 {
		return
	}
	e.followBEdge(pi, &e.g.bstages[p.stage].next[0])
}

// divergeG routes a batch after its per-member coin divergence:
// collect cancelled members, then split (§III-B5), hold the whole
// batch at the reconvergence point, or proceed along the hit edge.
// This is divergeL generalised to any coin and any three edges.
func (e *engine) divergeG(bi int32, dv *cbdiv) {
	b := &e.batches[bi]
	bit := uint16(1) << dv.coin
	live := b.members[:0]
	misses := 0
	for _, idx := range b.members {
		r := &e.reqs[idx]
		if r.flags&rfDead != 0 {
			e.free(idx)
			continue
		}
		live = append(live, idx)
		if r.coins&bit == 0 {
			misses++
		}
	}
	b.members = live
	if len(live) == 0 {
		e.freeBatch(bi)
		return
	}
	if misses == 0 {
		e.followBEdge(bi, &dv.hit)
		return
	}
	if !e.cfg.Split {
		if dv.hasHold {
			e.followBEdge(bi, &dv.hold)
		} else {
			e.followBEdge(bi, &dv.miss)
		}
		return
	}
	e.m.SplitBatches++
	if misses == len(live) {
		// All-miss batch: it is its own miss sub-batch.
		e.followBEdge(bi, &dv.miss)
		return
	}
	mi := e.allocBatch()
	b = &e.batches[bi] // allocBatch may grow the arena
	mb := &e.batches[mi]
	hits := b.members[:0]
	for _, idx := range b.members {
		if e.reqs[idx].coins&bit == 0 {
			mb.members = append(mb.members, idx)
		} else {
			hits = append(hits, idx)
		}
	}
	b.members = hits
	e.followBEdge(bi, &dv.hit)
	e.followBEdge(mi, &dv.miss)
}
