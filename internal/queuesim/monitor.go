// Observability for the discrete-event simulator: an optional Monitor
// records per-station queue-length/busy-server time series as
// Chrome-trace counter events stamped on the *simulated* clock
// (millisecond sim time → microsecond trace timestamps), per-hop
// sojourn-latency histograms and queue/busy high-water marks in an
// obs.Registry. Monitoring is pure observation — it never schedules
// events or perturbs the random streams, so metrics are identical with
// it on or off.
package queuesim

import (
	"math"
	"strconv"

	"simr/internal/obs"
)

// SojournBounds are the fixed histogram bucket upper bounds (ms) for
// per-hop sojourn (queue wait + service) latencies.
var SojournBounds = []float64{0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500}

// Monitor attaches observability to one simulation run. Either field
// may be nil to record only the other. The zero MinDT samples every
// state change; a positive value thins the counter time series to at
// most one sample per station per MinDT simulated milliseconds (the
// histograms and high-water marks always see every event).
type Monitor struct {
	// Reg receives per-station scopes named
	// "queuesim.<Label>.<station>" ("queuesim.<station>" when Label is
	// empty): a sojourn_ms histogram and queue_hwm/busy_hwm gauges.
	Reg *obs.Registry
	// Sink receives the trace events; PID tags them so concurrent runs
	// (sweep cells) land on separate process tracks.
	Sink *obs.TraceSink
	// Label names this run in scope names and the trace process track.
	Label string
	// PID is the trace process id for this run's events.
	PID int
	// MinDT is the minimum simulated-ms spacing between counter
	// samples per station.
	MinDT float64
	// Spans additionally emits one trace span per completed hop. Off
	// by default: at data-center loads that is one event per station
	// visit, which dwarfs the thinned counter tracks.
	Spans bool

	nstations int
	metaDone  bool
}

// stationProbe is one station's monitoring state. All methods are
// no-ops on a nil receiver, keeping the unmonitored path free of
// allocations and observable work. The probe holds no reference to the
// station — callers pass the instantaneous state in — so the legacy
// Station and the tail engine's arena-based stations share it.
type stationProbe struct {
	mon     *Monitor
	name    string
	tid     int
	sojourn *obs.Histogram
	qHWM    *obs.Gauge
	busyHWM *obs.Gauge
	lastTS  float64
	lastQ   int
	lastB   int
}

// station registers a new station with the monitor, returning nil on a
// nil monitor. Called from NewStation / engine setup, which run before
// the event loop starts, so it needs no locking.
func (m *Monitor) station(name string, servers int) *stationProbe {
	if m == nil {
		return nil
	}
	if !m.metaDone {
		m.metaDone = true
		label := m.Label
		if label == "" {
			label = "queuesim"
		}
		m.Sink.Meta("process_name", m.PID, label)
	}
	p := &stationProbe{mon: m, name: name, tid: m.nstations, lastTS: math.Inf(-1), lastQ: -1, lastB: -1}
	m.nstations++
	if m.Reg != nil {
		sc := m.Reg.Scope(ScopeName(m.Label, name))
		p.sojourn = sc.Histogram("sojourn_ms", SojournBounds)
		p.qHWM = sc.Gauge("queue_hwm")
		p.busyHWM = sc.Gauge("busy_hwm")
		sc.Gauge("servers").Set(int64(servers))
	}
	return p
}

// runScope returns the registry scope for run-level series (in-flight
// population, policy counters) under "queuesim.<Label>.run", or nil
// when unmonitored.
func (m *Monitor) runScope() *obs.Scope {
	if m == nil || m.Reg == nil {
		return nil
	}
	return m.Reg.Scope(ScopeName(m.Label, "run"))
}

// sample records the station's instantaneous queue length and busy
// server count at simulated time now: high-water marks always, and a
// trace counter event when the state changed and at least MinDT
// simulated ms passed since the previous sample.
func (p *stationProbe) sample(now float64, q, b int) {
	if p == nil {
		return
	}
	p.qHWM.SetMax(int64(q))
	p.busyHWM.SetMax(int64(b))
	if p.mon.Sink == nil || (q == p.lastQ && b == p.lastB) {
		return
	}
	if now-p.lastTS < p.mon.MinDT {
		return
	}
	// Simulated milliseconds → trace microseconds: 1 ms of simulated
	// time renders as 1 ms in the viewer.
	p.mon.Sink.CounterPair(p.name, p.mon.PID, now*1000, "busy", float64(b), "queue", float64(q))
	p.lastTS, p.lastQ, p.lastB = now, q, b
}

// observe records one hop's sojourn time (ms) completing at simulated
// time now, and emits it as a span on the station's trace thread so
// individual hops are visible in the timeline.
func (p *stationProbe) observe(now, sojournMs float64) {
	if p == nil {
		return
	}
	p.sojourn.Observe(sojournMs)
	if p.mon.Spans && p.mon.Sink != nil {
		p.mon.Sink.Complete(p.name, "hop", p.mon.PID, p.tid, (now-sojournMs)*1000, sojournMs*1000)
	}
}

// ScopeName returns the registry scope a monitored run's station
// reports under — the naming contract drivers and tests rely on.
func ScopeName(label, station string) string {
	if label == "" {
		return "queuesim." + station
	}
	return "queuesim." + label + "." + station
}

// CellLabel builds the conventional per-cell monitor label
// "<mode>-qps<n>" used by the sweep drivers.
func CellLabel(mode string, qps float64) string {
	return mode + "-qps" + strconv.FormatFloat(qps, 'f', -1, 64)
}
