// The hierarchical timer wheel (Varghese & Lauck, SOSP 1987) hosting
// the cancellable auxiliary events — timeouts, retry backoffs, hedge
// points, batch-formation timers. Arming returns a handle; cancelling
// through it unlinks the entry in O(1), so a completed request's
// timers vanish instead of being popped later as gen-checked no-ops.
// Four 64-slot levels are cycle-aligned on the absolute tick number
// (level L holds entries sharing the cursor's level-L cycle but not
// its level-(L-1) cycle); per-level occupancy bitmaps make "next
// non-empty slot" one TrailingZeros64, and slots cascade downward
// on demand. The current slot expands into a due buffer sorted by
// (at, seq) — the same total order as the calendar queue and the heap
// — so merged dispatch is bit-identical across schedulers. Entries
// live in an index-addressed arena with a freelist: steady state
// allocates nothing.
package queuesim

import "math/bits"

const (
	twSlotBits = 6
	twSlots    = 1 << twSlotBits
	twMask     = twSlots - 1
	twLevels   = 4
	// wheelTick is the level-0 slot width in simulated milliseconds.
	// The four levels cover delays up to 64⁴ ticks (~2.3 simulated
	// hours); anything beyond parks on the overflow list and is
	// re-placed when the wheel catches up.
	wheelTick = 0.5
)

// Timer entry states.
const (
	twFree      uint8 = iota
	twInSlot          // linked into a level/slot list
	twInDue           // in the due buffer awaiting dispatch
	twInOvf           // on the overflow list (delay beyond the top level)
	twCancelled       // cancelled while in the due buffer; freed at drain
)

// twEntry is one pooled timer. next/prev link the slot lists (and the
// freelist via next); lvl/slot locate the entry for O(1) unlink.
type twEntry struct {
	at    float64
	seq   uint64
	next  int32
	prev  int32
	a, b  int32
	kind  uint8
	state uint8
	lvl   int8
	slot  uint8
}

type timerWheel struct {
	entries  []twEntry
	freeHead int32
	slots    [twLevels][twSlots]int32
	occ      [twLevels]uint64
	curTick  int64
	due      []int32
	dueHead  int
	ovf      []int32
	live     int
	inited   bool

	// Stats reported under the queuesim.<label>.sched scope.
	armed     uint64
	fired     uint64
	cancelled uint64 // physically unlinked (calendar mode)
	cascades  uint64
	overflows uint64
	dueHWM    int
}

func (w *timerWheel) init() {
	w.inited = true
	w.freeHead = -1
	for l := range w.slots {
		for s := range w.slots[l] {
			w.slots[l][s] = -1
		}
	}
}

// arm schedules a typed timer at absolute time at with arming sequence
// seq, returning its arena index. A timer landing inside the
// still-draining due window is merge-inserted there so global (at,
// seq) order survives; everything else hashes onto a wheel level.
func (w *timerWheel) arm(at float64, seq uint64, kind uint8, a, b int32) int32 {
	if !w.inited {
		w.init()
	}
	var idx int32
	if w.freeHead >= 0 {
		idx = w.freeHead
		w.freeHead = w.entries[idx].next
	} else {
		w.entries = append(w.entries, twEntry{})
		idx = int32(len(w.entries) - 1)
	}
	w.entries[idx] = twEntry{at: at, seq: seq, a: a, b: b, kind: kind, next: -1, prev: -1}
	w.live++
	w.armed++
	if w.dueHead < len(w.due) {
		last := &w.entries[w.due[len(w.due)-1]]
		if at < last.at || (at == last.at && seq < last.seq) {
			w.insertDue(idx)
			return idx
		}
	}
	w.place(idx)
	return idx
}

// place hashes an entry onto the lowest level sharing the cursor's
// cycle: level L iff tick>>6(L+1) == curTick>>6(L+1). Within that
// level the slot index is strictly ahead of the cursor (equal only at
// level 0), so cursor-relative bitmap scans never miss live work.
func (w *timerWheel) place(idx int32) {
	en := &w.entries[idx]
	tick := int64(en.at / wheelTick)
	if tick < w.curTick {
		tick = w.curTick
	}
	for lvl := 0; lvl < twLevels; lvl++ {
		shift := uint(twSlotBits * (lvl + 1))
		if tick>>shift != w.curTick>>shift {
			continue
		}
		slot := int(tick >> uint(twSlotBits*lvl) & twMask)
		en.lvl, en.slot, en.state = int8(lvl), uint8(slot), twInSlot
		en.prev = -1
		en.next = w.slots[lvl][slot]
		if en.next >= 0 {
			w.entries[en.next].prev = idx
		}
		w.slots[lvl][slot] = idx
		w.occ[lvl] |= 1 << uint(slot)
		return
	}
	en.state = twInOvf
	w.ovf = append(w.ovf, idx)
	w.overflows++
}

// insertDue merge-inserts an entry into the sorted live region of the
// due buffer.
func (w *timerWheel) insertDue(idx int32) {
	en := &w.entries[idx]
	en.state = twInDue
	lo, hi := w.dueHead, len(w.due)
	for lo < hi {
		mid := (lo + hi) / 2
		m := &w.entries[w.due[mid]]
		if m.at < en.at || (m.at == en.at && m.seq < en.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.due = append(w.due, 0)
	copy(w.due[lo+1:], w.due[lo:])
	w.due[lo] = idx
}

// cancel deschedules a live timer in O(1): slot entries unlink, due
// entries are tombstoned until the drain frees them, overflow entries
// (rare by construction) are scanned out.
func (w *timerWheel) cancel(idx int32) bool {
	en := &w.entries[idx]
	switch en.state {
	case twInSlot:
		w.unlink(idx)
		w.freeEntry(idx)
	case twInDue:
		en.state = twCancelled
	case twInOvf:
		for i, v := range w.ovf {
			if v == idx {
				w.ovf = append(w.ovf[:i], w.ovf[i+1:]...)
				break
			}
		}
		w.freeEntry(idx)
	default:
		return false
	}
	w.live--
	w.cancelled++
	return true
}

func (w *timerWheel) unlink(idx int32) {
	en := &w.entries[idx]
	if en.prev >= 0 {
		w.entries[en.prev].next = en.next
	} else {
		w.slots[en.lvl][en.slot] = en.next
	}
	if en.next >= 0 {
		w.entries[en.next].prev = en.prev
	}
	if w.slots[en.lvl][en.slot] < 0 {
		w.occ[en.lvl] &^= 1 << uint(en.slot)
	}
}

func (w *timerWheel) freeEntry(idx int32) {
	en := &w.entries[idx]
	en.state = twFree
	en.next = w.freeHead
	w.freeHead = idx
}

// peekMin returns the wheel's next (at, seq) without removing it. The
// caller passes the calendar queue's current minimum: while the
// earliest non-empty slot's window starts after that minimum, the
// wheel's exact head cannot win the merge, so no slot is expanded —
// the O(1) lower bound does the work. Expansion (and any cascades it
// needs) happens only when the wheel might hold the global minimum.
func (w *timerWheel) peekMin(calAt float64, calOK bool) (at float64, seq uint64, ok bool) {
	for {
		for w.dueHead < len(w.due) {
			en := &w.entries[w.due[w.dueHead]]
			if en.state == twCancelled {
				w.freeEntry(w.due[w.dueHead])
				w.dueHead++
				continue
			}
			return en.at, en.seq, true
		}
		if len(w.due) > 0 {
			w.due = w.due[:0]
			w.dueHead = 0
		}
		if w.live == 0 {
			return 0, 0, false
		}
		lvl, slot, startTick, found := w.nextSlot()
		if !found {
			w.rebaseOverflow()
			continue
		}
		if calOK && calAt < float64(startTick)*wheelTick {
			return 0, 0, false
		}
		w.expand(lvl, slot, startTick)
	}
}

// nextSlot locates the earliest non-empty slot across the levels. At
// level 0 the cursor's own slot counts (it may have been refilled by
// a short timer after expansion); at higher levels the cursor slot was
// cascaded on entry, so only strictly later slots can be live.
func (w *timerWheel) nextSlot() (lvl, slot int, startTick int64, ok bool) {
	c0 := int(w.curTick & twMask)
	if b := w.occ[0] >> uint(c0); b != 0 {
		s := c0 + bits.TrailingZeros64(b)
		return 0, s, w.curTick&^twMask + int64(s), true
	}
	for l := 1; l < twLevels; l++ {
		c := int(w.curTick >> uint(twSlotBits*l) & twMask)
		if b := w.occ[l] >> uint(c) >> 1; b != 0 {
			s := c + 1 + bits.TrailingZeros64(b)
			cycle := w.curTick &^ (int64(1)<<uint(twSlotBits*(l+1)) - 1)
			return l, s, cycle + int64(s)<<uint(twSlotBits*l), true
		}
	}
	return 0, 0, 0, false
}

// expand advances the cursor to the slot's window start and opens it:
// level 0 drains into the due buffer (sorted by (at, seq)); higher
// levels cascade their entries back through place, which re-hashes
// them onto lower levels relative to the new cursor.
func (w *timerWheel) expand(lvl, slot int, startTick int64) {
	w.curTick = startTick
	h := w.slots[lvl][slot]
	w.slots[lvl][slot] = -1
	w.occ[lvl] &^= 1 << uint(slot)
	if lvl == 0 {
		for i := h; i >= 0; {
			next := w.entries[i].next
			w.entries[i].state = twInDue
			w.due = append(w.due, i)
			i = next
		}
		w.sortDue()
		if len(w.due) > w.dueHWM {
			w.dueHWM = len(w.due)
		}
		return
	}
	w.cascades++
	for i := h; i >= 0; {
		next := w.entries[i].next
		w.entries[i].next, w.entries[i].prev = -1, -1
		w.place(i)
		i = next
	}
}

// rebaseOverflow re-places the overflow list once every level is
// empty: the cursor jumps to the earliest parked tick, which by
// construction lands that entry on a live level.
func (w *timerWheel) rebaseOverflow() {
	minTick := int64(0)
	for i, idx := range w.ovf {
		t := int64(w.entries[idx].at / wheelTick)
		if i == 0 || t < minTick {
			minTick = t
		}
	}
	if minTick > w.curTick {
		w.curTick = minTick
	}
	pending := w.ovf
	w.ovf = w.ovf[len(w.ovf):]
	for _, idx := range pending {
		w.entries[idx].state = twFree // place() re-tags it
		w.place(idx)
	}
}

// popDue removes and returns the due head; peekMin has already skipped
// any cancelled tombstones in front of it.
func (w *timerWheel) popDue() calEvent {
	idx := w.due[w.dueHead]
	w.dueHead++
	en := &w.entries[idx]
	e := calEvent{at: en.at, seq: en.seq, kind: uint32(en.kind), a: en.a, b: en.b}
	w.freeEntry(idx)
	w.live--
	w.fired++
	return e
}

// sortDue heapsorts the due buffer by (at, seq) in place — hand-rolled
// so the dispatch path stays allocation-free.
func (w *timerWheel) sortDue() {
	d := w.due
	n := len(d)
	for i := n/2 - 1; i >= 0; i-- {
		w.siftDue(i, n)
	}
	for i := n - 1; i > 0; i-- {
		d[0], d[i] = d[i], d[0]
		w.siftDue(0, i)
	}
}

func (w *timerWheel) siftDue(i, n int) {
	d := w.due
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && w.dueLess(d[l], d[r]) {
			m = r
		}
		if !w.dueLess(d[i], d[m]) {
			return
		}
		d[i], d[m] = d[m], d[i]
		i = m
	}
}

func (w *timerWheel) dueLess(a, b int32) bool {
	ea, eb := &w.entries[a], &w.entries[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}
