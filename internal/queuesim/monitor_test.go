package queuesim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"simr/internal/obs"
)

// fingerprint renders every metric a study driver prints, so two runs
// that differ anywhere in the stats render differently.
func fingerprint(m *Metrics) string {
	return fmt.Sprintf("%d %.6f %.6f %.6f %.6f %d %.6f %d",
		m.Completed, m.Latency.Percentile(99), m.Latency.Percentile(50),
		m.Latency.Mean(), m.UserUtil, m.Batches, m.AvgBatchFill, m.SplitBatches)
}

// TestSeededDeterminism runs the social-network and compose-post sims
// twice per mode with the same seed and asserts identical stats: the
// event heap breaks timestamp ties by submission sequence and dispatch
// closes over per-iteration work items, so a seed fully determines the
// run.
func TestSeededDeterminism(t *testing.T) {
	social := func() string {
		var out string
		for _, mode := range []struct{ rpu, split bool }{{false, false}, {true, false}, {true, true}} {
			cfg := DefaultConfig()
			cfg.QPS = 18000
			cfg.Seconds = 1.5
			cfg.Seed = 7
			cfg.RPU, cfg.Split = mode.rpu, mode.split
			out += fingerprint(Run(cfg)) + "\n"
		}
		return out
	}
	compose := func() string {
		var out string
		for _, rpu := range []bool{false, true} {
			cfg := DefaultComposePost()
			cfg.QPS = 5000
			cfg.Seconds = 1.5
			cfg.Seed = 7
			cfg.RPU = rpu
			out += fingerprint(RunComposePost(cfg)) + "\n"
		}
		return out
	}
	if a, b := social(), social(); a != b {
		t.Fatalf("social-network sim not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a, b := compose(), compose(); a != b {
		t.Fatalf("compose-post sim not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestMonitorDoesNotPerturb: attaching a monitor must leave every
// reported metric bit-identical to the unmonitored run.
func TestMonitorDoesNotPerturb(t *testing.T) {
	run := func(mon *Monitor) string {
		cfg := DefaultConfig()
		cfg.QPS = 12000
		cfg.Seconds = 1.5
		cfg.RPU, cfg.Split = true, true
		cfg.Monitor = mon
		return fingerprint(Run(cfg))
	}
	plain := run(nil)
	mon := &Monitor{Reg: obs.NewRegistry(), Sink: obs.NewTraceSink(), Label: "t", MinDT: 1, Spans: true}
	monitored := run(mon)
	if plain != monitored {
		t.Fatalf("monitor perturbed the simulation:\n%s\nvs\n%s", plain, monitored)
	}
	if mon.Sink.Len() == 0 {
		t.Fatal("monitor recorded no trace events")
	}
	snap := mon.Reg.Snapshot()
	if len(snap.Scopes) == 0 {
		t.Fatal("monitor recorded no registry scopes")
	}
	// The bottleneck station must have seen every phase-1/phase-2 hop.
	found := false
	for _, sc := range snap.Scopes {
		if sc.Name == ScopeName("t", "user") {
			found = true
			h := sc.Histograms["sojourn_ms"]
			if h.Count == 0 {
				t.Fatal("user station sojourn histogram is empty")
			}
			if sc.Gauges["busy_hwm"] <= 0 || sc.Gauges["servers"] <= 0 {
				t.Fatalf("user station gauges not recorded: %+v", sc.Gauges)
			}
		}
	}
	if !found {
		t.Fatalf("scope %q missing; scopes: %+v", ScopeName("t", "user"), snap.Scopes)
	}
}

// TestMonitorTraceShape: the simulated-clock trace export is a valid
// Trace Event Format array (ph/ts/name) with counter samples.
func TestMonitorTraceShape(t *testing.T) {
	mon := &Monitor{Sink: obs.NewTraceSink(), Label: "cpu-qps4000", PID: 3, MinDT: 0.5}
	cfg := DefaultConfig()
	cfg.QPS = 4000
	cfg.Seconds = 1
	cfg.Monitor = mon
	Run(cfg)

	var buf bytes.Buffer
	if err := mon.Sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace not a JSON array: %v", err)
	}
	counters := 0
	for _, e := range evs {
		if _, ok := e["name"].(string); !ok {
			t.Fatalf("event missing name: %v", e)
		}
		ph, ok := e["ph"].(string)
		if !ok {
			t.Fatalf("event missing ph: %v", e)
		}
		if ph == "C" {
			counters++
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("counter event missing ts: %v", e)
			}
			args, ok := e["args"].(map[string]any)
			if !ok {
				t.Fatalf("counter event missing args: %v", e)
			}
			for _, k := range []string{"busy", "queue"} {
				if _, ok := args[k]; !ok {
					t.Fatalf("counter args missing %q: %v", k, args)
				}
			}
		}
	}
	if counters == 0 {
		t.Fatal("no counter samples in trace")
	}
}

// TestMonitorDisabledAllocs: the probe hooks on the unmonitored path
// must be allocation-free.
func TestMonitorDisabledAllocs(t *testing.T) {
	s := NewSim(1)
	st := NewStation(s, "x", 1)
	if st.probe != nil {
		t.Fatal("station acquired a probe without a monitor")
	}
	n := testing.AllocsPerRun(200, func() {
		st.probe.sample(s.Now(), len(st.queue), st.busy)
		st.probe.observe(s.Now(), 1.5)
	})
	if n != 0 {
		t.Fatalf("disabled probe hooks allocate %v allocs/op, want 0", n)
	}
}
