// Arrival processes for the tail-at-scale engine: beyond the pure
// Poisson stream of the Figure 22 study, the engine offers a 2-state
// Markov-modulated Poisson process (bursts), a diurnal load shape
// (sinusoidal rate modulation via thinning) and a closed-loop user
// population (each user thinks, issues, waits). Burstiness and closed
// loops are what make p99/p999 under overload meaningful: an open
// Poisson stream at the mean rate understates tail pressure, and a
// closed loop self-throttles instead of collapsing.
package queuesim

import "math"

// ArrivalProcess selects the request arrival model.
type ArrivalProcess int

const (
	// ArrPoisson is the open-loop homogeneous Poisson stream at
	// Config.QPS (the Figure 22 model).
	ArrPoisson ArrivalProcess = iota
	// ArrMMPP is an open-loop 2-state Markov-modulated Poisson
	// process: a calm state and a burst state whose rates are derived
	// so the long-run mean stays Config.QPS.
	ArrMMPP
	// ArrDiurnal is an open-loop non-homogeneous Poisson stream whose
	// rate follows a sinusoidal day shape around Config.QPS,
	// implemented by thinning against the peak rate.
	ArrDiurnal
	// ArrClosed is a closed-loop population of Users clients: each
	// thinks for ~ThinkMs, issues one request, and only thinks again
	// once that request completes or fails. Config.QPS is ignored;
	// offered load emerges from the population.
	ArrClosed
)

// String names the process for reports and JSON artifacts.
func (p ArrivalProcess) String() string {
	switch p {
	case ArrMMPP:
		return "mmpp"
	case ArrDiurnal:
		return "diurnal"
	case ArrClosed:
		return "closed"
	default:
		return "poisson"
	}
}

// ParseArrivalProcess maps a flag string to an ArrivalProcess; unknown
// values fall back to Poisson.
func ParseArrivalProcess(s string) ArrivalProcess {
	switch s {
	case "mmpp":
		return ArrMMPP
	case "diurnal":
		return ArrDiurnal
	case "closed":
		return ArrClosed
	default:
		return ArrPoisson
	}
}

// Defaults applied by withDefaults to unset (zero-valued) shape
// parameters.
const (
	DefaultBurstMul    = 4.0
	DefaultBurstFrac   = 0.1
	DefaultMeanBurstMs = 200.0
	DefaultDiurnalAmp  = 0.5
	DefaultThinkMs     = 100.0
)

// FlatDiurnal requests a zero-amplitude (flat) diurnal shape. The
// zero value of DiurnalAmp means "unset" and defaults to
// DefaultDiurnalAmp, so an explicit flat shape needs this sentinel
// (any negative amplitude behaves the same).
const FlatDiurnal = -1.0

// ArrivalConfig shapes the arrival process. The zero value is the
// plain Poisson stream.
type ArrivalConfig struct {
	Process ArrivalProcess
	// MMPP: BurstMul multiplies the calm rate while in the burst state
	// (unset → DefaultBurstMul; an explicit 1 keeps the degenerate
	// constant-rate MMPP); BurstFrac is the long-run fraction of time
	// spent bursting (default 0.1); MeanBurstMs is the mean
	// burst-state dwell time (default 200 ms). Calm/burst rates are
	// solved so the long-run mean rate equals Config.QPS.
	BurstMul    float64
	BurstFrac   float64
	MeanBurstMs float64
	// Diurnal: rate(t) = QPS * (1 + Amp*sin(2π t/PeriodMs)), Amp in
	// [0,1]. Unset (0) → DefaultDiurnalAmp; use FlatDiurnal (or any
	// negative value) for an explicitly flat shape. PeriodMs defaults
	// to the arrival horizon so one "day" spans the run.
	DiurnalAmp      float64
	DiurnalPeriodMs float64
	// Closed loop: Users clients with mean think time ThinkMs
	// (exponential; default 100 ms).
	Users   int
	ThinkMs float64
}

// withDefaults fills unset shape parameters; horizonMs is the arrival
// window, the default diurnal period. Explicit degenerate values are
// preserved: BurstMul 0<x≤1 (including exactly 1) stays as given, and
// a negative DiurnalAmp means an explicitly flat shape (see
// FlatDiurnal); only true zero values are treated as unset.
func (a ArrivalConfig) withDefaults(horizonMs float64) ArrivalConfig {
	if a.BurstMul <= 0 {
		a.BurstMul = DefaultBurstMul
	}
	if a.BurstFrac <= 0 || a.BurstFrac >= 1 {
		a.BurstFrac = DefaultBurstFrac
	}
	if a.MeanBurstMs <= 0 {
		a.MeanBurstMs = DefaultMeanBurstMs
	}
	switch {
	case a.DiurnalAmp < 0:
		a.DiurnalAmp = 0
	case a.DiurnalAmp == 0:
		a.DiurnalAmp = DefaultDiurnalAmp
	case a.DiurnalAmp > 1:
		a.DiurnalAmp = 1
	}
	if a.DiurnalPeriodMs <= 0 {
		a.DiurnalPeriodMs = horizonMs
	}
	if a.ThinkMs <= 0 {
		a.ThinkMs = DefaultThinkMs
	}
	return a
}

// startArrivals seeds the engine's arrival machinery. Open-loop
// processes schedule a self-perpetuating ekArrival chain; the closed
// loop staggers each user's first think uniformly over one think time
// to avoid a synthetic thundering herd at t=0.
func (e *engine) startArrivals() {
	a := e.arr
	switch a.Process {
	case ArrClosed:
		for u := 0; u < a.Users; u++ {
			e.sim.AtEvent(e.sim.Rng.Float64()*a.ThinkMs, ekThink, int32(u), 0)
		}
	case ArrMMPP:
		if e.cfg.QPS <= 0 {
			return
		}
		// Solve mean = frac*burst + (1-frac)*calm with burst = mul*calm.
		calm := e.cfg.QPS / (1 - a.BurstFrac + a.BurstFrac*a.BurstMul)
		e.rateCalm = calm
		e.rateBurst = a.BurstMul * calm
		e.rate = e.rateCalm
		e.meanCalmMs = a.MeanBurstMs * (1 - a.BurstFrac) / a.BurstFrac
		e.sim.AtEvent(e.sim.Exp(1000/e.rate), ekArrival, e.arrGen, 0)
		e.sim.AtEvent(e.sim.Exp(e.meanCalmMs), ekFlip, 0, 0)
	case ArrDiurnal:
		if e.cfg.QPS <= 0 {
			return
		}
		e.rateMax = e.cfg.QPS * (1 + a.DiurnalAmp)
		e.rate = e.rateMax
		e.sim.AtEvent(e.sim.Exp(1000/e.rateMax), ekArrival, e.arrGen, 0)
	default:
		if e.cfg.QPS <= 0 {
			return
		}
		e.rate = e.cfg.QPS
		e.sim.AtEvent(e.sim.Exp(1000/e.rate), ekArrival, e.arrGen, 0)
	}
}

// onArrival handles one ekArrival: issue (or thin away) a request and
// schedule the next. gen guards against arrivals resampled across an
// MMPP state flip.
func (e *engine) onArrival(gen int32) {
	if gen != e.arrGen || e.sim.now >= e.endMs {
		return
	}
	switch e.arr.Process {
	case ArrDiurnal:
		// Thinning: draw at the peak rate, accept with rate(t)/peak.
		phase := 2 * math.Pi * e.sim.now / e.arr.DiurnalPeriodMs
		accept := e.cfg.QPS * (1 + e.arr.DiurnalAmp*math.Sin(phase)) / e.rateMax
		if e.sim.Rng.Float64() < accept {
			e.issue(-1)
		}
	default:
		e.issue(-1)
	}
	e.sim.AtEvent(e.sim.Exp(1000/e.rate), ekArrival, e.arrGen, 0)
}

// onFlip toggles the MMPP state. The pending arrival was drawn at the
// old rate; by memorylessness its residual wait can simply be
// resampled at the new rate, which the generation bump implements.
func (e *engine) onFlip() {
	e.mmppBurst = !e.mmppBurst
	var dwell float64
	if e.mmppBurst {
		e.rate = e.rateBurst
		dwell = e.arr.MeanBurstMs
	} else {
		e.rate = e.rateCalm
		dwell = e.meanCalmMs
	}
	e.arrGen++
	if e.sim.now < e.endMs {
		e.sim.AtEvent(e.sim.Exp(1000/e.rate), ekArrival, e.arrGen, 0)
		e.sim.AtEvent(e.sim.Exp(dwell), ekFlip, 0, 0)
	}
}

// onThink issues a closed-loop user's next request once its think time
// expires; past the arrival horizon the user goes idle.
func (e *engine) onThink(user int32) {
	if e.sim.now >= e.endMs {
		return
	}
	e.issue(user)
}

// think schedules a closed-loop user's next think period after its
// previous request resolved.
func (e *engine) think(user int32) {
	if e.sim.now >= e.endMs {
		return
	}
	e.sim.AtEvent(e.sim.Exp(e.arr.ThinkMs), ekThink, user, 0)
}
