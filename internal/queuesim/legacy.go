// The retired hand-coded dispatch for the Figure 22 social-network
// scenario, kept verbatim behind TailConfig.Legacy as the oracle for
// the spec-vs-hand-coded equivalence tests (graph_test.go proves the
// generic executor walking SocialGraph is byte-identical to this
// code at any seed). New scenarios are specs; do not extend this file.
package queuesim

// Stations of the User-path social graph. The SocialGraph spec
// declares its stations in this order, so the compiled station indices
// coincide with these constants.
const (
	siWeb = iota
	siUser
	siMcRouter
	siMemcached
	siStorage
	siCount
)

// Per-request pipeline stages (CPU path; in RPU mode requests leave
// the per-request pipeline after stWeb and travel in batches). These
// coincide with the SocialGraph stage indices.
const (
	stWeb int8 = iota
	stUser1
	stMcRouter
	stMemcached
	stStorage
	stUser2
	stDone
)

// stageStation maps a request stage to the station serving it.
var stageStation = [...]int32{siWeb, siUser, siMcRouter, siMemcached, siStorage, siUser}

// Batch pipeline stages (RPU mode), coinciding with the SocialGraph
// batch-stage indices.
const (
	bsUser1 int8 = iota
	bsMcRouter
	bsMemcached
	bsStorage   // miss sub-batch storage round trip
	bsUser2     // phase-2 service
	bsUser2Hold // no-split: storage wait held on-core + phase 2
	bsDone
)

// batchStation maps a batch stage to the station serving it.
var batchStation = [...]int32{siUser, siMcRouter, siMemcached, siStorage, siUser, siUser}

// enterL lands a request on a stage (or completes it at stDone).
func (e *engine) enterL(idx int32, stage int8) {
	r := &e.reqs[idx]
	if r.flags&rfDead != 0 {
		e.free(idx)
		return
	}
	if stage == stDone {
		e.complete(idx)
		return
	}
	r.stage = stage
	r.enq = e.sim.now
	e.submitReq(&e.sts[stageStation[stage]], idx)
}

func (e *engine) serveReqL(st *estation, idx int32) {
	r := &e.reqs[idx]
	d := e.demands[r.stage]
	if r.stage != stStorage {
		d = e.sim.Jitter(d) * e.latMul
	}
	e.sim.AtEvent(d, ekSvcDone, idx, st.idx)
}

// advanceL moves a request past its just-completed stage, mirroring
// the closure graph in Run (hops match sim.At(NetHop, …) placements).
func (e *engine) advanceL(idx int32) {
	r := &e.reqs[idx]
	switch r.stage {
	case stWeb:
		if e.cfg.RPU {
			e.joinBatch(idx)
		} else {
			e.hop(idx, stUser1)
		}
	case stUser1:
		e.hop(idx, stMcRouter)
	case stMcRouter:
		e.enterL(idx, stMemcached)
	case stMemcached:
		if r.flags&rfHit != 0 {
			e.hop(idx, stUser2)
		} else {
			e.enterL(idx, stStorage)
		}
	case stStorage:
		e.hop(idx, stUser2)
	case stUser2:
		e.hop(idx, stDone)
	}
}

func (e *engine) hop(idx int32, stage int8) {
	e.sim.AtEvent(e.cfg.NetHop, ekNet, idx, int32(stage))
}

func (e *engine) bhop(bi int32, stage int8) {
	e.sim.AtEvent(e.cfg.NetHop, ekBatchNet, bi, int32(stage))
}

func (e *engine) onBatchNetL(bi, stage int32) {
	if int8(stage) == bsDone {
		e.completeBatch(bi)
		return
	}
	b := &e.batches[bi]
	b.stage = int8(stage)
	b.enq = e.sim.now
	e.submitBatch(&e.sts[batchStation[stage]], bi)
}

func (e *engine) serveBatchL(st *estation, bi int32) {
	b := &e.batches[bi]
	var d float64
	switch b.stage {
	case bsUser1:
		d = e.sim.Jitter(e.cfg.UserPhase1) * e.latMul
	case bsMcRouter:
		d = e.sim.Jitter(e.cfg.McRouterDemand) * e.latMul
	case bsMemcached:
		d = e.sim.Jitter(e.cfg.MemcachedDemand) * e.latMul
	case bsStorage:
		d = e.cfg.StorageLatency
	case bsUser2:
		d = e.sim.Jitter(e.cfg.UserPhase2) * e.latMul
	case bsUser2Hold:
		// Reconvergence wait held on-core: the batch occupies its
		// server for the storage round trip plus phase 2.
		d = e.cfg.StorageLatency + e.sim.Jitter(e.cfg.UserPhase2)*e.latMul
	}
	e.sim.AtEvent(d, ekBatchDone, bi, st.idx)
}

// onBatchDoneL routes a batch past its just-completed stage.
func (e *engine) onBatchDoneL(bi int32) {
	b := &e.batches[bi]
	switch b.stage {
	case bsUser1:
		e.bhop(bi, bsMcRouter)
	case bsMcRouter:
		// Straight into memcached, no hop (matches Run).
		b.stage = bsMemcached
		b.enq = e.sim.now
		e.submitBatch(&e.sts[siMemcached], bi)
	case bsMemcached:
		e.divergeL(bi)
	case bsStorage:
		e.bhop(bi, bsUser2)
	case bsUser2, bsUser2Hold:
		e.bhop(bi, bsDone)
	}
}

// divergeL handles the memcached hit/miss divergence: collect
// cancelled members, then split (§III-B5), hold the whole batch for
// the storage round trip, or proceed straight to phase 2.
func (e *engine) divergeL(bi int32) {
	b := &e.batches[bi]
	live := b.members[:0]
	misses := 0
	for _, idx := range b.members {
		r := &e.reqs[idx]
		if r.flags&rfDead != 0 {
			e.free(idx)
			continue
		}
		live = append(live, idx)
		if r.flags&rfHit == 0 {
			misses++
		}
	}
	b.members = live
	if len(live) == 0 {
		e.freeBatch(bi)
		return
	}
	if misses == 0 {
		e.bhop(bi, bsUser2)
		return
	}
	if !e.cfg.Split {
		e.bhop(bi, bsUser2Hold)
		return
	}
	e.m.SplitBatches++
	if misses == len(live) {
		// All-miss batch: it is its own miss sub-batch.
		b.stage = bsStorage
		b.enq = e.sim.now
		e.submitBatch(&e.sts[siStorage], bi)
		return
	}
	mi := e.allocBatch()
	b = &e.batches[bi] // allocBatch may grow the arena
	mb := &e.batches[mi]
	hits := b.members[:0]
	for _, idx := range b.members {
		if e.reqs[idx].flags&rfHit == 0 {
			mb.members = append(mb.members, idx)
		} else {
			hits = append(hits, idx)
		}
	}
	b.members = hits
	e.bhop(bi, bsUser2)
	mb.stage = bsStorage
	mb.enq = e.sim.now
	e.submitBatch(&e.sts[siStorage], mi)
}
