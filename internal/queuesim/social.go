package queuesim

import "simr/internal/stats"

// Config parameterises the Figure 22 end-to-end scenario: the User
// microservice path WebServer → User → McRouter → Memcached → Storage
// on three 40-core server machines (CPU) or their equal-power RPU
// replacements (5x throughput, 1.2x service latency, batch width 32).
// All times are in milliseconds.
type Config struct {
	// QPS is the offered Poisson load (requests per second).
	QPS float64
	// Seconds is the simulated wall time.
	Seconds float64
	// Warmup discards requests arriving before this time (seconds).
	Warmup float64
	// RPU selects the RPU-based system; Split additionally enables
	// batch splitting on the memcached-miss divergence.
	RPU   bool
	Split bool
	// BatchSize and BatchTimeout control RPU batch formation.
	BatchSize    int
	BatchTimeout float64
	// BatchAtWebTier forms batches before web/TCP processing. The
	// default (false) batches at the entry of the logic tier instead,
	// the paper's §VI-H mitigation: acknowledgements return to clients
	// immediately so batching never looks like congestion to TCP.
	BatchAtWebTier bool
	// HitRate is the memcached hit probability (paper: 0.9).
	HitRate float64
	// Demands: per-request service occupancy per tier. WebDemand and
	// the User phases are calibrated so the CPU system saturates near
	// the paper's 15 kQPS; the 100/20/25/1000/60 µs figures from §V-B
	// are the no-load latency floors of the respective hops.
	WebDemand       float64
	UserPhase1      float64
	UserPhase2      float64
	McRouterDemand  float64
	MemcachedDemand float64
	StorageLatency  float64
	NetHop          float64
	// Cores per machine (3 machines: web, user, cache tier).
	Cores int
	// Drain is the horizon (seconds past the end of arrivals) over
	// which in-flight requests may still complete and be counted.
	// Completions are attributed by *arrival* time inside the measured
	// window, so the drain never adds load — it only un-censors the
	// slowest requests. Zero keeps a minimal 0.2 s drain.
	Drain float64
	// Seed for the random streams.
	Seed int64
	// Monitor optionally observes the run (station time series, hop
	// histograms, trace events); nil records nothing. Observation never
	// changes the simulation results.
	Monitor *Monitor
}

// DefaultConfig returns the paper's §V-B setup. The per-request User
// demand (2.4 ms split over two phases) is the calibration constant
// that reproduces uqsim's ≈15 kQPS CPU saturation on 3×40 cores; the
// microsecond-scale figures from the paper appear as the fixed network
// and cache-tier latencies.
func DefaultConfig() Config {
	return Config{
		QPS:             5000,
		Seconds:         4,
		Warmup:          1,
		BatchSize:       32,
		BatchTimeout:    1.0, // 1 ms formation timeout
		HitRate:         0.9,
		WebDemand:       0.25,
		UserPhase1:      1.5,
		UserPhase2:      0.9,
		McRouterDemand:  0.02,
		MemcachedDemand: 0.025,
		StorageLatency:  1.0,
		NetHop:          0.06,
		Cores:           40,
		Drain:           2,
		Seed:            1,
	}
}

// Metrics is the outcome of one load point.
type Metrics struct {
	Offered   float64
	Completed int
	// Measured is the length of the measured arrival window in seconds
	// (Seconds - Warmup); the denominator for offered-vs-completed
	// comparisons.
	Measured float64
	// Latency samples end-to-end request latency in milliseconds.
	Latency *stats.Sample
	// UserUtil is the bottleneck (User tier) utilisation.
	UserUtil float64
	// Batches and AvgBatchFill describe RPU batch formation.
	Batches      int
	AvgBatchFill float64
	// SplitBatches counts batches that split on the miss divergence.
	SplitBatches int
}

// Throughput returns completed requests per second of measured time.
func (m *Metrics) Throughput(measured float64) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(m.Completed) / measured
}

// Saturated reports whether the system failed to keep up with offered
// load (tail blow-up heuristic: p99 over 10x the unloaded latency, or
// completion under 95 % of offered). The completion criterion catches
// the collapsed regime a fast surviving trickle would otherwise hide:
// a run can report a healthy p99 over the handful of requests that got
// through while dropping the vast majority on the floor.
func (m *Metrics) Saturated(baselineP99 float64) bool {
	if m.Latency.Len() == 0 {
		return true
	}
	if m.Offered > 0 && m.Measured > 0 &&
		float64(m.Completed) < 0.95*m.Offered*m.Measured {
		return true
	}
	return m.Latency.Percentile(99) > 10*baselineP99
}

type request struct {
	arrive  float64
	hit     bool
	webDone bool
}

// Run simulates one load point and returns its metrics.
func Run(cfg Config) *Metrics {
	sim := NewSim(cfg.Seed)
	sim.Mon = cfg.Monitor
	m := &Metrics{Offered: cfg.QPS, Latency: stats.NewSample(int(cfg.QPS * cfg.Seconds))}

	// Capacity: the RPU system consumes the same power and delivers 5x
	// the per-tier throughput at 1.2x service latency (paper §V-B). At
	// the User tier this arrives via 32-wide batches; the thin tiers
	// are modelled as 5x-capacity stations.
	lat := 1.0
	capMul := 1
	if cfg.RPU {
		lat = 1.2
		capMul = 5
	}
	web := NewStation(sim, "web", cfg.Cores*capMul)
	// One machine of RPU cores runs batches: capacity chosen so that
	// batch throughput is 5x the CPU tier's.
	userServers := cfg.Cores
	if cfg.RPU {
		// cores × 5x × 1.2 (occupancy per batch) / 32 (requests/batch)
		userServers = int(float64(cfg.Cores)*5*1.2/float64(cfg.BatchSize) + 0.999)
	}
	user := NewStation(sim, "user", userServers)
	mcrouter := NewStation(sim, "mcrouter", cfg.Cores/2*capMul)
	memcached := NewStation(sim, "memcached", cfg.Cores/2*capMul)
	storage := NewStation(sim, "storage", Inf)

	warmupMs := cfg.Warmup * 1000
	endMs := cfg.Seconds * 1000
	m.Measured = cfg.Seconds - cfg.Warmup
	if m.Measured < 0 {
		m.Measured = 0
	}

	// Completions are attributed by arrival inside the measured window,
	// regardless of when they finish: requests still in flight at the
	// arrival horizon drain to completion (bounded by cfg.Drain) instead
	// of being censored, which near saturation used to bias the tail low
	// by silently excluding exactly the slowest requests.
	finish := func(r *request) {
		if r.arrive >= warmupMs && r.arrive <= endMs {
			m.Completed++
			m.Latency.Add(sim.Now() - r.arrive)
		}
	}

	// --- CPU per-request path ---
	var cpuPath func(r *request)
	cpuPath = func(r *request) {
		web.Submit(sim.Jitter(cfg.WebDemand), func() {
			sim.At(cfg.NetHop, func() {
				user.Submit(sim.Jitter(cfg.UserPhase1), func() {
					sim.At(cfg.NetHop, func() {
						mcrouter.Submit(sim.Jitter(cfg.McRouterDemand), func() {
							memcached.Submit(sim.Jitter(cfg.MemcachedDemand), func() {
								after := func() {
									sim.At(cfg.NetHop, func() {
										user.Submit(sim.Jitter(cfg.UserPhase2), func() {
											sim.At(cfg.NetHop, func() { finish(r) })
										})
									})
								}
								if r.hit {
									after()
								} else {
									storage.Submit(cfg.StorageLatency, after)
								}
							})
						})
					})
				})
			})
		})
	}

	// --- RPU batched path ---
	var launch func(batch []*request)
	launch = func(b []*request) {
		m.Batches++
		m.AvgBatchFill += float64(len(b))
		enterLogic := func(next func()) {
			if cfg.BatchAtWebTier {
				// The batch itself crosses the web tier (§VI-H warns
				// this interferes with TCP but it is cheaper).
				web.Submit(sim.Jitter(cfg.WebDemand)*lat, func() {
					sim.At(cfg.NetHop, next)
				})
				return
			}
			// Logic-tier batching: web processing already happened per
			// request; the batch enters the User tier directly.
			sim.At(cfg.NetHop, next)
		}
		enterLogic(func() {
			{
				user.Submit(sim.Jitter(cfg.UserPhase1)*lat, func() {
					sim.At(cfg.NetHop, func() {
						// Batched cache-tier RPC for the whole batch.
						mcrouter.Submit(sim.Jitter(cfg.McRouterDemand)*lat, func() {
							memcached.Submit(sim.Jitter(cfg.MemcachedDemand)*lat, func() {
								var hits, misses []*request
								for _, r := range b {
									if r.hit {
										hits = append(hits, r)
									} else {
										misses = append(misses, r)
									}
								}
								phase2 := func(group []*request) {
									if len(group) == 0 {
										return
									}
									sim.At(cfg.NetHop, func() {
										user.Submit(sim.Jitter(cfg.UserPhase2)*lat, func() {
											sim.At(cfg.NetHop, func() {
												for _, r := range group {
													finish(r)
												}
											})
										})
									})
								}
								if len(misses) == 0 {
									phase2(b)
									return
								}
								if cfg.Split {
									// §III-B5: split the batch; the hit
									// sub-batch completes immediately and
									// the blocked sub-batch is context-
									// switched out, freeing the core
									// during the storage round trip.
									m.SplitBatches++
									phase2(hits)
									storage.Submit(cfg.StorageLatency, func() {
										phase2(misses)
									})
								} else {
									// Without splitting, the whole batch
									// waits on-core at the reconvergence
									// point for the storage round trip
									// (context switching is batch-
									// granular, and the batch cannot be
									// descheduled mid-divergence).
									sim.At(cfg.NetHop, func() {
										user.Submit(cfg.StorageLatency+sim.Jitter(cfg.UserPhase2)*lat, func() {
											sim.At(cfg.NetHop, func() {
												for _, r := range b {
													finish(r)
												}
											})
										})
									})
								}
							})
						})
					})
				})
			}
		})
	}

	// The formation timeout is per batch, armed when the batch's first
	// request joins; a size-triggered flush invalidates the pending
	// timer so it can never flush the *next* batch early.
	form := &batcher[*request]{sim: sim, size: cfg.BatchSize, timeout: cfg.BatchTimeout, launch: launch}

	var rpuEnqueue func(r *request)
	rpuEnqueue = func(r *request) {
		if !cfg.BatchAtWebTier && !r.webDone {
			// §VI-H: each request is acknowledged through the web tier
			// individually before joining a batch at the logic tier.
			r.webDone = true
			web.Submit(sim.Jitter(cfg.WebDemand)*lat, func() {
				rpuEnqueue(r)
			})
			return
		}
		form.add(r)
	}

	// Arrival process. A non-positive QPS offers no load: without the
	// guard the inter-arrival time degenerates (Inf for 0, negative —
	// an infinite zero-delay arrival loop — below it).
	if cfg.QPS > 0 {
		interArrival := 1000 / cfg.QPS // ms
		var arrive func()
		arrive = func() {
			if sim.Now() >= endMs {
				return
			}
			r := &request{arrive: sim.Now(), hit: sim.Rng.Float64() < cfg.HitRate}
			if cfg.RPU {
				rpuEnqueue(r)
			} else {
				cpuPath(r)
			}
			sim.At(sim.Exp(interArrival), arrive)
		}
		sim.At(sim.Exp(interArrival), arrive)
	}

	// Utilisation is reported over the arrival window only; the drain
	// that follows collects stragglers without diluting the denominator.
	sim.Run(endMs)
	m.UserUtil = user.Utilization()
	sim.Run(endMs + drainMs(cfg.Drain))
	if m.Batches > 0 {
		m.AvgBatchFill /= float64(m.Batches)
	}
	return m
}

// drainMs converts the configured drain horizon (seconds) to
// milliseconds, defaulting to a minimal 0.2 s when unset.
func drainMs(drain float64) float64 {
	if drain > 0 {
		return drain * 1000
	}
	return 200
}

// Sweep runs a QPS sweep and returns metrics per load point.
func Sweep(base Config, qps []float64) []*Metrics {
	out := make([]*Metrics, len(qps))
	for i, q := range qps {
		cfg := base
		cfg.QPS = q
		out[i] = Run(cfg)
	}
	return out
}
