// The calendar-queue scheduler (Brown, CACM 1988): the pending-event
// set is hashed into power-of-two "day" buckets by floor(at/width),
// each bucket kept sorted by (at, seq), and the dequeue scan walks
// bucket windows in simulated-time order. With a width tuned so a
// bucket holds a handful of events, push and pop are O(1) amortized —
// versus ~log2(n) sift comparisons per heap operation at data-center
// populations. Ordering is bit-identical to the binary heap: the same
// (at, seq) total order decides every dequeue, only the container
// differs. Buckets are reused in place (a drained bucket resets its
// slice without freeing it), so steady state allocates nothing; only
// the amortized doubling/halving resizes allocate, exactly like the
// heap's own growth.
package queuesim

// calEvent is the calendar queue's compact event: 32 bytes, no closure
// pointer. evFunc closures are parked in the Sim's sidecar arena and
// referenced through the a payload, so the hot typed-event path moves
// less memory per touch than the heap's 40-byte boxed form.
type calEvent struct {
	at   float64
	seq  uint64
	a, b int32
	kind uint32
}

// calMinBuckets is the smallest bucket array; resize doubles/halves
// between this floor and whatever the live population demands.
const calMinBuckets = 64

// calMinWidth floors the bucket width (simulated ms) so degenerate
// same-timestamp floods cannot drive the day numbers out of int64
// range.
const calMinWidth = 1e-6

// calDefaultWidth seeds the width before the first resize calibrates
// it from the observed event spacing.
const calDefaultWidth = 0.05

// calGrowAt is the mean bucket occupancy that triggers a doubling;
// shrink fires at a quarter of it, a factor-four hysteresis band. The
// value favors fewer, denser buckets: a sorted insertion among a
// handful of 32-byte events stays inside one or two cache lines,
// while a sparser array pays an extra miss per touch (measured on the
// 7 MQPS tail point).
const calGrowAt = 6

// calWidthGapMul scales the mean inter-event gap into the bucket
// width at recalibration.
const calWidthGapMul = 4.0

// eventLess is the scheduler-wide dispatch order: time, then arming
// sequence — the FIFO tie-break all schedulers share.
func eventLess(a, b *calEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// calBucket is one day bucket: ev[head:] is the live, (at, seq)-sorted
// region; the prefix before head has been dequeued and is compacted
// away lazily.
type calBucket struct {
	ev   []calEvent
	head int
}

// calQueue is the calendar queue. The scan cursor scanB is an absolute
// day number (not a bucket index), so distinguishing "this year" from
// "a later year" in the same bucket is a single comparison against the
// head event's own day.
type calQueue struct {
	buckets []calBucket
	mask    int
	width   float64
	inv     float64 // 1/width: day() multiplies instead of dividing
	count   int
	scanB   int64 // absolute day number of the scan cursor

	peeked  bool
	peekB   int // bucket index holding the cached minimum
	peekAt  float64
	peekSeq uint64

	// Stats reported under the queuesim.<label>.sched scope.
	resizes     uint64
	directScans uint64
	bucketHWM   int
}

func (q *calQueue) init() {
	q.buckets = make([]calBucket, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.width = calDefaultWidth
	q.inv = 1 / calDefaultWidth
}

// day maps an event time onto its absolute bucket number with the one
// expression push and peek must share: mixed arithmetic here would let
// an event straddle a window boundary and dispatch out of order.
func (q *calQueue) day(at float64) int64 {
	return int64(at * q.inv)
}

func (q *calQueue) push(e calEvent) {
	if q.buckets == nil {
		q.init()
	}
	q.insert(e)
	if q.count > calGrowAt*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// insert places e without triggering a resize (resize itself reinserts
// through here).
func (q *calQueue) insert(e calEvent) {
	b := q.day(e.at)
	bk := &q.buckets[int(b)&q.mask]
	ev := append(bk.ev, e)
	i := len(ev) - 1
	for i > bk.head && eventLess(&e, &ev[i-1]) {
		ev[i] = ev[i-1]
		i--
	}
	ev[i] = e
	bk.ev = ev
	if n := len(ev) - bk.head; n > q.bucketHWM {
		q.bucketHWM = n
	}
	if q.count == 0 || b < q.scanB {
		q.scanB = b
	}
	if q.peeked && (e.at < q.peekAt || (e.at == q.peekAt && e.seq < q.peekSeq)) {
		q.peeked = false
	}
	q.count++
}

// peek returns the (at, seq) of the next event without removing it.
// The scan resumes from the cursor's day window; a full rotation
// without a hit (every pending event lies years ahead) falls back to a
// direct minimum over bucket heads, which are each bucket's own
// minimum because buckets are sorted.
func (q *calQueue) peek() (at float64, seq uint64, ok bool) {
	if q.count == 0 {
		return 0, 0, false
	}
	if q.peeked {
		return q.peekAt, q.peekSeq, true
	}
	nb := len(q.buckets)
	for step := 0; step < nb; step++ {
		bk := &q.buckets[int(q.scanB)&q.mask]
		if bk.head < len(bk.ev) {
			e := &bk.ev[bk.head]
			if q.day(e.at) == q.scanB {
				q.cache(int(q.scanB)&q.mask, e)
				return e.at, e.seq, true
			}
		}
		q.scanB++
	}
	q.directScans++
	best := -1
	for i := range q.buckets {
		bk := &q.buckets[i]
		if bk.head >= len(bk.ev) {
			continue
		}
		if best < 0 || eventLess(&bk.ev[bk.head], &q.buckets[best].ev[q.buckets[best].head]) {
			best = i
		}
	}
	e := &q.buckets[best].ev[q.buckets[best].head]
	q.scanB = q.day(e.at)
	q.cache(best, e)
	return e.at, e.seq, true
}

func (q *calQueue) cache(bucket int, e *calEvent) {
	q.peeked = true
	q.peekB = bucket
	q.peekAt = e.at
	q.peekSeq = e.seq
}

// pop removes and returns the minimum event.
func (q *calQueue) pop() calEvent {
	if !q.peeked {
		q.peek()
	}
	bk := &q.buckets[q.peekB]
	e := bk.ev[bk.head]
	bk.head++
	q.peeked = false
	q.count--
	if bk.head == len(bk.ev) {
		bk.ev = bk.ev[:0]
		bk.head = 0
	} else if bk.head > 32 && 2*bk.head >= len(bk.ev) {
		// A bucket that keeps events years ahead never fully drains;
		// compact its dequeued prefix so the slice cannot creep.
		n := copy(bk.ev, bk.ev[bk.head:])
		bk.ev = bk.ev[:n]
		bk.head = 0
	}
	if 4*q.count < calGrowAt*len(q.buckets) && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return e
}

// resize rebuilds the bucket array at the new size and recalibrates
// the width to a small multiple of the mean inter-event gap, so a day
// window again holds a handful of events. Triggered on a factor-four
// hysteresis band around the calGrowAt target occupancy, the O(count)
// rebuild amortizes to O(1) per operation.
func (q *calQueue) resize(n int) {
	q.resizes++
	lo, hi := 0.0, 0.0
	first := true
	for i := range q.buckets {
		bk := &q.buckets[i]
		for j := bk.head; j < len(bk.ev); j++ {
			at := bk.ev[j].at
			if first {
				lo, hi, first = at, at, false
			} else if at < lo {
				lo = at
			} else if at > hi {
				hi = at
			}
		}
	}
	if q.count > 1 && hi > lo {
		w := (hi - lo) / float64(q.count) * calWidthGapMul
		if w < calMinWidth {
			w = calMinWidth
		}
		q.width = w
		q.inv = 1 / w
	}
	old := q.buckets
	q.buckets = make([]calBucket, n)
	q.mask = n - 1
	q.count = 0
	q.peeked = false
	for i := range old {
		bk := &old[i]
		for j := bk.head; j < len(bk.ev); j++ {
			q.insert(bk.ev[j])
		}
	}
}
