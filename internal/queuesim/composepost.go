package queuesim

import "simr/internal/stats"

// ComposePostConfig parameterises the compose-post path of the
// social-network graph (paper Figure 3): the request fans out from the
// Post orchestrator to UniqueID, URL-Shorten, Text and UserTag in
// parallel, joins, persists through Post storage and finally writes
// through the cache tier. Times in milliseconds.
type ComposePostConfig struct {
	QPS     float64
	Seconds float64
	Warmup  float64
	RPU     bool
	// BatchSize/BatchTimeout for the RPU orchestrator tier.
	BatchSize    int
	BatchTimeout float64
	// Per-tier demands.
	WebDemand    float64
	OrchDemand   float64 // post orchestrator (join point)
	UniqueID     float64
	URLShorten   float64
	TextDemand   float64
	UserTag      float64
	StorageWrite float64
	CacheWrite   float64
	NetHop       float64
	Cores        int
	// Drain bounds how long (seconds past the arrival horizon)
	// in-flight requests may still complete and be counted; see
	// Config.Drain.
	Drain float64
	Seed  int64
	// Monitor optionally observes the run; nil records nothing.
	Monitor *Monitor
}

// DefaultComposePost returns a calibrated compose-post scenario whose
// CPU system saturates in the same regime as the Figure 22 study.
func DefaultComposePost() ComposePostConfig {
	return ComposePostConfig{
		QPS:          4000,
		Seconds:      4,
		Warmup:       1,
		BatchSize:    32,
		BatchTimeout: 1.0,
		WebDemand:    0.25,
		OrchDemand:   1.2,
		UniqueID:     0.15,
		URLShorten:   0.25,
		TextDemand:   0.8,
		UserTag:      0.4,
		StorageWrite: 1.0,
		CacheWrite:   0.05,
		NetHop:       0.06,
		Cores:        40,
		Drain:        2,
		Seed:         1,
	}
}

// RunComposePost simulates the compose-post fan-out/join path and
// returns latency metrics. In RPU mode the orchestrator tier batches
// requests; the four nanoservice RPCs are issued per batch and the
// batch joins when its slowest leg returns (the fan-out analogue of
// reconvergence waiting — the motivation for batching the nanoservices
// themselves, which the 5x-capacity tiers model).
func RunComposePost(cfg ComposePostConfig) *Metrics {
	sim := NewSim(cfg.Seed)
	sim.Mon = cfg.Monitor
	m := &Metrics{Offered: cfg.QPS, Latency: stats.NewSample(int(cfg.QPS * cfg.Seconds))}

	lat := 1.0
	capMul := 1
	if cfg.RPU {
		lat = 1.2
		capMul = 5
	}
	web := NewStation(sim, "web", cfg.Cores*capMul)
	orchServers := cfg.Cores
	if cfg.RPU {
		orchServers = int(float64(cfg.Cores)*5*1.2/float64(cfg.BatchSize) + 0.999)
	}
	orch := NewStation(sim, "post-orch", orchServers)
	uniq := NewStation(sim, "uniqueid", cfg.Cores/4*capMul)
	urls := NewStation(sim, "urlshort", cfg.Cores/4*capMul)
	text := NewStation(sim, "post-text", cfg.Cores/2*capMul)
	tags := NewStation(sim, "usertag", cfg.Cores/4*capMul)
	store := NewStation(sim, "storage", Inf)
	cache := NewStation(sim, "memcached", cfg.Cores/4*capMul)

	warmupMs := cfg.Warmup * 1000
	endMs := cfg.Seconds * 1000
	m.Measured = cfg.Seconds - cfg.Warmup
	if m.Measured < 0 {
		m.Measured = 0
	}

	// Completions count by arrival inside the measured window; the
	// post-horizon drain un-censors the slowest in-flight requests (see
	// the matching fix in Run).
	finish := func(arrive float64) {
		if arrive >= warmupMs && arrive <= endMs {
			m.Completed++
			m.Latency.Add(sim.Now() - arrive)
		}
	}

	// fanout runs the four nanoservice legs and calls join when the
	// slowest returns.
	fanout := func(join func()) {
		remaining := 4
		leg := func(st *Station, demand float64) {
			sim.At(cfg.NetHop, func() {
				st.Submit(sim.Jitter(demand)*lat, func() {
					sim.At(cfg.NetHop, func() {
						remaining--
						if remaining == 0 {
							join()
						}
					})
				})
			})
		}
		leg(uniq, cfg.UniqueID)
		leg(urls, cfg.URLShorten)
		leg(text, cfg.TextDemand)
		leg(tags, cfg.UserTag)
	}

	persist := func(done func()) {
		store.Submit(cfg.StorageWrite, func() {
			cache.Submit(sim.Jitter(cfg.CacheWrite)*lat, done)
		})
	}

	cpuPath := func(arrive float64) {
		web.Submit(sim.Jitter(cfg.WebDemand), func() {
			sim.At(cfg.NetHop, func() {
				orch.Submit(sim.Jitter(cfg.OrchDemand), func() {
					fanout(func() {
						persist(func() { finish(arrive) })
					})
				})
			})
		})
	}

	// RPU orchestrator batching; per-batch formation timer as in Run.
	launch := func(b []float64) {
		m.Batches++
		m.AvgBatchFill += float64(len(b))
		orch.Submit(sim.Jitter(cfg.OrchDemand)*lat, func() {
			fanout(func() {
				persist(func() {
					for _, a := range b {
						finish(a)
					}
				})
			})
		})
	}
	form := &batcher[float64]{sim: sim, size: cfg.BatchSize, timeout: cfg.BatchTimeout, launch: launch}
	rpuPath := func(arrive float64) {
		web.Submit(sim.Jitter(cfg.WebDemand)*lat, func() {
			form.add(arrive)
		})
	}

	if cfg.QPS > 0 {
		interArrival := 1000 / cfg.QPS
		var arrive func()
		arrive = func() {
			if sim.Now() >= endMs {
				return
			}
			a := sim.Now()
			if cfg.RPU {
				rpuPath(a)
			} else {
				cpuPath(a)
			}
			sim.At(sim.Exp(interArrival), arrive)
		}
		sim.At(sim.Exp(interArrival), arrive)
	}
	sim.Run(endMs)
	m.UserUtil = orch.Utilization()
	sim.Run(endMs + drainMs(cfg.Drain))

	if m.Batches > 0 {
		m.AvgBatchFill /= float64(m.Batches)
	}
	return m
}
