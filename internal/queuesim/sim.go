// Package queuesim is a discrete-event microservice-interaction
// simulator in the spirit of uqsim, used for the paper's system-level
// evaluation (Figure 22): Poisson request arrivals flow through the
// social-network path WebServer → User → McRouter → Memcached →
// Storage, with multi-server FIFO stations, network hops, RPU batch
// formation, reconvergence waiting and the §III-B5 batch-splitting
// technique.
package queuesim

import (
	"container/heap"
	"math"
	"math/rand"
)

// event is one scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event loop.
type Sim struct {
	now float64
	pq  eventHeap
	seq uint64
	Rng *rand.Rand
}

// NewSim creates a simulator with the given random seed.
func NewSim(seed int64) *Sim {
	return &Sim{Rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time (milliseconds).
func (s *Sim) Now() float64 { return s.now }

// At schedules fn to run after delay.
func (s *Sim) At(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.pq, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue empties or time exceeds until.
func (s *Sim) Run(until float64) {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(event)
		if e.at > until {
			s.now = until
			return
		}
		s.now = e.at
		e.fn()
	}
}

// Exp draws an exponential sample with the given mean.
func (s *Sim) Exp(mean float64) float64 {
	return s.Rng.ExpFloat64() * mean
}

// Station is a multi-server FIFO service station. Work items occupy one
// server for their service demand and then invoke their completion.
type Station struct {
	sim     *Sim
	Name    string
	Servers int
	busy    int
	queue   []work
	// Busy-time accounting for utilisation reporting.
	busyTime   float64
	lastChange float64
}

type work struct {
	demand float64
	done   func()
}

// NewStation creates a station with c servers.
func NewStation(sim *Sim, name string, c int) *Station {
	return &Station{sim: sim, Name: name, Servers: c}
}

// Submit enqueues a work item requiring demand service time; done runs
// when service completes.
func (st *Station) Submit(demand float64, done func()) {
	st.queue = append(st.queue, work{demand: demand, done: done})
	st.dispatch()
}

func (st *Station) dispatch() {
	for st.busy < st.Servers && len(st.queue) > 0 {
		w := st.queue[0]
		st.queue = st.queue[1:]
		st.account()
		st.busy++
		st.sim.At(w.demand, func() {
			st.account()
			st.busy--
			if w.done != nil {
				w.done()
			}
			st.dispatch()
		})
	}
}

func (st *Station) account() {
	st.busyTime += float64(st.busy) * (st.sim.now - st.lastChange)
	st.lastChange = st.sim.now
}

// Utilization returns average busy servers / servers over the run.
func (st *Station) Utilization() float64 {
	if st.sim.now == 0 || st.Servers == 0 {
		return 0
	}
	return st.busyTime / (st.sim.now * float64(st.Servers))
}

// QueueLen returns the instantaneous queue length.
func (st *Station) QueueLen() int { return len(st.queue) }

// Jitter returns a mildly noisy service demand (uniform ±20 %),
// avoiding the determinism artifacts of fixed service times.
func (s *Sim) Jitter(mean float64) float64 {
	return mean * (0.8 + 0.4*s.Rng.Float64())
}

// Inf is a server count that never queues.
const Inf = math.MaxInt32
