// Package queuesim is a discrete-event microservice-interaction
// simulator in the spirit of uqsim, used for the paper's system-level
// evaluation (Figure 22): request arrivals flow through the
// social-network path WebServer → User → McRouter → Memcached →
// Storage, with multi-server FIFO stations, network hops, RPU batch
// formation, reconvergence waiting and the §III-B5 batch-splitting
// technique. Beyond the hand-coded Figure 22 graphs, the tail-at-scale
// engine (engine.go) runs the same scenario at data-center populations
// (10⁶+ in-flight requests) with burst/diurnal/closed-loop arrivals and
// timeout/retry/hedge policies.
package queuesim

import (
	"fmt"
	"math"
	"math/rand"
)

// event is one scheduled occurrence, stored by value and ordered by
// (at, seq) so same-time events dispatch in FIFO order. The loop is
// non-boxing: nothing passes through interface{} on push or pop. kind
// evFunc carries a closure — the path the hand-coded graphs use; the
// reserved internal kinds route Station completions and batcher timers
// inside the Sim; any other kind goes to the Handle hook with the two
// int32 payload words, which is the allocation-free path the tail
// engine rides (a typed event costs zero heap allocations to schedule
// or dispatch).
type event struct {
	at   float64
	seq  uint64
	fn   func()
	a, b int32
	kind uint8
}

// evFunc is the closure-callback event kind; engine.go defines the
// typed kinds starting at 1. Kinds 0xF0 and up are reserved for the
// Sim's internal dispatch (Station service completions, batcher
// formation timers) and never reach the Handle hook.
const (
	evFunc    uint8 = 0
	evStation uint8 = 0xFE // station a finished serving in-service slot b
	evBatcher uint8 = 0xFD // formation timer for batcher a at generation b
)

// Scheduler selects the pending-event container.
type Scheduler uint8

const (
	// SchedCalendar (the tail engine's default) is the O(1) scheduler:
	// a calendar queue for ordinary events plus a hierarchical timer
	// wheel for cancellable timers (AtTimer), which Cancel physically
	// deschedules.
	SchedCalendar Scheduler = iota
	// SchedHeap is the binary index-min heap — the byte-identity
	// oracle, and the container the legacy closure API (NewSim) keeps.
	// Cancelled timers stay queued and dispatch as stale no-ops.
	SchedHeap
)

// String names the scheduler for flags and JSON artifacts.
func (s Scheduler) String() string {
	if s == SchedHeap {
		return "heap"
	}
	return "calendar"
}

// ParseScheduler maps a flag string to a Scheduler; the empty string
// means the default (calendar).
func ParseScheduler(s string) (Scheduler, error) {
	switch s {
	case "", "calendar":
		return SchedCalendar, nil
	case "heap":
		return SchedHeap, nil
	}
	return SchedCalendar, fmt.Errorf("queuesim: unknown scheduler %q (want heap or calendar)", s)
}

// TimerID identifies a cancellable timer armed with AtTimer. The zero
// value means "no timer armed"; callers keep at most one live copy and
// clear it when the timer fires or is cancelled.
type TimerID int32

// lazyTimer is the heap scheduler's shared handle: a heap cannot
// deschedule from its middle, so Cancel only records the logical
// cancellation and the event later pops as a stale no-op.
const lazyTimer TimerID = -1

// Sim is the event loop.
type Sim struct {
	now   float64
	sched Scheduler
	pq    []event    // SchedHeap container
	cal   calQueue   // SchedCalendar: ordinary events
	tw    timerWheel // SchedCalendar: cancellable timers

	seq     uint64
	nev     uint64
	ncancel uint64
	Rng     *rand.Rand
	// Handle dispatches typed events scheduled with AtEvent/AtTimer.
	// The tail engine installs itself here; nil is fine while only At
	// is used.
	Handle func(kind uint8, a, b int32)
	// Mon optionally observes the run (station time series, per-hop
	// latency histograms, trace events on the simulated clock). Set it
	// before creating stations; nil (the default) records nothing and
	// costs one pointer test per state change.
	Mon *Monitor

	stations []*Station
	batchers []batchFlusher

	// Closure sidecar for the calendar scheduler: evFunc events store an
	// arena index in their a payload instead of carrying the func pointer
	// through the 32-byte calEvent. Typed events (the tail engine's only
	// traffic) never touch it.
	calFns    []func()
	calFnFree []int32
}

// NewSim creates a simulator with the given random seed on the binary
// heap — the container the closure-based Figure 22 graphs have always
// run on. The tail engine picks its scheduler via NewSimSched.
func NewSim(seed int64) *Sim {
	return &Sim{Rng: rand.New(rand.NewSource(seed)), sched: SchedHeap}
}

// NewSimSched creates a simulator on the given scheduler. Event
// ordering — and therefore every simulation output — is bit-identical
// across schedulers; only the container (and whether Cancel physically
// removes a timer) differs.
func NewSimSched(seed int64, sched Scheduler) *Sim {
	return &Sim{Rng: rand.New(rand.NewSource(seed)), sched: sched}
}

// Now returns the current simulation time (milliseconds).
func (s *Sim) Now() float64 { return s.now }

// Events returns the number of events dispatched so far. The count is
// scheduler-dependent under cancellation: the calendar scheduler never
// dispatches a cancelled timer, while the heap oracle pops it as a
// stale no-op and counts it here. Simulation metrics are unchanged
// either way (stale pops touch nothing); consumers wanting a
// scheduler-invariant count subtract their stale dispatches, as
// TailMetrics.Events does.
func (s *Sim) Events() uint64 { return s.nev }

// Pending returns the number of scheduled events not yet dispatched.
// Timers cancelled under the calendar scheduler are descheduled
// immediately and do not count; under the heap oracle a cancelled
// timer remains queued (and counted) until its stale no-op pop.
func (s *Sim) Pending() int {
	if s.sched == SchedCalendar {
		return s.cal.count + s.tw.live
	}
	return len(s.pq)
}

// CancelledTimers returns the number of Cancel calls on live timers —
// the logical cancellation count, identical across schedulers.
func (s *Sim) CancelledTimers() uint64 { return s.ncancel }

func (s *Sim) less(i, j int) bool {
	if s.pq[i].at != s.pq[j].at {
		return s.pq[i].at < s.pq[j].at
	}
	return s.pq[i].seq < s.pq[j].seq
}

// parkFn parks a closure in the calendar sidecar and returns its slot.
func (s *Sim) parkFn(fn func()) int32 {
	if n := len(s.calFnFree); n > 0 {
		i := s.calFnFree[n-1]
		s.calFnFree = s.calFnFree[:n-1]
		s.calFns[i] = fn
		return i
	}
	s.calFns = append(s.calFns, fn)
	return int32(len(s.calFns) - 1)
}

// takeFn retrieves and frees a parked closure.
func (s *Sim) takeFn(i int32) func() {
	fn := s.calFns[i]
	s.calFns[i] = nil // drop the closure reference
	s.calFnFree = append(s.calFnFree, i)
	return fn
}

func (s *Sim) push(e event) {
	if s.sched == SchedCalendar {
		ce := calEvent{at: e.at, seq: e.seq, a: e.a, b: e.b, kind: uint32(e.kind)}
		if e.kind == evFunc {
			ce.a = s.parkFn(e.fn)
		}
		s.cal.push(ce)
		return
	}
	s.pq = append(s.pq, e)
	i := len(s.pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s.pq[i], s.pq[p] = s.pq[p], s.pq[i]
		i = p
	}
}

func (s *Sim) pop() event {
	e := s.pq[0]
	n := len(s.pq) - 1
	s.pq[0] = s.pq[n]
	s.pq[n] = event{} // drop the closure reference
	s.pq = s.pq[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.less(l, m) {
			m = l
		}
		if r < n && s.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		s.pq[i], s.pq[m] = s.pq[m], s.pq[i]
		i = m
	}
	return e
}

// At schedules fn to run after delay.
func (s *Sim) At(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.push(event{at: s.now + delay, seq: s.seq, fn: fn})
}

// AtEvent schedules a typed event for the Handle hook after delay. The
// two payload words identify the target (an arena index plus a stage,
// station or generation, by kind) without boxing or closures.
func (s *Sim) AtEvent(delay float64, kind uint8, a, b int32) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.push(event{at: s.now + delay, seq: s.seq, kind: kind, a: a, b: b})
}

// AtTimer schedules a typed event like AtEvent but returns a handle
// Cancel can deschedule. Under the calendar scheduler the timer lives
// on the hierarchical wheel and Cancel unlinks it in O(1); under the
// heap oracle the handle is the shared lazy sentinel and the event
// still pops (the caller's generation check makes it a no-op). The
// arming sequence number is consumed identically either way, so
// dispatch order is scheduler-invariant.
func (s *Sim) AtTimer(delay float64, kind uint8, a, b int32) TimerID {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	if s.sched == SchedCalendar {
		return TimerID(s.tw.arm(s.now+delay, s.seq, kind, a, b) + 1)
	}
	s.push(event{at: s.now + delay, seq: s.seq, kind: kind, a: a, b: b})
	return lazyTimer
}

// Cancel deschedules a timer armed with AtTimer. The zero TimerID is
// ignored; a non-zero handle must not be reused after Cancel or after
// its timer fired. Cancellation is counted identically on every
// scheduler (see CancelledTimers); only the calendar scheduler
// physically removes the entry.
func (s *Sim) Cancel(id TimerID) {
	if id == 0 {
		return
	}
	s.ncancel++
	if id != lazyTimer {
		s.tw.cancel(int32(id) - 1)
	}
}

// dispatch routes one popped event: closures, the Sim-internal station
// and batcher kinds, then the Handle hook for the engine's typed
// kinds.
func (s *Sim) dispatch(e event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evStation:
		s.stations[e.a].svcDone(e.b)
	case evBatcher:
		s.batchers[e.a].fire(e.b)
	default:
		s.Handle(e.kind, e.a, e.b)
	}
}

// Run processes events until the queue empties or the next event lies
// beyond until. Either way the clock finishes at until, so time-based
// rates (station utilisation, throughput over the horizon) use the
// same denominator regardless of how the run ended. A future event
// that stops the run stays queued for a later Run call.
func (s *Sim) Run(until float64) {
	if s.sched == SchedCalendar {
		s.runCal(until)
		return
	}
	for len(s.pq) > 0 && s.pq[0].at <= until {
		e := s.pop()
		s.now = e.at
		s.nev++
		s.dispatch(e)
	}
	if s.now < until {
		s.now = until
	}
}

// dispatchCal routes one popped calendar/wheel event without widening
// it back into the heap's boxed form: closures come out of the sidecar
// arena, everything else carries its payload inline.
func (s *Sim) dispatchCal(e calEvent) {
	switch uint8(e.kind) {
	case evFunc:
		s.takeFn(e.a)()
	case evStation:
		s.stations[e.a].svcDone(e.b)
	case evBatcher:
		s.batchers[e.a].fire(e.b)
	default:
		s.Handle(uint8(e.kind), e.a, e.b)
	}
}

// runCal is the calendar-mode loop: each step merges the calendar
// queue's head with the timer wheel's, dispatching whichever holds the
// global (at, seq) minimum. While the wheel is empty — the whole run,
// for policy-free workloads — the loop skips the merge entirely and
// drains the calendar alone; otherwise the wheel only expands a slot
// when its window could actually win the merge, so calendar-heavy
// stretches cost it one bitmap probe.
func (s *Sim) runCal(until float64) {
	for {
		cat, cseq, cok := s.cal.peek()
		var e calEvent
		if s.tw.live == 0 && s.tw.dueHead >= len(s.tw.due) {
			if !cok || cat > until {
				break
			}
			e = s.cal.pop()
		} else if wat, wseq, wok := s.tw.peekMin(cat, cok); wok && (!cok || wat < cat || (wat == cat && wseq < cseq)) {
			if wat > until {
				break
			}
			e = s.tw.popDue()
		} else if cok {
			if cat > until {
				break
			}
			e = s.cal.pop()
		} else {
			break
		}
		s.now = e.at
		s.nev++
		s.dispatchCal(e)
	}
	if s.now < until {
		s.now = until
	}
}

// Exp draws an exponential sample with the given mean.
func (s *Sim) Exp(mean float64) float64 {
	return s.Rng.ExpFloat64() * mean
}

// Station is a multi-server FIFO service station. Work items occupy one
// server for their service demand and then invoke their completion.
// Service completions ride the Sim's typed-event path with the work
// item parked in a pooled in-service arena, so dispatching service
// allocates nothing (the caller's done closure is the only allocation,
// made at Submit time by the caller).
type Station struct {
	sim     *Sim
	Name    string
	Servers int
	id      int32
	busy    int
	queue   []work
	inserv  []work // in-service arena, indexed by the event's b payload
	freeW   []int32
	// Busy-time accounting for utilisation reporting.
	busyTime   float64
	lastChange float64
	// probe is the optional observability hook (nil unless sim.Mon was
	// set when the station was created). It only reads station state.
	probe *stationProbe
}

type work struct {
	demand float64
	enq    float64 // submission time, for per-hop sojourn observation
	done   func()
}

// NewStation creates a station with c servers.
func NewStation(sim *Sim, name string, c int) *Station {
	st := &Station{sim: sim, Name: name, Servers: c, id: int32(len(sim.stations))}
	st.probe = sim.Mon.station(name, c)
	sim.stations = append(sim.stations, st)
	return st
}

// Submit enqueues a work item requiring demand service time; done runs
// when service completes.
func (st *Station) Submit(demand float64, done func()) {
	st.queue = append(st.queue, work{demand: demand, enq: st.sim.now, done: done})
	st.dispatch()
	st.probe.sample(st.sim.now, len(st.queue), st.busy)
}

func (st *Station) dispatch() {
	for st.busy < st.Servers && len(st.queue) > 0 {
		w := st.queue[0]
		st.queue = st.queue[1:]
		st.account()
		st.busy++
		var wi int32
		if n := len(st.freeW); n > 0 {
			wi = st.freeW[n-1]
			st.freeW = st.freeW[:n-1]
			st.inserv[wi] = w
		} else {
			st.inserv = append(st.inserv, w)
			wi = int32(len(st.inserv) - 1)
		}
		st.sim.AtEvent(w.demand, evStation, st.id, wi)
	}
}

// svcDone completes in-service slot wi — the typed-event successor of
// the per-item closure this path used to allocate.
func (st *Station) svcDone(wi int32) {
	w := st.inserv[wi]
	st.inserv[wi] = work{} // drop the done closure
	st.freeW = append(st.freeW, wi)
	st.account()
	st.busy--
	st.probe.observe(st.sim.now, st.sim.now-w.enq)
	st.probe.sample(st.sim.now, len(st.queue), st.busy)
	if w.done != nil {
		w.done()
	}
	st.dispatch()
}

func (st *Station) account() {
	st.busyTime += float64(st.busy) * (st.sim.now - st.lastChange)
	st.lastChange = st.sim.now
}

// Utilization returns average busy servers / servers over the run.
// account() only settles busy time on dispatch and completion events,
// so the still-busy tail between the last state change and the current
// clock is added here; combined with Run finishing the clock at its
// horizon, the numerator and denominator always cover the same window.
func (st *Station) Utilization() float64 {
	if st.sim.now == 0 || st.Servers == 0 {
		return 0
	}
	settled := st.busyTime + float64(st.busy)*(st.sim.now-st.lastChange)
	return settled / (st.sim.now * float64(st.Servers))
}

// QueueLen returns the instantaneous queue length.
func (st *Station) QueueLen() int { return len(st.queue) }

// Jitter returns a mildly noisy service demand (uniform ±20 %),
// avoiding the determinism artifacts of fixed service times.
func (s *Sim) Jitter(mean float64) float64 {
	return mean * (0.8 + 0.4*s.Rng.Float64())
}

// Inf is a server count that never queues.
const Inf = math.MaxInt32

// batchFlusher lets the Sim dispatch a generic batcher's formation
// timer through a typed event instead of a boxed closure.
type batchFlusher interface {
	fire(gen int32)
}

// registerBatcher assigns a batcher its typed-event identity on first
// use.
func (s *Sim) registerBatcher(b batchFlusher) int32 {
	s.batchers = append(s.batchers, b)
	return int32(len(s.batchers) - 1)
}

// batcher accumulates values into fixed-size batches with a formation
// timeout measured from each batch's *first* element. A size-triggered
// flush invalidates the pending timer (via the generation check), so a
// stale timer armed for an already-launched batch can never flush its
// successor early — the bug the generation counter exists to prevent.
type batcher[T any] struct {
	sim        *Sim
	size       int
	timeout    float64
	launch     func([]T)
	pending    []T
	gen        int
	id         int32
	registered bool
}

func (b *batcher[T]) add(v T) {
	b.pending = append(b.pending, v)
	if len(b.pending) >= b.size {
		b.flush()
		return
	}
	if len(b.pending) == 1 {
		if !b.registered {
			b.id = b.sim.registerBatcher(b)
			b.registered = true
		}
		b.sim.AtEvent(b.timeout, evBatcher, b.id, int32(b.gen))
	}
}

// fire is the typed-event form of the old timeout closure: flush only
// if no size-triggered flush advanced the generation first.
func (b *batcher[T]) fire(gen int32) {
	if int(gen) == b.gen {
		b.flush()
	}
}

func (b *batcher[T]) flush() {
	b.gen++
	if len(b.pending) == 0 {
		return
	}
	p := b.pending
	b.pending = nil
	b.launch(p)
}
