// Package queuesim is a discrete-event microservice-interaction
// simulator in the spirit of uqsim, used for the paper's system-level
// evaluation (Figure 22): Poisson request arrivals flow through the
// social-network path WebServer → User → McRouter → Memcached →
// Storage, with multi-server FIFO stations, network hops, RPU batch
// formation, reconvergence waiting and the §III-B5 batch-splitting
// technique.
package queuesim

import (
	"container/heap"
	"math"
	"math/rand"
)

// event is one scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event loop.
type Sim struct {
	now float64
	pq  eventHeap
	seq uint64
	Rng *rand.Rand
	// Mon optionally observes the run (station time series, per-hop
	// latency histograms, trace events on the simulated clock). Set it
	// before creating stations; nil (the default) records nothing and
	// costs one pointer test per state change.
	Mon *Monitor
}

// NewSim creates a simulator with the given random seed.
func NewSim(seed int64) *Sim {
	return &Sim{Rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time (milliseconds).
func (s *Sim) Now() float64 { return s.now }

// At schedules fn to run after delay.
func (s *Sim) At(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.pq, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue empties or the next event lies
// beyond until. Either way the clock finishes at until, so time-based
// rates (station utilisation, throughput over the horizon) use the
// same denominator regardless of how the run ended. A future event
// that stops the run stays queued for a later Run call.
func (s *Sim) Run(until float64) {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(event)
		if e.at > until {
			heap.Push(&s.pq, e)
			break
		}
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Exp draws an exponential sample with the given mean.
func (s *Sim) Exp(mean float64) float64 {
	return s.Rng.ExpFloat64() * mean
}

// Station is a multi-server FIFO service station. Work items occupy one
// server for their service demand and then invoke their completion.
type Station struct {
	sim     *Sim
	Name    string
	Servers int
	busy    int
	queue   []work
	// Busy-time accounting for utilisation reporting.
	busyTime   float64
	lastChange float64
	// probe is the optional observability hook (nil unless sim.Mon was
	// set when the station was created). It only reads station state.
	probe *stationProbe
}

type work struct {
	demand float64
	enq    float64 // submission time, for per-hop sojourn observation
	done   func()
}

// NewStation creates a station with c servers.
func NewStation(sim *Sim, name string, c int) *Station {
	st := &Station{sim: sim, Name: name, Servers: c}
	st.probe = sim.Mon.station(st)
	return st
}

// Submit enqueues a work item requiring demand service time; done runs
// when service completes.
func (st *Station) Submit(demand float64, done func()) {
	st.queue = append(st.queue, work{demand: demand, enq: st.sim.now, done: done})
	st.dispatch()
	st.probe.sample()
}

func (st *Station) dispatch() {
	for st.busy < st.Servers && len(st.queue) > 0 {
		// w is declared fresh each iteration, so the At callback below
		// closes over this iteration's item only (audited: no shared
		// loop-variable capture).
		w := st.queue[0]
		st.queue = st.queue[1:]
		st.account()
		st.busy++
		st.sim.At(w.demand, func() {
			st.account()
			st.busy--
			st.probe.observe(st.sim.now - w.enq)
			st.probe.sample()
			if w.done != nil {
				w.done()
			}
			st.dispatch()
		})
	}
}

func (st *Station) account() {
	st.busyTime += float64(st.busy) * (st.sim.now - st.lastChange)
	st.lastChange = st.sim.now
}

// Utilization returns average busy servers / servers over the run.
// account() only settles busy time on dispatch and completion events,
// so the still-busy tail between the last state change and the current
// clock is added here; combined with Run finishing the clock at its
// horizon, the numerator and denominator always cover the same window.
func (st *Station) Utilization() float64 {
	if st.sim.now == 0 || st.Servers == 0 {
		return 0
	}
	settled := st.busyTime + float64(st.busy)*(st.sim.now-st.lastChange)
	return settled / (st.sim.now * float64(st.Servers))
}

// QueueLen returns the instantaneous queue length.
func (st *Station) QueueLen() int { return len(st.queue) }

// Jitter returns a mildly noisy service demand (uniform ±20 %),
// avoiding the determinism artifacts of fixed service times.
func (s *Sim) Jitter(mean float64) float64 {
	return mean * (0.8 + 0.4*s.Rng.Float64())
}

// Inf is a server count that never queues.
const Inf = math.MaxInt32
