// Package queuesim is a discrete-event microservice-interaction
// simulator in the spirit of uqsim, used for the paper's system-level
// evaluation (Figure 22): request arrivals flow through the
// social-network path WebServer → User → McRouter → Memcached →
// Storage, with multi-server FIFO stations, network hops, RPU batch
// formation, reconvergence waiting and the §III-B5 batch-splitting
// technique. Beyond the hand-coded Figure 22 graphs, the tail-at-scale
// engine (engine.go) runs the same scenario at data-center populations
// (10⁶+ in-flight requests) with burst/diurnal/closed-loop arrivals and
// timeout/retry/hedge policies.
package queuesim

import (
	"math"
	"math/rand"
)

// event is one scheduled occurrence, stored by value in a flat binary
// min-heap ordered by (at, seq) so same-time events dispatch in FIFO
// order. The loop is non-boxing: nothing passes through interface{} on
// push or pop. kind evFunc carries a closure — the path the hand-coded
// graphs use; any other kind is routed to the Sim's Handle hook with
// the two int32 payload words, which is the allocation-free path the
// tail engine rides (a typed event costs zero heap allocations to
// schedule or dispatch).
type event struct {
	at   float64
	seq  uint64
	fn   func()
	a, b int32
	kind uint8
}

// evFunc is the closure-callback event kind; engine.go defines the
// typed kinds starting at 1.
const evFunc uint8 = 0

// Sim is the event loop.
type Sim struct {
	now float64
	pq  []event
	seq uint64
	nev uint64
	Rng *rand.Rand
	// Handle dispatches typed events scheduled with AtEvent. The tail
	// engine installs itself here; nil is fine while only At is used.
	Handle func(kind uint8, a, b int32)
	// Mon optionally observes the run (station time series, per-hop
	// latency histograms, trace events on the simulated clock). Set it
	// before creating stations; nil (the default) records nothing and
	// costs one pointer test per state change.
	Mon *Monitor
}

// NewSim creates a simulator with the given random seed.
func NewSim(seed int64) *Sim {
	return &Sim{Rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time (milliseconds).
func (s *Sim) Now() float64 { return s.now }

// Events returns the number of events dispatched so far.
func (s *Sim) Events() uint64 { return s.nev }

// Pending returns the number of scheduled events not yet dispatched.
func (s *Sim) Pending() int { return len(s.pq) }

func (s *Sim) less(i, j int) bool {
	if s.pq[i].at != s.pq[j].at {
		return s.pq[i].at < s.pq[j].at
	}
	return s.pq[i].seq < s.pq[j].seq
}

func (s *Sim) push(e event) {
	s.pq = append(s.pq, e)
	i := len(s.pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s.pq[i], s.pq[p] = s.pq[p], s.pq[i]
		i = p
	}
}

func (s *Sim) pop() event {
	e := s.pq[0]
	n := len(s.pq) - 1
	s.pq[0] = s.pq[n]
	s.pq[n] = event{} // drop the closure reference
	s.pq = s.pq[:n]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.less(l, m) {
			m = l
		}
		if r < n && s.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		s.pq[i], s.pq[m] = s.pq[m], s.pq[i]
		i = m
	}
	return e
}

// At schedules fn to run after delay.
func (s *Sim) At(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.push(event{at: s.now + delay, seq: s.seq, fn: fn})
}

// AtEvent schedules a typed event for the Handle hook after delay. The
// two payload words identify the target (an arena index plus a stage,
// station or generation, by kind) without boxing or closures.
func (s *Sim) AtEvent(delay float64, kind uint8, a, b int32) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.push(event{at: s.now + delay, seq: s.seq, kind: kind, a: a, b: b})
}

// Run processes events until the queue empties or the next event lies
// beyond until. Either way the clock finishes at until, so time-based
// rates (station utilisation, throughput over the horizon) use the
// same denominator regardless of how the run ended. A future event
// that stops the run stays queued for a later Run call.
func (s *Sim) Run(until float64) {
	for len(s.pq) > 0 && s.pq[0].at <= until {
		e := s.pop()
		s.now = e.at
		s.nev++
		if e.kind == evFunc {
			e.fn()
		} else {
			s.Handle(e.kind, e.a, e.b)
		}
	}
	if s.now < until {
		s.now = until
	}
}

// Exp draws an exponential sample with the given mean.
func (s *Sim) Exp(mean float64) float64 {
	return s.Rng.ExpFloat64() * mean
}

// Station is a multi-server FIFO service station. Work items occupy one
// server for their service demand and then invoke their completion.
type Station struct {
	sim     *Sim
	Name    string
	Servers int
	busy    int
	queue   []work
	// Busy-time accounting for utilisation reporting.
	busyTime   float64
	lastChange float64
	// probe is the optional observability hook (nil unless sim.Mon was
	// set when the station was created). It only reads station state.
	probe *stationProbe
}

type work struct {
	demand float64
	enq    float64 // submission time, for per-hop sojourn observation
	done   func()
}

// NewStation creates a station with c servers.
func NewStation(sim *Sim, name string, c int) *Station {
	st := &Station{sim: sim, Name: name, Servers: c}
	st.probe = sim.Mon.station(name, c)
	return st
}

// Submit enqueues a work item requiring demand service time; done runs
// when service completes.
func (st *Station) Submit(demand float64, done func()) {
	st.queue = append(st.queue, work{demand: demand, enq: st.sim.now, done: done})
	st.dispatch()
	st.probe.sample(st.sim.now, len(st.queue), st.busy)
}

func (st *Station) dispatch() {
	for st.busy < st.Servers && len(st.queue) > 0 {
		// w is declared fresh each iteration, so the At callback below
		// closes over this iteration's item only (audited: no shared
		// loop-variable capture).
		w := st.queue[0]
		st.queue = st.queue[1:]
		st.account()
		st.busy++
		st.sim.At(w.demand, func() {
			st.account()
			st.busy--
			st.probe.observe(st.sim.now, st.sim.now-w.enq)
			st.probe.sample(st.sim.now, len(st.queue), st.busy)
			if w.done != nil {
				w.done()
			}
			st.dispatch()
		})
	}
}

func (st *Station) account() {
	st.busyTime += float64(st.busy) * (st.sim.now - st.lastChange)
	st.lastChange = st.sim.now
}

// Utilization returns average busy servers / servers over the run.
// account() only settles busy time on dispatch and completion events,
// so the still-busy tail between the last state change and the current
// clock is added here; combined with Run finishing the clock at its
// horizon, the numerator and denominator always cover the same window.
func (st *Station) Utilization() float64 {
	if st.sim.now == 0 || st.Servers == 0 {
		return 0
	}
	settled := st.busyTime + float64(st.busy)*(st.sim.now-st.lastChange)
	return settled / (st.sim.now * float64(st.Servers))
}

// QueueLen returns the instantaneous queue length.
func (st *Station) QueueLen() int { return len(st.queue) }

// Jitter returns a mildly noisy service demand (uniform ±20 %),
// avoiding the determinism artifacts of fixed service times.
func (s *Sim) Jitter(mean float64) float64 {
	return mean * (0.8 + 0.4*s.Rng.Float64())
}

// Inf is a server count that never queues.
const Inf = math.MaxInt32

// batcher accumulates values into fixed-size batches with a formation
// timeout measured from each batch's *first* element. A size-triggered
// flush invalidates the pending timer (via the generation check), so a
// stale timer armed for an already-launched batch can never flush its
// successor early — the bug the generation counter exists to prevent.
type batcher[T any] struct {
	sim     *Sim
	size    int
	timeout float64
	launch  func([]T)
	pending []T
	gen     int
}

func (b *batcher[T]) add(v T) {
	b.pending = append(b.pending, v)
	if len(b.pending) >= b.size {
		b.flush()
		return
	}
	if len(b.pending) == 1 {
		gen := b.gen
		b.sim.At(b.timeout, func() {
			if gen == b.gen {
				b.flush()
			}
		})
	}
}

func (b *batcher[T]) flush() {
	b.gen++
	if len(b.pending) == 0 {
		return
	}
	p := b.pending
	b.pending = nil
	b.launch(p)
}
