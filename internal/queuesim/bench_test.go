package queuesim

import "testing"

func BenchmarkSystemRunCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.QPS = 8000
		cfg.Seconds = 1.5
		Run(cfg)
	}
}

func BenchmarkSystemRunRPUSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.QPS = 30000
		cfg.Seconds = 1.5
		cfg.RPU, cfg.Split = true, true
		Run(cfg)
	}
}
