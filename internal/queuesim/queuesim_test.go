package queuesim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim(1)
	var order []int
	s.At(5, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(9, func() { order = append(order, 3) })
	s.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	// The clock finishes at the horizon even though the heap drained at
	// t=9, so rate denominators are horizon-independent of queue state.
	if s.Now() != 100 {
		t.Fatalf("clock %v, want 100", s.Now())
	}
}

func TestEventTieBreakFIFO(t *testing.T) {
	s := NewSim(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(3, func() { order = append(order, i) })
	}
	s.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.At(50, func() { fired = true })
	s.Run(10)
	if fired {
		t.Fatal("event past the horizon fired")
	}
	if s.Now() != 10 {
		t.Fatalf("clock %v", s.Now())
	}
}

func TestStationSerialisesBeyondServers(t *testing.T) {
	s := NewSim(1)
	st := NewStation(s, "t", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		st.Submit(10, func() { done = append(done, s.Now()) })
	}
	s.Run(1000)
	if len(done) != 4 {
		t.Fatalf("completed %d", len(done))
	}
	// 2 servers: first two at t=10, next two at t=20.
	if done[0] != 10 || done[1] != 10 || done[2] != 20 || done[3] != 20 {
		t.Fatalf("completion times %v", done)
	}
}

func TestStationUtilization(t *testing.T) {
	s := NewSim(1)
	st := NewStation(s, "t", 1)
	st.Submit(50, nil)
	s.Run(100)
	u := st.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization %v, want ~0.5", u)
	}
}

// TestUtilizationConsistentAcrossExitPaths is the regression test for
// the Sim.Run clock bug: a run whose heap drains before the horizon
// used to leave now at the last event's timestamp while a run stopped
// by a future event set now = until, so Utilization() divided the same
// busy time by different denominators depending on how the run ended.
func TestUtilizationConsistentAcrossExitPaths(t *testing.T) {
	// Exit path 1: the heap drains (only event at t=50).
	drained := NewSim(1)
	sd := NewStation(drained, "t", 1)
	sd.Submit(50, nil)
	drained.Run(200)
	if drained.Now() != 200 {
		t.Fatalf("drained run clock %v, want 200 (old behaviour: 50)", drained.Now())
	}

	// Exit path 2: stopped by an event beyond the horizon.
	stopped := NewSim(1)
	ss := NewStation(stopped, "t", 1)
	ss.Submit(50, nil)
	stopped.At(500, func() {})
	stopped.Run(200)
	if stopped.Now() != 200 {
		t.Fatalf("stopped run clock %v, want 200", stopped.Now())
	}

	ud, us := sd.Utilization(), ss.Utilization()
	if ud != us {
		t.Fatalf("utilization depends on exit path: drained %v vs stopped %v", ud, us)
	}
	if ud < 0.24 || ud > 0.26 {
		t.Fatalf("utilization %v, want 50/200 = 0.25", ud)
	}
}

// TestUtilizationSettlesBusyTail: a station still busy when the run
// stops must be credited for the busy time since its last state
// change.
func TestUtilizationSettlesBusyTail(t *testing.T) {
	s := NewSim(1)
	st := NewStation(s, "t", 1)
	st.Submit(100, nil) // completion at t=100 is beyond the horizon
	s.Run(50)
	if u := st.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization %v, want 1.0 (busy tail not settled)", u)
	}
	// Settlement must not double-count once the event loop resumes.
	s.Run(100)
	if u := st.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization after resume %v, want 1.0", u)
	}
}

// TestRunKeepsFutureEvents: stopping on a beyond-horizon event must not
// drop it — a later Run picks it up.
func TestRunKeepsFutureEvents(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.At(80, func() { fired = true })
	s.Run(50)
	if fired {
		t.Fatal("event fired before its time")
	}
	s.Run(100)
	if !fired {
		t.Fatal("future event was dropped by the earlier Run")
	}
}

// Property: every submitted work item completes exactly once.
func TestQuickStationConservation(t *testing.T) {
	f := func(demands []uint8, servers uint8) bool {
		s := NewSim(2)
		st := NewStation(s, "t", int(servers%8)+1)
		completed := 0
		for _, d := range demands {
			st.Submit(float64(d%50)+1, func() { completed++ })
		}
		s.Run(1e9)
		return completed == len(demands)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSystemConservationLowLoad(t *testing.T) {
	for _, mode := range []struct {
		rpu, split bool
	}{{false, false}, {true, false}, {true, true}} {
		cfg := DefaultConfig()
		cfg.QPS = 2000
		cfg.Seconds = 2
		cfg.RPU, cfg.Split = mode.rpu, mode.split
		m := Run(cfg)
		measured := cfg.Seconds - cfg.Warmup
		expected := cfg.QPS * measured
		got := float64(m.Completed)
		if got < expected*0.9 || got > expected*1.1 {
			t.Fatalf("mode %+v: completed %v of ~%v offered", mode, got, expected)
		}
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	low := DefaultConfig()
	low.QPS = 2000
	low.Seconds = 2
	high := low
	high.QPS = 15500
	ml, mh := Run(low), Run(high)
	if mh.Latency.Percentile(99) <= ml.Latency.Percentile(99) {
		t.Fatalf("p99 did not grow with load: %v vs %v",
			ml.Latency.Percentile(99), mh.Latency.Percentile(99))
	}
}

func TestCPUSaturatesNearPaperKnee(t *testing.T) {
	under := DefaultConfig()
	under.QPS = 13000
	under.Seconds = 2
	over := under
	over.QPS = 22000
	mu, mo := Run(under), Run(over)
	if mu.UserUtil > 0.99 {
		t.Fatalf("CPU saturated below 13 kQPS (util %.2f)", mu.UserUtil)
	}
	if mo.UserUtil < 0.99 {
		t.Fatalf("CPU not saturated at 22 kQPS (util %.2f)", mo.UserUtil)
	}
}

func TestRPUSplitSustainsHigherLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPS = 45000
	cfg.Seconds = 2
	cfg.RPU, cfg.Split = true, true
	m := Run(cfg)
	if m.UserUtil > 0.99 {
		t.Fatalf("RPU w/ split saturated at 45 kQPS (util %.2f)", m.UserUtil)
	}
	measured := cfg.Seconds - cfg.Warmup
	if m.Throughput(measured) < 40000 {
		t.Fatalf("throughput %v at 45 kQPS", m.Throughput(measured))
	}
}

func TestNoSplitInflatesAverageNotTail(t *testing.T) {
	base := DefaultConfig()
	base.QPS = 20000
	base.Seconds = 2
	base.RPU = true

	split := base
	split.Split = true
	ms, mn := Run(split), Run(base)
	// Without splitting, hit requests wait for the storage round trip:
	// average latency inflates by most of the storage latency.
	if mn.Latency.Mean() < ms.Latency.Mean()+0.5*base.StorageLatency {
		t.Fatalf("no-split average %.2f not inflated vs split %.2f",
			mn.Latency.Mean(), ms.Latency.Mean())
	}
	// Tail stays within the same order (CPU tails include storage too).
	if mn.Latency.Percentile(99) > 3*ms.Latency.Percentile(99) {
		t.Fatalf("no-split tail blew up: %.2f vs %.2f",
			mn.Latency.Percentile(99), ms.Latency.Percentile(99))
	}
}

func TestBatchFormationFillsUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QPS = 40000
	cfg.Seconds = 2
	cfg.RPU, cfg.Split = true, true
	m := Run(cfg)
	if m.AvgBatchFill < 16 {
		t.Fatalf("average batch fill %.1f at high load", m.AvgBatchFill)
	}
	cfg.QPS = 2000
	m2 := Run(cfg)
	if m2.AvgBatchFill >= m.AvgBatchFill {
		t.Fatal("batch fill should shrink at low load (timeout flushes)")
	}
}

func TestSweep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seconds = 1.5
	ms := Sweep(cfg, []float64{2000, 8000})
	if len(ms) != 2 || ms[0].Offered != 2000 || ms[1].Offered != 8000 {
		t.Fatalf("sweep wrong: %+v", ms)
	}
}

func TestBatchTierPlacement(t *testing.T) {
	// §VI-H: logic-tier batching (default) must behave like web-tier
	// batching within noise, while acknowledging requests individually
	// (more web-tier submissions).
	base := DefaultConfig()
	base.QPS = 20000
	base.Seconds = 2
	base.RPU, base.Split = true, true

	webTier := base
	webTier.BatchAtWebTier = true
	ml, mw := Run(base), Run(webTier)
	if ml.Completed == 0 || mw.Completed == 0 {
		t.Fatal("no completions")
	}
	rl, rw := ml.Latency.Mean(), mw.Latency.Mean()
	if rl > rw*1.5 || rw > rl*1.5 {
		t.Fatalf("batch placement changed latency drastically: %v vs %v", rl, rw)
	}
}

func TestComposePostConservation(t *testing.T) {
	for _, rpu := range []bool{false, true} {
		cfg := DefaultComposePost()
		cfg.QPS = 3000
		cfg.Seconds = 2
		cfg.RPU = rpu
		m := RunComposePost(cfg)
		measured := cfg.Seconds - cfg.Warmup
		want := cfg.QPS * measured
		if got := float64(m.Completed); got < want*0.9 || got > want*1.1 {
			t.Fatalf("rpu=%v: completed %v of ~%v", rpu, got, want)
		}
	}
}

func TestComposePostRPUHigherCapacity(t *testing.T) {
	// Offered load past the CPU orchestrator's knee: the RPU system
	// keeps up where the CPU saturates.
	cfg := DefaultComposePost()
	cfg.QPS = 60000
	cfg.Seconds = 2
	cpu := RunComposePost(cfg)
	cfg.RPU = true
	rpu := RunComposePost(cfg)
	if cpu.UserUtil < 0.99 {
		t.Fatalf("CPU orchestrator not saturated at 60 kQPS (util %.2f)", cpu.UserUtil)
	}
	if rpu.UserUtil > 0.99 {
		t.Fatalf("RPU orchestrator saturated at 60 kQPS (util %.2f)", rpu.UserUtil)
	}
	if rpu.Completed <= cpu.Completed {
		t.Fatal("RPU should complete more under overload")
	}
}

func TestComposePostFanoutJoins(t *testing.T) {
	cfg := DefaultComposePost()
	cfg.QPS = 1000
	cfg.Seconds = 1.5
	m := RunComposePost(cfg)
	// No-load latency floor: web + orch + slowest leg (text 0.8) +
	// storage 1.0 + cache + hops ≈ 3.6 ms; the mean must sit near it.
	if mean := m.Latency.Mean(); mean < 2.5 || mean > 6 {
		t.Fatalf("compose-post unloaded mean %.2f ms outside plausible band", mean)
	}
}

func TestJitterBounds(t *testing.T) {
	s := NewSim(3)
	for i := 0; i < 1000; i++ {
		v := s.Jitter(10)
		if v < 8 || v > 12 {
			t.Fatalf("jitter %v outside ±20%%", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := NewSim(4)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	if mean := sum / float64(n); mean < 4.5 || mean > 5.5 {
		t.Fatalf("exponential mean %v, want ~5", mean)
	}
}
