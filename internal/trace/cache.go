// Package trace provides a read-only scalar-trace cache for the study
// sweeps. Every study cell (arch × service × batch-size × policy)
// replays the same request stream, and a request's dynamic trace is a
// pure function of (program/API, args, seed) plus the layout inputs the
// driver derives from the batch position: thread index (which fixes the
// stack base, since every study lays batch 0's stacks at the same
// region), heap allocation policy and the L1 geometry the SIMR-aware
// allocator aligns against. Interpreting each distinct key once per
// sweep and sharing the resulting trace read-only across the
// core.RunCells workers removes the interpreter cost that otherwise
// scales with the number of cells instead of the number of requests.
//
// Cached traces MUST be treated as immutable: the SIMT lock-step
// executor, the uop converters and isa.Summarize all only read TraceOp
// slices, and any new consumer has to preserve that. Caching never
// changes results — a hit returns exactly the trace a fresh
// interpretation would produce — so study output stays byte-identical
// whether or not (and how often) the cache is consulted.
package trace

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"simr/internal/alloc"
	"simr/internal/isa"
	"simr/internal/obs"
	"simr/internal/uservices"
)

// traceOpBytes is the retained-memory cost of one cached TraceOp.
const traceOpBytes = int64(unsafe.Sizeof(isa.TraceOp{}))

// DefaultBudgetBytes bounds the bytes of trace data a sweep retains by
// default. Studies at the paper's 2400 requests/service generate more
// trace data than fits comfortably in memory, so the cache degrades to
// interpreting fresh (never to wrong results) once the budget is spent;
// dropping a service's cache when its cells finish returns its bytes.
const DefaultBudgetBytes = 512 << 20

// Budget is a byte budget shared by the caches of one sweep. It bounds
// the total retained trace bytes across all services regardless of how
// the worker pool interleaves their cells.
type Budget struct{ left atomic.Int64 }

// NewBudget returns a budget of maxBytes (<= 0 selects
// DefaultBudgetBytes).
func NewBudget(maxBytes int64) *Budget {
	if maxBytes <= 0 {
		maxBytes = DefaultBudgetBytes
	}
	b := &Budget{}
	b.left.Store(maxBytes)
	return b
}

// reserve takes n bytes from the budget, reporting whether they were
// available.
func (b *Budget) reserve(n int64) bool {
	if b == nil {
		return true
	}
	if b.left.Add(-n) >= 0 {
		return true
	}
	b.left.Add(n)
	return false
}

// release returns n bytes to the budget.
func (b *Budget) release(n int64) {
	if b != nil {
		b.left.Add(n)
	}
}

// key identifies one cacheable trace of the cache's service. The stack
// base is implied by tid (all chip-level studies lay out batch 0's
// stacks from alloc.StackRegion) but is keyed explicitly so a caller
// with an unusual layout degrades to extra misses, never to a wrong
// trace.
type key struct {
	api       string
	args      string // req.Args packed little-endian
	seed      int64
	stackBase uint64
	tid       int32
	lineBytes int32
	banks     int32
	policy    alloc.Policy
}

// packArgs encodes an argument vector into a comparable string without
// retaining the caller's slice.
func packArgs(args []uint64) string {
	buf := make([]byte, 8*len(args))
	for i, a := range args {
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(a >> (8 * b))
		}
	}
	return string(buf)
}

// entry is one cache slot. ready is closed once ops/err are final;
// concurrent requesters of the same key wait instead of re-interpreting
// (singleflight).
type entry struct {
	ready chan struct{}
	ops   []isa.TraceOp
	err   error
	// retained records whether the entry holds a budget reservation; it
	// is written before ready closes and read only after.
	retained bool
}

// Cache memoises the scalar traces of one service for the duration of
// one sweep. It is safe for concurrent use. The zero Cache is not
// usable; a nil *Cache is accepted everywhere and interprets fresh.
type Cache struct {
	svc    *uservices.Service
	budget *Budget

	mu sync.Mutex
	m  map[key]*entry

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypassed atomic.Uint64
	drops    atomic.Uint64
	bytes    atomic.Int64
	bytesHWM atomic.Int64

	// Optional observability mirrors (nil no-ops when the obs hub was
	// not installed at construction time). The counters aggregate over
	// every cache of the process under one scope, so a sweep's snapshot
	// shows total cache effectiveness; bytesHWM tracks the single-cache
	// retained-bytes high-water mark against the byte budget.
	obsHits, obsMisses, obsBypassed, obsDrops, obsDroppedBytes *obs.Counter
	obsBytesHWM                                                *obs.Gauge
}

// NewCache returns a cache for svc drawing on the shared budget
// (budget may be nil for an unbounded cache).
func NewCache(svc *uservices.Service, budget *Budget) *Cache {
	c := &Cache{svc: svc, budget: budget, m: map[key]*entry{}}
	if sc := obs.Default().Scope("trace.cache"); sc != nil {
		c.obsHits = sc.Counter("hits")
		c.obsMisses = sc.Counter("misses")
		c.obsBypassed = sc.Counter("bypassed")
		c.obsDrops = sc.Counter("drops")
		c.obsDroppedBytes = sc.Counter("dropped_bytes")
		c.obsBytesHWM = sc.Gauge("bytes_hwm")
	}
	return c
}

// Stats reports cache effectiveness counters. BytesHWM is the
// retained-bytes high-water mark over the cache's lifetime (Bytes drops
// back to zero after Drop; the HWM records how much of the budget the
// cache actually used) and Drops counts Drop calls that found a live
// map.
type Stats struct {
	Hits, Misses, Bypassed, Drops uint64
	Bytes, BytesHWM               int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Bypassed: c.bypassed.Load(),
		Drops:    c.drops.Load(),
		Bytes:    c.bytes.Load(),
		BytesHWM: c.bytesHWM.Load(),
	}
}

// interpBufs recycles interpreter buffers across requests: the trace is
// built in a pooled scratch slice and copied out at its exact final
// size. TraceOp is pointer-free, so the exact-size copy allocates
// without the backing-array zeroing a capacity-hinted make pays, and
// the (typically multi-megabyte) scratch array is reused instead of
// churned per miss.
var interpBufs = sync.Pool{New: func() any { return new([]isa.TraceOp) }}

// interpret runs the service's program for the request exactly like
// uservices.Service.Trace with a fresh arena — the uncached path.
func interpret(svc *uservices.Service, req *uservices.Request, tid int, stackBase uint64, policy alloc.Policy, lineBytes, banks int) ([]isa.TraceOp, error) {
	arena := alloc.NewArena(tid, policy, lineBytes, banks)
	buf := interpBufs.Get().(*[]isa.TraceOp)
	ops, err := svc.TraceInto(req, tid, stackBase, arena, (*buf)[:0])
	var out []isa.TraceOp
	if err == nil {
		out = append([]isa.TraceOp(nil), ops...)
	}
	if cap(ops) > cap(*buf) {
		*buf = ops[:0]
	}
	interpBufs.Put(buf)
	return out, err
}

// Request returns the scalar trace for the request at batch position
// tid with the given stack base and heap-allocator geometry,
// interpreting it at most once per cache lifetime. The returned slice
// is shared and read-only. The receiver must be non-nil (a nil cache
// does not know its service; use Batch, or call
// uservices.Service.Trace directly, for the uncached path).
func (c *Cache) Request(req *uservices.Request, tid int, stackBase uint64, policy alloc.Policy, lineBytes, banks int) ([]isa.TraceOp, error) {
	k := key{
		api:       req.API,
		args:      packArgs(req.Args),
		seed:      req.Seed,
		stackBase: stackBase,
		tid:       int32(tid),
		lineBytes: int32(lineBytes),
		banks:     int32(banks),
		policy:    policy,
	}
	c.mu.Lock()
	if c.m == nil {
		// Dropped: serve fresh without re-populating.
		c.mu.Unlock()
		c.bypassed.Add(1)
		c.obsBypassed.Inc()
		return interpret(c.svc, req, tid, stackBase, policy, lineBytes, banks)
	}
	if e, ok := c.m[k]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		c.obsHits.Inc()
		<-e.ready
		return e.ops, e.err
	}
	e := &entry{ready: make(chan struct{})}
	c.m[k] = e
	c.mu.Unlock()
	c.misses.Add(1)
	c.obsMisses.Inc()

	e.ops, e.err = interpret(c.svc, req, tid, stackBase, policy, lineBytes, banks)
	cost := traceOpBytes * int64(len(e.ops))
	retained := false
	if e.err == nil && c.budget.reserve(cost) {
		// Keep the entry only if it is still mapped (Drop may have raced
		// with the interpretation) so every retained byte is released
		// exactly once.
		c.mu.Lock()
		retained = c.m != nil && c.m[k] == e
		c.mu.Unlock()
		if retained {
			now := c.bytes.Add(cost)
			storeMax(&c.bytesHWM, now)
			c.obsBytesHWM.SetMax(now)
			e.retained = true
		} else {
			c.budget.release(cost)
		}
	}
	if e.err == nil && !retained {
		// Over budget (or dropped): hand the trace to any waiters — it
		// is already computed — but do not retain it; future requests
		// for this key re-interpret.
		c.bypassed.Add(1)
		c.obsBypassed.Inc()
		c.mu.Lock()
		if c.m != nil && c.m[k] == e {
			delete(c.m, k)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.ops, e.err
}

// Batch traces every request of a batch through the cache with
// per-thread stacks and arenas, mirroring uservices.Service.TraceBatch.
// The per-thread trace slices are shared and read-only.
func (c *Cache) Batch(svc *uservices.Service, reqs []uservices.Request, sg *alloc.StackGroup, policy alloc.Policy, lineBytes, banks int) ([][]isa.TraceOp, error) {
	traces := make([][]isa.TraceOp, len(reqs))
	for t := range reqs {
		var (
			tr  []isa.TraceOp
			err error
		)
		if c == nil {
			tr, err = interpret(svc, &reqs[t], t, sg.StackBase(t), policy, lineBytes, banks)
		} else {
			tr, err = c.Request(&reqs[t], t, sg.StackBase(t), policy, lineBytes, banks)
		}
		if err != nil {
			return nil, err
		}
		traces[t] = tr
	}
	return traces, nil
}

// Drop releases the cache's entries and returns their bytes to the
// budget. Subsequent Requests interpret fresh. Safe to call
// concurrently with Request.
func (c *Cache) Drop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	m := c.m
	c.m = nil
	c.mu.Unlock()
	if m == nil {
		return
	}
	var freed int64
	for _, e := range m {
		select {
		case <-e.ready:
			// Only entries that completed AND kept their reservation
			// count: an in-flight interpreter re-checks map membership
			// before retaining and releases its own reservation when it
			// finds the map dropped.
			if e.retained {
				freed += traceOpBytes * int64(len(e.ops))
			}
		default:
		}
	}
	c.bytes.Add(-freed)
	c.budget.release(freed)
	c.drops.Add(1)
	c.obsDrops.Inc()
	c.obsDroppedBytes.Add(freed)
}
