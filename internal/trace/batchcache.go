// Batch-stream cache: the post-merge sibling of the scalar Cache.
//
// The scalar cache amortizes trace *interpretation* across sweep cells,
// but every cell still pays the rest of preparation — SIMT lock-step
// merge and uop build — even when it consumes the exact stream another
// cell already built. Timing-knob sweeps (lanes, majority vote, atomics
// placement, frequency/energy model) hold batch composition, spin
// policy, reconvergence mode and allocator geometry fixed across many
// cells, so the merged []pipeline.Uop stream, its MCU coalescing delta
// and its op counts are pure functions of inputs the cells share. The
// BatchCache memoizes that post-merge product once per sweep and serves
// it read-only to every other cell, with singleflight dedup so
// concurrent workers block on the first build instead of repeating it.
//
// Ownership is the load-bearing invariant: the builders' slot arenas
// (core's uopBuilder chunks and simt.Scratch) are reused per slot, so a
// retained stream must never alias them. On first build the cache deep
// copies the stream into a cache-owned arena (clone) and serves only
// that copy; consumers — pipeline.Core.Run and Warm — treat uop slices
// and their Accesses as immutable. Caching never changes results: a hit
// returns exactly the stream a fresh build would produce, so study
// output stays byte-identical with the cache on or off.
package trace

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"simr/internal/alloc"
	"simr/internal/mem"
	"simr/internal/obs"
	"simr/internal/pipeline"
	"simr/internal/simt"
	"simr/internal/uservices"
)

// uopBytes is the retained-memory cost of one cached pipeline uop.
const uopBytes = int64(unsafe.Sizeof(pipeline.Uop{}))

// batchStreamBytes is the fixed overhead charged per retained stream
// (the BatchStream header plus map/entry bookkeeping, rounded up).
const batchStreamBytes = int64(unsafe.Sizeof(BatchStream{})) + 128

// Key tags distinguish the stream families sharing one cache so a batch
// stream and an SMT merge of the same requests can never collide.
const (
	// KeyBatch marks an RPU/GPU lock-step batch stream.
	KeyBatch byte = 'B'
	// KeySMT marks an SMT round-robin merge of scalar streams.
	KeySMT byte = 'S'
	// KeyEff marks a count-only stream (ScalarOps/BatchOps/Requests,
	// empty Uops) from the batching-policy efficiency study. The tag
	// keeps count-only entries from ever being served where a full uop
	// stream is expected.
	KeyEff byte = 'E'
)

// BatchStream is one memoized post-merge preparation product: the
// merged uop stream plus everything the consumer needs to account for
// it. A stream returned by BatchCache.Get on a hit is cache-owned and
// strictly read-only — Uops and every Uop.Accesses slice alias the
// cache's arena, never a builder's scratch.
type BatchStream struct {
	// Uops is the merged stream the timing core runs. Read-only.
	Uops []pipeline.Uop
	// MCU is the coalescer-count delta the uop build produced; the
	// consumer applies it to the memory system before Run.
	MCU mem.MCUStats
	// ScalarOps is the total dynamic scalar instruction count merged
	// into the stream (the SIMT-efficiency numerator).
	ScalarOps int
	// BatchOps is the merged batch-op count (the efficiency
	// denominator's per-batch factor); zero for SMT merges.
	BatchOps int
	// Requests is the number of requests the stream serves.
	Requests int

	// addrs backs the cloned Uops' Accesses slices (nil on
	// builder-local streams, whose Accesses alias the builder arena).
	addrs []uint64
}

// RetainedBytes returns the stream's retained-memory cost: the uop
// array, the flattened address arena behind Accesses, and the fixed
// header overhead.
func (s *BatchStream) RetainedBytes() int64 {
	words := len(s.addrs)
	if s.addrs == nil {
		for i := range s.Uops {
			words += len(s.Uops[i].Accesses)
		}
	}
	return uopBytes*int64(len(s.Uops)) + 8*int64(words) + batchStreamBytes
}

// clone deep copies the stream into cache-owned memory: one exact-size
// uop array plus one flat address arena that the copied Accesses slices
// are re-pointed into. The source (typically aliasing a builder's
// reused slot arena) is not retained.
func (s *BatchStream) clone() *BatchStream {
	words := 0
	for i := range s.Uops {
		words += len(s.Uops[i].Accesses)
	}
	c := &BatchStream{
		MCU:       s.MCU,
		ScalarOps: s.ScalarOps,
		BatchOps:  s.BatchOps,
		Requests:  s.Requests,
		Uops:      make([]pipeline.Uop, len(s.Uops)),
		addrs:     make([]uint64, 0, words),
	}
	copy(c.Uops, s.Uops)
	for i := range c.Uops {
		u := &c.Uops[i]
		if u.Accesses == nil {
			continue
		}
		l := len(c.addrs)
		c.addrs = append(c.addrs, u.Accesses...)
		u.Accesses = c.addrs[l:len(c.addrs):len(c.addrs)]
	}
	return c
}

// appendU64 little-endian packs v.
func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendBatchKey appends the packed batch-stream key to dst and returns
// the extended slice (pass dst[:0] of a reused buffer for a zero-alloc
// steady state). The key covers everything that determines the merged
// stream: the tag (stream family), every request's identity (API, args,
// seed — batch position is implied by order), the hardware batch width,
// the reconvergence mode and spin policy, and the layout inputs the
// build consumed (alloc policy, stack interleave, L1 line/banks, stack
// base). The encoding is collision-free (strings and vectors are
// length-prefixed), so equal keys imply equal streams; anything not
// keyed here — lanes, majority voting, atomics placement, frequency —
// must be timing-only. One cache must serve exactly one service: the
// service's programs (and its branch-reconvergence table) are deliberately
// not part of the key.
func AppendBatchKey(dst []byte, tag byte, reqs []uservices.Request, size int,
	ipdom bool, spin *simt.SpinConfig, policy alloc.Policy, interleave bool,
	lineBytes, banks int, stackBase uint64) []byte {
	dst = append(dst, tag)
	flags := byte(0)
	if ipdom {
		flags |= 1
	}
	if interleave {
		flags |= 2
	}
	if spin != nil {
		flags |= 4
	}
	dst = append(dst, flags, byte(policy))
	if spin != nil {
		dst = appendU64(dst, uint64(spin.Window))
		dst = appendU64(dst, uint64(spin.MinAtomics))
		dst = appendU64(dst, uint64(spin.Grant))
	}
	dst = appendU64(dst, uint64(size))
	dst = appendU64(dst, uint64(lineBytes))
	dst = appendU64(dst, uint64(banks))
	dst = appendU64(dst, stackBase)
	dst = appendU64(dst, uint64(len(reqs)))
	for i := range reqs {
		r := &reqs[i]
		dst = appendU64(dst, uint64(len(r.API)))
		dst = append(dst, r.API...)
		dst = appendU64(dst, uint64(r.Seed))
		dst = appendU64(dst, uint64(len(r.Args)))
		for _, a := range r.Args {
			dst = appendU64(dst, a)
		}
	}
	return dst
}

// batchEntry is one cache slot. ready is closed once stream/err are
// final; concurrent requesters of the same key wait instead of
// rebuilding (singleflight). stream is nil when the build was not
// retained (over budget or dropped) — waiters then rebuild locally,
// because the builder's own result aliases its reusable slot arena and
// must not be shared.
type batchEntry struct {
	ready  chan struct{}
	stream *BatchStream
	err    error
}

// BatchCache memoizes the post-merge batch streams of one service for
// the duration of one sweep. It is safe for concurrent use. A nil
// *BatchCache is accepted everywhere and builds fresh.
type BatchCache struct {
	budget *Budget

	mu sync.Mutex
	m  map[string]*batchEntry

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypassed atomic.Uint64
	drops    atomic.Uint64
	bytes    atomic.Int64
	bytesHWM atomic.Int64

	// Observability mirrors (nil no-ops when the obs hub was not
	// installed at construction time); they aggregate over every batch
	// cache of the process under the "trace.batchcache" scope.
	obsHits, obsMisses, obsBypassed, obsDrops, obsDroppedBytes *obs.Counter
	obsBytesHWM                                                *obs.Gauge
}

// NewBatchCache returns a batch-stream cache drawing on the shared
// budget (nil for an unbounded cache). One BatchCache must serve
// exactly one service — keys do not encode the program set.
func NewBatchCache(budget *Budget) *BatchCache {
	c := &BatchCache{budget: budget, m: map[string]*batchEntry{}}
	if sc := obs.Default().Scope("trace.batchcache"); sc != nil {
		c.obsHits = sc.Counter("hits")
		c.obsMisses = sc.Counter("misses")
		c.obsBypassed = sc.Counter("bypassed")
		c.obsDrops = sc.Counter("drops")
		c.obsDroppedBytes = sc.Counter("dropped_bytes")
		c.obsBytesHWM = sc.Gauge("bytes_hwm")
	}
	return c
}

// BatchStats reports batch-cache effectiveness counters.
type BatchStats struct {
	Hits, Misses, Bypassed, Drops uint64
	Bytes, BytesHWM               int64
}

// Stats returns a snapshot of the cache counters.
func (c *BatchCache) Stats() BatchStats {
	if c == nil {
		return BatchStats{}
	}
	return BatchStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Bypassed: c.bypassed.Load(),
		Drops:    c.drops.Load(),
		Bytes:    c.bytes.Load(),
		BytesHWM: c.bytesHWM.Load(),
	}
}

// storeMax raises a to at least v.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Get returns the memoized stream for key, invoking build at most once
// per cache lifetime per key (singleflight). The key is read, never
// retained, so callers may reuse its buffer. A hit returns a
// cache-owned read-only stream and performs zero allocations. A miss
// runs build on the calling goroutine and — budget permitting — retains
// a deep copy for future hits; the caller always receives a stream that
// is valid until its own next build (on a bypass it is build's own
// product, which may alias the caller's reusable arenas). A nil cache
// just calls build.
func (c *BatchCache) Get(key []byte, build func() (*BatchStream, error)) (*BatchStream, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	if c.m == nil {
		// Dropped: serve fresh without re-populating.
		c.mu.Unlock()
		c.bypassed.Add(1)
		c.obsBypassed.Inc()
		return build()
	}
	if e, ok := c.m[string(key)]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.hits.Add(1)
			c.obsHits.Inc()
			return nil, e.err
		}
		if e.stream == nil {
			// The first builder could not retain its stream (over
			// budget, or Drop raced); its result aliases its private
			// arena, so it cannot be shared — rebuild locally.
			c.bypassed.Add(1)
			c.obsBypassed.Inc()
			return build()
		}
		c.hits.Add(1)
		c.obsHits.Inc()
		return e.stream, nil
	}
	e := &batchEntry{ready: make(chan struct{})}
	c.m[string(key)] = e
	c.mu.Unlock()
	c.misses.Add(1)
	c.obsMisses.Inc()

	st, err := build()
	if err != nil {
		e.err = err
		close(e.ready)
		return nil, err
	}
	cost := st.RetainedBytes()
	retained := false
	if c.budget.reserve(cost) {
		// Clone before re-checking map membership so the (expensive)
		// copy happens outside the lock; release the reservation if
		// Drop raced with the build.
		cl := st.clone()
		c.mu.Lock()
		if c.m != nil && c.m[string(key)] == e {
			e.stream = cl
			retained = true
		}
		c.mu.Unlock()
		if retained {
			storeMax(&c.bytesHWM, c.bytes.Add(cost))
			c.obsBytesHWM.SetMax(c.bytes.Load())
		} else {
			c.budget.release(cost)
		}
	}
	if !retained {
		// Over budget (or dropped): the caller keeps its own freshly
		// built stream, but the entry cannot serve waiters — their
		// singleflight wait degrades to a local rebuild, never to a
		// shared alias of this caller's arena.
		c.bypassed.Add(1)
		c.obsBypassed.Inc()
		c.mu.Lock()
		if c.m != nil && c.m[string(key)] == e {
			delete(c.m, string(key))
		}
		c.mu.Unlock()
	}
	close(e.ready)
	if retained {
		return e.stream, nil
	}
	return st, nil
}

// Drop releases the cache's entries and returns their bytes to the
// budget. Subsequent Gets build fresh. Safe to call concurrently with
// Get; idempotent.
func (c *BatchCache) Drop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	m := c.m
	c.m = nil
	c.mu.Unlock()
	if m == nil {
		return
	}
	var freed int64
	for _, e := range m {
		select {
		case <-e.ready:
			// Only completed, retained entries hold a reservation: an
			// in-flight builder re-checks map membership before
			// retaining and releases its own reservation when it finds
			// the map dropped.
			if e.stream != nil {
				freed += e.stream.RetainedBytes()
			}
		default:
		}
	}
	c.bytes.Add(-freed)
	c.budget.release(freed)
	c.drops.Add(1)
	c.obsDrops.Inc()
	c.obsDroppedBytes.Add(freed)
}
