package trace

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"simr/internal/alloc"
	"simr/internal/pipeline"
	"simr/internal/simt"
	"simr/internal/uservices"
)

// testStream builds a stream whose Accesses alias the given arena, the
// way a uopBuilder-produced stream aliases its slot chunks.
func testStream(arena []uint64) *BatchStream {
	uops := make([]pipeline.Uop, 4)
	for i := range uops {
		uops[i].PC = uint64(0x1000 + 4*i)
		uops[i].ActiveLanes = 8
	}
	uops[1].Accesses = arena[0:2:2]
	uops[3].Accesses = arena[2:3:3]
	return &BatchStream{
		Uops:      uops,
		ScalarOps: 123,
		BatchOps:  4,
		Requests:  8,
	}
}

func testKey(seed int64) []byte {
	reqs := []uservices.Request{
		{API: "get", Seed: seed, Args: []uint64{1, 2}},
		{API: "set", Seed: seed + 1, Args: []uint64{3}},
	}
	spin := simt.DefaultSpin
	return AppendBatchKey(nil, KeyBatch, reqs, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46)
}

func TestAppendBatchKeyDistinct(t *testing.T) {
	reqs := []uservices.Request{{API: "get", Seed: 1, Args: []uint64{7}}}
	spin := simt.DefaultSpin
	base := func() []byte {
		return AppendBatchKey(nil, KeyBatch, reqs, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46)
	}
	variants := map[string][]byte{
		"tag":       AppendBatchKey(nil, KeySMT, reqs, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"tag-eff":   AppendBatchKey(nil, KeyEff, reqs, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"size":      AppendBatchKey(nil, KeyBatch, reqs, 16, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"ipdom":     AppendBatchKey(nil, KeyBatch, reqs, 32, true, nil, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"nospin":    AppendBatchKey(nil, KeyBatch, reqs, 32, false, nil, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"policy":    AppendBatchKey(nil, KeyBatch, reqs, 32, false, &spin, alloc.PolicyCPU, true, 32, 8, 1<<46),
		"interleav": AppendBatchKey(nil, KeyBatch, reqs, 32, false, &spin, alloc.PolicySIMR, false, 32, 8, 1<<46),
		"line":      AppendBatchKey(nil, KeyBatch, reqs, 32, false, &spin, alloc.PolicySIMR, true, 64, 8, 1<<46),
		"banks":     AppendBatchKey(nil, KeyBatch, reqs, 32, false, &spin, alloc.PolicySIMR, true, 32, 16, 1<<46),
		"stack":     AppendBatchKey(nil, KeyBatch, reqs, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<47),
		"api": AppendBatchKey(nil, KeyBatch,
			[]uservices.Request{{API: "got", Seed: 1, Args: []uint64{7}}}, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"seed": AppendBatchKey(nil, KeyBatch,
			[]uservices.Request{{API: "get", Seed: 2, Args: []uint64{7}}}, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"args": AppendBatchKey(nil, KeyBatch,
			[]uservices.Request{{API: "get", Seed: 1, Args: []uint64{8}}}, 32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46),
		"nreqs": AppendBatchKey(nil, KeyBatch,
			[]uservices.Request{{API: "get", Seed: 1, Args: []uint64{7}}, {API: "get", Seed: 1, Args: []uint64{7}}},
			32, false, &spin, alloc.PolicySIMR, true, 32, 8, 1<<46),
	}
	b := base()
	if !bytes.Equal(b, base()) {
		t.Fatal("key encoding is not deterministic")
	}
	for name, v := range variants {
		if bytes.Equal(b, v) {
			t.Errorf("varying %s does not change the key", name)
		}
	}
	// Moving a boundary between API text and args must change the key
	// (length prefixes make the encoding collision-free).
	a := AppendBatchKey(nil, KeyBatch, []uservices.Request{{API: "ab", Seed: 0}}, 32, false, nil, 0, false, 32, 8, 0)
	c := AppendBatchKey(nil, KeyBatch, []uservices.Request{{API: "a", Seed: int64('b')}}, 32, false, nil, 0, false, 32, 8, 0)
	if bytes.Equal(a, c) {
		t.Fatal("length prefixes failed to separate API text from seed bytes")
	}
}

func TestBatchCacheSingleflight(t *testing.T) {
	c := NewBatchCache(NewBudget(0))
	key := testKey(1)
	arena := []uint64{10, 20, 30}
	var builds atomic.Int32
	gate := make(chan struct{})
	build := func() (*BatchStream, error) {
		builds.Add(1)
		<-gate
		return testStream(arena), nil
	}

	const n = 8
	streams := make([]*BatchStream, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Get(key, build)
			if err != nil {
				t.Error(err)
				return
			}
			streams[i] = st
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1 (singleflight)", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Bypassed != 0 {
		t.Fatalf("stats = %+v, want 1 miss, %d hits, 0 bypassed", st, n-1)
	}
	for i := 1; i < n; i++ {
		if streams[i] != streams[0] {
			t.Fatal("waiters did not all receive the one cache-owned stream")
		}
	}
	if st.Bytes != streams[0].RetainedBytes() || st.BytesHWM != st.Bytes {
		t.Fatalf("retained bytes %d (hwm %d) != stream cost %d", st.Bytes, st.BytesHWM, streams[0].RetainedBytes())
	}
}

func TestBatchCacheCloneOwnership(t *testing.T) {
	c := NewBatchCache(NewBudget(0))
	arena := []uint64{10, 20, 30}
	local := testStream(arena)
	got, err := c.Get(testKey(1), func() (*BatchStream, error) { return local, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got == local {
		t.Fatal("retained stream aliases the builder's stream")
	}
	// Corrupt the builder's arena the way slot reuse would.
	for i := range local.Uops {
		local.Uops[i] = pipeline.Uop{}
	}
	for i := range arena {
		arena[i] = 0xdead
	}
	hit, err := c.Get(testKey(1), func() (*BatchStream, error) {
		t.Fatal("hit path must not rebuild")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := testStream([]uint64{10, 20, 30})
	if len(hit.Uops) != len(want.Uops) {
		t.Fatalf("hit stream has %d uops, want %d", len(hit.Uops), len(want.Uops))
	}
	for i := range want.Uops {
		if hit.Uops[i].PC != want.Uops[i].PC ||
			!reflect.DeepEqual(hit.Uops[i].Accesses, want.Uops[i].Accesses) {
			t.Fatalf("uop %d corrupted by builder-arena reuse: %+v", i, hit.Uops[i])
		}
	}
	if hit.ScalarOps != 123 || hit.BatchOps != 4 || hit.Requests != 8 {
		t.Fatalf("counts corrupted: %+v", hit)
	}
}

func TestBatchCacheBudgetBypass(t *testing.T) {
	c := NewBatchCache(NewBudget(1)) // nothing fits
	arena := []uint64{1, 2, 3}
	var builds atomic.Int32
	build := func() (*BatchStream, error) {
		builds.Add(1)
		return testStream(arena), nil
	}
	st1, err := c.Get(testKey(1), build)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Get(testKey(1), build)
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("build ran %d times, want 2 (unretained entries cannot serve)", builds.Load())
	}
	if st1 == st2 {
		t.Fatal("bypassed gets must each own their build product")
	}
	s := c.Stats()
	if s.Bytes != 0 || s.Hits != 0 || s.Bypassed != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses, 2 bypassed, 0 bytes", s)
	}
}

func TestBatchCacheError(t *testing.T) {
	c := NewBatchCache(NewBudget(0))
	boom := errors.New("boom")
	var builds atomic.Int32
	for i := 0; i < 3; i++ {
		_, err := c.Get(testKey(1), func() (*BatchStream, error) {
			builds.Add(1)
			return nil, boom
		})
		if err != boom {
			t.Fatalf("get %d: err = %v, want boom", i, err)
		}
	}
	if builds.Load() != 1 {
		t.Fatalf("failed build ran %d times, want 1 (errors are memoized)", builds.Load())
	}
}

func TestBatchCacheDrop(t *testing.T) {
	budget := NewBudget(0)
	c := NewBatchCache(budget)
	arena := []uint64{1, 2, 3}
	st, err := c.Get(testKey(1), func() (*BatchStream, error) { return testStream(arena), nil })
	if err != nil {
		t.Fatal(err)
	}
	cost := st.RetainedBytes()
	before := budget.left.Load()
	c.Drop()
	c.Drop() // idempotent
	s := c.Stats()
	if s.Drops != 1 {
		t.Fatalf("drops = %d, want 1 (second Drop is a no-op)", s.Drops)
	}
	if s.Bytes != 0 {
		t.Fatalf("bytes = %d after drop, want 0", s.Bytes)
	}
	if got := budget.left.Load(); got != before+cost {
		t.Fatalf("budget not refunded: left %d, want %d", got, before+cost)
	}
	// A dropped cache serves fresh without re-populating.
	var builds atomic.Int32
	for i := 0; i < 2; i++ {
		if _, err := c.Get(testKey(1), func() (*BatchStream, error) {
			builds.Add(1)
			return testStream(arena), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 2 {
		t.Fatalf("dropped cache built %d times, want 2", builds.Load())
	}
	if s := c.Stats(); s.Bypassed != 2 || s.Bytes != 0 {
		t.Fatalf("dropped-cache stats = %+v, want 2 bypassed, 0 bytes", s)
	}
}

// TestBatchCacheHitAllocs pins the zero-allocation hit path: sweeps
// hammer Get once per batch per cell, so a hit must not allocate (key
// lookup via m[string(key)] compiles to a no-copy map probe).
func TestBatchCacheHitAllocs(t *testing.T) {
	c := NewBatchCache(NewBudget(0))
	arena := []uint64{1, 2, 3}
	keyBuf := testKey(1)
	if _, err := c.Get(keyBuf, func() (*BatchStream, error) { return testStream(arena), nil }); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		st, err := c.Get(keyBuf, nil)
		if err != nil || st == nil {
			t.Fatal("hit failed")
		}
	})
	if avg != 0 {
		t.Fatalf("hit path allocates %v objects per op, want 0", avg)
	}
}

// TestBatchCacheRace hammers Get/Drop from many goroutines; run under
// -race it is the cache's dedicated concurrency test.
func TestBatchCacheRace(t *testing.T) {
	budget := NewBudget(4096) // small enough that some builds bypass
	c := NewBatchCache(budget)
	keys := make([][]byte, 4)
	for i := range keys {
		keys[i] = testKey(int64(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arena := []uint64{uint64(g), 2, 3}
			for i := 0; i < 200; i++ {
				st, err := c.Get(keys[(g+i)%len(keys)], func() (*BatchStream, error) {
					return testStream(arena), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Read the stream the way a consumer would.
				sum := uint64(0)
				for j := range st.Uops {
					for _, a := range st.Uops[j].Accesses {
						sum += a
					}
				}
				_ = sum
				if g == 0 && i == 100 {
					c.Drop()
				}
			}
		}(g)
	}
	wg.Wait()
	c.Drop()
	if got := c.Stats().Bytes; got != 0 {
		t.Fatalf("bytes = %d after final drop, want 0", got)
	}
}

// TestBatchStreamRetainedBytes checks the cost accounting is identical
// before and after cloning (reserve happens on the source, release on
// the clone).
func TestBatchStreamRetainedBytes(t *testing.T) {
	src := testStream([]uint64{1, 2, 3})
	cl := src.clone()
	if src.RetainedBytes() != cl.RetainedBytes() {
		t.Fatalf("clone cost %d differs from source cost %d", cl.RetainedBytes(), src.RetainedBytes())
	}
	var empty BatchStream
	if got := empty.RetainedBytes(); got != batchStreamBytes {
		t.Fatalf("empty stream cost %d, want header %d", got, batchStreamBytes)
	}
}

// ExampleBatchCache documents the intended sweep usage.
func ExampleBatchCache() {
	budget := NewBudget(0)
	c := NewBatchCache(budget)
	key := AppendBatchKey(nil, KeyBatch, []uservices.Request{{API: "get", Seed: 1}},
		32, false, nil, alloc.PolicySIMR, true, 32, 8, 1<<46)
	st, _ := c.Get(key, func() (*BatchStream, error) {
		return &BatchStream{ScalarOps: 96, BatchOps: 3, Requests: 32}, nil
	})
	fmt.Println(st.ScalarOps, c.Stats().Misses)
	// Output: 96 1
}
