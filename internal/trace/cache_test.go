package trace

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"simr/internal/alloc"
	"simr/internal/isa"
	"simr/internal/uservices"
)

func testService(t testing.TB) (*uservices.Service, []uservices.Request) {
	t.Helper()
	svc := uservices.NewSuite().Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(11)), 24)
	return svc, reqs
}

func freshTrace(t testing.TB, svc *uservices.Service, req *uservices.Request, tid int, stackBase uint64, policy alloc.Policy, banks int) []isa.TraceOp {
	t.Helper()
	arena := alloc.NewArena(tid, policy, 64, banks)
	ops, err := svc.Trace(req, tid, stackBase, arena)
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func TestCacheMatchesFreshInterpretation(t *testing.T) {
	svc, reqs := testService(t)
	c := NewCache(svc, nil)
	sg := alloc.NewStackGroup(0, len(reqs), true)
	for i := range reqs {
		want := freshTrace(t, svc, &reqs[i], i, sg.StackBase(i), alloc.PolicySIMR, 8)
		for pass := 0; pass < 2; pass++ { // miss, then hit
			got, err := c.Request(&reqs[i], i, sg.StackBase(i), alloc.PolicySIMR, 64, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("req %d pass %d: cached trace differs from fresh", i, pass)
			}
		}
	}
	st := c.Stats()
	if st.Misses != uint64(len(reqs)) || st.Hits != uint64(len(reqs)) {
		t.Fatalf("stats = %+v, want %d misses and hits", st, len(reqs))
	}
	if st.Bytes <= 0 {
		t.Fatalf("retained bytes = %d, want > 0", st.Bytes)
	}
}

func TestCacheKeySeparatesLayouts(t *testing.T) {
	svc, reqs := testService(t)
	c := NewCache(svc, nil)
	req := &reqs[0]
	sg := alloc.NewStackGroup(0, 8, true)
	// Same request under two allocation policies must give each policy
	// its fresh-interpretation trace, not a shared one.
	for _, policy := range []alloc.Policy{alloc.PolicyCPU, alloc.PolicySIMR} {
		want := freshTrace(t, svc, req, 3, sg.StackBase(3), policy, 8)
		got, err := c.Request(req, 3, sg.StackBase(3), policy, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("policy %v: cached trace differs from fresh", policy)
		}
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (distinct keys)", st.Misses)
	}
}

func TestCacheBudgetBypass(t *testing.T) {
	svc, reqs := testService(t)
	// A budget of one op's bytes forces every real trace to bypass.
	c := NewCache(svc, NewBudget(traceOpBytes))
	sg := alloc.NewStackGroup(0, 2, true)
	for pass := 0; pass < 2; pass++ {
		want := freshTrace(t, svc, &reqs[0], 0, sg.StackBase(0), alloc.PolicySIMR, 8)
		got, err := c.Request(&reqs[0], 0, sg.StackBase(0), alloc.PolicySIMR, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: bypassed trace differs from fresh", pass)
		}
	}
	st := c.Stats()
	if st.Bypassed == 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v, want bypasses and zero retained bytes", st)
	}
}

func TestCacheDropReleasesBudget(t *testing.T) {
	svc, reqs := testService(t)
	budget := NewBudget(DefaultBudgetBytes)
	c := NewCache(svc, budget)
	sg := alloc.NewStackGroup(0, len(reqs), true)
	for i := range reqs {
		if _, err := c.Request(&reqs[i], i, sg.StackBase(i), alloc.PolicySIMR, 64, 8); err != nil {
			t.Fatal(err)
		}
	}
	if got := budget.left.Load(); got >= DefaultBudgetBytes {
		t.Fatalf("budget untouched after %d inserts", len(reqs))
	}
	c.Drop()
	if got := budget.left.Load(); got != DefaultBudgetBytes {
		t.Fatalf("budget after Drop = %d, want %d returned in full", got, int64(DefaultBudgetBytes))
	}
	// A dropped cache keeps serving correct traces, fresh.
	want := freshTrace(t, svc, &reqs[0], 0, sg.StackBase(0), alloc.PolicySIMR, 8)
	got, err := c.Request(&reqs[0], 0, sg.StackBase(0), alloc.PolicySIMR, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-Drop trace differs from fresh")
	}
}

func TestNilCacheBatchInterpretsFresh(t *testing.T) {
	svc, reqs := testService(t)
	sg := alloc.NewStackGroup(0, 4, true)
	var c *Cache
	got, err := c.Batch(svc, reqs[:4], sg, alloc.PolicySIMR, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.TraceBatch(reqs[:4], sg, alloc.PolicySIMR, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil-cache Batch differs from TraceBatch")
	}
}

// TestCacheConcurrentRequestAndDrop hammers one cache from many
// goroutines with overlapping keys while Drop fires midway; run under
// -race this is the cache's synchronization proof, and every returned
// trace must still equal the fresh interpretation.
func TestCacheConcurrentRequestAndDrop(t *testing.T) {
	svc, reqs := testService(t)
	budget := NewBudget(DefaultBudgetBytes)
	c := NewCache(svc, budget)
	sg := alloc.NewStackGroup(0, len(reqs), true)

	want := make([][]isa.TraceOp, len(reqs))
	for i := range reqs {
		want[i] = freshTrace(t, svc, &reqs[i], i, sg.StackBase(i), alloc.PolicySIMR, 8)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for i := range reqs {
					got, err := c.Request(&reqs[i], i, sg.StackBase(i), alloc.PolicySIMR, 64, 8)
					if err != nil {
						errs[w] = err
						return
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Errorf("worker %d round %d req %d: trace differs", w, round, i)
						return
					}
				}
				if w == 0 && round == 1 {
					c.Drop()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := budget.left.Load(); got != DefaultBudgetBytes {
		t.Fatalf("budget after concurrent Drop = %d, want %d (no leak, no double-release)", got, int64(DefaultBudgetBytes))
	}
}
