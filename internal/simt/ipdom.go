package simt

import (
	"fmt"
	"sort"

	"simr/internal/isa"
)

// ipdomEntry is one reconvergence stack entry: the threads of mask run
// until each reaches the reconvergence key (rpc at rsp) or finishes.
type ipdomEntry struct {
	mask     uint64
	rpc, rsp uint64
	hasR     bool
}

// RunIPDOM merges per-thread traces with an ideal stack-based immediate
// post-dominator scheme, the reference the paper compares MinSP-PC
// against. reconv maps each conditional branch's global PC to its
// immediate post-dominator's PC (see isa.Program.BranchReconv).
// batchSize <= 0 defaults to the number of traces. The result is
// freshly allocated and owned by the caller.
func RunIPDOM(traces [][]isa.TraceOp, batchSize int, reconv map[uint64]uint64) (*Result, error) {
	return RunIPDOMWith(nil, traces, batchSize, reconv)
}

// RunIPDOMWith is RunIPDOM drawing all working storage from sc (nil sc
// allocates fresh). The returned Result aliases the scratch and is
// valid only until the next run on the same scratch.
func RunIPDOMWith(sc *Scratch, traces [][]isa.TraceOp, batchSize int, reconv map[uint64]uint64) (*Result, error) {
	if len(traces) == 0 || len(traces) > MaxBatch {
		return nil, fmt.Errorf("simt: batch of %d traces unsupported", len(traces))
	}
	if batchSize <= 0 {
		batchSize = len(traces)
	}
	st := newExecutorState(sc, traces)

	all := uint64(0)
	for t := range traces {
		all |= 1 << uint(t)
	}
	stack := append(st.sc.stack[:0], ipdomEntry{mask: all})

	threads := st.takeThreads(len(traces))
	for len(stack) > 0 {
		e := &stack[len(stack)-1]

		// Threads in this entry that are still executable: live and not
		// parked at the entry's reconvergence key.
		threads = threads[:0]
		for t := range traces {
			if e.mask&(1<<uint(t)) == 0 || st.done(t) {
				continue
			}
			if e.hasR {
				if k := st.curKey(t); k.pc == e.rpc && k.sp == e.rsp {
					continue // waiting at the reconvergence point
				}
			}
			threads = append(threads, t)
		}
		if len(threads) == 0 {
			stack = stack[:len(stack)-1]
			continue
		}

		// In a well-formed stack execution all executable threads of the
		// top entry share one key except immediately after a divergent
		// branch, which is handled below; a multi-key state here means
		// the entry was created from threads on different paths (e.g.
		// naive batching of different APIs): split it by key order.
		uniform := true
		k0 := st.curKey(threads[0])
		for _, t := range threads[1:] {
			if st.curKey(t) != k0 {
				uniform = false
				break
			}
		}
		if !uniform {
			keys := map[key][]int{}
			for _, t := range threads {
				k := st.curKey(t)
				keys[k] = append(keys[k], t)
			}
			ordered := make([]key, 0, len(keys))
			for k := range keys {
				ordered = append(ordered, k)
			}
			sort.Slice(ordered, func(i, j int) bool { return keyLess(ordered[i], ordered[j]) })
			// Push in reverse so the lowest key executes first.
			for i := len(ordered) - 1; i >= 0; i-- {
				var m uint64
				for _, t := range keys[ordered[i]] {
					m |= 1 << uint(t)
				}
				stack = append(stack, ipdomEntry{mask: m, rpc: e.rpc, rsp: e.rsp, hasR: e.hasR})
			}
			// The parent keeps its mask; its threads are now covered by
			// children, and it resumes once they pop.
			continue
		}

		idx, err := st.step(threads)
		if err != nil {
			return nil, err
		}
		op := &st.ops[idx]
		if op.Class == isa.Branch && op.TakenMask != 0 && op.TakenMask != op.Mask {
			// Divergent branch: split into taken and not-taken paths
			// reconverging at the branch's immediate post-dominator.
			rpc, ok := reconv[op.PC]
			if !ok {
				return nil, fmt.Errorf("simt: no reconvergence point recorded for branch at pc=%#x", op.PC)
			}
			rsp := st.traces[threads[0]][st.cursor[threads[0]]-1].SP
			taken := op.TakenMask
			fall := op.Mask &^ op.TakenMask
			stack = append(stack,
				ipdomEntry{mask: fall, rpc: rpc, rsp: rsp, hasR: true},
				ipdomEntry{mask: taken, rpc: rpc, rsp: rsp, hasR: true},
			)
		}
	}

	st.sc.stack = stack[:0] // keep any growth for the next run
	return st.result(batchSize), nil
}
