package simt

import (
	"math/rand"
	"testing"

	"simr/internal/isa"
)

func benchTraces(b *testing.B, n int) ([][]isa.TraceOp, map[uint64]uint64) {
	b.Helper()
	bb := isa.NewProgram("bench")
	bb.Loop(func(c *isa.Ctx) int { return 40 + int(c.Arg0(0)%16) }, func(bb *isa.Builder) {
		bb.OpsChain(isa.IAlu, 4, 1)
		bb.StackStore(24)
		bb.If(func(c *isa.Ctx) bool { return c.Rand.Intn(4) == 0 },
			func(bb *isa.Builder) { bb.Ops(isa.FAlu, 2) }, nil)
	})
	p := bb.Build()
	if _, err := isa.Link(0x1000, p); err != nil {
		b.Fatal(err)
	}
	traces := make([][]isa.TraceOp, n)
	for i := range traces {
		ctx := &isa.Ctx{
			Arg:       []uint64{uint64(i)},
			StackBase: 1 << 30,
			Heap:      &bumpHeap{},
			Rand:      rand.New(rand.NewSource(int64(i))),
			TID:       i,
		}
		ops, err := isa.Execute(p, ctx, 0)
		if err != nil {
			b.Fatal(err)
		}
		traces[i] = ops
	}
	return traces, p.BranchReconv()
}

func BenchmarkMinSPPC32(b *testing.B) {
	traces, _ := benchTraces(b, 32)
	scalar := 0
	for _, tr := range traces {
		scalar += len(tr)
	}
	b.SetBytes(int64(scalar))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMinSPPC(traces, 32, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPDOM32(b *testing.B) {
	traces, rec := benchTraces(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunIPDOM(traces, 32, rec); err != nil {
			b.Fatal(err)
		}
	}
}
