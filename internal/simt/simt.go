// Package simt implements the RPU's lock-step batch execution over
// per-request scalar traces: the stack-less MinSP-PC reconvergence
// heuristic the paper adopts (Collange; Collins et al.), the ideal
// stack-based IPDOM scheme used as its reference, active-mask
// generation, SIMT efficiency accounting and the spin-timeout
// multi-path mechanism that prevents SIMT-induced livelock.
package simt

import (
	"fmt"
	"math/bits"
	"unsafe"

	"simr/internal/isa"
)

// MaxBatch is the widest supported batch (active masks are uint64).
const MaxBatch = 64

// BatchOp is one lock-step instruction issued for a batch — the RPU
// analogue of a warp instruction, with its active mask propagated down
// the pipeline.
type BatchOp struct {
	// PC is the instruction's global program counter.
	PC uint64
	// Mask has bit t set when thread t executes this op.
	Mask uint64
	// TakenMask has bit t set when thread t's branch was taken.
	TakenMask uint64
	// Addrs holds per-thread virtual addresses for memory classes
	// (len = batch width, valid where Mask is set); nil otherwise.
	Addrs []uint64
	// Dep1 and Dep2 are batch-op indices of producers (-1 when unused).
	Dep1, Dep2 int32
	// Class is the functional class.
	Class isa.Class
	// Size is the access size for memory classes.
	Size uint8
}

// ActiveLanes returns the number of set bits in the active mask.
func (op *BatchOp) ActiveLanes() int { return popcount(op.Mask) }

func popcount(m uint64) int { return bits.OnesCount64(m) }

// Result is the outcome of lock-step execution of one batch.
type Result struct {
	// Ops is the merged batch instruction stream.
	Ops []BatchOp
	// ScalarOps is the total dynamic instruction count over all threads.
	ScalarOps int
	// BatchSize is the efficiency denominator (the hardware batch
	// width, which may exceed the number of live threads).
	BatchSize int
	// PathSwitches counts spin-timeout multi-path preemptions.
	PathSwitches int
}

// Clone returns a deep copy of the result that shares no memory with
// the receiver. Results produced through the *With executors alias
// their Scratch (Ops and every BatchOp.Addrs) and are invalidated by
// the next run on the same scratch; consumers that must outlive that —
// caching layers, deferred pipelines — clone first. The Addrs vectors
// are flattened into one arena so the copy costs two allocations
// regardless of op count.
func (r *Result) Clone() *Result {
	c := &Result{
		Ops:          make([]BatchOp, len(r.Ops)),
		ScalarOps:    r.ScalarOps,
		BatchSize:    r.BatchSize,
		PathSwitches: r.PathSwitches,
	}
	copy(c.Ops, r.Ops)
	words := 0
	for i := range r.Ops {
		words += len(r.Ops[i].Addrs)
	}
	arena := make([]uint64, 0, words)
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Addrs == nil {
			continue
		}
		l := len(arena)
		arena = append(arena, op.Addrs...)
		op.Addrs = arena[l:len(arena):len(arena)]
	}
	return c
}

// RetainedBytes returns the memory a cloned copy of the result would
// retain: the op array plus the flattened per-thread address vectors.
func (r *Result) RetainedBytes() int64 {
	words := 0
	for i := range r.Ops {
		words += len(r.Ops[i].Addrs)
	}
	return int64(unsafe.Sizeof(BatchOp{}))*int64(len(r.Ops)) + 8*int64(words)
}

// Efficiency returns SIMT control efficiency:
// #scalar-instructions / (#batch-instructions × batch-size).
func (r *Result) Efficiency() float64 {
	if len(r.Ops) == 0 {
		return 0
	}
	return float64(r.ScalarOps) / (float64(len(r.Ops)) * float64(r.BatchSize))
}

// SpinConfig tunes the SIMT-induced-livelock mitigation (paper §III-A):
// when a waiting thread's PC has not advanced for Window batch ops and
// at least MinAtomics atomic instructions were decoded in that window —
// the signature of other threads spinning on a lock — the waiting
// thread's path is granted execution for Grant ops.
type SpinConfig struct {
	Window     int
	MinAtomics int
	Grant      int
}

// DefaultSpin is the configuration used by the RPU driver.
var DefaultSpin = SpinConfig{Window: 64, MinAtomics: 8, Grant: 32}

type key struct {
	sp, pc uint64
}

func keyLess(a, b key) bool {
	// MinSP first: the deepest function call wins. TraceOp.SP records
	// stack depth, so deeper means larger.
	if a.sp != b.sp {
		return a.sp > b.sp
	}
	return a.pc < b.pc
}

// Scratch holds the lock-step executors' working storage so repeated
// runs (one per batch, thousands per study cell) reuse buffers instead
// of reallocating them. The zero value is ready to use; a Scratch must
// not be shared between goroutines. A Result produced through a
// *With executor aliases the scratch (its Ops slice and their Addrs)
// and is valid only until the next run on the same scratch — consume
// or copy it first.
type Scratch struct {
	cursor  []int
	b2i     [][]int32
	b2iBuf  []int32 // flat arena backing the per-thread b2i slices
	addrBuf []uint64
	ops     []BatchOp
	threads []int
	stack   []ipdomEntry
}

// executorState holds the shared per-thread cursor machinery.
type executorState struct {
	traces [][]isa.TraceOp
	cursor []int
	b2i    [][]int32 // scalar index -> batch op index, per thread
	ops    []BatchOp
	sc     *Scratch
	scalar int
}

func newExecutorState(sc *Scratch, traces [][]isa.TraceOp) *executorState {
	if sc == nil {
		sc = &Scratch{}
	}
	n := len(traces)
	if cap(sc.cursor) < n {
		sc.cursor = make([]int, n)
	}
	if cap(sc.b2i) < n {
		sc.b2i = make([][]int32, n)
	}
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	if cap(sc.b2iBuf) < total {
		sc.b2iBuf = make([]int32, total)
	}
	st := &executorState{
		traces: traces,
		cursor: sc.cursor[:n],
		b2i:    sc.b2i[:n],
		ops:    sc.ops[:0],
		sc:     sc,
		scalar: total,
	}
	for t := range st.cursor {
		st.cursor[t] = 0
	}
	// b2i entries need no zeroing: an entry is read (as a dep target)
	// only after the same run wrote it, since deps point backwards
	// within a thread's trace.
	off := 0
	for t, tr := range traces {
		st.b2i[t] = sc.b2iBuf[off : off+len(tr) : off+len(tr)]
		off += len(tr)
	}
	sc.addrBuf = sc.addrBuf[:0]
	return st
}

// allocAddrs carves a zeroed n-word Addrs slice out of the scratch
// arena. When the current chunk is full a fresh one is started; slices
// handed out earlier keep pointing into the old chunk, whose values
// are never rewritten.
func (st *executorState) allocAddrs(n int) []uint64 {
	sc := st.sc
	if cap(sc.addrBuf)-len(sc.addrBuf) < n {
		c := 2 * cap(sc.addrBuf)
		if c < 1<<14 {
			c = 1 << 14
		}
		if c < n {
			c = n
		}
		sc.addrBuf = make([]uint64, 0, c)
	}
	l := len(sc.addrBuf)
	sc.addrBuf = sc.addrBuf[:l+n]
	a := sc.addrBuf[l : l+n : l+n]
	for i := range a {
		a[i] = 0
	}
	return a
}

// takeThreads returns the scratch's empty thread-selection buffer.
func (st *executorState) takeThreads(n int) []int {
	if cap(st.sc.threads) < n {
		st.sc.threads = make([]int, 0, n)
	}
	return st.sc.threads[:0]
}

func (st *executorState) done(t int) bool { return st.cursor[t] >= len(st.traces[t]) }

func (st *executorState) cur(t int) *isa.TraceOp { return &st.traces[t][st.cursor[t]] }

func (st *executorState) curKey(t int) key {
	op := st.cur(t)
	return key{sp: op.SP, pc: op.PC}
}

// step executes one lock-step op for the given thread set and returns
// the emitted op's index.
func (st *executorState) step(threads []int) (int, error) {
	first := st.cur(threads[0])
	op := BatchOp{
		PC:    first.PC,
		Class: first.Class,
		Size:  first.Size,
		Dep1:  -1,
		Dep2:  -1,
	}
	if first.Class.IsMem() {
		op.Addrs = st.allocAddrs(len(st.traces))
	}
	idx := len(st.ops)
	for _, t := range threads {
		cur := st.cur(t)
		if cur.Class != first.Class {
			return 0, fmt.Errorf("simt: class mismatch at pc=%#x: thread %d has %v, thread %d has %v",
				first.PC, threads[0], first.Class, t, cur.Class)
		}
		op.Mask |= 1 << uint(t)
		if cur.Taken {
			op.TakenMask |= 1 << uint(t)
		}
		if op.Addrs != nil {
			op.Addrs[t] = cur.Addr
		}
		if cur.Dep1 >= 0 {
			if d := st.b2i[t][cur.Dep1]; d > op.Dep1 {
				op.Dep1 = d
			}
		}
		if cur.Dep2 >= 0 {
			if d := st.b2i[t][cur.Dep2]; d > op.Dep2 {
				op.Dep2 = d
			}
		}
		st.b2i[t][st.cursor[t]] = int32(idx)
		st.cursor[t]++
	}
	st.ops = append(st.ops, op)
	return idx, nil
}

func (st *executorState) result(batchSize int) *Result {
	st.sc.ops = st.ops // keep any growth for the next run
	return &Result{Ops: st.ops, ScalarOps: st.scalar, BatchSize: batchSize}
}

// RunMinSPPC merges the per-thread traces with the stack-less MinSP-PC
// policy: at every step the live thread with the deepest stack (lowest
// SP), breaking ties by lowest PC, selects the path; every live thread
// at the same (SP, PC) joins the active mask. spin may be nil to
// disable the livelock mitigation. batchSize <= 0 defaults to the
// number of traces. The result is freshly allocated and owned by the
// caller.
func RunMinSPPC(traces [][]isa.TraceOp, batchSize int, spin *SpinConfig) (*Result, error) {
	return RunMinSPPCWith(nil, traces, batchSize, spin)
}

// RunMinSPPCWith is RunMinSPPC drawing all working storage from sc
// (nil sc allocates fresh). The returned Result aliases the scratch
// and is valid only until the next run on the same scratch.
func RunMinSPPCWith(sc *Scratch, traces [][]isa.TraceOp, batchSize int, spin *SpinConfig) (*Result, error) {
	if len(traces) == 0 || len(traces) > MaxBatch {
		return nil, fmt.Errorf("simt: batch of %d traces unsupported", len(traces))
	}
	if batchSize <= 0 {
		batchSize = len(traces)
	}
	st := newExecutorState(sc, traces)

	// Spin-detection state: the stuck key is the minimum key among
	// threads that were NOT selected; if it survives unchanged across a
	// window of atomic-bearing ops, it gets a grant.
	var stuck key
	haveStuck := false
	stuckRun, windowAtomics, grant, switches := 0, 0, 0, 0

	threads := st.takeThreads(len(traces))
	for {
		haveBest := false
		var best key
		for t := range traces {
			if st.done(t) {
				continue
			}
			if k := st.curKey(t); !haveBest || keyLess(k, best) {
				haveBest = true
				best = k
			}
		}
		if !haveBest {
			break // all threads done
		}

		sel := best
		if spin != nil && grant > 0 && haveStuck && stuck != best {
			sel = stuck
		} else if spin != nil && haveStuck && stuckRun >= spin.Window && windowAtomics >= spin.MinAtomics && stuck != best {
			sel = stuck
			grant = spin.Grant
			switches++
			stuckRun, windowAtomics = 0, 0
		}
		if grant > 0 {
			grant--
		}

		threads = threads[:0]
		for t := range traces {
			if !st.done(t) && st.curKey(t) == sel {
				threads = append(threads, t)
			}
		}
		if len(threads) == 0 {
			// A stale grant target advanced past its key; fall back to
			// the regular MinSP-PC winner.
			sel = best
			for t := range traces {
				if !st.done(t) && st.curKey(t) == sel {
					threads = append(threads, t)
				}
			}
		}
		idx, err := st.step(threads)
		if err != nil {
			return nil, err
		}
		if st.ops[idx].Class == isa.Atomic {
			windowAtomics++
		}

		// Update the stuck candidate: minimum key among live threads
		// that did NOT execute this op (the executed threads have
		// advanced, so their keys must not be compared against sel).
		executed := uint64(0)
		for _, t := range threads {
			executed |= 1 << uint(t)
		}
		haveNew := false
		var newStuck key
		for t := range traces {
			if st.done(t) || executed&(1<<uint(t)) != 0 {
				continue
			}
			k := st.curKey(t)
			if !haveNew || keyLess(k, newStuck) {
				haveNew = true
				newStuck = k
			}
		}
		if haveNew && haveStuck && newStuck == stuck {
			stuckRun++
		} else {
			stuckRun = 0
			windowAtomics = 0
		}
		stuck, haveStuck = newStuck, haveNew
	}

	res := st.result(batchSize)
	res.PathSwitches = switches
	return res, nil
}
