package simt

import (
	"reflect"
	"testing"
	"unsafe"
)

func cloneFixture() *Result {
	addrs := []uint64{0x100, 0x108, 0x110, 0x200}
	return &Result{
		Ops: []BatchOp{
			{PC: 0x40, Mask: 0b11, Dep1: -1, Dep2: -1},
			{PC: 0x44, Mask: 0b11, Addrs: addrs[0:3:3], Dep1: 0, Dep2: -1, Size: 8},
			{PC: 0x48, Mask: 0b01, Addrs: addrs[3:4:4], Dep1: 1, Dep2: -1, Size: 4},
		},
		ScalarOps:    5,
		BatchSize:    32,
		PathSwitches: 1,
	}
}

// TestResultClone verifies the cache's ownership contract: a clone
// equals its source field for field but shares no memory with it, so
// reusing the source's Scratch cannot corrupt the clone.
func TestResultClone(t *testing.T) {
	src := cloneFixture()
	c := src.Clone()
	if !reflect.DeepEqual(src, c) {
		t.Fatalf("clone differs from source:\n%+v\n%+v", src, c)
	}
	if &src.Ops[0] == &c.Ops[0] {
		t.Fatal("clone shares the Ops array")
	}
	for i := range src.Ops {
		if src.Ops[i].Addrs != nil && &src.Ops[i].Addrs[0] == &c.Ops[i].Addrs[0] {
			t.Fatalf("op %d shares its Addrs backing array", i)
		}
	}
	// Scratch-reuse simulation: scribbling over the source must leave
	// the clone untouched.
	want := src.Clone()
	for i := range src.Ops {
		src.Ops[i].PC = 0xdead
		for j := range src.Ops[i].Addrs {
			src.Ops[i].Addrs[j] = 0xdead
		}
	}
	if !reflect.DeepEqual(want, c) {
		t.Fatal("mutating the source changed the clone")
	}

	// If Result grows a field, Clone (and this test) must learn about
	// it; a stale Clone would silently drop data from cached streams.
	if n := reflect.TypeOf(Result{}).NumField(); n != 4 {
		t.Fatalf("Result has %d fields; update Clone and RetainedBytes for the new ones", n)
	}
}

func TestResultRetainedBytes(t *testing.T) {
	src := cloneFixture()
	want := int64(unsafe.Sizeof(BatchOp{}))*3 + 8*4
	if got := src.RetainedBytes(); got != want {
		t.Fatalf("RetainedBytes = %d, want %d", got, want)
	}
	if got := src.Clone().RetainedBytes(); got != want {
		t.Fatalf("clone RetainedBytes = %d, want %d", got, want)
	}
}
