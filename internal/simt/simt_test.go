package simt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simr/internal/isa"
)

type bumpHeap struct{ next uint64 }

func (h *bumpHeap) Alloc(n int) uint64 {
	b := h.next
	h.next += uint64(n)
	return b
}

// buildDivergent builds a program with a data-dependent branch and a
// variable-length loop, the two divergence sources.
func buildDivergent(t *testing.T) (*isa.Program, map[uint64]uint64) {
	t.Helper()
	b := isa.NewProgram("div")
	b.Ops(isa.IAlu, 3)
	b.If(func(c *isa.Ctx) bool { return c.Arg0(0)%2 == 0 },
		func(b *isa.Builder) { b.Ops(isa.IAlu, 6) },
		func(b *isa.Builder) { b.Ops(isa.FAlu, 2) })
	b.Loop(func(c *isa.Ctx) int { return int(c.Arg0(1)) }, func(b *isa.Builder) {
		b.Ops(isa.IAlu, 2)
	})
	b.Ops(isa.IAlu, 2)
	p := b.Build()
	if _, err := isa.Link(0x4000, p); err != nil {
		t.Fatal(err)
	}
	return p, p.BranchReconv()
}

func traceN(t *testing.T, p *isa.Program, args [][]uint64) [][]isa.TraceOp {
	t.Helper()
	traces := make([][]isa.TraceOp, len(args))
	for i, a := range args {
		ctx := &isa.Ctx{
			Arg:       a,
			StackBase: 1<<30 + uint64(i+1)<<20,
			Heap:      &bumpHeap{next: 1<<36 + uint64(i)<<24},
			Rand:      rand.New(rand.NewSource(int64(i))),
			TID:       i,
		}
		ops, err := isa.Execute(p, ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = ops
	}
	return traces
}

// conservation checks every scalar op was executed exactly once.
func conservation(t *testing.T, traces [][]isa.TraceOp, res *Result) {
	t.Helper()
	scalar := 0
	for _, tr := range traces {
		scalar += len(tr)
	}
	if res.ScalarOps != scalar {
		t.Fatalf("scalar count mismatch: %d vs %d", res.ScalarOps, scalar)
	}
	got := 0
	for i := range res.Ops {
		got += res.Ops[i].ActiveLanes()
	}
	if got != scalar {
		t.Fatalf("lane-op conservation failed: %d executed vs %d traced", got, scalar)
	}
	// Per-thread order: reconstruct each thread's sequence from the
	// batch stream and compare PCs.
	for tid, tr := range traces {
		j := 0
		for i := range res.Ops {
			if res.Ops[i].Mask&(1<<uint(tid)) == 0 {
				continue
			}
			if res.Ops[i].PC != tr[j].PC {
				t.Fatalf("thread %d op %d: pc %#x, want %#x", tid, j, res.Ops[i].PC, tr[j].PC)
			}
			j++
		}
		if j != len(tr) {
			t.Fatalf("thread %d executed %d of %d ops", tid, j, len(tr))
		}
	}
}

func TestUniformBatchIsFullyEfficient(t *testing.T) {
	p, rec := buildDivergent(t)
	args := [][]uint64{{0, 3}, {0, 3}, {0, 3}, {0, 3}}
	traces := traceN(t, p, args)

	for name, run := range map[string]func() (*Result, error){
		"minsppc": func() (*Result, error) { return RunMinSPPC(traces, 0, nil) },
		"ipdom":   func() (*Result, error) { return RunIPDOM(traces, 0, rec) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		conservation(t, traces, res)
		if eff := res.Efficiency(); eff != 1.0 {
			t.Fatalf("%s: uniform batch efficiency %v, want 1.0", name, eff)
		}
	}
}

func TestDivergentBatchReconverges(t *testing.T) {
	p, rec := buildDivergent(t)
	args := [][]uint64{{0, 2}, {1, 5}, {0, 7}, {1, 2}}
	traces := traceN(t, p, args)

	for name, run := range map[string]func() (*Result, error){
		"minsppc": func() (*Result, error) { return RunMinSPPC(traces, 0, nil) },
		"ipdom":   func() (*Result, error) { return RunIPDOM(traces, 0, rec) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		conservation(t, traces, res)
		eff := res.Efficiency()
		if eff <= 0.3 || eff >= 1.0 {
			t.Fatalf("%s: efficiency %v outside (0.3, 1.0)", name, eff)
		}
		// The trailing straight-line code must reconverge: the last op
		// must have all four threads active.
		last := res.Ops[len(res.Ops)-1]
		if last.Mask != 0xF {
			t.Fatalf("%s: final op mask %#x, want 0xF (reconverged)", name, last.Mask)
		}
	}
}

func TestDisjointProgramsSerialize(t *testing.T) {
	// Two different programs (e.g. two APIs) in one batch: no shared
	// PCs, so efficiency must be the serialization floor.
	b1 := isa.NewProgram("a")
	b1.Ops(isa.IAlu, 50)
	pa := b1.Build()
	b2 := isa.NewProgram("b")
	b2.Ops(isa.FAlu, 50)
	pb := b2.Build()
	if _, err := isa.Link(0x1000, pa, pb); err != nil {
		t.Fatal(err)
	}

	mk := func(p *isa.Program, tid int) []isa.TraceOp {
		ctx := &isa.Ctx{StackBase: 1 << 30, Heap: &bumpHeap{}, Rand: rand.New(rand.NewSource(0)), TID: tid}
		ops, err := isa.Execute(p, ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ops
	}
	traces := [][]isa.TraceOp{mk(pa, 0), mk(pb, 1), mk(pa, 2), mk(pb, 3)}

	res, err := RunMinSPPC(traces, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, traces, res)
	if eff := res.Efficiency(); eff != 0.5 {
		t.Fatalf("two disjoint programs half-half: efficiency %v, want 0.5", eff)
	}
}

func TestBatchSizeDenominator(t *testing.T) {
	p, _ := buildDivergent(t)
	traces := traceN(t, p, [][]uint64{{0, 2}, {0, 2}})
	res, err := RunMinSPPC(traces, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 32 {
		t.Fatalf("batch size %d", res.BatchSize)
	}
	if eff := res.Efficiency(); eff > 2.0/32.0+1e-9 {
		t.Fatalf("efficiency %v exceeds occupancy bound", eff)
	}
}

func TestMemAddrsCarried(t *testing.T) {
	b := isa.NewProgram("m")
	b.LoadAt(8, func(c *isa.Ctx) uint64 { return 0x1000 + uint64(c.TID)*8 })
	p := b.Build()
	if _, err := isa.Link(0, p); err != nil {
		t.Fatal(err)
	}
	traces := traceN(t, p, [][]uint64{{}, {}, {}})
	res, err := RunMinSPPC(traces, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var loadOp *BatchOp
	for i := range res.Ops {
		if res.Ops[i].Class == isa.Load {
			loadOp = &res.Ops[i]
		}
	}
	if loadOp == nil {
		t.Fatal("no load in batch stream")
	}
	for tid := 0; tid < 3; tid++ {
		want := uint64(0x1000 + tid*8)
		if loadOp.Addrs[tid] != want {
			t.Fatalf("lane %d addr %#x, want %#x", tid, loadOp.Addrs[tid], want)
		}
	}
}

// Property test: MinSP-PC and IPDOM both conserve scalar ops and
// produce efficiencies in (0, 1] for arbitrary divergent arguments.
func TestQuickExecutorsConserve(t *testing.T) {
	p, rec := buildDivergent(t)
	f := func(a, b, c, d uint8) bool {
		args := [][]uint64{
			{uint64(a % 2), uint64(a % 9)},
			{uint64(b % 2), uint64(b % 9)},
			{uint64(c % 2), uint64(c % 9)},
			{uint64(d % 2), uint64(d % 9)},
		}
		traces := traceN(t, p, args)
		r1, err := RunMinSPPC(traces, 0, nil)
		if err != nil {
			return false
		}
		r2, err := RunIPDOM(traces, 0, rec)
		if err != nil {
			return false
		}
		for _, r := range []*Result{r1, r2} {
			total := 0
			for i := range r.Ops {
				total += r.Ops[i].ActiveLanes()
			}
			if total != r.ScalarOps {
				return false
			}
			if e := r.Efficiency(); e <= 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpinTimeoutSwitchesPaths(t *testing.T) {
	// One thread takes a long atomic-spin path while another waits on a
	// short path at a higher PC; the mitigation should grant the waiter.
	b := isa.NewProgram("spin")
	b.If(func(c *isa.Ctx) bool { return c.Arg0(0) == 1 },
		func(b *isa.Builder) {
			b.LoopN(200, func(b *isa.Builder) {
				b.AtomicAt(8, func(*isa.Ctx) uint64 { return 0x9000 })
				b.Ops(isa.IAlu, 1)
			})
		},
		func(b *isa.Builder) { b.Ops(isa.IAlu, 2) })
	b.Ops(isa.IAlu, 4)
	p := b.Build()
	if _, err := isa.Link(0x2000, p); err != nil {
		t.Fatal(err)
	}
	traces := traceN(t, p, [][]uint64{{1}, {0}})

	spin := SpinConfig{Window: 16, MinAtomics: 4, Grant: 8}
	res, err := RunMinSPPC(traces, 0, &spin)
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, traces, res)
	if res.PathSwitches == 0 {
		t.Fatal("expected at least one spin-timeout path switch")
	}

	// Without the mitigation: no switches, same conservation.
	res2, err := RunMinSPPC(traces, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PathSwitches != 0 {
		t.Fatal("switches without spin config")
	}
}
