package simt

import (
	"math/rand"
	"testing"

	"simr/internal/isa"
)

func TestBatchTooWideRejected(t *testing.T) {
	traces := make([][]isa.TraceOp, MaxBatch+1)
	for i := range traces {
		traces[i] = []isa.TraceOp{{PC: 4, Class: isa.IAlu, Dep1: -1, Dep2: -1}}
	}
	if _, err := RunMinSPPC(traces, 0, nil); err == nil {
		t.Fatal("expected error for oversized batch")
	}
	if _, err := RunIPDOM(traces, 0, nil); err == nil {
		t.Fatal("expected error for oversized batch (ipdom)")
	}
	if _, err := RunMinSPPC(nil, 0, nil); err == nil {
		t.Fatal("expected error for empty batch")
	}
}

func TestClassMismatchDetected(t *testing.T) {
	traces := [][]isa.TraceOp{
		{{PC: 4, SP: 0, Class: isa.IAlu, Dep1: -1, Dep2: -1}},
		{{PC: 4, SP: 0, Class: isa.FAlu, Dep1: -1, Dep2: -1}},
	}
	if _, err := RunMinSPPC(traces, 0, nil); err == nil {
		t.Fatal("expected class-mismatch error")
	}
}

func TestIPDOMMissingReconvFails(t *testing.T) {
	// A divergent branch with no reconvergence entry must error.
	traces := [][]isa.TraceOp{
		{
			{PC: 4, Class: isa.Branch, Taken: true, Dep1: -1, Dep2: -1},
			{PC: 8, Class: isa.IAlu, Dep1: -1, Dep2: -1},
		},
		{
			{PC: 4, Class: isa.Branch, Taken: false, Dep1: -1, Dep2: -1},
			{PC: 12, Class: isa.IAlu, Dep1: -1, Dep2: -1},
		},
	}
	if _, err := RunIPDOM(traces, 0, map[uint64]uint64{}); err == nil {
		t.Fatal("expected missing-reconvergence error")
	}
	if _, err := RunIPDOM(traces, 0, map[uint64]uint64{4: 16}); err != nil {
		t.Fatalf("with reconv map: %v", err)
	}
}

// buildNested builds doubly nested data-dependent loops — the stress
// case for reconvergence bookkeeping.
func buildNested(t *testing.T) (*isa.Program, map[uint64]uint64) {
	t.Helper()
	b := isa.NewProgram("nested")
	b.Loop(func(c *isa.Ctx) int { return int(c.Arg0(0)) }, func(b *isa.Builder) {
		b.Ops(isa.IAlu, 1)
		b.Loop(func(c *isa.Ctx) int { return int(c.Arg0(1)) }, func(b *isa.Builder) {
			b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(2) == 0 },
				func(b *isa.Builder) { b.Ops(isa.FAlu, 1) },
				func(b *isa.Builder) { b.Ops(isa.Simd, 2) })
		})
	})
	b.Ops(isa.IAlu, 3)
	p := b.Build()
	if _, err := isa.Link(0x8000, p); err != nil {
		t.Fatal(err)
	}
	return p, p.BranchReconv()
}

func TestNestedDivergenceBothExecutors(t *testing.T) {
	p, rec := buildNested(t)
	traces := make([][]isa.TraceOp, 8)
	for i := range traces {
		ctx := &isa.Ctx{
			Arg:       []uint64{uint64(1 + i%4), uint64(1 + (i*7)%5)},
			StackBase: 1 << 30,
			Heap:      &bumpHeap{},
			Rand:      rand.New(rand.NewSource(int64(i))),
			TID:       i,
		}
		ops, err := isa.Execute(p, ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = ops
	}
	a, err := RunMinSPPC(traces, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, traces, a)
	b, err := RunIPDOM(traces, 0, rec)
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, traces, b)
	// Structured programs: both schemes find identical reconvergence.
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("minsp-pc %d ops vs ipdom %d ops", len(a.Ops), len(b.Ops))
	}
	if a.Efficiency() != b.Efficiency() {
		t.Fatalf("efficiencies differ: %v vs %v", a.Efficiency(), b.Efficiency())
	}
}

func TestDepsMapToBatchIndices(t *testing.T) {
	b := isa.NewProgram("d")
	b.OpsChain(isa.IAlu, 6, 1)
	p := b.Build()
	if _, err := isa.Link(0, p); err != nil {
		t.Fatal(err)
	}
	traces := traceN(t, p, [][]uint64{{}, {}})
	res, err := RunMinSPPC(traces, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ops {
		op := &res.Ops[i]
		if op.Dep1 >= int32(i) || op.Dep2 >= int32(i) {
			t.Fatalf("op %d has forward batch dep %d/%d", i, op.Dep1, op.Dep2)
		}
		if i > 0 && op.Class == isa.IAlu && op.Dep1 < 0 && i >= 2 {
			// ops 2.. of the chain must carry a dependency
			if i >= 2 && i < 6 {
				t.Fatalf("chain op %d lost its dependency", i)
			}
		}
	}
}

func TestEfficiencyAccountsEmptyResult(t *testing.T) {
	r := &Result{BatchSize: 32}
	if r.Efficiency() != 0 {
		t.Fatal("empty result efficiency should be 0")
	}
}

func TestActiveLanes(t *testing.T) {
	op := BatchOp{Mask: 0b1011}
	if op.ActiveLanes() != 3 {
		t.Fatalf("lanes %d", op.ActiveLanes())
	}
}

func TestIPDOMDefaultBatchSizeAndMultiKeySplit(t *testing.T) {
	// Two different programs in one batch force the IPDOM executor's
	// multi-key split path (threads that never shared a PC).
	b1 := isa.NewProgram("x")
	b1.Ops(isa.IAlu, 20)
	pa := b1.Build()
	b2 := isa.NewProgram("y")
	b2.Ops(isa.FAlu, 20)
	pb := b2.Build()
	if _, err := isa.Link(0x3000, pa, pb); err != nil {
		t.Fatal(err)
	}
	mk := func(p *isa.Program, tid int) []isa.TraceOp {
		ctx := &isa.Ctx{StackBase: 1 << 30, Heap: &bumpHeap{}, Rand: rand.New(rand.NewSource(0)), TID: tid}
		ops, err := isa.Execute(p, ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ops
	}
	traces := [][]isa.TraceOp{mk(pa, 0), mk(pb, 1)}
	res, err := RunIPDOM(traces, 0, map[uint64]uint64{})
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, traces, res)
	if res.BatchSize != 2 {
		t.Fatalf("default batch size %d", res.BatchSize)
	}
	if eff := res.Efficiency(); eff != 0.5 {
		t.Fatalf("disjoint programs efficiency %v, want 0.5", eff)
	}
}

func TestIPDOMCallDepthTieBreak(t *testing.T) {
	// keyLess must prefer the deeper call when PCs compare against
	// different frames: a callee's ops (deeper) win over the caller's.
	f := isa.NewFunc("leaf")
	f.Ops(isa.IAlu, 4)
	leaf := f.Build()
	b := isa.NewProgram("deep")
	b.If(func(c *isa.Ctx) bool { return c.Arg0(0) == 1 },
		func(b *isa.Builder) { b.Call(leaf) },
		func(b *isa.Builder) { b.Ops(isa.IAlu, 2) })
	b.Ops(isa.IAlu, 2)
	p := b.Build()
	if _, err := isa.Link(0x6000, p); err != nil {
		t.Fatal(err)
	}
	traces := traceN(t, p, [][]uint64{{1}, {0}})
	res, err := RunMinSPPC(traces, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	conservation(t, traces, res)
	// The final straight-line ops must reconverge both threads.
	if res.Ops[len(res.Ops)-1].Mask != 0x3 {
		t.Fatal("call/no-call paths did not reconverge")
	}
	// keyLess direct checks: deeper (larger depth) wins; PC breaks ties.
	if !keyLess(key{sp: 128, pc: 100}, key{sp: 0, pc: 4}) {
		t.Fatal("deeper call must be selected first")
	}
	if !keyLess(key{sp: 0, pc: 4}, key{sp: 0, pc: 8}) {
		t.Fatal("lower PC must win at equal depth")
	}
	if keyLess(key{sp: 0, pc: 8}, key{sp: 0, pc: 8}) {
		t.Fatal("equal keys are not less")
	}
}
