// Package cacheflag wires the sweep-cache command-line flags shared by
// the study drivers: -batchcache toggles the batch-stream memoization
// layer and -cachebudget bounds the byte budget the per-sweep caches
// (scalar traces + batch streams) may retain. Both knobs only affect
// wall clock and memory; study output is byte-identical at any
// setting.
package cacheflag

import (
	"flag"

	"simr/internal/core"
)

// Flags holds the parsed cache flags until Setup installs them.
type Flags struct {
	batch  *bool
	budget *int
}

// Add registers the cache flags on fs.
func Add(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.batch = fs.Bool("batchcache", true,
		"memoize post-merge batch uop streams across sweep cells (outputs are byte-identical on or off)")
	f.budget = fs.Int("cachebudget", 0,
		"shared trace+batch cache budget in MiB (0 = default 512)")
	return f
}

// Setup installs the parsed flags process-wide. Call after flag.Parse
// and before running any study.
func (f *Flags) Setup() {
	core.SetBatchCaching(*f.batch)
	core.SetCacheBudget(int64(*f.budget) << 20)
}
