package energy

import (
	"fmt"
	"io"
)

// Component is one row of the paper's Table V: per-component area and
// peak power for the CPU and RPU cores at 7 nm, derived from
// McPAT/CACTI. These are design-time estimates (inputs to the model's
// calibration), reproduced here as data so the chipsim tool can print
// the table and the tests can check the paper's headline ratios
// (RPU core 6.3x area, 4.5x peak power, 32x threads).
type Component struct {
	Name                   string
	CPUAreaMM2, RPUAreaMM2 float64
	CPUWatts, RPUWatts     float64
}

// CoreComponents lists the per-core rows of Table V.
var CoreComponents = []Component{
	{"Fetch&Decode", 0.27, 0.30, 0.39, 0.40},
	{"Branch Prediction", 0.01, 0.01, 0.02, 0.02},
	{"OoO", 0.11, 0.17, 0.85, 1.45},
	{"Register File", 0.14, 2.52, 0.49, 4.26},
	{"Execution Units", 0.25, 2.31, 0.34, 2.51},
	{"Load/Store Unit", 0.07, 0.34, 0.13, 0.41},
	{"L1 Cache", 0.04, 0.22, 0.09, 0.20},
	{"TLB", 0.02, 0.08, 0.06, 0.40},
	{"L2 Cache", 0.20, 0.71, 0.13, 0.24},
	{"Majority Voting", 0, 0.02, 0, 0.03},
	{"SIMT Optimizer", 0, 0.03, 0, 0.05},
	{"MCU", 0, 0.02, 0, 0.01},
	{"L1-Xbar", 0, 0.31, 0, 1.23},
}

// ChipComponents lists the uncore rows of Table V.
var ChipComponents = []Component{
	{"L3 Cache", 7.82, 7.82, 0.75, 0.75},
	{"NoC", 9.78, 1.72, 36.52, 7.02},
	{"Memory Ctrl", 14.64, 23.59, 6.85, 19.27},
	{"Static Power", 0, 0, 49, 53},
}

// CoreTotals sums the per-core rows.
func CoreTotals() (cpuArea, rpuArea, cpuW, rpuW float64) {
	for _, c := range CoreComponents {
		cpuArea += c.CPUAreaMM2
		rpuArea += c.RPUAreaMM2
		cpuW += c.CPUWatts
		rpuW += c.RPUWatts
	}
	return
}

// ChipTotals sums core totals scaled by core count plus the uncore
// rows, reproducing Table V's Total Chip line (98 CPU cores vs 20 RPU
// cores).
func ChipTotals() (cpuArea, rpuArea, cpuW, rpuW float64) {
	ca, ra, cw, rw := CoreTotals()
	cpuArea, rpuArea = ca*98, ra*20
	cpuW, rpuW = cw*98, rw*20
	for _, c := range ChipComponents {
		cpuArea += c.CPUAreaMM2
		rpuArea += c.RPUAreaMM2
		cpuW += c.CPUWatts
		rpuW += c.RPUWatts
	}
	return
}

// ThreadDensity returns threads per mm² for the CPU chip (98 cores × 1
// thread) and RPU chip (20 cores × 32 threads); the paper reports the
// RPU improves thread density by ≈5.2x.
func ThreadDensity() (cpu, rpu float64) {
	ca, ra, _, _ := ChipTotals()
	return 98 / ca, 20 * 32 / ra
}

// WriteTableV renders the per-component table.
func WriteTableV(w io.Writer) {
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s\n", "Component", "CPU mm2", "RPU mm2", "CPU W", "RPU W")
	for _, c := range CoreComponents {
		fmt.Fprintf(w, "%-20s %10.2f %10.2f %10.2f %10.2f\n",
			c.Name, c.CPUAreaMM2, c.RPUAreaMM2, c.CPUWatts, c.RPUWatts)
	}
	ca, ra, cw, rw := CoreTotals()
	fmt.Fprintf(w, "%-20s %10.2f %10.2f %10.2f %10.2f\n", "Total-1core", ca, ra, cw, rw)
	for _, c := range ChipComponents {
		fmt.Fprintf(w, "%-20s %10.2f %10.2f %10.2f %10.2f\n",
			c.Name, c.CPUAreaMM2, c.RPUAreaMM2, c.CPUWatts, c.RPUWatts)
	}
	tca, tra, tcw, trw := ChipTotals()
	fmt.Fprintf(w, "%-20s %10.1f %10.1f %10.1f %10.1f\n", "Total Chip", tca, tra, tcw, trw)
	fmt.Fprintf(w, "\nRPU core vs CPU core: %.1fx area, %.1fx peak power, 32x threads\n", ra/ca, rw/cw)
	dc, dr := ThreadDensity()
	fmt.Fprintf(w, "Thread density: CPU %.3f vs RPU %.3f threads/mm2 (%.1fx)\n", dc, dr, dr/dc)
}
