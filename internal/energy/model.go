// Package energy implements the McPAT/GPUWattch-style accounting the
// paper uses: per-event dynamic energies multiplied by the pipeline and
// memory-system event counts, plus static power integrated over the
// run. All constants are documented model parameters calibrated so the
// single-threaded CPU reproduces the paper's Figure 10 breakdown
// (≈73 % frontend+OoO on scalar-integer services) and Table V
// peak-power proportions; the RPU/GPU results in Figures 19/20 are
// then *measured* outputs of the simulation, not inputs.
package energy

import (
	"simr/internal/isa"
	"simr/internal/pipeline"
)

// Model holds per-event dynamic energies in picojoules and the core's
// static power in watts.
type Model struct {
	Name string

	// Frontend + OoO, charged once per frontend instruction (per batch
	// instruction on the RPU — the heart of the SIMR energy claim).
	FetchDecodePJ float64
	BranchPredPJ  float64 // per branch
	OoOPJ         float64 // rename, reservation stations, ROB, CAM wakeup
	// RPU-only SIMT management overheads.
	VotingPJ     float64 // majority voting per branch
	OptimizerPJ  float64 // SIMT convergence optimizer per instruction
	ActiveMaskPJ float64 // AM propagation per instruction

	// Execution, charged per active lane.
	RegFilePJ float64 // operand read+write per lane op
	ExecPJ    [isa.NumClasses]float64

	// Memory system.
	LSQPJ       float64 // per memory instruction (one row per batch op)
	LSQLanePJ   float64 // per additional active lane (CAM per lane)
	MCUPJ       float64 // coalescer lookup per memory instruction
	L1PJ        float64 // per L1 access
	L1XbarPJ    float64 // RPU LSQ→bank crossbar per access
	TLBPJ       float64 // per translation
	TLBMissPJ   float64 // per page walk
	L2PJ        float64 // per L2 access
	L3PJ        float64 // per L3 access
	DRAMPJ      float64 // per DRAM access: on-chip memory controller + PHY (DRAM device energy is off-chip and outside the paper's chip budget)
	WritebackPJ float64 // per dirty writeback

	// ExecScale derates execution/RF energy (the GPU's lower clock and
	// voltage operating point).
	ExecScale float64

	// StaticWatts is the core's leakage + always-on power.
	StaticWatts float64
}

// Breakdown is the energy of one run, split the way the paper's
// Figure 10 reports it.
type Breakdown struct {
	FrontendOoO float64 // joules
	Exec        float64
	Memory      float64
	Static      float64
}

// Total returns total joules.
func (b Breakdown) Total() float64 { return b.FrontendOoO + b.Exec + b.Memory + b.Static }

// Dynamic returns dynamic joules (everything but static).
func (b Breakdown) Dynamic() float64 { return b.FrontendOoO + b.Exec + b.Memory }

// Add accumulates another breakdown.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		FrontendOoO: b.FrontendOoO + o.FrontendOoO,
		Exec:        b.Exec + o.Exec,
		Memory:      b.Memory + o.Memory,
		Static:      b.Static + o.Static,
	}
}

const pj = 1e-12

// Compute turns a pipeline run's statistics into joules under the
// model. freqGHz converts cycles to seconds for the static term.
func (m *Model) Compute(st *pipeline.Stats, freqGHz float64) Breakdown {
	var b Breakdown

	// Frontend + OoO: charged per frontend (batch) instruction.
	fe := float64(st.Uops) * (m.FetchDecodePJ + m.OoOPJ + m.OptimizerPJ + m.ActiveMaskPJ)
	fe += float64(st.Branches) * (m.BranchPredPJ + m.VotingPJ)
	// Flushed lanes re-execute through the frontend once more.
	fe += float64(st.FlushedLanes) * m.FetchDecodePJ
	b.FrontendOoO = fe * pj

	// Execution: per active lane.
	scale := m.ExecScale
	if scale == 0 {
		scale = 1
	}
	ex := 0.0
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		ex += float64(st.LaneOpsByClass[c]) * (m.ExecPJ[c] + m.RegFilePJ)
	}
	b.Exec = ex * scale * pj

	// Memory.
	memUops := st.UopsByClass[isa.Load] + st.UopsByClass[isa.Store] + st.UopsByClass[isa.Atomic]
	memLanes := st.LaneOpsByClass[isa.Load] + st.LaneOpsByClass[isa.Store] + st.LaneOpsByClass[isa.Atomic]
	me := float64(memUops) * (m.LSQPJ + m.MCUPJ)
	if memLanes > memUops {
		me += float64(memLanes-memUops) * m.LSQLanePJ
	}
	me += float64(st.Mem.L1.Accesses) * (m.L1PJ + m.L1XbarPJ)
	me += float64(st.Mem.TLB.Accesses) * m.TLBPJ
	me += float64(st.Mem.TLB.Misses) * m.TLBMissPJ
	me += float64(st.Mem.L2.Accesses) * m.L2PJ
	me += float64(st.Mem.L3.Accesses+st.Mem.AtomicL3) * m.L3PJ
	me += float64(st.Mem.DRAMAccesses) * m.DRAMPJ
	me += float64(st.Mem.L1.Writebacks+st.Mem.L2.Writebacks) * m.WritebackPJ
	b.Memory = me * pj

	// Static power integrated over the run.
	b.Static = m.StaticWatts * float64(st.Cycles) / (freqGHz * 1e9)
	return b
}

// execTable builds the per-class execution energies from the scalar
// base costs.
func execTable(ialu, falu, simd float64) [isa.NumClasses]float64 {
	var t [isa.NumClasses]float64
	t[isa.IAlu] = ialu
	t[isa.FAlu] = falu
	t[isa.Simd] = simd
	t[isa.Branch] = ialu
	t[isa.Jump] = ialu * 0.5
	t[isa.CallOp] = ialu
	t[isa.RetOp] = ialu
	t[isa.Load] = ialu // address generation
	t[isa.Store] = ialu
	t[isa.Atomic] = ialu * 2
	t[isa.Fence] = ialu * 0.5
	t[isa.Syscall] = ialu * 20 // kernel entry/exit
	return t
}

// CPUModel is the single-threaded OoO x86-class core at 7 nm
// (Table IV/V CPU column). The frontend+OoO share of a scalar integer
// instruction's energy is ≈73 %, matching Figure 10 and the cited
// Skylake power studies.
func CPUModel() *Model {
	return &Model{
		Name:          "cpu",
		FetchDecodePJ: 430,
		BranchPredPJ:  44,
		OoOPJ:         680,
		RegFilePJ:     120,
		ExecPJ:        execTable(48, 100, 730),
		LSQPJ:         175,
		L1PJ:          265,
		TLBPJ:         18,
		TLBMissPJ:     990,
		L2PJ:          660,
		L3PJ:          1870,
		DRAMPJ:        1500,
		WritebackPJ:   265,
		StaticWatts:   0.36,
	}
}

// SMTModel is the SMT-8 variant of the CPU core: McPAT attributes a
// 14 % core power increase to the widened RAT/ROB tags and the larger
// register file, while per-event energies are unchanged (every thread
// still pays full frontend+OoO cost per instruction — the reason SMT
// barely improves requests/joule).
func SMTModel() *Model {
	m := CPUModel()
	m.Name = "cpu-smt8"
	m.FetchDecodePJ *= 1.07
	m.OoOPJ *= 1.14
	m.RegFilePJ *= 1.14
	m.StaticWatts *= 1.14
	return m
}

// RPUModel is the 32-thread OoO-SIMT RPU core. Frontend/OoO events are
// per *batch* instruction; the SIMT overheads (voting, convergence
// optimizer, active-mask propagation, MCU, L1 crossbar) come from the
// paper's Table V additions; the larger multi-banked caches cost 1.72x
// (L1) and 1.82x (L2) per access.
func RPUModel() *Model {
	return &Model{
		Name:          "rpu",
		FetchDecodePJ: 470,
		BranchPredPJ:  44,
		OoOPJ:         760,
		VotingPJ:      62,
		OptimizerPJ:   48,
		ActiveMaskPJ:  13,
		// One wide vector-RF access serves the whole sub-batch, so the
		// per-lane operand energy is below the scalar OoO PRF's
		// (multi-ported, CAM-tagged) cost.
		RegFilePJ:   72,
		ExecPJ:      execTable(48, 100, 730),
		LSQPJ:       210,
		LSQLanePJ:   20,
		MCUPJ:       31,
		L1PJ:        265 * 1.72,
		L1XbarPJ:    105,
		TLBPJ:       18,
		TLBMissPJ:   990,
		L2PJ:        660 * 1.82,
		L3PJ:        1870,
		DRAMPJ:      1500,
		WritebackPJ: 265,
		StaticWatts: 1.60,
	}
}

// GPUModel is an Ampere-like in-order SIMT core: no OoO structures, a
// lean frontend amortized over 32 lanes, and execution units operating
// at a lower clock/voltage point (ExecScale). StaticWatts is the
// per-resident-batch share of the SM's leakage: unlike the RPU (one
// batch per core), a GPU SM keeps ~16 warps resident, so one batch is
// charged 1/16 of the SM static power while its latency is measured
// end to end.
func GPUModel() *Model {
	return &Model{
		Name:          "gpu",
		FetchDecodePJ: 200,
		BranchPredPJ:  0,
		OoOPJ:         0,
		OptimizerPJ:   40,
		ActiveMaskPJ:  13,
		// The GPU's single-ported, banked register file and its low
		// clock/voltage point make its per-lane execution energy a
		// fraction of the 2.5 GHz OoO core's.
		RegFilePJ:   66,
		ExecPJ:      execTable(48, 100, 730),
		ExecScale:   0.18,
		LSQPJ:       60,
		LSQLanePJ:   8,
		MCUPJ:       31,
		L1PJ:        180,
		L1XbarPJ:    60,
		TLBPJ:       18,
		TLBMissPJ:   990,
		L2PJ:        600,
		L3PJ:        1870,
		DRAMPJ:      1500,
		WritebackPJ: 265,
		StaticWatts: 0.06,
	}
}
