package energy

import (
	"math"
	"strings"
	"testing"

	"simr/internal/isa"
	"simr/internal/pipeline"
)

func mkStats(uops, scalar uint64) *pipeline.Stats {
	st := &pipeline.Stats{Cycles: 1000, Uops: uops, ScalarOps: scalar}
	st.UopsByClass[isa.IAlu] = uops
	st.LaneOpsByClass[isa.IAlu] = scalar
	return st
}

func TestFrontendAmortization(t *testing.T) {
	m := RPUModel()
	// Same scalar work, once as 32-wide batch ops, once scalar.
	batch := m.Compute(mkStats(100, 3200), 2.5)
	scalar := m.Compute(mkStats(3200, 3200), 2.5)
	if batch.FrontendOoO >= scalar.FrontendOoO/20 {
		t.Fatalf("frontend not amortized: batch %.3g vs scalar %.3g", batch.FrontendOoO, scalar.FrontendOoO)
	}
	// Execution energy is per lane and must be identical.
	if math.Abs(batch.Exec-scalar.Exec) > 1e-15 {
		t.Fatalf("exec energy differs: %g vs %g", batch.Exec, scalar.Exec)
	}
}

func TestStaticScalesWithTime(t *testing.T) {
	m := CPUModel()
	a := m.Compute(&pipeline.Stats{Cycles: 1000}, 2.5)
	b := m.Compute(&pipeline.Stats{Cycles: 2000}, 2.5)
	if math.Abs(b.Static/a.Static-2) > 1e-9 {
		t.Fatalf("static not linear in time: %g vs %g", a.Static, b.Static)
	}
}

func TestCPUFrontendShareMatchesFig10(t *testing.T) {
	// A scalar-integer instruction mix (30% memory ops hitting L1)
	// should put the frontend+OoO share in the paper's 60-80% band.
	m := CPUModel()
	st := mkStats(1000, 1000)
	st.UopsByClass[isa.Load] = 300
	st.LaneOpsByClass[isa.Load] = 300
	st.Mem.L1.Accesses = 300
	st.Mem.TLB.Accesses = 300
	st.Branches = 150
	b := m.Compute(st, 2.5)
	share := b.FrontendOoO / b.Dynamic()
	if share < 0.55 || share > 0.85 {
		t.Fatalf("frontend share %.2f outside Fig 10 band", share)
	}
}

func TestRPUSIMTOverheadsCharged(t *testing.T) {
	m := RPUModel()
	if m.VotingPJ == 0 || m.OptimizerPJ == 0 || m.ActiveMaskPJ == 0 || m.MCUPJ == 0 || m.L1XbarPJ == 0 {
		t.Fatal("RPU SIMT overhead constants must be non-zero")
	}
	if m.L1PJ <= CPUModel().L1PJ*1.5 {
		t.Fatal("RPU L1 access energy should be ~1.72x CPU's")
	}
	if m.L2PJ <= CPUModel().L2PJ*1.5 {
		t.Fatal("RPU L2 access energy should be ~1.82x CPU's")
	}
}

func TestSMTModelCostsMore(t *testing.T) {
	c, s := CPUModel(), SMTModel()
	if s.OoOPJ <= c.OoOPJ || s.StaticWatts <= c.StaticWatts {
		t.Fatal("SMT-8 core must cost more than the single-threaded core")
	}
}

func TestBreakdownAddTotal(t *testing.T) {
	a := Breakdown{FrontendOoO: 1, Exec: 2, Memory: 3, Static: 4}
	b := a.Add(a)
	if b.Total() != 20 || a.Total() != 10 || a.Dynamic() != 6 {
		t.Fatalf("breakdown arithmetic wrong: %+v", b)
	}
}

func TestTableVRatios(t *testing.T) {
	ca, ra, cw, rw := CoreTotals()
	if r := ra / ca; r < 6.0 || r > 6.7 {
		t.Fatalf("RPU core area ratio %.2f, paper says 6.3x", r)
	}
	if r := rw / cw; r < 4.2 || r > 4.8 {
		t.Fatalf("RPU core power ratio %.2f, paper says 4.5x", r)
	}
	dc, dr := ThreadDensity()
	if r := dr / dc; r < 4.5 || r > 6.0 {
		t.Fatalf("thread density ratio %.2f, paper says 5.2x", r)
	}
}

func TestTableVChipTotals(t *testing.T) {
	ca, ra, cw, rw := ChipTotals()
	// Paper Table V: 141 vs 173.9 mm2, 338.1 vs 304.2 W.
	if math.Abs(ca-141) > 2 || math.Abs(ra-173.9) > 2 {
		t.Fatalf("chip areas %f %f", ca, ra)
	}
	if math.Abs(cw-338.1) > 2 || math.Abs(rw-304.2) > 2 {
		t.Fatalf("chip powers %f %f", cw, rw)
	}
}

func TestWriteTableV(t *testing.T) {
	var sb strings.Builder
	WriteTableV(&sb)
	out := sb.String()
	for _, want := range []string{"Fetch&Decode", "L1-Xbar", "Total Chip", "Thread density"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q", want)
		}
	}
}

func TestGPUModelShape(t *testing.T) {
	g := GPUModel()
	if g.OoOPJ != 0 || g.BranchPredPJ != 0 {
		t.Fatal("GPU has no OoO structures or branch predictor")
	}
	if g.ExecScale <= 0 || g.ExecScale >= 1 {
		t.Fatalf("GPU exec scale %v", g.ExecScale)
	}
}

// TestComputeAdditive: energy over a combined stat equals the sum of
// the parts (linearity of the per-event model).
func TestComputeAdditive(t *testing.T) {
	m := CPUModel()
	a := mkStats(100, 100)
	b := mkStats(250, 250)
	var sum pipeline.Stats
	sum.Accumulate(a)
	sum.Accumulate(b)
	ea := m.Compute(a, 2.5)
	eb := m.Compute(b, 2.5)
	es := m.Compute(&sum, 2.5)
	if math.Abs(es.Total()-(ea.Total()+eb.Total())) > 1e-15 {
		t.Fatalf("energy not additive: %g vs %g", es.Total(), ea.Total()+eb.Total())
	}
}

func TestFlushedLanesCostFrontendEnergy(t *testing.T) {
	m := RPUModel()
	a := mkStats(100, 3200)
	b := mkStats(100, 3200)
	b.FlushedLanes = 500
	if m.Compute(b, 2.5).FrontendOoO <= m.Compute(a, 2.5).FrontendOoO {
		t.Fatal("flushed lanes should add frontend energy")
	}
}
