package uservices

import (
	"math/rand"

	"simr/internal/isa"
)

// argLen reads Args[1], the request's primary length parameter.
func argLen(c *isa.Ctx) int { return int(c.Arg0(1)) }

// hashFunc builds a small hash routine callee: a serial mixing chain
// over the key, reading a shared s-box table (a broadcast access — all
// threads read the same constants).
func hashFunc(name string, sbox uint64, rounds int) *isa.Program {
	b := isa.NewFunc(name)
	b.StackStore(16) // spill the argument pointer
	b.LoopN(rounds, func(b *isa.Builder) {
		b.StackLoad(24) // key word from the local buffer
		b.OpsChain(isa.IAlu, 3, 1)
		b.LoadAt(8, func(c *isa.Ctx) uint64 { return sbox + 8*(c.SP%4) })
		b.OpsChain(isa.IAlu, 2, 1)
		b.StackStore(24)
	})
	b.StackLoad(16)
	return b.Build()
}

// marshalFunc builds an RPC marshalling callee: reads locals from the
// stack and packs them into a wire buffer on the stack (the
// push/pop-heavy pattern that makes middle tiers up to 90 % stack
// accesses).
func marshalFunc(name string, words int) *isa.Program {
	b := isa.NewFunc(name)
	b.LoopN(words, func(b *isa.Builder) {
		b.StackLoad(24)
		b.Ops(isa.IAlu, 1)
		b.StackStore(32)
		b.StackLoad(48)
		b.Ops(isa.IAlu, 1)
		b.StackStore(56)
	})
	b.Op(isa.Syscall) // send
	return b.Build()
}

// parseLoop emits the request-parsing prologue: recv syscall plus a
// length-dependent tokenising loop over the argument bytes.
func parseLoop(b *isa.Builder, perIter int) {
	b.SyscallOp() // recv / epoll return
	b.Loop(argLen, func(b *isa.Builder) {
		b.StackLoad(32)
		b.Ops(isa.IAlu, perIter)
		b.StackStore(40)
		b.StackStore(48)
	})
}

// randIn returns a closure-friendly uniform integer in [lo, hi].
func randIn(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// gshare of per-request divergent global address: picks a pseudo-random
// slot in a shared table. Distinct threads draw distinct slots, so the
// MCU sees a divergent pattern — inter-request sharing exists at the
// table level, not the element level.
func tableAddr(base uint64, entries, stride int) isa.AddrFn {
	return func(c *isa.Ctx) uint64 {
		return base + uint64(c.Rand.Intn(entries))*uint64(stride)
	}
}

// constAddr is a fixed shared address: every thread reads the same
// word (metadata, config, counters) and the MCU broadcasts it.
func constAddr(addr uint64) isa.AddrFn {
	return func(*isa.Ctx) uint64 { return addr }
}

// zipfAddr returns a skewed table access: 90 % of lookups land in a
// hot prefix of the table (which caches well), 10 % are uniform over
// the whole table (cold misses) — the hit-rate skew real key-value and
// dictionary workloads exhibit.
func zipfAddr(base uint64, entries, stride, hot int) isa.AddrFn {
	return func(c *isa.Ctx) uint64 {
		if c.Rand.Float64() < 0.9 {
			return base + uint64(c.Rand.Intn(hot))*uint64(stride)
		}
		return base + uint64(c.Rand.Intn(entries))*uint64(stride)
	}
}

// slotSeq returns addr = Slots[base] + Slots[idx]*stride, the
// private-array walking pattern (heap: divergent across threads;
// SIMR-aware allocation spreads the streams over L1 banks).
func slotSeq(baseSlot, idxSlot, stride int) isa.AddrFn {
	return func(c *isa.Ctx) uint64 {
		return c.Slots[baseSlot] + c.Slots[idxSlot]*uint64(stride)
	}
}

// chase emits an unrolled dependent-load chain: each load's address
// comes from the previous load (hash-chain, tree and session-list
// walks). These chains bound a single CPU thread's IPC by memory
// latency — the dominant stall the paper reports for data center
// services — while the RPU overlaps 32 independent chains per batch.
func chase(b *isa.Builder, addr isa.AddrFn, hops int) {
	for i := 0; i < hops; i++ {
		// Each load depends on the op 3 back: the previous chase load
		// through its two-op digest.
		b.LoadAt(8, addr, 3)
		b.OpsChain(isa.IAlu, 2, 1)
	}
}
