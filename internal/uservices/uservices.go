// Package uservices implements the paper's 15-microservice social
// network suite (µSuite + DeathStarBench derived) as µISA programs:
// Memcached (mcrouter, memc, memc-backend), Search (mid, leaf),
// HDSearch (mid, leaf), Recommender (mid, leaf), Post (post, post-text,
// urlshort, uniqueid, usertag) and User. Each service exposes one or
// more APIs with request-dependent control flow and memory behaviour
// modelled on the originals: call-heavy, stack-dominated middle tiers;
// data-intensive leaves with large private heap footprints; shared
// read-mostly tables in the data segment.
package uservices

import (
	"fmt"
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
	"simr/internal/seedrng"
)

// Request is one incoming RPC/HTTP request.
type Request struct {
	// Service names the target microservice.
	Service string
	// API is the invoked procedure (batching policy key #1).
	API string
	// ArgBytes is the request argument size (batching policy key #2).
	ArgBytes int
	// Args encodes the request for the program closures:
	// Args[0] = API index, Args[1] = primary length, Args[2+] extra.
	Args []uint64
	// Seed drives per-request data-dependent behaviour (hash values,
	// chain lengths, cache hit/miss).
	Seed int64
	// Arrival is the request arrival time (set by the system
	// simulator; zero for chip-level studies).
	Arrival float64
}

// Service is one microservice: its API programs plus a request
// generator.
type Service struct {
	// Name identifies the service (e.g. "search-leaf").
	Name string
	// Group is the application it belongs to (e.g. "Search").
	Group string
	// APIs lists the procedure names in Args[0] index order.
	APIs []string
	// TunedBatch is the offline-tuned RPU batch size: 8 for the
	// data-intensive leaves, 32 otherwise (paper §III-B3).
	TunedBatch int
	// DataIntensive marks services with large per-thread heap
	// footprints (HDSearch-leaf, Search-leaf).
	DataIntensive bool

	progs map[string]*isa.Program
	gen   func(r *rand.Rand) Request
}

// Program returns the program implementing the given API.
func (s *Service) Program(api string) *isa.Program {
	p, ok := s.progs[api]
	if !ok {
		panic(fmt.Sprintf("uservices: service %q has no API %q", s.Name, api))
	}
	return p
}

// BranchReconv merges the reconvergence tables of every API program.
func (s *Service) BranchReconv() map[uint64]uint64 {
	m := map[uint64]uint64{}
	for _, p := range s.progs {
		for k, v := range p.BranchReconv() {
			m[k] = v
		}
	}
	return m
}

// Generate produces n requests using the service's API and argument
// distributions.
func (s *Service) Generate(r *rand.Rand, n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = s.gen(r)
		out[i].Service = s.Name
	}
	return out
}

// Trace executes the request's program for thread tid and returns the
// scalar dynamic trace. stackBase is the thread's stack segment top and
// heap its arena. The request stream is seeded through seedrng, which
// emits exactly rand.New(rand.NewSource(req.Seed)) without re-paying
// the source warmup on every interpretation of the same request.
func (s *Service) Trace(req *Request, tid int, stackBase uint64, heap isa.Heap) ([]isa.TraceOp, error) {
	ctx := &isa.Ctx{
		Arg:       req.Args,
		StackBase: stackBase,
		Heap:      heap,
		Rand:      seedrng.New(req.Seed),
		TID:       tid,
	}
	return isa.Execute(s.Program(req.API), ctx, 0)
}

// TraceInto is Trace interpreting into buf's backing array (see
// isa.ExecuteBuf); a caller that copies the trace out before the next
// request can reuse one buffer instead of allocating per trace.
func (s *Service) TraceInto(req *Request, tid int, stackBase uint64, heap isa.Heap, buf []isa.TraceOp) ([]isa.TraceOp, error) {
	ctx := &isa.Ctx{
		Arg:       req.Args,
		StackBase: stackBase,
		Heap:      heap,
		Rand:      seedrng.New(req.Seed),
		TID:       tid,
	}
	return isa.ExecuteBuf(s.Program(req.API), ctx, 0, buf)
}

// TraceBatch traces every request of a batch with per-thread stacks and
// arenas. policy selects the heap allocator; interleave is ignored here
// (it is a physical mapping applied at access time).
func (s *Service) TraceBatch(reqs []Request, sg *alloc.StackGroup, policy alloc.Policy, lineBytes, banks int) ([][]isa.TraceOp, error) {
	traces := make([][]isa.TraceOp, len(reqs))
	for t := range reqs {
		arena := alloc.NewArena(t, policy, lineBytes, banks)
		tr, err := s.Trace(&reqs[t], t, sg.StackBase(t), arena)
		if err != nil {
			return nil, fmt.Errorf("uservices: tracing %s request %d: %w", s.Name, t, err)
		}
		traces[t] = tr
	}
	return traces, nil
}

// Suite is the full workload set with its shared data segment.
type Suite struct {
	Services []*Service
	byName   map[string]*Service
}

// Get returns a service by name.
func (s *Suite) Get(name string) *Service {
	svc, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("uservices: unknown service %q", name))
	}
	return svc
}

// Names lists the services in canonical (paper Figure) order.
func (s *Suite) Names() []string {
	names := make([]string, len(s.Services))
	for i, svc := range s.Services {
		names[i] = svc.Name
	}
	return names
}

// NewSuite constructs all 15 services, allocates their shared tables
// from one data segment and links every program into a disjoint PC
// space.
func NewSuite() *Suite {
	g := alloc.NewGlobals()
	builders := []func(*alloc.Globals) *Service{
		newMcRouter,
		newMemcBackend,
		newMemc,
		newSearchMid,
		newSearchLeaf,
		newHDSearchMid,
		newHDSearchLeaf,
		newRecommenderMid,
		newRecommenderLeaf,
		newPost,
		newPostText,
		newURLShort,
		newUniqueID,
		newUserTag,
		newUser,
	}
	suite := &Suite{byName: map[string]*Service{}}
	base := uint64(1 << 24)
	for _, build := range builders {
		svc := build(g)
		if svc.TunedBatch == 0 {
			svc.TunedBatch = 32
		}
		progs := make([]*isa.Program, 0, len(svc.progs))
		for _, api := range svc.APIs {
			progs = append(progs, svc.progs[api])
		}
		next, err := isa.Link(base, progs...)
		if err != nil {
			panic(err)
		}
		base = (next + (1 << 20)) &^ ((1 << 20) - 1)
		suite.Services = append(suite.Services, svc)
		suite.byName[svc.Name] = svc
	}
	return suite
}
