package uservices

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
)

// HitFlagArg is the Args index of the User service's cache-hit flag.
const HitFlagArg = 3

// UserHitRate is the modelled memcached hit rate of the User service
// (paper §V-B assumes 90 %).
const UserHitRate = 0.9

// newUser builds the User service implementing the paper's Figure 17a
// design pattern: try the in-memory cache first; on a miss, marshal a
// storage query, wait for it, and refill the cache. The miss path is
// several times longer than the hit path and, at system level, blocks
// on millisecond-scale storage — the motivation for batch splitting.
// Args[HitFlagArg] != 0 marks a cache hit.
func newUser(g *alloc.Globals) *Service {
	const rows = 1 << 13
	cacheTable := g.Alloc(rows * 128)
	hp := hashFunc("user.hash", g.Alloc(64), 4)
	sp := marshalFunc("user.storagerpc", 28)

	b := isa.NewProgram("user.getUser")
	parseLoop(b, 2)
	b.Call(hp)
	// Probe the cache row.
	row := b.Slot()
	b.Eff(func(c *isa.Ctx) {
		c.Slots[row] = cacheTable + uint64(userRowIdx(c, rows))*128
	})
	b.LoadAt(8, func(c *isa.Ctx) uint64 { return c.Slots[row] })
	// Row version-chain walk before the hit/miss decision: one cold
	// row hop, one hot hop.
	chase(b, func(c *isa.Ctx) uint64 {
		return cacheTable + uint64(c.Rand.Intn(rows))*128
	}, 1)
	chase(b, func(c *isa.Ctx) uint64 {
		return cacheTable + uint64(c.Rand.Intn(128))*128
	}, 1)
	b.If(func(c *isa.Ctx) bool { return c.Arg0(HitFlagArg) != 0 },
		func(b *isa.Builder) {
			// Hit: copy the row out.
			b.LoopIdx(func(*isa.Ctx) int { return 4 }, func(b *isa.Builder, idx int) {
				b.LoadAt(32, slotSeq(row, idx, 32))
				b.StackStore(40, 1)
				b.StackStore(48)
			})
		},
		func(b *isa.Builder) {
			// Miss: query storage, deserialize, refill the cache.
			b.Call(sp)
			b.SyscallOp() // storage wait
			b.LoopN(24, func(b *isa.Builder) {
				b.StackLoad(48)
				b.OpsChain(isa.IAlu, 3, 1)
				b.StackStore(56)
			})
			b.AtomicAt(8, func(c *isa.Ctx) uint64 { return c.Slots[row] + 120 })
			b.LoopIdx(func(*isa.Ctx) int { return 4 }, func(b *isa.Builder, idx int) {
				b.StackLoad(48)
				b.StackLoad(56)
				b.StoreAt(32, slotSeq(row, idx, 32), 1)
			})
			b.AtomicAt(8, func(c *isa.Ctx) uint64 { return c.Slots[row] + 120 })
		})
	// Assemble the response.
	b.LoopN(6, func(b *isa.Builder) {
		b.StackLoad(64)
		b.Ops(isa.IAlu, 2)
		b.StackStore(72)
	})
	b.SyscallOp()
	getUser := b.Build()

	return &Service{
		Name:  "user",
		Group: "User",
		APIs:  []string{"getUser"},
		progs: map[string]*isa.Program{"getUser": getUser},
		gen: func(r *rand.Rand) Request {
			hit := uint64(0)
			if r.Float64() < UserHitRate {
				hit = 1
			}
			kl := randIn(r, 1, 3)
			// The SIMR server predicts each request's control flow from
			// its key's hotness (paper §III-B1: batch by predicted
			// control flow); the prediction is folded into the argument
			// class so predicted misses batch together.
			return Request{
				API:      "getUser",
				ArgBytes: kl*8 + int(1-hit)*1024,
				Args:     []uint64{0, uint64(kl), 0, hit},
				Seed:     r.Int63(),
			}
		},
	}
}

// userRowIdx picks the request's cache row with a hot-user skew.
func userRowIdx(c *isa.Ctx, rows int) int {
	if c.Rand.Float64() < 0.9 {
		return c.Rand.Intn(256)
	}
	return c.Rand.Intn(rows)
}
