package uservices

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
)

// newHDSearchMid builds the HDSearch middle tier (locality-sensitive
// hashing front end). It contains the paper's speculative-reconvergence
// case: a data-dependent branch whose taken side is much more
// expensive (multi-probe LSH fallback) than the common fast path.
func newHDSearchMid(g *alloc.Globals) *Service {
	lshTables := g.Alloc(8 * 4096)
	hp := hashFunc("hdsearch-mid.lsh", g.Alloc(64), 5)
	mp := marshalFunc("hdsearch-mid.rpc", 28)

	b := isa.NewProgram("hdsearch-mid.query")
	parseLoop(b, 3)
	b.Call(hp)
	// Probe the LSH tables: each probe's bucket comes from the
	// previous probe's hash (dependent); tables are cache resident.
	chase(b, tableAddr(lshTables, 2048, 8), 4)
	// One cold hop into the bucket directory.
	chase(b, tableAddr(lshTables, 8*4096/8, 8), 1)
	// Data-dependent fallback: ~25 % of requests take the expensive
	// multi-probe path (5x the work of the fast path).
	b.If(func(c *isa.Ctx) bool { return c.Arg0(2)%4 == 0 },
		func(b *isa.Builder) {
			b.LoopN(20, func(b *isa.Builder) {
				b.LoadAt(8, zipfAddr(lshTables, 8*4096/8, 8, 512))
				b.OpsChain(isa.IAlu, 3, 1)
				b.Ops(isa.Simd, 2)
				b.StackStore(48)
			})
		},
		func(b *isa.Builder) {
			b.LoopN(4, func(b *isa.Builder) {
				b.Ops(isa.IAlu, 3)
				b.StackStore(48)
			})
		})
	// Fan out to leaves and merge.
	b.LoopN(2, func(b *isa.Builder) { b.Call(mp) })
	b.SyscallOp()
	buf := b.Slot()
	b.AllocTo(buf, func(*isa.Ctx) int { return 2 * 10 * 16 })
	b.LoopIdx(func(*isa.Ctx) int { return 20 }, func(b *isa.Builder, idx int) {
		b.LoadAt(8, slotSeq(buf, idx, 16))
		b.OpsChain(isa.FAlu, 1, 1)
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(3) == 0 },
			func(b *isa.Builder) { b.StackStore(56) }, nil)
	})
	b.SyscallOp()
	query := b.Build()

	return &Service{
		Name:  "hdsearch-mid",
		Group: "HDSearch",
		APIs:  []string{"query"},
		progs: map[string]*isa.Program{"query": query},
		gen: func(r *rand.Rand) Request {
			words := randIn(r, 2, 6)
			probe := r.Uint64()
			ab := words * 8
			// The SIMR server predicts the multi-probe fallback from the
			// query's hash quality and batches predicted-slow requests
			// together (§III-B1 predicted-control-flow batching; the
			// paper applies speculative reconvergence to the same
			// branch).
			if probe%4 == 0 {
				ab += 1 << 12
			}
			return Request{
				API:      "query",
				ArgBytes: ab,
				Args:     []uint64{0, uint64(words), probe},
				Seed:     r.Int63(),
			}
		},
	}
}

// newHDSearchLeaf builds the HDSearch leaf: SIMD distance computations
// between the query vector and candidate vectors streamed from the
// shared dataset, with per-candidate results staged in a private heap
// buffer. Fully vectorised inner loops make the backend (not the
// frontend) the CPU energy hot spot — the paper's 39 % frontend case —
// and the large per-thread footprint forces batch-8 tuning on the RPU.
func newHDSearchLeaf(g *alloc.Globals) *Service {
	const vectors = 4096
	const vecBytes = 256 // 64-dim float32
	dataset := g.Alloc(vectors * vecBytes)

	b := isa.NewProgram("hdsearch-leaf.knn")
	parseLoop(b, 2)
	temp := b.Slot()
	b.AllocTo(temp, func(*isa.Ctx) int { return 8 << 10 }) // 8 KB staging
	cand := b.Slot()
	// Candidate scan: 48-80 candidates, 8 SIMD MACs over each vector.
	b.LoopIdx(func(c *isa.Ctx) int { return 48 + int(c.Arg0(2)%32) }, func(b *isa.Builder, ci int) {
		b.Eff(func(c *isa.Ctx) {
			// Candidate lists share a popular head across queries.
			n := c.Rand.Intn(vectors)
			if c.Rand.Float64() < 0.3 {
				n = c.Rand.Intn(64)
			}
			c.Slots[cand] = dataset + uint64(n)*vecBytes
		})
		b.LoopIdx(func(*isa.Ctx) int { return 8 }, func(b *isa.Builder, di int) {
			b.LoadAt(8, slotSeq(cand, di, 32))
			b.OpDeps(isa.Simd, 1, 0)
			b.OpsChain(isa.Simd, 2, 1)
		})
		// Horizontal reduce + stage the distance in the private buffer.
		b.OpsChain(isa.Simd, 2, 1)
		b.Ops(isa.FAlu, 2)
		b.StoreAt(8, slotSeq(temp, ci, 64))
	})
	// Top-K selection over the staged distances (revisits the private
	// buffer; thrashes at batch 32).
	b.LoopN(2, func(b *isa.Builder) {
		b.LoopIdx(func(c *isa.Ctx) int { return 48 + int(c.Arg0(2)%32) }, func(b *isa.Builder, ci int) {
			b.LoadAt(8, slotSeq(temp, ci, 64))
			b.OpsChain(isa.FAlu, 1, 1)
			b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(6) == 0 },
				func(b *isa.Builder) { b.StackStore(48) }, nil)
		})
	})
	b.SyscallOp()
	knn := b.Build()

	return &Service{
		Name:          "hdsearch-leaf",
		Group:         "HDSearch",
		APIs:          []string{"knn"},
		TunedBatch:    8,
		DataIntensive: true,
		progs:         map[string]*isa.Program{"knn": knn},
		gen: func(r *rand.Rand) Request {
			words := randIn(r, 2, 6)
			return Request{
				API:      "knn",
				ArgBytes: words * 8,
				Args:     []uint64{0, uint64(words), r.Uint64()},
				Seed:     r.Int63(),
			}
		},
	}
}
