package uservices

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
)

// newSearchMid builds the Search middle tier: parse the query, fan out
// to three leaf shards, then merge the returned top-K lists. Work
// scales with the query length, so per-argument-size batching matters.
func newSearchMid(g *alloc.Globals) *Service {
	hp := hashFunc("search-mid.hash", g.Alloc(64), 4)
	mp := marshalFunc("search-mid.rpc", 28)

	sessions := g.Alloc((1 << 13) * 64)
	b := isa.NewProgram("search-mid.query")
	parseLoop(b, 4)
	b.Call(hp)
	// Per-connection state walk: one cold descriptor hop, hot rest.
	chase(b, tableAddr(sessions, 1<<13, 64), 1)
	chase(b, tableAddr(sessions, 256, 64), 3)
	// Fan out to 3 shards.
	b.LoopN(3, func(b *isa.Builder) {
		b.LoopN(4, func(b *isa.Builder) {
			b.StackLoad(40)
			b.Ops(isa.IAlu, 2)
			b.StackStore(48)
		})
		b.Call(mp)
	})
	b.SyscallOp() // await responses
	// Merge: top-K over 3 × 10 results in a private heap buffer.
	buf := b.Slot()
	b.AllocTo(buf, func(*isa.Ctx) int { return 3 * 10 * 16 })
	b.LoopIdx(func(*isa.Ctx) int { return 30 }, func(b *isa.Builder, idx int) {
		b.LoadAt(8, slotSeq(buf, idx, 16))
		b.OpsChain(isa.IAlu, 2, 1)
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(3) == 0 },
			func(b *isa.Builder) { b.StackStore(56); b.Ops(isa.IAlu, 2) },
			nil)
	})
	// Response assembly scales with query length.
	b.Loop(argLen, func(b *isa.Builder) {
		b.StackLoad(64)
		b.Ops(isa.IAlu, 3)
		b.StackStore(72)
	})
	b.SyscallOp()
	query := b.Build()

	return &Service{
		Name:  "search-mid",
		Group: "Search",
		APIs:  []string{"query"},
		progs: map[string]*isa.Program{"query": query},
		gen: func(r *rand.Rand) Request {
			words := queryWords(r)
			return Request{
				API:      "query",
				ArgBytes: words * 8,
				Args:     []uint64{0, uint64(words)},
				Seed:     r.Int63(),
			}
		},
	}
}

// newSearchLeaf builds the Search leaf shard: posting-list
// intersection. Each term's posting list streams through the cache
// (compulsory misses) while the private accumulator is revisited — it
// fits a 64 KB CPU L1 for one thread but thrashes the RPU's 256 KB L1
// at batch 32, which is why the paper tunes this service to batch 8.
func newSearchLeaf(g *alloc.Globals) *Service {
	const lists = 256
	const listBytes = 1 << 14 // 16 KB per posting list segment
	postings := g.Alloc(lists * listBytes)

	b := isa.NewProgram("search-leaf.search")
	parseLoop(b, 3)
	acc := b.Slot()
	b.AllocTo(acc, func(*isa.Ctx) int { return 8 << 10 }) // 8 KB accumulator
	listBase := b.Slot()
	// For each query term: walk its posting list and probe/update the
	// accumulator.
	b.Loop(argLen, func(b *isa.Builder) {
		b.Eff(func(c *isa.Ctx) {
			// Hot terms dominate queries; their posting lists cache.
			n := c.Rand.Intn(lists)
			if c.Rand.Float64() < 0.5 {
				n = c.Rand.Intn(8)
			}
			c.Slots[listBase] = postings + uint64(n)*listBytes
		})
		b.LoopIdx(func(c *isa.Ctx) int { return 128 }, func(b *isa.Builder, idx int) {
			// Streaming read: one element per 32 B line.
			b.LoadAt(8, slotSeq(listBase, idx, 32))
			b.OpsChain(isa.IAlu, 2, 1)
			// Accumulator probe at a hash position: private, revisited.
			b.LoadAt(8, func(c *isa.Ctx) uint64 {
				return c.Slots[acc] + uint64(c.Rand.Intn(1024))*8
			}, 1)
			b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(4) == 0 },
				func(b *isa.Builder) {
					b.StoreAt(8, func(c *isa.Ctx) uint64 {
						return c.Slots[acc] + uint64(c.Rand.Intn(1024))*8
					})
				}, nil)
		})
	})
	// Score pass over the accumulator.
	b.LoopIdx(func(*isa.Ctx) int { return 256 }, func(b *isa.Builder, idx int) {
		b.LoadAt(8, slotSeq(acc, idx, 8))
		b.OpsChain(isa.FAlu, 1, 1)
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(8) == 0 },
			func(b *isa.Builder) { b.StackStore(48) }, nil)
	})
	b.SyscallOp()
	search := b.Build()

	return &Service{
		Name:          "search-leaf",
		Group:         "Search",
		APIs:          []string{"search"},
		TunedBatch:    8,
		DataIntensive: true,
		progs:         map[string]*isa.Program{"search": search},
		gen: func(r *rand.Rand) Request {
			words := queryWords(r)
			return Request{
				API:      "search",
				ArgBytes: words * 8,
				Args:     []uint64{0, uint64(words), r.Uint64()},
				Seed:     r.Int63(),
			}
		},
	}
}

// queryWords draws a skewed query length: mostly short queries with a
// long tail, the length-divergence source that argument-size batching
// addresses.
func queryWords(r *rand.Rand) int {
	if r.Float64() < 0.75 {
		return randIn(r, 1, 3)
	}
	return randIn(r, 4, 10)
}
