package uservices

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
)

// newRecommenderMid builds the Recommender middle tier: look up the
// user's feature vector, fan out to two ranking leaves and blend the
// returned scores.
func newRecommenderMid(g *alloc.Globals) *Service {
	userFeatures := g.Alloc(1 << 20)
	mp := marshalFunc("recommender-mid.rpc", 24)

	sessions := g.Alloc((1 << 13) * 64)
	b := isa.NewProgram("recommender-mid.recommend")
	parseLoop(b, 3)
	// Profile/session dependent walk: cold descriptor plus hot hops.
	chase(b, tableAddr(sessions, 1<<13, 64), 1)
	chase(b, tableAddr(sessions, 256, 64), 3)
	// Fetch the user's feature row (divergent: per-user row).
	row := b.Slot()
	b.Eff(func(c *isa.Ctx) {
		if c.Rand.Float64() < 0.9 {
			c.Slots[row] = userFeatures + uint64(c.Rand.Intn(128))*256
		} else {
			c.Slots[row] = userFeatures + uint64(c.Rand.Intn(1<<12))*256
		}
	})
	b.LoopIdx(func(*isa.Ctx) int { return 8 }, func(b *isa.Builder, idx int) {
		b.LoadAt(8, slotSeq(row, idx, 32))
		b.Ops(isa.FAlu, 1)
		b.StackStore(40)
	})
	b.LoopN(2, func(b *isa.Builder) { b.Call(mp) })
	b.SyscallOp()
	// Blend scores.
	b.LoopN(20, func(b *isa.Builder) {
		b.StackLoad(48)
		b.OpsChain(isa.FAlu, 2, 1)
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(4) == 0 },
			func(b *isa.Builder) { b.StackStore(56) }, nil)
	})
	b.SyscallOp()
	rec := b.Build()

	return &Service{
		Name:  "recommender-mid",
		Group: "Recommender",
		APIs:  []string{"recommend"},
		progs: map[string]*isa.Program{"recommend": rec},
		gen: func(r *rand.Rand) Request {
			items := randIn(r, 2, 6)
			return Request{
				API:      "recommend",
				ArgBytes: items * 8,
				Args:     []uint64{0, uint64(items), r.Uint64()},
				Seed:     r.Int63(),
			}
		},
	}
}

// newRecommenderLeaf builds the ranking leaf: SIMD dot products of the
// request's feature vector against a shared model matrix. The model
// rows are walked identically by every thread in a batch (broadcast /
// coalesced accesses), making this leaf SIMT-friendly despite being
// vector-heavy.
func newRecommenderLeaf(g *alloc.Globals) *Service {
	const items = 64
	const itemBytes = 256
	model := g.Alloc(items * itemBytes)
	biasWord := g.Alloc(64)

	b := isa.NewProgram("recommender-leaf.rank")
	parseLoop(b, 2)
	// Per-request embedding gather: a cold row per ranked item (both
	// architectures stream these from DRAM).
	emb := g.Alloc((1 << 13) * 64)
	embRow := b.Slot()
	b.Eff(func(c *isa.Ctx) {
		c.Slots[embRow] = emb + uint64(c.Rand.Intn(1<<13))*64
	})
	// Rank a fixed working set of items: the model walk is uniform
	// across threads, so the MCU broadcasts most loads.
	b.LoopIdx(func(*isa.Ctx) int { return items / 2 }, func(b *isa.Builder, it int) {
		b.Eff(func(c *isa.Ctx) {
			c.Slots[embRow] = emb + uint64(c.Rand.Intn(1<<13))*64
		})
		b.LoadAt(8, func(c *isa.Ctx) uint64 { return c.Slots[embRow] })
		b.LoopIdx(func(*isa.Ctx) int { return 8 }, func(b *isa.Builder, di int) {
			b.LoadAt(8, func(c *isa.Ctx) uint64 {
				return model + c.Slots[it]%uint64(items/2)*itemBytes + c.Slots[di]*32
			})
			b.OpDeps(isa.Simd, 1, 0)
		})
		b.LoadAt(8, constAddr(biasWord))
		b.OpsChain(isa.FAlu, 2, 1)
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(16) == 0 },
			func(b *isa.Builder) { b.StackStore(40) }, nil)
	})
	b.SyscallOp()
	rank := b.Build()

	return &Service{
		Name:  "recommender-leaf",
		Group: "Recommender",
		APIs:  []string{"rank"},
		progs: map[string]*isa.Program{"rank": rank},
		gen: func(r *rand.Rand) Request {
			k := randIn(r, 2, 5)
			return Request{
				API:      "rank",
				ArgBytes: k * 8,
				Args:     []uint64{0, uint64(k), r.Uint64()},
				Seed:     r.Int63(),
			}
		},
	}
}
