package uservices

import (
	"math/rand"
	"testing"

	"simr/internal/alloc"
)

func BenchmarkTraceMemcGet(b *testing.B) {
	suite := NewSuite()
	svc := suite.Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(1)), 1)
	sg := alloc.NewStackGroup(0, 1, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arena := alloc.NewArena(0, alloc.PolicySIMR, 32, 8)
		if _, err := svc.Trace(&reqs[0], 0, sg.StackBase(0), arena); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewSuite()
	}
}
