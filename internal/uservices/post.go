package uservices

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
)

// newPost builds the Post storage service with two very different
// APIs: newPost (validate, persist, index — long) and getPostByUser
// (index lookup, copy out — short). Naive batching mixes them and
// serialises both paths, which is why the paper sees up to 4x SIMT
// efficiency gains from per-API batching on the Post services. The
// call-heavy structure makes up to 90 % of its accesses stack accesses.
func newPost(g *alloc.Globals) *Service {
	const posts = 1 << 12
	postStore := g.Alloc(posts * 512)
	userIndex := g.Alloc(1 << 16)
	hp := hashFunc("post.hash", g.Alloc(64), 4)
	vp := validateFunc("post.validate")
	ip := marshalFunc("post.indexrpc", 24)

	bn := isa.NewProgram("post.newPost")
	parseLoop(bn, 3)
	bn.Call(vp)
	bn.Call(hp)
	// Persist the post body.
	slot := bn.Slot()
	bn.Eff(func(c *isa.Ctx) {
		c.Slots[slot] = postRow(c, postStore)
	})
	// Follower-graph permission walk before persisting: hot ACL rows
	// plus one cold post-row header hop.
	chase(bn, tableAddr(userIndex, 256, 64), 2)
	chase(bn, func(c *isa.Ctx) uint64 { return postStore + uint64(c.Rand.Intn(1<<12))*512 }, 2)
	bn.LoopIdx(func(c *isa.Ctx) int { return (16 + int(c.Arg0(1))*2) / 4 }, func(b *isa.Builder, idx int) {
		b.StackLoad(40)
		b.StackLoad(48)
		b.Ops(isa.IAlu, 2)
		b.StoreAt(32, slotSeq(slot, idx, 32), 1)
		b.StackStore(56)
	})
	// Update the per-user index under a fine-grained lock.
	bn.AtomicAt(8, zipfAddr(userIndex, 1<<10, 64, 64))
	bn.LoopN(6, func(b *isa.Builder) {
		b.StackLoad(48)
		b.Ops(isa.IAlu, 3)
		b.StackStore(56)
	})
	bn.AtomicAt(8, zipfAddr(userIndex, 1<<10, 64, 64))
	bn.Call(ip)
	// Response proto serialization: stack-to-stack packing.
	bn.LoopN(12, func(b *isa.Builder) {
		b.StackLoad(64)
		b.Ops(isa.IAlu, 1)
		b.StackStore(72)
		b.StackStore(80)
	})
	bn.SyscallOp()
	newPostP := bn.Build()

	bg := isa.NewProgram("post.getPostByUser")
	parseLoop(bg, 2)
	bg.Call(hp)
	// Timeline walk: dependent hops through the user index (hot) and
	// one cold hop to the post header.
	chase(bg, tableAddr(userIndex, 256, 64), 2)
	chase(bg, func(c *isa.Ctx) uint64 {
		return postStore + uint64(c.Rand.Intn(1<<12))*512
	}, 1)
	slot2 := bg.Slot()
	bg.Eff(func(c *isa.Ctx) {
		c.Slots[slot2] = postRow(c, postStore)
	})
	bg.LoopIdx(func(*isa.Ctx) int { return 4 }, func(b *isa.Builder, idx int) {
		b.LoadAt(32, slotSeq(slot2, idx, 32))
		b.StackStore(40, 1)
		b.StackStore(48)
		b.StackLoad(56)
	})
	// Response proto serialization.
	bg.LoopN(10, func(b *isa.Builder) {
		b.StackLoad(64)
		b.Ops(isa.IAlu, 1)
		b.StackStore(72)
		b.StackStore(80)
	})
	bg.SyscallOp()
	getP := bg.Build()

	return &Service{
		Name:  "post",
		Group: "Post",
		APIs:  []string{"newPost", "getPostByUser"},
		progs: map[string]*isa.Program{"newPost": newPostP, "getPostByUser": getP},
		gen: func(r *rand.Rand) Request {
			if r.Float64() < 0.55 {
				words := randIn(r, 4, 16)
				return Request{
					API:      "newPost",
					ArgBytes: words * 8,
					Args:     []uint64{0, uint64(words)},
					Seed:     r.Int63(),
				}
			}
			return Request{
				API:      "getPostByUser",
				ArgBytes: 16,
				Args:     []uint64{1, 2},
				Seed:     r.Int63(),
			}
		},
	}
}

// validateFunc builds a content-validation callee: a scan over the
// post body on the stack with a couple of cheap checks per word.
func validateFunc(name string) *isa.Program {
	b := isa.NewFunc(name)
	b.Loop(argLen, func(b *isa.Builder) {
		b.StackLoad(24)
		b.OpsChain(isa.IAlu, 3, 1)
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(64) == 0 },
			func(b *isa.Builder) { b.Ops(isa.IAlu, 2) }, nil)
	})
	return b.Build()
}

// newPostText builds the text-processing nanoservice: per-word
// dictionary lookups over a body of 8..160 words. The large length
// variance is exactly what per-argument-size batching fixes (the
// paper reports up to 5x efficiency recovery here).
func newPostText(g *alloc.Globals) *Service {
	const dict = 1 << 15
	dictionary := g.Alloc(dict * 16)
	hp := hashFunc("post-text.hash", g.Alloc(64), 3)

	b := isa.NewProgram("post-text.process")
	b.SyscallOp()
	b.Call(hp)
	// Document metadata chain: one cold hop, two hot hops.
	chase(b, tableAddr(dictionary, dict, 16), 1)
	chase(b, tableAddr(dictionary, 1024, 16), 2)
	b.Loop(argLen, func(b *isa.Builder) {
		b.StackLoad(24)
		b.OpsChain(isa.IAlu, 4, 1)
		b.LoadAt(8, zipfAddr(dictionary, dict, 16, 4096))
		// Rare-word slow path: infrequent and short, so divergence
		// stays low (compiled services isolate heavy paths, Key Obs #2).
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(32) == 0 },
			func(b *isa.Builder) { b.Ops(isa.IAlu, 2) },
			nil)
		b.StackStore(40)
	})
	b.SyscallOp()
	process := b.Build()

	return &Service{
		Name:  "post-text",
		Group: "Post",
		APIs:  []string{"process"},
		progs: map[string]*isa.Program{"process": process},
		gen: func(r *rand.Rand) Request {
			words := 8
			if f := r.Float64(); f < 0.5 {
				words = randIn(r, 8, 24)
			} else if f < 0.85 {
				words = randIn(r, 24, 64)
			} else {
				words = randIn(r, 64, 160)
			}
			return Request{
				API:      "process",
				ArgBytes: words * 8,
				Args:     []uint64{0, uint64(words)},
				Seed:     r.Int63(),
			}
		},
	}
}

// newURLShort builds the URL shortener: a fixed-length base-62 encode
// plus one table insert. Short and uniform, so it batches almost
// perfectly under any policy.
func newURLShort(g *alloc.Globals) *Service {
	const slots = 1 << 14
	table := g.Alloc(slots * 32)
	counter := g.Alloc(64)
	hp := hashFunc("urlshort.hash", g.Alloc(64), 3)

	b := isa.NewProgram("urlshort.shorten")
	parseLoop(b, 2)
	b.Call(hp)
	b.AtomicAt(8, constAddr(counter))
	// Collision probe: one cold hop into the slot table, then hot
	// rehash hops.
	chase(b, tableAddr(table, slots, 32), 1)
	chase(b, tableAddr(table, 512, 32), 2)
	b.LoopN(11, func(b *isa.Builder) {
		b.OpsChain(isa.IAlu, 4, 1)
		b.StackStore(32)
	})
	b.StoreAt(8, tableAddr(table, slots, 32))
	b.SyscallOp()
	shorten := b.Build()

	return &Service{
		Name:  "urlshort",
		Group: "Post",
		APIs:  []string{"shorten"},
		progs: map[string]*isa.Program{"shorten": shorten},
		gen: func(r *rand.Rand) Request {
			urlWords := randIn(r, 3, 6)
			return Request{
				API:      "shorten",
				ArgBytes: urlWords * 8,
				Args:     []uint64{0, uint64(urlWords)},
				Seed:     r.Int63(),
			}
		},
	}
}

// newUniqueID builds the unique-ID nanoservice: a snowflake-style ID
// from a timestamp, a shard constant and an atomic sequence bump.
// Nearly branch-free and uniform — the SIMT best case.
func newUniqueID(g *alloc.Globals) *Service {
	seq := g.Alloc(64)
	shardCfg := g.Alloc(64)
	sessTable := g.Alloc((1 << 12) * 64)

	b := isa.NewProgram("uniqueid.mint")
	b.SyscallOp()
	b.LoadAt(8, constAddr(shardCfg))
	b.OpsChain(isa.IAlu, 8, 1)
	b.Ops(isa.IAlu, 14)
	b.AtomicAt(8, constAddr(seq))
	// Session bookkeeping: one cold descriptor hop, one hot hop.
	chase(b, tableAddr(sessTable, 1<<12, 64), 1)
	chase(b, tableAddr(sessTable, 256, 64), 1)
	b.StackStore(24)
	b.OpsChain(isa.IAlu, 6, 1)
	b.LoopN(4, func(b *isa.Builder) {
		b.Ops(isa.IAlu, 3)
		b.StackStore(32)
	})
	b.SyscallOp()
	mint := b.Build()

	return &Service{
		Name:  "uniqueid",
		Group: "Post",
		APIs:  []string{"mint"},
		progs: map[string]*isa.Program{"mint": mint},
		gen: func(r *rand.Rand) Request {
			return Request{
				API:      "mint",
				ArgBytes: 8,
				Args:     []uint64{0, 1},
				Seed:     r.Int63(),
			}
		},
	}
}

// newUserTag builds the user-tagging service: resolve each mentioned
// user through the social-graph adjacency table.
func newUserTag(g *alloc.Globals) *Service {
	const users = 1 << 14
	graph := g.Alloc(users * 64)
	hp := hashFunc("usertag.hash", g.Alloc(64), 3)

	b := isa.NewProgram("usertag.tag")
	parseLoop(b, 2)
	b.Call(hp)
	b.Loop(argLen, func(b *isa.Builder) {
		// Two-hop graph traversal: cold user row, then its edge row.
		b.LoadAt(8, tableAddr(graph, users, 64))
		b.LoadAt(8, tableAddr(graph, users, 64), 1)
		b.OpsChain(isa.IAlu, 3, 1)
		// Check the mention's follower edge: short divergent branch.
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(3) == 0 },
			func(b *isa.Builder) {
				b.LoadAt(8, tableAddr(graph, users, 64))
				b.Ops(isa.IAlu, 2)
			}, nil)
		b.StackStore(40)
	})
	b.SyscallOp()
	tag := b.Build()

	return &Service{
		Name:  "usertag",
		Group: "Post",
		APIs:  []string{"tag"},
		progs: map[string]*isa.Program{"tag": tag},
		gen: func(r *rand.Rand) Request {
			mentions := randIn(r, 1, 8)
			return Request{
				API:      "tag",
				ArgBytes: mentions * 8,
				Args:     []uint64{0, uint64(mentions)},
				Seed:     r.Int63(),
			}
		},
	}
}

// postRow picks a post-store row with a hot-set skew.
func postRow(c *isa.Ctx, store uint64) uint64 {
	if c.Rand.Float64() < 0.9 {
		return store + uint64(c.Rand.Intn(128))*512
	}
	return store + uint64(c.Rand.Intn(1<<12))*512
}
