package uservices

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
)

// GridWidth is the SPMD grid stride: data-parallel threads process
// elements interleaved at this stride, so lanes of one batch touch
// consecutive words (the classic GPU coalescing-friendly layout).
const GridWidth = 32

// NewGPGPUSuite builds the §VI-D study: classic data-parallel SPMD
// kernels (saxpy, dot product, 1-D stencil) expressed as services, so
// the same RunService machinery can compare CPU vs RPU vs GPU on
// OpenMP/CUDA-style work. The paper argues the RPU runs these with
// GPU-class efficiency while keeping the CPU programming model; GPUs
// remain the efficiency winner.
func NewGPGPUSuite() *Suite {
	g := alloc.NewGlobals()
	suite := &Suite{byName: map[string]*Service{}}
	base := uint64(1 << 40)
	for _, build := range []func(*alloc.Globals) *Service{newSaxpy, newDotProd, newStencil} {
		svc := build(g)
		svc.TunedBatch = 32
		progs := make([]*isa.Program, 0, len(svc.progs))
		for _, api := range svc.APIs {
			progs = append(progs, svc.progs[api])
		}
		next, err := isa.Link(base, progs...)
		if err != nil {
			panic(err)
		}
		base = (next + (1 << 20)) &^ ((1 << 20) - 1)
		suite.Services = append(suite.Services, svc)
		suite.byName[svc.Name] = svc
	}
	return suite
}

// tidArg is the Args index carrying the SPMD thread id.
const tidArg = 2

// gridAddr returns base + (iter*GridWidth + tid)*8: consecutive across
// the lanes of a batch at every iteration.
func gridAddr(base uint64, iterSlot int) isa.AddrFn {
	return func(c *isa.Ctx) uint64 {
		return base + (c.Slots[iterSlot]*GridWidth+c.Arg0(tidArg))*8
	}
}

func spmdGen(api string, iters int) func(r *rand.Rand) Request {
	tid := uint64(0)
	return func(r *rand.Rand) Request {
		t := tid % GridWidth
		tid++
		return Request{
			API:      api,
			ArgBytes: 32,
			Args:     []uint64{0, uint64(iters), t},
			Seed:     r.Int63(),
		}
	}
}

// newSaxpy builds y[i] = a*x[i] + y[i] over an interleaved grid.
func newSaxpy(g *alloc.Globals) *Service {
	n := 256
	x := g.Alloc(n * GridWidth * 8)
	y := g.Alloc(n * GridWidth * 8)
	a := g.Alloc(64)

	b := isa.NewProgram("saxpy.run")
	b.SyscallOp()
	b.LoadAt(8, constAddr(a)) // broadcast scalar
	b.LoopIdx(func(c *isa.Ctx) int { return int(c.Arg0(1)) }, func(bb *isa.Builder, i int) {
		bb.LoadAt(8, gridAddr(x, i))
		bb.LoadAt(8, gridAddr(y, i))
		bb.OpDeps(isa.Simd, 1, 2) // mac consumes both loads
		bb.StoreAt(8, gridAddr(y, i), 1)
	})
	b.SyscallOp()
	run := b.Build()

	return &Service{
		Name:  "spmd-saxpy",
		Group: "GPGPU",
		APIs:  []string{"run"},
		progs: map[string]*isa.Program{"run": run},
		gen:   spmdGen("run", 192),
	}
}

// newDotProd builds a blocked dot product with a per-thread serial
// accumulation chain and a final atomic reduction.
func newDotProd(g *alloc.Globals) *Service {
	n := 256
	va := g.Alloc(n * GridWidth * 8)
	vb := g.Alloc(n * GridWidth * 8)
	sum := g.Alloc(64)

	b := isa.NewProgram("dotprod.run")
	b.SyscallOp()
	b.LoopIdx(func(c *isa.Ctx) int { return int(c.Arg0(1)) }, func(bb *isa.Builder, i int) {
		bb.LoadAt(8, gridAddr(va, i))
		bb.LoadAt(8, gridAddr(vb, i))
		bb.OpDeps(isa.Simd, 1, 2)
		// Accumulate: serial FP chain across iterations (distance = one
		// loop body: 4 instrs + latch + header branch).
		bb.OpDeps(isa.FAlu, 1, 7)
	})
	b.AtomicAt(8, constAddr(sum))
	b.SyscallOp()
	run := b.Build()

	return &Service{
		Name:  "spmd-dotprod",
		Group: "GPGPU",
		APIs:  []string{"run"},
		progs: map[string]*isa.Program{"run": run},
		gen:   spmdGen("run", 192),
	}
}

// newStencil builds a 1-D 3-point stencil: three neighbouring loads,
// a weighted sum, one store.
func newStencil(g *alloc.Globals) *Service {
	n := 300
	in := g.Alloc((n + 2) * GridWidth * 8)
	out := g.Alloc(n * GridWidth * 8)

	b := isa.NewProgram("stencil.run")
	b.SyscallOp()
	b.LoopIdx(func(c *isa.Ctx) int { return int(c.Arg0(1)) }, func(bb *isa.Builder, i int) {
		bb.LoadAt(8, gridAddr(in, i))
		bb.LoadAt(8, func(c *isa.Ctx) uint64 {
			return in + ((c.Slots[i]+1)*GridWidth+c.Arg0(tidArg))*8
		})
		bb.LoadAt(8, func(c *isa.Ctx) uint64 {
			return in + ((c.Slots[i]+2)*GridWidth+c.Arg0(tidArg))*8
		})
		bb.OpDeps(isa.Simd, 1, 3)
		bb.OpDeps(isa.Simd, 1, 3)
		bb.OpsChain(isa.Simd, 1, 1)
		bb.StoreAt(8, gridAddr(out, i), 1)
	})
	b.SyscallOp()
	run := b.Build()

	return &Service{
		Name:  "spmd-stencil",
		Group: "GPGPU",
		APIs:  []string{"run"},
		progs: map[string]*isa.Program{"run": run},
		gen:   spmdGen("run", 160),
	}
}
