package uservices

import (
	"math/rand"

	"simr/internal/alloc"
	"simr/internal/isa"
)

// newMcRouter builds the memcached routing proxy: parse the key,
// compute a consistent hash, pick one of four destination pools and
// forward the request. Almost pure integer + stack work, so its CPU
// energy is dominated by the frontend and its SIMT efficiency is high
// once requests are batched per API.
func newMcRouter(g *alloc.Globals) *Service {
	routeTable := g.Alloc(4 * 64) // four pool descriptors
	const sessions = 1 << 14
	sessionTable := g.Alloc(sessions * 64)
	hp := hashFunc("mcrouter.hash", g.Alloc(64), 6)
	mp := marshalFunc("mcrouter.fwd", 40)

	b := isa.NewProgram("mcrouter.route")
	parseLoop(b, 3)
	b.Call(hp)
	// Connection/session list walk: a dependent-load chain through a
	// mostly-cold table — the stall pattern that keeps proxy IPC well
	// below 1 on real hardware.
	// The session list itself is small and cache-resident (uniform
	// walk)...
	chase(b, tableAddr(sessionTable, 512, 64), 5)
	// ...but each request also resolves its connection descriptor via
	// a short chain through the full, cold table: a compulsory DRAM
	// walk every thread (and every lane) pays alike.
	chase(b, tableAddr(sessionTable, sessions, 64), 2)
	b.StackStore(40)
	// Destination select: a short data-dependent ladder over the hash.
	dest := func(k uint64) func(*isa.Ctx) bool {
		return func(c *isa.Ctx) bool { return c.Arg0(2)%4 == k }
	}
	b.If(dest(0), func(b *isa.Builder) {
		b.LoadAt(8, constAddr(routeTable))
		b.Ops(isa.IAlu, 3)
	}, func(b *isa.Builder) {
		b.If(dest(1), func(b *isa.Builder) {
			b.LoadAt(8, constAddr(routeTable+64))
			b.Ops(isa.IAlu, 3)
		}, func(b *isa.Builder) {
			b.If(dest(2), func(b *isa.Builder) {
				b.LoadAt(8, constAddr(routeTable+128))
				b.Ops(isa.IAlu, 3)
			}, func(b *isa.Builder) {
				b.LoadAt(8, constAddr(routeTable+192))
				b.Ops(isa.IAlu, 3)
			})
		})
	})
	// Forward: copy the request into the wire buffer.
	b.LoopN(20, func(b *isa.Builder) {
		b.StackLoad(48)
		b.Ops(isa.IAlu, 2)
		b.StackStore(56)
	})
	b.Call(mp)
	b.SyscallOp()
	route := b.Build()

	return &Service{
		Name:  "mcrouter",
		Group: "Memcached",
		APIs:  []string{"route"},
		progs: map[string]*isa.Program{"route": route},
		gen: func(r *rand.Rand) Request {
			kl := randIn(r, 2, 5) // key words
			return Request{
				API:      "route",
				ArgBytes: kl * 8,
				Args:     []uint64{0, uint64(kl), r.Uint64()},
				Seed:     r.Int63(),
			}
		},
	}
}

// newMemc builds the in-memory cache engine with get and set APIs:
// parse, hash, bucket probe, chain walk, then value copy (get) or
// value write under a fine-grained bucket lock (set). Mixing get/set in
// one batch serialises the paths, which is why per-API batching
// roughly doubles memcached's SIMT efficiency in the paper.
func newMemc(g *alloc.Globals) *Service {
	const nBuckets = 1 << 13
	buckets := g.Alloc(nBuckets * 64)
	valueArena := g.Alloc(1 << 22)
	statsWord := g.Alloc(64)
	hp := hashFunc("memc.hash", g.Alloc(64), 4)

	buildCommon := func(b *isa.Builder) int {
		parseLoop(b, 2)
		b.Call(hp)
		bkt := b.Slot()
		b.Eff(func(c *isa.Ctx) {
			c.Slots[bkt] = buckets + uint64(c.Rand.Intn(nBuckets))*64
		})
		b.LoadAt(8, func(c *isa.Ctx) uint64 { return c.Slots[bkt] })
		// Hash-chain walk: two dependent hops across item headers
		// scattered through the cold value arena (compulsory misses for
		// every thread), then a hot LRU-list touch.
		chase(b, func(c *isa.Ctx) uint64 {
			return valueArena + uint64(c.Rand.Intn(1<<14))*256
		}, 2)
		chase(b, func(c *isa.Ctx) uint64 {
			return buckets + uint64(c.Rand.Intn(256))*64
		}, 2)
		return bkt
	}

	bg := isa.NewProgram("memc.get")
	buildCommon(bg)
	// Copy the value out: divergent reads from the shared value arena,
	// coalescable writes to the response buffer on the stack.
	vbase := bg.Slot()
	bg.Eff(func(c *isa.Ctx) {
		c.Slots[vbase] = valueRow(c, valueArena)
	})
	// memcpy-style wide copy: one 32-byte vector load per four words,
	// staged through the response buffer on the stack.
	bg.LoopIdx(func(c *isa.Ctx) int { return (int(c.Arg0(2)) + 3) / 4 }, func(b *isa.Builder, idx int) {
		b.LoadAt(32, slotSeq(vbase, idx, 32))
		b.Ops(isa.IAlu, 2)
		b.StackStore(64, 1)
		b.StackLoad(72)
		b.StackStore(80)
	})
	bg.LoadAt(8, constAddr(statsWord)) // shared stats read: broadcast
	bg.SyscallOp()
	get := bg.Build()

	bs := isa.NewProgram("memc.set")
	bkt := buildCommon(bs)
	// Fine-grained bucket lock, value write, unlock, stats bump.
	bs.AtomicAt(8, func(c *isa.Ctx) uint64 { return c.Slots[bkt] + 56 })
	vb := bs.Slot()
	bs.Eff(func(c *isa.Ctx) {
		c.Slots[vb] = valueRow(c, valueArena)
	})
	bs.LoopIdx(func(c *isa.Ctx) int { return (int(c.Arg0(2)) + 3) / 4 }, func(b *isa.Builder, idx int) {
		b.StackLoad(64)
		b.StackLoad(72)
		b.StoreAt(32, slotSeq(vb, idx, 32), 1)
	})
	bs.AtomicAt(8, func(c *isa.Ctx) uint64 { return c.Slots[bkt] + 56 })
	bs.AtomicAt(8, constAddr(statsWord+8))
	bs.SyscallOp()
	set := bs.Build()

	return &Service{
		Name:  "memc",
		Group: "Memcached",
		APIs:  []string{"get", "set"},
		progs: map[string]*isa.Program{"get": get, "set": set},
		gen: func(r *rand.Rand) Request {
			// Value size correlates with the key class (keys of one
			// namespace store similar objects), so the server's
			// argument-size bucketing also groups value-copy loops.
			kl := randIn(r, 1, 4)
			vw := kl*10 + randIn(r, 0, 3)
			if r.Float64() < 0.7 {
				return Request{
					API:      "get",
					ArgBytes: kl * 8,
					Args:     []uint64{0, uint64(kl), uint64(vw), r.Uint64()},
					Seed:     r.Int63(),
				}
			}
			return Request{
				API:      "set",
				ArgBytes: (kl + vw) * 8,
				Args:     []uint64{1, uint64(kl), uint64(vw), r.Uint64()},
				Seed:     r.Int63(),
			}
		},
	}
}

// newMemcBackend builds the persistent store behind the cache: a
// four-level index walk with data-dependent descent (pointer-chasing
// loads on the critical path) followed by a value copy. Its divergence
// is data-dependent, so batching policies recover less efficiency here.
func newMemcBackend(g *alloc.Globals) *Service {
	const nodes = 1 << 12
	index := g.Alloc(nodes * 64)
	valueLog := g.Alloc(1 << 22)

	b := isa.NewProgram("memc-backend.lookup")
	parseLoop(b, 2)
	// Index walk: the upper levels stay cached (root pages), the two
	// leaf levels are cold for every thread; all hops are dependent.
	chase(b, tableAddr(index, 64, 64), 4)
	chase(b, tableAddr(index, nodes, 64), 2)
	b.LoopN(4, func(b *isa.Builder) {
		b.OpsChain(isa.IAlu, 3, 1)
		b.If(func(c *isa.Ctx) bool { return c.Rand.Intn(8) == 0 },
			func(b *isa.Builder) { b.Ops(isa.IAlu, 2) },
			func(b *isa.Builder) { b.Ops(isa.IAlu, 3); b.StackStore(48) })
	})
	// Value copy from the log.
	vb := b.Slot()
	b.Eff(func(c *isa.Ctx) {
		c.Slots[vb] = valueRow(c, valueLog)
	})
	b.LoopIdx(func(c *isa.Ctx) int { return (int(c.Arg0(2)) + 3) / 4 }, func(bb *isa.Builder, idx int) {
		bb.LoadAt(32, slotSeq(vb, idx, 32))
		bb.StackStore(64, 1)
		bb.StackStore(72)
	})
	b.SyscallOp()
	lookup := b.Build()

	return &Service{
		Name:  "memc-backend",
		Group: "Memcached",
		APIs:  []string{"lookup"},
		progs: map[string]*isa.Program{"lookup": lookup},
		gen: func(r *rand.Rand) Request {
			kl := randIn(r, 1, 4)
			vw := kl*8 + randIn(r, 0, 4)
			return Request{
				API:      "lookup",
				ArgBytes: kl * 8,
				Args:     []uint64{0, uint64(kl), uint64(vw)},
				Seed:     r.Int63(),
			}
		},
	}
}

// valueRow picks the request's 256-byte value row in a shared arena
// with a hot-set skew: most requests touch a small working set that
// stays cached, the tail streams from DRAM.
func valueRow(c *isa.Ctx, arena uint64) uint64 {
	if c.Rand.Float64() < 0.9 {
		return arena + uint64(c.Rand.Intn(192))*256
	}
	return arena + uint64(c.Rand.Intn(1<<14))*256
}
