package uservices

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simr/internal/alloc"
	"simr/internal/isa"
)

func TestSuiteHasFifteenServices(t *testing.T) {
	suite := NewSuite()
	if len(suite.Services) != 15 {
		t.Fatalf("suite has %d services, want 15", len(suite.Services))
	}
	groups := map[string]int{}
	for _, svc := range suite.Services {
		groups[svc.Group]++
	}
	want := map[string]int{"Memcached": 3, "Search": 2, "HDSearch": 2, "Recommender": 2, "Post": 5, "User": 1}
	for g, n := range want {
		if groups[g] != n {
			t.Fatalf("group %s has %d services, want %d", g, groups[g], n)
		}
	}
}

func TestEveryServiceTraces(t *testing.T) {
	suite := NewSuite()
	for _, svc := range suite.Services {
		r := rand.New(rand.NewSource(3))
		reqs := svc.Generate(r, 16)
		sg := alloc.NewStackGroup(0, 16, false)
		for i := range reqs {
			arena := alloc.NewArena(i, alloc.PolicyCPU, 32, 8)
			tr, err := svc.Trace(&reqs[i], i, sg.StackBase(i), arena)
			if err != nil {
				t.Fatalf("%s: %v", svc.Name, err)
			}
			if len(tr) < 20 {
				t.Fatalf("%s request %d: suspiciously short trace (%d ops)", svc.Name, i, len(tr))
			}
			if len(tr) > 100000 {
				t.Fatalf("%s request %d: runaway trace (%d ops)", svc.Name, i, len(tr))
			}
		}
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(5)), 4)
	sg := alloc.NewStackGroup(0, 4, false)
	for i := range reqs {
		a1 := alloc.NewArena(i, alloc.PolicySIMR, 32, 8)
		a2 := alloc.NewArena(i, alloc.PolicySIMR, 32, 8)
		t1, err1 := svc.Trace(&reqs[i], i, sg.StackBase(i), a1)
		t2, err2 := svc.Trace(&reqs[i], i, sg.StackBase(i), a2)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(t1) != len(t2) {
			t.Fatalf("non-deterministic trace length %d vs %d", len(t1), len(t2))
		}
		for j := range t1 {
			if t1[j] != t2[j] {
				t.Fatalf("trace diverges at op %d", j)
			}
		}
	}
}

func TestServiceProgramsLinkedDisjoint(t *testing.T) {
	suite := NewSuite()
	type span struct {
		lo, hi uint64
		name   string
	}
	var spans []span
	for _, svc := range suite.Services {
		for _, api := range svc.APIs {
			p := svc.Program(api)
			if !p.Linked() {
				t.Fatalf("%s/%s not linked", svc.Name, api)
			}
			spans = append(spans, span{p.Base, p.Base + p.Size(), svc.Name + "/" + api})
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("PC ranges overlap: %s [%#x,%#x) and %s [%#x,%#x)",
					a.name, a.lo, a.hi, b.name, b.lo, b.hi)
			}
		}
	}
}

func TestRequestAPIsAreValid(t *testing.T) {
	suite := NewSuite()
	for _, svc := range suite.Services {
		r := rand.New(rand.NewSource(7))
		for _, req := range svc.Generate(r, 64) {
			found := false
			for _, api := range svc.APIs {
				if api == req.API {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s generated unknown API %q", svc.Name, req.API)
			}
			if req.ArgBytes <= 0 {
				t.Fatalf("%s request has non-positive ArgBytes", svc.Name)
			}
		}
	}
}

func TestMemcAPIMix(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(11)), 1000)
	gets := 0
	for _, r := range reqs {
		if r.API == "get" {
			gets++
		}
	}
	if gets < 600 || gets > 800 {
		t.Fatalf("memc get fraction %d/1000, want ~70%%", gets)
	}
}

func TestUserHitFlagDistribution(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("user")
	reqs := svc.Generate(rand.New(rand.NewSource(13)), 2000)
	hits := 0
	for _, r := range reqs {
		if r.Args[HitFlagArg] != 0 {
			hits++
		}
	}
	frac := float64(hits) / 2000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("user hit rate %.3f, want ~%.2f", frac, UserHitRate)
	}
}

func TestUserMissPathLonger(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("user")
	sg := alloc.NewStackGroup(0, 2, false)
	mk := func(hit uint64) int {
		req := Request{API: "getUser", Args: []uint64{0, 2, 0, hit}, Seed: 99}
		tr, err := svc.Trace(&req, 0, sg.StackBase(0), alloc.NewArena(0, alloc.PolicyCPU, 32, 8))
		if err != nil {
			t.Fatal(err)
		}
		return len(tr)
	}
	hitLen, missLen := mk(1), mk(0)
	if missLen <= hitLen*2 {
		t.Fatalf("miss path (%d ops) should dwarf hit path (%d ops)", missLen, hitLen)
	}
}

func TestPostAPIsHaveDifferentLengths(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("post")
	sg := alloc.NewStackGroup(0, 2, false)
	newPost := Request{API: "newPost", Args: []uint64{0, 10}, Seed: 1}
	getPost := Request{API: "getPostByUser", Args: []uint64{1, 2}, Seed: 1}
	t1, err := svc.Trace(&newPost, 0, sg.StackBase(0), alloc.NewArena(0, alloc.PolicyCPU, 32, 8))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := svc.Trace(&getPost, 0, sg.StackBase(0), alloc.NewArena(0, alloc.PolicyCPU, 32, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) <= len(t2) {
		t.Fatalf("newPost (%d) should be longer than getPostByUser (%d)", len(t1), len(t2))
	}
}

func TestStackFractionHighInPost(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("post")
	reqs := svc.Generate(rand.New(rand.NewSource(17)), 32)
	sg := alloc.NewStackGroup(0, 32, false)
	stack, heap := 0, 0
	for i := range reqs {
		tr, err := svc.Trace(&reqs[i], i, sg.StackBase(i), alloc.NewArena(i, alloc.PolicyCPU, 32, 8))
		if err != nil {
			t.Fatal(err)
		}
		s := isa.Summarize(tr, alloc.IsStack)
		stack += s.StackOps
		heap += s.HeapOps
	}
	frac := float64(stack) / float64(stack+heap)
	if frac < 0.5 {
		t.Fatalf("post stack access fraction %.2f, paper says up to 0.9", frac)
	}
}

func TestDataIntensiveLeavesTunedToEight(t *testing.T) {
	suite := NewSuite()
	for _, name := range []string{"search-leaf", "hdsearch-leaf"} {
		svc := suite.Get(name)
		if !svc.DataIntensive || svc.TunedBatch != 8 {
			t.Fatalf("%s: DataIntensive=%v TunedBatch=%d", name, svc.DataIntensive, svc.TunedBatch)
		}
	}
	if suite.Get("memc").TunedBatch != 32 {
		t.Fatal("memc should run at batch 32")
	}
}

func TestBranchReconvCoversBranches(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("post-text")
	rec := svc.BranchReconv()
	if len(rec) == 0 {
		t.Fatal("no reconvergence points recorded")
	}
	for br, rc := range rec {
		if rc <= br {
			t.Fatalf("reconv %#x not after branch %#x", rc, br)
		}
	}
}

// Property: arg-size ordering correlates with trace length for the
// length-driven services (post-text): longer arguments never produce a
// dramatically shorter trace.
func TestQuickArgSizeLengthCorrelation(t *testing.T) {
	suite := NewSuite()
	svc := suite.Get("post-text")
	sg := alloc.NewStackGroup(0, 1, false)
	f := func(a, b uint8) bool {
		wa, wb := int(a%150)+8, int(b%150)+8
		if wa > wb {
			wa, wb = wb, wa
		}
		mk := func(words int) int {
			req := Request{API: "process", Args: []uint64{0, uint64(words)}, Seed: 5}
			tr, err := svc.Trace(&req, 0, sg.StackBase(0), alloc.NewArena(0, alloc.PolicyCPU, 32, 8))
			if err != nil {
				return -1
			}
			return len(tr)
		}
		la, lb := mk(wa), mk(wb)
		return la > 0 && lb > 0 && lb >= la
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
