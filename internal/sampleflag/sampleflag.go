// Package sampleflag wires the shared -sample flag into the cmd
// drivers, next to internal/obsflag's -metrics/-trace pair: the flag
// installs a process-wide sampled-simulation default (see
// internal/sample) that every cycle-level chip study picks up without
// per-driver plumbing. The default "off" leaves sampling disabled and
// study output byte-identical; queue-level studies (syssim) ignore
// sampling because they never enter the cycle-level timing loop.
package sampleflag

import (
	"flag"

	"simr/internal/sample"
)

// Flags holds the registered flag value for one driver.
type Flags struct {
	spec *string
}

// Add registers -sample on fs (flag.CommandLine for the drivers).
// Call before flag.Parse.
func Add(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.spec = fs.String("sample", "off",
		"sampled timing simulation: 'off', PERIOD (warmup 1) or PERIOD:WARMUP — time every PERIOD-th batch, functionally warm WARMUP batches before each, skip the rest (1 = time everything)")
	return f
}

// Setup parses the flag and installs the process-wide sampling
// default. Call once, after flag.Parse and before the studies run.
func (f *Flags) Setup() (sample.Config, error) {
	cfg, err := sample.Parse(*f.spec)
	if err != nil {
		return sample.Config{}, err
	}
	sample.SetDefault(cfg)
	return cfg, nil
}
