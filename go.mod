module simr

go 1.22
