// Benchmarks regenerating every table and figure of the paper's
// evaluation at reduced request counts (use the cmd/ tools for
// full-scale runs). Custom metrics report the headline quantity of
// each figure so `go test -bench .` doubles as a results summary:
//
//	Fig 4/11  SIMT efficiency per batching policy
//	Fig 5     thread scaling (analytic)
//	Fig 10    CPU frontend+OoO dynamic energy share
//	Fig 14    RPU/CPU L1 traffic ratio
//	Fig 15    L1 MPKI by batch size
//	Fig 19    requests/joule vs CPU
//	Fig 20    service latency vs CPU
//	Fig 21    memory-latency and issued-instruction ratios
//	Fig 22    end-to-end saturation throughput
//	Tab V     area/power model
package simr

import (
	"io"
	"math/rand"
	"testing"

	"simr/internal/core"
	"simr/internal/energy"
	"simr/internal/queuesim"
	"simr/internal/stats"
	"simr/internal/uservices"
)

// benchRequests keeps benchmark iterations tractable; the cmd tools
// default to the paper's 2400.
const benchRequests = 320

func benchSuite(b *testing.B) *uservices.Suite {
	b.Helper()
	return uservices.NewSuite()
}

func BenchmarkFig04NaiveSIMTEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := benchSuite(b)
		rows, err := core.EfficiencyStudy(suite, benchRequests, 42)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.Naive
		}
		b.ReportMetric(100*sum/float64(len(rows)), "naive-eff-%")
	}
}

func BenchmarkFig05ThreadScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.Fig5Scaling()
		b.ReportMetric(float64(rows[len(rows)-1].Threads), "threads@HBM")
	}
}

func BenchmarkFig11BatchingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := benchSuite(b)
		rows, err := core.EfficiencyStudy(suite, benchRequests, 42)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.PerArg
		}
		b.ReportMetric(100*sum/float64(len(rows)), "optimized-eff-%")
	}
}

func chipRows(b *testing.B, withGPU bool) []core.ChipRow {
	b.Helper()
	suite := benchSuite(b)
	rows, err := core.ChipStudy(suite, benchRequests, 42, withGPU)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func BenchmarkFig10EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := chipRows(b, false)
		sum := 0.0
		for _, r := range rows {
			sum += r.CPU.Energy.FrontendOoO / r.CPU.Energy.Dynamic()
		}
		b.ReportMetric(100*sum/float64(len(rows)), "fe+ooo-%")
	}
}

func BenchmarkFig14L1Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := chipRows(b, false)
		sum := 0.0
		for _, r := range rows {
			sum += r.RPU.L1AccessesPerRequest() / r.CPU.L1AccessesPerRequest()
		}
		b.ReportMetric(sum/float64(len(rows)), "rpu/cpu-L1x")
	}
}

func BenchmarkFig15MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := benchSuite(b)
		rows, err := core.MPKIStudy(suite, benchRequests, 42)
		if err != nil {
			b.Fatal(err)
		}
		// Report the data-intensive-leaf improvement from batch tuning.
		for _, r := range rows {
			if r.Service == "search-leaf" {
				b.ReportMetric(r.RPU[32]/r.RPU[8], "leafMPKI-b32/b8")
			}
		}
	}
}

func BenchmarkFig19EnergyEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := chipRows(b, false)
		var rp []float64
		for _, r := range rows {
			rp = append(rp, r.RPU.ReqPerJoule()/r.CPU.ReqPerJoule())
		}
		b.ReportMetric(stats.GeoMean(rp), "rpu-req/J-x")
	}
}

func BenchmarkFig20ServiceLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := chipRows(b, false)
		sum := 0.0
		for _, r := range rows {
			sum += r.RPU.AvgLatencySec() / r.CPU.AvgLatencySec()
		}
		b.ReportMetric(sum/float64(len(rows)), "rpu-latency-x")
	}
}

func BenchmarkFig21LatencyComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := chipRows(b, false)
		lat, instr := 0.0, 0.0
		for _, r := range rows {
			lat += stats.Ratio(r.RPU.Stats.AvgLoadLatency(), r.CPU.Stats.AvgLoadLatency())
			instr += stats.Ratio(float64(r.RPU.Stats.Uops), float64(r.CPU.Stats.Uops))
		}
		n := float64(len(rows))
		b.ReportMetric(lat/n, "memlat-x")
		b.ReportMetric(instr/n, "frontend-ops-x")
	}
}

func BenchmarkFig22EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		knee := func(rpu, split bool) float64 {
			last := 0.0
			for _, q := range []float64{10000, 15000, 20000, 30000, 40000, 50000, 60000} {
				cfg := queuesim.DefaultConfig()
				cfg.QPS = q
				cfg.Seconds = 2
				cfg.RPU, cfg.Split = rpu, split
				m := queuesim.Run(cfg)
				if m.UserUtil > 0.99 {
					break
				}
				last = q
			}
			return last
		}
		cpu := knee(false, false)
		rpu := knee(true, true)
		b.ReportMetric(cpu/1000, "cpu-kQPS")
		b.ReportMetric(rpu/1000, "rpu-split-kQPS")
		b.ReportMetric(rpu/cpu, "throughput-x")
	}
}

func BenchmarkTab05AreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		energy.WriteTableV(io.Discard)
		ca, ra, cw, rw := energy.CoreTotals()
		b.ReportMetric(ra/ca, "rpu-core-area-x")
		b.ReportMetric(rw/cw, "rpu-core-power-x")
	}
}

// Sensitivity ablations (paper §V-A1), each on a representative subset.

func sensPair(b *testing.B, svcName string, mutate func(*core.Options)) (*core.Result, *core.Result) {
	b.Helper()
	suite := benchSuite(b)
	svc := suite.Get(svcName)
	reqs := svc.Generate(rand.New(rand.NewSource(42)), benchRequests)
	base, err := core.RunService(core.ArchRPU, svc, reqs, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	mutate(&opts)
	variant, err := core.RunService(core.ArchRPU, svc, reqs, opts)
	if err != nil {
		b.Fatal(err)
	}
	return base, variant
}

func BenchmarkSensitivitySubBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, wide := sensPair(b, "uniqueid", func(o *core.Options) { o.Lanes = 32 })
		b.ReportMetric(100*(base.Latency.Mean()/wide.Latency.Mean()-1), "loss-at-8-lanes-%")
	}
}

func BenchmarkSensitivityAtomicsAtL3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, l1 := sensPair(b, "urlshort", func(o *core.Options) { o.AtomicsAtL3 = false })
		b.ReportMetric(100*(base.Latency.Mean()/l1.Latency.Mean()-1), "slowdown-%")
	}
}

func BenchmarkSensitivityAllocator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, cpuAlloc := sensPair(b, "hdsearch-leaf", func(o *core.Options) { o.AllocPolicy = 0 })
		b.ReportMetric(stats.Ratio(float64(cpuAlloc.Stats.Mem.L1.BankConflicts),
			float64(base.Stats.Mem.L1.BankConflicts)), "conflicts-x")
	}
}

func BenchmarkSensitivityMajorityVote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, lane0 := sensPair(b, "memc", func(o *core.Options) { o.MajorityVote = false })
		b.ReportMetric(stats.Ratio(float64(lane0.Stats.Mispredicts+lane0.Stats.FlushedLanes),
			float64(base.Stats.Mispredicts+base.Stats.FlushedLanes)), "flushes-x")
	}
}

func BenchmarkSensitivityReconvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, ipdom := sensPair(b, "post-text", func(o *core.Options) { o.UseIPDOM = true })
		b.ReportMetric(100*base.SIMTEff, "minsppc-eff-%")
		b.ReportMetric(100*ipdom.SIMTEff, "ipdom-eff-%")
	}
}

// BenchmarkISPCComparison runs the §VI-A SPMD-on-SIMD alternative on a
// representative service.
func BenchmarkISPCComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := benchSuite(b)
		svc := suite.Get("mcrouter")
		reqs := svc.Generate(rand.New(rand.NewSource(42)), benchRequests)
		cpu, err := core.RunService(core.ArchCPU, svc, reqs, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		isp, err := core.RunISPC(svc, reqs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(isp.ReqPerJoule()/cpu.ReqPerJoule(), "ispc-req/J-x")
	}
}

// BenchmarkGPGPUOnRPU runs the §VI-D SPMD kernel study.
func BenchmarkGPGPUOnRPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := uservices.NewGPGPUSuite()
		svc := suite.Get("spmd-saxpy")
		reqs := svc.Generate(rand.New(rand.NewSource(3)), benchRequests)
		cpu, err := core.RunService(core.ArchCPU, svc, reqs, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		rpu, err := core.RunService(core.ArchRPU, svc, reqs, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rpu.ReqPerJoule()/cpu.ReqPerJoule(), "rpu-req/J-x")
		b.ReportMetric(100*rpu.SIMTEff, "simt-eff-%")
	}
}
