// Quickstart: run one batch of memcached GET requests through the RPU
// and compare it with the single-threaded CPU — the smallest end-to-end
// use of the library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simr"
)

func main() {
	suite := simr.NewSuite()
	svc := suite.Get("memc")

	// Generate one hardware batch worth of requests.
	reqs := svc.Generate(rand.New(rand.NewSource(7)), 256)

	opts := simr.DefaultOptions()
	cpu, err := simr.RunService(simr.ArchCPU, svc, reqs, opts)
	if err != nil {
		log.Fatal(err)
	}
	rpu, err := simr.RunService(simr.ArchRPU, svc, reqs, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("service: %s (%d requests)\n\n", svc.Name, len(reqs))
	fmt.Printf("%-22s %12s %12s\n", "", "cpu", "rpu")
	fmt.Printf("%-22s %12.2f %12.2f\n", "avg latency (us)",
		cpu.AvgLatencySec()*1e6, rpu.AvgLatencySec()*1e6)
	fmt.Printf("%-22s %12.0f %12.0f\n", "requests/joule",
		cpu.ReqPerJoule(), rpu.ReqPerJoule())
	fmt.Printf("%-22s %12s %12.1f%%\n", "SIMT efficiency", "-", 100*rpu.SIMTEff)
	fmt.Printf("%-22s %12.0f %12.0f\n", "L1 accesses/request",
		cpu.L1AccessesPerRequest(), rpu.L1AccessesPerRequest())
	fmt.Printf("\nRPU: %.2fx requests/joule at %.2fx service latency\n",
		rpu.ReqPerJoule()/cpu.ReqPerJoule(),
		rpu.AvgLatencySec()/cpu.AvgLatencySec())
}
