// Gpgpu: the §VI-D study — classic data-parallel SPMD kernels (the
// OpenMP/CUDA style of work) on the CPU, RPU and GPU. The paper argues
// the RPU runs such kernels with GPU-class energy efficiency while
// keeping the CPU's programming model; the GPU stays the efficiency
// winner but at unusable service latency.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"simr"
)

func main() {
	requests := flag.Int("requests", 512, "work items per kernel")
	flag.Parse()

	suite := simr.NewGPGPUSuite()
	fmt.Println("GPGPU/SPMD kernels on CPU vs RPU vs GPU (relative to CPU)")
	fmt.Printf("%-14s %12s %12s %12s %12s %8s\n",
		"kernel", "rpu req/J", "rpu lat", "gpu req/J", "gpu lat", "eff")
	for _, svc := range suite.Services {
		reqs := svc.Generate(rand.New(rand.NewSource(3)), *requests)
		opts := simr.DefaultOptions()
		cpu, err := simr.RunService(simr.ArchCPU, svc, reqs, opts)
		if err != nil {
			log.Fatal(err)
		}
		rpu, err := simr.RunService(simr.ArchRPU, svc, reqs, opts)
		if err != nil {
			log.Fatal(err)
		}
		gpu, err := simr.RunService(simr.ArchGPU, svc, reqs, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %11.2fx %11.2fx %11.2fx %11.1fx %7.0f%%\n",
			svc.Name,
			rpu.ReqPerJoule()/cpu.ReqPerJoule(), rpu.AvgLatencySec()/cpu.AvgLatencySec(),
			gpu.ReqPerJoule()/cpu.ReqPerJoule(), gpu.AvgLatencySec()/cpu.AvgLatencySec(),
			100*rpu.SIMTEff)
	}
	fmt.Println("\npaper §VI-D: the RPU narrows the GPU's efficiency lead on SPMD work")
	fmt.Println("while retaining system calls, the CPU ISA and OoO latency.")
}
