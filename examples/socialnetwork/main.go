// Socialnetwork: the paper's headline experiment over the whole
// 15-microservice social-network suite — requests/joule and service
// latency of the RPU and CPU-SMT8 relative to the single-threaded CPU
// (Figures 19 and 20), printed as one table.
package main

import (
	"flag"
	"fmt"
	"log"

	"simr"
)

func main() {
	requests := flag.Int("requests", 960, "requests per service")
	seed := flag.Int64("seed", 42, "workload seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	suite := simr.NewSuite()
	rows, err := simr.ChipStudyParallel(suite, *requests, *seed, false, *parallel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Social-network suite: RPU and CPU-SMT8 vs single-threaded CPU")
	fmt.Printf("%-18s %14s %14s %14s %14s %8s\n",
		"service", "rpu req/J", "rpu latency", "smt8 req/J", "smt8 latency", "eff")
	var sumRPJ, sumLat float64
	for _, r := range rows {
		rpj := r.RPU.ReqPerJoule() / r.CPU.ReqPerJoule()
		lat := r.RPU.AvgLatencySec() / r.CPU.AvgLatencySec()
		srpj := r.SMT.ReqPerJoule() / r.CPU.ReqPerJoule()
		slat := r.SMT.AvgLatencySec() / r.CPU.AvgLatencySec()
		fmt.Printf("%-18s %13.2fx %13.2fx %13.2fx %13.2fx %7.0f%%\n",
			r.Service, rpj, lat, srpj, slat, 100*r.RPU.SIMTEff)
		sumRPJ += rpj
		sumLat += lat
	}
	n := float64(len(rows))
	fmt.Printf("\nRPU average: %.2fx requests/joule at %.2fx latency "+
		"(paper: 5.7x at 1.44x, worst-case latency 1.7x)\n", sumRPJ/n, sumLat/n)
}
