// Endtoend: a compact Figure 22 sweep — offered load vs p99/average
// end-to-end latency for the CPU system and the RPU system with and
// without batch splitting, using the system-level queueing simulator.
package main

import (
	"flag"
	"fmt"

	"simr"
)

func main() {
	seconds := flag.Float64("seconds", 3, "simulated seconds per point")
	flag.Parse()

	qps := []float64{5000, 10000, 15000, 20000, 30000, 40000, 50000, 60000}
	modes := []struct {
		name       string
		rpu, split bool
	}{
		{"cpu", false, false},
		{"rpu w/o split", true, false},
		{"rpu w/ split", true, true},
	}

	fmt.Printf("%-8s", "kQPS")
	for _, m := range modes {
		fmt.Printf(" | %-22s", m.name)
	}
	fmt.Println()
	fmt.Printf("%-8s", "")
	for range modes {
		fmt.Printf(" | %10s %11s", "p99(ms)", "avg(ms)")
	}
	fmt.Println()

	for _, q := range qps {
		fmt.Printf("%-8.0f", q/1000)
		for _, m := range modes {
			cfg := simr.DefaultSystemConfig()
			cfg.QPS = q
			cfg.Seconds = *seconds
			cfg.RPU = m.rpu
			cfg.Split = m.split
			res := simr.RunSystem(cfg)
			p99, avg := res.Latency.Percentile(99), res.Latency.Mean()
			if res.UserUtil > 0.995 {
				fmt.Printf(" | %9.1f* %10.1f*", p99, avg)
			} else {
				fmt.Printf(" | %10.1f %11.1f", p99, avg)
			}
		}
		fmt.Println()
	}
	fmt.Println("\n* = saturated (bottleneck tier pegged; latency unbounded in open loop)")
	fmt.Println("paper: RPU w/ split sustains ~4x the CPU's peak load at comparable latency;")
	fmt.Println("w/o split the average latency is inflated by storage-blocked reconvergence waits.")
}
