// Batchtuning: explore the §III-B3 batch-size tuning space for one
// service — latency, energy efficiency, SIMT efficiency and L1 MPKI as
// the batch shrinks from 32 to 4 — plus the SIMR-aware vs CPU heap
// allocator ablation (§III-B4). Data-intensive leaves show why the
// paper throttles them to batch 8.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"simr"
	"simr/internal/alloc"
)

func main() {
	name := flag.String("service", "search-leaf", "service to explore")
	requests := flag.Int("requests", 960, "request count")
	seed := flag.Int64("seed", 42, "workload seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	suite := simr.NewSuite()
	svc := suite.Get(*name)
	reqs := svc.Generate(rand.New(rand.NewSource(*seed)), *requests)

	cpu, rows, err := simr.BatchSweep(svc, reqs, []int{32, 16, 8, 4}, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service %s: tuned batch size %d (data-intensive: %v)\n\n",
		svc.Name, svc.TunedBatch, svc.DataIntensive)
	fmt.Printf("%-10s %12s %12s %10s %10s\n", "batch", "latency", "req/J", "simt eff", "L1 MPKI")
	fmt.Printf("%-10s %11.2fx %11.2fx %10s %10.2f\n", "cpu", 1.0, 1.0, "-", cpu.L1MPKI())
	for _, row := range rows {
		rpu := row.Res
		fmt.Printf("rpu-%-6d %11.2fx %11.2fx %9.0f%% %10.2f\n",
			row.Size,
			rpu.AvgLatencySec()/cpu.AvgLatencySec(),
			rpu.ReqPerJoule()/cpu.ReqPerJoule(),
			100*rpu.SIMTEff, rpu.L1MPKI())
	}

	// Allocator ablation at the tuned batch size, one cell per policy.
	policies := []alloc.Policy{alloc.PolicySIMR, alloc.PolicyCPU}
	abl, err := simr.RunCells(len(policies), *parallel, func(i int) (*simr.Result, error) {
		opts := simr.DefaultOptions()
		opts.AllocPolicy = policies[i]
		return simr.RunService(simr.ArchRPU, svc, reqs, opts)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheap allocator ablation (batch %d):\n", svc.TunedBatch)
	for i, pol := range policies {
		rpu := abl[i]
		fmt.Printf("  %-12s latency %.2fx of cpu, %d L1 bank conflicts\n",
			pol, rpu.AvgLatencySec()/cpu.AvgLatencySec(), rpu.Stats.Mem.L1.BankConflicts)
	}
}
