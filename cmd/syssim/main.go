// Command syssim reproduces Figure 22: the system-level QPS sweep of
// end-to-end p99 tail and average latency for the CPU-based system and
// the RPU-based system with and without batch splitting, on the User
// microservice path (WebServer → User → McRouter → Memcached →
// Storage). With -graph the tail engine instead sweeps any declarative
// service graph — a bundled scenario (social, composepost, hotel,
// media, iot) or a GraphSpec JSON file; -legacy routes the retired
// hand-coded social dispatch for byte-identity checks.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"simr/internal/core"
	"simr/internal/obs"
	"simr/internal/obsflag"
	"simr/internal/prof"
	"simr/internal/queuesim"
	"simr/internal/sampleflag"
)

func main() {
	seconds := flag.Float64("seconds", 4, "simulated seconds per load point")
	seed := flag.Int64("seed", 1, "simulation seed")
	maxQPS := flag.Float64("max", 70000, "highest offered load")
	points := flag.Int("points", 12, "number of load points")
	composePost := flag.Bool("composepost", false, "sweep the Figure 3 compose-post path instead of the User path")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep (0 = one per CPU, 1 = sequential)")
	tail := flag.Bool("tail", false, "sweep the tail-at-scale engine (p50/p99/p999, overload policies) instead of the closure simulator")
	graphName := flag.String("graph", "", "tail mode: service graph to sweep — a bundled name (social|composepost|hotel|media|iot) or a GraphSpec .json file (implies -tail)")
	legacy := flag.Bool("legacy", false, "tail mode: run the retired hand-coded social-network dispatch instead of the spec executor (byte-identity oracle)")
	scale := flag.Float64("scale", 100, "tail mode: station-capacity multiplier (100 = the 100x Figure 22 analog)")
	arrivals := flag.String("arrivals", "poisson", "tail mode: arrival process (poisson|mmpp|diurnal|closed)")
	users := flag.Int("users", 0, "tail mode: closed-loop population per offered-load point (0 = derive from qps and think time)")
	think := flag.Float64("think", 100, "tail mode: closed-loop mean think time (ms)")
	timeout := flag.Float64("timeout", 0, "tail mode: per-try timeout (ms), 0 = none")
	retries := flag.Int("retries", 0, "tail mode: retries after a timed-out or rejected try")
	backoff := flag.Float64("backoff", 1, "tail mode: base retry backoff (ms), doubled per try")
	hedge := flag.Float64("hedge", 0, "tail mode: hedge delay (ms), 0 = no hedging")
	qcap := flag.Int("qcap", 0, "tail mode: per-station queue cap, 0 = unbounded")
	drain := flag.Float64("drain", 2, "tail mode: drain horizon (seconds past the arrival window)")
	schedName := flag.String("sched", "calendar", "tail mode: event scheduler (calendar|heap); outputs are byte-identical, only speed differs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	obsFlags := obsflag.Add(flag.CommandLine)
	sampleFlags := sampleflag.Add(flag.CommandLine)
	flag.Parse()
	if _, err := sampleFlags.Setup(); err != nil {
		log.Fatal(err)
	}
	// SIGINT/SIGTERM cancel the sweep between cells so profiles and
	// metrics snapshots still flush.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	core.SetInterrupt(ctx)
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	obsFlags.Setup()
	defer obsFlags.Close()

	if *graphName != "" {
		*tail = true
	}

	// In tail mode the default sweep ceiling scales with capacity: the
	// same 70 kQPS grid the 1x sweep uses, times Scale machines.
	maxSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "max" {
			maxSet = true
		}
	})
	if *tail && !maxSet {
		*maxQPS = 70000 * *scale
	}

	var qps []float64
	for i := 1; i <= *points; i++ {
		qps = append(qps, *maxQPS*float64(i)/float64(*points))
	}

	if *composePost {
		if err := sweepComposePost(*seconds, *seed, qps, *parallel); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *tail {
		sched, err := queuesim.ParseScheduler(*schedName)
		if err != nil {
			log.Fatal(err)
		}
		tc := tailSweepConfig{
			seconds: *seconds, seed: *seed, scale: *scale, drain: *drain,
			legacy:  *legacy, sched: sched,
			arrivals: queuesim.ArrivalConfig{
				Process: queuesim.ParseArrivalProcess(*arrivals),
				Users:   *users, ThinkMs: *think,
			},
			policy: queuesim.PolicyConfig{
				TimeoutMs: *timeout, MaxRetries: *retries, BackoffMs: *backoff,
				HedgeMs: *hedge, QueueCap: *qcap,
			},
		}
		if *graphName != "" {
			if *legacy {
				log.Fatal("syssim: -legacy runs the hand-coded social graph; it cannot be combined with -graph")
			}
			spec, err := loadGraphArg(*graphName)
			if err != nil {
				log.Fatal(err)
			}
			tc.graph = spec
		}
		if err := sweepTail(tc, qps, *parallel); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println("Figure 22: end-to-end tail and average latency vs offered load")
	fmt.Println("(paper: CPU saturates ~15 kQPS; RPU w/ split ~60 kQPS at similar latency;")
	fmt.Println(" RPU w/o split shows elevated average latency but acceptable tail)")
	fmt.Println()

	modes := []struct {
		name       string
		rpu, split bool
	}{
		{"cpu", false, false},
		{"rpu-nosplit", true, false},
		{"rpu-split", true, true},
	}
	// Every (mode, QPS) point is an independent queuesim.Run with its
	// own seeded RNG, so the grid fans out on the sweep worker pool;
	// cells return formatted rows and printing stays in input order,
	// keeping the output byte-identical to the sequential loop.
	np := len(qps)
	rows, err := core.RunCells(len(modes)*np, *parallel, func(i int) (string, error) {
		mode := modes[i/np]
		cfg := queuesim.DefaultConfig()
		cfg.QPS = qps[i%np]
		cfg.Seconds = *seconds
		cfg.Seed = *seed
		cfg.RPU = mode.rpu
		cfg.Split = mode.split
		if obs.Enabled() {
			// One Monitor (and trace pid) per sweep cell keeps the
			// per-station time series of concurrent cells separate.
			cfg.Monitor = &queuesim.Monitor{
				Reg:   obs.Default(),
				Sink:  obs.Trace(),
				Label: queuesim.CellLabel(mode.name, cfg.QPS),
				PID:   100 + i,
				MinDT: 1.0,
			}
		}
		m := queuesim.Run(cfg)
		measured := cfg.Seconds - cfg.Warmup
		return fmt.Sprintf("  %8.0f %10.0f %10.2f %10.2f %8.2f %6.1f\n",
			cfg.QPS, m.Throughput(measured), m.Latency.Percentile(99), m.Latency.Mean(),
			m.UserUtil, m.AvgBatchFill), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for mi, mode := range modes {
		fmt.Printf("%s:\n", mode.name)
		fmt.Printf("  %8s %10s %10s %10s %8s %6s\n", "qps", "done/s", "p99(ms)", "avg(ms)", "util", "fill")
		for p := 0; p < np; p++ {
			fmt.Print(rows[mi*np+p])
		}
		fmt.Println()
	}
}

// loadGraphArg resolves the -graph argument: a .json file is loaded
// and validated as a GraphSpec, anything else is a bundled name.
func loadGraphArg(arg string) (*queuesim.GraphSpec, error) {
	if strings.HasSuffix(arg, ".json") {
		return queuesim.LoadGraph(arg)
	}
	return queuesim.GraphByName(arg, queuesim.DefaultConfig())
}

// tailSweepConfig carries the tail-mode knobs into the sweep cells.
type tailSweepConfig struct {
	seconds  float64
	seed     int64
	scale    float64
	drain    float64
	graph    *queuesim.GraphSpec
	legacy   bool
	sched    queuesim.Scheduler
	arrivals queuesim.ArrivalConfig
	policy   queuesim.PolicyConfig
}

// sweepTail runs the Figure 22 analog on the tail-at-scale engine:
// same three modes, Scale-times the machines, p50/p99/p999 and the
// overload-policy counters per load point, plus the total simulated
// event count. Every column is simulation output, so rows stay
// byte-identical at any -parallel; wall-clock events/sec (the arena
// engine's figure of merit) is measured by cmd/benchjson instead,
// where per-run wall time is expected trajectory data.
func sweepTail(tc tailSweepConfig, qps []float64, parallel int) error {
	if tc.graph != nil {
		fmt.Printf("Service graph %q at %.0fx scale (tail-at-scale engine, %s arrivals)\n",
			tc.graph.Name, tc.scale, tc.arrivals.Process)
	} else {
		fmt.Printf("Figure 22 analog at %.0fx scale (tail-at-scale engine, %s arrivals)\n",
			tc.scale, tc.arrivals.Process)
	}
	fmt.Println("(completions attributed by arrival inside the measured window; in-flight")
	fmt.Println(" work drains past the horizon instead of being censored)")
	fmt.Println()
	modes := []struct {
		name       string
		rpu, split bool
	}{
		{"cpu", false, false},
		{"rpu-nosplit", true, false},
		{"rpu-split", true, true},
	}
	if tc.graph != nil && tc.graph.Batch == nil {
		// A batchless spec has no RPU path; sweep the CPU system only.
		modes = modes[:1]
	}
	np := len(qps)
	rows, err := core.RunCells(len(modes)*np, parallel, func(i int) (string, error) {
		mode := modes[i/np]
		cfg := queuesim.TailConfig{Config: queuesim.DefaultConfig(),
			Scale: tc.scale, Arrivals: tc.arrivals, Policy: tc.policy,
			Graph: tc.graph, Legacy: tc.legacy, Scheduler: tc.sched}
		cfg.QPS = qps[i%np]
		cfg.Seconds = tc.seconds
		cfg.Warmup = tc.seconds / 4
		cfg.Drain = tc.drain
		cfg.Seed = tc.seed
		cfg.RPU = mode.rpu
		cfg.Split = mode.split
		if cfg.Arrivals.Process == queuesim.ArrClosed && cfg.Arrivals.Users == 0 {
			// Size the population so its nominal demand matches this
			// cell's offered-load column: X = N/(Z+R) with R ~ the
			// no-load response time. At least one user, or the engine
			// rejects the population as degenerate.
			cfg.Arrivals.Users = int(cfg.QPS * (cfg.Arrivals.ThinkMs + 5) / 1000)
			if cfg.Arrivals.Users < 1 {
				cfg.Arrivals.Users = 1
			}
		}
		if obs.Enabled() {
			cfg.Monitor = &queuesim.Monitor{
				Reg:   obs.Default(),
				Sink:  obs.Trace(),
				Label: queuesim.CellLabel("tail-"+mode.name, cfg.QPS),
				PID:   100 + i,
				MinDT: 1.0,
			}
		}
		m, err := queuesim.RunTail(cfg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("  %9.0f %10.0f %8.2f %8.2f %8.2f %8d %7d %7d %7d %9d %7.1f\n",
			m.Offered, m.Throughput(), m.Latency.Percentile(50), m.Latency.Percentile(99),
			m.Latency.Percentile(99.9), m.TimedOut, m.Retried, m.Hedged, m.Rejected,
			m.InFlightHWM, float64(m.Events)/1e6), nil
	})
	if err != nil {
		return err
	}
	for mi, mode := range modes {
		fmt.Printf("%s:\n", mode.name)
		fmt.Printf("  %9s %10s %8s %8s %8s %8s %7s %7s %7s %9s %7s\n",
			"qps", "done/s", "p50(ms)", "p99(ms)", "p999(ms)", "timeo", "retry", "hedge", "reject", "hwm", "Mev")
		for p := 0; p < np; p++ {
			fmt.Print(rows[mi*np+p])
		}
		fmt.Println()
	}
	return nil
}

// sweepComposePost runs the compose-post fan-out/join scenario on the
// same worker pool and in the same input-order print discipline as the
// Figure 22 sweep.
func sweepComposePost(seconds float64, seed int64, qps []float64, parallel int) error {
	fmt.Println("Compose-post path (Figure 3): fan-out to uniqueid/urlshort/text/usertag, join, persist")
	modes := []struct {
		name string
		rpu  bool
	}{
		{"cpu", false},
		{"rpu", true},
	}
	np := len(qps)
	rows, err := core.RunCells(len(modes)*np, parallel, func(i int) (string, error) {
		cfg := queuesim.DefaultComposePost()
		cfg.QPS = qps[i%np]
		cfg.Seconds = seconds
		cfg.Seed = seed
		cfg.RPU = modes[i/np].rpu
		if obs.Enabled() {
			cfg.Monitor = &queuesim.Monitor{
				Reg:   obs.Default(),
				Sink:  obs.Trace(),
				Label: queuesim.CellLabel(modes[i/np].name, cfg.QPS),
				PID:   100 + i,
				MinDT: 1.0,
			}
		}
		m := queuesim.RunComposePost(cfg)
		measured := cfg.Seconds - cfg.Warmup
		return fmt.Sprintf("  %8.0f %10.0f %10.2f %10.2f %8.2f\n",
			cfg.QPS, m.Throughput(measured), m.Latency.Percentile(99), m.Latency.Mean(), m.UserUtil), nil
	})
	if err != nil {
		return err
	}
	for mi, mode := range modes {
		fmt.Printf("%s:\n  %8s %10s %10s %10s %8s\n", mode.name, "qps", "done/s", "p99(ms)", "avg(ms)", "util")
		for p := 0; p < np; p++ {
			fmt.Print(rows[mi*np+p])
		}
		fmt.Println()
	}
	return nil
}
