// Command syssim reproduces Figure 22: the system-level QPS sweep of
// end-to-end p99 tail and average latency for the CPU-based system and
// the RPU-based system with and without batch splitting, on the User
// microservice path (WebServer → User → McRouter → Memcached →
// Storage).
package main

import (
	"flag"
	"fmt"

	"simr/internal/queuesim"
)

func main() {
	seconds := flag.Float64("seconds", 4, "simulated seconds per load point")
	seed := flag.Int64("seed", 1, "simulation seed")
	maxQPS := flag.Float64("max", 70000, "highest offered load")
	points := flag.Int("points", 12, "number of load points")
	composePost := flag.Bool("composepost", false, "sweep the Figure 3 compose-post path instead of the User path")
	flag.Parse()

	var qps []float64
	for i := 1; i <= *points; i++ {
		qps = append(qps, *maxQPS*float64(i)/float64(*points))
	}

	if *composePost {
		sweepComposePost(*seconds, *seed, *maxQPS, *points)
		return
	}
	fmt.Println("Figure 22: end-to-end tail and average latency vs offered load")
	fmt.Println("(paper: CPU saturates ~15 kQPS; RPU w/ split ~60 kQPS at similar latency;")
	fmt.Println(" RPU w/o split shows elevated average latency but acceptable tail)")
	fmt.Println()

	modes := []struct {
		name       string
		rpu, split bool
	}{
		{"cpu", false, false},
		{"rpu-nosplit", true, false},
		{"rpu-split", true, true},
	}
	for _, mode := range modes {
		fmt.Printf("%s:\n", mode.name)
		fmt.Printf("  %8s %10s %10s %10s %8s %6s\n", "qps", "done/s", "p99(ms)", "avg(ms)", "util", "fill")
		for _, q := range qps {
			cfg := queuesim.DefaultConfig()
			cfg.QPS = q
			cfg.Seconds = *seconds
			cfg.Seed = *seed
			cfg.RPU = mode.rpu
			cfg.Split = mode.split
			m := queuesim.Run(cfg)
			measured := cfg.Seconds - cfg.Warmup
			fmt.Printf("  %8.0f %10.0f %10.2f %10.2f %8.2f %6.1f\n",
				q, m.Throughput(measured), m.Latency.Percentile(99), m.Latency.Mean(),
				m.UserUtil, m.AvgBatchFill)
		}
		fmt.Println()
	}
}

// sweepComposePost runs the compose-post fan-out/join scenario.
func sweepComposePost(seconds float64, seed int64, maxQPS float64, points int) {
	fmt.Println("Compose-post path (Figure 3): fan-out to uniqueid/urlshort/text/usertag, join, persist")
	for _, rpu := range []bool{false, true} {
		name := "cpu"
		if rpu {
			name = "rpu"
		}
		fmt.Printf("%s:\n  %8s %10s %10s %10s %8s\n", name, "qps", "done/s", "p99(ms)", "avg(ms)", "util")
		for i := 1; i <= points; i++ {
			cfg := queuesim.DefaultComposePost()
			cfg.QPS = maxQPS * float64(i) / float64(points)
			cfg.Seconds = seconds
			cfg.Seed = seed
			cfg.RPU = rpu
			m := queuesim.RunComposePost(cfg)
			measured := cfg.Seconds - cfg.Warmup
			fmt.Printf("  %8.0f %10.0f %10.2f %10.2f %8.2f\n",
				cfg.QPS, m.Throughput(measured), m.Latency.Percentile(99), m.Latency.Mean(), m.UserUtil)
		}
		fmt.Println()
	}
}
