// Command syssim reproduces Figure 22: the system-level QPS sweep of
// end-to-end p99 tail and average latency for the CPU-based system and
// the RPU-based system with and without batch splitting, on the User
// microservice path (WebServer → User → McRouter → Memcached →
// Storage).
package main

import (
	"flag"
	"fmt"
	"log"

	"simr/internal/core"
	"simr/internal/obs"
	"simr/internal/obsflag"
	"simr/internal/queuesim"
	"simr/internal/sampleflag"
)

func main() {
	seconds := flag.Float64("seconds", 4, "simulated seconds per load point")
	seed := flag.Int64("seed", 1, "simulation seed")
	maxQPS := flag.Float64("max", 70000, "highest offered load")
	points := flag.Int("points", 12, "number of load points")
	composePost := flag.Bool("composepost", false, "sweep the Figure 3 compose-post path instead of the User path")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep (0 = one per CPU, 1 = sequential)")
	obsFlags := obsflag.Add(flag.CommandLine)
	sampleFlags := sampleflag.Add(flag.CommandLine)
	flag.Parse()
	if _, err := sampleFlags.Setup(); err != nil {
		log.Fatal(err)
	}
	obsFlags.Setup()
	defer obsFlags.Close()

	var qps []float64
	for i := 1; i <= *points; i++ {
		qps = append(qps, *maxQPS*float64(i)/float64(*points))
	}

	if *composePost {
		if err := sweepComposePost(*seconds, *seed, qps, *parallel); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println("Figure 22: end-to-end tail and average latency vs offered load")
	fmt.Println("(paper: CPU saturates ~15 kQPS; RPU w/ split ~60 kQPS at similar latency;")
	fmt.Println(" RPU w/o split shows elevated average latency but acceptable tail)")
	fmt.Println()

	modes := []struct {
		name       string
		rpu, split bool
	}{
		{"cpu", false, false},
		{"rpu-nosplit", true, false},
		{"rpu-split", true, true},
	}
	// Every (mode, QPS) point is an independent queuesim.Run with its
	// own seeded RNG, so the grid fans out on the sweep worker pool;
	// cells return formatted rows and printing stays in input order,
	// keeping the output byte-identical to the sequential loop.
	np := len(qps)
	rows, err := core.RunCells(len(modes)*np, *parallel, func(i int) (string, error) {
		mode := modes[i/np]
		cfg := queuesim.DefaultConfig()
		cfg.QPS = qps[i%np]
		cfg.Seconds = *seconds
		cfg.Seed = *seed
		cfg.RPU = mode.rpu
		cfg.Split = mode.split
		if obs.Enabled() {
			// One Monitor (and trace pid) per sweep cell keeps the
			// per-station time series of concurrent cells separate.
			cfg.Monitor = &queuesim.Monitor{
				Reg:   obs.Default(),
				Sink:  obs.Trace(),
				Label: queuesim.CellLabel(mode.name, cfg.QPS),
				PID:   100 + i,
				MinDT: 1.0,
			}
		}
		m := queuesim.Run(cfg)
		measured := cfg.Seconds - cfg.Warmup
		return fmt.Sprintf("  %8.0f %10.0f %10.2f %10.2f %8.2f %6.1f\n",
			cfg.QPS, m.Throughput(measured), m.Latency.Percentile(99), m.Latency.Mean(),
			m.UserUtil, m.AvgBatchFill), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for mi, mode := range modes {
		fmt.Printf("%s:\n", mode.name)
		fmt.Printf("  %8s %10s %10s %10s %8s %6s\n", "qps", "done/s", "p99(ms)", "avg(ms)", "util", "fill")
		for p := 0; p < np; p++ {
			fmt.Print(rows[mi*np+p])
		}
		fmt.Println()
	}
}

// sweepComposePost runs the compose-post fan-out/join scenario on the
// same worker pool and in the same input-order print discipline as the
// Figure 22 sweep.
func sweepComposePost(seconds float64, seed int64, qps []float64, parallel int) error {
	fmt.Println("Compose-post path (Figure 3): fan-out to uniqueid/urlshort/text/usertag, join, persist")
	modes := []struct {
		name string
		rpu  bool
	}{
		{"cpu", false},
		{"rpu", true},
	}
	np := len(qps)
	rows, err := core.RunCells(len(modes)*np, parallel, func(i int) (string, error) {
		cfg := queuesim.DefaultComposePost()
		cfg.QPS = qps[i%np]
		cfg.Seconds = seconds
		cfg.Seed = seed
		cfg.RPU = modes[i/np].rpu
		if obs.Enabled() {
			cfg.Monitor = &queuesim.Monitor{
				Reg:   obs.Default(),
				Sink:  obs.Trace(),
				Label: queuesim.CellLabel(modes[i/np].name, cfg.QPS),
				PID:   100 + i,
				MinDT: 1.0,
			}
		}
		m := queuesim.RunComposePost(cfg)
		measured := cfg.Seconds - cfg.Warmup
		return fmt.Sprintf("  %8.0f %10.0f %10.2f %10.2f %8.2f\n",
			cfg.QPS, m.Throughput(measured), m.Latency.Percentile(99), m.Latency.Mean(), m.UserUtil), nil
	})
	if err != nil {
		return err
	}
	for mi, mode := range modes {
		fmt.Printf("%s:\n  %8s %10s %10s %10s %8s\n", mode.name, "qps", "done/s", "p99(ms)", "avg(ms)", "util")
		for p := 0; p < np; p++ {
			fmt.Print(rows[mi*np+p])
		}
		fmt.Println()
	}
	return nil
}
