// Command simteff reproduces the paper's SIMT control-efficiency
// studies: Figure 4 (naive arrival-order batching) and Figure 11
// (per-API and per-API+argument-size batching under both the ideal
// stack-based IPDOM scheme and the MinSP-PC heuristic).
//
// Usage:
//
//	simteff [-requests N] [-seed S] [-fig 4|11] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"simr/internal/core"
	"simr/internal/obsflag"
	"simr/internal/prof"
	"simr/internal/sampleflag"
	"simr/internal/uservices"
)

func main() {
	requests := flag.Int("requests", core.DefaultRequests, "requests per service (paper: 2400)")
	seed := flag.Int64("seed", 42, "workload random seed")
	fig := flag.Int("fig", 11, "figure to print: 4 (naive only) or 11 (all policies)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep (0 = one per CPU, 1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	obsFlags := obsflag.Add(flag.CommandLine)
	sampleFlags := sampleflag.Add(flag.CommandLine)
	flag.Parse()
	if _, err := sampleFlags.Setup(); err != nil {
		log.Fatal(err)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	obsFlags.Setup()
	defer obsFlags.Close()

	suite := uservices.NewSuite()
	rows, err := core.EfficiencyStudyParallel(suite, *requests, *seed, *parallel)
	if err != nil {
		log.Fatal(err)
	}

	switch *fig {
	case 4:
		fmt.Println("Figure 4: SIMT control efficiency of naive batching (batch size 32)")
		fmt.Printf("%-18s %8s\n", "service", "naive")
		sum := 0.0
		for _, r := range rows {
			fmt.Printf("%-18s %7.1f%%\n", r.Service, 100*r.Naive)
			sum += r.Naive
		}
		fmt.Printf("%-18s %7.1f%%  (paper: ~68%% average)\n", "average", 100*sum/float64(len(rows)))
	case 11:
		fmt.Println("Figure 11: SIMT control efficiency per batching policy (batch size 32)")
		core.WriteEfficiency(os.Stdout, rows)
		fmt.Println("(paper: 92% ideal stack-based, 91% MinSP-PC with per-API + per-argument-size)")
	default:
		log.Fatalf("unknown figure %d", *fig)
	}
}
