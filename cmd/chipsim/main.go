// Command chipsim runs the chip-level CPU vs CPU-SMT8 vs RPU (vs GPU)
// comparison and prints the paper's evaluation artifacts:
//
//	-fig 10   CPU dynamic energy breakdown per pipeline stage
//	-fig 14   RPU L1 accesses normalized to the CPU
//	-fig 15   L1 MPKI, CPU vs RPU at batch sizes 32/16/8/4
//	-fig 19   energy efficiency (requests/joule) relative to the CPU
//	-fig 20   service latency relative to the CPU
//	-fig 21   latency-component metrics
//	-table 4  simulated configurations (Table IV)
//	-table 5  per-component area and peak power (Table V)
//	-sensitivity   §V-A1 ablations
//	-timing   RPU timing-knob sweep (lanes x vote x atomics placement)
//
// With no selector, all figures are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"simr/internal/cacheflag"
	"simr/internal/core"
	"simr/internal/dist"
	"simr/internal/distflag"
	"simr/internal/energy"
	"simr/internal/obsflag"
	"simr/internal/prof"
	"simr/internal/sampleflag"
	"simr/internal/uservices"
)

func main() {
	requests := flag.Int("requests", core.DefaultRequests, "requests per service (paper: 2400)")
	seed := flag.Int64("seed", 42, "workload random seed")
	fig := flag.Int("fig", 0, "print a single figure (10, 14, 15, 19, 20, 21)")
	table := flag.Int("table", 0, "print a table (4 or 5)")
	sensitivity := flag.Bool("sensitivity", false, "run the sensitivity ablations")
	ispc := flag.Bool("ispc", false, "run the §VI-A SPMD-on-SIMD (ISPC) comparison")
	multiproc := flag.Bool("multiprocess", false, "run the §VI-B multi-process divergence study")
	multibatch := flag.Bool("multibatch", false, "run the §III-A multi-batch interleaving study")
	timing := flag.Bool("timing", false, "run the RPU timing-knob sweep (lanes x vote x atomics placement)")
	sensServices := flag.String("services", "", "comma-separated service subset for -sensitivity")
	gpu := flag.Bool("gpu", true, "include the GPU design point")
	jsonOut := flag.Bool("json", false, "emit the chip study as JSON instead of tables")
	parallel := flag.Int("parallel", 0, "worker goroutines for the study sweeps (0 = one per CPU, 1 = sequential)")
	lookahead := flag.Int("lookahead", core.PrepAuto, "intra-run prep pipeline depth in batches (-1 = auto from spare CPUs, 0 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheFlags := cacheflag.Add(flag.CommandLine)
	obsFlags := obsflag.Add(flag.CommandLine)
	sampleFlags := sampleflag.Add(flag.CommandLine)
	distFlags := distflag.Add(flag.CommandLine)
	flag.Parse()
	core.SetPrepLookahead(*lookahead)
	cacheFlags.Setup()
	if _, err := sampleFlags.Setup(); err != nil {
		log.Fatal(err)
	}

	// SIGINT/SIGTERM cancel the sweep between cells so checkpoints and
	// profiles flush instead of dying mid-write.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	core.SetInterrupt(ctx)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	obsFlags.Setup()
	defer obsFlags.Close()

	if ran, err := distFlags.HandleWorker(ctx); ran {
		if err != nil {
			obsFlags.Close()
			stopProf()
			log.Fatal(err)
		}
		return
	}
	// runDist routes one study through the dispatcher when -dist is
	// active; the reassembled rows render byte-identically to the
	// single-process path below.
	runDist := func(kind dist.StudyKind, services []string, withGPU bool) *dist.StudyOut {
		spec := dist.SweepSpec{Studies: []dist.StudySpec{{
			Kind: kind, Services: services, Requests: *requests, Seed: *seed, WithGPU: withGPU,
		}}}
		res, err := distFlags.Run(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		return &res.Studies[0]
	}

	suite := uservices.NewSuite()

	if *table == 4 {
		printTable4()
		return
	}
	if *table == 5 {
		fmt.Println("Table V: per-component area and peak power (7 nm, McPAT-derived)")
		energy.WriteTableV(os.Stdout)
		return
	}
	if *table == 6 {
		printTable6()
		return
	}
	if *table == 7 {
		printTable7()
		return
	}
	if distFlags.Active() && (*ispc || *multiproc) {
		log.Fatal("-ispc and -multiprocess are single-process studies; drop -dist")
	}
	if *ispc {
		runISPC(suite, *requests, *seed)
		return
	}
	if *multiproc {
		res, err := core.MultiProcessStudy(32, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("§VI-B: multi-threaded vs multi-process SIMT efficiency (batch 32)")
		fmt.Printf("  shared address space (threads):   %5.1f%%\n", 100*res.SharedEff)
		fmt.Printf("  separate processes (ASLR bases):  %5.1f%%\n", 100*res.SeparateEff)
		fmt.Printf("  processes aligned to one base:    %5.1f%%\n", 100*res.AlignedEff)
		fmt.Println("(paper §VI-B: separate address spaces cause control-flow divergence;")
		fmt.Println(" user-orchestrated sharing and VM changes can mitigate it)")
		return
	}
	if *multibatch {
		fmt.Println("§III-A: coarse-grain multi-batch interleaving headroom (2 batches/core)")
		fmt.Printf("%-18s %12s %12s %10s\n", "service", "sequential", "interleaved", "speedup")
		var rows []core.MultiBatchRow
		if distFlags.Active() {
			rows = runDist(dist.StudyMultiBatch, nil, false).Multi
		} else {
			var err error
			rows, err = core.MultiBatchSweep(suite, *seed, *parallel)
			if err != nil {
				log.Fatal(err)
			}
		}
		for _, row := range rows {
			fmt.Printf("%-18s %12d %12d %9.2fx\n", row.Service,
				row.Res.SequentialCycles, row.Res.InterleavedCycles, row.Res.Speedup())
		}
		fmt.Println("(the paper defers multi-batch scheduling to future work; this bounds its benefit)")
		return
	}
	if *timing {
		fmt.Println("RPU timing-knob sweep: lanes {8,32} x majority vote x atomics placement")
		fmt.Println("(timing knobs share prepared batch streams; see EXPERIMENTS.md, batch-stream caching)")
		var rows []core.TimingRow
		if distFlags.Active() {
			rows = runDist(dist.StudyTiming, nil, false).Timing
		} else {
			var err error
			rows, err = core.TimingSweepParallel(suite, *requests, *seed, *parallel)
			if err != nil {
				log.Fatal(err)
			}
		}
		core.WriteTimingSweep(os.Stdout, rows)
		return
	}
	if *sensitivity {
		var subset []string
		if *sensServices != "" {
			subset = strings.Split(*sensServices, ",")
		}
		if distFlags.Active() {
			out := runDist(dist.StudySensitivity, subset, false)
			if err := core.WriteSensitivity(os.Stdout, out.Services, out.Sens); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := core.SensitivityStudyParallel(os.Stdout, suite, subset, *requests, *seed, *parallel); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *fig == 15 {
		var rows []core.MPKIRow
		if distFlags.Active() {
			rows = runDist(dist.StudyMPKI, nil, false).MPKI
		} else {
			var err error
			rows, err = core.MPKIStudyParallel(suite, *requests, *seed, *parallel)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("Figure 15: L1 MPKI, CPU (64KB) vs RPU (256KB) by batch size")
		core.WriteFig15(os.Stdout, rows)
		return
	}

	var rows []core.ChipRow
	if distFlags.Active() {
		rows = runDist(dist.StudyChip, nil, *gpu).Chip
	} else {
		var err error
		rows, err = core.ChipStudyParallel(suite, *requests, *seed, *gpu, *parallel)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut {
		if err := core.WriteJSON(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
		return
	}
	show := func(n int) bool { return *fig == 0 || *fig == n }
	if show(10) {
		fmt.Println("Figure 10: CPU dynamic energy breakdown per pipeline stage")
		core.WriteFig10(os.Stdout, rows)
		fmt.Println()
	}
	if show(14) {
		fmt.Println("Figure 14: RPU L1 accesses normalized to CPU (640 threads each)")
		core.WriteFig14(os.Stdout, rows)
		fmt.Println()
	}
	if show(19) {
		fmt.Println("Figure 19: energy efficiency (requests/joule) relative to CPU")
		core.WriteFig19(os.Stdout, rows)
		fmt.Println()
	}
	if show(20) {
		fmt.Println("Figure 20: service latency relative to CPU")
		core.WriteFig20(os.Stdout, rows)
		fmt.Println()
	}
	if show(21) {
		fmt.Println("Figure 21: latency-component metrics (RPU relative to CPU)")
		core.WriteFig21(os.Stdout, rows)
	}
	// Prints nothing unless the study ran sampled (Period > 1), so
	// default output is unchanged.
	core.WriteSampling(os.Stdout, rows)
}

// runISPC prints the §VI-A study: one request per AVX lane on the CPU
// vs the dedicated RPU, over the same requests.
func runISPC(suite *uservices.Suite, requests int, seed int64) {
	fmt.Println("§VI-A: SPMD-on-SIMD (ISPC-style, 8 AVX lanes) vs RPU, relative to scalar CPU")
	fmt.Printf("%-18s %12s %12s %12s %12s %10s\n",
		"service", "ispc req/J", "ispc lat", "rpu req/J", "rpu lat", "ispc eff")
	for _, svc := range suite.Services {
		r := rand.New(rand.NewSource(seed))
		reqs := svc.Generate(r, requests)
		cpu, err := core.RunService(core.ArchCPU, svc, reqs, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		rpu, err := core.RunService(core.ArchRPU, svc, reqs, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		isp, err := core.RunISPC(svc, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %11.2fx %11.2fx %11.2fx %11.2fx %9.0f%%\n",
			svc.Name,
			isp.ReqPerJoule()/cpu.ReqPerJoule(), isp.AvgLatencySec()/cpu.AvgLatencySec(),
			rpu.ReqPerJoule()/cpu.ReqPerJoule(), rpu.AvgLatencySec()/cpu.AvgLatencySec(),
			100*isp.SIMTEff)
	}
	fmt.Println("(paper §VI-A: SIMD-on-CPU loses to the RPU on gathers, scalar fallback and predication)")
}

// printTable6 reproduces the GPU vs RPU terminology mapping.
func printTable6() {
	fmt.Println("Table VI: GPU vs RPU terminology")
	rows := [][2]string{
		{"Grid/Thread Block (1/2/3-dim)", "SW Batch (1-dim)"},
		{"Warp", "HW Batch"},
		{"Thread", "Thread/Request"},
		{"Kernel", "Service"},
		{"GPU Core / Streaming MultiProcessor", "RPU Core / Streaming MultiRequest"},
		{"SIMT", "SIMR"},
		{"CUDA Core", "Execution Lane"},
	}
	fmt.Printf("%-38s %s\n", "GPU", "RPU")
	for _, r := range rows {
		fmt.Printf("%-38s %s\n", r[0], r[1])
	}
}

// printTable7 reproduces the conceptual comparison with prior SIMT work.
func printTable7() {
	fmt.Println("Table VII: SIMR vs previous SIMT work")
	type row struct{ name, ooo, cpuISA, grain, sw string }
	rows := []row{
		{"GPUs", "no", "no", "fine", "data-parallel"},
		{"Vector-Thread (VT)", "no", "no", "fine", "data-parallel"},
		{"GPU+OoO", "yes", "no", "fine", "data-parallel"},
		{"Simty", "no", "yes", "fine", "data-parallel"},
		{"Vortex", "no", "yes", "fine", "data-parallel"},
		{"DITVA", "no", "yes", "fine", "data-parallel"},
		{"MSPS", "yes", "yes", "n/a", "web server"},
		{"SIMT-X", "yes", "yes", "fine", "data-parallel"},
		{"SIMR (this work)", "yes", "yes", "coarse", "data- & request-parallel microservices"},
	}
	fmt.Printf("%-20s %-5s %-8s %-7s %s\n", "design", "OoO", "CPU ISA", "grain", "workloads")
	for _, r := range rows {
		fmt.Printf("%-20s %-5s %-8s %-7s %s\n", r.name, r.ooo, r.cpuISA, r.grain, r.sw)
	}
}

func printTable4() {
	fmt.Println("Table IV: CPU vs CPU-SMT8 vs RPU simulated configuration")
	type row struct{ metric, cpu, smt, rpu string }
	rows := []row{
		{"core", "8-wide OoO", "8-wide OoO", "8-wide OoO"},
		{"ROB", "256", "256 (32/thread)", "256"},
		{"freq", "2.5 GHz", "2.5 GHz", "2.5 GHz"},
		{"cores", "98", "80", "20"},
		{"threads/core", "1", "SMT-8", "SIMT-32 (1 batch)"},
		{"total threads", "98", "640", "640"},
		{"lanes", "1", "1", "8"},
		{"max IPC/core", "8", "8", "64 (issue x lanes)"},
		{"ALU/branch latency", "1 cycle", "1 cycle", "4 cycles"},
		{"redirect penalty", "12", "12", "16"},
		{"L1D", "64KB 8w 3cyc 1bank", "64KB 8w 3cyc 8bank", "256KB 8w 8cyc 8bank"},
		{"L1 TLB", "48-entry", "64-entry", "256-entry 8-bank"},
		{"L2", "512KB 12cyc", "512KB 12cyc", "2MB 20cyc 2-bank"},
		{"L3", "32MB shared", "32MB shared", "32MB shared"},
		{"interconnect", "9x9 mesh", "11x11 mesh", "20x20 crossbar"},
		{"atomics", "in L1 (idealistic)", "in L1", "at shared L3"},
	}
	fmt.Printf("%-20s %-20s %-20s %-22s\n", "metric", "cpu", "cpu-smt8", "rpu")
	for _, r := range rows {
		fmt.Printf("%-20s %-20s %-20s %-22s\n", r.metric, r.cpu, r.smt, r.rpu)
	}
}
