// Command obscheck validates the machine-readable observability
// artifacts the study drivers emit: a -metrics registry snapshot
// (scopes present, every name non-empty, every counter non-negative)
// and/or a -trace Chrome-trace timeline (a JSON array of events, each
// carrying ph, ts and name — the shape chrome://tracing and Perfetto
// load). CI runs it against the bench-smoke outputs; exit status 0
// means the files are well-formed.
//
// Usage:
//
//	obscheck [-metrics out.json] [-trace out.trace.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	metrics := flag.String("metrics", "", "metrics snapshot JSON to validate")
	trace := flag.String("trace", "", "Chrome-trace JSON to validate")
	flag.Parse()
	if *metrics == "" && *trace == "" {
		log.Fatal("obscheck: give -metrics and/or -trace")
	}
	if *metrics != "" {
		if err := checkMetrics(*metrics); err != nil {
			log.Fatalf("obscheck: %s: %v", *metrics, err)
		}
		fmt.Printf("%s: metrics snapshot ok\n", *metrics)
	}
	if *trace != "" {
		if err := checkTrace(*trace); err != nil {
			log.Fatalf("obscheck: %s: %v", *trace, err)
		}
		fmt.Printf("%s: trace ok\n", *trace)
	}
}

// checkMetrics enforces the snapshot schema: a top-level scopes array,
// non-empty scope and instrument names, non-negative counters and
// histogram counts consistent with their bucket sums.
func checkMetrics(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap struct {
		Scopes []struct {
			Name       string           `json:"name"`
			Counters   map[string]int64 `json:"counters"`
			Gauges     map[string]int64 `json:"gauges"`
			Histograms map[string]struct {
				Bounds []float64 `json:"bounds"`
				Counts []int64   `json:"counts"`
				Count  int64     `json:"count"`
			} `json:"histograms"`
		} `json:"scopes"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("not a snapshot: %w", err)
	}
	if len(snap.Scopes) == 0 {
		return fmt.Errorf("no scopes recorded")
	}
	for _, sc := range snap.Scopes {
		if sc.Name == "" {
			return fmt.Errorf("scope with empty name")
		}
		for name, v := range sc.Counters {
			if name == "" {
				return fmt.Errorf("scope %s: counter with empty name", sc.Name)
			}
			if v < 0 {
				return fmt.Errorf("scope %s: counter %s is negative (%d)", sc.Name, name, v)
			}
		}
		for name, h := range sc.Histograms {
			if len(h.Counts) != len(h.Bounds)+1 {
				return fmt.Errorf("scope %s: histogram %s has %d counts for %d bounds",
					sc.Name, name, len(h.Counts), len(h.Bounds))
			}
			total := int64(0)
			for i, c := range h.Counts {
				if c < 0 {
					return fmt.Errorf("scope %s: histogram %s bucket %d negative", sc.Name, name, i)
				}
				total += c
			}
			if total != h.Count {
				return fmt.Errorf("scope %s: histogram %s buckets sum to %d, count says %d",
					sc.Name, name, total, h.Count)
			}
		}
	}
	return nil
}

// checkTrace enforces the Trace Event Format array shape.
func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var evs []map[string]any
	if err := json.Unmarshal(raw, &evs); err != nil {
		return fmt.Errorf("not a JSON array of events: %w", err)
	}
	for i, e := range evs {
		if _, ok := e["name"].(string); !ok {
			return fmt.Errorf("event %d: missing name", i)
		}
		ph, ok := e["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		if _, ok := e["ts"].(float64); !ok {
			return fmt.Errorf("event %d: missing ts", i)
		}
	}
	return nil
}
