// Command obscheck validates the machine-readable observability
// artifacts the study drivers emit: a -metrics registry snapshot
// (scopes present, every name non-empty, every counter non-negative)
// and/or a -trace Chrome-trace timeline (a JSON array of events, each
// carrying ph, ts and name — the shape chrome://tracing and Perfetto
// load). CI runs it against the bench-smoke outputs; exit status 0
// means the files are well-formed.
//
// It also validates BENCH_sampling.json trajectories (-sampling):
// each entry must be self-describing (gomaxprocs, sample config),
// carry positive wall-clock pairs, and report finite non-negative
// per-metric errors with a timed-units split consistent with the
// population.
//
// It likewise validates BENCH_queuesim.json trajectories (-queuesim):
// every tail-at-scale entry must carry well-formed sweep points with
// positive loads and wall clocks, ordered latency percentiles, and
// completion accounting that never exceeds arrivals.
//
// And BENCH_batchcache.json trajectories (-batchcache): every entry
// must be self-describing, carry positive wall clocks for all four
// cache configurations, internally consistent speedup ratios, and
// byte-identical unsampled outputs.
//
// And BENCH_graphs.json trajectories (-graphs): every service-graph
// entry must carry uniquely named graphs with positive saturation
// loads and a speedup that equals the recorded RPU/CPU ratio.
//
// And BENCH_dist.json trajectories (-dist): every distributed-sweep
// entry must be wire-versioned (protocol number and schema hash),
// carry positive wall clocks with self-consistent speedups, and have
// byte-identical output at every worker count.
//
// Usage:
//
//	obscheck [-metrics out.json] [-trace out.trace.json] [-sampling BENCH_sampling.json] [-queuesim BENCH_queuesim.json] [-graphs BENCH_graphs.json] [-batchcache BENCH_batchcache.json] [-dist BENCH_dist.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
)

func main() {
	metrics := flag.String("metrics", "", "metrics snapshot JSON to validate")
	trace := flag.String("trace", "", "Chrome-trace JSON to validate")
	sampling := flag.String("sampling", "", "BENCH_sampling.json trajectory to validate")
	qsim := flag.String("queuesim", "", "BENCH_queuesim.json trajectory to validate")
	graphs := flag.String("graphs", "", "BENCH_graphs.json trajectory to validate")
	bcache := flag.String("batchcache", "", "BENCH_batchcache.json trajectory to validate")
	distT := flag.String("dist", "", "BENCH_dist.json trajectory to validate")
	flag.Parse()
	if *metrics == "" && *trace == "" && *sampling == "" && *qsim == "" && *graphs == "" && *bcache == "" && *distT == "" {
		log.Fatal("obscheck: give -metrics, -trace, -sampling, -queuesim, -graphs, -batchcache and/or -dist")
	}
	if *metrics != "" {
		if err := checkMetrics(*metrics); err != nil {
			log.Fatalf("obscheck: %s: %v", *metrics, err)
		}
		fmt.Printf("%s: metrics snapshot ok\n", *metrics)
	}
	if *trace != "" {
		if err := checkTrace(*trace); err != nil {
			log.Fatalf("obscheck: %s: %v", *trace, err)
		}
		fmt.Printf("%s: trace ok\n", *trace)
	}
	if *sampling != "" {
		if err := checkSampling(*sampling); err != nil {
			log.Fatalf("obscheck: %s: %v", *sampling, err)
		}
		fmt.Printf("%s: sampling trajectory ok\n", *sampling)
	}
	if *qsim != "" {
		if err := checkQueuesim(*qsim); err != nil {
			log.Fatalf("obscheck: %s: %v", *qsim, err)
		}
		fmt.Printf("%s: queuesim trajectory ok\n", *qsim)
	}
	if *graphs != "" {
		if err := checkGraphs(*graphs); err != nil {
			log.Fatalf("obscheck: %s: %v", *graphs, err)
		}
		fmt.Printf("%s: graphs trajectory ok\n", *graphs)
	}
	if *bcache != "" {
		if err := checkBatchCache(*bcache); err != nil {
			log.Fatalf("obscheck: %s: %v", *bcache, err)
		}
		fmt.Printf("%s: batchcache trajectory ok\n", *bcache)
	}
	if *distT != "" {
		if err := checkDist(*distT); err != nil {
			log.Fatalf("obscheck: %s: %v", *distT, err)
		}
		fmt.Printf("%s: dist trajectory ok\n", *distT)
	}
}

// checkDist enforces the BENCH_dist.json schema benchjson writes: an
// array of distributed-sweep entries, each wire-versioned and carrying
// ascending worker counts with positive wall clocks, self-consistent
// speedups and byte-identical outputs. When a dispatcher metrics
// snapshot rides along, its queue counters must be present and
// account for every task.
func checkDist(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []struct {
		Timestamp  string  `json:"timestamp"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Requests   int     `json:"requests"`
		Proto      int     `json:"proto"`
		SchemaHash string  `json:"schema_hash"`
		SingleSec  float64 `json:"single_s"`
		Points     []struct {
			Workers   int     `json:"workers"`
			WallSec   float64 `json:"wall_s"`
			Speedup   float64 `json:"speedup_vs_single"`
			Identical bool    `json:"outputs_identical"`
		} `json:"points"`
		Metrics struct {
			Scopes []struct {
				Name     string           `json:"name"`
				Counters map[string]int64 `json:"counters"`
				Gauges   map[string]int64 `json:"gauges"`
			} `json:"scopes"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		return fmt.Errorf("not a dist trajectory: %w", err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("no entries recorded")
	}
	for i, e := range entries {
		if e.Timestamp == "" {
			return fmt.Errorf("entry %d: missing timestamp", i)
		}
		if e.GoMaxProcs < 1 {
			return fmt.Errorf("entry %d: gomaxprocs %d", i, e.GoMaxProcs)
		}
		if e.Requests < 1 {
			return fmt.Errorf("entry %d: requests %d", i, e.Requests)
		}
		if e.Proto < 1 {
			return fmt.Errorf("entry %d: wire protocol %d", i, e.Proto)
		}
		if len(e.SchemaHash) != 16 {
			return fmt.Errorf("entry %d: schema hash %q (want 16 hex chars)", i, e.SchemaHash)
		}
		if e.SingleSec <= 0 || math.IsNaN(e.SingleSec) || math.IsInf(e.SingleSec, 0) {
			return fmt.Errorf("entry %d: single-process wall clock %v", i, e.SingleSec)
		}
		if len(e.Points) == 0 {
			return fmt.Errorf("entry %d: no worker-count points", i)
		}
		prev := 0
		for j, p := range e.Points {
			if p.Workers <= prev {
				return fmt.Errorf("entry %d point %d: worker counts not ascending (%d after %d)",
					i, j, p.Workers, prev)
			}
			prev = p.Workers
			if p.WallSec <= 0 || math.IsNaN(p.WallSec) || math.IsInf(p.WallSec, 0) {
				return fmt.Errorf("entry %d point %d: wall clock %v", i, j, p.WallSec)
			}
			want := e.SingleSec / p.WallSec
			if math.Abs(p.Speedup-want) > 1e-9*want {
				return fmt.Errorf("entry %d point %d: speedup says %v, wall clocks say %v",
					i, j, p.Speedup, want)
			}
			if !p.Identical {
				return fmt.Errorf("entry %d point %d: %d-worker output was not byte-identical",
					i, j, p.Workers)
			}
		}
		for _, sc := range e.Metrics.Scopes {
			if sc.Name != "dist.dispatcher" {
				continue
			}
			for _, want := range []string{"tasks_dispatched", "tasks_completed", "tasks_requeued", "workers_joined", "workers_lost"} {
				if _, ok := sc.Counters[want]; !ok {
					return fmt.Errorf("entry %d: dispatcher scope missing counter %s", i, want)
				}
			}
			if _, ok := sc.Gauges["workers_hwm"]; !ok {
				return fmt.Errorf("entry %d: dispatcher scope missing gauge workers_hwm", i)
			}
			if sc.Counters["tasks_completed"] < 1 {
				return fmt.Errorf("entry %d: dispatcher completed %d tasks", i, sc.Counters["tasks_completed"])
			}
			if sc.Counters["tasks_dispatched"] < sc.Counters["tasks_completed"] {
				return fmt.Errorf("entry %d: dispatched %d < completed %d",
					i, sc.Counters["tasks_dispatched"], sc.Counters["tasks_completed"])
			}
		}
	}
	return nil
}

// checkBatchCache enforces the BENCH_batchcache.json schema benchjson
// writes: an array of cache-configuration timing entries whose speedup
// ratios match their wall clocks and whose unsampled runs rendered
// byte-identically.
func checkBatchCache(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []struct {
		Timestamp        string  `json:"timestamp"`
		GoMaxProcs       int     `json:"gomaxprocs"`
		Workers          int     `json:"workers"`
		Requests         int     `json:"requests"`
		Sample           string  `json:"sample"`
		NoCacheSec       float64 `json:"nocache_s"`
		ScalarCacheSec   float64 `json:"scalarcache_s"`
		BatchCacheSec    float64 `json:"batchcache_s"`
		SampledSec       float64 `json:"batchcache_sampled_s"`
		SpeedupVsScalar  float64 `json:"speedup_vs_scalarcache"`
		SpeedupVsNoCache float64 `json:"speedup_vs_nocache"`
		SpeedupSampled   float64 `json:"speedup_sampled_vs_nocache"`
		Identical        bool    `json:"outputs_identical"`
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		return fmt.Errorf("not a batchcache trajectory: %w", err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("no entries recorded")
	}
	for i, e := range entries {
		if e.Timestamp == "" {
			return fmt.Errorf("entry %d: missing timestamp", i)
		}
		if e.GoMaxProcs < 1 {
			return fmt.Errorf("entry %d: gomaxprocs %d", i, e.GoMaxProcs)
		}
		if e.Requests < 1 {
			return fmt.Errorf("entry %d: requests %d", i, e.Requests)
		}
		if e.Sample == "" || e.Sample == "off" {
			return fmt.Errorf("entry %d: sampled run config %q", i, e.Sample)
		}
		for _, v := range []float64{e.NoCacheSec, e.ScalarCacheSec, e.BatchCacheSec, e.SampledSec} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("entry %d: non-positive wall clock %v", i, v)
			}
		}
		checks := []struct {
			name      string
			num, den  float64
			announced float64
		}{
			{"speedup_vs_scalarcache", e.ScalarCacheSec, e.BatchCacheSec, e.SpeedupVsScalar},
			{"speedup_vs_nocache", e.NoCacheSec, e.BatchCacheSec, e.SpeedupVsNoCache},
			{"speedup_sampled_vs_nocache", e.NoCacheSec, e.SampledSec, e.SpeedupSampled},
		}
		for _, c := range checks {
			want := c.num / c.den
			if math.Abs(c.announced-want) > 1e-9*want {
				return fmt.Errorf("entry %d: %s says %v, wall clocks say %v", i, c.name, c.announced, want)
			}
		}
		if !e.Identical {
			return fmt.Errorf("entry %d: unsampled outputs were not byte-identical", i)
		}
	}
	return nil
}

// checkQueuesim enforces the BENCH_queuesim.json schema benchjson
// writes: an array of tail-at-scale sweep entries, each with ordered
// percentiles and consistent completion accounting per point.
func checkQueuesim(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []struct {
		Timestamp  string  `json:"timestamp"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Scale      float64 `json:"scale"`
		Seconds    float64 `json:"seconds"`
		// Scheduler is optional: entries predate the calendar-queue
		// switch; present values must name a real scheduler.
		Scheduler string `json:"scheduler"`
		Points    []struct {
			Mode         string  `json:"mode"`
			QPS          float64 `json:"qps"`
			Arrived      int     `json:"arrived"`
			Completed    int     `json:"completed"`
			Failed       int     `json:"failed"`
			TimedOut     int     `json:"timed_out"`
			Rejected     int     `json:"rejected"`
			P50          float64 `json:"p50_ms"`
			P99          float64 `json:"p99_ms"`
			P999         float64 `json:"p999_ms"`
			InFlightHWM     int     `json:"inflight_hwm"`
			Events          uint64  `json:"events"`
			CancelledTimers uint64  `json:"cancelled_timers"`
			WallSec         float64 `json:"wall_s"`
			EventsPerSec    float64 `json:"events_per_sec"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		return fmt.Errorf("not a queuesim trajectory: %w", err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("no entries recorded")
	}
	for i, e := range entries {
		if e.Timestamp == "" {
			return fmt.Errorf("entry %d: missing timestamp", i)
		}
		if e.GoMaxProcs < 1 {
			return fmt.Errorf("entry %d: gomaxprocs %d", i, e.GoMaxProcs)
		}
		if e.Scale < 1 {
			return fmt.Errorf("entry %d: scale %v", i, e.Scale)
		}
		if e.Seconds <= 0 {
			return fmt.Errorf("entry %d: seconds %v", i, e.Seconds)
		}
		if e.Scheduler != "" && e.Scheduler != "heap" && e.Scheduler != "calendar" {
			return fmt.Errorf("entry %d: unknown scheduler %q", i, e.Scheduler)
		}
		if len(e.Points) == 0 {
			return fmt.Errorf("entry %d: no sweep points", i)
		}
		for j, p := range e.Points {
			if p.Mode == "" {
				return fmt.Errorf("entry %d point %d: empty mode", i, j)
			}
			if p.QPS <= 0 {
				return fmt.Errorf("entry %d point %d: qps %v", i, j, p.QPS)
			}
			if p.Arrived < 1 {
				return fmt.Errorf("entry %d point %d: arrived %d", i, j, p.Arrived)
			}
			if p.Completed < 0 || p.Failed < 0 || p.Completed+p.Failed > p.Arrived {
				return fmt.Errorf("entry %d point %d: completed %d + failed %d vs arrived %d",
					i, j, p.Completed, p.Failed, p.Arrived)
			}
			if p.TimedOut < 0 || p.Rejected < 0 || p.InFlightHWM < 1 {
				return fmt.Errorf("entry %d point %d: negative policy counters or hwm %d",
					i, j, p.InFlightHWM)
			}
			for _, v := range []float64{p.P50, p.P99, p.P999} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("entry %d point %d: bad percentile %v", i, j, v)
				}
			}
			if p.Completed > 0 && !(p.P50 <= p.P99 && p.P99 <= p.P999) {
				return fmt.Errorf("entry %d point %d: percentiles out of order %v/%v/%v",
					i, j, p.P50, p.P99, p.P999)
			}
			if p.Events < 1 || p.WallSec <= 0 || p.EventsPerSec <= 0 {
				return fmt.Errorf("entry %d point %d: events %d wall %v eps %v",
					i, j, p.Events, p.WallSec, p.EventsPerSec)
			}
		}
	}
	return nil
}

// checkGraphs enforces the BENCH_graphs.json schema benchjson writes:
// an array of service-graph saturation entries, each carrying uniquely
// named graphs whose saturation loads are positive, whose speedup is
// exactly the recorded RPU/CPU ratio, and whose baseline percentiles
// are finite and non-negative.
func checkGraphs(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []struct {
		Timestamp  string  `json:"timestamp"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Workers    int     `json:"workers"`
		Seconds    float64 `json:"seconds"`
		Points     []struct {
			Graph      string  `json:"graph"`
			CPUSatQPS  float64 `json:"cpu_sat_qps"`
			RPUSatQPS  float64 `json:"rpu_sat_qps"`
			Speedup    float64 `json:"speedup"`
			CPUBaseP99 float64 `json:"cpu_base_p99_ms"`
			RPUBaseP99 float64 `json:"rpu_base_p99_ms"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		return fmt.Errorf("not a graphs trajectory: %w", err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("no entries recorded")
	}
	for i, e := range entries {
		if e.Timestamp == "" {
			return fmt.Errorf("entry %d: missing timestamp", i)
		}
		if e.GoMaxProcs < 1 {
			return fmt.Errorf("entry %d: gomaxprocs %d", i, e.GoMaxProcs)
		}
		if e.Seconds <= 0 {
			return fmt.Errorf("entry %d: seconds %v", i, e.Seconds)
		}
		if len(e.Points) == 0 {
			return fmt.Errorf("entry %d: no graph points", i)
		}
		seen := map[string]bool{}
		for j, p := range e.Points {
			if p.Graph == "" {
				return fmt.Errorf("entry %d point %d: empty graph name", i, j)
			}
			if seen[p.Graph] {
				return fmt.Errorf("entry %d: duplicate graph %q", i, p.Graph)
			}
			seen[p.Graph] = true
			if p.CPUSatQPS <= 0 || p.RPUSatQPS <= 0 {
				return fmt.Errorf("entry %d graph %q: saturation loads %v/%v",
					i, p.Graph, p.CPUSatQPS, p.RPUSatQPS)
			}
			want := p.RPUSatQPS / p.CPUSatQPS
			if math.Abs(p.Speedup-want) > 1e-9*math.Abs(want) {
				return fmt.Errorf("entry %d graph %q: speedup %v != rpu/cpu %v",
					i, p.Graph, p.Speedup, want)
			}
			for _, v := range []float64{p.CPUBaseP99, p.RPUBaseP99} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("entry %d graph %q: bad baseline p99 %v", i, p.Graph, v)
				}
			}
		}
	}
	return nil
}

// checkMetrics enforces the snapshot schema: a top-level scopes array,
// non-empty scope and instrument names, non-negative counters and
// histogram counts consistent with their bucket sums.
func checkMetrics(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap struct {
		Scopes []struct {
			Name       string           `json:"name"`
			Counters   map[string]int64 `json:"counters"`
			Gauges     map[string]int64 `json:"gauges"`
			Histograms map[string]struct {
				Bounds []float64 `json:"bounds"`
				Counts []int64   `json:"counts"`
				Count  int64     `json:"count"`
			} `json:"histograms"`
		} `json:"scopes"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("not a snapshot: %w", err)
	}
	if len(snap.Scopes) == 0 {
		return fmt.Errorf("no scopes recorded")
	}
	for _, sc := range snap.Scopes {
		if sc.Name == "" {
			return fmt.Errorf("scope with empty name")
		}
		for name, v := range sc.Counters {
			if name == "" {
				return fmt.Errorf("scope %s: counter with empty name", sc.Name)
			}
			if v < 0 {
				return fmt.Errorf("scope %s: counter %s is negative (%d)", sc.Name, name, v)
			}
		}
		for name, h := range sc.Histograms {
			if len(h.Counts) != len(h.Bounds)+1 {
				return fmt.Errorf("scope %s: histogram %s has %d counts for %d bounds",
					sc.Name, name, len(h.Counts), len(h.Bounds))
			}
			total := int64(0)
			for i, c := range h.Counts {
				if c < 0 {
					return fmt.Errorf("scope %s: histogram %s bucket %d negative", sc.Name, name, i)
				}
				total += c
			}
			if total != h.Count {
				return fmt.Errorf("scope %s: histogram %s buckets sum to %d, count says %d",
					sc.Name, name, total, h.Count)
			}
		}
		// The prep-cache scopes have a fixed instrument contract: a
		// snapshot that carries one must carry all of its counters and
		// the retained-bytes high-water gauge.
		if sc.Name == "trace.cache" || sc.Name == "trace.batchcache" {
			for _, want := range []string{"hits", "misses", "bypassed", "drops", "dropped_bytes"} {
				if _, ok := sc.Counters[want]; !ok {
					return fmt.Errorf("scope %s: missing counter %s", sc.Name, want)
				}
			}
			if _, ok := sc.Gauges["bytes_hwm"]; !ok {
				return fmt.Errorf("scope %s: missing gauge bytes_hwm", sc.Name)
			}
		}
	}
	return nil
}

// checkSampling enforces the BENCH_sampling.json schema benchjson
// writes: an array of self-describing sampled-vs-full entries.
func checkSampling(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []struct {
		Timestamp  string  `json:"timestamp"`
		GoMaxProcs int     `json:"gomaxprocs"`
		Workers    int     `json:"workers"`
		Requests   int     `json:"requests"`
		Sample     string  `json:"sample"`
		FullSec    float64 `json:"full_s"`
		SampledSec float64 `json:"sampled_s"`
		Speedup    float64 `json:"speedup"`
		TimedUnits int     `json:"timed_units"`
		TotalUnits int     `json:"total_units"`
		Metrics    []struct {
			Name       string  `json:"name"`
			GeoMeanErr float64 `json:"geomean_err"`
			MaxErr     float64 `json:"max_err"`
			MeanRelCI  float64 `json:"mean_rel_ci95"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		return fmt.Errorf("not a sampling trajectory: %w", err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("no entries recorded")
	}
	for i, e := range entries {
		if e.Timestamp == "" {
			return fmt.Errorf("entry %d: missing timestamp", i)
		}
		if e.GoMaxProcs < 1 {
			return fmt.Errorf("entry %d: gomaxprocs %d", i, e.GoMaxProcs)
		}
		if e.Requests < 1 {
			return fmt.Errorf("entry %d: requests %d", i, e.Requests)
		}
		if e.Sample == "" || e.Sample == "off" {
			return fmt.Errorf("entry %d: sample config %q", i, e.Sample)
		}
		if e.FullSec <= 0 || e.SampledSec <= 0 || e.Speedup <= 0 {
			return fmt.Errorf("entry %d: non-positive timings %v/%v/%v",
				i, e.FullSec, e.SampledSec, e.Speedup)
		}
		if e.TimedUnits < 1 || e.TimedUnits > e.TotalUnits {
			return fmt.Errorf("entry %d: timed units %d of %d", i, e.TimedUnits, e.TotalUnits)
		}
		if len(e.Metrics) == 0 {
			return fmt.Errorf("entry %d: no metrics", i)
		}
		for _, m := range e.Metrics {
			if m.Name == "" {
				return fmt.Errorf("entry %d: metric with empty name", i)
			}
			for _, v := range []float64{m.GeoMeanErr, m.MaxErr, m.MeanRelCI} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("entry %d: metric %s has bad value %v", i, m.Name, v)
				}
			}
			if m.GeoMeanErr > m.MaxErr {
				return fmt.Errorf("entry %d: metric %s geomean %v exceeds max %v",
					i, m.Name, m.GeoMeanErr, m.MaxErr)
			}
		}
	}
	return nil
}

// checkTrace enforces the Trace Event Format array shape.
func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var evs []map[string]any
	if err := json.Unmarshal(raw, &evs); err != nil {
		return fmt.Errorf("not a JSON array of events: %w", err)
	}
	for i, e := range evs {
		if _, ok := e["name"].(string); !ok {
			return fmt.Errorf("event %d: missing name", i)
		}
		ph, ok := e["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		if _, ok := e["ts"].(float64); !ok {
			return fmt.Errorf("event %d: missing ts", i)
		}
	}
	return nil
}
