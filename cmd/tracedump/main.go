// Command tracedump is a debugging utility: it traces a few requests of
// one microservice and prints either the scalar per-request instruction
// streams (the SIMTec view) or the lock-step batch stream with active
// masks (the RPU frontend view).
//
// Usage:
//
//	tracedump -service memc -n 4 [-batch] [-limit 80]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"simr/internal/alloc"
	"simr/internal/mem"
	"simr/internal/sampleflag"
	"simr/internal/simt"
	"simr/internal/uservices"
)

func main() {
	service := flag.String("service", "memc", "service to trace")
	n := flag.Int("n", 4, "number of requests (batch width)")
	batchView := flag.Bool("batch", false, "print the lock-step batch stream instead of scalar traces")
	static := flag.Bool("static", false, "print the static program listing (disassembly) instead of traces")
	limit := flag.Int("limit", 64, "max instructions to print")
	seed := flag.Int64("seed", 1, "workload seed")
	sampleFlags := sampleflag.Add(flag.CommandLine)
	flag.Parse()
	if _, err := sampleFlags.Setup(); err != nil {
		log.Fatal(err)
	}

	suite := uservices.NewSuite()
	svc := suite.Get(*service)
	if *static {
		for _, api := range svc.APIs {
			svc.Program(api).Disassemble(os.Stdout)
		}
		return
	}
	reqs := svc.Generate(rand.New(rand.NewSource(*seed)), *n)
	sg := alloc.NewStackGroup(0, *n, true)
	traces, err := svc.TraceBatch(reqs, sg, alloc.PolicySIMR, 32, 8)
	if err != nil {
		log.Fatal(err)
	}

	if !*batchView {
		for t, tr := range traces {
			fmt.Printf("-- request %d: api=%s argbytes=%d ops=%d\n",
				t, reqs[t].API, reqs[t].ArgBytes, len(tr))
			for i, op := range tr {
				if i >= *limit {
					fmt.Printf("   ... %d more\n", len(tr)-i)
					break
				}
				extra := ""
				if op.Class.IsMem() {
					extra = fmt.Sprintf(" addr=%#x size=%d", op.Addr, op.Size)
				}
				if op.Class.String() == "branch" {
					extra = fmt.Sprintf(" taken=%v", op.Taken)
				}
				fmt.Printf("   %4d pc=%#08x depth=%-4d %-8s%s\n", i, op.PC, op.SP, op.Class, extra)
			}
		}
		return
	}

	res, err := simt.RunMinSPPC(traces, *n, &simt.DefaultSpin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d: %d scalar ops -> %d batch ops, SIMT efficiency %.1f%%\n",
		*n, res.ScalarOps, len(res.Ops), 100*res.Efficiency())
	// One coalescer scratch for the whole dump: per-op mem.Coalesce
	// calls reuse its buffers instead of setting up fresh ones.
	var (
		mcu   mem.MCUStats
		csc   mem.CoalesceScratch
		lanes [][]uint64
	)
	for i, op := range res.Ops {
		truncated := i >= *limit
		extra := ""
		if op.Class.IsMem() {
			lanes = lanes[:0]
			for t := range op.Addrs {
				if op.Mask&(1<<uint(t)) == 0 {
					continue
				}
				lanes = append(lanes, op.Addrs[t:t+1:t+1])
			}
			acc, pat := mem.Coalesce(lanes, 32, &mcu, &csc)
			extra = fmt.Sprintf(" mcu=%s accesses=%d", pat, len(acc))
		}
		if truncated {
			continue
		}
		fmt.Printf("%5d pc=%#08x %-8s mask=%s lanes=%d%s\n",
			i, op.PC, op.Class, maskBits(op.Mask, *n), op.ActiveLanes(), extra)
	}
	if shown := len(res.Ops); shown > *limit {
		fmt.Printf("... %d more\n", shown-*limit)
	}
	fmt.Printf("mcu: %d lane accesses -> %d emitted (%d broadcast, %d coalesced, %d divergent ops)\n",
		mcu.LaneAccesses, mcu.Emitted, mcu.Broadcast, mcu.Coalesced, mcu.Divergent)
}

func maskBits(m uint64, n int) string {
	var sb strings.Builder
	for t := 0; t < n; t++ {
		if m&(1<<uint(t)) != 0 {
			sb.WriteByte('#')
		} else {
			sb.WriteByte('.')
		}
	}
	return sb.String()
}
