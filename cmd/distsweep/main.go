// Command distsweep runs one or more paper studies through the
// dispatcher/worker tier. By default it forks -distworkers local
// worker processes of itself; with -dist dispatcher it serves the
// sweep to externally launched workers (any driver binary run with
// -dist worker -addr ..., including distsweep itself), and with
// -dist worker it joins someone else's dispatcher.
//
// Usage:
//
//	distsweep -study chip,sensitivity -requests 96 -seed 7 -distworkers 4
//	distsweep -study timing -dist dispatcher -addr :9000 -journal sweep.journal
//	distsweep -dist worker -addr host:9000
//
// A sweep interrupted by SIGINT/SIGTERM (or a killed dispatcher)
// restarts from its -journal checkpoint with -resume.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"simr/internal/cacheflag"
	"simr/internal/core"
	"simr/internal/dist"
	"simr/internal/distflag"
	"simr/internal/obsflag"
	"simr/internal/prof"
	"simr/internal/sampleflag"
)

func main() {
	study := flag.String("study", "chip", "comma-separated studies to run: chip|sensitivity|efficiency|mpki|timing|multibatch")
	services := flag.String("services", "", "comma-separated service subset (default: the whole suite)")
	requests := flag.Int("requests", core.DefaultRequests, "requests per service (paper: 2400)")
	seed := flag.Int64("seed", 42, "workload random seed")
	gpu := flag.Bool("gpu", false, "include the GPU design point (chip study)")
	lookahead := flag.Int("lookahead", core.PrepAuto, "intra-run prep pipeline depth in batches (-1 = auto from spare CPUs, 0 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheFlags := cacheflag.Add(flag.CommandLine)
	obsFlags := obsflag.Add(flag.CommandLine)
	sampleFlags := sampleflag.Add(flag.CommandLine)
	distFlags := distflag.Add(flag.CommandLine)
	flag.Parse()
	core.SetPrepLookahead(*lookahead)
	cacheFlags.Setup()
	if _, err := sampleFlags.Setup(); err != nil {
		log.Fatal(err)
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	core.SetInterrupt(ctx)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	obsFlags.Setup()
	defer obsFlags.Close()

	if ran, err := distFlags.HandleWorker(ctx); ran {
		if err != nil {
			obsFlags.Close()
			stopProf()
			log.Fatal(err)
		}
		return
	}
	// Unlike the study drivers, distributing is this command's whole
	// point: no -dist selection means local forking.
	if !distFlags.Active() {
		flag.Set("dist", "local")
	}

	var subset []string
	if *services != "" {
		subset = strings.Split(*services, ",")
	}
	var spec dist.SweepSpec
	for _, name := range strings.Split(*study, ",") {
		kind, err := dist.ParseStudyKind(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		spec.Studies = append(spec.Studies, dist.StudySpec{
			Kind: kind, Services: subset, Requests: *requests, Seed: *seed, WithGPU: *gpu,
		})
	}

	res, err := distFlags.Run(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Studies {
		if i > 0 {
			fmt.Println()
		}
		if err := printStudy(&res.Studies[i]); err != nil {
			log.Fatal(err)
		}
	}
}

// printStudy renders one study with the same writers the study
// drivers use, so distsweep output matches theirs row for row.
func printStudy(so *dist.StudyOut) error {
	switch so.Spec.Kind {
	case dist.StudyChip:
		fmt.Println("Figure 19: energy efficiency (requests/joule) relative to CPU")
		core.WriteFig19(os.Stdout, so.Chip)
		fmt.Println()
		fmt.Println("Figure 20: service latency relative to CPU")
		core.WriteFig20(os.Stdout, so.Chip)
		core.WriteSampling(os.Stdout, so.Chip)
	case dist.StudySensitivity:
		return core.WriteSensitivity(os.Stdout, so.Services, so.Sens)
	case dist.StudyEfficiency:
		fmt.Println("Figure 11: SIMT control efficiency per batching policy (batch size 32)")
		core.WriteEfficiency(os.Stdout, so.Eff)
	case dist.StudyMPKI:
		fmt.Println("Figure 15: L1 MPKI, CPU (64KB) vs RPU (256KB) by batch size")
		core.WriteFig15(os.Stdout, so.MPKI)
	case dist.StudyTiming:
		fmt.Println("RPU timing-knob sweep: lanes {8,32} x majority vote x atomics placement")
		core.WriteTimingSweep(os.Stdout, so.Timing)
	case dist.StudyMultiBatch:
		fmt.Println("§III-A: coarse-grain multi-batch interleaving headroom (2 batches/core)")
		fmt.Printf("%-18s %12s %12s %10s\n", "service", "sequential", "interleaved", "speedup")
		for _, row := range so.Multi {
			fmt.Printf("%-18s %12d %12d %9.2fx\n", row.Service,
				row.Res.SequentialCycles, row.Res.InterleavedCycles, row.Res.Speedup())
		}
	default:
		return fmt.Errorf("distsweep: study kind %v has no printer", so.Spec.Kind)
	}
	return nil
}
