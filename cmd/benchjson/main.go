// Command benchjson times the intra-run prep pipeline against the
// sequential oracle on the studies the pipeline targets and appends a
// machine-readable entry to a bench-trajectory JSON file (default
// BENCH_pipeline.json). Each measured pair also cross-checks that the
// two modes render byte-identical output, so the trajectory can only
// ever record speedups of equivalent computations.
//
// Usage:
//
//	benchjson [-requests 240] [-seed 42] [-workers 8] [-out BENCH_pipeline.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"simr/internal/core"
	"simr/internal/dist"
	"simr/internal/distflag"
	"simr/internal/obs"
	"simr/internal/prof"
	"simr/internal/queuesim"
	"simr/internal/sample"
	"simr/internal/sampleflag"
	"simr/internal/uservices"
)

// BenchResult is one seq-vs-pipelined wall-clock pair.
type BenchResult struct {
	Name       string  `json:"name"`
	SeqSec     float64 `json:"seq_s"`
	PipeSec    float64 `json:"pipelined_s"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"outputs_identical"`
	WhatDiffer string  `json:"pipelined_config"`
}

// BenchEntry is one appended trajectory point. GoMaxProcs, Seed and
// Sample make every row self-describing and comparable across hosts.
type BenchEntry struct {
	Timestamp  string        `json:"timestamp"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Requests   int           `json:"requests"`
	Seed       int64         `json:"seed"`
	Sample     string        `json:"sample"`
	Results    []BenchResult `json:"results"`
}

// StudyEntry is one per-study trajectory point: the timing result of
// a single bench study plus the obs-registry snapshot its two runs
// populated (trace-cache effectiveness, prep-pipeline occupancy,
// worker utilization), written to BENCH_<study>.json.
type StudyEntry struct {
	Timestamp  string       `json:"timestamp"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Requests   int          `json:"requests"`
	Seed       int64        `json:"seed"`
	Sample     string       `json:"sample"`
	Result     BenchResult  `json:"result"`
	Metrics    obs.Snapshot `json:"metrics"`
}

// SamplingMetric is one headline metric's sampled-vs-full error over
// the chip-study cells.
type SamplingMetric struct {
	Name string `json:"name"`
	// GeoMeanErr is exp(mean(ln(1+|err|)))-1 over the cells.
	GeoMeanErr float64 `json:"geomean_err"`
	MaxErr     float64 `json:"max_err"`
	// MeanRelCI averages the estimate's own reported 95% CI, so the
	// trajectory records predicted next to realised error.
	MeanRelCI float64 `json:"mean_rel_ci95"`
}

// SamplingEntry is one sampled-vs-full trajectory point, written to
// BENCH_sampling.json.
type SamplingEntry struct {
	Timestamp  string           `json:"timestamp"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Workers    int              `json:"workers"`
	Requests   int              `json:"requests"`
	Seed       int64            `json:"seed"`
	Sample     string           `json:"sample"`
	FullSec    float64          `json:"full_s"`
	SampledSec float64          `json:"sampled_s"`
	Speedup    float64          `json:"speedup"`
	TimedUnits int              `json:"timed_units"`
	TotalUnits int              `json:"total_units"`
	Metrics    []SamplingMetric `json:"metrics"`
}

// BatchCacheEntry is one batch-stream-cache trajectory point, written
// to BENCH_batchcache.json: the RPU timing-knob sweep (eight variants
// per service sharing identical batch streams) timed with no caches,
// with the scalar trace cache only (the pre-batch-cache baseline), and
// with the batch-stream cache on top, plus a sampled run with both
// caches. The three unsampled runs are byte-compared, so the
// trajectory only ever records speedups of equivalent computations.
type BatchCacheEntry struct {
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Requests   int    `json:"requests"`
	Seed       int64  `json:"seed"`
	// Sample is the config of the sampled run (the unsampled runs
	// record their own trajectory fields).
	Sample string `json:"sample"`
	// NoCacheSec runs with scalar trace caching and batch-stream
	// caching both off.
	NoCacheSec float64 `json:"nocache_s"`
	// ScalarCacheSec runs with the scalar trace cache only — the
	// baseline the batch cache is measured against.
	ScalarCacheSec float64 `json:"scalarcache_s"`
	// BatchCacheSec runs with both caches (the default configuration).
	BatchCacheSec float64 `json:"batchcache_s"`
	// SampledSec runs both caches plus sampled timing (Sample).
	SampledSec float64 `json:"batchcache_sampled_s"`
	// SpeedupVsScalar is ScalarCacheSec / BatchCacheSec.
	SpeedupVsScalar float64 `json:"speedup_vs_scalarcache"`
	// SpeedupVsNoCache is NoCacheSec / BatchCacheSec.
	SpeedupVsNoCache float64 `json:"speedup_vs_nocache"`
	// SpeedupSampled is NoCacheSec / SampledSec (caches + sampling
	// stacked against the uncached full-timing baseline).
	SpeedupSampled float64 `json:"speedup_sampled_vs_nocache"`
	// Identical reports whether the three unsampled runs rendered
	// byte-identical sweeps.
	Identical bool `json:"outputs_identical"`
	// Metrics snapshots the batch-cache run's obs registry
	// (trace.batchcache hits/misses/bypassed/bytes_hwm and the
	// trace.cache and prep-pipeline scopes) when -studymetrics is set.
	Metrics obs.Snapshot `json:"metrics"`
}

// QueuesimPoint is one (mode, offered load) cell of the tail-at-scale
// study: completion accounting, the latency tail, and the arena
// engine's event throughput.
type QueuesimPoint struct {
	Mode        string  `json:"mode"`
	QPS         float64 `json:"qps"`
	Arrived     int     `json:"arrived"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	TimedOut    int     `json:"timed_out"`
	Rejected    int     `json:"rejected"`
	P50         float64 `json:"p50_ms"`
	P99         float64 `json:"p99_ms"`
	P999        float64 `json:"p999_ms"`
	InFlightHWM int     `json:"inflight_hwm"`
	Events      uint64  `json:"events"`
	// CancelledTimers counts timers logically descheduled during the
	// run (identical across schedulers; the calendar scheduler turns
	// each into a physical O(1) removal).
	CancelledTimers uint64  `json:"cancelled_timers"`
	WallSec         float64 `json:"wall_s"`
	EventsPerSec    float64 `json:"events_per_sec"`
}

// sameQueuesimSim reports whether two points' simulation outputs agree
// — everything except the wall-clock columns, which are the measurement.
func sameQueuesimSim(a, b QueuesimPoint) bool {
	return a.Mode == b.Mode && a.QPS == b.QPS && a.Arrived == b.Arrived &&
		a.Completed == b.Completed && a.Failed == b.Failed &&
		a.TimedOut == b.TimedOut && a.Rejected == b.Rejected &&
		a.P50 == b.P50 && a.P99 == b.P99 && a.P999 == b.P999 &&
		a.InFlightHWM == b.InFlightHWM && a.Events == b.Events &&
		a.CancelledTimers == b.CancelledTimers
}

// QueuesimEntry is one tail-at-scale trajectory point, written to
// BENCH_queuesim.json: the Figure 22 analog at 100x the paper's load.
// Since the calendar-queue scheduler landed, each generation appends a
// pair of entries — heap oracle first, then calendar — so the artifact
// records the before/after events/sec trajectory.
type QueuesimEntry struct {
	Timestamp  string  `json:"timestamp"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Seconds    float64 `json:"seconds"`
	// Scheduler names the pending-event container ("heap" or
	// "calendar"); entries predating the switch omit it.
	Scheduler string          `json:"scheduler,omitempty"`
	Points    []QueuesimPoint `json:"points"`
}

// GraphPoint is one bundled service graph's CPU-vs-RPU saturation
// comparison: the highest grid load each system sustains (tail
// blow-up heuristic, see TailMetrics.Saturated) plus the unloaded p99
// baselines the heuristic compared against.
type GraphPoint struct {
	Graph string `json:"graph"`
	// CPUSatQPS / RPUSatQPS are the highest grid loads the CPU and RPU
	// systems sustain without saturating.
	CPUSatQPS float64 `json:"cpu_sat_qps"`
	RPUSatQPS float64 `json:"rpu_sat_qps"`
	// Speedup is RPUSatQPS / CPUSatQPS — the paper's headline
	// "requests sustained per machine" ratio for this graph.
	Speedup float64 `json:"speedup"`
	// CPUBaseP99 / RPUBaseP99 are the p99 latencies (ms) at the lowest
	// grid load, the baselines for the saturation heuristic.
	CPUBaseP99 float64 `json:"cpu_base_p99_ms"`
	RPUBaseP99 float64 `json:"rpu_base_p99_ms"`
}

// GraphsEntry is one service-graph trajectory point, written to
// BENCH_graphs.json: per bundled GraphSpec, where the CPU and RPU
// systems saturate on the shared load grid.
type GraphsEntry struct {
	Timestamp  string       `json:"timestamp"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Seed       int64        `json:"seed"`
	Seconds    float64      `json:"seconds"`
	Points     []GraphPoint `json:"points"`
}

// DistPoint is one worker-count measurement of the distributed-sweep
// study: wall clock for the whole sweep through the dispatcher plus
// the byte-equality verdict against the single-process reference.
type DistPoint struct {
	Workers   int     `json:"workers"`
	WallSec   float64 `json:"wall_s"`
	Speedup   float64 `json:"speedup_vs_single"`
	Identical bool    `json:"outputs_identical"`
}

// DistEntry is one distributed-sweep trajectory point, written to
// BENCH_dist.json: the Figure 19 chip study plus the sensitivity grid
// run single-process and through the dispatcher at 1/2/4 forked local
// workers, byte-comparing each distributed run's rendered output
// against the single-process reference.
type DistEntry struct {
	Timestamp  string  `json:"timestamp"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Requests   int     `json:"requests"`
	Seed       int64   `json:"seed"`
	Sample     string  `json:"sample"`
	Proto      int     `json:"proto"`
	SchemaHash string  `json:"schema_hash"`
	SingleSec  float64 `json:"single_s"`
	// Points are the dispatcher runs, ascending worker count.
	Points []DistPoint `json:"points"`
	// Metrics snapshots the dispatcher process's obs registry from the
	// largest run (dist.dispatcher queue counters, RPC latency
	// histogram) when -studymetrics is set.
	Metrics obs.Snapshot `json:"metrics"`
}

// studyMetrics gates the per-study registry snapshots; set from
// -studymetrics before the studies run.
var studyMetrics bool

func main() {
	requests := flag.Int("requests", 240, "requests per service for the chip-study measurements")
	seed := flag.Int64("seed", 42, "workload seed")
	workers := flag.Int("workers", 8, "sweep worker goroutines for the parallel/pipelined runs")
	seconds := flag.Float64("seconds", 1, "simulated seconds per syssim load point")
	out := flag.String("out", "BENCH_pipeline.json", "bench trajectory file to append to")
	perStudy := flag.Bool("studymetrics", true, "append per-study entries with metrics snapshots to BENCH_<study>.json")
	cacheSample := flag.String("cachesample", "4:3", "sample config for the batch-cache study's stacked run (PERIOD[:WARMUP])")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	only := flag.String("only", "", "run a single study and skip the rest (supported: queuesim)")
	sampleFlags := sampleflag.Add(flag.CommandLine)
	distFlags := distflag.Add(flag.CommandLine)
	flag.Parse()
	if *only != "" && *only != "queuesim" {
		log.Fatalf("-only %q: unsupported study (supported: queuesim)", *only)
	}
	studyMetrics = *perStudy
	scfg, err := sampleFlags.Setup()
	if err != nil {
		log.Fatal(err)
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	core.SetInterrupt(ctx)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	// Worker mode lets the dist study below fork copies of this binary;
	// the dispatcher modes make no sense here (benchjson drives its own
	// dispatcher in that study).
	if ran, err := distFlags.HandleWorker(ctx); ran {
		if err != nil {
			stopProf()
			log.Fatal(err)
		}
		return
	}
	if distFlags.Active() {
		log.Fatal("benchjson runs its own dispatcher in the dist study; only -dist worker applies")
	}
	// The seq-vs-pipelined pairs always run unsampled — they measure
	// the prep pipeline, and their entries record sample="off"
	// accordingly. The -sample flag chooses the config the dedicated
	// sampled-vs-full study measures (default 4:1).
	sample.SetDefault(sample.Config{})
	if !scfg.Sampling() {
		scfg = sample.Config{Period: 4, Warmup: 1}
	}

	suite := uservices.NewSuite()
	stamp := time.Now().UTC().Format(time.RFC3339)
	entry := BenchEntry{
		Timestamp:  stamp,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Requests:   *requests,
		Seed:       *seed,
		Sample:     sample.Config{}.String(),
	}

	if *only == "" {
		studies := []StudyEntry{
			benchChipStudy(suite, *requests, *seed, *workers),
			benchBatchSweep(suite, *requests, *seed, *workers),
			benchSyssim(*seconds, *seed, *workers),
		}

		for _, s := range studies {
			entry.Results = append(entry.Results, s.Result)
			r := s.Result
			fmt.Printf("%-22s seq %7.3fs  pipelined %7.3fs  speedup %.2fx  identical=%v\n",
				r.Name, r.SeqSec, r.PipeSec, r.Speedup, r.Identical)
			if !r.Identical {
				log.Fatalf("%s: outputs differ between sequential and pipelined runs", r.Name)
			}
		}
		if err := appendJSON(*out, entry); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("appended to %s\n", *out)
		if studyMetrics {
			for _, s := range studies {
				s.Timestamp = stamp
				s.GoMaxProcs = entry.GoMaxProcs
				s.Workers = *workers
				s.Requests = *requests
				s.Seed = *seed
				s.Sample = entry.Sample
				path := "BENCH_" + s.Result.Name + ".json"
				if err := appendJSON(path, s); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("appended to %s\n", path)
			}
		}
	}

	// The tail-at-scale study runs twice — once per scheduler, the heap
	// oracle first — so every BENCH_queuesim.json generation carries a
	// before/after pair. The simulation columns of matching points must
	// agree exactly (the schedulers are byte-identical by construction);
	// only wall time and events/sec may differ.
	qeHeap := benchQueuesim(*seconds, *seed, *workers, queuesim.SchedHeap)
	qeCal := benchQueuesim(*seconds, *seed, *workers, queuesim.SchedCalendar)
	if len(qeHeap.Points) != len(qeCal.Points) {
		log.Fatalf("queuesim: scheduler point counts differ: heap %d calendar %d",
			len(qeHeap.Points), len(qeCal.Points))
	}
	for i := range qeHeap.Points {
		h, c := qeHeap.Points[i], qeCal.Points[i]
		if !sameQueuesimSim(h, c) {
			log.Fatalf("queuesim: schedulers diverged at %s qps %.0f:\nheap     %+v\ncalendar %+v",
				h.Mode, h.QPS, h, c)
		}
		fmt.Printf("%-22s qps %9.0f  done %8d  p99 %8.2fms  hwm %8d  heap %5.2f Mev/s  calendar %5.2f Mev/s  %.2fx\n",
			"queuesim-"+h.Mode, h.QPS, h.Completed, h.P99, h.InFlightHWM,
			h.EventsPerSec/1e6, c.EventsPerSec/1e6, c.EventsPerSec/h.EventsPerSec)
	}
	for _, qe := range []QueuesimEntry{qeHeap, qeCal} {
		qe.Timestamp = stamp
		qe.GoMaxProcs = entry.GoMaxProcs
		if err := appendJSON("BENCH_queuesim.json", qe); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("appended to BENCH_queuesim.json (heap + calendar entries)")
	if *only == "queuesim" {
		return
	}

	ge := benchGraphs(*seconds, *seed, *workers)
	ge.Timestamp = stamp
	ge.GoMaxProcs = entry.GoMaxProcs
	for _, p := range ge.Points {
		fmt.Printf("%-22s cpu sat %7.0f qps  rpu sat %7.0f qps  speedup %.2fx\n",
			"graph-"+p.Graph, p.CPUSatQPS, p.RPUSatQPS, p.Speedup)
	}
	if err := appendJSON("BENCH_graphs.json", ge); err != nil {
		log.Fatal(err)
	}
	fmt.Println("appended to BENCH_graphs.json")

	ccfg, err := sample.Parse(*cacheSample)
	if err != nil || !ccfg.Sampling() {
		log.Fatalf("-cachesample %q: need PERIOD[:WARMUP] with PERIOD > 1", *cacheSample)
	}
	be := benchBatchCache(suite, *requests, *seed, *workers, ccfg)
	be.Timestamp = stamp
	be.GoMaxProcs = entry.GoMaxProcs
	fmt.Printf("%-22s nocache %7.3fs  scalar %7.3fs  batch %7.3fs  sampled %7.3fs\n",
		"batchcache-timing", be.NoCacheSec, be.ScalarCacheSec, be.BatchCacheSec, be.SampledSec)
	fmt.Printf("%-22s vs scalar %.2fx  vs nocache %.2fx  sampled vs nocache %.2fx  identical=%v\n",
		"", be.SpeedupVsScalar, be.SpeedupVsNoCache, be.SpeedupSampled, be.Identical)
	if !be.Identical {
		log.Fatal("batchcache-timing: outputs differ across cache configurations")
	}
	if err := appendJSON("BENCH_batchcache.json", be); err != nil {
		log.Fatal(err)
	}
	fmt.Println("appended to BENCH_batchcache.json")

	se := benchSampling(suite, *requests, *seed, *workers, scfg)
	se.Timestamp = stamp
	se.GoMaxProcs = entry.GoMaxProcs
	se.Workers = *workers
	se.Requests = *requests
	se.Seed = *seed
	fmt.Printf("%-22s full %7.3fs  sampled %7.3fs  speedup %.2fx  timed %d/%d\n",
		"sampling-"+se.Sample, se.FullSec, se.SampledSec, se.Speedup, se.TimedUnits, se.TotalUnits)
	for _, m := range se.Metrics {
		fmt.Printf("  %-20s geomean err %6.2f%%  max err %6.2f%%  reported CI %6.2f%%\n",
			m.Name, 100*m.GeoMeanErr, 100*m.MaxErr, 100*m.MeanRelCI)
	}
	if err := appendJSON("BENCH_sampling.json", se); err != nil {
		log.Fatal(err)
	}
	fmt.Println("appended to BENCH_sampling.json")

	de := benchDist(ctx, suite, *requests, *seed)
	de.Timestamp = stamp
	de.GoMaxProcs = entry.GoMaxProcs
	de.Sample = entry.Sample
	fmt.Printf("%-22s single %7.3fs", "dist-fig19+sens", de.SingleSec)
	for _, p := range de.Points {
		fmt.Printf("  %dw %7.3fs (%.2fx, identical=%v)", p.Workers, p.WallSec, p.Speedup, p.Identical)
	}
	fmt.Println()
	for _, p := range de.Points {
		if !p.Identical {
			log.Fatalf("dist: %d-worker output differs from single-process", p.Workers)
		}
	}
	if err := appendJSON("BENCH_dist.json", de); err != nil {
		log.Fatal(err)
	}
	fmt.Println("appended to BENCH_dist.json")
}

// benchDist times the Figure 19 chip study plus the full sensitivity
// grid single-process (one worker, matching the dispatcher's
// per-task configuration) and then through the dispatcher/worker tier
// at 1, 2 and 4 forked local worker processes, byte-comparing every
// distributed run's rendered output against the single-process
// reference. On a multi-core host the 2- and 4-worker points measure
// the tier's scaling; on a single CPU they bound its overhead.
func benchDist(ctx context.Context, suite *uservices.Suite, requests int, seed int64) DistEntry {
	spec := dist.SweepSpec{Studies: []dist.StudySpec{
		{Kind: dist.StudyChip, Requests: requests, Seed: seed},
		{Kind: dist.StudySensitivity, Requests: requests, Seed: seed},
	}}
	render := func(chip []core.ChipRow, services []string, sens []core.SensPair) []byte {
		var buf bytes.Buffer
		core.WriteFig19(&buf, chip)
		if err := core.WriteSensitivity(&buf, services, sens); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}

	t0 := time.Now()
	chip, err := core.ChipStudyParallel(suite, requests, seed, false, 1)
	if err != nil {
		log.Fatal(err)
	}
	sens, err := core.SensPairsOn(suite.Services, requests, seed, 1)
	if err != nil {
		log.Fatal(err)
	}
	singleSec := time.Since(t0).Seconds()
	ref := render(chip, suite.Names(), sens)

	entry := DistEntry{
		Requests:   requests,
		Seed:       seed,
		Proto:      dist.ProtoVersion,
		SchemaHash: dist.SchemaHash(),
		SingleSec:  singleSec,
	}
	counts := []int{1, 2, 4}
	for i, n := range counts {
		// The largest run contributes the dispatcher-side metrics
		// snapshot (queue counters, RPC latency histogram).
		var reg *obs.Registry
		if studyMetrics && i == len(counts)-1 {
			reg = obs.NewRegistry()
			obs.Enable(reg, nil)
		}
		t1 := time.Now()
		res, err := dist.RunLocal(ctx, spec, dist.CaptureConfig(false), n, dist.DispatcherOptions{})
		sec := time.Since(t1).Seconds()
		if reg != nil {
			entry.Metrics = reg.Snapshot()
			obs.Disable()
		}
		if err != nil {
			log.Fatal(err)
		}
		out := render(res.Studies[0].Chip, res.Studies[1].Services, res.Studies[1].Sens)
		entry.Points = append(entry.Points, DistPoint{
			Workers:   n,
			WallSec:   sec,
			Speedup:   singleSec / sec,
			Identical: bytes.Equal(ref, out),
		})
	}
	return entry
}

// benchSampling times the Figure 19 chip study fully simulated and
// under the given sampling config, then compares the two on the
// headline metrics (requests/joule and mean latency) cell by cell.
// Both runs use the same worker pool and seed; the sampled run's own
// CI estimates ride along so the trajectory records predicted next to
// realised error.
func benchSampling(suite *uservices.Suite, requests int, seed int64, workers int, scfg sample.Config) SamplingEntry {
	run := func() []core.ChipRow {
		rows, err := core.ChipStudyParallel(suite, requests, seed, false, workers)
		if err != nil {
			log.Fatal(err)
		}
		return rows
	}
	sample.SetDefault(sample.Config{})
	t0 := time.Now()
	full := run()
	fullSec := time.Since(t0).Seconds()

	sample.SetDefault(scfg)
	t1 := time.Now()
	sampled := run()
	sampledSec := time.Since(t1).Seconds()
	sample.SetDefault(sample.Config{})

	entry := SamplingEntry{
		Sample:     scfg.String(),
		FullSec:    fullSec,
		SampledSec: sampledSec,
		Speedup:    fullSec / sampledSec,
	}

	type accum struct {
		logSum float64
		maxErr float64
		ciSum  float64
		n      int
	}
	metrics := []struct {
		name string
		val  func(r *core.Result) float64
		ci   func(e *sample.Estimate) float64
	}{
		{"req_per_joule", (*core.Result).ReqPerJoule,
			func(e *sample.Estimate) float64 { return e.MaxRelCI() }},
		{"mean_latency", (*core.Result).AvgLatencySec,
			func(e *sample.Estimate) float64 { return e.Metric("cycles").RelCI95 }},
	}
	accums := make([]accum, len(metrics))
	for i := range full {
		pairs := [][2]*core.Result{
			{full[i].CPU, sampled[i].CPU},
			{full[i].SMT, sampled[i].SMT},
			{full[i].RPU, sampled[i].RPU},
			{full[i].GPU, sampled[i].GPU},
		}
		for _, p := range pairs {
			if p[0] == nil || p[1] == nil {
				continue
			}
			if est := p[1].Sampled; est != nil {
				entry.TimedUnits += est.Timed
				entry.TotalUnits += est.Units
			}
			for k, m := range metrics {
				ref := m.val(p[0])
				if ref == 0 {
					continue
				}
				err := math.Abs(m.val(p[1])-ref) / ref
				a := &accums[k]
				a.logSum += math.Log1p(err)
				if err > a.maxErr {
					a.maxErr = err
				}
				if est := p[1].Sampled; est != nil {
					a.ciSum += m.ci(est)
				}
				a.n++
			}
		}
	}
	for k, m := range metrics {
		a := accums[k]
		sm := SamplingMetric{Name: m.name}
		if a.n > 0 {
			sm.GeoMeanErr = math.Expm1(a.logSum / float64(a.n))
			sm.MaxErr = a.maxErr
			sm.MeanRelCI = a.ciSum / float64(a.n)
		}
		entry.Metrics = append(entry.Metrics, sm)
	}
	return entry
}

// benchBatchCache times the RPU timing-knob sweep — the workload the
// batch-stream cache targets: eight timing variants per service whose
// preparation (trace fetch, lock-step merge, uop build) is identical —
// under three cache configurations plus a sampled run, byte-comparing
// the unsampled outputs. Lookahead is pinned so all runs prep-pipeline
// identically and only the caching varies.
func benchBatchCache(suite *uservices.Suite, requests int, seed int64, workers int, scfg sample.Config) BatchCacheEntry {
	run := func() (float64, []byte) {
		t0 := time.Now()
		rows, err := core.TimingSweepParallel(suite, requests, seed, workers)
		if err != nil {
			log.Fatal(err)
		}
		sec := time.Since(t0).Seconds()
		var buf bytes.Buffer
		core.WriteTimingSweep(&buf, rows)
		return sec, buf.Bytes()
	}
	core.SetPrepLookahead(2)
	defer core.SetPrepLookahead(-1)

	core.SetTraceCaching(false)
	core.SetBatchCaching(false)
	noSec, noOut := run()

	core.SetTraceCaching(true)
	scalarSec, scalarOut := run()

	var reg *obs.Registry
	if studyMetrics {
		reg = obs.NewRegistry()
		obs.Enable(reg, nil)
	}
	core.SetBatchCaching(true)
	batchSec, batchOut := run()
	entry := BatchCacheEntry{
		Workers:          workers,
		Requests:         requests,
		Seed:             seed,
		NoCacheSec:       noSec,
		ScalarCacheSec:   scalarSec,
		BatchCacheSec:    batchSec,
		SpeedupVsScalar:  scalarSec / batchSec,
		SpeedupVsNoCache: noSec / batchSec,
		Identical:        bytes.Equal(noOut, scalarOut) && bytes.Equal(scalarOut, batchOut),
	}
	if reg != nil {
		entry.Metrics = reg.Snapshot()
		obs.Disable()
	}

	// Sampled timing stacks multiplicatively on the cache: warm units
	// replay cached streams through the functional path and skipped
	// units cost nothing, so the combination is the repo's fastest
	// full-sweep configuration. Its output legitimately differs (it is
	// an estimate), so it is timed but not byte-compared.
	sample.SetDefault(scfg)
	sampledSec, _ := run()
	sample.SetDefault(sample.Config{})
	entry.Sample = scfg.String()
	entry.SampledSec = sampledSec
	entry.SpeedupSampled = noSec / sampledSec
	return entry
}

// timed runs f and returns its wall-clock seconds alongside its output.
func timed(f func() []byte) (float64, []byte) {
	t0 := time.Now()
	b := f()
	return time.Since(t0).Seconds(), b
}

// pair runs the sequential oracle (prep lookahead pinned to 0, one
// sweep worker where the sequential baseline is a 1-worker sweep) and
// the pipelined configuration at a fixed lookahead — pinned rather
// than auto-derived so the pipeline engages regardless of how many
// CPUs the sweep pool already claims — restoring automatic lookahead
// afterward. With -studymetrics a fresh obs registry is installed for
// the study's duration and its snapshot rides along in the entry; both
// runs execute under the same instrumentation, so the speedup
// comparison stays fair.
func pair(name, config string, seq, pipe func() []byte) StudyEntry {
	var reg *obs.Registry
	if studyMetrics {
		reg = obs.NewRegistry()
		obs.Enable(reg, nil)
		defer obs.Disable()
	}
	core.SetPrepLookahead(0)
	seqSec, seqOut := timed(seq)
	core.SetPrepLookahead(2)
	pipeSec, pipeOut := timed(pipe)
	core.SetPrepLookahead(-1)
	e := StudyEntry{Result: BenchResult{
		Name:       name,
		SeqSec:     seqSec,
		PipeSec:    pipeSec,
		Speedup:    seqSec / pipeSec,
		Identical:  bytes.Equal(seqOut, pipeOut),
		WhatDiffer: config,
	}}
	if reg != nil {
		e.Metrics = reg.Snapshot()
	}
	return e
}

// benchChipStudy is the Figure 19 grid (the full chip study) with and
// without the prep pipeline, both on the same worker pool.
func benchChipStudy(suite *uservices.Suite, requests int, seed int64, workers int) StudyEntry {
	run := func(w int) []byte {
		rows, err := core.ChipStudyParallel(suite, requests, seed, false, w)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		core.WriteFig19(&buf, rows)
		return buf.Bytes()
	}
	return pair("chipstudy-fig19", "lookahead=2", func() []byte { return run(workers) }, func() []byte { return run(workers) })
}

// benchBatchSweep is the §III-B3 single-service tuning sweep: few
// cells, long runs — the shape the intra-run pipeline targets.
func benchBatchSweep(suite *uservices.Suite, requests int, seed int64, workers int) StudyEntry {
	svc := suite.Get("memc")
	reqs := svc.Generate(rand.New(rand.NewSource(seed)), requests)
	run := func() []byte {
		cpu, rows, err := core.BatchSweep(svc, reqs, []int{4, 8, 16, 32, 64}, workers)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "cpu %d\n", cpu.Stats.Cycles)
		for _, r := range rows {
			fmt.Fprintf(&buf, "%d %d %.6f\n", r.Size, r.Res.Stats.Cycles, r.Res.Latency.Mean())
		}
		return buf.Bytes()
	}
	return pair("batchsweep-memc", "lookahead=2", run, run)
}

// benchSyssim is the 12-point Figure 22 grid: sequential loop vs the
// fanned-out sweep (the prep pipeline does not apply to queuesim; this
// measures the sweep parallelization).
func benchSyssim(seconds float64, seed int64, workers int) StudyEntry {
	modes := []struct{ rpu, split bool }{{false, false}, {true, false}, {true, true}}
	const points = 12
	run := func(w int) []byte {
		rows, err := core.RunCells(len(modes)*points, w, func(i int) (string, error) {
			cfg := queuesim.DefaultConfig()
			cfg.QPS = 70000 * float64(i%points+1) / points
			cfg.Seconds = seconds
			cfg.Seed = seed
			cfg.RPU = modes[i/points].rpu
			cfg.Split = modes[i/points].split
			m := queuesim.Run(cfg)
			return fmt.Sprintf("%.0f %.2f %.2f\n", cfg.QPS, m.Latency.Percentile(99), m.Latency.Mean()), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		for _, r := range rows {
			buf.WriteString(r)
		}
		return buf.Bytes()
	}
	return pair("syssim-12pt", "parallel sweep", func() []byte { return run(1) }, func() []byte { return run(workers) })
}

// benchQueuesim sweeps the tail-at-scale engine over the 100x
// Figure 22 load grid (the paper's 70 kQPS ceiling times 100 machines)
// and records p99/p999 plus events/sec per cell. Three system modes:
// the CPU baseline, RPU with batch splitting, and the CPU system under
// an overload policy (timeout + one retry + bounded queues) — the
// regime where the drain/arrival-window accounting matters most.
func benchQueuesim(seconds float64, seed int64, workers int, sched queuesim.Scheduler) QueuesimEntry {
	const scale = 100
	modes := []struct {
		name       string
		rpu, split bool
		policy     queuesim.PolicyConfig
	}{
		{"cpu", false, false, queuesim.PolicyConfig{}},
		{"rpu-split", true, true, queuesim.PolicyConfig{}},
		{"cpu-policy", false, false, queuesim.PolicyConfig{
			TimeoutMs: 150, MaxRetries: 1, BackoffMs: 5, QueueCap: 100000}},
	}
	loads := []float64{0.25, 0.5, 1.0}
	entry := QueuesimEntry{Workers: workers, Seed: seed, Scale: scale, Seconds: seconds,
		Scheduler: sched.String()}
	points, err := core.RunCells(len(modes)*len(loads), workers, func(i int) (QueuesimPoint, error) {
		mode := modes[i/len(loads)]
		cfg := queuesim.TailConfig{Config: queuesim.DefaultConfig(), Scale: scale,
			Policy: mode.policy, Scheduler: sched}
		cfg.QPS = 70000 * scale * loads[i%len(loads)]
		cfg.Seconds = seconds
		cfg.Warmup = seconds / 4
		cfg.Drain = 2
		cfg.Seed = seed
		cfg.RPU = mode.rpu
		cfg.Split = mode.split
		t0 := time.Now()
		m, err := queuesim.RunTail(cfg)
		if err != nil {
			return QueuesimPoint{}, err
		}
		wall := time.Since(t0).Seconds()
		return QueuesimPoint{
			Mode: mode.name, QPS: cfg.QPS,
			Arrived: m.Arrived, Completed: m.Completed, Failed: m.Failed,
			TimedOut: m.TimedOut, Rejected: m.Rejected,
			P50: m.Latency.Percentile(50), P99: m.Latency.Percentile(99),
			P999: m.Latency.Percentile(99.9),
			InFlightHWM: m.InFlightHWM, Events: m.Events,
			CancelledTimers: m.CancelledTimers, WallSec: wall,
			EventsPerSec:    float64(m.Events) / wall,
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	entry.Points = points
	return entry
}

// graphLoads is the shared QPS grid for the service-graph saturation
// study: roughly geometric so it brackets both the CPU knees (15–35
// kQPS at scale 1) and the RPU knees (60–200 kQPS).
var graphLoads = []float64{2000, 4000, 8000, 12000, 16000, 24000, 32000,
	48000, 64000, 96000, 128000, 192000}

// benchGraphs sweeps every bundled GraphSpec over the shared load grid
// in CPU and RPU (split) mode at scale 1 and records where each system
// saturates. All cells run through the deterministic parallel sweep;
// the saturation scan itself is a cheap post-pass over the grid.
func benchGraphs(seconds float64, seed int64, workers int) GraphsEntry {
	names := queuesim.GraphNames()
	modes := []bool{false, true} // rpu?
	cells := len(names) * len(modes) * len(graphLoads)
	perMode := len(graphLoads)
	points, err := core.RunCells(cells, workers, func(i int) (*queuesim.TailMetrics, error) {
		name := names[i/(len(modes)*perMode)]
		rpu := modes[i/perMode%len(modes)]
		spec, err := queuesim.GraphByName(name, queuesim.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg := queuesim.TailConfig{Config: queuesim.DefaultConfig(), Scale: 1, Graph: spec}
		cfg.QPS = graphLoads[i%perMode]
		cfg.Seconds = seconds
		cfg.Warmup = seconds / 4
		cfg.Drain = 5
		cfg.Seed = seed
		cfg.RPU = rpu
		cfg.Split = rpu
		return queuesim.RunTail(cfg)
	})
	if err != nil {
		log.Fatal(err)
	}
	entry := GraphsEntry{Workers: workers, Seed: seed, Seconds: seconds}
	// satQPS scans one mode's grid slice ascending: the knee is the
	// highest load before the first saturated point.
	satQPS := func(ms []*queuesim.TailMetrics) (float64, float64) {
		base := ms[0].Latency.Percentile(99)
		sat := graphLoads[0]
		for j, m := range ms {
			if m.Saturated(base) {
				break
			}
			sat = graphLoads[j]
		}
		return sat, base
	}
	for gi, name := range names {
		cpu := points[gi*2*perMode : gi*2*perMode+perMode]
		rpu := points[gi*2*perMode+perMode : (gi+1)*2*perMode]
		cpuSat, cpuBase := satQPS(cpu)
		rpuSat, rpuBase := satQPS(rpu)
		entry.Points = append(entry.Points, GraphPoint{
			Graph: name, CPUSatQPS: cpuSat, RPUSatQPS: rpuSat,
			Speedup: rpuSat / cpuSat, CPUBaseP99: cpuBase, RPUBaseP99: rpuBase,
		})
	}
	return entry
}

// appendJSON appends entry to the JSON array in path, creating the
// file when absent. Existing entries are kept verbatim, so trajectory
// files written by older schema versions keep accumulating.
func appendJSON(path string, entry any) error {
	var entries []json.RawMessage
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	entries = append(entries, raw)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
