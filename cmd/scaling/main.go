// Command scaling prints Figure 5: off-chip DRAM bandwidth by memory
// generation and the per-socket thread count needed to consume it at
// the industry provisioning of ~2 GB/s per thread — the paper's Key
// Observation #5 that future sockets need 256-512 threads.
//
// With -bench it instead measures the simulator's own worker-pool
// scaling: it times the chip study sequentially and at -parallel
// workers, checks the outputs are byte-identical, and prints the
// speedup.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simr/internal/cacheflag"
	"simr/internal/core"
	"simr/internal/dist"
	"simr/internal/distflag"
	"simr/internal/obsflag"
	"simr/internal/prof"
	"simr/internal/sampleflag"
	"simr/internal/uservices"
)

func main() {
	bench := flag.Bool("bench", false, "time the chip-study sweep sequential vs parallel instead of printing Figure 5")
	requests := flag.Int("requests", 240, "requests per service for -bench")
	seed := flag.Int64("seed", 42, "workload seed for -bench")
	parallel := flag.Int("parallel", 0, "worker goroutines for -bench (0 = one per CPU)")
	lookahead := flag.Int("lookahead", core.PrepAuto, "intra-run prep pipeline depth in batches (-1 = auto from spare CPUs, 0 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	cacheFlags := cacheflag.Add(flag.CommandLine)
	obsFlags := obsflag.Add(flag.CommandLine)
	sampleFlags := sampleflag.Add(flag.CommandLine)
	distFlags := distflag.Add(flag.CommandLine)
	flag.Parse()
	core.SetPrepLookahead(*lookahead)
	cacheFlags.Setup()
	if _, err := sampleFlags.Setup(); err != nil {
		log.Fatal(err)
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	core.SetInterrupt(ctx)

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	obsFlags.Setup()
	defer obsFlags.Close()

	if ran, err := distFlags.HandleWorker(ctx); ran {
		if err != nil {
			obsFlags.Close()
			stopProf()
			log.Fatal(err)
		}
		return
	}

	if *bench {
		benchSweep(ctx, distFlags, *requests, *seed, *parallel)
		return
	}
	if distFlags.Active() {
		log.Fatal("-dist only applies to -bench (Figure 5 has no sweep to distribute)")
	}

	fmt.Println("Figure 5: off-chip DRAM bandwidth and thread scaling")
	core.WriteFig5(os.Stdout, core.Fig5Scaling())
	fmt.Println("\n(paper: up to 256 threads/socket with DDR5, 512 with DDR6/HBM)")
}

// benchSweep runs the chip study twice — one worker, then either the
// requested goroutine pool or (with -dist) the dispatcher tier —
// verifies the rendered figures match byte for byte, and reports the
// wall-clock ratio.
func benchSweep(ctx context.Context, distFlags *distflag.Flags, requests int, seed int64, parallel int) {
	if parallel <= 0 {
		parallel = core.DefaultWorkers()
	}
	suite := uservices.NewSuite()

	render := func(rows []core.ChipRow) []byte {
		var buf bytes.Buffer
		core.WriteFig10(&buf, rows)
		core.WriteFig14(&buf, rows)
		core.WriteFig19(&buf, rows)
		core.WriteFig20(&buf, rows)
		core.WriteFig21(&buf, rows)
		return buf.Bytes()
	}

	t0 := time.Now()
	seqRows, err := core.ChipStudyParallel(suite, requests, seed, false, 1)
	if err != nil {
		log.Fatal(err)
	}
	seqDur := time.Since(t0)

	var (
		parRows []core.ChipRow
		parTag  string
	)
	t1 := time.Now()
	if distFlags.Active() {
		spec := dist.SweepSpec{Studies: []dist.StudySpec{{
			Kind: dist.StudyChip, Requests: requests, Seed: seed,
		}}}
		res, err := distFlags.Run(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		parRows = res.Studies[0].Chip
		parTag = fmt.Sprintf("dist (%s)", distFlags.Mode())
	} else {
		parRows, err = core.ChipStudyParallel(suite, requests, seed, false, parallel)
		if err != nil {
			log.Fatal(err)
		}
		parTag = fmt.Sprintf("parallel (%d workers)", parallel)
	}
	parDur := time.Since(t1)

	seqOut, parOut := render(seqRows), render(parRows)
	fmt.Printf("chip study, %d requests/service, seed %d\n", requests, seed)
	fmt.Printf("  sequential (1 worker):   %v\n", seqDur.Round(time.Millisecond))
	fmt.Printf("  %-24s %v\n", parTag+":", parDur.Round(time.Millisecond))
	fmt.Printf("  speedup:                 %.2fx\n", float64(seqDur)/float64(parDur))
	if bytes.Equal(seqOut, parOut) {
		fmt.Println("  outputs:                 byte-identical")
	} else {
		log.Fatal("outputs differ between sequential and parallel runs")
	}
}
