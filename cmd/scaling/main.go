// Command scaling prints Figure 5: off-chip DRAM bandwidth by memory
// generation and the per-socket thread count needed to consume it at
// the industry provisioning of ~2 GB/s per thread — the paper's Key
// Observation #5 that future sockets need 256-512 threads.
package main

import (
	"fmt"
	"os"

	"simr/internal/core"
)

func main() {
	fmt.Println("Figure 5: off-chip DRAM bandwidth and thread scaling")
	core.WriteFig5(os.Stdout, core.Fig5Scaling())
	fmt.Println("\n(paper: up to 256 threads/socket with DDR5, 512 with DDR6/HBM)")
}
