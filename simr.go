// Package simr is the public facade of the SIMR reproduction — the
// MICRO 2022 paper "SIMR: Single Instruction Multiple Request
// Processing for Energy-Efficient Data Center Microservices" (Khairy,
// Alawneh, Barnes, Rogers) rebuilt as a self-contained Go library.
//
// The library contains:
//
//   - a µISA with a structured program builder and per-request
//     interpreter standing in for x86 binaries + PIN tracing,
//   - the 15-microservice social-network suite,
//   - the SIMR-aware batching server (naive / per-API /
//     per-API+argument-size policies, batch splitting),
//   - the lock-step SIMT engine (MinSP-PC and ideal IPDOM),
//   - cycle-level core models for the CPU, CPU-SMT8, RPU and a GPU,
//   - the banked-cache + MCU + DRAM memory system,
//   - a McPAT-style energy/area model, and
//   - a uqsim-style system-level queueing simulator.
//
// Quick start:
//
//	suite := simr.NewSuite()
//	svc := suite.Get("memc")
//	reqs := svc.Generate(rand.New(rand.NewSource(1)), 2400)
//	cpu, _ := simr.RunService(simr.ArchCPU, svc, reqs, simr.DefaultOptions())
//	rpu, _ := simr.RunService(simr.ArchRPU, svc, reqs, simr.DefaultOptions())
//	fmt.Printf("requests/joule: %.1fx\n", rpu.ReqPerJoule()/cpu.ReqPerJoule())
package simr

import (
	"io"

	"simr/internal/core"
	"simr/internal/queuesim"
	"simr/internal/sample"
	"simr/internal/uservices"
)

// Re-exported workload types.
type (
	// Suite is the 15-microservice workload set.
	Suite = uservices.Suite
	// Service is one microservice with its API programs and request
	// generator.
	Service = uservices.Service
	// Request is one incoming RPC/HTTP request.
	Request = uservices.Request
)

// Re-exported experiment types.
type (
	// Arch selects a hardware design point.
	Arch = core.Arch
	// Options tunes an RPU/GPU run.
	Options = core.Options
	// Result is a chip-level measurement.
	Result = core.Result
	// ChipRow pairs one service's results across architectures.
	ChipRow = core.ChipRow
	// EffRow is one service's SIMT efficiency per batching policy.
	EffRow = core.EffRow
	// MPKIRow is one service's L1 MPKI per configuration.
	MPKIRow = core.MPKIRow
	// SystemConfig parameterises the end-to-end queueing scenario.
	SystemConfig = queuesim.Config
	// SystemMetrics is one load point's outcome.
	SystemMetrics = queuesim.Metrics
)

// Architectures under study (Table IV columns).
const (
	ArchCPU  = core.ArchCPU
	ArchSMT8 = core.ArchSMT8
	ArchRPU  = core.ArchRPU
	ArchGPU  = core.ArchGPU
)

// DefaultRequests is the paper's per-service request count (2400).
const DefaultRequests = core.DefaultRequests

// PrepAuto selects an automatic intra-run prep lookahead for
// Options.PrepLookahead, derived from the CPUs the enclosing sweep
// leaves spare.
const PrepAuto = core.PrepAuto

// SetPrepLookahead pins the prep lookahead every PrepAuto resolution
// uses (n >= 0), or restores automatic derivation (n < 0). Results are
// byte-identical at any value; only wall-clock changes.
func SetPrepLookahead(n int) { core.SetPrepLookahead(n) }

// SetTraceCaching toggles the sweep-wide scalar per-request trace
// cache the parallel studies consult (default on). Results are
// byte-identical either way; only wall-clock changes.
func SetTraceCaching(on bool) { core.SetTraceCaching(on) }

// SetBatchCaching toggles the sweep-wide batch-stream cache that
// memoizes the post-merge prep product — merged uop streams, MCU
// deltas and op counts — across the sweep cells that share a workload
// (default on). Results are byte-identical either way; only
// wall-clock changes.
func SetBatchCaching(on bool) { core.SetBatchCaching(on) }

// SetCacheBudget caps the bytes the scalar and batch prep caches may
// retain per sweep, shared across both; bytes <= 0 restores the
// default (512 MiB). Over-budget builds are returned uncached, so the
// budget bounds memory without changing results.
func SetCacheBudget(bytes int64) { core.SetCacheBudget(bytes) }

// Re-exported sampled-simulation types (see internal/sample).
type (
	// SampleConfig selects SMARTS-style sampled timing simulation for
	// Options.Sample: every Period-th batch timed, Warmup batches
	// functionally warmed before each, the rest skipped.
	SampleConfig = sample.Config
	// SampleEstimate is a sampled run's error report, attached to
	// Result.Sampled when sampling skipped work.
	SampleEstimate = sample.Estimate
)

// SetSampling installs the process-wide sampled-simulation default
// every run without an explicit Options.Sample uses; the zero config
// restores full (unsampled) simulation. Period 1 engages the sampler
// but times every unit, leaving results bit-identical to unsampled.
func SetSampling(c SampleConfig) { sample.SetDefault(c) }

// ParseSampleConfig reads the drivers' -sample syntax: "off", PERIOD,
// or PERIOD:WARMUP.
func ParseSampleConfig(s string) (SampleConfig, error) { return sample.Parse(s) }

// NewSuite constructs the 15 microservices with freshly linked
// programs and shared tables.
func NewSuite() *Suite { return uservices.NewSuite() }

// NewGPGPUSuite constructs the §VI-D data-parallel SPMD kernels
// (saxpy, dot product, stencil) for the GPGPU-on-RPU study.
func NewGPGPUSuite() *Suite { return uservices.NewGPGPUSuite() }

// RunISPC models the §VI-A alternative: compiling the service
// SPMD-style onto the CPU's 8-lane SIMD units (ISPC), one request per
// vector lane, with per-lane gathers, predication and scalar fallback.
func RunISPC(svc *Service, reqs []Request) (*Result, error) {
	return core.RunISPC(svc, reqs)
}

// DefaultOptions returns the paper's baseline RPU configuration
// (per-API+argument-size batching, SIMR-aware allocation, stack
// interleaving, majority voting, atomics at L3).
func DefaultOptions() Options { return core.DefaultOptions() }

// RunService executes requests on one core of the architecture and
// returns timing, energy and memory statistics.
func RunService(arch Arch, svc *Service, reqs []Request, opts Options) (*Result, error) {
	return core.RunService(arch, svc, reqs, opts)
}

// EfficiencyStudy reproduces Figures 4/11 (SIMT efficiency per
// batching policy).
func EfficiencyStudy(suite *Suite, requests int, seed int64) ([]EffRow, error) {
	return core.EfficiencyStudy(suite, requests, seed)
}

// ChipStudy reproduces the chip-level comparison behind Figures 10,
// 14, 19, 20 and 21.
func ChipStudy(suite *Suite, requests int, seed int64, withGPU bool) ([]ChipRow, error) {
	return core.ChipStudy(suite, requests, seed, withGPU)
}

// MPKIStudy reproduces Figure 15 (L1 MPKI by batch size).
func MPKIStudy(suite *Suite, requests int, seed int64) ([]MPKIRow, error) {
	return core.MPKIStudy(suite, requests, seed)
}

// SensitivityStudy runs the §V-A1 ablations and writes the report.
func SensitivityStudy(w io.Writer, suite *Suite, services []string, requests int, seed int64) error {
	return core.SensitivityStudy(w, suite, services, requests, seed)
}

// DefaultWorkers is the worker count the parallel studies use when
// given workers <= 0: one per available CPU.
func DefaultWorkers() int { return core.DefaultWorkers() }

// RunCells evaluates fn(0..n-1) on a bounded worker pool and returns
// the results in input order — the primitive all parallel studies are
// built on. workers == 1 runs inline (sequential); workers <= 0 uses
// DefaultWorkers.
func RunCells[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return core.RunCells(n, workers, fn)
}

// EfficiencyStudyParallel is EfficiencyStudy on a worker pool. Rows
// are identical to the sequential study for the same seed.
func EfficiencyStudyParallel(suite *Suite, requests int, seed int64, workers int) ([]EffRow, error) {
	return core.EfficiencyStudyParallel(suite, requests, seed, workers)
}

// ChipStudyParallel is ChipStudy on a worker pool. Rows are identical
// to the sequential study for the same seed.
func ChipStudyParallel(suite *Suite, requests int, seed int64, withGPU bool, workers int) ([]ChipRow, error) {
	return core.ChipStudyParallel(suite, requests, seed, withGPU, workers)
}

// MPKIStudyParallel is MPKIStudy on a worker pool. Rows are identical
// to the sequential study for the same seed.
func MPKIStudyParallel(suite *Suite, requests int, seed int64, workers int) ([]MPKIRow, error) {
	return core.MPKIStudyParallel(suite, requests, seed, workers)
}

// SensitivityStudyParallel is SensitivityStudy on a worker pool; the
// report text is identical to the sequential study for the same seed.
func SensitivityStudyParallel(w io.Writer, suite *Suite, services []string, requests int, seed int64, workers int) error {
	return core.SensitivityStudyParallel(w, suite, services, requests, seed, workers)
}

// BatchSweepRow is one RPU batch-size point of a batch-tuning sweep.
type BatchSweepRow = core.BatchSweepRow

// BatchSweep runs the CPU baseline plus one RPU run per batch size
// over the same requests on a worker pool (the §III-B3 tuning space).
func BatchSweep(svc *Service, reqs []Request, sizes []int, workers int) (*Result, []BatchSweepRow, error) {
	return core.BatchSweep(svc, reqs, sizes, workers)
}

// MultiBatchRow is one service's §III-A multi-batch interleaving
// measurement.
type MultiBatchRow = core.MultiBatchRow

// MultiBatchSweep runs MultiBatchStudy for every service on a worker
// pool.
func MultiBatchSweep(suite *Suite, seed int64, workers int) ([]MultiBatchRow, error) {
	return core.MultiBatchSweep(suite, seed, workers)
}

// TimingVariant is one timing-only RPU design point of a timing sweep.
type TimingVariant = core.TimingVariant

// TimingRow is one service's results across the timing variants.
type TimingRow = core.TimingRow

// DefaultTimingVariants returns the eight timing-only RPU design
// points (lanes × majority voting × L3 atomics) whose prep work is
// identical — the sweep the batch-stream cache collapses to one prep
// per batch.
func DefaultTimingVariants() []TimingVariant { return core.DefaultTimingVariants() }

// TimingSweep runs every service through the timing-variant grid
// sequentially.
func TimingSweep(suite *Suite, requests int, seed int64) ([]TimingRow, error) {
	return core.TimingSweep(suite, requests, seed)
}

// TimingSweepParallel is TimingSweep on a worker pool. Rows are
// identical to the sequential sweep for the same seed.
func TimingSweepParallel(suite *Suite, requests int, seed int64, workers int) ([]TimingRow, error) {
	return core.TimingSweepParallel(suite, requests, seed, workers)
}

// WriteTimingSweep renders the timing-variant report (per-variant
// geomean latency and requests/joule ratios against the first
// variant).
func WriteTimingSweep(w io.Writer, rows []TimingRow) { core.WriteTimingSweep(w, rows) }

// DefaultSystemConfig returns the Figure 22 end-to-end scenario.
func DefaultSystemConfig() SystemConfig { return queuesim.DefaultConfig() }

// RunSystem simulates one end-to-end load point.
func RunSystem(cfg SystemConfig) *SystemMetrics { return queuesim.Run(cfg) }

// SweepSystem runs a QPS sweep.
func SweepSystem(base SystemConfig, qps []float64) []*SystemMetrics {
	return queuesim.Sweep(base, qps)
}

// Re-exported extension-study types.
type (
	// MultiProcessResult is the §VI-B multi-process divergence study.
	MultiProcessResult = core.MultiProcessResult
	// MultiBatchResult is the §III-A batch-interleaving study.
	MultiBatchResult = core.MultiBatchResult
	// ComposePostConfig parameterises the Figure 3 compose-post path.
	ComposePostConfig = queuesim.ComposePostConfig
	// ResultJSON is the machine-readable result record.
	ResultJSON = core.ResultJSON
)

// MultiProcessStudy reproduces §VI-B: lock-step efficiency of threads
// vs separate processes vs base-aligned processes.
func MultiProcessStudy(batchSize int, seed int64) (*MultiProcessResult, error) {
	return core.MultiProcessStudy(batchSize, seed)
}

// MultiBatchStudy quantifies coarse-grain two-batch interleaving on one
// RPU core (the paper's future-work §III-A scheduler).
func MultiBatchStudy(svc *Service, reqs []Request, opts Options) (*MultiBatchResult, error) {
	return core.MultiBatchStudy(svc, reqs, opts)
}

// DefaultComposePost returns the Figure 3 compose-post scenario.
func DefaultComposePost() ComposePostConfig { return queuesim.DefaultComposePost() }

// RunComposePost simulates the compose-post fan-out/join path.
func RunComposePost(cfg ComposePostConfig) *SystemMetrics {
	return queuesim.RunComposePost(cfg)
}

// WriteResultsJSON emits a chip study as JSON records.
func WriteResultsJSON(w io.Writer, rows []ChipRow) error { return core.WriteJSON(w, rows) }
