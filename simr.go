// Package simr is the public facade of the SIMR reproduction — the
// MICRO 2022 paper "SIMR: Single Instruction Multiple Request
// Processing for Energy-Efficient Data Center Microservices" (Khairy,
// Alawneh, Barnes, Rogers) rebuilt as a self-contained Go library.
//
// The library contains:
//
//   - a µISA with a structured program builder and per-request
//     interpreter standing in for x86 binaries + PIN tracing,
//   - the 15-microservice social-network suite,
//   - the SIMR-aware batching server (naive / per-API /
//     per-API+argument-size policies, batch splitting),
//   - the lock-step SIMT engine (MinSP-PC and ideal IPDOM),
//   - cycle-level core models for the CPU, CPU-SMT8, RPU and a GPU,
//   - the banked-cache + MCU + DRAM memory system,
//   - a McPAT-style energy/area model, and
//   - a uqsim-style system-level queueing simulator.
//
// Quick start:
//
//	suite := simr.NewSuite()
//	svc := suite.Get("memc")
//	reqs := svc.Generate(rand.New(rand.NewSource(1)), 2400)
//	cpu, _ := simr.RunService(simr.ArchCPU, svc, reqs, simr.DefaultOptions())
//	rpu, _ := simr.RunService(simr.ArchRPU, svc, reqs, simr.DefaultOptions())
//	fmt.Printf("requests/joule: %.1fx\n", rpu.ReqPerJoule()/cpu.ReqPerJoule())
package simr

import (
	"io"

	"simr/internal/core"
	"simr/internal/queuesim"
	"simr/internal/uservices"
)

// Re-exported workload types.
type (
	// Suite is the 15-microservice workload set.
	Suite = uservices.Suite
	// Service is one microservice with its API programs and request
	// generator.
	Service = uservices.Service
	// Request is one incoming RPC/HTTP request.
	Request = uservices.Request
)

// Re-exported experiment types.
type (
	// Arch selects a hardware design point.
	Arch = core.Arch
	// Options tunes an RPU/GPU run.
	Options = core.Options
	// Result is a chip-level measurement.
	Result = core.Result
	// ChipRow pairs one service's results across architectures.
	ChipRow = core.ChipRow
	// EffRow is one service's SIMT efficiency per batching policy.
	EffRow = core.EffRow
	// MPKIRow is one service's L1 MPKI per configuration.
	MPKIRow = core.MPKIRow
	// SystemConfig parameterises the end-to-end queueing scenario.
	SystemConfig = queuesim.Config
	// SystemMetrics is one load point's outcome.
	SystemMetrics = queuesim.Metrics
)

// Architectures under study (Table IV columns).
const (
	ArchCPU  = core.ArchCPU
	ArchSMT8 = core.ArchSMT8
	ArchRPU  = core.ArchRPU
	ArchGPU  = core.ArchGPU
)

// DefaultRequests is the paper's per-service request count (2400).
const DefaultRequests = core.DefaultRequests

// NewSuite constructs the 15 microservices with freshly linked
// programs and shared tables.
func NewSuite() *Suite { return uservices.NewSuite() }

// NewGPGPUSuite constructs the §VI-D data-parallel SPMD kernels
// (saxpy, dot product, stencil) for the GPGPU-on-RPU study.
func NewGPGPUSuite() *Suite { return uservices.NewGPGPUSuite() }

// RunISPC models the §VI-A alternative: compiling the service
// SPMD-style onto the CPU's 8-lane SIMD units (ISPC), one request per
// vector lane, with per-lane gathers, predication and scalar fallback.
func RunISPC(svc *Service, reqs []Request) (*Result, error) {
	return core.RunISPC(svc, reqs)
}

// DefaultOptions returns the paper's baseline RPU configuration
// (per-API+argument-size batching, SIMR-aware allocation, stack
// interleaving, majority voting, atomics at L3).
func DefaultOptions() Options { return core.DefaultOptions() }

// RunService executes requests on one core of the architecture and
// returns timing, energy and memory statistics.
func RunService(arch Arch, svc *Service, reqs []Request, opts Options) (*Result, error) {
	return core.RunService(arch, svc, reqs, opts)
}

// EfficiencyStudy reproduces Figures 4/11 (SIMT efficiency per
// batching policy).
func EfficiencyStudy(suite *Suite, requests int, seed int64) ([]EffRow, error) {
	return core.EfficiencyStudy(suite, requests, seed)
}

// ChipStudy reproduces the chip-level comparison behind Figures 10,
// 14, 19, 20 and 21.
func ChipStudy(suite *Suite, requests int, seed int64, withGPU bool) ([]ChipRow, error) {
	return core.ChipStudy(suite, requests, seed, withGPU)
}

// MPKIStudy reproduces Figure 15 (L1 MPKI by batch size).
func MPKIStudy(suite *Suite, requests int, seed int64) ([]MPKIRow, error) {
	return core.MPKIStudy(suite, requests, seed)
}

// SensitivityStudy runs the §V-A1 ablations and writes the report.
func SensitivityStudy(w io.Writer, suite *Suite, services []string, requests int, seed int64) error {
	return core.SensitivityStudy(w, suite, services, requests, seed)
}

// DefaultSystemConfig returns the Figure 22 end-to-end scenario.
func DefaultSystemConfig() SystemConfig { return queuesim.DefaultConfig() }

// RunSystem simulates one end-to-end load point.
func RunSystem(cfg SystemConfig) *SystemMetrics { return queuesim.Run(cfg) }

// SweepSystem runs a QPS sweep.
func SweepSystem(base SystemConfig, qps []float64) []*SystemMetrics {
	return queuesim.Sweep(base, qps)
}

// Re-exported extension-study types.
type (
	// MultiProcessResult is the §VI-B multi-process divergence study.
	MultiProcessResult = core.MultiProcessResult
	// MultiBatchResult is the §III-A batch-interleaving study.
	MultiBatchResult = core.MultiBatchResult
	// ComposePostConfig parameterises the Figure 3 compose-post path.
	ComposePostConfig = queuesim.ComposePostConfig
	// ResultJSON is the machine-readable result record.
	ResultJSON = core.ResultJSON
)

// MultiProcessStudy reproduces §VI-B: lock-step efficiency of threads
// vs separate processes vs base-aligned processes.
func MultiProcessStudy(batchSize int, seed int64) (*MultiProcessResult, error) {
	return core.MultiProcessStudy(batchSize, seed)
}

// MultiBatchStudy quantifies coarse-grain two-batch interleaving on one
// RPU core (the paper's future-work §III-A scheduler).
func MultiBatchStudy(svc *Service, reqs []Request, opts Options) (*MultiBatchResult, error) {
	return core.MultiBatchStudy(svc, reqs, opts)
}

// DefaultComposePost returns the Figure 3 compose-post scenario.
func DefaultComposePost() ComposePostConfig { return queuesim.DefaultComposePost() }

// RunComposePost simulates the compose-post fan-out/join path.
func RunComposePost(cfg ComposePostConfig) *SystemMetrics {
	return queuesim.RunComposePost(cfg)
}

// WriteResultsJSON emits a chip study as JSON records.
func WriteResultsJSON(w io.Writer, rows []ChipRow) error { return core.WriteJSON(w, rows) }
